# Verification entry points. `make check` is what CI should run.

GO ?= go

.PHONY: all build test lint vet race check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repository's own static-analysis suite (cmd/swexlint):
# determinism, exhaustive-enum, cycle-math, and panic-hygiene rules over
# every non-test package. See the "Determinism contract" in DESIGN.md.
lint:
	$(GO) run ./cmd/swexlint ./...

vet:
	$(GO) vet ./...

# race exercises the only packages that touch goroutines (the engine and
# the network model) under the race detector. The simulation core is
# single-threaded by contract, so the interesting schedules are in the
# lockstep handoff.
race:
	$(GO) test -race ./internal/sim/... ./internal/mesh/...

check: vet lint test race
