# Verification entry points. `make check` is what CI should run.

GO ?= go

.PHONY: all build test lint vet race check mc mc-smoke mc-por-smoke bench bench-sweep bench-memtier bench-parsim trace-smoke sweep-smoke swexd-smoke fuzz-smoke memtier-smoke parsim-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repository's own static-analysis suite (cmd/swexlint):
# determinism, exhaustive-enum, cycle-math, and panic-hygiene rules over
# every non-test package. See the "Determinism contract" in DESIGN.md.
lint:
	$(GO) run ./cmd/swexlint ./...

vet:
	$(GO) vet ./...

# race exercises the only packages that touch goroutines (the engine and
# its parallel cluster, the network model, the machine's sharded run
# mode, the sweep orchestrator's worker pool, and the distributed sweep
# service) under the race detector, plus the memory-model fuzzing layer
# whose runs ride the sweep worker pool and the memory-tier models that
# ride the mesh's server primitives. Each engine shard is single-threaded
# by contract, so the interesting schedules are in the lockstep handoff,
# the window dispatch/barrier, the pool merge, and the coordinator's
# lease machinery.
race:
	$(GO) test -race ./internal/sim/... ./internal/mesh/... ./internal/machine/... ./internal/memtier/... ./internal/sweep/... ./internal/swexd/... ./internal/litmus/...

# mc exhausts the model checker's full-depth configurations over the
# whole protocol spectrum, with sleep-set partial-order reduction on
# (each line prints the pruned-edge count; POR preserves every verdict
# and every quiescent state — TestPOREquivalence is the proof). The
# reduction is what makes the deep configurations (4 nodes x 2 blocks,
# 3 nodes x 3 blocks, 3 ops) exhaustible: unreduced, the software-only
# protocol at 3x3 blows through the default state bound. ~10 minutes of
# work; run before protocol changes.
mc:
	$(GO) run ./cmd/swexmc -por -nodes 2 -blocks 1 -ops 4
	$(GO) run ./cmd/swexmc -por -nodes 3 -blocks 1 -ops 3
	$(GO) run ./cmd/swexmc -por -nodes 2 -blocks 2 -ops 3
	$(GO) run ./cmd/swexmc -por -nodes 2 -blocks 2 -ops 3 -watch
	$(GO) run ./cmd/swexmc -por -nodes 4 -blocks 2 -ops 3
	$(GO) run ./cmd/swexmc -por -nodes 3 -blocks 3 -ops 3
	$(GO) run ./cmd/swexmc -por -nodes 3 -blocks 1 -ops 3 -mig -batch

# mc-smoke is the bounded model-checking run wired into `make check`: the
# 2-node spectrum sweep with golden reachable-state counts, POR off (the
# goldens pin the *unreduced* state space).
mc-smoke:
	$(GO) test ./internal/mc/

# mc-por-smoke pins the reduced runs: golden state/transition/slept
# counts for two fast POR configurations, plus the POR-vs-full
# equivalence sweep and the deliberately-unsound-relation fixture that
# proves the equivalence criteria have teeth.
mc-por-smoke:
	$(GO) test ./internal/mc/ -run 'TestPOR'

# bench runs every benchmark once and regenerates the committed baseline.
# The baseline pins benchmark *structure* (names, metric kinds) and gives
# reviewers a reference point; absolute times are machine-specific.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | $(GO) run ./cmd/swexbench -o BENCH_baseline.json

# bench-sweep regenerates the committed sweep-orchestration baseline: the
# quick Figure 2 matrix serial / 4-worker / warm-cache, plus the pool
# overlap benchmarks (the honest parallel-speedup measurement on machines
# without spare cores; see EXPERIMENTS.md).
bench-sweep:
	$(GO) test -run '^$$' -bench 'PoolOverlap|SweepFig2' -benchtime 3x ./internal/sweep/ . | $(GO) run ./cmd/swexbench -o BENCH_sweep.json

# sweep-smoke exercises the sweep orchestrator end to end: the determinism
# and crash-resume suites, then the swexsweep CLI cold and warm over one
# cache directory — the warm run must execute zero simulations.
sweep-smoke:
	$(GO) test ./internal/sweep/ -run 'TestCrashResume|TestCacheRoundTrip|TestCompact' -count=1
	$(GO) test . -run 'TestSweepOutputDeterministic|TestSharedBaselineComputedOnce' -count=1
	d=$$(mktemp -d) && \
	  $(GO) run ./cmd/swexsweep -quick -workers 4 -cache $$d fig2 >/dev/null && \
	  $(GO) run ./cmd/swexsweep -quick -workers 4 -cache $$d fig2 2>&1 >/dev/null | grep -q ' 0 executed' && \
	  $(GO) run ./cmd/swexsweep -status -cache $$d >/dev/null && \
	  $(GO) run ./cmd/swexsweep -cache $$d compact >/dev/null && \
	  $(GO) run ./cmd/swexsweep -quick -workers 4 -cache $$d fig2 2>&1 >/dev/null | grep -q ' 0 executed' && \
	  rm -rf $$d

# swexd-smoke exercises the distributed sweep service end to end: the
# coordinator/worker suite (lease expiry, worker loss mid-lease, the
# HTTP/NDJSON front end, cross-process warm resubmission), then the
# acceptance check — a coordinator with three in-process workers renders
# the full quick exhibit matrix byte-identically to a serial run, and a
# warm resubmission executes zero simulations.
swexd-smoke:
	$(GO) test ./internal/swexd/ -count=1
	$(GO) test . -run 'TestDistributedExhibitsByteIdentical' -count=1

# fuzz-smoke exercises the memory-model fuzzing pipeline end to end: the
# litmus package's oracle suite (verdict tables, cross-validation of the
# two exact decision procedures), then a seeded swexfuzz campaign cold and
# warm over one cache directory — the warm run must execute zero
# simulations and print byte-identical stdout — and finally the negative
# control: a machine weakened to drop an invalidation must be flagged by
# the oracle, proving the pipeline can see a coherence bug.
fuzz-smoke:
	$(GO) test ./internal/litmus/ -count=1
	d=$$(mktemp -d) && \
	  $(GO) run ./cmd/swexfuzz -seed 1 -programs 50 -cache $$d >$$d/cold.out && \
	  $(GO) run ./cmd/swexfuzz -seed 1 -programs 50 -cache $$d 2>$$d/warm.err >$$d/warm.out && \
	  cmp $$d/cold.out $$d/warm.out && \
	  grep -q ' 0 simulation' $$d/warm.err && \
	  rm -rf $$d
	$(GO) run ./cmd/swexfuzz -weakened >/dev/null

# memtier-smoke exercises the memory-tier subsystem end to end: the model's
# unit suite, the model checker's cross-family equivalence and
# directoryless goldens, the litmus corpus under tiered timing with the
# sequential-consistency oracle, and the machine-spectrum exhibit through
# the CLI (all three families plus the directoryless machine in one sweep).
memtier-smoke:
	$(GO) test ./internal/memtier/ -count=1
	$(GO) test ./internal/mc/ -run 'MemTier|Directoryless' -count=1
	$(GO) test ./internal/litmus/ -run 'MemTier|WeakenedFixtureStillCaught' -count=1
	$(GO) run ./cmd/swex -quick tiers >/dev/null

# parsim-smoke exercises the conservative parallel engine end to end: the
# machine-level byte-identity suite (serial vs parallel at several worker
# counts, the broken-lookahead negative fixture), the sweep-level identity
# and cache-key-exclusion tests, the full quick exhibit matrix rendered
# byte-identically at 2/4/8 engine workers, and the CLI knob itself.
parsim-smoke:
	$(GO) test ./internal/machine/ -run 'TestParallel|TestBrokenLookahead' -count=1
	$(GO) test ./internal/sweep/ -run 'TestSimWorkersOutsideCacheKey|TestRunnerSimWorkersMatchesSerial' -count=1
	$(GO) test . -run 'TestParallelExhibitsByteIdentical' -count=1
	$(GO) run ./cmd/swex -quick -simworkers 4 scaling extrapolation >/dev/null

# bench-parsim regenerates the committed parallel-engine baseline: the
# cluster's window-dispatch overlap (dwell-based, so the overlap is
# measurable even on a single-core container — the same honesty argument
# as bench-sweep's pool-overlap rows) and the 256-node scaling-study
# slice serial vs four engine workers on real simulation work.
bench-parsim:
	$(GO) test -run '^$$' -bench 'Parsim' -benchtime 1x -benchmem ./internal/sim/ . | $(GO) run ./cmd/swexbench -o BENCH_parsim.json

# bench-memtier regenerates the committed memory-tier overhead baseline:
# the directory memory-access hook when no tier is installed (must cost
# ~nothing), each tier family's hot path, and the directoryless machine
# against full-map on the same workload.
bench-memtier:
	$(GO) test -run '^$$' -bench 'MemTier|Directoryless' -benchtime 1x -benchmem . ./internal/memtier/ | $(GO) run ./cmd/swexbench -o BENCH_memtier.json

# trace-smoke exercises the tracing pipeline end to end: a traced run must
# export, export deterministically, and round-trip the profile view. The
# per-package tests assert the details; this is the `make check` wiring.
trace-smoke:
	$(GO) test ./internal/trace/
	$(GO) run ./cmd/swextrace -worker 4 -iters 2 -nodes 4 -protocol h2 -o /tmp/swextrace-smoke.json
	$(GO) run ./cmd/swextrace profile -worker 4 -iters 2 -nodes 4 -protocol h2 >/dev/null

check: vet lint test race mc-smoke mc-por-smoke trace-smoke sweep-smoke swexd-smoke fuzz-smoke memtier-smoke parsim-smoke
