package swex

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, each regenerating that exhibit's data on the simulator and
// reporting the headline quantity as a custom metric. Run with
//
//	go test -bench=. -benchmem
//
// Full problem sizes are used by default (a few seconds to ~1 minute per
// exhibit); -short switches to the quick configurations.

import (
	"testing"
)

func benchOpts() Options { return Options{Quick: testing.Short()} }

// BenchmarkTable1 regenerates the software handler latency table and
// reports the flexible-interface read-handler latency at 8 readers.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.CRead[0], "C-read-cycles")
		b.ReportMetric(d.ARead[0], "asm-read-cycles")
	}
}

// BenchmarkTable2 regenerates the median handler breakdown and reports the
// C and assembly totals (paper: 480/737 and 193/384).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.CRead.Total()), "C-read-total")
		b.ReportMetric(float64(d.CWrite.Total()), "C-write-total")
		b.ReportMetric(float64(d.ARead.Total()), "asm-read-total")
		b.ReportMetric(float64(d.AWrite.Total()), "asm-write-total")
	}
}

// BenchmarkTable3 regenerates the sequential application baselines and
// reports total sequential cycles across the suite.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			total += float64(r.SeqCycles)
		}
		b.ReportMetric(total, "seq-cycles-total")
	}
}

// BenchmarkFig2 regenerates the WORKER sweep and reports the H5 and H0
// run-time ratios at the largest worker-set size.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Figure2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(d.Sizes) - 1
		b.ReportMetric(d.Ratio["DirnH5SNB"][last], "H5-ratio-max")
		b.ReportMetric(d.Ratio["DirnH0SNB,ACK"][last], "H0-ratio-max")
	}
}

// BenchmarkFig3 regenerates the TSP thrashing study and reports the H5
// speedup gap (full-map/H5) with and without the victim cache.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Figure3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(d.Protocols) - 1
		b.ReportMetric(d.Speedup["base"][last]/d.Speedup["base"][last-1], "base-H5-gap")
		b.ReportMetric(d.Speedup["victim-cache"][last]/d.Speedup["victim-cache"][last-1], "victim-H5-gap")
	}
}

// BenchmarkFig4 regenerates the application speedup study and reports the
// worst H5-to-full-map fraction across the six applications (the paper's
// 71%-100% claim).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, app := range d.Apps {
			s := d.Speedup[app]
			frac := s[len(s)-2] / s[len(s)-1]
			if frac < worst {
				worst = frac
			}
		}
		b.ReportMetric(worst, "worst-H5-fraction")
	}
}

// BenchmarkFig5 regenerates the 256-node TSP run and reports the H5
// fraction of full-map at scale.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		n := len(d.Speedup)
		b.ReportMetric(d.Speedup[n-1], "fullmap-speedup")
		b.ReportMetric(d.Speedup[n-2]/d.Speedup[n-1], "H5-fraction")
	}
}

// BenchmarkFig6 regenerates the EVOLVE worker-set histogram and reports
// its small-set and wide-set populations.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Hist.Count(1)), "size-1-sets")
		b.ReportMetric(float64(d.Hist.MaxBucket()), "max-set-size")
	}
}

// BenchmarkAblations regenerates all ten ablation studies and reports two
// headline deltas: the local-bit effect and the data-specific
// reconfiguration win.
func BenchmarkAblations(b *testing.B) {
	all := []func(Options) ([]AblationRow, error){
		AblateSoftware, AblateBroadcast, AblateBatchReads,
		AblateParallelInv, AblateMigratory, AblateAssociativity,
		AblateCICO, AblateMultithreading,
	}
	for i := 0; i < b.N; i++ {
		rows, err := AblateLocalBit(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Delta(), "localbit-delta-pct")
		ds, err := AblateDataSpecific(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*ds[0].Delta(), "dataspec-delta-pct")
		for _, fn := range all {
			if _, err := fn(benchOpts()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngine measures raw simulation speed: events per second on a
// 64-node WORKER run (the simulator's own performance, not the paper's).
func BenchmarkEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(MachineConfig{Nodes: 64, Spec: LimitLESS(5)})
		if err != nil {
			b.Fatal(err)
		}
		inst := Worker(8, 5).Setup(m)
		if _, err := m.Run(inst.Thread, 0); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Engine.Fired()), "events")
	}
}
