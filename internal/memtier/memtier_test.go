package memtier

import (
	"errors"
	"testing"

	"swex/internal/mem"
	"swex/internal/mesh"
	"swex/internal/sim"
)

func TestValidate(t *testing.T) {
	broken := func(mut func(*Config)) Config {
		cfg := DefaultDisaggregated()
		mut(&cfg)
		return cfg
	}
	brokenTier := func(mut func(*Config)) Config {
		cfg := DefaultTiered()
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"flat", Config{}, nil},
		{"disaggregated-default", DefaultDisaggregated(), nil},
		{"tiered-default", DefaultTiered(), nil},
		{"bad-kind", Config{Kind: Kind(99)}, ErrKind},
		{"sentinel-kind", Config{Kind: numKinds}, ErrKind},
		{"zero-hop-cycles", broken(func(c *Config) { c.Far.HopCycles = 0 }), ErrTierLatency},
		{"zero-flit-cycles", broken(func(c *Config) { c.Far.FlitCycles = 0 }), ErrTierLatency},
		{"zero-mem-cycles", broken(func(c *Config) { c.Far.MemCycles = 0 }), ErrTierLatency},
		{"zero-hops", broken(func(c *Config) { c.Far.Hops = 0 }), ErrTierSize},
		{"zero-flits", broken(func(c *Config) { c.Far.Flits = 0 }), ErrTierSize},
		{"zero-dram-read", brokenTier(func(c *Config) { c.DRAMRead = 0 }), ErrTierLatency},
		{"zero-nvm-write", brokenTier(func(c *Config) { c.NVMWrite = 0 }), ErrTierLatency},
		{"zero-dram-blocks", brokenTier(func(c *Config) { c.DRAMBlocks = 0 }), ErrTierSize},
		{"zero-promote", brokenTier(func(c *Config) { c.PromoteAfter = 0 }), ErrPromotion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestFlatBuildsNoModel(t *testing.T) {
	if m := New(sim.NewEngine(), 4, Config{}); m != nil {
		t.Fatalf("flat config built a model: %+v", m)
	}
}

func TestDisaggregatedLatencyAndQueueing(t *testing.T) {
	cfg := Config{Kind: KindDisaggregated, Far: mesh.TierConfig{
		Hops: 2, HopCycles: 5, FlitCycles: 2, Flits: 4, MemCycles: 10,
	}}
	m := New(sim.NewEngine(), 2, cfg)
	// ser=8, round trip hops=20, mem=10 -> uncontended total 38.
	if got := m.Access(0, 0, false); got != 38 {
		t.Fatalf("first access cost %d, want 38", got)
	}
	// Same cycle, same home: queues behind the first transfer's 8-cycle
	// link occupancy.
	if got := m.Access(0, 1, false); got != 46 {
		t.Fatalf("second access cost %d, want 46 (8 queued + 38)", got)
	}
	if q := m.LinkQueued(0); q != 8 {
		t.Fatalf("link queued %d cycles, want 8", q)
	}
	// A different home's link is independent.
	if got := m.Access(1, 2, true); got != 38 {
		t.Fatalf("other home's access cost %d, want 38", got)
	}
	if m.Stats().Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", m.Stats().Accesses)
	}
}

func TestDisaggregatedZeroLatencyIsFree(t *testing.T) {
	// The model checker runs tiers at zero latency to freeze time; the
	// model must accept that and charge nothing.
	m := New(sim.NewEngine(), 2, Config{Kind: KindDisaggregated})
	for i := 0; i < 4; i++ {
		if got := m.Access(0, mem.Block(i), i%2 == 0); got != 0 {
			t.Fatalf("zero-latency access cost %d", got)
		}
	}
}

func TestTieredAsymmetryAndPromotion(t *testing.T) {
	cfg := Config{
		Kind: KindTiered, DRAMRead: 2, DRAMWrite: 3, NVMRead: 20, NVMWrite: 50,
		DRAMBlocks: 1, PromoteAfter: 2,
	}
	eng := sim.NewEngine()
	m := New(eng, 1, cfg)
	b0, b1 := mem.Block(0), mem.Block(1)

	// Drain the channel between accesses so queueing does not blur the
	// per-access latencies under test.
	access := func(b mem.Block, write bool) sim.Cycle {
		lat := m.Access(0, b, write)
		eng.After(lat+1, func() {})
		for eng.Step() {
		}
		return lat
	}

	if got := access(b0, false); got != 20 {
		t.Fatalf("NVM read cost %d, want 20", got)
	}
	if got := access(b0, true); got != 50 {
		t.Fatalf("NVM write cost %d, want 50", got)
	}
	// Second touch crossed PromoteAfter: b0 is now in DRAM.
	if !m.InDRAM(b0) {
		t.Fatal("block 0 not promoted after 2 touches")
	}
	if got := access(b0, false); got != 2 {
		t.Fatalf("DRAM read cost %d, want 2", got)
	}
	if got := access(b0, true); got != 3 {
		t.Fatalf("DRAM write cost %d, want 3", got)
	}
	// Promoting b1 into the 1-block set evicts b0 (FIFO), which must
	// re-earn promotion from a reset touch count.
	access(b1, false)
	access(b1, false)
	if !m.InDRAM(b1) || m.InDRAM(b0) {
		t.Fatalf("capacity eviction wrong: b0 in DRAM=%v, b1 in DRAM=%v", m.InDRAM(b0), m.InDRAM(b1))
	}
	if got := access(b0, false); got != 20 {
		t.Fatalf("demoted block read cost %d, want 20 (NVM)", got)
	}
	if m.Stats().Promotions != 2 || m.Stats().Demotions != 1 {
		t.Fatalf("promotions=%d demotions=%d, want 2/1", m.Stats().Promotions, m.Stats().Demotions)
	}
}

func TestTieredChannelQueueing(t *testing.T) {
	cfg := DefaultTiered()
	m := New(sim.NewEngine(), 1, cfg)
	first := m.Access(0, 0, false)
	second := m.Access(0, 1, false)
	if second != first+cfg.NVMRead {
		t.Fatalf("same-cycle second access cost %d, want %d (queued behind the first)",
			second, first+cfg.NVMRead)
	}
	if m.Stats().FarQueued != first {
		t.Fatalf("queued %d cycles, want %d", m.Stats().FarQueued, first)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Cycle {
		m := New(sim.NewEngine(), 2, DefaultTiered())
		var out []sim.Cycle
		for i := 0; i < 32; i++ {
			out = append(out, m.Access(mem.NodeID(i%2), mem.Block(i%5), i%3 == 0))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKindString(t *testing.T) {
	want := []struct {
		k Kind
		s string
	}{{KindFlat, "flat"}, {KindDisaggregated, "disaggregated"}, {KindTiered, "tiered"}}
	for _, tc := range want {
		if tc.k.String() != tc.s {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(tc.k), tc.k.String(), tc.s)
		}
	}
}
