// Package memtier models the memory hierarchy behind a node's directory:
// what it costs, at a given cycle, for the home to read or write a block's
// backing store. The protocol engine consults it on every directory-side
// memory access, which makes the memory system a scenario axis orthogonal
// to the protocol spectrum the paper evaluates.
//
// Three memory-system kinds are modeled:
//
//   - KindFlat: the paper's machine — per-node DRAM at a fixed latency
//     (proto.Timing.MemLatency). A flat model is the package's zero value
//     and costs the simulator nothing: the fabric holds a nil *Model and
//     pays one branch per access.
//   - KindDisaggregated: home blocks live in rack-scale far memory
//     reached over a second interconnect tier (mesh.TierLink) with its
//     own hop latency, serialization bandwidth cap, and FIFO queueing —
//     the DRackSim-style machine.
//   - KindTiered: hybrid DRAM/NVM behind the directory with asymmetric
//     read/write latencies and a deterministic, cycle-driven hot-block
//     promotion policy: a block's Nth touch promotes it into a bounded
//     per-home DRAM set, evicting the oldest resident in promotion order.
//
// Every model is deterministic: the same access sequence at the same
// cycles yields the same latencies, so simulations stay byte-reproducible
// and cacheable by the sweep layer.
package memtier
