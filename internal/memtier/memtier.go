package memtier

import (
	"errors"
	"fmt"

	"swex/internal/mem"
	"swex/internal/mesh"
	"swex/internal/sim"
)

// Kind selects the memory-system model behind the directory.
type Kind int

const (
	// KindFlat is the paper's per-node DRAM at a fixed latency. A flat
	// configuration builds no model at all.
	KindFlat Kind = iota
	// KindDisaggregated places home memory across a second interconnect
	// tier with hop latency, a serialization bandwidth cap, and queueing.
	KindDisaggregated
	// KindTiered is hybrid DRAM/NVM with asymmetric read/write latencies
	// and deterministic hot-block promotion into a bounded DRAM set.
	KindTiered

	numKinds
)

// String names the kind as it appears in reports and sweep cache keys.
func (k Kind) String() string {
	switch k {
	case KindFlat:
		return "flat"
	case KindDisaggregated:
		return "disaggregated"
	case KindTiered:
		return "tiered"
	case numKinds:
		panic("memtier: numKinds is not a kind")
	default:
		panic(fmt.Sprintf("memtier: unknown kind %d", int(k)))
	}
}

// Named validation errors. Config.Validate wraps these with detail, so
// callers can match them with errors.Is while still seeing which field
// was wrong.
var (
	// ErrKind flags an out-of-range Kind.
	ErrKind = errors.New("memtier: unknown memory-system kind")
	// ErrTierLatency flags a zero latency parameter (sim.Cycle is
	// unsigned, so negatives are unrepresentable): a tier with free
	// accesses silently simulates nonsense.
	ErrTierLatency = errors.New("memtier: tier latency must be positive")
	// ErrTierSize flags a non-positive size parameter (flits, DRAM
	// capacity).
	ErrTierSize = errors.New("memtier: tier size must be positive")
	// ErrPromotion flags a non-positive promotion threshold.
	ErrPromotion = errors.New("memtier: promotion threshold must be positive")
)

// Config describes one memory-system scenario. The zero value is the flat
// paper machine. Only the fields of the selected Kind are read.
type Config struct {
	// Kind selects the model.
	Kind Kind

	// Far is the second-tier link timing (KindDisaggregated).
	Far mesh.TierConfig

	// DRAMRead and DRAMWrite are the near-tier access times
	// (KindTiered).
	DRAMRead, DRAMWrite sim.Cycle
	// NVMRead and NVMWrite are the far-tier access times (KindTiered).
	// NVM writes are the expensive direction on real devices.
	NVMRead, NVMWrite sim.Cycle
	// DRAMBlocks bounds each home's DRAM set in blocks (KindTiered).
	DRAMBlocks int
	// PromoteAfter is the touch count at which a block is promoted into
	// DRAM (KindTiered). Promotion is cycle-driven and deterministic: the
	// threshold touch itself still pays the NVM latency, later touches
	// hit DRAM.
	PromoteAfter int
}

// DefaultDisaggregated returns the disaggregated-memory scenario used by
// the exhibits: four switch hops at eight cycles each, an eight-flit
// block transfer at two cycles per flit, and a forty-cycle far device —
// a ~120-cycle uncontended fetch against the flat machine's eight.
func DefaultDisaggregated() Config {
	return Config{
		Kind: KindDisaggregated,
		Far: mesh.TierConfig{
			Hops:       4,
			HopCycles:  8,
			FlitCycles: 2,
			Flits:      8,
			MemCycles:  40,
		},
	}
}

// DefaultTiered returns the hybrid DRAM/NVM scenario used by the
// exhibits: DRAM at the flat machine's latency, NVM at 6x for reads and
// 20x for writes (device asymmetry plus controller queueing), a 64-block
// DRAM set per home, and promotion on the eighth touch — late enough
// that cold and lightly-shared blocks pay the NVM price for a meaningful
// fraction of their accesses.
func DefaultTiered() Config {
	return Config{
		Kind:         KindTiered,
		DRAMRead:     8,
		DRAMWrite:    8,
		NVMRead:      48,
		NVMWrite:     160,
		DRAMBlocks:   64,
		PromoteAfter: 8,
	}
}

// Validate reports configuration errors with named, matchable causes. A
// flat configuration is always valid. Model construction does not
// validate (the model checker deliberately runs zero-latency tiers to
// freeze simulated time); machine.Config.Validate is the gate real
// machines pass through.
func (c Config) Validate() error {
	switch c.Kind {
	case KindFlat:
		return nil
	case KindDisaggregated:
		if c.Far.HopCycles == 0 || c.Far.FlitCycles == 0 || c.Far.MemCycles == 0 {
			return fmt.Errorf("%w: disaggregated tier needs positive hop (%d), flit (%d), and memory (%d) cycles",
				ErrTierLatency, c.Far.HopCycles, c.Far.FlitCycles, c.Far.MemCycles)
		}
		if c.Far.Hops <= 0 || c.Far.Flits <= 0 {
			return fmt.Errorf("%w: disaggregated tier needs positive hops (%d) and flits (%d)",
				ErrTierSize, c.Far.Hops, c.Far.Flits)
		}
		return nil
	case KindTiered:
		if c.DRAMRead == 0 || c.DRAMWrite == 0 || c.NVMRead == 0 || c.NVMWrite == 0 {
			return fmt.Errorf("%w: tiered memory needs positive DRAM (%d/%d) and NVM (%d/%d) read/write cycles",
				ErrTierLatency, c.DRAMRead, c.DRAMWrite, c.NVMRead, c.NVMWrite)
		}
		if c.DRAMBlocks <= 0 {
			return fmt.Errorf("%w: tiered memory needs a positive DRAM capacity (%d blocks)",
				ErrTierSize, c.DRAMBlocks)
		}
		if c.PromoteAfter <= 0 {
			return fmt.Errorf("%w: got %d", ErrPromotion, c.PromoteAfter)
		}
		return nil
	case numKinds:
	}
	return fmt.Errorf("%w: %d", ErrKind, int(c.Kind))
}

// Stats aggregates the model's machine-wide accounting.
type Stats struct {
	// Accesses counts directory-side memory accesses through the model.
	Accesses uint64
	// FarQueued accumulates cycles accesses spent queued for a tier link
	// or memory channel.
	FarQueued sim.Cycle
	// DRAMHits and NVMAccesses split tiered accesses by the tier that
	// served them.
	DRAMHits, NVMAccesses uint64
	// Promotions and Demotions count DRAM-set membership changes.
	Promotions, Demotions uint64
}

// homeTier is one home node's tiered-placement state.
type homeTier struct {
	touches map[mem.Block]int
	dram    map[mem.Block]bool
	// order lists the DRAM set in promotion order; capacity evictions
	// take the head (FIFO), which keeps the policy deterministic without
	// any clock or randomness.
	order []mem.Block
}

// Model is the memory hierarchy of one machine: one tier link or memory
// channel per home node, consulted by the protocol fabric for every
// directory-side block access. A nil *Model means KindFlat.
type Model struct {
	cfg    Config
	engine *sim.Engine
	far    []mesh.TierLink // KindDisaggregated: per-home far link
	ch     []sim.Server    // KindTiered: per-home memory channel
	tiers  []homeTier      // KindTiered: per-home placement

	// stats is the accounting, sharded by home: every runtime mutation
	// happens on the accessed home, which the conservative parallel
	// engine guarantees runs on exactly one shard, so per-home counters
	// are race-free in parallel mode and sum to the machine-wide totals
	// Stats reports. (The sums commute, so the totals are identical to a
	// serial run's.)
	stats []Stats

	// clock, when non-nil, supplies the cycle home's shard observes in
	// place of the master engine's clock (parallel mode; DESIGN.md §14).
	clock func(mem.NodeID) sim.Cycle
}

// New builds a model for a machine of n nodes. A KindFlat configuration
// returns nil — the fabric's "no model" representation. New does not
// validate timing (see Config.Validate): the model checker runs tiers at
// zero latency on purpose.
func New(engine *sim.Engine, n int, cfg Config) *Model {
	if cfg.Kind == KindFlat {
		return nil
	}
	m := &Model{cfg: cfg, engine: engine, stats: make([]Stats, n)}
	switch cfg.Kind {
	case KindDisaggregated:
		m.far = make([]mesh.TierLink, n)
		for i := range m.far {
			m.far[i] = mesh.NewTierLink(cfg.Far)
		}
	case KindTiered:
		m.ch = make([]sim.Server, n)
		m.tiers = make([]homeTier, n)
		for i := range m.tiers {
			m.tiers[i] = homeTier{
				touches: make(map[mem.Block]int),
				dram:    make(map[mem.Block]bool),
			}
		}
	case KindFlat, numKinds:
		panic("memtier: unreachable kind")
	default:
		panic(fmt.Sprintf("memtier: unknown kind %d", int(cfg.Kind)))
	}
	return m
}

// Kind reports the model's configured kind.
func (m *Model) Kind() Kind { return m.cfg.Kind }

// Stats sums the per-home accounting into the machine-wide totals.
func (m *Model) Stats() Stats {
	var t Stats
	for i := range m.stats {
		s := &m.stats[i]
		t.Accesses += s.Accesses
		t.FarQueued += s.FarQueued
		t.DRAMHits += s.DRAMHits
		t.NVMAccesses += s.NVMAccesses
		t.Promotions += s.Promotions
		t.Demotions += s.Demotions
	}
	return t
}

// EnableParallel installs the per-home clock used in parallel mode. Must
// be called before any simulated work.
func (m *Model) EnableParallel(clock func(mem.NodeID) sim.Cycle) { m.clock = clock }

// Access charges one directory-side memory access to block b at home and
// returns its total latency (queueing included), which the caller folds
// into the protocol event that needed the data. The access also occupies
// the home's tier link or memory channel, so concurrent accesses queue:
// a fire-and-forget write (a writeback landing in memory) delays the
// reads behind it even though nothing waits on the write itself.
func (m *Model) Access(home mem.NodeID, b mem.Block, write bool) sim.Cycle {
	m.stats[home].Accesses++
	var now sim.Cycle
	if m.clock == nil {
		now = m.engine.Now()
	} else {
		now = m.clock(home)
	}
	switch m.cfg.Kind {
	case KindDisaggregated:
		queue, transit := m.far[home].Transfer(now)
		m.stats[home].FarQueued += queue
		return queue + transit
	case KindTiered:
		return m.tieredAccess(home, b, write, now)
	case KindFlat, numKinds:
		panic("memtier: unreachable kind")
	default:
		panic(fmt.Sprintf("memtier: unknown kind %d", int(m.cfg.Kind)))
	}
}

// tieredAccess serves one access from the block's current tier, counts
// the touch, and promotes the block when it crosses the threshold.
func (m *Model) tieredAccess(home mem.NodeID, b mem.Block, write bool, now sim.Cycle) sim.Cycle {
	t := &m.tiers[home]
	st := &m.stats[home]
	var lat sim.Cycle
	if t.dram[b] {
		st.DRAMHits++
		if write {
			lat = m.cfg.DRAMWrite
		} else {
			lat = m.cfg.DRAMRead
		}
	} else {
		st.NVMAccesses++
		if write {
			lat = m.cfg.NVMWrite
		} else {
			lat = m.cfg.NVMRead
		}
		t.touches[b]++
		if t.touches[b] >= m.cfg.PromoteAfter {
			m.promote(t, st, b)
		}
	}
	start := m.ch[home].Reserve(now, lat)
	queue := start - now
	st.FarQueued += queue
	return queue + lat
}

// promote moves b into the home's DRAM set, evicting the oldest resident
// (promotion order) when the set is full. The evicted block restarts its
// touch count: it must re-earn promotion.
func (m *Model) promote(t *homeTier, st *Stats, b mem.Block) {
	if len(t.order) >= m.cfg.DRAMBlocks {
		victim := t.order[0]
		copy(t.order, t.order[1:])
		t.order = t.order[:len(t.order)-1]
		delete(t.dram, victim)
		t.touches[victim] = 0
		st.Demotions++
	}
	t.dram[b] = true
	t.order = append(t.order, b)
	delete(t.touches, b)
	st.Promotions++
}

// InDRAM reports whether block b currently sits in its home's DRAM set
// (KindTiered only; false otherwise). Testing and statistics.
func (m *Model) InDRAM(b mem.Block) bool {
	if m.cfg.Kind != KindTiered {
		return false
	}
	return m.tiers[mem.HomeOfBlock(b)].dram[b]
}

// LinkQueued reports the cycles transfers spent waiting on home's tier
// link (KindDisaggregated only; zero otherwise). Testing and statistics.
func (m *Model) LinkQueued(home mem.NodeID) sim.Cycle {
	if m.cfg.Kind != KindDisaggregated {
		return 0
	}
	return m.far[home].Queued
}
