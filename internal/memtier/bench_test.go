package memtier

import (
	"testing"

	"swex/internal/mem"
	"swex/internal/sim"
)

// The per-access micro-benchmarks: what one directory-side Access costs in
// host time for each family. These are the sites the protocol fabric hits
// for every fill, writeback, and direct access, so they must stay
// allocation-free in steady state (-benchmem is the proof; the tiered
// model's maps only grow while new blocks earn promotion).

func benchAccess(b *testing.B, cfg Config) {
	b.Helper()
	m := New(sim.NewEngine(), 4, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(mem.NodeID(i%4), mem.Block(i%256), i%4 == 0)
	}
	if m.Stats().Accesses != uint64(b.N) {
		b.Fatalf("accounted %d accesses, ran %d", m.Stats().Accesses, b.N)
	}
}

func BenchmarkMemTierAccessDisaggregated(b *testing.B) {
	benchAccess(b, DefaultDisaggregated())
}

func BenchmarkMemTierAccessTiered(b *testing.B) {
	benchAccess(b, DefaultTiered())
}
