package proto

import (
	"fmt"

	"swex/internal/cache"
	"swex/internal/mem"
)

// Checker validates coherence invariants while a simulation runs. It is a
// verification harness, not part of the modeled machine: when enabled, the
// fabric calls it after every event that changes a block's cached state,
// and it scans the machine for violations of the two properties every
// invalidation-based protocol must maintain:
//
//  1. Single writer: an Exclusive copy is the only copy.
//  2. Identical readers: all Shared copies of a block hold the same words.
//
// Violations panic immediately with a full description — in a
// deterministic simulator the panic point is exactly reproducible, which
// is what makes the checker useful.
type Checker struct {
	f *Fabric
	// Checks counts invariant evaluations.
	Checks uint64
}

// newChecker attaches a checker to the fabric.
func newChecker(f *Fabric) *Checker { return &Checker{f: f} }

// verify scans every cache's view of block b.
func (c *Checker) verify(b mem.Block, context string) {
	c.Checks++
	var exclusiveAt []mem.NodeID
	var copies []mem.NodeID
	var shared []cache.Line
	var sharedAt []mem.NodeID
	for i := 0; i < c.f.Nodes(); i++ {
		id := mem.NodeID(i)
		l, ok := c.f.Cache(id).HasBlock(b)
		if !ok {
			continue
		}
		switch l.State {
		case cache.Invalid:
			// An invalid line holds no copy; nothing to cross-check.
		case cache.Exclusive:
			copies = append(copies, id)
			exclusiveAt = append(exclusiveAt, id)
		case cache.Shared:
			copies = append(copies, id)
			shared = append(shared, l)
			sharedAt = append(sharedAt, id)
		default:
			panic(fmt.Sprintf("proto: checker: unknown cache line state %d at node %d", l.State, id))
		}
	}
	if len(exclusiveAt) > 1 {
		panic(fmt.Sprintf("proto: coherence violation (%s): block %d exclusive at nodes %v at cycle %d",
			context, b, exclusiveAt, c.f.Engine.Now()))
	}
	if len(exclusiveAt) == 1 && len(copies) > 1 {
		panic(fmt.Sprintf("proto: coherence violation (%s): block %d exclusive at node %d but cached at %v at cycle %d",
			context, b, exclusiveAt[0], copies, c.f.Engine.Now()))
	}
	for i := 1; i < len(shared); i++ {
		if shared[i].Words != shared[0].Words {
			panic(fmt.Sprintf("proto: coherence violation (%s): block %d shared copies diverge (node %d has %v, node %d has %v) at cycle %d",
				context, b, sharedAt[0], shared[0].Words, sharedAt[i], shared[i].Words, c.f.Engine.Now()))
		}
	}
}

// EnableChecker turns on invariant checking for this fabric. Expensive
// (a machine-wide scan per coherence event); intended for tests.
func (f *Fabric) EnableChecker() *Checker {
	f.checker = newChecker(f)
	return f.checker
}

// check is the fabric-internal hook; a nil checker costs one branch.
func (f *Fabric) check(b mem.Block, context string) {
	if f.checker != nil {
		f.checker.verify(b, context)
	}
}
