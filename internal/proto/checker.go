package proto

import (
	"fmt"

	"swex/internal/cache"
	"swex/internal/dir"
	"swex/internal/mem"
)

// Checker validates coherence invariants while a simulation runs. It is a
// verification harness, not part of the modeled machine: when enabled, the
// fabric calls it after every event that changes a block's cached state,
// and it scans the machine for violations of the two properties every
// invalidation-based protocol must maintain:
//
//  1. Single writer: an Exclusive copy is the only copy.
//  2. Identical readers: all Shared copies of a block hold the same words.
//  3. Directory–cache agreement: every cached copy is tracked by the home
//     (hardware pointer, local bit, software sharer list, broadcast bit,
//     or exclusive ownership) or has an invalidation already racing
//     toward it.
//
// Violations panic immediately with a full description — in a
// deterministic simulator the panic point is exactly reproducible, which
// is what makes the checker useful.
type Checker struct {
	f *Fabric
	// Checks counts invariant evaluations.
	Checks uint64
}

// newChecker attaches a checker to the fabric.
func newChecker(f *Fabric) *Checker { return &Checker{f: f} }

// verify scans every cache's view of block b.
func (c *Checker) verify(b mem.Block, context string) {
	c.Checks++
	var exclusiveAt []mem.NodeID
	var copies []mem.NodeID
	var shared []cache.Line
	var sharedAt []mem.NodeID
	for i := 0; i < c.f.Nodes(); i++ {
		id := mem.NodeID(i)
		l, ok := c.f.Cache(id).HasBlock(b)
		if !ok {
			continue
		}
		switch l.State {
		case cache.Invalid:
			// An invalid line holds no copy; nothing to cross-check.
		case cache.Exclusive:
			copies = append(copies, id)
			exclusiveAt = append(exclusiveAt, id)
		case cache.Shared:
			copies = append(copies, id)
			shared = append(shared, l)
			sharedAt = append(sharedAt, id)
		default:
			panic(fmt.Sprintf("proto: checker: unknown cache line state %d at node %d", l.State, id))
		}
	}
	if len(exclusiveAt) > 1 {
		panic(fmt.Sprintf("proto: coherence violation (%s): block %d exclusive at nodes %v at cycle %d",
			context, b, exclusiveAt, c.f.Engine.Now()))
	}
	if len(exclusiveAt) == 1 && len(copies) > 1 {
		panic(fmt.Sprintf("proto: coherence violation (%s): block %d exclusive at node %d but cached at %v at cycle %d",
			context, b, exclusiveAt[0], copies, c.f.Engine.Now()))
	}
	for i := 1; i < len(shared); i++ {
		if shared[i].Words != shared[0].Words {
			panic(fmt.Sprintf("proto: coherence violation (%s): block %d shared copies diverge (node %d has %v, node %d has %v) at cycle %d",
				context, b, sharedAt[0], shared[0].Words, sharedAt[i], shared[i].Words, c.f.Engine.Now()))
		}
	}
	if v := c.f.AgreementViolation(b); v != "" {
		panic(fmt.Sprintf("proto: coherence violation (%s): %s at cycle %d",
			context, v, c.f.Engine.Now()))
	}
}

// AgreementViolation checks the directory–cache agreement invariant for
// block b and returns a description of the first violation, or "" if the
// directory accounts for every cached copy. A copy is accounted for when
// the home tracks it (hardware pointer, local bit for the home's own copy,
// software-extended sharer list, broadcast bit, or exclusive ownership
// during Exclusive/Recall) or when an invalidation for the block is
// already in flight toward the holder — the transient the protocol
// creates when it reassigns a block whose old copies it has already begun
// invalidating.
//
// Two windows are exempt by design:
//
//   - While the entry is in SWait the extension software owns the block
//     and hardware tracking is legitimately in flux (a write-fault
//     handler has already reclaimed the software list but not yet
//     transmitted its invalidations).
//   - Under the software-only directory, the home's own copies are
//     invisible until the remote-access bit is set (paper Section 2.3);
//     that blind spot is the protocol's, not a bug.
func (f *Fabric) AgreementViolation(b mem.Block) string {
	home := f.homes[mem.HomeOfBlock(b)]
	e, ok := home.dir.Peek(b)
	if !ok {
		e = &dir.Entry{}
	}
	if e.State == dir.SWait {
		return ""
	}
	spec := home.specFor(b)
	var soft map[mem.NodeID]bool
	if f.Soft != nil {
		soft = make(map[mem.NodeID]bool)
		for _, id := range f.Soft.SharersOf(b) {
			soft[id] = true
		}
	}
	for i := 0; i < f.Nodes(); i++ {
		id := mem.NodeID(i)
		l, cached := f.caches[i].HasBlock(b)
		if !cached || l.State == cache.Invalid {
			continue
		}
		if spec.SoftwareOnly && !e.RemoteBit && id == home.node {
			continue
		}
		tracked := e.Ptrs.Has(id) ||
			(e.LocalBit && id == home.node) ||
			e.BroadcastBit ||
			((e.State == dir.Exclusive || e.State == dir.Recall) && e.Owner == id) ||
			// An upgrading requester keeps its old Shared copy while the
			// home collects acknowledgments on its behalf; the entry's
			// request register is what tracks it.
			((e.State == dir.AckWait || e.State == dir.Recall) && e.Req == id) ||
			soft[id]
		if !tracked && !f.invInFlight(b, id) {
			return fmt.Sprintf("block %d cached at node %d (%s) but untracked by home (state %s, ptrs %v, localbit %v, soft %v, broadcast %v)",
				b, id, l.State, e.State, e.Ptrs.List(), e.LocalBit, f.softList(b), e.BroadcastBit)
		}
	}
	return ""
}

// QuiescenceViolation checks that a machine whose event queue has drained
// is actually at rest for the given blocks, returning a description of the
// first problem or "" when quiescent. A quiet machine must have no
// messages in flight, no outstanding miss transactions, no half-finished
// software handler bookkeeping, and every directory entry in a stable
// state — anything else means work was dropped or the protocol livelocked.
// The model checker asserts this at every reachable state with an empty
// event queue.
func (f *Fabric) QuiescenceViolation(blocks []mem.Block) string {
	if n := len(f.inflight); n > 0 {
		return fmt.Sprintf("%d messages still in flight: %v", n, f.InFlight())
	}
	for i := 0; i < f.Nodes(); i++ {
		if n := f.caches[i].OutstandingTxns(); n > 0 {
			return fmt.Sprintf("node %d has %d outstanding miss transactions", i, n)
		}
		if n := f.caches[i].OutstandingDirect(); n > 0 {
			return fmt.Sprintf("node %d has %d outstanding direct accesses", i, n)
		}
	}
	for _, b := range blocks {
		h := f.homes[mem.HomeOfBlock(b)]
		e, ok := h.dir.Peek(b)
		if !ok {
			continue
		}
		switch e.State {
		case dir.Uncached, dir.Shared, dir.Exclusive:
			// Stable.
		case dir.AckWait, dir.Recall, dir.SWait:
			return fmt.Sprintf("block %d directory entry stuck in %s", b, e.State)
		default:
			panic(fmt.Sprintf("proto: checker: unknown directory state %d", int(e.State)))
		}
		if n := h.swReads[b]; n > 0 {
			return fmt.Sprintf("block %d has %d read-handler segments outstanding", b, n)
		}
		if r, queued := h.pendingWrite[b]; queued {
			return fmt.Sprintf("block %d has a queued write from node %d never serviced", b, r)
		}
	}
	return ""
}

// softList returns the software sharer list for diagnostics (nil without
// software).
func (f *Fabric) softList(b mem.Block) []mem.NodeID {
	if f.Soft == nil {
		return nil
	}
	return f.Soft.SharersOf(b)
}

// EnableChecker turns on invariant checking for this fabric. Expensive
// (a machine-wide scan per coherence event); intended for tests.
func (f *Fabric) EnableChecker() *Checker {
	f.checker = newChecker(f)
	return f.checker
}

// check is the fabric-internal hook; a nil checker costs one branch.
func (f *Fabric) check(b mem.Block, context string) {
	if f.checker != nil {
		f.checker.verify(b, context)
	}
}
