package proto

import (
	"bytes"
	"fmt"
	"sort"

	"swex/internal/mem"
)

// Snapshot serializes the logically observable machine state for the given
// blocks into a canonical byte string: two machines with equal snapshots
// are in the same protocol state and, driven identically, will behave
// identically. The model checker (internal/mc) uses the snapshot as the
// key of its visited set.
//
// The encoding deliberately abstracts three things away so that logically
// identical states reached through different histories compare equal:
//
//   - Statistics (counters, trap counts, retry counts, worker-set maxima)
//     are excluded: they record history, not state.
//   - Directory epochs are encoded relative to the entry's current epoch
//     (an in-flight acknowledgment matters only through whether its epoch
//     matches the entry's), so histories with different transaction counts
//     still merge.
//   - Event firing times are excluded: the checker runs the machine with
//     zero-latency timing (mesh.ZeroLatency, zero Timing), so simulated
//     time is frozen at cycle zero and only the firing *order* of pending
//     events — which the encoding preserves — determines behavior.
//
// Pending events appear through their inspection tags: in-flight messages
// (tagged with the fabric's registry entries) and software handler
// completions/retries (tagged by the scheduling sites in home.go and
// cachectl.go). An untagged pending event encodes as "?"; the model
// checker's worlds never schedule one, but the encoding stays total.
func (f *Fabric) Snapshot(blocks []mem.Block) []byte {
	sorted := make([]mem.Block, len(blocks))
	copy(sorted, blocks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var buf bytes.Buffer
	for _, b := range sorted {
		f.snapBlock(&buf, b)
	}
	for i := 0; i < f.Nodes(); i++ {
		f.snapNode(&buf, mem.NodeID(i), sorted)
	}
	f.snapPending(&buf)
	return buf.Bytes()
}

// snapBlock encodes the home-side state of one block.
func (f *Fabric) snapBlock(buf *bytes.Buffer, b mem.Block) {
	h := f.homes[mem.HomeOfBlock(b)]
	fmt.Fprintf(buf, "B%d{", b)
	if e, ok := h.dir.Peek(b); ok {
		fmt.Fprintf(buf, "st=%d ptrs=%v lb=%v own=%d ack=%d req=%d/%v swx=%v rb=%v bb=%v",
			int(e.State), e.Ptrs.List(), e.LocalBit, e.Owner, e.AckCount,
			e.Req, e.ReqWrite, e.SwExt, e.RemoteBit, e.BroadcastBit)
	}
	fmt.Fprintf(buf, " swtxn=%v swr=%d", h.swTxn[b], h.swReads[b])
	if w, ok := h.pendingWrite[b]; ok {
		fmt.Fprintf(buf, " pw=%d", w)
	}
	if st, ok := h.mig[b]; ok && f.MigratoryDetect {
		fmt.Fprintf(buf, " mig=%d/%v/%d/%v/%v",
			st.lastWriter, st.haveWriter, st.score, st.migratory, st.lastGrantRead)
	}
	if f.Soft != nil {
		fmt.Fprintf(buf, " soft=%v", f.Soft.SharersOf(b))
	}
	fmt.Fprintf(buf, " mem=%v}", f.Mem.ReadBlock(b))
}

// snapNode encodes one node's cache-side state for the tracked blocks.
func (f *Fabric) snapNode(buf *bytes.Buffer, id mem.NodeID, blocks []mem.Block) {
	cc := f.caches[id]
	fmt.Fprintf(buf, "N%d{", id)
	for _, b := range blocks {
		if l, ok := cc.c.Peek(b); ok {
			fmt.Fprintf(buf, "c%d=%d/%v/%v ", b, int(l.State), l.Dirty, l.Words)
		}
		if t, ok := cc.txns[b]; ok {
			fmt.Fprintf(buf, "t%d=%v[", b, t.write)
			for _, w := range t.waiters {
				fmt.Fprintf(buf, "(%d %v %d %v %v)", w.addr, w.op.Write, w.op.Value, w.op.RMW != nil, w.checkout)
			}
			fmt.Fprintf(buf, "] ")
		}
		if n := len(cc.watchers[b]); n > 0 {
			fmt.Fprintf(buf, "w%d=%d ", b, n)
		}
	}
	fmt.Fprintf(buf, "}")
}

// snapPending encodes the engine's pending events in firing order.
func (f *Fabric) snapPending(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "Q[")
	for _, ev := range f.Engine.PendingTagged() {
		switch tag := ev.Tag.(type) {
		case *flight:
			m := tag.m
			// Relative epoch, and only for the kinds whose epoch the
			// protocol reads: equality with the entry's current epoch is
			// all that matters, and encoding the absolute value (or a
			// delta against a request's constant zero) would leak the
			// history-dependent transaction count into the fingerprint.
			var delta uint32
			if m.Kind.CarriesEpoch() {
				delta = f.entryEpoch(m.Block) - m.Epoch
			}
			fmt.Fprintf(buf, "M%d:%d>%d:b%d:e%d", int(m.Kind), m.Src, m.Dst, m.Block, delta)
			if m.Kind.CarriesData() {
				fmt.Fprintf(buf, ":%v", m.Words)
			}
			fmt.Fprintf(buf, ";")
		case *retryTag:
			fmt.Fprintf(buf, "retry:%d:blk%d:live=%v;", tag.cc.node, tag.b, tag.live())
		case string:
			fmt.Fprintf(buf, "%s;", tag)
		default:
			fmt.Fprintf(buf, "?;")
		}
	}
	fmt.Fprintf(buf, "]")
}

// PendingDescriptions renders the engine's pending events in firing order
// using their inspection tags: "deliver <msg>" for in-flight messages, the
// tag itself for tagged handler completions and retries, "event" for
// untagged events. The model checker's counterexample renderer uses it to
// narrate what each scheduling step fired.
func (f *Fabric) PendingDescriptions() []string {
	var out []string
	for _, ev := range f.Engine.PendingTagged() {
		switch tag := ev.Tag.(type) {
		case *flight:
			out = append(out, "deliver "+tag.m.String())
		case *retryTag:
			out = append(out, fmt.Sprintf("retry node%d blk%d", tag.cc.node, tag.b))
		case string:
			out = append(out, tag)
		default:
			out = append(out, "event")
		}
	}
	return out
}

// entryEpoch returns the current epoch of b's home directory entry (zero
// if the block has never been referenced).
func (f *Fabric) entryEpoch(b mem.Block) uint32 {
	h := f.homes[mem.HomeOfBlock(b)]
	if e, ok := h.dir.Peek(b); ok {
		return e.Epoch
	}
	return 0
}
