package proto

import (
	"bytes"
	"fmt"
	"sort"

	"swex/internal/mem"
)

// Snapshot serializes the logically observable machine state for the given
// blocks into a canonical byte string: two machines with equal snapshots
// are in the same protocol state and, driven identically, will behave
// identically. The model checker (internal/mc) uses the snapshot as the
// key of its visited set.
//
// The encoding deliberately abstracts three things away so that logically
// identical states reached through different histories compare equal:
//
//   - Statistics (counters, trap counts, retry counts, worker-set maxima)
//     are excluded: they record history, not state.
//   - Directory epochs are encoded relative to the entry's current epoch
//     (an in-flight acknowledgment matters only through whether its epoch
//     matches the entry's), so histories with different transaction counts
//     still merge.
//   - Event firing times are excluded: the checker runs the machine with
//     zero-latency timing (mesh.ZeroLatency, zero Timing), so simulated
//     time is frozen at cycle zero and only the firing *order* of pending
//     events — which the encoding preserves — determines behavior.
//
// Pending events appear through their inspection tags: in-flight messages
// (tagged with the fabric's registry entries) and software handler
// completions/retries (tagged by the scheduling sites in home.go and
// cachectl.go). An untagged pending event encodes as "?"; the model
// checker's worlds never schedule one, but the encoding stays total.
func (f *Fabric) Snapshot(blocks []mem.Block) []byte {
	sorted := make([]mem.Block, len(blocks))
	copy(sorted, blocks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var buf bytes.Buffer
	for _, b := range sorted {
		f.snapBlock(&buf, b)
	}
	for i := 0; i < f.Nodes(); i++ {
		f.snapNode(&buf, mem.NodeID(i), sorted)
	}
	f.snapPending(&buf)
	return buf.Bytes()
}

// snapBlock encodes the home-side state of one block.
func (f *Fabric) snapBlock(buf *bytes.Buffer, b mem.Block) {
	h := f.homes[mem.HomeOfBlock(b)]
	fmt.Fprintf(buf, "B%d{", b)
	if e, ok := h.dir.Peek(b); ok {
		fmt.Fprintf(buf, "st=%d ptrs=%v lb=%v own=%d ack=%d req=%d/%v swx=%v rb=%v bb=%v",
			int(e.State), e.Ptrs.List(), e.LocalBit, e.Owner, e.AckCount,
			e.Req, e.ReqWrite, e.SwExt, e.RemoteBit, e.BroadcastBit)
	}
	fmt.Fprintf(buf, " swtxn=%v swr=%d", h.swTxn[b], h.swReads[b])
	if w, ok := h.pendingWrite[b]; ok {
		fmt.Fprintf(buf, " pw=%d", w)
	}
	if st, ok := h.mig[b]; ok && f.MigratoryDetect {
		fmt.Fprintf(buf, " mig=%d/%v/%d/%v/%v",
			st.lastWriter, st.haveWriter, st.score, st.migratory, st.lastGrantRead)
	}
	if f.Soft != nil {
		fmt.Fprintf(buf, " soft=%v", f.Soft.SharersOf(b))
	}
	fmt.Fprintf(buf, " mem=%v}", f.Mem.ReadBlock(b))
}

// snapNode encodes one node's cache-side state for the tracked blocks.
func (f *Fabric) snapNode(buf *bytes.Buffer, id mem.NodeID, blocks []mem.Block) {
	cc := f.caches[id]
	fmt.Fprintf(buf, "N%d{", id)
	for _, b := range blocks {
		if l, ok := cc.c.Peek(b); ok {
			fmt.Fprintf(buf, "c%d=%d/%v/%v ", b, int(l.State), l.Dirty, l.Words)
		}
		if t, ok := cc.txns[b]; ok {
			fmt.Fprintf(buf, "t%d=%v[", b, t.write)
			for _, w := range t.waiters {
				fmt.Fprintf(buf, "(%d %v %d %v %v", w.addr, w.op.Write, w.op.Value, w.op.RMW != nil, w.checkout)
				if w.watch {
					// Appended rather than unconditional so fingerprints
					// of watch-free histories keep their PR 3 encodings.
					fmt.Fprintf(buf, " w")
				}
				fmt.Fprintf(buf, ")")
			}
			fmt.Fprintf(buf, "] ")
		}
		if ws := cc.watchers[b]; len(ws) > 0 {
			// Parked watchers are logical state: which address each waits
			// on and which value it expects to change determine whether a
			// future coherence event completes or re-parks it, so a bare
			// count would merge states that diverge.
			fmt.Fprintf(buf, "w%d=[", b)
			for _, w := range ws {
				fmt.Fprintf(buf, "(%d %d)", w.addr, w.old)
			}
			fmt.Fprintf(buf, "] ")
		}
	}
	// Outstanding directoryless accesses, per home in node order. An op's
	// queue position determines which DRESP completes it, so the queues
	// are state. Encoded only when non-empty, so directoryful histories
	// keep their existing bytes.
	for hid := 0; hid < f.Nodes(); hid++ {
		q := cc.direct[mem.NodeID(hid)]
		if len(q) == 0 {
			continue
		}
		fmt.Fprintf(buf, "d%d=[", hid)
		for _, op := range q {
			fmt.Fprintf(buf, "(%v %d %v)", op.Write, op.Value, op.RMW != nil)
		}
		fmt.Fprintf(buf, "] ")
	}
	fmt.Fprintf(buf, "}")
}

// snapPending encodes the engine's pending events in firing order, each
// prefixed by its firing delay relative to the current cycle when that
// delay is non-zero. Order alone is not sufficient once watch re-arms
// enter the picture: a re-arm is scheduled one cycle out (the only
// non-zero delay a zero-latency world ever schedules), so a state where
// the re-arm fires before a newly injected zero-delay event and a state
// where it fires after are different states. Encoding the relative delay
// separates them while leaving delay-free histories byte-identical to
// the order-only encoding.
func (f *Fabric) snapPending(buf *bytes.Buffer) {
	now := f.Engine.Now()
	fmt.Fprintf(buf, "Q[")
	for _, ev := range f.Engine.PendingTagged() {
		if d := ev.At - now; d != 0 {
			fmt.Fprintf(buf, "+%d", d)
		}
		switch tag := ev.Tag.(type) {
		case *flight:
			f.snapMsg(buf, tag.m)
			fmt.Fprintf(buf, ";")
		case *procTag:
			// A message queued at a busy home is encoded exactly like one
			// still in flight, distinguished by the prefix: it carries the
			// same logical content and the same epoch-relativity rules.
			fmt.Fprintf(buf, "P%d:", tag.node)
			f.snapMsg(buf, tag.m)
			fmt.Fprintf(buf, ";")
		case *retryTag:
			fmt.Fprintf(buf, "retry:%d:blk%d:live=%v;", tag.cc.node, tag.b, tag.live())
		case *trapTag:
			// Renders the same bytes the handler's eager label used to
			// carry, so fingerprints of existing histories are unchanged.
			fmt.Fprintf(buf, "%s;", tag.label())
		case *watchTag:
			fmt.Fprintf(buf, "%s;", tag.label())
		case blockTag:
			fmt.Fprintf(buf, "%s;", tag.label)
		case string:
			fmt.Fprintf(buf, "%s;", tag)
		default:
			fmt.Fprintf(buf, "?;")
		}
	}
	fmt.Fprintf(buf, "]")
}

// snapMsg encodes one protocol message canonically. The epoch is encoded
// relative to the entry's current epoch, and only for the kinds whose
// epoch the protocol reads: equality with the entry's current epoch is
// all that matters, and encoding the absolute value (or a delta against
// a request's constant zero) would leak the history-dependent
// transaction count into the fingerprint.
func (f *Fabric) snapMsg(buf *bytes.Buffer, m Msg) {
	var delta uint32
	if m.Kind.CarriesEpoch() {
		delta = f.entryEpoch(m.Block) - m.Epoch
	}
	fmt.Fprintf(buf, "M%d:%d>%d:b%d:e%d", int(m.Kind), m.Src, m.Dst, m.Block, delta)
	if m.Kind.CarriesData() {
		fmt.Fprintf(buf, ":%v", m.Words)
	}
	if m.Kind == MsgDREQ || m.Kind == MsgDRESP {
		// Direct accesses carry a word, an offset, and an operation; all
		// of it determines behavior, so all of it is state. Appended only
		// for the new kinds, so existing encodings keep their bytes.
		fmt.Fprintf(buf, ":o%d:w%v:rmw%v:v%d", m.Off, m.DWrite, m.RMW != nil, m.Words[0])
	}
}

// PendingDescriptions renders the engine's pending events in firing order
// using their inspection tags: "deliver <msg>" for in-flight messages, the
// tag itself for tagged handler completions and retries, "event" for
// untagged events. The model checker's counterexample renderer uses it to
// narrate what each scheduling step fired.
func (f *Fabric) PendingDescriptions() []string {
	var out []string
	for _, ev := range f.Engine.PendingTagged() {
		switch tag := ev.Tag.(type) {
		case *flight:
			out = append(out, "deliver "+tag.m.String())
		case *procTag:
			out = append(out, fmt.Sprintf("proc:%d:%s", tag.node, tag.m.String()))
		case *retryTag:
			out = append(out, fmt.Sprintf("retry node%d blk%d", tag.cc.node, tag.b))
		case *trapTag:
			out = append(out, tag.label())
		case *watchTag:
			out = append(out, tag.label())
		case blockTag:
			out = append(out, tag.label)
		case string:
			out = append(out, tag)
		default:
			out = append(out, "event")
		}
	}
	return out
}

// NextEventBlock reports the block the engine's earliest pending event
// operates on, when its inspection tag identifies one (message delivery,
// busy retry, handler completion, queued home processing, watch re-arm,
// instruction fill). ok is false when nothing is pending or the event is
// untagged. The model checker's partial-order reduction uses it to decide
// whether firing the event can interfere with a slept injection; an
// unidentifiable event must be treated as interfering with everything.
func (f *Fabric) NextEventBlock() (mem.Block, bool) {
	evs := f.Engine.PendingTagged()
	if len(evs) == 0 {
		return 0, false
	}
	switch tag := evs[0].Tag.(type) {
	case *flight:
		return tag.m.Block, true
	case *procTag:
		return tag.m.Block, true
	case *retryTag:
		return tag.b, true
	case *trapTag:
		return tag.b, true
	case *watchTag:
		return tag.b, true
	case blockTag:
		return tag.b, true
	}
	return 0, false
}

// entryEpoch returns the current epoch of b's home directory entry (zero
// if the block has never been referenced).
func (f *Fabric) entryEpoch(b mem.Block) uint32 {
	h := f.homes[mem.HomeOfBlock(b)]
	if e, ok := h.dir.Peek(b); ok {
		return e.Epoch
	}
	return 0
}
