package proto

import (
	"strings"
	"testing"
)

// TestSpecValidateRejections drives Validate through every invalid
// combination of the spec flags, checking both that validation fails and
// that the error names the actual problem.
func TestSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"full-map+software-only", Spec{Name: "x", FullMap: true, SoftwareOnly: true}, "full-map excludes"},
		{"full-map+broadcast", Spec{Name: "x", FullMap: true, Broadcast: true}, "full-map excludes"},
		{"full-map+both", Spec{Name: "x", FullMap: true, SoftwareOnly: true, Broadcast: true}, "full-map excludes"},
		{"software-only+pointers", Spec{Name: "x", SoftwareOnly: true, HWPointers: 2}, "0 pointers"},
		{"software-only+one-pointer", Spec{Name: "x", SoftwareOnly: true, HWPointers: 1}, "0 pointers"},
		{"software-only+local-bit", Spec{Name: "x", SoftwareOnly: true, LocalBit: true}, "no local bit"},
		{"broadcast+zero-pointers", Spec{Name: "x", Broadcast: true}, "needs a hardware pointer"},
		{"broadcast+negative-pointers", Spec{Name: "x", Broadcast: true, HWPointers: -1}, "needs a hardware pointer"},
		{"negative-pointers", Spec{Name: "x", HWPointers: -1}, "negative pointer count"},
		{"negative-pointers+local-bit", Spec{Name: "x", HWPointers: -3, LocalBit: true}, "negative pointer count"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted an invalid spec", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSpecValidateAccepts checks that every constructor-built protocol —
// the spectrum, the broadcast variant, and the degenerate-but-legal
// corners — validates.
func TestSpecValidateAccepts(t *testing.T) {
	valid := append(Spectrum(), Dir1SW(),
		// Zero hardware pointers without the software-only machinery is a
		// degenerate LimitLESS that traps on every remote read; legal.
		Spec{Name: "DirnH0SNB"},
		Spec{Name: "DirnH0SNB+lb", LocalBit: true},
	)
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Name, err)
		}
	}
}

// TestSpecNames pins each constructor to its Dir_iH_XS_Y,A rendering.
func TestSpecNames(t *testing.T) {
	cases := map[string]Spec{
		"DirnHNBS-":      FullMap(),
		"DirnH2SNB":      LimitLESS(2),
		"DirnH5SNB":      LimitLESS(5),
		"DirnH1SNB":      OnePointer(AckHW),
		"DirnH1SNB,LACK": OnePointer(AckLACK),
		"DirnH1SNB,ACK":  OnePointer(AckSW),
		"DirnH0SNB,ACK":  SoftwareOnly(),
		"Dir1H1SB,LACK":  Dir1SW(),
	}
	for want, spec := range cases {
		if spec.Name != want {
			t.Errorf("spec name %q, want %q", spec.Name, want)
		}
	}
}

// TestAckModeString covers the three defined modes and the rendering of an
// out-of-range value (which must be printable, not a panic: it appears in
// diagnostics for corrupted specs).
func TestAckModeString(t *testing.T) {
	cases := map[AckMode]string{
		AckHW:       "",
		AckLACK:     "LACK",
		AckSW:       "ACK",
		AckMode(7):  "ackmode(7)",
		AckMode(-1): "ackmode(-1)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("AckMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

// TestPointerCapacity checks the full-map/limited split and its edges: the
// software-only directory has capacity zero, and full-map tracks exactly
// the machine size whatever it is.
func TestPointerCapacity(t *testing.T) {
	cases := []struct {
		spec  Spec
		nodes int
		want  int
	}{
		{FullMap(), 64, 64},
		{FullMap(), 2, 2},
		{FullMap(), 1, 1},
		{LimitLESS(5), 64, 5},
		{LimitLESS(2), 2, 2},
		{OnePointer(AckHW), 64, 1},
		{Dir1SW(), 64, 1},
		{SoftwareOnly(), 64, 0},
	}
	for _, tc := range cases {
		if got := tc.spec.PointerCapacity(tc.nodes); got != tc.want {
			t.Errorf("%s.PointerCapacity(%d) = %d, want %d", tc.spec.Name, tc.nodes, got, tc.want)
		}
	}
}

// TestSpectrumOrder pins the spectrum to the paper's increasing
// hardware-cost order — the experiment harnesses index into it.
func TestSpectrumOrder(t *testing.T) {
	want := []string{
		"DirnH0SNB,ACK", "DirnH1SNB,ACK", "DirnH1SNB,LACK", "DirnH1SNB",
		"DirnH2SNB", "DirnH3SNB", "DirnH4SNB", "DirnH5SNB", "DirnHNBS-",
	}
	got := Spectrum()
	if len(got) != len(want) {
		t.Fatalf("spectrum has %d protocols, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Errorf("spectrum[%d] = %s, want %s", i, s.Name, want[i])
		}
	}
}
