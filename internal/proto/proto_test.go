package proto

import (
	"fmt"
	"strings"
	"testing"

	"swex/internal/dir"

	"swex/internal/cache"
	"swex/internal/mem"
	"swex/internal/mesh"
	"swex/internal/sim"
)

// rig is a minimal machine for protocol-level tests: fabric + zero-cost
// software + immediate traps, no processor model.
type rig struct {
	t      *testing.T
	engine *sim.Engine
	mem    *mem.Memory
	f      *Fabric
}

func newRig(t *testing.T, nodes int, spec Spec) *rig {
	t.Helper()
	engine := sim.NewEngine()
	net := mesh.New(engine, mesh.DefaultConfig(nodes))
	memory := mem.New(nodes)
	var soft Software
	if spec.UsesSoftware() {
		soft = NewNopSoftware()
	}
	cfg := CacheConfig{Cache: cache.Config{Lines: 64, VictimLines: 0}, PerfectIfetch: true}
	f, err := NewFabric(engine, net, memory, spec, DefaultTiming(),
		NewImmediateTraps(engine, nodes), soft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, engine: engine, mem: memory, f: f}
}

// read performs a blocking read from node n and returns the value.
func (r *rig) read(n mem.NodeID, a mem.Addr) uint64 {
	var got uint64
	done := false
	r.f.Cache(n).Access(a, Op{Done: func(v uint64) { got = v; done = true }})
	if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
		r.t.Fatalf("read by node %d of %d did not complete", n, a)
	}
	return got
}

// write performs a blocking write from node n.
func (r *rig) write(n mem.NodeID, a mem.Addr, v uint64) {
	done := false
	r.f.Cache(n).Access(a, Op{Write: true, Value: v, Done: func(uint64) { done = true }})
	if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
		r.t.Fatalf("write by node %d of %d did not complete", n, a)
	}
}

// rmw performs a blocking read-modify-write and returns the old value.
func (r *rig) rmw(n mem.NodeID, a mem.Addr, fn func(uint64) uint64) uint64 {
	var old uint64
	done := false
	r.f.Cache(n).Access(a, Op{Write: true, RMW: fn, Done: func(v uint64) { old = v; done = true }})
	if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
		r.t.Fatalf("rmw by node %d did not complete", n)
	}
	return old
}

func TestRemoteReadReturnsMemoryValue(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 99)
	if got := r.read(2, a); got != 99 {
		t.Fatalf("remote read = %d, want 99", got)
	}
	// Second read hits the cache: no new transaction.
	if got := r.read(2, a); got != 99 {
		t.Fatalf("cached read = %d, want 99", got)
	}
	if r.f.Cache(2).OutstandingTxns() != 0 {
		t.Fatal("transactions leaked")
	}
}

func TestWriteThenRemoteReadPropagates(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.write(1, a, 42)
	if got := r.read(2, a); got != 42 {
		t.Fatalf("read after remote write = %d, want 42 (recall path)", got)
	}
	if got := r.read(1, a); got != 42 {
		t.Fatalf("writer re-read = %d, want 42", got)
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	r := newRig(t, 8, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 7)
	for n := mem.NodeID(1); n < 8; n++ {
		if got := r.read(n, a); got != 7 {
			t.Fatalf("node %d initial read = %d", n, got)
		}
	}
	r.write(1, a, 8)
	for n := mem.NodeID(2); n < 8; n++ {
		if got := r.read(n, a); got != 8 {
			t.Fatalf("node %d read after invalidation = %d, want 8", n, got)
		}
	}
	// All readers' copies must have been invalidated and re-fetched.
	if r.f.Counters.Get("msg.INV") == 0 {
		t.Fatal("no invalidations sent")
	}
	if r.f.Counters.Get("msg.ACK") == 0 {
		t.Fatal("no acknowledgments received")
	}
}

func TestFullMapNeverTraps(t *testing.T) {
	r := newRig(t, 16, FullMap())
	a := r.mem.AllocOn(0, 1)
	for n := mem.NodeID(0); n < 16; n++ {
		r.read(n, a)
	}
	r.write(3, a, 1)
	if got := r.f.Counters.Get("home.traps"); got != 0 {
		t.Fatalf("full-map trapped %d times", got)
	}
}

func TestLimitLESSTrapsOnOverflow(t *testing.T) {
	r := newRig(t, 16, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	// Readers 1 and 2 fit the two pointers; reader 3 overflows.
	r.read(1, a)
	r.read(2, a)
	if got := r.f.Home(0).Traps; got != 0 {
		t.Fatalf("trapped %d times before overflow", got)
	}
	r.read(3, a)
	if got := r.f.Home(0).Traps; got != 1 {
		t.Fatalf("traps = %d after overflow, want 1", got)
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if !e.SwExt {
		t.Fatal("entry not marked software-extended")
	}
	if e.SwCount != 3 {
		t.Fatalf("SwCount = %d, want 3 (two drained + requester)", e.SwCount)
	}
	if e.Ptrs.Count() != 0 {
		t.Fatalf("hardware pointers not drained: %d", e.Ptrs.Count())
	}
	// Subsequent readers are handled in hardware until the next overflow.
	r.read(4, a)
	r.read(5, a)
	if got := r.f.Home(0).Traps; got != 1 {
		t.Fatalf("traps = %d, want still 1 (hardware absorbs refills)", got)
	}
	r.read(6, a)
	if got := r.f.Home(0).Traps; got != 2 {
		t.Fatalf("traps = %d after second overflow, want 2", got)
	}
}

func TestLimitLESSWriteInvalidatesSoftwareSharers(t *testing.T) {
	r := newRig(t, 16, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 5)
	for n := mem.NodeID(1); n <= 6; n++ {
		r.read(n, a)
	}
	r.write(7, a, 6)
	if r.f.Counters.Get("home.sw_invalidations") == 0 {
		t.Fatal("write fault sent no software invalidations")
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if e.SwExt {
		t.Fatal("software extension not reclaimed after write fault")
	}
	// Every one of the six readers must see the new value (re-reading
	// overflows and re-extends the directory, which is fine).
	for n := mem.NodeID(1); n <= 6; n++ {
		if got := r.read(n, a); got != 6 {
			t.Fatalf("node %d read %d after software write fault, want 6", n, got)
		}
	}
}

func TestLocalBitAvoidsPointerUse(t *testing.T) {
	r := newRig(t, 4, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	r.read(0, a) // home's own read
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if !e.LocalBit {
		t.Fatal("home read did not set the local bit")
	}
	if e.Ptrs.Count() != 0 {
		t.Fatal("home read consumed a hardware pointer")
	}
}

func TestLocalBitInvalidatedOnWrite(t *testing.T) {
	r := newRig(t, 4, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 1)
	r.read(0, a)
	r.write(2, a, 2)
	if got := r.read(0, a); got != 2 {
		t.Fatalf("home re-read = %d, want 2 (local copy must be invalidated)", got)
	}
}

func TestSoftwareOnlyLocalFastPath(t *testing.T) {
	r := newRig(t, 4, SoftwareOnly())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 3)
	if got := r.read(0, a); got != 3 {
		t.Fatalf("local read = %d, want 3", got)
	}
	if r.f.Home(0).Traps != 0 {
		t.Fatal("intra-node access trapped with remote bit clear")
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if e.RemoteBit {
		t.Fatal("remote bit set by local access")
	}
}

func TestSoftwareOnlyRemoteSetsBitAndTraps(t *testing.T) {
	r := newRig(t, 4, SoftwareOnly())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 3)
	r.read(0, a) // home caches it
	if got := r.read(1, a); got != 3 {
		t.Fatalf("remote read = %d, want 3", got)
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if !e.RemoteBit {
		t.Fatal("remote access did not set the remote bit")
	}
	if r.f.Home(0).Traps == 0 {
		t.Fatal("remote access did not trap")
	}
	// The home's own cached copy must have been flushed.
	if _, cached := r.f.Cache(0).HasBlock(mem.BlockOf(a)); cached {
		t.Fatal("home copy not flushed on first remote access")
	}
	// Once the bit is set, even local accesses trap.
	before := r.f.Home(0).Traps
	r.read(0, a)
	if r.f.Home(0).Traps == before {
		t.Fatal("intra-node access after remote bit did not trap")
	}
}

func TestSoftwareOnlyWriteCoherence(t *testing.T) {
	r := newRig(t, 8, SoftwareOnly())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 1)
	for n := mem.NodeID(1); n < 5; n++ {
		r.read(n, a)
	}
	r.write(5, a, 2)
	for n := mem.NodeID(1); n < 5; n++ {
		if got := r.read(n, a); got != 2 {
			t.Fatalf("node %d read %d, want 2", n, got)
		}
	}
}

func TestBroadcastProtocol(t *testing.T) {
	r := newRig(t, 8, Dir1SW())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 1)
	for n := mem.NodeID(1); n < 6; n++ {
		r.read(n, a)
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if !e.BroadcastBit {
		t.Fatal("broadcast bit not set by overflow reads")
	}
	// Reads beyond the pointer do not trap.
	if r.f.Home(0).Traps != 0 {
		t.Fatalf("broadcast protocol trapped %d times on reads", r.f.Home(0).Traps)
	}
	r.write(6, a, 2)
	// The broadcast must invalidate every cached copy.
	for n := mem.NodeID(1); n < 6; n++ {
		if got := r.read(n, a); got != 2 {
			t.Fatalf("node %d read %d after broadcast, want 2", n, got)
		}
	}
	// Invalidations went to all 7 other nodes, cached or not.
	if got := r.f.Counters.Get("home.sw_invalidations"); got != 7 {
		t.Fatalf("broadcast sent %d invalidations, want 7", got)
	}
}

func TestOnePointerVariantsCoherent(t *testing.T) {
	for _, spec := range []Spec{OnePointer(AckHW), OnePointer(AckLACK), OnePointer(AckSW)} {
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, 8, spec)
			a := r.mem.AllocOn(0, 1)
			r.mem.Write(a, 10)
			for n := mem.NodeID(1); n < 6; n++ {
				if got := r.read(n, a); got != 10 {
					t.Fatalf("node %d read %d, want 10", n, got)
				}
			}
			r.write(6, a, 11)
			for n := mem.NodeID(1); n < 6; n++ {
				if got := r.read(n, a); got != 11 {
					t.Fatalf("node %d read %d, want 11", n, got)
				}
			}
		})
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, 2, FullMap())
	// Two blocks on node 0 that collide in node 1's 64-line cache.
	a1 := r.mem.AllocOn(0, 1)
	a2 := a1 + 64*mem.WordsPerBlock // same set, 64-line cache
	r.write(1, a1, 123)
	r.read(1, a2) // evicts the dirty line for a1
	if r.f.Counters.Get("msg.WB") == 0 {
		t.Fatal("dirty eviction sent no writeback")
	}
	if !r.engine.RunUntil(func() bool { return r.mem.Read(a1) == 123 }, 1_000_000) {
		t.Fatalf("writeback value not in memory: %d", r.mem.Read(a1))
	}
	// And the block is readable again with the written value.
	if got := r.read(0, a1); got != 123 {
		t.Fatalf("read after writeback = %d, want 123", got)
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	r := newRig(t, 8, FullMap())
	a := r.mem.AllocOn(0, 1)
	doneCount := 0
	// All eight nodes increment concurrently via RMW.
	for n := mem.NodeID(0); n < 8; n++ {
		r.f.Cache(n).Access(a, Op{
			Write: true,
			RMW:   func(old uint64) uint64 { return old + 1 },
			Done:  func(uint64) { doneCount++ },
		})
	}
	if !r.engine.RunUntil(func() bool { return doneCount == 8 }, 5_000_000) {
		t.Fatalf("only %d/8 RMWs completed", doneCount)
	}
	if got := r.read(0, a); got != 8 {
		t.Fatalf("concurrent increments lost updates: %d, want 8", got)
	}
	if r.f.Counters.Get("cache.busy_retries") == 0 {
		t.Fatal("expected BUSY retries under write contention")
	}
}

func TestConcurrentWritersAllProtocols(t *testing.T) {
	for _, spec := range Spectrum() {
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, 8, spec)
			a := r.mem.AllocOn(0, 1)
			doneCount := 0
			for n := mem.NodeID(0); n < 8; n++ {
				r.f.Cache(n).Access(a, Op{
					Write: true,
					RMW:   func(old uint64) uint64 { return old + 1 },
					Done:  func(uint64) { doneCount++ },
				})
			}
			if !r.engine.RunUntil(func() bool { return doneCount == 8 }, 20_000_000) {
				t.Fatalf("only %d/8 RMWs completed", doneCount)
			}
			if got := r.read(0, a); got != 8 {
				t.Fatalf("lost updates: %d, want 8", got)
			}
		})
	}
}

func TestWatchWakesOnWrite(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	var woke bool
	var sawValue uint64
	r.f.Cache(1).Watch(a, 0, func(v uint64) { woke = true; sawValue = v })
	r.engine.Run(10_000) // let the watch arm
	if woke {
		t.Fatal("watch fired before any change")
	}
	r.write(2, a, 77)
	if !r.engine.RunUntil(func() bool { return woke }, 1_000_000) {
		t.Fatal("watch never fired after write")
	}
	if sawValue != 77 {
		t.Fatalf("watch saw %d, want 77", sawValue)
	}
}

func TestWatchImmediateWhenAlreadyChanged(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.write(2, a, 5)
	var got uint64
	fired := false
	r.f.Cache(1).Watch(a, 0, func(v uint64) { got = v; fired = true })
	if !r.engine.RunUntil(func() bool { return fired }, 1_000_000) {
		t.Fatal("watch on already-changed value never fired")
	}
	if got != 5 {
		t.Fatalf("watch saw %d, want 5", got)
	}
}

func TestEpochFiltersStrayAcks(t *testing.T) {
	// Construct the writeback/invalidation crossing by hand: the home
	// must discard the ACK a node sends for an invalidation that a
	// writeback already satisfied.
	r := newRig(t, 2, FullMap())
	a := r.mem.AllocOn(0, 1)
	b := mem.BlockOf(a)
	r.write(1, a, 9)
	// Home believes node 1 owns the block. Deliver a stale-epoch ACK.
	r.f.Home(0).Deliver(Msg{Kind: MsgACK, Src: 1, Dst: 0, Block: b, Epoch: 999})
	r.engine.Run(0)
	if r.f.Home(0).StrayAcks == 0 {
		t.Fatal("stale-epoch ACK was not filtered")
	}
	// The block must still be coherent.
	if got := r.read(0, a); got != 9 {
		t.Fatalf("read = %d, want 9", got)
	}
}

func TestPerfectIfetchBypassesCache(t *testing.T) {
	r := newRig(t, 2, FullMap())
	done := false
	r.f.Cache(0).Ifetch(12345, func() { done = true })
	if !done {
		t.Fatal("perfect ifetch was not immediate")
	}
	if r.f.Cache(0).Cache().Stats.IMisses != 0 {
		t.Fatal("perfect ifetch touched the cache")
	}
}

func TestIfetchFillsAndConflicts(t *testing.T) {
	engine := sim.NewEngine()
	net := mesh.New(engine, mesh.DefaultConfig(2))
	memory := mem.New(2)
	cfg := CacheConfig{Cache: cache.Config{Lines: 64}}
	f, err := NewFabric(engine, net, memory, FullMap(), DefaultTiming(),
		NewImmediateTraps(engine, 2), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, engine: engine, mem: memory, f: f}

	a := memory.AllocOn(0, 1) // block 0, set 0
	r.mem.Write(a, 55)
	if got := r.read(0, a); got != 55 {
		t.Fatalf("read = %d", got)
	}
	// Instruction block in the same set displaces the data line.
	pc := mem.Addr(64 * mem.WordsPerBlock)
	fetched := false
	f.Cache(0).Ifetch(pc, func() { fetched = true })
	if !engine.RunUntil(func() bool { return fetched }, 100_000) {
		t.Fatal("ifetch never completed")
	}
	if f.Cache(0).Cache().Stats.IMisses != 1 {
		t.Fatal("ifetch should have missed")
	}
	if _, resident := f.Cache(0).HasBlock(mem.BlockOf(a)); resident {
		t.Fatal("conflicting ifetch did not displace the data line")
	}
	// Re-fetch of the same instruction hits.
	f.Cache(0).Ifetch(pc, func() {})
	engine.Run(0)
	if f.Cache(0).Cache().Stats.IHits != 1 {
		t.Fatal("second ifetch should hit")
	}
}

// Sequential-equivalence property: with operations issued one at a time
// (each completing before the next), the memory behaves like a single flat
// array regardless of which node performs each operation and which
// protocol runs underneath.
func TestPropertySequentialEquivalence(t *testing.T) {
	specs := []Spec{FullMap(), LimitLESS(2), OnePointer(AckLACK), SoftwareOnly(), Dir1SW()}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, 4, spec)
			base := r.mem.AllocOn(0, 8)
			base2 := r.mem.AllocOn(2, 8)
			addrs := []mem.Addr{
				base, base + 1, base + 5, // two blocks on node 0
				base2, base2 + 4, // two blocks on node 2
			}
			ref := map[mem.Addr]uint64{}
			rnd := sim.NewRand(12345)
			for i := 0; i < 400; i++ {
				n := mem.NodeID(rnd.Intn(4))
				a := addrs[rnd.Intn(len(addrs))]
				switch rnd.Intn(3) {
				case 0:
					if got := r.read(n, a); got != ref[a] {
						t.Fatalf("op %d: node %d read %d from %d, want %d (%s)",
							i, n, got, a, ref[a], spec.Name)
					}
				case 1:
					v := rnd.Uint64() % 1000
					r.write(n, a, v)
					ref[a] = v
				case 2:
					old := r.rmw(n, a, func(o uint64) uint64 { return o + 3 })
					if old != ref[a] {
						t.Fatalf("op %d: rmw old = %d, want %d", i, old, ref[a])
					}
					ref[a] += 3
				}
			}
		})
	}
}

// Single-writer invariant: scan all caches after a concurrent stress run;
// no block may ever end with two Exclusive copies or an Exclusive copy
// plus any other copy.
func TestPropertySingleWriter(t *testing.T) {
	for _, spec := range []Spec{FullMap(), LimitLESS(2), SoftwareOnly()} {
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, 8, spec)
			a := r.mem.AllocOn(0, 4)
			total := 0
			ops := 0
			rnd := sim.NewRand(777)
			for i := 0; i < 100; i++ {
				n := mem.NodeID(rnd.Intn(8))
				addr := a + mem.Addr(rnd.Intn(4))
				if rnd.Intn(2) == 0 {
					r.f.Cache(n).Access(addr, Op{Done: func(uint64) { ops++ }})
				} else {
					r.f.Cache(n).Access(addr, Op{
						Write: true,
						RMW:   func(o uint64) uint64 { return o + 1 },
						Done:  func(uint64) { ops++; total++ },
					})
				}
			}
			if !r.engine.RunUntil(func() bool { return ops == 100 }, 50_000_000) {
				t.Fatalf("stress run stalled at %d/100 ops", ops)
			}
			// Check exclusivity per block across all caches.
			for blk := mem.BlockOf(a); blk <= mem.BlockOf(a+3); blk++ {
				excl, copies := 0, 0
				for n := 0; n < 8; n++ {
					if l, ok := r.f.Cache(mem.NodeID(n)).HasBlock(blk); ok {
						copies++
						if l.State == cache.Exclusive {
							excl++
						}
					}
				}
				if excl > 1 || (excl == 1 && copies > 1) {
					t.Fatalf("block %d: %d exclusive among %d copies", blk, excl, copies)
				}
			}
			// No lost updates: read each word and sum.
			var sum uint64
			for i := 0; i < 4; i++ {
				sum += r.read(0, a+mem.Addr(i))
			}
			if sum != uint64(total) {
				t.Fatalf("lost updates: sum %d, want %d", sum, total)
			}
		})
	}
}

func TestCheckerCleanOnStress(t *testing.T) {
	// Run the concurrent-writer stress under every protocol with the
	// invariant checker armed: any single-writer or divergent-copy
	// violation panics.
	for _, spec := range []Spec{FullMap(), LimitLESS(2), OnePointer(AckLACK), SoftwareOnly(), Dir1SW()} {
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, 8, spec)
			chk := r.f.EnableChecker()
			a := r.mem.AllocOn(0, 4)
			ops := 0
			rnd := sim.NewRand(4242)
			for i := 0; i < 150; i++ {
				n := mem.NodeID(rnd.Intn(8))
				addr := a + mem.Addr(rnd.Intn(4))
				if rnd.Intn(3) == 0 {
					r.f.Cache(n).Access(addr, Op{Done: func(uint64) { ops++ }})
				} else {
					r.f.Cache(n).Access(addr, Op{
						Write: true,
						RMW:   func(o uint64) uint64 { return o + 1 },
						Done:  func(uint64) { ops++ },
					})
				}
			}
			if !r.engine.RunUntil(func() bool { return ops == 150 }, 50_000_000) {
				t.Fatalf("stress stalled at %d/150", ops)
			}
			if chk.Checks == 0 {
				t.Fatal("checker never ran")
			}
		})
	}
}

func TestCheckerCatchesViolation(t *testing.T) {
	// Plant a deliberate violation and confirm the checker fires.
	r := newRig(t, 2, FullMap())
	r.f.EnableChecker()
	a := r.mem.AllocOn(0, 1)
	r.write(1, a, 5) // node 1 exclusive
	// Forge a second exclusive copy behind the protocol's back.
	r.f.Cache(0).Cache().Insert(cache.Line{
		Block: mem.BlockOf(a), State: cache.Exclusive, Dirty: true,
	})
	defer func() {
		if recover() == nil {
			t.Error("checker missed a forged double-exclusive")
		}
	}()
	r.f.check(mem.BlockOf(a), "test")
}

func TestRingTracerCapturesEvents(t *testing.T) {
	r := newRig(t, 4, LimitLESS(2))
	tr := NewRingTracer(64)
	r.f.Trace = tr
	a := r.mem.AllocOn(0, 1)
	for n := mem.NodeID(1); n < 4; n++ {
		r.read(n, a) // third read overflows: trap event
	}
	if tr.Total == 0 || tr.Len() == 0 {
		t.Fatal("tracer captured nothing")
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "RREQ") {
		t.Fatalf("trace missing read requests:\n%s", dump)
	}
	if !strings.Contains(dump, "trap") {
		t.Fatalf("trace missing the overflow trap:\n%s", dump)
	}
}

func TestRingTracerWraps(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Event(sim.Cycle(i), "msg", "x")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total)
	}
	// Oldest-first dump: cycles 6..9.
	dump := tr.Dump()
	if !strings.Contains(dump, "6") || strings.Contains(dump, "         5  ") {
		t.Fatalf("wrap order wrong:\n%s", dump)
	}
}

func TestBatchReadsEnhancement(t *testing.T) {
	// With the enhancement on, a burst of reads during a read-overflow
	// handler is drained by it instead of being busied.
	r := newRig(t, 16, LimitLESS(2))
	r.f.BatchReads = true
	r.f.Soft.(*NopSoftware).FixedCost = 400 // a realistic handler length
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 9)
	done := 0
	var values []uint64
	for n := mem.NodeID(1); n < 12; n++ {
		r.f.Cache(n).Access(a, Op{Done: func(v uint64) { values = append(values, v); done++ }})
	}
	if !r.engine.RunUntil(func() bool { return done == 11 }, 10_000_000) {
		t.Fatalf("only %d/11 burst reads completed", done)
	}
	for _, v := range values {
		if v != 9 {
			t.Fatalf("burst read returned %d, want 9", v)
		}
	}
	if r.f.Counters.Get("home.batched_reads") == 0 {
		t.Fatal("no reads were batched")
	}
	// The extended directory must have recorded every reader.
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if got := e.SwCount + e.Ptrs.Count(); got < 8 {
		t.Fatalf("only %d sharers recorded after the burst", got)
	}
}

func TestBatchReadsPendingWriteDrains(t *testing.T) {
	// A write arriving during a read chain must be processed when the
	// chain ends (queue order), not starved.
	r := newRig(t, 16, LimitLESS(2))
	r.f.BatchReads = true
	r.f.Soft.(*NopSoftware).FixedCost = 400
	a := r.mem.AllocOn(0, 1)
	done := 0
	for n := mem.NodeID(1); n < 10; n++ {
		r.f.Cache(n).Access(a, Op{Done: func(uint64) { done++ }})
	}
	wrote := false
	r.f.Cache(10).Access(a, Op{Write: true, Value: 55, Done: func(uint64) { wrote = true; done++ }})
	if !r.engine.RunUntil(func() bool { return done == 10 }, 10_000_000) {
		t.Fatalf("stalled at %d/10 (write starved?)", done)
	}
	if !wrote {
		t.Fatal("write never completed")
	}
	if got := r.read(3, a); got != 55 {
		t.Fatalf("read after queued write = %d, want 55", got)
	}
}

func TestWritebackCrossesRecall(t *testing.T) {
	// Node 1 owns a dirty block whose eviction (WB) crosses the home's
	// recall INV: the home must treat the writeback as the recall's data
	// and the stray ACK must be filtered by the epoch check.
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.write(1, a, 123) // node 1 dirty owner

	// Force the eviction: insert a conflicting block directly (the test
	// cache has 64 lines; block b+64 shares its set).
	conflict := a + 64*mem.WordsPerBlock
	r.read(1, conflict) // evicts the dirty line -> WB in flight

	// Concurrently node 2 writes, recalling from node 1.
	var got uint64
	wrote := false
	r.f.Cache(2).Access(a, Op{Write: true, RMW: func(old uint64) uint64 {
		got = old
		return old + 1
	}, Done: func(uint64) { wrote = true }})
	if !r.engine.RunUntil(func() bool { return wrote }, 10_000_000) {
		t.Fatal("write after crossing WB never completed")
	}
	if got != 123 {
		t.Fatalf("RMW observed %d, want the written-back 123", got)
	}
	if final := r.read(3, a); final != 124 {
		t.Fatalf("final value %d, want 124", final)
	}
}

func TestWatchWakesOnEviction(t *testing.T) {
	// A watcher parked on a block that gets silently evicted must re-arm
	// (and eventually see the new value) rather than sleep forever.
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	var woke bool
	r.f.Cache(1).Watch(a, 0, func(v uint64) { woke = true })
	r.engine.Run(5_000)
	// Evict the watched block from node 1's cache via a conflicting fill.
	r.read(1, a+64*mem.WordsPerBlock)
	r.engine.Run(10_000)
	// Now write the value; the re-armed watch must fire.
	r.write(2, a, 7)
	if !r.engine.RunUntil(func() bool { return woke }, 10_000_000) {
		t.Fatal("watch lost across eviction")
	}
}

func TestH0RemoteDuringLocalFill(t *testing.T) {
	// The software-only directory's blind spot: a remote request racing
	// the home's own untracked fill must retry (BUSY) until the fill
	// lands, then flush it — never leaving an untracked stale copy.
	r := newRig(t, 4, SoftwareOnly())
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 5)
	var homeVal, remoteVal uint64
	homeDone, remoteDone := false, false
	// Home's local read and the remote read race.
	r.f.Cache(0).Access(a, Op{Done: func(v uint64) { homeVal = v; homeDone = true }})
	r.f.Cache(1).Access(a, Op{Done: func(v uint64) { remoteVal = v; remoteDone = true }})
	if !r.engine.RunUntil(func() bool { return homeDone && remoteDone }, 10_000_000) {
		t.Fatal("racing H0 reads did not complete")
	}
	if homeVal != 5 || remoteVal != 5 {
		t.Fatalf("values %d/%d, want 5/5", homeVal, remoteVal)
	}
	// Now node 1 writes; the home must see the new value (its copy was
	// flushed/tracked, not stale).
	r.write(1, a, 6)
	if got := r.read(0, a); got != 6 {
		t.Fatalf("home read %d after remote write, want 6 (stale untracked copy)", got)
	}
}

func TestDir1SWWriteAfterBroadcastBitNoSharers(t *testing.T) {
	// Broadcast-bit set but every copy has been silently evicted: the
	// write must still complete (absent caches just ACK).
	r := newRig(t, 8, Dir1SW())
	a := r.mem.AllocOn(0, 1)
	for n := mem.NodeID(1); n < 5; n++ {
		r.read(n, a)
	}
	// Evict all copies silently via conflicting fills.
	for n := mem.NodeID(1); n < 5; n++ {
		r.read(n, a+64*mem.WordsPerBlock)
	}
	r.write(5, a, 42)
	if got := r.read(6, a); got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
}

func TestPerBlockProtocolOverride(t *testing.T) {
	// A two-pointer machine with one block promoted to full-map: the
	// promoted block never traps regardless of sharers, the others do.
	r := newRig(t, 16, LimitLESS(2))
	plain := r.mem.AllocOn(0, 1)
	hot := r.mem.AllocOn(0, 1)
	if err := r.f.Home(0).Configure(mem.BlockOf(hot), FullMap()); err != nil {
		t.Fatal(err)
	}
	for n := mem.NodeID(1); n < 10; n++ {
		r.read(n, hot)
		r.read(n, plain)
	}
	hotEntry := r.f.Home(0).Entry(mem.BlockOf(hot))
	if hotEntry.SwExt {
		t.Fatal("full-map override still extended into software")
	}
	if hotEntry.Ptrs.Count() != 9 {
		t.Fatalf("full-map override holds %d pointers, want 9", hotEntry.Ptrs.Count())
	}
	plainEntry := r.f.Home(0).Entry(mem.BlockOf(plain))
	if !plainEntry.SwExt {
		t.Fatal("unoverridden block did not overflow a 2-pointer directory")
	}
	// Writes to the overridden block complete coherently.
	r.write(11, hot, 7)
	if got := r.read(2, hot); got != 7 {
		t.Fatalf("read %d after write to overridden block, want 7", got)
	}
}

func TestConfigureRejectsLateAndInvalid(t *testing.T) {
	r := newRig(t, 4, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	r.read(1, a)
	if err := r.f.Home(0).Configure(mem.BlockOf(a), FullMap()); err == nil {
		t.Fatal("reconfiguration after first use was accepted")
	}
	b := r.mem.AllocOn(0, 1)
	if err := r.f.Home(0).Configure(mem.BlockOf(b), SoftwareOnly()); err == nil {
		t.Fatal("software-only override accepted on a LimitLESS machine's software")
	}
	bad := Spec{Name: "x", SoftwareOnly: true, HWPointers: 3}
	if err := r.f.Home(0).Configure(mem.BlockOf(b), bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestConfigureNeedsSoftware(t *testing.T) {
	r := newRig(t, 4, FullMap()) // no software installed
	a := r.mem.AllocOn(0, 1)
	if err := r.f.Home(0).Configure(mem.BlockOf(a), LimitLESS(2)); err == nil {
		t.Fatal("software-using override accepted on a machine without protocol software")
	}
}

func TestMigratoryDetectionPromotesAndServes(t *testing.T) {
	r := newRig(t, 8, LimitLESS(5))
	r.f.MigratoryDetect = true
	a := r.mem.AllocOn(0, 1)
	// Token-style migration: each node reads then writes in turn.
	for hop := 0; hop < 6; hop++ {
		n := mem.NodeID(1 + hop%4)
		v := r.read(n, a)
		r.write(n, a, v+1)
	}
	if got := r.f.Counters.Get("home.migratory_promotions"); got == 0 {
		t.Fatal("migratory block never promoted")
	}
	if got := r.f.Counters.Get("home.migratory_read_grants"); got == 0 {
		t.Fatal("no reads served with ownership after promotion")
	}
	if got := r.read(5, a); got != 6 {
		t.Fatalf("token value %d after 6 hops, want 6", got)
	}
}

func TestMigratoryDemotesOnCleanRecall(t *testing.T) {
	r := newRig(t, 8, LimitLESS(5))
	r.f.MigratoryDetect = true
	a := r.mem.AllocOn(0, 1)
	// Promote.
	for hop := 0; hop < 4; hop++ {
		n := mem.NodeID(1 + hop%3)
		v := r.read(n, a)
		r.write(n, a, v+1)
	}
	if r.f.Counters.Get("home.migratory_promotions") == 0 {
		t.Fatal("setup: block not promoted")
	}
	// Now the access pattern turns read-shared: reads with no writes.
	r.read(4, a) // exclusive grant (still promoted)
	r.read(5, a) // recalls 4's clean copy -> demotion
	if r.f.Counters.Get("home.migratory_demotions") == 0 {
		t.Fatal("clean recall of a read grant did not demote")
	}
	// Subsequent reads are shared again: two simultaneous readers.
	r.read(6, a)
	r.read(7, a)
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if e.Ptrs.Count() < 2 {
		t.Fatalf("after demotion readers should share (%d pointers)", e.Ptrs.Count())
	}
}

func TestMigratoryReducesTransactions(t *testing.T) {
	// The enhancement's purpose: fewer home transactions per migration
	// hop (the follow-on write hits locally).
	hops := func(detect bool) uint64 {
		r := newRig(t, 8, LimitLESS(5))
		r.f.MigratoryDetect = detect
		a := r.mem.AllocOn(0, 1)
		for hop := 0; hop < 20; hop++ {
			n := mem.NodeID(1 + hop%4)
			v := r.read(n, a)
			r.write(n, a, v+1)
		}
		return r.f.Counters.Get("msg.WREQ") + r.f.Counters.Get("msg.RREQ")
	}
	off := hops(false)
	on := hops(true)
	if on >= off {
		t.Fatalf("migratory detection did not reduce requests: %d vs %d", on, off)
	}
}

func TestCheckInRetiresPointer(t *testing.T) {
	r := newRig(t, 4, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	r.read(1, a)
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if e.Ptrs.Count() != 1 {
		t.Fatal("setup: pointer missing")
	}
	done := false
	r.f.Cache(1).CheckIn(a, func() { done = true })
	if !done {
		t.Fatal("CheckIn should complete locally without blocking")
	}
	r.engine.Run(0)
	if e.Ptrs.Count() != 0 {
		t.Fatalf("pointer not retired: %d", e.Ptrs.Count())
	}
	if e.State != dir.Uncached {
		t.Fatalf("state %v after last check-in, want Uncached", e.State)
	}
	if r.f.Counters.Get("home.checkins") != 1 {
		t.Fatal("check-in not counted")
	}
	// The writer now invalidates nothing.
	r.write(2, a, 5)
	if got := r.f.Counters.Get("msg.INV"); got != 0 {
		t.Fatalf("write after check-in sent %d invalidations, want 0", got)
	}
}

func TestCheckInDirtyWritesBack(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.write(1, a, 77)
	done := false
	r.f.Cache(1).CheckIn(a, func() { done = true })
	r.engine.Run(0)
	if !done {
		t.Fatal("CheckIn never completed")
	}
	if got := r.read(2, a); got != 77 {
		t.Fatalf("read after dirty check-in = %d, want 77", got)
	}
}

func TestCheckInAbsentIsNoop(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	msgsBefore := r.f.Counters.Get("msg.REL")
	done := false
	r.f.Cache(1).CheckIn(a, func() { done = true })
	r.engine.Run(0)
	if !done {
		t.Fatal("absent CheckIn never completed")
	}
	if r.f.Counters.Get("msg.REL") != msgsBefore {
		t.Fatal("absent check-in sent a message")
	}
}

func TestCheckOutAcquiresOwnership(t *testing.T) {
	r := newRig(t, 4, LimitLESS(2))
	a := r.mem.AllocOn(0, 1)
	r.mem.Write(a, 9)
	done := false
	r.f.Cache(1).CheckOut(a, func() { done = true })
	if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
		t.Fatal("CheckOut never completed")
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if e.State != dir.Exclusive || e.Owner != 1 {
		t.Fatalf("state %v owner %d, want Exclusive owner 1", e.State, e.Owner)
	}
	// The subsequent read and write are pure local hits: no new requests.
	reqs := r.f.Counters.Get("msg.RREQ") + r.f.Counters.Get("msg.WREQ")
	if got := r.read(1, a); got != 9 {
		t.Fatalf("read %d, want 9", got)
	}
	r.write(1, a, 10)
	after := r.f.Counters.Get("msg.RREQ") + r.f.Counters.Get("msg.WREQ")
	if after != reqs {
		t.Fatalf("checked-out RMW sent %d extra requests, want 0", after-reqs)
	}
}

func TestCheckOutIdempotentWhenOwned(t *testing.T) {
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	r.write(1, a, 3)
	msgs := r.f.Net.Messages
	done := false
	r.f.Cache(1).CheckOut(a, func() { done = true })
	r.engine.Run(0)
	if !done {
		t.Fatal("owned CheckOut never completed")
	}
	if r.f.Net.Messages != msgs {
		t.Fatal("owned CheckOut sent messages")
	}
}

func TestCheckOutCheckInRoundTrip(t *testing.T) {
	// The full CICO discipline: check out, mutate locally, check in.
	// The home ends Uncached with memory holding the final value.
	r := newRig(t, 4, OnePointer(AckLACK))
	a := r.mem.AllocOn(0, 1)
	for n := mem.NodeID(1); n < 4; n++ {
		done := false
		r.f.Cache(n).CheckOut(a, func() { done = true })
		if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
			t.Fatalf("node %d CheckOut stalled", n)
		}
		r.write(n, a, uint64(n)*10)
		done = false
		r.f.Cache(n).CheckIn(a, func() { done = true })
		r.engine.Run(0)
	}
	e := r.f.Home(0).Entry(mem.BlockOf(a))
	if e.State != dir.Uncached {
		t.Fatalf("state %v after final check-in, want Uncached", e.State)
	}
	if got := r.mem.Read(a); got != 30 {
		t.Fatalf("memory holds %d, want 30", got)
	}
	// The serialized CICO pattern never traps on this protocol.
	if r.f.Home(0).Traps != 0 {
		t.Fatalf("CICO discipline trapped %d times, want 0", r.f.Home(0).Traps)
	}
}

func TestCheckOutJoinsReadTransaction(t *testing.T) {
	// A CheckOut issued while a read miss is outstanding must still end
	// with exclusive ownership.
	r := newRig(t, 4, FullMap())
	a := r.mem.AllocOn(0, 1)
	readDone, coDone := false, false
	r.f.Cache(1).Access(a, Op{Done: func(uint64) { readDone = true }})
	r.f.Cache(1).CheckOut(a, func() { coDone = true })
	if !r.engine.RunUntil(func() bool { return readDone && coDone }, 1_000_000) {
		t.Fatalf("stalled: read=%v checkout=%v", readDone, coDone)
	}
	line, ok := r.f.Cache(1).HasBlock(mem.BlockOf(a))
	if !ok || line.State != cache.Exclusive {
		t.Fatalf("CheckOut joined a read and ended %v, want Exclusive", line.State)
	}
}

// TestPropertyTortureAllFeatures drives randomized operation sequences —
// including check-in/check-out directives — through every protocol with
// every enhancement combination, with the invariant checker armed and a
// flat-memory oracle verifying every read. Operations run one at a time,
// so the oracle is exact.
func TestPropertyTortureAllFeatures(t *testing.T) {
	specs := []Spec{
		FullMap(), LimitLESS(2), LimitLESS(5),
		OnePointer(AckHW), OnePointer(AckLACK), OnePointer(AckSW),
		SoftwareOnly(), Dir1SW(),
	}
	for trial := 0; trial < len(specs)*2; trial++ {
		spec := specs[trial%len(specs)]
		rnd := sim.NewRand(uint64(trial)*7919 + 13)
		t.Run(fmt.Sprintf("%s/%d", spec.Name, trial), func(t *testing.T) {
			r := newRig(t, 6, spec)
			r.f.EnableChecker()
			r.f.BatchReads = trial%2 == 0
			r.f.MigratoryDetect = trial%3 == 0

			base := r.mem.AllocOn(0, 8)
			base2 := r.mem.AllocOn(3, 8)
			addrs := []mem.Addr{base, base + 2, base + 4, base2, base2 + 5}

			// Optionally reconfigure one block (before first use).
			if !spec.SoftwareOnly && spec.UsesSoftware() && trial%2 == 1 {
				if err := r.f.Home(0).Configure(mem.BlockOf(base), FullMap()); err != nil {
					t.Fatal(err)
				}
			}

			ref := map[mem.Addr]uint64{}
			for i := 0; i < 250; i++ {
				n := mem.NodeID(rnd.Intn(6))
				a := addrs[rnd.Intn(len(addrs))]
				switch rnd.Intn(6) {
				case 0, 1:
					if got := r.read(n, a); got != ref[a] {
						t.Fatalf("op %d: node %d read %d from %d, want %d",
							i, n, got, a, ref[a])
					}
				case 2:
					v := rnd.Uint64() % 997
					r.write(n, a, v)
					ref[a] = v
				case 3:
					old := r.rmw(n, a, func(o uint64) uint64 { return o + 7 })
					if old != ref[a] {
						t.Fatalf("op %d: rmw old %d, want %d", i, old, ref[a])
					}
					ref[a] += 7
				case 4:
					done := false
					r.f.Cache(n).CheckIn(a, func() { done = true })
					if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
						t.Fatalf("op %d: check-in stalled", i)
					}
					r.engine.Run(0) // drain the writeback/relinquish
				case 5:
					done := false
					r.f.Cache(n).CheckOut(a, func() { done = true })
					if !r.engine.RunUntil(func() bool { return done }, 1_000_000) {
						t.Fatalf("op %d: check-out stalled", i)
					}
				}
			}
			// Final sweep: every address must read its oracle value from
			// every node.
			for _, a := range addrs {
				for n := mem.NodeID(0); n < 6; n++ {
					if got := r.read(n, a); got != ref[a] {
						t.Fatalf("final: node %d read %d from %d, want %d", n, got, a, ref[a])
					}
				}
			}
		})
	}
}
