package proto

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/memtier"
	"swex/internal/mesh"
	"swex/internal/sim"
	"swex/internal/stats"
	"swex/internal/trace"
)

// Fabric wires the per-node controllers to the shared machine resources:
// the event engine, the mesh network, the backing memory, the trap
// scheduler, and the protocol extension software. One Fabric underlies one
// simulated machine.
type Fabric struct {
	Engine *sim.Engine
	Net    *mesh.Network
	Mem    *mem.Memory
	Timing Timing
	Spec   Spec
	Traps  TrapScheduler
	Soft   Software
	// MigratoryDetect enables the migratory-data adaptation (paper
	// Section 7 "dynamic detection"): blocks observed to hop
	// read-modify-write between nodes are served with Exclusive grants
	// on reads, merging each hop's two transactions into one.
	MigratoryDetect bool
	// BatchReads enables the read-burst batching enhancement: read
	// requests arriving while a read-overflow handler runs are drained
	// by it at incremental cost instead of being busied. This is one of
	// the Section 7 "dynamic detection" style enhancements: it speeds
	// up widely-read, rarely-written data (WATER's molecule records) and
	// slows down frequently-written shared words (task-queue heads), so
	// it is off by default.
	BatchReads bool
	// Counters aggregates machine-wide protocol event counts.
	Counters *stats.Counters
	// Trace, when set, receives every protocol message and trap.
	Trace Tracer
	// Sink, when set, receives structured span events for the tracing
	// subsystem (see internal/trace and sink.go). Nil disables tracing
	// at one branch per hook.
	Sink trace.Sink
	// Tier, when set, is the memory-hierarchy model behind the home
	// directories (internal/memtier): it prices every directory-side
	// block access in place of the flat Timing.MemLatency and makes
	// concurrent accesses queue on the home's tier link or memory
	// channel. Nil is the paper's flat machine at one branch per access.
	Tier *memtier.Model
	// Fault, when set, intercepts every message before it is injected
	// into the network; returning true silently drops it. It exists for
	// fault injection: the model checker's seeded-bug demos (a skipped
	// invalidation, a lost acknowledgment) are expressed as drop filters,
	// and the checker then finds the interleaving that turns the lost
	// message into an invariant violation. Dropped messages are counted
	// under "msg.dropped".
	Fault func(Msg) bool

	// par, when non-nil, puts the fabric in conservative-parallel mode:
	// scheduling routes through per-shard engines and sends/statistics
	// are staged for barrier-time merge (see parfabric.go).
	par *parState

	homes      []*HomeCtl
	caches     []*CacheCtl
	checker    *Checker
	inflight   []*flight
	flightPool []*flight // retired entries awaiting reuse
	txnSeq     uint64    // trace transaction ids (tracing enabled only)
	msgSeq     uint64    // trace message sequence numbers
}

// flight is one registered in-flight message; its identity ties the
// delivery event back to the registry entry, and it doubles as the
// delivery event's inspection tag and its delivery receiver (sim.Caller).
// Entries are pooled on the owning Fabric: a retired flight returns to
// flightPool, so the steady-state send path allocates nothing.
type flight struct {
	f *Fabric
	m Msg
}

// Fire delivers the message: it retires the registry entry, returns it to
// the pool, and hands the message to the destination controller. The pool
// return happens before Deliver so nested sends can reuse the slot.
func (fl *flight) Fire() {
	f, m := fl.f, fl.m
	f.retire(fl)
	f.flightPool = append(f.flightPool, fl)
	if m.Kind.ToHome() {
		f.homes[m.Dst].Deliver(m)
	} else {
		f.caches[m.Dst].Deliver(m)
	}
}

// msgCounterNames precomputes the per-kind counter keys so the send path
// does not rebuild "msg.<kind>" strings per message.
var msgCounterNames = func() (out [numMsgKinds]string) {
	for k := MsgKind(0); k < numMsgKinds; k++ {
		out[k] = "msg." + k.String()
	}
	return out
}()

// blockTag is the inspection tag for scheduled protocol work that is not
// an in-flight message: handler completions, queued home processing,
// watch re-arms, and instruction fills. It carries the rendered label the
// snapshot layer encodes plus the block the work targets, so the model
// checker's partial-order reduction can ask which block the next pending
// event touches (Fabric.NextEventBlock) without parsing labels.
type blockTag struct {
	label string
	b     mem.Block
}

// procTag is the inspection tag for a message queued at a busy home for
// hardware processing. It carries the message itself rather than a
// pre-rendered label: the snapshot layer must encode the message's epoch
// relative to the directory entry's current epoch (exactly as it does
// for in-flight messages), and a label rendered at scheduling time would
// bake in the absolute epoch — a history artifact that would split
// logically identical states.
//
// Like flight, the tag doubles as the event's delivery receiver
// (sim.Caller) and is pooled on the owning HomeCtl, so queueing a message
// for hardware processing allocates nothing in steady state.
type procTag struct {
	h    *HomeCtl
	node mem.NodeID
	m    Msg
}

// Fire processes the queued message, returning the tag to its
// controller's pool first so nested deliveries can reuse the slot.
func (t *procTag) Fire() {
	h, m := t.h, t.m
	h.jobPool = append(h.jobPool, t)
	h.process(m)
}

// NewFabric builds the fabric and both controllers for every node.
// Software may be nil only for the full-map protocol.
func NewFabric(engine *sim.Engine, net *mesh.Network, memory *mem.Memory,
	spec Spec, timing Timing, traps TrapScheduler, soft Software,
	cacheCfg CacheConfig) (*Fabric, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := net.Nodes()
	if memory.Nodes() != n {
		return nil, fmt.Errorf("proto: memory has %d nodes, network %d", memory.Nodes(), n)
	}
	if soft == nil && spec.UsesSoftware() {
		return nil, fmt.Errorf("proto: %s requires protocol extension software", spec.Name)
	}
	f := &Fabric{
		Engine:   engine,
		Net:      net,
		Mem:      memory,
		Timing:   timing,
		Spec:     spec,
		Traps:    traps,
		Soft:     soft,
		Counters: stats.NewCounters(),
	}
	f.homes = make([]*HomeCtl, n)
	f.caches = make([]*CacheCtl, n)
	for i := 0; i < n; i++ {
		f.homes[i] = newHomeCtl(f, mem.NodeID(i))
		f.caches[i] = newCacheCtl(f, mem.NodeID(i), cacheCfg)
	}
	return f, nil
}

// Nodes reports the machine size.
func (f *Fabric) Nodes() int { return len(f.homes) }

// Home returns node id's home-side controller.
func (f *Fabric) Home(id mem.NodeID) *HomeCtl { return f.homes[id] }

// Cache returns node id's cache-side controller.
func (f *Fabric) Cache(id mem.NodeID) *CacheCtl { return f.caches[id] }

// Send injects a protocol message into the network and delivers it to the
// destination controller when it arrives.
//
//swex:hotpath
func (f *Fabric) Send(m Msg) { f.SendDelayed(m, 0) }

// SendDelayed injects a message whose contents take extra cycles to
// produce (a DRAM read feeding a data reply). The message claims its
// place in the network queues immediately, so per-destination delivery
// order always follows call order — the invariant the protocol's
// data-before-invalidation races rely on.
//
//swex:hotpath
func (f *Fabric) SendDelayed(m Msg, extra sim.Cycle) {
	if f.par != nil {
		// Parallel mode: stage the send in the issuing shard's outbox
		// for the barrier merge (parfabric.go). Senders always run on
		// their own shard, so shardOf[m.Src] is the current shard. The
		// hooks skipped here — fault injection, tracing, the in-flight
		// registry — are exactly the features Validate excludes from
		// parallel runs; the message counter is charged at merge time.
		s := f.par.shardOf[m.Src]
		ob := &f.par.outbox[s]
		if ob.n >= len(ob.buf) {
			panic("proto: send outbox overflow: PrepareShard headroom too small for one event")
		}
		e := f.par.engines[s]
		kO, kC := e.CurKey()
		ob.buf[ob.n] = stagedSend{
			at:     e.Now(),
			kOwner: kO,
			kCnt:   kC,
			dCnt:   e.TakeCnt(int(m.Src)),
			extra:  extra,
			m:      m,
		}
		ob.n++
		return
	}
	if f.Fault != nil && f.Fault(m) {
		f.Counters.Inc("msg.dropped")
		if f.Trace != nil {
			f.Trace.Event(f.Engine.Now(), "drop", m.String())
		}
		return
	}
	f.Counters.Inc(msgCounterNames[m.Kind])
	f.traceMsg(m)
	var fl *flight
	if n := len(f.flightPool); n > 0 {
		fl = f.flightPool[n-1]
		f.flightPool[n-1] = nil
		f.flightPool = f.flightPool[:n-1]
	} else {
		fl = &flight{f: f}
	}
	fl.m = m
	f.inflight = append(f.inflight, fl)
	f.Net.SendCall(int(m.Src), int(m.Dst), f.Timing.Flits(m.Kind), extra, fl, fl)
}

// retire removes a delivered message from the in-flight registry. The
// shift-down removal preserves send order without reallocating.
func (f *Fabric) retire(fl *flight) {
	for i, cur := range f.inflight {
		if cur == fl {
			copy(f.inflight[i:], f.inflight[i+1:])
			last := len(f.inflight) - 1
			f.inflight[last] = nil
			f.inflight = f.inflight[:last]
			return
		}
	}
	panic("proto: retiring a message that is not in flight")
}

// InFlight returns the messages currently in the network, in send order.
// The coherence checker consults it (a cached copy is legitimately
// untracked exactly while its invalidation is racing toward it), and the
// model checker folds it into the machine-state fingerprint.
func (f *Fabric) InFlight() []Msg {
	out := make([]Msg, len(f.inflight))
	for i, fl := range f.inflight {
		out[i] = fl.m
	}
	return out
}

// invInFlight reports whether an invalidation for block b is on the wire
// toward node id.
func (f *Fabric) invInFlight(b mem.Block, id mem.NodeID) bool {
	for _, fl := range f.inflight {
		if fl.m.Kind == MsgINV && fl.m.Block == b && fl.m.Dst == id {
			return true
		}
	}
	return false
}

// WorkerSetHist builds the Figure 6 histogram: for every block any home
// directory tracked, the largest simultaneous worker set it reached.
func (f *Fabric) WorkerSetHist() *stats.Hist {
	h := stats.NewHist()
	for _, hc := range f.homes {
		hc.forEachEntry(func(b mem.Block, max int) {
			if max > 0 {
				h.Add(max)
			}
		})
	}
	return h
}
