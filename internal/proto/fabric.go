package proto

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/mesh"
	"swex/internal/sim"
	"swex/internal/stats"
)

// Fabric wires the per-node controllers to the shared machine resources:
// the event engine, the mesh network, the backing memory, the trap
// scheduler, and the protocol extension software. One Fabric underlies one
// simulated machine.
type Fabric struct {
	Engine *sim.Engine
	Net    *mesh.Network
	Mem    *mem.Memory
	Timing Timing
	Spec   Spec
	Traps  TrapScheduler
	Soft   Software
	// MigratoryDetect enables the migratory-data adaptation (paper
	// Section 7 "dynamic detection"): blocks observed to hop
	// read-modify-write between nodes are served with Exclusive grants
	// on reads, merging each hop's two transactions into one.
	MigratoryDetect bool
	// BatchReads enables the read-burst batching enhancement: read
	// requests arriving while a read-overflow handler runs are drained
	// by it at incremental cost instead of being busied. This is one of
	// the Section 7 "dynamic detection" style enhancements: it speeds
	// up widely-read, rarely-written data (WATER's molecule records) and
	// slows down frequently-written shared words (task-queue heads), so
	// it is off by default.
	BatchReads bool
	// Counters aggregates machine-wide protocol event counts.
	Counters *stats.Counters
	// Trace, when set, receives every protocol message and trap.
	Trace Tracer

	homes   []*HomeCtl
	caches  []*CacheCtl
	checker *Checker
}

// NewFabric builds the fabric and both controllers for every node.
// Software may be nil only for the full-map protocol.
func NewFabric(engine *sim.Engine, net *mesh.Network, memory *mem.Memory,
	spec Spec, timing Timing, traps TrapScheduler, soft Software,
	cacheCfg CacheConfig) (*Fabric, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := net.Nodes()
	if memory.Nodes() != n {
		return nil, fmt.Errorf("proto: memory has %d nodes, network %d", memory.Nodes(), n)
	}
	if soft == nil && spec.UsesSoftware() {
		return nil, fmt.Errorf("proto: %s requires protocol extension software", spec.Name)
	}
	f := &Fabric{
		Engine:   engine,
		Net:      net,
		Mem:      memory,
		Timing:   timing,
		Spec:     spec,
		Traps:    traps,
		Soft:     soft,
		Counters: stats.NewCounters(),
	}
	f.homes = make([]*HomeCtl, n)
	f.caches = make([]*CacheCtl, n)
	for i := 0; i < n; i++ {
		f.homes[i] = newHomeCtl(f, mem.NodeID(i))
		f.caches[i] = newCacheCtl(f, mem.NodeID(i), cacheCfg)
	}
	return f, nil
}

// Nodes reports the machine size.
func (f *Fabric) Nodes() int { return len(f.homes) }

// Home returns node id's home-side controller.
func (f *Fabric) Home(id mem.NodeID) *HomeCtl { return f.homes[id] }

// Cache returns node id's cache-side controller.
func (f *Fabric) Cache(id mem.NodeID) *CacheCtl { return f.caches[id] }

// Send injects a protocol message into the network and delivers it to the
// destination controller when it arrives.
func (f *Fabric) Send(m Msg) { f.SendDelayed(m, 0) }

// SendDelayed injects a message whose contents take extra cycles to
// produce (a DRAM read feeding a data reply). The message claims its
// place in the network queues immediately, so per-destination delivery
// order always follows call order — the invariant the protocol's
// data-before-invalidation races rely on.
func (f *Fabric) SendDelayed(m Msg, extra sim.Cycle) {
	f.Counters.Inc("msg." + m.Kind.String())
	f.traceMsg(m)
	f.Net.Send(int(m.Src), int(m.Dst), f.Timing.Flits(m.Kind), extra, func() {
		if m.Kind.ToHome() {
			f.homes[m.Dst].Deliver(m)
		} else {
			f.caches[m.Dst].Deliver(m)
		}
	})
}

// WorkerSetHist builds the Figure 6 histogram: for every block any home
// directory tracked, the largest simultaneous worker set it reached.
func (f *Fabric) WorkerSetHist() *stats.Hist {
	h := stats.NewHist()
	for _, hc := range f.homes {
		hc.forEachEntry(func(b mem.Block, max int) {
			if max > 0 {
				h.Add(max)
			}
		})
	}
	return h
}
