package proto

import (
	"fmt"

	"swex/internal/dir"
	"swex/internal/mem"
	"swex/internal/sim"
	"swex/internal/trace"
)

// HomeCtl is the home-side protocol engine of one node's CMMU. It owns the
// hardware directory for the blocks the node is home to and drives every
// transition of the coherence protocol, trapping into the protocol
// extension software at the points the configured Spec dictates.
//
// The controller serializes message processing on a hardware server (the
// CMMU pipeline) and, when software is involved, marks the block SWait so
// that competing requests receive BUSY replies and retry — the hardware
// mechanism the paper relies on for forward progress.
type HomeCtl struct {
	f    *Fabric
	node mem.NodeID
	dir  *dir.Directory
	srv  sim.Server // CMMU hardware occupancy

	// swTxn marks blocks whose in-flight invalidation was initiated by
	// software, so acknowledgment completion knows whether to trap
	// (LACK) or run entirely in hardware.
	swTxn map[mem.Block]bool

	// swReads counts read-handler segments outstanding per block: while
	// a read-overflow handler runs, further read requests piggyback on
	// it (the handler drains the CMMU queue before returning) instead of
	// being busied, each adding an incremental cost segment. Batching is
	// bounded: an unbounded drain loop under continuous read pressure
	// would hold the block in SWait indefinitely and starve writers, so
	// the chain is capped and suspended once a write has been bounced.
	swReads    map[mem.Block]int
	batchUntil map[mem.Block]sim.Cycle
	chainEnd   map[mem.Block]sim.Cycle
	// pendingWrite holds one write request that arrived while a read
	// chain was draining; the handler loop processes it when the chain
	// ends, exactly as a queued WREQ would be processed by the real
	// handler's message-drain loop. Further writers are busied.
	pendingWrite map[mem.Block]mem.NodeID

	// overrides holds per-block protocol reconfigurations (Alewife
	// supports protocol selection block by block, paper Section 3.1;
	// the machine's Spec is only the boot-time default).
	overrides map[mem.Block]Spec

	// mig holds the migratory-data detector state (see migratory.go).
	mig map[mem.Block]*migState

	// jobPool recycles the procTag carriers that queue messages for
	// hardware processing (see procTag.Fire).
	jobPool []*procTag

	// trapPool recycles the trapTag carriers that schedule software
	// handler completions (see traptag.go).
	trapPool []*trapTag

	// Invalidation-target scratch state: invTargets collects each
	// transaction's target set into a pooled slice (invPool) instead of
	// a fresh allocation, deduplicating through a generation-stamped
	// per-node array (invSeen/invGen) instead of a fresh map. invOut and
	// invReq are the collection-in-progress registers invAdd reads, and
	// invAddFn is invAdd pre-bound once so handing it to
	// dir.PointerSet.ForEach does not allocate a method value per call.
	// A slice is released back to the pool by the caller once the
	// transaction's invalidations are on the wire (for software write
	// faults that is inside the deferred trap body, which is why a
	// single scratch buffer would not do: several blocks' faults can be
	// outstanding at once).
	invPool  [][]mem.NodeID
	invSeen  []uint32
	invGen   uint32
	invReq   mem.NodeID
	invOut   []mem.NodeID
	invAddFn func(mem.NodeID)

	// Traps counts software handler invocations by kind.
	Traps uint64
	// BusySent counts busy (retry) replies.
	BusySent uint64
	// StrayAcks counts acknowledgments discarded by the epoch filter.
	StrayAcks uint64
}

func newHomeCtl(f *Fabric, node mem.NodeID) *HomeCtl {
	h := &HomeCtl{
		f:            f,
		node:         node,
		dir:          dir.New(f.Spec.PointerCapacity(f.Net.Nodes())),
		swTxn:        make(map[mem.Block]bool),
		swReads:      make(map[mem.Block]int),
		batchUntil:   make(map[mem.Block]sim.Cycle),
		chainEnd:     make(map[mem.Block]sim.Cycle),
		pendingWrite: make(map[mem.Block]mem.NodeID),
		overrides:    make(map[mem.Block]Spec),
		mig:          make(map[mem.Block]*migState),
		invSeen:      make([]uint32, f.Net.Nodes()),
	}
	h.invAddFn = h.invAdd
	return h
}

// Deliver queues an incoming protocol message for hardware processing.
//
//swex:hotpath
func (h *HomeCtl) Deliver(m Msg) {
	if mem.HomeOfBlock(m.Block) != h.node {
		panic(fmt.Sprintf("proto: node %d received home message for block homed on %d",
			h.node, mem.HomeOfBlock(m.Block)))
	}
	e := h.f.Eng(h.node)
	start := h.srv.Reserve(e.Now(), h.f.Timing.HomeProc)
	if h.f.Sink != nil {
		h.f.Sink.Emit(trace.Event{
			Start: start, End: start + h.f.Timing.HomeProc,
			Txn: h.f.traceTxn(m), Arg: int64(m.Block),
			Node: int32(h.node), Peer: int32(m.Src),
			Cat: trace.CatHWDir, Op: trace.OpHomeProc, Name: m.Kind.String(),
		})
	}
	var t *procTag
	if n := len(h.jobPool); n > 0 {
		t = h.jobPool[n-1]
		h.jobPool[n-1] = nil
		h.jobPool = h.jobPool[:n-1]
	} else {
		t = &procTag{h: h, node: h.node}
	}
	t.m = m
	e.OwnedAtCall(int(h.node), start+h.f.Timing.HomeProc, t, t)
}

// specFor returns the protocol governing a block: its override if one was
// configured, the machine default otherwise.
func (h *HomeCtl) specFor(b mem.Block) Spec {
	if s, ok := h.overrides[b]; ok {
		return s
	}
	return h.f.Spec
}

// Configure reconfigures the protocol for one block, as Alewife's
// block-by-block protocol selection does. It must be called before the
// block's first reference (reconfiguring live directory state is not
// modeled) and the override must be expressible by the machine's
// installed software. Returns an error otherwise.
func (h *HomeCtl) Configure(b mem.Block, s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, exists := h.dir.Peek(b); exists {
		return fmt.Errorf("proto: block %d already referenced; reconfiguration must precede first use", b)
	}
	if s.UsesSoftware() && h.f.Soft == nil {
		return fmt.Errorf("proto: block override %s needs protocol software, machine has none", s.Name)
	}
	if s.UsesSoftware() && s.SoftwareOnly != h.f.Spec.SoftwareOnly {
		return fmt.Errorf("proto: block override %s is not expressible by the machine's %s software",
			s.Name, h.f.Spec.Name)
	}
	if s.Directoryless != h.f.Spec.Directoryless {
		// Directoryless is a machine property (the cache side routes
		// every access directly), not a per-block protocol choice.
		return fmt.Errorf("proto: block override %s cannot change the machine's directoryless mode", s.Name)
	}
	h.overrides[b] = s
	return nil
}

func (h *HomeCtl) process(m Msg) {
	if m.Kind == MsgDREQ {
		// Dispatched before entry(): a directoryless access must never
		// materialize a directory entry — there is no directory.
		h.onDirect(m)
		return
	}
	e := h.entry(m.Block)
	switch m.Kind {
	case MsgRREQ:
		h.onRead(m, e)
	case MsgWREQ:
		h.onWrite(m, e)
	case MsgACK:
		h.onAck(m, e)
	case MsgUPDATE:
		h.onUpdate(m, e)
	case MsgWB:
		h.onWB(m, e)
	case MsgREL:
		h.onRel(m, e)
	default:
		panic(fmt.Sprintf("proto: home received %s", m.Kind))
	}
}

// maxBatchedReads bounds a read handler's drain loop.
var maxBatchedReads = 8

// busy sends a retry reply.
func (h *HomeCtl) busy(m Msg) {
	h.BusySent++
	h.f.Send(Msg{Kind: MsgBUSY, Src: h.node, Dst: m.Src, Block: m.Block})
}

// memAccess charges one directory-side memory access for block b and
// returns its latency. On the flat machine that is the fixed DRAM
// latency; with a memory-hierarchy model installed (Fabric.Tier) the
// model prices the access — far-tier round trip or DRAM/NVM device time
// — and occupies the home's link or channel, so concurrent accesses
// queue behind each other.
func (h *HomeCtl) memAccess(b mem.Block, write bool) sim.Cycle {
	if h.f.Tier == nil {
		return h.f.Timing.MemLatency
	}
	lat := h.f.Tier.Access(h.node, b, write)
	if h.f.Sink != nil {
		now := h.f.Engine.Now()
		h.f.Sink.Emit(trace.Event{
			Start: now, End: now + lat,
			Arg:  int64(b),
			Node: int32(h.node), Peer: -1,
			Cat: trace.CatMemTier, Op: trace.OpTierAccess, Name: "tier-access",
		})
	}
	return lat
}

// sendData transmits a data reply (RDATA or WDATA). The memory access
// time is folded into the message's source-side delay so the reply keeps
// its place in the per-destination delivery order: an invalidation
// issued after this reply must not overtake it.
func (h *HomeCtl) sendData(kind MsgKind, dst mem.NodeID, b mem.Block) {
	h.f.SendDelayed(Msg{
		Kind: kind, Src: h.node, Dst: dst, Block: b,
		Words: h.f.Mem.ReadBlock(b),
	}, h.memAccess(b, false)+h.f.Timing.CacheFill)
}

// onDirect services a directoryless (DLS) access: the home reads,
// writes, or atomically transforms the word in its shared-LLC slice and
// replies with it. No directory entry is ever created and no sharer is
// tracked — with a single serialized copy per word there is nothing to
// track. The reply carries the old value for reads and read-modify-
// writes and the stored value for plain writes, matching Op.Done.
func (h *HomeCtl) onDirect(m Msg) {
	a := m.Block.Base() + mem.Addr(m.Off)
	old := h.f.Mem.Read(a)
	v := old
	switch {
	case m.RMW != nil:
		h.f.Mem.Write(a, m.RMW(old))
	case m.DWrite:
		h.f.Mem.Write(a, m.Words[0])
		v = m.Words[0]
	}
	reply := Msg{Kind: MsgDRESP, Src: h.node, Dst: m.Src, Block: m.Block, Off: m.Off}
	reply.Words[0] = v
	h.f.SendDelayed(reply, h.memAccess(m.Block, m.DWrite || m.RMW != nil))
}

// trap schedules a software handler of the given cost and runs then at its
// completion, returning the completion cycle. The block stays in SWait
// (set by the caller) until then. The tag identifies the handler for
// pending-event inspection: it must distinguish handlers whose completion
// closures behave differently, because the model checker treats two
// machines with identical observable state and identical pending-event
// tags as the same state. The tag's block and requester plus the name
// identify the handler for the trace (r's open transaction owns the
// handler span).
func (h *HomeCtl) trap(t *trapTag, name string, cost sim.Cycle, then func()) sim.Cycle {
	h.f.statU64(h.node, &h.Traps, 1)
	h.f.count(h.node, "home.traps")
	h.f.traceTrap(int(h.node), "handler", cost)
	done := h.f.Traps.Schedule(h.node, cost)
	if h.f.Sink != nil {
		h.f.emitHandler(h.node, t.b, t.r, name, cost, done)
	}
	t.then = then
	h.f.Eng(h.node).OwnedAtCall(int(h.node), done, t, t)
	return done
}

// ---------------------------------------------------------------- reads

func (h *HomeCtl) onRead(m Msg, e *dir.Entry) {
	switch e.State {
	case dir.SWait, dir.AckWait, dir.Recall:
		_, writeQueued := h.pendingWrite[m.Block]
		if h.f.BatchReads && e.State == dir.SWait && h.swReads[m.Block] > 0 &&
			!writeQueued && h.swReads[m.Block] < maxBatchedReads &&
			h.f.Eng(h.node).Now() < h.batchUntil[m.Block] {
			// A read-overflow handler is already running for this
			// block: piggyback on it instead of bouncing the request.
			h.swRead(m.Block, e, m.Src, nil)
			return
		}
		h.busy(m)
	case dir.Exclusive:
		if e.Owner == m.Src {
			// The recorded owner is asking again. Messages between a
			// node pair deliver in order, so any writeback would have
			// arrived before this request: the owner dropped the line
			// clean (evicted before the pending write replayed) and
			// memory still holds the current data. Reset and re-serve.
			e.State = dir.Uncached
			e.Owner = 0
			h.addReader(m.Block, e, m.Src)
			return
		}
		h.startRecall(m.Block, e, m.Src, false)
	case dir.Uncached, dir.Shared:
		if h.h0UntrackedFillPending(m, e) {
			h.busy(m)
			return
		}
		h.addReader(m.Block, e, m.Src)
	default:
		panic(fmt.Sprintf("proto: read request against block %d in unknown home state %d", m.Block, e.State))
	}
}

// addReader services a read request against an Uncached or Shared block.
func (h *HomeCtl) addReader(b mem.Block, e *dir.Entry, r mem.NodeID) {
	spec := h.specFor(b)
	if spec.SoftwareOnly {
		h.h0Read(b, e, r)
		return
	}
	if h.migReadGrant(b, e, spec) {
		// Detected-migratory block: serve the read with ownership so
		// the follow-on write hits locally.
		h.grantWrite(b, e, r)
		return
	}
	if r == h.node && spec.LocalBit {
		e.LocalBit = true
		e.State = dir.Shared
		h.noteSharers(b, e)
		h.sendData(MsgRDATA, r, b)
		return
	}
	if e.Ptrs.Add(r) {
		e.State = dir.Shared
		h.noteSharers(b, e)
		h.sendData(MsgRDATA, r, b)
		return
	}
	// Pointer overflow.
	if spec.Broadcast {
		// Dir_1H_1S_B: no recording; remember only that more copies
		// exist than pointers. SwCount shadows the untracked copies
		// for worker-set statistics (the hardware keeps no such
		// count).
		e.BroadcastBit = true
		e.SwCount++
		h.foldSharers(e)
		h.sendData(MsgRDATA, r, b)
		return
	}
	// LimitLESS read overflow: the hardware returns the data
	// immediately; the software only records the request (paper
	// Section 2.2). The entry is locked (SWait) while the handler
	// empties the pointers into the extended directory.
	drained := e.Ptrs.Drain()
	h.swRead(b, e, r, drained)
}

// swRead runs (or extends) the software read handler for b on behalf of
// requester r. The first invocation pays a full trap; requests arriving
// while the handler runs are drained by it at incremental cost. For
// LimitLESS protocols the hardware transmits the data immediately; the
// software-only directory transmits it from the handler.
func (h *HomeCtl) swRead(b mem.Block, e *dir.Entry, r mem.NodeID, drained []mem.NodeID) {
	first := h.swReads[b] == 0
	h.swReads[b]++
	e.State = dir.SWait
	swOnly := h.specFor(b).SoftwareOnly
	if !swOnly {
		h.sendData(MsgRDATA, r, b)
	}
	finish := func() {
		if swOnly {
			h.sendData(MsgRDATA, r, b)
		}
		h.swReads[b]--
		if h.swReads[b] == 0 {
			delete(h.swReads, b)
			delete(h.batchUntil, b)
			delete(h.chainEnd, b)
			e.SwExt = true
			e.SwCount = len(h.f.Soft.SharersOf(b))
			e.State = dir.Shared
			h.noteSharers(b, e)
			if w, ok := h.pendingWrite[b]; ok {
				// Drain the queued write in order.
				delete(h.pendingWrite, b)
				h.dispatchWrite(b, e, w)
			}
		}
	}
	if first {
		cost := h.f.Soft.ReadOverflow(b, drained, r)
		done := h.trap(h.grabTrap(trapRead, b, r), "read-overflow", cost, finish)
		// Requests arriving while the original handler is still queued
		// or running are part of the burst it drains inline; anything
		// later retries. This absorbs the all-nodes-read-at-once bursts
		// of data-parallel phases without letting staggered readers
		// chain the block into a perpetual SWait that starves writers.
		h.batchUntil[b] = done
		h.chainEnd[b] = done
		return
	}
	// Piggybacked request: the running handler records it as part of its
	// message-drain loop, so its completion follows the chain directly
	// rather than queueing behind unrelated handlers. The processor time
	// is still accounted to the node.
	cost := h.f.Soft.ReadBatched(b, r)
	h.f.count(h.node, "home.batched_reads")
	h.f.Traps.Schedule(h.node, cost)
	h.f.statU64(h.node, &h.Traps, 1)
	h.chainEnd[b] += cost
	if h.f.Sink != nil {
		h.f.emitHandler(h.node, b, r, "read-batched", cost, h.chainEnd[b])
	}
	t := h.grabTrap(trapReadBatch, b, r)
	t.then = finish
	h.f.Eng(h.node).OwnedAtCall(int(h.node), h.chainEnd[b], t, t)
}

// h0Read services a read under the software-only directory.
func (h *HomeCtl) h0Read(b mem.Block, e *dir.Entry, r mem.NodeID) {
	if r == h.node && !e.RemoteBit {
		// Intra-node access before any remote reference: serviced by
		// hardware exactly as in a uniprocessor (paper Section 2.3).
		h.sendData(MsgRDATA, r, b)
		return
	}
	if r != h.node && !e.RemoteBit {
		// First inter-node request: set the bit and flush the block
		// from the local cache before the software takes over.
		e.RemoteBit = true
		if h.flushLocal(b, e, r, false) {
			return // continues in completeRecall
		}
	}
	// Software handles the request; the requester waits for the handler
	// to transmit the data.
	h.swRead(b, e, r, nil)
}

// h0UntrackedFillPending reports the software-only directory's blind spot:
// while the remote-access bit is clear, the home services its own misses
// in hardware without recording them, so a fill still in flight to the
// home's cache is invisible to both the directory and the flush check. A
// remote request arriving in that window must retry until the fill lands
// (it will then be flushed like any resident copy).
func (h *HomeCtl) h0UntrackedFillPending(m Msg, e *dir.Entry) bool {
	return h.specFor(m.Block).SoftwareOnly && !e.RemoteBit && m.Src != h.node &&
		h.f.Cache(h.node).HasTxn(m.Block)
}

// flushLocal begins an invalidation of the home's own cached copy, staging
// the original request for completion when the flush acknowledgment
// arrives. It reports whether a flush was necessary.
func (h *HomeCtl) flushLocal(b mem.Block, e *dir.Entry, r mem.NodeID, write bool) bool {
	if _, cached := h.f.Cache(h.node).HasBlock(b); !cached {
		return false
	}
	e.State = dir.Recall
	e.Owner = h.node
	e.Req = r
	e.ReqWrite = write
	e.Epoch++
	h.f.Send(Msg{Kind: MsgINV, Src: h.node, Dst: h.node, Block: b, Epoch: e.Epoch})
	return true
}

// --------------------------------------------------------------- writes

func (h *HomeCtl) onWrite(m Msg, e *dir.Entry) {
	switch e.State {
	case dir.SWait, dir.AckWait, dir.Recall:
		if h.f.BatchReads && e.State == dir.SWait && h.swReads[m.Block] > 0 {
			if _, queued := h.pendingWrite[m.Block]; !queued {
				// The read handler's drain loop will process this
				// write when the chain ends, preserving queue order
				// instead of starving the writer with retries.
				h.pendingWrite[m.Block] = m.Src
				return
			}
		}
		h.busy(m)
		return
	case dir.Exclusive:
		if e.Owner == m.Src {
			// As in onRead: in-order delivery means the owner dropped
			// the line clean; memory is current. Re-grant.
			e.State = dir.Uncached
			e.Owner = 0
			break
		}
		h.startRecall(m.Block, e, m.Src, true)
		return
	case dir.Uncached, dir.Shared:
		// Stable states: dispatch below.
	default:
		panic(fmt.Sprintf("proto: write request against block %d in unknown home state %d", m.Block, e.State))
	}

	if h.h0UntrackedFillPending(m, e) {
		h.busy(m)
		return
	}
	h.dispatchWrite(m.Block, e, m.Src)
}

// dispatchWrite services a write request against a block in a stable
// (Uncached/Shared) state.
func (h *HomeCtl) dispatchWrite(b mem.Block, e *dir.Entry, r mem.NodeID) {
	spec := h.specFor(b)
	h.migObserveWrite(b, e, r)
	if spec.SoftwareOnly {
		if r == h.node && !e.RemoteBit {
			h.grantWrite(b, e, r)
			return
		}
		if r != h.node && !e.RemoteBit {
			e.RemoteBit = true
			if h.flushLocal(b, e, r, true) {
				return
			}
		}
		h.swWriteFault(b, e, r)
		return
	}

	needsSW := e.SwExt || (spec.Broadcast && e.BroadcastBit)
	if !needsSW {
		h.hwWrite(b, e, r)
		return
	}
	h.swWriteFault(b, e, r)
}

// hwWrite performs a write whose sharer set fits the hardware directory.
func (h *HomeCtl) hwWrite(b mem.Block, e *dir.Entry, r mem.NodeID) {
	targets := h.invTargets(b, e, r, false)
	if len(targets) == 0 {
		h.releaseInv(targets)
		h.grantWrite(b, e, r)
		return
	}
	e.Epoch++
	e.State = dir.AckWait
	e.AckCount = len(targets)
	e.Req = r
	e.ReqWrite = true
	e.Ptrs.Clear()
	e.LocalBit = false
	h.swTxn[b] = false
	for _, t := range targets {
		h.f.Send(Msg{Kind: MsgINV, Src: h.node, Dst: t, Block: b, Epoch: e.Epoch})
	}
	h.f.countN(h.node, "home.hw_invalidations", uint64(len(targets)))
	h.releaseInv(targets)
}

// swWriteFault runs the software write handler: look up the extended
// sharer set, transmit invalidations to every copy, and put the directory
// into acknowledgment-collection mode.
func (h *HomeCtl) swWriteFault(b mem.Block, e *dir.Entry, r mem.NodeID) {
	spec := h.specFor(b)
	targets := h.invTargets(b, e, r, spec.Broadcast && e.BroadcastBit)
	e.State = dir.SWait
	cost := h.f.Soft.WriteFault(b, r, len(targets))
	t := h.grabTrap(trapWFault, b, r)
	t.targets = targets
	h.trap(t, "write-fault", cost, func() {
		e.Epoch++
		e.AckCount = len(targets)
		e.Req = r
		e.ReqWrite = true
		e.Ptrs.Clear()
		e.LocalBit = false
		e.SwExt = false
		e.SwCount = 0
		e.BroadcastBit = false
		h.swTxn[b] = true
		if len(targets) == 0 {
			h.releaseInv(targets)
			h.grantWrite(b, e, r)
			return
		}
		for _, t := range targets {
			h.f.Send(Msg{Kind: MsgINV, Src: h.node, Dst: t, Block: b, Epoch: e.Epoch})
		}
		h.f.countN(h.node, "home.sw_invalidations", uint64(len(targets)))
		h.releaseInv(targets)
		if spec.AckMode == AckSW {
			// Software fields every acknowledgment: the block stays
			// under software control.
			e.State = dir.SWait
		} else {
			e.State = dir.AckWait
		}
	})
}

// invTargets collects the nodes holding copies that must be invalidated
// for requester r: hardware pointers, the local bit, the software-extended
// list, or — for a pending broadcast — every node in the machine. The
// returned slice comes from a per-home pool; the caller must hand it back
// through releaseInv once the transaction's invalidations are sent.
func (h *HomeCtl) invTargets(b mem.Block, e *dir.Entry, r mem.NodeID, broadcast bool) []mem.NodeID {
	n := h.f.Net.Nodes()
	h.invGen++
	if h.invGen == 0 {
		// Generation counter wrapped: every stamp in invSeen is now
		// ambiguous, so clear them all and restart at generation one.
		for i := range h.invSeen {
			h.invSeen[i] = 0
		}
		h.invGen = 1
	}
	h.invReq = r
	h.invOut = h.grabInv()
	if broadcast {
		for i := 0; i < n; i++ {
			h.invAdd(mem.NodeID(i))
		}
	} else {
		e.Ptrs.ForEach(h.invAddFn)
		if e.LocalBit {
			h.invAdd(h.node)
		}
		if e.SwExt && h.f.Soft != nil {
			for _, id := range h.f.Soft.SharersOf(b) {
				h.invAdd(id)
			}
		}
	}
	out := h.invOut
	h.invOut = nil
	return out
}

// invAdd appends one deduplicated invalidation target to the collection
// invTargets has in progress, skipping the requester.
func (h *HomeCtl) invAdd(id mem.NodeID) {
	if id == h.invReq || h.invSeen[id] == h.invGen {
		return
	}
	h.invSeen[id] = h.invGen
	h.invOut = append(h.invOut, id)
}

// grabInv takes an empty target slice from the pool (or grows the pool on
// first use / at new outstanding-transaction depths).
func (h *HomeCtl) grabInv() []mem.NodeID {
	if n := len(h.invPool); n > 0 {
		s := h.invPool[n-1]
		h.invPool[n-1] = nil
		h.invPool = h.invPool[:n-1]
		return s
	}
	return make([]mem.NodeID, 0, h.f.Net.Nodes())
}

// releaseInv returns a target slice obtained from invTargets to the pool.
// Callers release only after the last read of the slice — for software
// write faults that is the end of the deferred trap body.
func (h *HomeCtl) releaseInv(s []mem.NodeID) {
	h.invPool = append(h.invPool, s[:0])
}

// grantWrite gives r exclusive ownership. Any pointer state left from the
// preceding shared epoch is stale by construction (every other copy has
// been invalidated, or none existed) and is cleared, or later writes would
// send spurious invalidations to nodes without copies.
func (h *HomeCtl) grantWrite(b mem.Block, e *dir.Entry, r mem.NodeID) {
	e.Ptrs.Clear()
	e.LocalBit = false
	e.State = dir.Exclusive
	e.Owner = r
	e.Req = 0
	e.ReqWrite = false
	e.AckCount = 0
	h.foldSharers(e)
	h.sendData(MsgWDATA, r, b)
}

// startRecall invalidates a dirty owner's copy on behalf of requester r.
func (h *HomeCtl) startRecall(b mem.Block, e *dir.Entry, r mem.NodeID, write bool) {
	e.State = dir.Recall
	e.Req = r
	e.ReqWrite = write
	e.Epoch++
	h.f.Send(Msg{Kind: MsgINV, Src: h.node, Dst: e.Owner, Block: b, Epoch: e.Epoch})
}

// ------------------------------------------------- acks and writebacks

func (h *HomeCtl) onAck(m Msg, e *dir.Entry) {
	if m.Epoch != e.Epoch {
		h.StrayAcks++
		return
	}
	switch e.State {
	case dir.Recall:
		// The owner's copy turned out to be clean (or already gone);
		// complete the recall without a memory update.
		h.migRecallClean(m.Block)
		h.completeRecall(m.Block, e)
	case dir.AckWait:
		h.countAck(m.Block, e)
	case dir.SWait:
		if h.specFor(m.Block).AckMode == AckSW && e.AckCount > 0 {
			h.swAck(m.Block, e)
			return
		}
		h.StrayAcks++
	case dir.Uncached, dir.Shared, dir.Exclusive:
		// The transaction this ack belonged to already closed.
		h.StrayAcks++
	default:
		panic(fmt.Sprintf("proto: ack for block %d in unknown home state %d", m.Block, e.State))
	}
}

// countAck is the hardware acknowledgment counter.
func (h *HomeCtl) countAck(b mem.Block, e *dir.Entry) {
	e.AckCount--
	if e.AckCount > 0 {
		return
	}
	if h.swTxn[b] && h.specFor(b).AckMode == AckLACK {
		// S_NB,LACK: the final acknowledgment traps; the software
		// transmits the data to the requester.
		e.State = dir.SWait
		cost := h.f.Soft.LastAckTrap(b)
		h.trap(h.grabTrap(trapLACK, b, e.Req), "last-ack", cost,
			func() { h.grantWrite(b, e, e.Req) })
		return
	}
	h.grantWrite(b, e, e.Req)
}

// swAck fields one acknowledgment in software (S_NB,ACK): each arriving
// acknowledgment traps the processor, and the final handler transmits the
// data reply.
func (h *HomeCtl) swAck(b mem.Block, e *dir.Entry) {
	e.AckCount--
	last := e.AckCount == 0
	cost := h.f.Soft.AckTrap(b, last)
	t := h.grabTrap(trapAck, b, e.Req)
	t.last = last
	h.trap(t, "ack", cost, func() {
		if last {
			h.grantWrite(b, e, e.Req)
		}
	})
}

func (h *HomeCtl) onUpdate(m Msg, e *dir.Entry) {
	if e.State != dir.Recall || e.Owner != m.Src || m.Epoch != e.Epoch {
		h.StrayAcks++
		return
	}
	h.migRecallDirty(m.Block)
	h.f.Mem.WriteBlock(m.Block, m.Words)
	// The dirty data lands in memory: occupy the memory channel even
	// though the staged requester does not wait on the write itself.
	h.memAccess(m.Block, true)
	h.completeRecall(m.Block, e)
}

// completeRecall finishes an exclusive-owner invalidation and re-dispatches
// the staged request.
func (h *HomeCtl) completeRecall(b mem.Block, e *dir.Entry) {
	r, write := e.Req, e.ReqWrite
	e.State = dir.Uncached
	e.Owner = 0
	if write {
		if h.specFor(b).SoftwareOnly && r != h.node {
			h.swWriteFault(b, e, r)
			return
		}
		h.grantWrite(b, e, r)
		return
	}
	h.addReader(b, e, r)
}

func (h *HomeCtl) onWB(m Msg, e *dir.Entry) {
	switch e.State {
	case dir.Exclusive:
		if e.Owner != m.Src {
			return // stale
		}
		h.f.Mem.WriteBlock(m.Block, m.Words)
		h.memAccess(m.Block, true)
		e.State = dir.Uncached
		e.Owner = 0
	case dir.Recall:
		if e.Owner != m.Src {
			return
		}
		// The writeback crossed our invalidation; it carries the data
		// the recall wanted.
		h.f.Mem.WriteBlock(m.Block, m.Words)
		h.memAccess(m.Block, true)
		h.completeRecall(m.Block, e)
	case dir.Uncached, dir.Shared, dir.AckWait, dir.SWait:
		// Stale writeback from a closed transaction: drop.
	default:
		panic(fmt.Sprintf("proto: writeback for block %d in unknown home state %d", m.Block, e.State))
	}
}

// foldSharers folds the entry's current sharer count into its worker-set
// high-water mark. It routes through the fabric's statistics path rather
// than dir.Entry.NoteSharers so that in parallel mode the max is
// journaled: overrun updates past the finish cut are discarded, keeping
// the Figure 6 histogram identical to a serial run.
//
//swex:hotpath
func (h *HomeCtl) foldSharers(e *dir.Entry) {
	h.f.statMax(h.node, &e.MaxSharers, e.Sharers())
}

// noteSharers refreshes the block's worker-set maximum. When a software
// extension exists, hardware pointers may name nodes that are also in the
// software list (a drained reader that was invalidated, evicted, and
// re-read), so the count is the deduplicated union, not the sum.
func (h *HomeCtl) noteSharers(b mem.Block, e *dir.Entry) {
	if !e.SwExt || h.f.Soft == nil {
		h.foldSharers(e)
		return
	}
	seen := make(map[mem.NodeID]bool)
	for _, id := range h.f.Soft.SharersOf(b) {
		seen[id] = true
	}
	e.Ptrs.ForEach(func(id mem.NodeID) { seen[id] = true })
	n := len(seen)
	if e.LocalBit && !seen[h.node] {
		n++
	}
	if e.State == dir.Exclusive || e.State == dir.Recall {
		n++
	}
	h.f.statMax(h.node, &e.MaxSharers, n)
}

// entry returns the block's directory entry, creating it with the
// block's configured pointer capacity.
func (h *HomeCtl) entry(b mem.Block) *dir.Entry {
	if e, ok := h.dir.Peek(b); ok {
		return e
	}
	spec := h.specFor(b)
	return h.dir.EntryWithCap(b, spec.PointerCapacity(h.f.Net.Nodes()))
}

// onRel retires a checked-in clean copy's pointer. Software-extended
// sharer lists are left alone (removing a software pointer would itself
// cost a trap); the stale entry is harmless — the eventual invalidation is
// acknowledged by the absent cache. Relinquishing during a transaction is
// ignored for the same reason.
func (h *HomeCtl) onRel(m Msg, e *dir.Entry) {
	switch e.State {
	case dir.Shared, dir.Uncached:
		if m.Src == h.node {
			e.LocalBit = false
		}
		e.Ptrs.Remove(m.Src)
		if e.State == dir.Shared && e.Ptrs.Count() == 0 && !e.LocalBit && !e.SwExt {
			e.State = dir.Uncached
		}
		h.f.count(h.node, "home.checkins")
	case dir.Exclusive, dir.AckWait, dir.Recall, dir.SWait:
		// Mid-transaction check-in: drop; the copy was already
		// invalidated or is about to be.
	default:
		panic(fmt.Sprintf("proto: check-in for block %d in unknown home state %d", m.Block, e.State))
	}
}

// Entry exposes the directory entry for a block (testing and statistics).
func (h *HomeCtl) Entry(b mem.Block) *dir.Entry { return h.entry(b) }

// forEachEntry walks the directory's worker-set maxima.
func (h *HomeCtl) forEachEntry(fn func(b mem.Block, maxSharers int)) {
	h.dir.ForEach(func(b mem.Block, e *dir.Entry) { fn(b, e.MaxSharers) })
}

// SetMaxBatchedReads adjusts the read-batching bound (experiments only).
func SetMaxBatchedReads(n int) { maxBatchedReads = n }
