package proto

import (
	"fmt"
	"strings"

	"swex/internal/sim"
)

// Tracer receives protocol events as they happen: the simulator's
// "non-intrusive observation" debugging facility. Tracing never perturbs
// simulated time.
type Tracer interface {
	// Event records one protocol event at the given cycle.
	Event(cycle sim.Cycle, kind string, detail string)
}

// RingTracer keeps the most recent N events in a ring buffer, for
// post-mortem inspection of deadlocks and protocol bugs.
type RingTracer struct {
	events []tracedEvent
	next   int
	filled bool
	// Total counts all events seen, including overwritten ones.
	Total uint64
}

type tracedEvent struct {
	cycle  sim.Cycle
	kind   string
	detail string
}

// NewRingTracer creates a tracer holding the last capacity events.
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &RingTracer{events: make([]tracedEvent, capacity)}
}

// Event implements Tracer.
func (r *RingTracer) Event(cycle sim.Cycle, kind, detail string) {
	r.events[r.next] = tracedEvent{cycle, kind, detail}
	r.next++
	r.Total++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Len reports how many events are currently held.
func (r *RingTracer) Len() int {
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Dump renders the held events oldest-first.
func (r *RingTracer) Dump() string {
	var b strings.Builder
	emit := func(e tracedEvent) {
		if e.kind != "" {
			fmt.Fprintf(&b, "%10d  %-8s %s\n", e.cycle, e.kind, e.detail)
		}
	}
	if r.filled {
		for i := r.next; i < len(r.events); i++ {
			emit(r.events[i])
		}
	}
	for i := 0; i < r.next; i++ {
		emit(r.events[i])
	}
	return b.String()
}

// traceMsg hooks message injection.
func (f *Fabric) traceMsg(m Msg) {
	if f.Trace != nil {
		f.Trace.Event(f.Engine.Now(), "msg", m.String())
	}
}

// traceTrap hooks software handler invocation.
func (f *Fabric) traceTrap(node int, kind string, cost sim.Cycle) {
	if f.Trace != nil {
		f.Trace.Event(f.Engine.Now(), "trap",
			fmt.Sprintf("node=%d %s cost=%d", node, kind, cost))
	}
}
