package proto

import (
	"swex/internal/mem"
	"swex/internal/sim"
)

// This file is the protocol fabric's side of the conservative parallel
// engine (DESIGN.md §14). In parallel mode the machine shards its nodes
// across several sim.Engines; within a time window each shard runs alone
// and may only touch shard-local state, so the fabric reroutes the two
// kinds of globally-visible work its controllers perform:
//
//   - Mesh sends are staged into a per-shard outbox, stamped with the
//     issuing event's (cycle, key), and replayed at the window barrier in
//     the canonical event order — exactly the order the serial engine
//     fires events in — which reproduces the serial network-queue
//     reservation order and delivery keys (see FlushStagedSends).
//   - Machine-wide statistics (the counters table, per-controller
//     accumulators that Result sums, directory high-water marks) are
//     recorded into a per-shard sim.Journal, stamped the same way, and
//     applied at the barrier; commutativity of add and max makes the
//     replay order-exact, and the stamps let the finish cut discard
//     exactly the effects the serial engine never applied.
//
// Everything here preserves the hot-path allocation discipline: the
// staging writes are guarded indexed stores into buffers whose headroom
// PrepareShard (the cluster's cold per-event hook) maintains.

// stagedSend is one mesh send deferred during a parallel window: the
// message, its source-side extra latency, the (cycle, key) of the issuing
// event — the position in the canonical event order at which the serial
// engine would have reserved the network queues — and the delivery
// counter consumed from the sender's key stream at staging time, so the
// delivery event gets the same key the serial engine would have assigned
// at send time.
type stagedSend struct {
	at     sim.Cycle
	kOwner int32  // issuing event's key owner
	kCnt   uint64 // issuing event's key counter
	dCnt   uint64 // delivery event's key counter (owner is m.Src)
	extra  sim.Cycle
	m      Msg
}

// sendStage is one shard's outbox of deferred sends. buf is written with
// guarded indexed stores (never append) so the hot send path cannot
// allocate; PrepareShard keeps the headroom ahead of the writes.
type sendStage struct {
	buf []stagedSend
	n   int
}

// parState holds the fabric's parallel-mode plumbing. Nil in serial mode;
// every hot hook branches on that nil exactly once.
type parState struct {
	engines []*sim.Engine
	shardOf []int32 // node -> shard index
	outbox  []sendStage
	journal []sim.Journal
	merge   []int // per-shard cursor scratch for FlushStagedSends

	// flightFree[s] is shard s's free list of delivery receivers. The
	// ownership alternates with the cluster's phases: during a window
	// only shard s touches it (parFlight.Fire pushes spent entries), at a
	// barrier only the merge goroutine (FlushStagedSends pops for reuse);
	// the cluster's barrier happens-before publishes each side's writes
	// to the other. Reuse matters: one receiver per message would
	// otherwise make the merge allocate millions of times per run.
	flightFree [][]*parFlight

	// sendHeadroom is the outbox capacity PrepareShard guarantees ahead
	// of each event: a single event can broadcast an invalidation to
	// every sharer (at most Nodes messages) plus replies and
	// acknowledgments, so 2*Nodes+16 bounds one event's sends.
	sendHeadroom int

	// onThreadDone, when non-nil, is the machine's finish bookkeeping
	// hook, called (on the owning shard's worker) whenever an
	// application thread retires.
	onThreadDone func(mem.NodeID)
}

// journalHeadroom is the per-event journal capacity PrepareShard
// guarantees: a broadcast invalidation event records one counter entry
// per message plus a handful of accumulator entries, all folded into the
// outbox-sized bound below via max(64, sendHeadroom).
const journalHeadroom = 64

// EnableParallel switches the fabric into parallel mode: node n's events
// run on engines[shardOf[n]], sends and statistics are staged per shard,
// and onThreadDone (may be nil) observes thread completion for the
// machine's finish cut. Must be called before any simulated work, and the
// restrictions machine.Config.Validate enforces (no tracing, no custom
// software, no fault injection) must hold — the staging paths skip those
// hooks entirely.
func (f *Fabric) EnableParallel(engines []*sim.Engine, shardOf []int32, onThreadDone func(mem.NodeID)) {
	s := len(engines)
	hr := journalHeadroom
	if n := 2*len(shardOf) + 16; n > hr {
		hr = n
	}
	f.par = &parState{
		engines:      engines,
		shardOf:      shardOf,
		outbox:       make([]sendStage, s),
		journal:      make([]sim.Journal, s),
		merge:        make([]int, s),
		flightFree:   make([][]*parFlight, s),
		sendHeadroom: 2*len(shardOf) + 16,
		onThreadDone: onThreadDone,
	}
}

// Parallel reports whether the fabric is in parallel mode.
func (f *Fabric) Parallel() bool { return f.par != nil }

// Eng returns the engine that owns node n's events: the shard engine in
// parallel mode, the machine's single engine otherwise. Every controller
// scheduling call and clock read goes through it; the one predictable
// branch is the entire serial-mode cost of the parallel engine.
//
//swex:hotpath
func (f *Fabric) Eng(n mem.NodeID) *sim.Engine {
	if f.par == nil {
		return f.Engine
	}
	return f.par.engines[f.par.shardOf[n]]
}

// ThreadDone tells the fabric an application thread on node n has
// retired. Serial mode ignores it; parallel mode forwards to the
// machine's finish bookkeeping.
//
//swex:hotpath
func (f *Fabric) ThreadDone(n mem.NodeID) {
	if f.par != nil && f.par.onThreadDone != nil {
		f.par.onThreadDone(n)
	}
}

// count increments a named counter on node n's behalf: directly in serial
// mode, journaled at the issuing event's (cycle, key) in parallel mode.
//
//swex:hotpath
func (f *Fabric) count(n mem.NodeID, name string) {
	if f.par == nil {
		f.Counters.Inc(name)
		return
	}
	e := f.par.engines[f.par.shardOf[n]]
	o, c := e.CurKey()
	f.par.journal[f.par.shardOf[n]].Count(e.Now(), o, c, name, 1)
}

// countN is count with an explicit delta.
//
//swex:hotpath
func (f *Fabric) countN(n mem.NodeID, name string, delta uint64) {
	if f.par == nil {
		f.Counters.Addc(name, delta)
		return
	}
	e := f.par.engines[f.par.shardOf[n]]
	o, c := e.CurKey()
	f.par.journal[f.par.shardOf[n]].Count(e.Now(), o, c, name, delta)
}

// statU64 adds delta to a Result-visible accumulator owned by node n:
// directly in serial mode, journaled in parallel mode so the finish cut
// can discard overrun increments.
//
//swex:hotpath
func (f *Fabric) statU64(n mem.NodeID, p *uint64, delta uint64) {
	if f.par == nil {
		*p += delta
		return
	}
	e := f.par.engines[f.par.shardOf[n]]
	o, c := e.CurKey()
	f.par.journal[f.par.shardOf[n]].AddU64(e.Now(), o, c, p, delta)
}

// StatAddCycle adds delta to a Result-visible cycle accumulator owned by
// node n (see statU64). Exported because the watchdog trap scheduler
// lives outside this package and the machine wires its handler-busy
// accounting through this hook.
//
//swex:hotpath
func (f *Fabric) StatAddCycle(n mem.NodeID, p *sim.Cycle, delta sim.Cycle) {
	if f.par == nil {
		*p += delta
		return
	}
	e := f.par.engines[f.par.shardOf[n]]
	o, c := e.CurKey()
	f.par.journal[f.par.shardOf[n]].AddCycle(e.Now(), o, c, p, delta)
}

// statMax folds candidate into a Result-visible high-water mark owned by
// node n (see statU64; max commutes like add, so barrier replay is exact).
//
//swex:hotpath
func (f *Fabric) statMax(n mem.NodeID, p *int, candidate int) {
	if f.par == nil {
		if candidate > *p {
			*p = candidate
		}
		return
	}
	e := f.par.engines[f.par.shardOf[n]]
	o, c := e.CurKey()
	f.par.journal[f.par.shardOf[n]].MaxInt(e.Now(), o, c, p, candidate)
}

// PrepareShard is the cluster's cold per-event hook for shard s: it
// re-ensures the outbox and journal headroom one event can consume, so
// the event's own staging writes are guarded indexed stores that never
// allocate. Runs on shard s's worker goroutine, between events.
func (f *Fabric) PrepareShard(s int) {
	ob := &f.par.outbox[s]
	if need := ob.n + f.par.sendHeadroom; need > len(ob.buf) {
		grown := make([]stagedSend, need+need/2+64)
		copy(grown, ob.buf[:ob.n])
		ob.buf = grown
	}
	hr := journalHeadroom
	if f.par.sendHeadroom > hr {
		hr = f.par.sendHeadroom
	}
	f.par.journal[s].Ensure(hr)
}

// OutboxLen reports how many sends shard s has staged. Barrier-only.
func (f *Fabric) OutboxLen(s int) int { return f.par.outbox[s].n }

// JournalLen reports how many entries shard s's journal holds.
// Barrier-only.
func (f *Fabric) JournalLen(s int) int { return f.par.journal[s].Len() }

// ApplyJournal replays shard s's journal entries at or before cut into
// the shared statistics (see sim.Journal.Apply). Barrier-only.
func (f *Fabric) ApplyJournal(s int, cut sim.Cut) {
	f.par.journal[s].Apply(cut, f.Counters.Addc)
}

// parFlight is the delivery receiver for a staged send merged at a window
// barrier. Unlike flight it is not registered in the in-flight table (the
// registry serves the coherence checker and model checker, both excluded
// from parallel mode); it is pooled per destination shard instead of in
// the fabric's shared free list, because a shared pool would race between
// the barrier (which acquires) and the shards (which fire and release).
type parFlight struct {
	f     *Fabric
	shard int32 // destination shard: which flightFree list Fire returns to
	m     Msg
}

// Fire delivers the message to the destination controller, on the
// destination's shard engine, and returns itself to the shard's free
// list. The append is this file's one hot-path growth site: the list
// reaches the run's peak in-flight message count early and then reuses
// its backing array for the rest of the run.
//
//swex:hotpath
func (fl *parFlight) Fire() {
	if fl.m.Kind.ToHome() {
		fl.f.homes[fl.m.Dst].Deliver(fl.m)
	} else {
		fl.f.caches[fl.m.Dst].Deliver(fl.m)
	}
	p := fl.f.par
	p.flightFree[fl.shard] = append(p.flightFree[fl.shard], fl)
}

// FlushStagedSends replays every staged send at or before cut, in the
// canonical event order of the issuing events — ascending (cycle, key
// owner, key counter), the exact order the serial engine fires events in —
// reserving the network queues as of each send's issue cycle and
// scheduling its delivery on the destination shard's engine with the
// delivery key consumed at staging time. Reservation order, delivery
// cycles, and delivery keys therefore all match the serial run; two sends
// from the same event share its key and replay in program order because
// the per-shard merge is stable. Staged sends after the cut (the finish
// overrun) are discarded; either way the outboxes are reset. A normal
// barrier passes sim.MaxCut. Barrier-only: the caller must hold all
// shards quiescent.
//
// Deliveries never land in a shard's past: a send issued at cycle t is
// delivered no earlier than t plus the mesh lookahead, which is at or
// beyond the window boundary every shard stopped at — the lookahead
// soundness argument of DESIGN.md §14.
func (f *Fabric) FlushStagedSends(cut sim.Cut) {
	p := f.par
	cur := p.merge
	for s := range cur {
		cur[s] = 0
	}
	for {
		best := -1
		var bestAt sim.Cycle
		var bestO int32
		var bestC uint64
		for s := range p.outbox {
			if cur[s] >= p.outbox[s].n {
				continue
			}
			st := &p.outbox[s].buf[cur[s]]
			if best < 0 || sim.KeyLess(st.at, st.kOwner, st.kCnt, bestAt, bestO, bestC) {
				best, bestAt, bestO, bestC = s, st.at, st.kOwner, st.kCnt
			}
		}
		if best < 0 {
			break
		}
		st := &p.outbox[best].buf[cur[best]]
		cur[best]++
		if !cut.Includes(st.at, st.kOwner, st.kCnt) {
			continue
		}
		// The serial send path's accounting, minus the hooks parallel
		// mode excludes (fault injection, tracing, the in-flight
		// registry).
		f.Counters.Inc(msgCounterNames[st.m.Kind])
		done := f.Net.ReserveAt(st.at, int(st.m.Src), int(st.m.Dst), f.Timing.Flits(st.m.Kind), st.extra, nil)
		dst := p.shardOf[st.m.Dst]
		var fl *parFlight
		if free := p.flightFree[dst]; len(free) > 0 {
			fl = free[len(free)-1]
			free[len(free)-1] = nil
			p.flightFree[dst] = free[:len(free)-1]
			fl.m = st.m
		} else {
			fl = &parFlight{f: f, shard: dst, m: st.m}
		}
		p.engines[dst].KeyedAtCall(int32(st.m.Src), st.dCnt, done, fl, fl)
	}
	for s := range p.outbox {
		p.outbox[s].n = 0
	}
}
