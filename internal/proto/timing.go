package proto

import "swex/internal/sim"

// Timing collects the fixed hardware latencies of the node. The defaults
// are chosen so that an uncontended two-party remote read costs on the
// order of 40 cycles, in line with Alewife's reported clean remote-miss
// latency; the experiments depend on the ratios between these numbers and
// the software handler costs, not on their absolute values.
type Timing struct {
	// MemLatency is the DRAM access time for a block at its home (and
	// for local instruction fills).
	MemLatency sim.Cycle
	// HomeProc is the CMMU hardware processing time per protocol message
	// at the home.
	HomeProc sim.Cycle
	// CacheFill is the time to install an arrived block into the cache;
	// it is charged as part of the data reply's latency (the fill and
	// the retirement of the waiting access are atomic at delivery).
	CacheFill sim.Cycle
	// RetryDelay is how long a requester waits after a BUSY before
	// retrying.
	RetryDelay sim.Cycle
	// ReqFlits, DataFlits, CtlFlits size the message classes in network
	// flits: requests, data-carrying messages, and small control
	// messages (INV/ACK/BUSY).
	ReqFlits, DataFlits, CtlFlits int
}

// DefaultTiming returns the timing used across all experiments.
func DefaultTiming() Timing {
	return Timing{
		MemLatency: 8,
		HomeProc:   4,
		CacheFill:  2,
		RetryDelay: 12,
		ReqFlits:   2,
		DataFlits:  6,
		CtlFlits:   2,
	}
}

// Flits returns the size of a message kind in flits.
func (t Timing) Flits(k MsgKind) int {
	switch {
	case k.CarriesData():
		return t.DataFlits
	case k == MsgRREQ || k == MsgWREQ || k == MsgDREQ:
		return t.ReqFlits
	default:
		return t.CtlFlits
	}
}
