package proto

import (
	"swex/internal/dir"
	"swex/internal/mem"
)

// Migratory-data detection (paper Section 7, "dynamic detection": a
// hardware mechanism that dynamically adapts to migratory data — Cox &
// Fowler, Stenström et al. — which "protocol extension software could
// perform similar optimizations" to).
//
// A block is migratory when it travels read-modify-write from node to
// node: each node reads it, updates it, and the next node does the same.
// The standard protocol costs two full transactions per hop (a recall for
// the read, then an upgrade for the write). The detector watches write
// requests: a write from the block's sole reader, when the previous writer
// was a different node, is migratory evidence. After two consecutive
// pieces of evidence the block is marked migratory and subsequent reads
// are granted Exclusive ownership directly, eliminating the upgrade.
//
// Mis-detections self-correct: if a read-granted owner gives the block
// back clean (the recall is answered with an ACK instead of a dirty
// UPDATE), the node never wrote, the Exclusive grant was wasted, and the
// block is demoted. A write that finds multiple sharers also demotes.
type migState struct {
	lastWriter    mem.NodeID
	haveWriter    bool
	score         int
	migratory     bool
	lastGrantRead bool // the current Exclusive owner got it via a read
}

// migScoreThreshold is how many consecutive migratory episodes promote a
// block.
const migScoreThreshold = 2

// migFor returns the detector state for a block, allocating on first use.
func (h *HomeCtl) migFor(b mem.Block) *migState {
	st, ok := h.mig[b]
	if !ok {
		st = &migState{}
		h.mig[b] = st
	}
	return st
}

// migReadGrant reports whether a read of b should be served with an
// Exclusive grant, and records that it was. Only safe when no other copy
// exists (the entry is Uncached with no software extension).
func (h *HomeCtl) migReadGrant(b mem.Block, e *dir.Entry, spec Spec) bool {
	if !h.f.MigratoryDetect || spec.SoftwareOnly || spec.Broadcast {
		return false
	}
	if e.State != dir.Uncached || e.SwExt || e.LocalBit || e.Ptrs.Count() != 0 {
		return false
	}
	st, ok := h.mig[b]
	if !ok || !st.migratory {
		return false
	}
	st.lastGrantRead = true
	h.f.Counters.Inc("home.migratory_read_grants")
	return true
}

// migObserveWrite updates the detector at a write request against a block
// in a stable state.
func (h *HomeCtl) migObserveWrite(b mem.Block, e *dir.Entry, r mem.NodeID) {
	if !h.f.MigratoryDetect {
		return
	}
	st := h.migFor(b)
	st.lastGrantRead = false
	solo := e.State == dir.Shared && !e.SwExt && e.Ptrs.Count() == 1 &&
		e.Ptrs.Has(r) && !e.LocalBit
	if e.LocalBit && r == h.node && e.Ptrs.Count() == 0 && e.State == dir.Shared {
		solo = true
	}
	switch {
	case solo && st.haveWriter && st.lastWriter != r:
		st.score++
		if st.score >= migScoreThreshold {
			if !st.migratory {
				h.f.Counters.Inc("home.migratory_promotions")
			}
			st.migratory = true
		}
	case !solo:
		// Multiple sharers: not migratory behavior.
		st.score = 0
		st.migratory = false
	}
	st.lastWriter = r
	st.haveWriter = true
}

// migRecallClean demotes a block whose read-granted owner returned it
// clean: the Exclusive grant bought nothing.
func (h *HomeCtl) migRecallClean(b mem.Block) {
	if !h.f.MigratoryDetect {
		return
	}
	if st, ok := h.mig[b]; ok && st.lastGrantRead {
		st.score = 0
		st.migratory = false
		st.lastGrantRead = false
		h.f.Counters.Inc("home.migratory_demotions")
	}
}

// migRecallDirty confirms a read-granted owner did write.
func (h *HomeCtl) migRecallDirty(b mem.Block) {
	if !h.f.MigratoryDetect {
		return
	}
	if st, ok := h.mig[b]; ok {
		st.lastGrantRead = false
	}
}
