package proto

import (
	"swex/internal/dir"
	"swex/internal/mem"
	"swex/internal/sim"
	"swex/internal/stats"
	"swex/internal/trace"
)

// This file adapts the protocol fabric to the structured tracing
// subsystem (internal/trace). Every hook is nil-guarded on Fabric.Sink,
// so a machine without a sink pays one branch per hook and allocates
// nothing. The correlation scheme needs no extra protocol state on the
// wire: a memory transaction's id lives on the requester's cache-side
// txn, and every message is tied back to it at send time — requests and
// replies through the requester's (or destination's) open transaction,
// invalidations and acknowledgments through the home directory's staged
// requester.

// BreakdownReporter is implemented by Software implementations that can
// report the per-activity cycle breakdown of their most recent handler
// (internal/ext does). The tracer uses it to nest activity segments
// inside handler spans, giving the exported trace the paper's Table 2
// resolution.
type BreakdownReporter interface {
	LastBreakdown() (stats.Breakdown, bool)
}

// nextTxn assigns a fresh trace-transaction id (tracing enabled only).
func (f *Fabric) nextTxn() uint64 {
	f.txnSeq++
	return f.txnSeq
}

// cacheTxn returns node n's open transaction id for block b (0 if none).
func (f *Fabric) cacheTxn(n mem.NodeID, b mem.Block) uint64 {
	if t, ok := f.caches[n].txns[b]; ok {
		return t.id
	}
	return 0
}

// stagedReq returns the requester a home transition has staged for block
// b, valid while the entry is mid-transaction (Recall, AckWait, SWait):
// exactly the states in which invalidations and acknowledgments for the
// staged requester's transaction are in the air.
func (f *Fabric) stagedReq(b mem.Block) (mem.NodeID, bool) {
	e, ok := f.homes[mem.HomeOfBlock(b)].dir.Peek(b)
	if !ok {
		return 0, false
	}
	switch e.State {
	case dir.Recall, dir.AckWait, dir.SWait:
		return e.Req, true
	case dir.Uncached, dir.Shared, dir.Exclusive:
		return 0, false
	default:
		panic("proto: unknown directory state in trace correlation")
	}
}

// traceTxn correlates a message to the memory transaction it serves, at
// send time, by inspecting protocol state:
//
//   - requests carry their sender's open transaction;
//   - replies (data, busy) target the destination's open transaction;
//   - invalidations and acknowledgments belong to the transaction of the
//     requester the home has staged for the block;
//   - writebacks and relinquishes are spontaneous (0).
func (f *Fabric) traceTxn(m Msg) uint64 {
	switch m.Kind {
	case MsgRREQ, MsgWREQ:
		return f.cacheTxn(m.Src, m.Block)
	case MsgRDATA, MsgWDATA, MsgBUSY:
		return f.cacheTxn(m.Dst, m.Block)
	case MsgINV, MsgACK, MsgUPDATE:
		if r, ok := f.stagedReq(m.Block); ok {
			return f.cacheTxn(r, m.Block)
		}
		return 0
	case MsgWB, MsgREL:
		return 0
	case MsgDREQ, MsgDRESP:
		// Direct accesses open no cache-side transaction to correlate to.
		return 0
	default:
		panic("proto: unknown message kind in trace correlation")
	}
}

// MessageTimed implements mesh.MsgObserver: it decomposes one message's
// computed timing into component spans (transmit-queue wait, source-side
// DRAM, wire, receive-queue wait, receive serialization), all sharing a
// message sequence number and the owning transaction id. The fabric is
// installed as the network's observer only when tracing is enabled.
func (f *Fabric) MessageTimed(src, dst, size int, extra, sent, txStart, injected, arrival, rxStart, done sim.Cycle, tag any) {
	if f.Sink == nil {
		return
	}
	fl, ok := tag.(*flight)
	if !ok {
		return
	}
	f.msgSeq++
	ev := trace.Event{
		Txn:  f.traceTxn(fl.m),
		Seq:  f.msgSeq,
		Arg:  int64(fl.m.Block),
		Node: int32(src),
		Peer: int32(dst),
		Name: fl.m.Kind.String(),
	}
	emit := func(cat trace.Category, op trace.Op, s, e sim.Cycle) {
		if e <= s {
			return
		}
		ev.Cat, ev.Op, ev.Start, ev.End = cat, op, s, e
		f.Sink.Emit(ev)
	}
	emit(trace.CatNetQueue, trace.OpTxQueue, sent, txStart)
	emit(trace.CatHWDir, trace.OpDRAM, txStart, txStart+extra)
	emit(trace.CatNetTransit, trace.OpWire, txStart+extra, arrival)
	emit(trace.CatNetQueue, trace.OpRxQueue, arrival, rxStart)
	emit(trace.CatNetTransit, trace.OpRecv, rxStart, done)
}

// emitHandler records one software-handler execution span ending at
// done, plus nested per-activity segments when the software reports a
// breakdown. The activity segments are laid out cumulatively in
// declaration order, which is the execution order of the paper's
// handler phases (dispatch, decode, ..., return).
func (f *Fabric) emitHandler(node mem.NodeID, b mem.Block, r mem.NodeID, name string, cost sim.Cycle, done sim.Cycle) {
	txn := f.cacheTxn(r, b)
	f.Sink.Emit(trace.Event{
		Start: done - cost, End: done, Txn: txn, Arg: int64(b),
		Node: int32(node), Peer: -1,
		Cat: trace.CatSWHandler, Op: trace.OpHandler, Name: name,
	})
	br, ok := f.Soft.(BreakdownReporter)
	if !ok {
		return
	}
	bd, ok := br.LastBreakdown()
	if !ok {
		return
	}
	off := done - cost
	for a := stats.Activity(0); a < stats.NumActivities; a++ {
		d := sim.Cycle(bd[a])
		if d == 0 {
			continue
		}
		end := off + d
		if end > done {
			end = done
		}
		f.Sink.Emit(trace.Event{
			Start: off, End: end, Txn: txn, Arg: int64(b),
			Node: int32(node), Peer: -1,
			Cat: trace.CatActivity, Op: trace.OpActivity, Name: a.String(),
		})
		off = end
	}
}
