package proto

import (
	"fmt"

	"swex/internal/mem"
)

// trapKind identifies which software handler a pooled trapTag stands for.
// The kind, together with the tag's captured fields, reproduces the exact
// label string the snapshot layer has always encoded for that handler —
// rendered lazily, only when a snapshot or description actually asks.
type trapKind uint8

const (
	// trapRead is the first read-overflow handler invocation on a block.
	trapRead trapKind = iota
	// trapReadBatch is a piggybacked request drained by a running read
	// handler.
	trapReadBatch
	// trapWFault is the software write-fault handler.
	trapWFault
	// trapLACK is the final-acknowledgment trap (S_NB,LACK).
	trapLACK
	// trapAck is a per-acknowledgment software trap (S_NB,ACK).
	trapAck
)

// trapTag is the inspection tag and delivery receiver (sim.Caller) of a
// scheduled software-handler completion. Historically each handler
// rendered a label string with fmt.Sprintf at scheduling time — five
// allocation sites on the protocol's software hot path, paid even when
// nothing ever looked at the label. The tag instead captures the
// handler's identifying fields and renders the identical bytes on
// demand (see label). Tags are pooled on the owning HomeCtl, so
// steady-state trap scheduling allocates nothing.
type trapTag struct {
	h    *HomeCtl
	kind trapKind
	b    mem.Block
	r    mem.NodeID
	// last marks the final acknowledgment of a trapAck.
	last bool
	// targets is the invalidation target set of a trapWFault. The slice
	// belongs to the home's invalidation pool and is released inside the
	// handler body, after the tag's last possible label render: labels
	// are only rendered while the completion is still pending.
	targets []mem.NodeID
	then    func()
}

// Fire runs the handler completion, returning the tag to its
// controller's pool first so nested traps can reuse the slot.
func (t *trapTag) Fire() {
	h, then := t.h, t.then
	t.then = nil
	t.targets = nil
	h.trapPool = append(h.trapPool, t)
	then()
}

// label renders the tag's snapshot encoding: byte-identical to the
// Sprintf labels the scheduling sites used to build eagerly, so every
// existing fingerprint and counterexample narration is preserved.
func (t *trapTag) label() string {
	switch t.kind {
	case trapRead:
		return fmt.Sprintf("trap:read:%d:blk%d:r%d", t.h.node, t.b, t.r)
	case trapReadBatch:
		return fmt.Sprintf("trap:readbatch:%d:blk%d:r%d", t.h.node, t.b, t.r)
	case trapWFault:
		return fmt.Sprintf("trap:wfault:%d:blk%d:r%d:t%v", t.h.node, t.b, t.r, t.targets)
	case trapLACK:
		return fmt.Sprintf("trap:lack:%d:blk%d", t.h.node, t.b)
	case trapAck:
		return fmt.Sprintf("trap:ack:%d:blk%d:last=%v", t.h.node, t.b, t.last)
	default:
		panic(fmt.Sprintf("proto: unknown trap kind %d", int(t.kind)))
	}
}

// watchTag is the inspection tag of a directoryless watch poll: the
// back-off event between two re-reads of a watched word. Like trapTag it
// renders its label lazily (the same bytes the watch machinery's eager
// labels use), and one tag serves every poll of a watch, so the spin loop
// allocates nothing per iteration.
type watchTag struct {
	node mem.NodeID
	a    mem.Addr
	old  uint64
	b    mem.Block
}

// label renders the tag's snapshot encoding.
func (t *watchTag) label() string {
	return fmt.Sprintf("watch:%d:a%d:o%d", t.node, t.a, t.old)
}

// grabTrap takes a tag from the pool (or allocates on first use) and
// stamps it with the handler's identity. Kind-specific fields (last,
// targets) are reset here and set by the caller when relevant.
func (h *HomeCtl) grabTrap(kind trapKind, b mem.Block, r mem.NodeID) *trapTag {
	var t *trapTag
	if n := len(h.trapPool); n > 0 {
		t = h.trapPool[n-1]
		h.trapPool[n-1] = nil
		h.trapPool = h.trapPool[:n-1]
	} else {
		t = &trapTag{h: h}
	}
	t.kind, t.b, t.r = kind, b, r
	t.last = false
	t.targets = nil
	return t
}
