package proto

import (
	"swex/internal/mem"
	"swex/internal/sim"
)

// Software is the protocol extension software the hardware invokes at trap
// points. Implementations (internal/ext) maintain the software-extended
// directory with real data structures — a hash table of extended entries
// and a free-list allocator, as in the paper's flexible coherence
// interface — and return the handler's cost in processor cycles, which the
// home controller charges to the local processor before completing the
// transition.
//
// The hardware half (HomeCtl) performs the actual state transitions and
// message transmissions when the handler's cycles have elapsed; the
// Software implementation decides what those cycles cost and remembers the
// extended sharer sets.
type Software interface {
	// ReadOverflow extends the directory for block b with the drained
	// hardware pointers and the requesting node, returning the handler
	// cost. For the software-only directory every read lands here with
	// an empty drain list.
	ReadOverflow(b mem.Block, drained []mem.NodeID, requester mem.NodeID) sim.Cycle

	// ReadBatched records one more reader while a read handler for b is
	// already running: the handler drains the CMMU's queued requests
	// before returning, so piggybacked reads pay only the incremental
	// decode-and-store cost, not a fresh trap.
	ReadBatched(b mem.Block, requester mem.NodeID) sim.Cycle

	// SharersOf returns b's software-resident sharer list in ascending
	// node order (empty if no extended entry exists).
	SharersOf(b mem.Block) []mem.NodeID

	// WriteFault frees b's extended entry and returns the cost of the
	// write-fault handler, which locates the sharers and transmits invs
	// invalidation messages on behalf of the requester.
	WriteFault(b mem.Block, requester mem.NodeID, invs int) sim.Cycle

	// AckTrap returns the cost of fielding one acknowledgment in
	// software (the S_NB,ACK protocols); last marks the final
	// acknowledgment, whose handler also transmits the data reply.
	AckTrap(b mem.Block, last bool) sim.Cycle

	// LastAckTrap returns the cost of the S_NB,LACK trap taken on the
	// final acknowledgment to transmit the data reply.
	LastAckTrap(b mem.Block) sim.Cycle
}

// TrapScheduler serializes protocol handler execution on a node's
// processor. Handlers steal cycles from user code: the processor model
// consults FreeAt before issuing user operations, so every cycle granted
// to a handler is a cycle the application loses. Implementations may defer
// handler starts to break livelock (the flexible interface's watchdog).
type TrapScheduler interface {
	// Schedule books the node's processor for a handler costing cost
	// cycles, returning the cycle at which the handler completes.
	Schedule(node mem.NodeID, cost sim.Cycle) (done sim.Cycle)
	// FreeAt reports when the node's processor is free of handler (and
	// user compute) reservations.
	FreeAt(node mem.NodeID) sim.Cycle
	// Reserve books the node's processor for user computation, returning
	// the cycle at which it completes. User work and handlers share the
	// processor, which is how handler storms starve applications.
	Reserve(node mem.NodeID, cost sim.Cycle) (done sim.Cycle)
}

// NopSoftware is a Software that charges a fixed cost (zero by default)
// and remembers sharers as sorted per-block lists. It stands in for
// protocol software in hardware-focused unit tests; the real
// implementations live in internal/ext.
type NopSoftware struct {
	sets map[mem.Block][]mem.NodeID // ascending node order per block
	// FixedCost is charged for every handler invocation.
	FixedCost sim.Cycle
}

// NewNopSoftware returns an empty zero-cost software implementation.
func NewNopSoftware() *NopSoftware {
	return &NopSoftware{sets: make(map[mem.Block][]mem.NodeID)}
}

// add records id in b's sharer list, keeping the list sorted and
// duplicate-free.
func (s *NopSoftware) add(b mem.Block, id mem.NodeID) {
	set := s.sets[b]
	i := 0
	for i < len(set) && set[i] < id {
		i++
	}
	if i < len(set) && set[i] == id {
		return
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = id
	s.sets[b] = set
}

// ReadOverflow implements Software at the fixed cost.
func (s *NopSoftware) ReadOverflow(b mem.Block, drained []mem.NodeID, r mem.NodeID) sim.Cycle {
	for _, d := range drained {
		s.add(b, d)
	}
	s.add(b, r)
	return s.FixedCost
}

// ReadBatched implements Software at a quarter of the fixed cost.
func (s *NopSoftware) ReadBatched(b mem.Block, r mem.NodeID) sim.Cycle {
	s.add(b, r)
	return s.FixedCost / 4
}

// SharersOf implements Software. The returned slice is the live list;
// callers only read it.
func (s *NopSoftware) SharersOf(b mem.Block) []mem.NodeID {
	return s.sets[b]
}

// WriteFault implements Software at the fixed cost.
func (s *NopSoftware) WriteFault(b mem.Block, r mem.NodeID, invs int) sim.Cycle {
	delete(s.sets, b)
	return s.FixedCost
}

// AckTrap implements Software at the fixed cost.
func (s *NopSoftware) AckTrap(mem.Block, bool) sim.Cycle { return s.FixedCost }

// LastAckTrap implements Software at the fixed cost.
func (s *NopSoftware) LastAckTrap(mem.Block) sim.Cycle { return s.FixedCost }

// ImmediateTraps is a TrapScheduler backed by per-node servers with no
// watchdog, suitable for tests and for the hand-tuned software
// configuration (whose handlers never livelock in the measured workloads).
type ImmediateTraps struct {
	engine  *sim.Engine
	servers []sim.Server
}

// NewImmediateTraps returns a scheduler for n nodes.
func NewImmediateTraps(engine *sim.Engine, n int) *ImmediateTraps {
	return &ImmediateTraps{engine: engine, servers: make([]sim.Server, n)}
}

// Schedule implements TrapScheduler.
func (t *ImmediateTraps) Schedule(node mem.NodeID, cost sim.Cycle) sim.Cycle {
	start := t.servers[node].Reserve(t.engine.Now(), cost)
	return start + cost
}

// FreeAt implements TrapScheduler.
func (t *ImmediateTraps) FreeAt(node mem.NodeID) sim.Cycle {
	return t.servers[node].FreeAt()
}

// Reserve implements TrapScheduler.
func (t *ImmediateTraps) Reserve(node mem.NodeID, cost sim.Cycle) sim.Cycle {
	start := t.servers[node].Reserve(t.engine.Now(), cost)
	return start + cost
}

// HandlerBusy reports total cycles node spent in handlers and user compute.
func (t *ImmediateTraps) HandlerBusy(node mem.NodeID) sim.Cycle {
	return t.servers[node].Busy
}
