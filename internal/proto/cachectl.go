package proto

import (
	"fmt"

	"swex/internal/cache"
	"swex/internal/mem"
	"swex/internal/sim"
	"swex/internal/trace"
)

// CacheConfig sets the processor-side cache geometry and the instruction
// fetch model.
type CacheConfig struct {
	// Cache is the combined I/D cache geometry.
	Cache cache.Config
	// PerfectIfetch makes every instruction fetch a one-cycle hit that
	// bypasses the cache entirely — the NWO simulator option the paper
	// uses to isolate instruction/data thrashing (Section 6, TSP).
	PerfectIfetch bool
}

// DefaultCacheConfig is the Alewife node cache without a victim cache.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{Cache: cache.DefaultConfig()}
}

// Op is one processor memory operation presented to the cache controller.
type Op struct {
	// Write requests exclusive ownership and stores a value.
	Write bool
	// Value is stored on a write (ignored when RMW is set).
	Value uint64
	// RMW, when non-nil, makes the write an atomic read-modify-write:
	// the new value is RMW(old). Done receives the old value.
	RMW func(old uint64) uint64
	// Done is called when the operation commits, with the value read
	// (for reads and RMWs) or the value written (for plain writes).
	Done func(v uint64)
}

// txn is one outstanding miss transaction: at most one per block per node.
type txn struct {
	write   bool
	addr    mem.Addr
	waiters []pendingOp
	retries int

	// id and begin exist only while tracing is enabled: id is the trace
	// transaction (flow) id, begin the request-issue cycle. They are
	// invisible to the protocol and to state fingerprints.
	id    uint64
	begin sim.Cycle
}

type pendingOp struct {
	addr mem.Addr
	op   Op
	// checkout marks a CheckOut's verify-and-retry waiter. It changes no
	// replay behavior (the closure does the work) but must be visible in
	// state fingerprints: a checkout waiter re-issues on a Shared fill
	// where a read waiter completes, so states differing only in the
	// waiter's kind are not equivalent.
	checkout bool
	// watch marks a Watch's compare-and-park waiter, for the same reason
	// checkout exists: a watch waiter that fills with the unchanged value
	// parks instead of completing, so states differing only in the
	// waiter's kind are not equivalent and the fingerprint must see it.
	watch bool
}

type watcher struct {
	addr mem.Addr
	old  uint64
	done func(v uint64)
}

// CacheCtl is the processor side of a node's CMMU: it services the
// processor's loads, stores, and instruction fetches against the cache,
// creates miss transactions, and answers the home's invalidation requests.
type CacheCtl struct {
	f    *Fabric
	node mem.NodeID
	c    *cache.Cache
	cfg  CacheConfig

	txns     map[mem.Block]*txn
	watchers map[mem.Block][]watcher

	// direct holds the outstanding directoryless (DLS) accesses per home,
	// in issue order. Matching needs no sequence numbers: requests to one
	// home are served FIFO by its hardware pipeline and both directions
	// of the network deliver per-destination in send order, so the head
	// of the queue is always the access the next DRESP answers.
	direct map[mem.NodeID][]Op

	// Retries counts BUSY-induced retransmissions.
	Retries uint64
	// IfetchStall accumulates cycles lost to instruction fills.
	IfetchStall sim.Cycle
}

func newCacheCtl(f *Fabric, node mem.NodeID, cfg CacheConfig) *CacheCtl {
	return &CacheCtl{
		f:        f,
		node:     node,
		c:        cache.New(cfg.Cache),
		cfg:      cfg,
		txns:     make(map[mem.Block]*txn),
		watchers: make(map[mem.Block][]watcher),
		direct:   make(map[mem.NodeID][]Op),
	}
}

// Cache exposes the underlying cache (statistics, tests).
func (cc *CacheCtl) Cache() *cache.Cache { return cc.c }

// HasBlock reports whether the block is resident, without perturbing
// statistics. The home controller uses it to decide whether the
// software-only directory needs to flush the local copy.
func (cc *CacheCtl) HasBlock(b mem.Block) (cache.Line, bool) { return cc.c.Peek(b) }

// Access presents one data operation. Done fires when it commits; for
// misses that is when the fill (or ownership grant) arrives and the
// operation replays.
//
//swex:hotpath
func (cc *CacheCtl) Access(a mem.Addr, op Op) { cc.access(a, op, false) }

// access is Access plus the watch-waiter marker (see pendingOp.watch).
func (cc *CacheCtl) access(a mem.Addr, op Op, watch bool) {
	if cc.f.Spec.Directoryless {
		cc.dlsAccess(a, op)
		return
	}
	b := mem.BlockOf(a)
	off := int(a - b.Base())
	if line, ok := cc.c.Lookup(b, false); ok {
		if !op.Write {
			op.Done(line.Words[off])
			return
		}
		if line.State == cache.Exclusive {
			old := line.Words[off]
			nv := op.Value
			if op.RMW != nil {
				nv = op.RMW(old)
			}
			line.Words[off] = nv
			line.Dirty = true
			// A locally committed store is a coherence event for parked
			// watchers too: a consumer parked on this node would otherwise
			// never observe a producer writing from the same node (no
			// invalidation is generated for an exclusive hit).
			cc.wakeWatchers(b)
			if op.RMW != nil {
				op.Done(old)
			} else {
				op.Done(nv)
			}
			return
		}
		// Shared copy, write requested: upgrade through the home.
	}
	cc.enqueue(a, op, watch)
}

// enqueue adds the operation to the block's miss transaction, creating and
// issuing one if necessary.
func (cc *CacheCtl) enqueue(a mem.Addr, op Op, watch bool) {
	b := mem.BlockOf(a)
	t, ok := cc.txns[b]
	if !ok {
		t = &txn{write: op.Write, addr: a}
		cc.beginTrace(t)
		cc.txns[b] = t
		cc.issue(b, t)
	}
	t.waiters = append(t.waiters, pendingOp{addr: a, op: op, watch: watch})
}

// beginTrace stamps a new transaction with a trace id (tracing only).
func (cc *CacheCtl) beginTrace(t *txn) {
	if cc.f.Sink != nil {
		t.id = cc.f.nextTxn()
		t.begin = cc.f.Engine.Now()
	}
}

// issue sends the transaction's request message to the home.
func (cc *CacheCtl) issue(b mem.Block, t *txn) {
	kind := MsgRREQ
	if t.write {
		kind = MsgWREQ
	}
	cc.f.Send(Msg{Kind: kind, Src: cc.node, Dst: mem.HomeOfBlock(b), Block: b})
}

// Ifetch presents one instruction fetch for the block containing pc.
// Instructions are read-only and homed locally, so a miss fills from local
// memory without coherence traffic; what matters is that fills occupy a
// line in the combined cache and can displace shared data.
//
//swex:hotpath
func (cc *CacheCtl) Ifetch(pc mem.Addr, done func()) {
	if cc.cfg.PerfectIfetch {
		done()
		return
	}
	b := mem.BlockOf(pc)
	if _, ok := cc.c.Lookup(b, true); ok {
		done()
		return
	}
	lat := cc.f.Timing.MemLatency
	cc.IfetchStall += lat
	if cc.f.Sink != nil {
		now := cc.f.Engine.Now()
		cc.f.Sink.Emit(trace.Event{
			Start: now, End: now + lat, Arg: int64(lat),
			Node: int32(cc.node), Peer: -1,
			Cat: trace.CatProc, Op: trace.OpIfetch, Name: "ifetch",
		})
	}
	cc.f.Eng(cc.node).OwnedAfter(int(cc.node), lat, blockTag{label: fmt.Sprintf("ifetch:%d:blk%d", cc.node, b), b: b}, func() {
		cc.install(cache.Line{Block: b, State: cache.Shared})
		done()
	})
}

// CheckOut acquires exclusive ownership of the block containing a without
// modifying it — the CICO "check-out" directive. A thread that checks a
// block out before its read-modify-write sequence pays one transaction
// instead of a read recall followed by an upgrade. Done fires when
// ownership is local. On a directoryless machine there is no ownership
// to acquire (every access goes to the home), so the directive is a
// free no-op, exactly like CheckIn against an absent copy.
func (cc *CacheCtl) CheckOut(a mem.Addr, done func()) {
	if cc.f.Spec.Directoryless {
		done()
		return
	}
	b := mem.BlockOf(a)
	if line, ok := cc.c.Lookup(b, false); ok && line.State == cache.Exclusive {
		done()
		return
	}
	t, ok := cc.txns[b]
	if !ok {
		t = &txn{write: true, addr: a}
		cc.beginTrace(t)
		cc.txns[b] = t
		cc.issue(b, t)
	}
	t.write = true // piggyback on (and upgrade) any pending transaction
	// The joined transaction may have been a read whose RREQ is already
	// in flight: its Shared fill does not confer ownership, so the
	// waiter re-verifies and retries (the retry upgrades) until the
	// line is exclusive.
	t.waiters = append(t.waiters, pendingOp{addr: a, checkout: true, op: Op{Done: func(uint64) {
		if line, ok := cc.c.Peek(b); ok && line.State == cache.Exclusive {
			done()
			return
		}
		cc.CheckOut(a, done)
	}}})
}

// CheckIn relinquishes the local copy of the block containing a: the
// programmer's hint that this node is done with the data (the CICO
// "check-in" directive). A dirty copy is written back; a clean copy sends
// a relinquish message so the home retires the pointer; an absent copy is
// a no-op. The directive never blocks: done fires immediately after the
// local flush is issued.
func (cc *CacheCtl) CheckIn(a mem.Addr, done func()) {
	b := mem.BlockOf(a)
	if _, pending := cc.txns[b]; pending {
		// A transaction is in flight; checking in now would race it.
		done()
		return
	}
	line, had := cc.c.Invalidate(b)
	if !had {
		done()
		return
	}
	home := mem.HomeOfBlock(b)
	if line.Dirty {
		cc.f.Send(Msg{Kind: MsgWB, Src: cc.node, Dst: home, Block: b, Words: line.Words})
	} else {
		cc.f.Send(Msg{Kind: MsgREL, Src: cc.node, Dst: home, Block: b})
	}
	cc.wakeWatchers(b)
	done()
}

// Evict models a silent cache replacement of block b: the line is dropped
// without telling the home (a clean line leaves a stale directory pointer,
// which the protocol tolerates by design), except that a dirty line must
// write its data back. It reports whether a line was resident. The model
// checker uses it as the "evict" member of its action alphabet; the
// conformance scenarios model the same thing by hand.
func (cc *CacheCtl) Evict(b mem.Block) bool {
	line, had := cc.c.Invalidate(b)
	if !had {
		return false
	}
	if line.Dirty {
		cc.f.Send(Msg{Kind: MsgWB, Src: cc.node, Dst: mem.HomeOfBlock(b),
			Block: b, Words: line.Words})
	}
	cc.wakeWatchers(b)
	return true
}

// Watch implements the spin-wait primitive: it completes as soon as the
// word at a differs from old. While the value is unchanged the thread
// parks; an invalidation or eviction of the block re-arms a fresh read, so
// the coherence traffic of a real spin loop (re-fetch after each
// invalidation) is modeled without simulating every spin iteration.
func (cc *CacheCtl) Watch(a mem.Addr, old uint64, done func(v uint64)) {
	if cc.f.Spec.Directoryless {
		cc.dlsWatch(a, old, done)
		return
	}
	cc.access(a, Op{Done: func(v uint64) {
		if v != old {
			done(v)
			return
		}
		b := mem.BlockOf(a)
		cc.watchers[b] = append(cc.watchers[b], watcher{a, old, done})
	}}, true)
}

// dlsWatch is the spin-wait primitive on a directoryless machine. With no
// private copy there is no invalidation to park on: the loop re-reads the
// word through the home after a fixed back-off, which is exactly what a
// real spin loop over uncached memory does. The back-off keeps the poll
// traffic bounded and the schedule deterministic.
func (cc *CacheCtl) dlsWatch(a mem.Addr, old uint64, done func(v uint64)) {
	cc.dlsPoll(&watchTag{node: cc.node, a: a, old: old, b: mem.BlockOf(a)}, done)
}

// dlsPoll issues one read of a watched word and re-arms itself through the
// back-off event until the value moves. The tag is allocated once per
// watch and reused for every poll.
func (cc *CacheCtl) dlsPoll(t *watchTag, done func(v uint64)) {
	cc.dlsAccess(t.a, Op{Done: func(v uint64) {
		if v != t.old {
			done(v)
			return
		}
		delay := cc.f.Timing.RetryDelay
		if delay == 0 {
			delay = 1
		}
		cc.f.Eng(cc.node).OwnedAfter(int(cc.node), delay, t, func() { cc.dlsPoll(t, done) })
	}})
}

// dlsAccess issues one directoryless access: the operation rides a DREQ
// to the home, which applies it to the shared-LLC slice in place and
// answers with the word. The op parks on the per-home FIFO until its
// DRESP arrives.
func (cc *CacheCtl) dlsAccess(a mem.Addr, op Op) {
	b := mem.BlockOf(a)
	home := mem.HomeOfBlock(b)
	cc.direct[home] = append(cc.direct[home], op)
	m := Msg{Kind: MsgDREQ, Src: cc.node, Dst: home, Block: b,
		Off: int(a - b.Base()), DWrite: op.Write, RMW: op.RMW}
	m.Words[0] = op.Value
	cc.f.Send(m)
}

// onDResp completes the oldest outstanding direct access to the replying
// home (see the direct field for why head-of-queue matching is sound).
func (cc *CacheCtl) onDResp(m Msg) {
	q := cc.direct[m.Src]
	if len(q) == 0 {
		// Static message: the deterministic engine makes the failing cycle
		// reproducible, and a Sprintf here would sit on the access hot path.
		panic("proto: DRESP with no outstanding direct access")
	}
	op := q[0]
	copy(q, q[1:])
	q[len(q)-1] = Op{}
	cc.direct[m.Src] = q[:len(q)-1]
	op.Done(m.Words[0])
}

// wakeWatchers re-arms every watcher on block b.
func (cc *CacheCtl) wakeWatchers(b mem.Block) {
	ws := cc.watchers[b]
	if len(ws) == 0 {
		return
	}
	delete(cc.watchers, b)
	for _, w := range ws {
		w := w
		cc.f.Eng(cc.node).OwnedAfter(int(cc.node), 1,
			blockTag{label: fmt.Sprintf("watch:%d:a%d:o%d", cc.node, w.addr, w.old), b: b},
			func() { cc.Watch(w.addr, w.old, w.done) })
	}
}

// WatchInfo describes one parked watcher: the watched address and the
// value it is still waiting to see change. The model checker folds parked
// watchers into state fingerprints (internal/proto/snapshot.go) and
// asserts the lost-wakeup invariant against them.
type WatchInfo struct {
	Addr mem.Addr
	Old  uint64
}

// ParkedWatchers returns the watchers currently parked on block b, in
// park order. A parked watcher has observed the unchanged value and
// holds no transaction; it re-arms only when the block sees a coherence
// event (invalidation, eviction, displacement, check-in, or a local
// store commit).
func (cc *CacheCtl) ParkedWatchers(b mem.Block) []WatchInfo {
	ws := cc.watchers[b]
	out := make([]WatchInfo, 0, len(ws))
	for _, w := range ws {
		out = append(out, WatchInfo{Addr: w.addr, Old: w.old})
	}
	return out
}

// install puts a fill into the cache and disposes of whatever it displaces.
func (cc *CacheCtl) install(l cache.Line) {
	evicted, was := cc.c.Insert(l)
	if !was {
		return
	}
	cc.f.count(cc.node, "cache.evictions")
	if evicted.Dirty {
		cc.f.Send(Msg{
			Kind: MsgWB, Src: cc.node, Dst: mem.HomeOfBlock(evicted.Block),
			Block: evicted.Block, Words: evicted.Words,
		})
	}
	// A silently dropped clean line leaves a stale directory pointer;
	// the eventual invalidation will be acknowledged as absent.
	cc.wakeWatchers(evicted.Block)
}

// Deliver handles a protocol message addressed to this cache.
//
//swex:hotpath
func (cc *CacheCtl) Deliver(m Msg) {
	switch m.Kind {
	case MsgRDATA:
		cc.fill(m, cache.Shared)
	case MsgWDATA:
		cc.fill(m, cache.Exclusive)
	case MsgBUSY:
		cc.onBusy(m)
	case MsgINV:
		cc.onInv(m)
	case MsgDRESP:
		cc.onDResp(m)
	default:
		panic(fmt.Sprintf("proto: cache received %s", m.Kind))
	}
}

// fill installs arrived data and replays the transaction's waiters.
func (cc *CacheCtl) fill(m Msg, st cache.LineState) {
	b := m.Block
	t, ok := cc.txns[b]
	if !ok {
		// A reply with no transaction: protocol error.
		panic(fmt.Sprintf("proto: node %d got %s for block %d with no transaction",
			cc.node, m.Kind, b))
	}
	delete(cc.txns, b)
	if cc.f.Sink != nil && t.id != 0 {
		op := trace.OpMemRead
		if t.write {
			op = trace.OpMemWrite
		}
		cc.f.Sink.Emit(trace.Event{
			Start: t.begin, End: cc.f.Engine.Now(), Txn: t.id, Arg: int64(b),
			Node: int32(cc.node), Peer: -1,
			Cat: trace.CatMemOp, Op: op, Name: op.String(),
		})
	}
	cc.install(cache.Line{Block: b, State: st, Words: m.Words})
	cc.f.check(b, "fill")
	// Replay waiters synchronously, within the fill delivery event: the
	// transaction store retires the waiting load or store as part of the
	// fill. This must not be deferred — a racing invalidation is
	// guaranteed to be delivered after this event (per-destination
	// ordering), and deferring the replay past it would let ownership be
	// yanked before the pending write commits, livelocking contended
	// writes. Reads hit immediately; a write against a Shared fill
	// re-issues as an upgrade, which is progress.
	for _, w := range t.waiters {
		cc.access(w.addr, w.op, w.watch)
	}
}

// retryTag is the inspection tag of a scheduled BUSY retry. It is a
// struct, not a string, because the retry's behavior depends on whether
// the transaction it captured is still the block's current one — a stale
// retry is a no-op — and the snapshot layer must encode that liveness to
// keep the state fingerprint sound.
type retryTag struct {
	cc *CacheCtl
	b  mem.Block
	t  *txn
}

// live reports whether the retry would re-issue if it fired now.
func (r *retryTag) live() bool { return r.cc.txns[r.b] == r.t }

// onBusy retries the transaction after the configured delay.
func (cc *CacheCtl) onBusy(m Msg) {
	t, ok := cc.txns[m.Block]
	if !ok {
		return // transaction already satisfied (should not happen)
	}
	t.retries++
	cc.f.statU64(cc.node, &cc.Retries, 1)
	cc.f.count(cc.node, "cache.busy_retries")
	b := m.Block
	if cc.f.Sink != nil && t.id != 0 {
		now := cc.f.Engine.Now()
		cc.f.Sink.Emit(trace.Event{
			Start: now, End: now + cc.f.Timing.RetryDelay, Txn: t.id, Arg: int64(b),
			Node: int32(cc.node), Peer: -1,
			Cat: trace.CatCache, Op: trace.OpRetryWait, Name: "retry-wait",
		})
	}
	tag := &retryTag{cc: cc, b: b, t: t}
	cc.f.Eng(cc.node).OwnedAfter(int(cc.node), cc.f.Timing.RetryDelay, tag, func() {
		if tag.live() {
			cc.issue(b, t)
		}
	})
}

// onInv invalidates the local copy and acknowledges: UPDATE with the data
// if the copy was dirty, ACK otherwise (including the stale-pointer case
// where the copy is already gone).
func (cc *CacheCtl) onInv(m Msg) {
	home := mem.HomeOfBlock(m.Block)
	line, had := cc.c.Invalidate(m.Block)
	if had && line.Dirty {
		cc.f.Send(Msg{
			Kind: MsgUPDATE, Src: cc.node, Dst: home,
			Block: m.Block, Words: line.Words, Epoch: m.Epoch,
		})
	} else {
		cc.f.Send(Msg{
			Kind: MsgACK, Src: cc.node, Dst: home,
			Block: m.Block, Epoch: m.Epoch,
		})
	}
	cc.wakeWatchers(m.Block)
	cc.f.check(m.Block, "invalidate")
}

// OutstandingTxns reports in-flight miss transactions (testing aid).
func (cc *CacheCtl) OutstandingTxns() int { return len(cc.txns) }

// OutstandingDirect reports in-flight directoryless accesses. The
// quiescence checker counts them alongside miss transactions.
func (cc *CacheCtl) OutstandingDirect() int {
	n := 0
	for i := 0; i < cc.f.Nodes(); i++ {
		n += len(cc.direct[mem.NodeID(i)])
	}
	return n
}

// HasTxn reports whether a miss transaction is outstanding for block b.
// The software-only directory's home controller consults it: a local fill
// issued while the remote-access bit was clear is not tracked anywhere, so
// remote requests must retry until it lands and can be flushed.
func (cc *CacheCtl) HasTxn(b mem.Block) bool {
	_, ok := cc.txns[b]
	return ok
}
