// Package proto implements the coherence protocol engine of a node's CMMU:
// the hardware home-side state machine over the limited directory, the
// processor-side cache controller, the message fabric connecting them, and
// the interface through which the hardware invokes protocol extension
// software.
//
// The paper's spectrum of software-extended protocols (Section 2) is
// expressed as a Spec: how many pointers the hardware implements, how
// acknowledgments are collected, whether the one-bit local pointer exists,
// and whether overflow falls back to software directory extension
// (LimitLESS), broadcast (Dir1SW-style), or an all-software directory.
package proto

import "fmt"

// AckMode selects how invalidation acknowledgments are collected after a
// software-extended write fault, distinguishing the paper's three
// one-pointer protocols (Section 2.4).
type AckMode int

const (
	// AckHW counts every acknowledgment in hardware and sends the data
	// from hardware (S_NB with no A field).
	AckHW AckMode = iota
	// AckLACK counts all but the last acknowledgment in hardware; the
	// last one traps to software, which transmits the data (S_NB,LACK).
	AckLACK
	// AckSW traps to software on every acknowledgment (S_NB,ACK); the
	// hardware pointer is unused during the invalidation process and the
	// livelock watchdog may engage.
	AckSW
)

func (m AckMode) String() string {
	switch m {
	case AckHW:
		return ""
	case AckLACK:
		return "LACK"
	case AckSW:
		return "ACK"
	}
	return fmt.Sprintf("ackmode(%d)", int(m))
}

// Spec describes one point on the protocol spectrum in the paper's
// Dir_i H_X S_Y,A notation.
type Spec struct {
	// Name is the Dir_iH_XS_Y,A rendering, e.g. "DirnH5SNB".
	Name string
	// HWPointers is the hardware directory pointer capacity per block
	// (X). Ignored when FullMap is set.
	HWPointers int
	// FullMap gives every block n pointers and never traps (Dir_nH_NB S_-).
	FullMap bool
	// LocalBit enables Alewife's one-bit pointer for the home node.
	LocalBit bool
	// AckMode selects acknowledgment handling for software-extended
	// writes.
	AckMode AckMode
	// Broadcast marks the Dir_1H_1S_B family: instead of extending the
	// directory in software, reads beyond the pointer capacity set a
	// broadcast bit and writes invalidate every node.
	Broadcast bool
	// SoftwareOnly marks Dir_nH_0: no hardware pointers, a per-block
	// remote-access bit, and software handling of every inter-node (and,
	// once the bit is set, intra-node) access.
	SoftwareOnly bool
	// Directoryless marks the shared-LLC machine (DLS): the home serves
	// every data read and write directly from its memory-side cache slice
	// with no sharer tracking, no private data caching, and therefore no
	// directory state at all. It sits below the spectrum's cheapest
	// protocol: zero directory hardware, every access a round trip.
	Directoryless bool
}

// UsesSoftware reports whether the protocol ever invokes extension
// software.
func (s Spec) UsesSoftware() bool { return !s.FullMap && !s.Directoryless }

// PointerCapacity returns the hardware pointer capacity for a machine of n
// nodes: n for full-map, HWPointers otherwise.
func (s Spec) PointerCapacity(n int) int {
	if s.FullMap {
		return n
	}
	return s.HWPointers
}

// Validate reports configuration errors (for example a broadcast protocol
// with zero pointers).
func (s Spec) Validate() error {
	switch {
	case s.Directoryless && (s.FullMap || s.SoftwareOnly || s.Broadcast):
		return fmt.Errorf("proto: %s: directoryless excludes other modes", s.Name)
	case s.Directoryless && (s.HWPointers != 0 || s.LocalBit):
		return fmt.Errorf("proto: %s: directoryless machine has no directory pointers", s.Name)
	case s.FullMap && (s.SoftwareOnly || s.Broadcast):
		return fmt.Errorf("proto: %s: full-map excludes other modes", s.Name)
	case s.SoftwareOnly && s.HWPointers != 0:
		return fmt.Errorf("proto: %s: software-only directory must have 0 pointers", s.Name)
	case s.SoftwareOnly && s.LocalBit:
		return fmt.Errorf("proto: %s: software-only directory has no local bit", s.Name)
	case s.Broadcast && s.HWPointers < 1:
		return fmt.Errorf("proto: %s: broadcast protocol needs a hardware pointer", s.Name)
	case !s.FullMap && !s.SoftwareOnly && s.HWPointers < 0:
		return fmt.Errorf("proto: %s: negative pointer count", s.Name)
	}
	return nil
}

// FullMap returns the Dir_nH_NB S_- protocol: the DASH-style full-map
// directory that serves as the performance goal for the spectrum.
func FullMap() Spec {
	return Spec{Name: "DirnHNBS-", FullMap: true, LocalBit: true}
}

// LimitLESS returns Dir_nH_kS_NB for k >= 2: k hardware pointers, software
// directory extension, hardware acknowledgment counting.
func LimitLESS(k int) Spec {
	return Spec{
		Name:       fmt.Sprintf("DirnH%dSNB", k),
		HWPointers: k,
		LocalBit:   true,
		AckMode:    AckHW,
	}
}

// OnePointer returns the Dir_nH_1S_NB{,LACK,ACK} variant selected by mode.
func OnePointer(mode AckMode) Spec {
	name := "DirnH1SNB"
	if s := mode.String(); s != "" {
		name += "," + s
	}
	return Spec{
		Name:       name,
		HWPointers: 1,
		LocalBit:   true,
		AckMode:    mode,
	}
}

// SoftwareOnly returns Dir_nH_0S_NB,ACK: the software-only directory
// architecture with the remote-access bit optimization.
func SoftwareOnly() Spec {
	return Spec{
		Name:         "DirnH0SNB,ACK",
		SoftwareOnly: true,
		AckMode:      AckSW,
	}
}

// Directoryless returns the DLS machine: no directory, no private data
// caching — the home's shared-LLC slice serves every read and write over
// the network. The point below the spectrum's cheapest protocol.
func Directoryless() Spec {
	return Spec{Name: "DLS", Directoryless: true}
}

// Dir1SW returns Dir_1H_1S_B,LACK: the cooperative-shared-memory protocol
// of Hill et al., with one explicit pointer, software broadcast
// invalidations, hardware acknowledgment counting, and a trap on the last
// acknowledgment.
func Dir1SW() Spec {
	return Spec{
		Name:       "Dir1H1SB,LACK",
		HWPointers: 1,
		LocalBit:   true,
		AckMode:    AckLACK,
		Broadcast:  true,
	}
}

// Spectrum returns the protocols of the paper's main evaluation (Figures 2
// and 4) in increasing hardware-cost order.
func Spectrum() []Spec {
	return []Spec{
		SoftwareOnly(),
		OnePointer(AckSW),
		OnePointer(AckLACK),
		OnePointer(AckHW),
		LimitLESS(2),
		LimitLESS(3),
		LimitLESS(4),
		LimitLESS(5),
		FullMap(),
	}
}
