package proto

import (
	"fmt"
	"strings"
	"testing"

	"swex/internal/mem"
)

// TestCheckerPanicsOnDivergentSharedCopies corrupts a shared copy behind
// the protocol's back and asserts the coherence checker halts the run on
// the next coherence event, naming the block and the diverging nodes.
// This is the negative test that keeps the checker honest: a checker that
// silently tolerates divergence would let real protocol bugs escape every
// other test in this package.
func TestCheckerPanicsOnDivergentSharedCopies(t *testing.T) {
	r := newRig(t, 4, FullMap())
	r.f.EnableChecker()

	a := r.mem.AllocOn(0, 1)
	b := mem.BlockOf(a)
	r.write(0, a, 7)

	// Two remote readers acquire Shared copies of the block.
	if got := r.read(1, a); got != 7 {
		t.Fatalf("node 1 read = %d, want 7", got)
	}
	if got := r.read(2, a); got != 7 {
		t.Fatalf("node 2 read = %d, want 7", got)
	}

	// Corrupt node 2's cached copy directly, bypassing the protocol —
	// the fault a buggy protocol extension would inject.
	l, ok := r.f.Cache(2).Cache().Lookup(b, false)
	if !ok {
		t.Fatalf("node 2 lost its shared copy of block %d", b)
	}
	l.Words[a%mem.WordsPerBlock] = 666

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("checker did not panic on divergent shared copies")
		}
		msg := fmt.Sprint(rec)
		for _, sub := range []string{
			"proto: coherence violation",
			fmt.Sprintf("block %d", b),
			"node 1",
			"node 2",
		} {
			if !strings.Contains(msg, sub) {
				t.Errorf("checker panic %q does not mention %q", msg, sub)
			}
		}
	}()

	// The next coherence event on the block (a third reader's fill)
	// triggers the machine-wide scan, which must find the divergence.
	r.read(3, a)
	t.Fatal("read by node 3 completed without tripping the checker")
}

// TestCheckerPanicsOnUntrackedCopy corrupts the home's directory entry
// mid-run — dropping a reader's hardware pointer while its cached copy
// survives — and asserts the directory–cache agreement check halts the run
// on the next coherence event. This is the kind of damage a buggy software
// handler (one that frees or rebuilds an extended entry incorrectly) would
// inflict, and none of the cache-side invariants can see it: the copies
// are all clean and identical, only the bookkeeping lies.
func TestCheckerPanicsOnUntrackedCopy(t *testing.T) {
	r := newRig(t, 4, FullMap())
	r.f.EnableChecker()

	a := r.mem.AllocOn(0, 1)
	b := mem.BlockOf(a)
	if got := r.read(1, a); got != 0 {
		t.Fatalf("node 1 read = %d, want 0", got)
	}
	if got := r.read(2, a); got != 0 {
		t.Fatalf("node 2 read = %d, want 0", got)
	}

	// Erase node 2's pointer behind the protocol's back.
	e, ok := r.f.Home(0).dir.Peek(b)
	if !ok {
		t.Fatalf("home has no directory entry for block %d", b)
	}
	if !e.Ptrs.Remove(2) {
		t.Fatalf("home was not tracking node 2 for block %d", b)
	}

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("checker did not panic on untracked cached copy")
		}
		msg := fmt.Sprint(rec)
		for _, sub := range []string{
			"proto: coherence violation",
			"untracked",
			fmt.Sprintf("block %d", b),
			"node 2",
		} {
			if !strings.Contains(msg, sub) {
				t.Errorf("checker panic %q does not mention %q", msg, sub)
			}
		}
	}()

	r.read(3, a)
	t.Fatal("read by node 3 completed without tripping the checker")
}
