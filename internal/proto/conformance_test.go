package proto

// Directed protocol conformance scenarios: each scenario is a script of
// operations and assertions against the home directory's state, run to
// quiescence after every step. Unlike the stress tests, these pin down the
// exact state-machine transitions of the paper's Section 2 protocol
// descriptions.

import (
	"fmt"
	"testing"

	"swex/internal/dir"
	"swex/internal/mem"
)

// scenario DSL --------------------------------------------------------

type step interface {
	run(t *testing.T, s *scenarioRig, i int)
}

type scenarioRig struct {
	*rig
	addr mem.Addr
}

func (s *scenarioRig) entry() *dir.Entry {
	return s.f.Home(mem.HomeOfBlock(mem.BlockOf(s.addr))).Entry(mem.BlockOf(s.addr))
}

// read: node reads the scenario block, expecting the value.
type read struct {
	node mem.NodeID
	want uint64
}

func (st read) run(t *testing.T, s *scenarioRig, i int) {
	if got := s.read(st.node, s.addr); got != st.want {
		t.Fatalf("step %d: node %d read %d, want %d", i, st.node, got, st.want)
	}
}

// write: node writes the value.
type write struct {
	node  mem.NodeID
	value uint64
}

func (st write) run(t *testing.T, s *scenarioRig, i int) {
	s.write(st.node, s.addr, st.value)
}

// evict: forcibly drop the node's copy (clean or dirty) via direct cache
// manipulation, modeling a silent replacement (writeback goes through the
// protocol if dirty).
type evict struct {
	node mem.NodeID
}

func (st evict) run(t *testing.T, s *scenarioRig, i int) {
	b := mem.BlockOf(s.addr)
	cc := s.f.Cache(st.node)
	line, ok := cc.Cache().Invalidate(b)
	if !ok {
		t.Fatalf("step %d: node %d has no copy to evict", i, st.node)
	}
	if line.Dirty {
		s.f.Send(Msg{Kind: MsgWB, Src: st.node, Dst: mem.HomeOfBlock(b),
			Block: b, Words: line.Words})
	}
	s.engine.Run(0)
}

// expectState: assert the home directory state.
type expectState struct {
	state dir.State
}

func (st expectState) run(t *testing.T, s *scenarioRig, i int) {
	if got := s.entry().State; got != st.state {
		t.Fatalf("step %d: directory state %v, want %v", i, got, st.state)
	}
}

// expectPointers: assert the hardware pointer count and local bit.
type expectPointers struct {
	count    int
	localBit bool
}

func (st expectPointers) run(t *testing.T, s *scenarioRig, i int) {
	e := s.entry()
	if e.Ptrs.Count() != st.count {
		t.Fatalf("step %d: %d hardware pointers, want %d", i, e.Ptrs.Count(), st.count)
	}
	if e.LocalBit != st.localBit {
		t.Fatalf("step %d: local bit %v, want %v", i, e.LocalBit, st.localBit)
	}
}

// expectOwner: assert exclusive ownership.
type expectOwner struct {
	owner mem.NodeID
}

func (st expectOwner) run(t *testing.T, s *scenarioRig, i int) {
	e := s.entry()
	if e.State != dir.Exclusive || e.Owner != st.owner {
		t.Fatalf("step %d: state %v owner %d, want Exclusive owner %d",
			i, e.State, e.Owner, st.owner)
	}
}

// expectSwExt: assert software extension presence and recorded count.
type expectSwExt struct {
	present bool
	minSw   int
}

func (st expectSwExt) run(t *testing.T, s *scenarioRig, i int) {
	e := s.entry()
	if e.SwExt != st.present {
		t.Fatalf("step %d: SwExt %v, want %v", i, e.SwExt, st.present)
	}
	if e.SwCount < st.minSw {
		t.Fatalf("step %d: SwCount %d, want >= %d", i, e.SwCount, st.minSw)
	}
}

// expectTraps: assert the home's cumulative trap count.
type expectTraps struct {
	traps uint64
}

func (st expectTraps) run(t *testing.T, s *scenarioRig, i int) {
	home := s.f.Home(mem.HomeOfBlock(mem.BlockOf(s.addr)))
	if home.Traps != st.traps {
		t.Fatalf("step %d: %d traps, want %d", i, home.Traps, st.traps)
	}
}

// expectRemoteBit: assert the software-only directory's per-block bit.
type expectRemoteBit struct {
	set bool
}

func (st expectRemoteBit) run(t *testing.T, s *scenarioRig, i int) {
	if got := s.entry().RemoteBit; got != st.set {
		t.Fatalf("step %d: remote bit %v, want %v", i, got, st.set)
	}
}

// runScenario executes the steps on a fresh machine.
func runScenario(t *testing.T, nodes int, spec Spec, steps []step) {
	t.Helper()
	r := newRig(t, nodes, spec)
	r.f.EnableChecker()
	s := &scenarioRig{rig: r, addr: r.mem.AllocOn(0, 1)}
	for i, st := range steps {
		st.run(t, s, i)
	}
}

// scenarios -----------------------------------------------------------

func TestConformance(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		spec  Spec
		steps []step
	}{
		{
			// Section 2.1: the full-map protocol tracks every reader in
			// hardware and never traps.
			name: "fullmap/read-sharing", nodes: 8, spec: FullMap(),
			steps: []step{
				write{1, 10},
				expectOwner{1},
				read{2, 10}, read{3, 10}, read{4, 10},
				expectState{dir.Shared},
				// MSI: the recall for reader 2 dropped writer 1's copy,
				// so the sharers are exactly the three readers.
				expectPointers{3, false},
				expectTraps{0},
			},
		},
		{
			// Write to a shared block invalidates every pointer and
			// leaves a single exclusive owner.
			name: "fullmap/write-invalidates", nodes: 8, spec: FullMap(),
			steps: []step{
				read{1, 0}, read{2, 0}, read{3, 0},
				write{4, 5},
				expectOwner{4},
				expectPointers{0, false},
				read{1, 5},
			},
		},
		{
			// Section 3.1: the home's own read uses the one-bit local
			// pointer, not a hardware pointer.
			name: "limitless/local-bit", nodes: 4, spec: LimitLESS(2),
			steps: []step{
				read{0, 0},
				expectPointers{0, true},
				read{1, 0},
				expectPointers{1, true},
				expectTraps{0},
			},
		},
		{
			// Section 2.2: read overflow empties the pointers into the
			// software structure; subsequent reads refill the hardware.
			name: "limitless/read-overflow", nodes: 8, spec: LimitLESS(2),
			steps: []step{
				read{1, 0}, read{2, 0},
				expectTraps{0},
				read{3, 0}, // overflow
				expectTraps{1},
				expectSwExt{true, 3},
				expectPointers{0, false},
				read{4, 0}, read{5, 0}, // hardware absorbs
				expectTraps{1},
				expectPointers{2, false},
			},
		},
		{
			// Section 2.2: write after overflow invalidates hardware and
			// software pointers and reclaims the extended entry.
			name: "limitless/write-fault", nodes: 8, spec: LimitLESS(2),
			steps: []step{
				read{1, 0}, read{2, 0}, read{3, 0}, read{4, 0},
				expectSwExt{true, 3},
				write{5, 9},
				expectOwner{5},
				expectSwExt{false, 0},
				read{1, 9}, read{2, 9}, read{3, 9}, read{4, 9},
			},
		},
		{
			// Section 2.4: the one-pointer hardware-ack variant overflows
			// on the second reader.
			name: "h1/second-read-traps", nodes: 4, spec: OnePointer(AckHW),
			steps: []step{
				read{1, 0},
				expectTraps{0},
				read{2, 0},
				expectTraps{1},
				write{3, 4},
				read{1, 4},
			},
		},
		{
			// Section 2.3: the software-only directory's remote-access
			// bit; intra-node accesses run in hardware until the first
			// inter-node request.
			name: "h0/remote-bit", nodes: 4, spec: SoftwareOnly(),
			steps: []step{
				read{0, 0},
				expectRemoteBit{false},
				expectTraps{0},
				read{1, 0},
				expectRemoteBit{true},
				write{2, 3},
				read{0, 3},
				read{1, 3},
			},
		},
		{
			// Section 2.5: the broadcast protocol records nothing beyond
			// its single pointer; writes invalidate everybody.
			name: "dir1sw/broadcast", nodes: 4, spec: Dir1SW(),
			steps: []step{
				read{1, 0}, read{2, 0}, read{3, 0},
				expectTraps{0}, // reads never trap
				write{1, 8},
				expectOwner{1},
				read{2, 8}, read{3, 8},
			},
		},
		{
			// Dirty data recalled for a reader: memory is updated and
			// the old owner loses its copy.
			name: "fullmap/recall-for-read", nodes: 4, spec: FullMap(),
			steps: []step{
				write{1, 7},
				read{2, 7},
				expectState{dir.Shared},
				// The recall invalidated owner 1; only reader 2 remains.
				expectPointers{1, false},
			},
		},
		{
			// A silent clean eviction leaves a stale pointer that the
			// next write harmlessly invalidates.
			name: "limitless/stale-pointer", nodes: 4, spec: LimitLESS(2),
			steps: []step{
				read{1, 0},
				evict{1},
				write{2, 5},
				expectOwner{2},
				read{1, 5},
			},
		},
		{
			// A dirty eviction writes back; the block is then uncached
			// and re-readable with the written value.
			name: "fullmap/dirty-eviction", nodes: 4, spec: FullMap(),
			steps: []step{
				write{1, 6},
				evict{1},
				expectState{dir.Uncached},
				read{2, 6},
			},
		},
	}
	// Additional spectrum points and mechanism scenarios.
	noBit := LimitLESS(5)
	noBit.LocalBit = false
	noBit.Name = "DirnH5SNB(no-local-bit)"
	more := []struct {
		name  string
		nodes int
		spec  Spec
		steps []step
	}{
		{
			// H3 and H4 sit between H2 and H5: overflow at exactly
			// pointers+1 remote readers.
			name: "limitless/h3-overflow-boundary", nodes: 8, spec: LimitLESS(3),
			steps: []step{
				read{1, 0}, read{2, 0}, read{3, 0},
				expectTraps{0},
				read{4, 0},
				expectTraps{1},
			},
		},
		{
			name: "limitless/h4-overflow-boundary", nodes: 8, spec: LimitLESS(4),
			steps: []step{
				read{1, 0}, read{2, 0}, read{3, 0}, read{4, 0},
				expectTraps{0},
				read{5, 0},
				expectTraps{1},
			},
		},
		{
			// Without the local bit, the home's own read consumes a
			// pointer — and can be the one that overflows the directory
			// (the complexity case the bit eliminates, Section 3.1).
			name: "no-local-bit/home-read-consumes-pointer", nodes: 8, spec: noBit,
			steps: []step{
				read{1, 0}, read{2, 0}, read{3, 0}, read{4, 0}, read{5, 0},
				expectTraps{0},
				expectPointers{5, false},
				read{0, 0}, // the home itself
				expectTraps{1},
			},
		},
		{
			// The LACK variant's read side behaves exactly like the
			// hardware-ack variant; only write completion differs.
			name: "h1lack/read-side", nodes: 4, spec: OnePointer(AckLACK),
			steps: []step{
				read{1, 0},
				expectTraps{0},
				read{2, 0},
				expectTraps{1},
			},
		},
		{
			// Writes within the broadcast protocol's single pointer are
			// pure hardware.
			name: "dir1sw/write-within-pointer", nodes: 4, spec: Dir1SW(),
			steps: []step{
				read{1, 0},
				write{2, 3},
				expectTraps{0},
				expectOwner{2},
			},
		},
		{
			// Back-to-back writes from alternating nodes exercise the
			// recall path repeatedly without corrupting data.
			name: "fullmap/write-ping-pong", nodes: 4, spec: FullMap(),
			steps: []step{
				write{1, 1}, write{2, 2}, write{1, 3}, write{2, 4},
				expectOwner{2},
				read{3, 4},
			},
		},
	}
	cases = append(cases, more...)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runScenario(t, c.nodes, c.spec, c.steps)
		})
	}
}

// TestConformanceRecallPointer pins the post-recall sharer set: after a
// dirty block is recalled for a reader, only the reader holds a copy (the
// old owner's copy is invalidated in an MSI protocol).
func TestConformanceRecallPointer(t *testing.T) {
	r := newRig(t, 4, FullMap())
	s := &scenarioRig{rig: r, addr: r.mem.AllocOn(0, 1)}
	s.write(1, s.addr, 7)
	if got := s.read(2, s.addr); got != 7 {
		t.Fatalf("reader got %d, want 7", got)
	}
	e := s.entry()
	if e.State != dir.Shared || e.Ptrs.Count() != 1 || !e.Ptrs.Has(2) {
		t.Fatalf("after recall: state %v ptrs %v, want Shared {2}", e.State, e.Ptrs.List())
	}
	if _, cached := s.f.Cache(1).HasBlock(mem.BlockOf(s.addr)); cached {
		t.Fatal("old owner still holds a copy after the recall")
	}
}

// TestConformanceAckModes drives the three one-pointer variants through an
// identical script and verifies they differ only in trap counts, exactly
// as Section 2.4 describes: the ACK variant traps per acknowledgment, the
// LACK variant once per write, the hardware variant not at all for acks.
func TestConformanceAckModes(t *testing.T) {
	trapsFor := func(mode AckMode) uint64 {
		r := newRig(t, 8, OnePointer(mode))
		s := &scenarioRig{rig: r, addr: r.mem.AllocOn(0, 1)}
		for n := mem.NodeID(1); n <= 4; n++ {
			s.read(n, s.addr)
		}
		s.write(5, s.addr, 1)
		return r.f.Home(0).Traps
	}
	hw := trapsFor(AckHW)
	lack := trapsFor(AckLACK)
	ack := trapsFor(AckSW)
	if !(ack > lack && lack > hw) {
		t.Fatalf("trap counts: hw=%d lack=%d ack=%d, want ack > lack > hw", hw, lack, ack)
	}
	if lack != hw+1 {
		t.Fatalf("LACK traps %d, want exactly one more than hardware-ack's %d", lack, hw)
	}
	// The ACK variant traps once per invalidated copy on top of LACK's
	// read-side traps.
	if ack < lack+3 {
		t.Fatalf("ACK traps %d, want at least %d (one per acknowledgment)", ack, lack+3)
	}
}

// TestConformanceEnhancementsSweep drives a generic workload — broad read
// sharing, migratory read-modify-write hopping, write bursts, evictions —
// across the full protocol spectrum (plus the broadcast variant) with the
// Section 7 enhancements switched on and the coherence checker enabled.
// The directed scenarios above pin exact transitions for the base
// protocols; this sweep checks that the adaptive paths (Exclusive grants
// to detected-migratory readers, batched read drains) uphold the
// invariants and the architectural memory semantics on every protocol.
func TestConformanceEnhancementsSweep(t *testing.T) {
	for _, spec := range append(Spectrum(), Dir1SW()) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, 8, spec)
			r.f.MigratoryDetect = true
			r.f.BatchReads = true
			checker := r.f.EnableChecker()
			a := r.mem.AllocOn(0, 1)

			// Broad read sharing: overflows every limited directory and
			// exercises batching when handler chains form.
			for n := mem.NodeID(0); n < 8; n++ {
				if got := r.read(n, a); got != 0 {
					t.Fatalf("node %d read %d, want 0", n, got)
				}
			}
			// Write burst against the full sharer set.
			r.write(1, a, 11)
			if got := r.read(2, a); got != 11 {
				t.Fatalf("node 2 read %d, want 11", got)
			}
			// Migratory hopping: read-modify-write chains from node to
			// node, which the detector should convert to Exclusive grants.
			for hop := 0; hop < 6; hop++ {
				n := mem.NodeID(2 + hop%4)
				r.rmw(n, a, func(old uint64) uint64 { return old + 1 })
			}
			if got := r.read(0, a); got != 17 {
				t.Fatalf("after migratory hops read %d, want 17", got)
			}
			// Dirty eviction writes back through the protocol.
			r.write(3, a, 40)
			if !r.f.Cache(3).Evict(mem.BlockOf(a)) {
				t.Fatal("node 3 had no copy to evict")
			}
			r.engine.Run(0)
			if got := r.read(4, a); got != 40 {
				t.Fatalf("after dirty eviction read %d, want 40", got)
			}
			// Re-sharing after the storm.
			for n := mem.NodeID(5); n < 8; n++ {
				if got := r.read(n, a); got != 40 {
					t.Fatalf("node %d read %d, want 40", n, got)
				}
			}
			if checker.Checks == 0 {
				t.Fatal("coherence checker never ran")
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt for scenario debugging helpers
