package proto

import (
	"fmt"

	"swex/internal/mem"
)

// MsgKind enumerates the protocol message types the CMMU synthesizes.
type MsgKind int

const (
	// MsgRREQ is a read request from a cache to a block's home.
	MsgRREQ MsgKind = iota
	// MsgWREQ is a write (or upgrade) request from a cache to the home.
	MsgWREQ
	// MsgRDATA carries a read-only copy from home to cache.
	MsgRDATA
	// MsgWDATA grants exclusive ownership (with data) to a writer.
	MsgWDATA
	// MsgINV asks a cache to invalidate its copy.
	MsgINV
	// MsgACK acknowledges an invalidation (the copy was clean or absent).
	MsgACK
	// MsgUPDATE acknowledges an invalidation of a dirty copy, carrying
	// the data home.
	MsgUPDATE
	// MsgBUSY tells a requester to retry: the home is mid-transaction on
	// the block. Busy messages are the hardware's livelock defense
	// during acknowledgment collection (paper Section 2.4).
	MsgBUSY
	// MsgWB writes a dirty evicted line back to the home unsolicited.
	MsgWB
	// MsgREL relinquishes a clean shared copy: the programmer's
	// "check-in" directive (the CICO annotations of the cooperative
	// shared memory work, paper Sections 1 and 7) tells the home to
	// retire the sender's pointer so later writes invalidate less.
	MsgREL
	// MsgDREQ is a directoryless (DLS) direct access: the home applies
	// the read, write, or read-modify-write to its shared-LLC slice in
	// place — no copy is granted, no sharer is tracked. Appended after
	// MsgREL so existing message-kind encodings keep their values.
	MsgDREQ
	// MsgDRESP is the home's reply to a MsgDREQ, carrying the accessed
	// word back to the requester.
	MsgDRESP
	numMsgKinds
)

var msgNames = [numMsgKinds]string{
	"RREQ", "WREQ", "RDATA", "WDATA", "INV", "ACK", "UPDATE", "BUSY", "WB", "REL",
	"DREQ", "DRESP",
}

func (k MsgKind) String() string {
	if k < 0 || k >= numMsgKinds {
		return fmt.Sprintf("msg(%d)", int(k))
	}
	return msgNames[k]
}

// CarriesEpoch reports whether the message's Epoch field is meaningful:
// invalidations carry the issuing transaction's epoch out, and the
// acknowledgments they provoke echo it back so the home can discard ones
// addressed to an earlier transaction. Every other kind leaves Epoch at
// zero and nothing ever reads it.
func (k MsgKind) CarriesEpoch() bool {
	switch k {
	case MsgINV, MsgACK, MsgUPDATE:
		return true
	case MsgRREQ, MsgWREQ, MsgRDATA, MsgWDATA, MsgBUSY, MsgWB, MsgREL, MsgDREQ, MsgDRESP:
		return false
	default:
		panic(fmt.Sprintf("proto: unknown message kind %d", int(k)))
	}
}

// CarriesData reports whether the message includes the block contents.
// DREQ and DRESP move a single word through Words[0], not a block, and
// encode it themselves in the snapshot layer.
func (k MsgKind) CarriesData() bool {
	switch k {
	case MsgRDATA, MsgWDATA, MsgUPDATE, MsgWB:
		return true
	case MsgRREQ, MsgWREQ, MsgINV, MsgACK, MsgBUSY, MsgREL, MsgDREQ, MsgDRESP:
		return false
	default:
		panic(fmt.Sprintf("proto: unknown message kind %d", int(k)))
	}
}

// ToHome reports whether the message is processed by the home-side
// controller (as opposed to the cache side).
func (k MsgKind) ToHome() bool {
	switch k {
	case MsgRREQ, MsgWREQ, MsgACK, MsgUPDATE, MsgWB, MsgREL, MsgDREQ:
		return true
	case MsgRDATA, MsgWDATA, MsgINV, MsgBUSY, MsgDRESP:
		return false
	default:
		panic(fmt.Sprintf("proto: unknown message kind %d", int(k)))
	}
}

// Msg is one protocol message in flight.
type Msg struct {
	Kind  MsgKind
	Src   mem.NodeID
	Dst   mem.NodeID
	Block mem.Block
	// Words carries the block contents for data messages.
	Words [mem.WordsPerBlock]uint64
	// Epoch tags invalidations with the home transaction that issued
	// them; ACK and UPDATE replies echo it so the home can discard
	// acknowledgments that belong to a completed transaction (the
	// writeback/invalidate crossing race).
	Epoch uint32
	// Off is the word offset within Block of a direct (DREQ) access.
	Off int
	// DWrite marks a direct access as a write; Words[0] carries the
	// value out and the accessed word back (DRESP).
	DWrite bool
	// RMW, when set on a DREQ, is applied atomically at the home: the
	// word is read, transformed, and written in place; the reply carries
	// the old value. Function-valued, so Msg must never be compared or
	// used as a map key — the in-flight registry and snapshot layers
	// never do.
	RMW func(uint64) uint64
}

func (m Msg) String() string {
	return fmt.Sprintf("%s %d->%d blk=%d ep=%d", m.Kind, m.Src, m.Dst, m.Block, m.Epoch)
}
