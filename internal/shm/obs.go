package shm

import (
	"fmt"
	"strings"

	"swex/internal/mem"
	"swex/internal/proc"
)

// ObsLog is a per-thread observation log: each hardware context records,
// in its own program order, the values its shared-memory reads observed.
// It replaces ad-hoc post-run verification reads in tests and is the
// capture mechanism of the litmus-test subsystem (internal/litmus): a
// run's observations are exactly what the sequential-consistency oracle
// judges.
//
// The log lives on the host side, not in simulated memory: recording an
// observation costs no simulated cycles and generates no coherence
// traffic, so instrumented programs behave identically to uninstrumented
// ones. Entries are segregated per thread, and threads execute in
// lockstep with the simulator, so recording is race-free by construction.
type ObsLog struct {
	tpn int
	obs [][]uint64
}

// NewObsLog allocates a log for a machine of nodes nodes running
// threadsPerNode hardware contexts each (pass 1 for the paper's
// single-threaded configurations; machine.Config.ThreadsPerNode of zero
// also means one).
func NewObsLog(nodes, threadsPerNode int) *ObsLog {
	if nodes <= 0 || threadsPerNode <= 0 {
		panic(fmt.Sprintf("shm: observation log for %d nodes x %d threads", nodes, threadsPerNode))
	}
	return &ObsLog{tpn: threadsPerNode, obs: make([][]uint64, nodes*threadsPerNode)}
}

// index maps an environment to its dense thread slot.
func (l *ObsLog) index(env *proc.Env) int {
	if env.Thread() >= l.tpn {
		panic(fmt.Sprintf("shm: observation log sized for %d threads per node, context %d observed", l.tpn, env.Thread()))
	}
	return int(env.ID())*l.tpn + env.Thread()
}

// Observe reads the word at a through the calling thread's cache,
// appends the observed value to the thread's log, and returns it.
func (l *ObsLog) Observe(env *proc.Env, a mem.Addr) uint64 {
	v := env.Read(a)
	l.Record(env, v)
	return v
}

// Record appends an already-obtained value to the calling thread's log —
// for observations that arrive through operations other than a plain
// read (an atomic exchange's old value, a WaitChange result).
func (l *ObsLog) Record(env *proc.Env, v uint64) {
	i := l.index(env)
	l.obs[i] = append(l.obs[i], v)
}

// Threads reports the number of thread slots in the log.
func (l *ObsLog) Threads() int { return len(l.obs) }

// Thread returns thread i's observations in its program order. The
// returned slice aliases the log; do not mutate it.
func (l *ObsLog) Thread(i int) []uint64 { return l.obs[i] }

// Values returns every thread's observations, indexed by dense thread
// id, in each thread's program order. The outer slice is freshly
// allocated; the inner slices alias the log.
func (l *ObsLog) Values() [][]uint64 {
	out := make([][]uint64, len(l.obs))
	copy(out, l.obs)
	return out
}

// String renders the log deterministically, one line per thread that
// observed anything: "t<idx>: v0 v1 ...". Threads with empty logs are
// omitted, so machine size does not bloat the rendering.
func (l *ObsLog) String() string {
	var b strings.Builder
	for i, vals := range l.obs {
		if len(vals) == 0 {
			continue
		}
		fmt.Fprintf(&b, "t%d:", i)
		for _, v := range vals {
			fmt.Fprintf(&b, " %d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
