package shm

import (
	"fmt"
	"testing"

	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/proto"
)

func run(t *testing.T, nodes int, spec proto.Spec, setup func(m *machine.Machine) func(*proc.Env)) *machine.Machine {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig(nodes, spec))
	program := setup(m)
	if _, err := m.Run(program, 200_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

// readWord reads a word on a finished machine for verification.
func readWord(t *testing.T, m *machine.Machine, a mem.Addr) uint64 {
	t.Helper()
	var got uint64
	done := false
	m.Fabric.Cache(0).Access(a, proto.Op{Done: func(v uint64) { got = v; done = true }})
	if !m.Engine.RunUntil(func() bool { return done }, 10_000_000) {
		t.Fatal("verification read did not complete")
	}
	return got
}

func TestBarrierNoEarlyPass(t *testing.T) {
	// Every node increments a pre-barrier counter, crosses the barrier,
	// and logs the counter value it observes afterwards: all P arrivals
	// must be visible to every node. The observation log replaces the
	// older ad-hoc per-node violation counters and pins the outcome with
	// a deterministic rendering.
	const P = 8
	log := NewObsLog(P, 1)
	m := run(t, P, proto.FullMap(), func(m *machine.Machine) func(*proc.Env) {
		bar := NewBarrier(m.Mem, 0, P)
		pre := m.Mem.AllocOn(1, 1)
		return func(env *proc.Env) {
			env.FetchAdd(pre, 1)
			bar.Wait(env)
			log.Observe(env, pre)
		}
	})
	want := ""
	for n := 0; n < P; n++ {
		want += fmt.Sprintf("t%d: %d\n", n, P)
	}
	if got := log.String(); got != want {
		t.Fatalf("post-barrier observations:\n%s\nwant every node to see all %d arrivals:\n%s", got, P, want)
	}
	_ = m
}

func TestBarrierReusable(t *testing.T) {
	const P = 4
	const rounds = 5
	var violations int
	run(t, P, proto.LimitLESS(2), func(m *machine.Machine) func(*proc.Env) {
		bar := NewBarrier(m.Mem, 0, P)
		phase := m.Mem.AllocOn(1, rounds)
		return func(env *proc.Env) {
			for r := 0; r < rounds; r++ {
				env.FetchAdd(phase+mem.Addr(r), 1)
				bar.Wait(env)
				if env.Read(phase+mem.Addr(r)) != P {
					violations++
				}
				bar.Wait(env)
			}
		}
	})
	if violations != 0 {
		t.Fatalf("%d barrier-phase violations across rounds", violations)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// A non-atomic read-modify-write sequence under the lock must not
	// lose updates.
	const P = 8
	const iters = 10
	var mm *machine.Machine
	var cell mem.Addr
	mm = run(t, P, proto.FullMap(), func(m *machine.Machine) func(*proc.Env) {
		lock := NewLock(m.Mem, 0)
		cell = m.Mem.AllocOn(1, 1)
		return func(env *proc.Env) {
			for i := 0; i < iters; i++ {
				lock.Acquire(env)
				v := env.Read(cell)
				env.Compute(3) // widen the race window
				env.Write(cell, v+1)
				lock.Release(env)
			}
		}
	})
	if got := readWord(t, mm, cell); got != P*iters {
		t.Fatalf("locked counter = %d, want %d (lost updates)", got, P*iters)
	}
}

func TestLockMutualExclusionSoftwareOnly(t *testing.T) {
	const P = 4
	const iters = 5
	var mm *machine.Machine
	var cell mem.Addr
	mm = run(t, P, proto.SoftwareOnly(), func(m *machine.Machine) func(*proc.Env) {
		lock := NewLock(m.Mem, 0)
		cell = m.Mem.AllocOn(1, 1)
		return func(env *proc.Env) {
			for i := 0; i < iters; i++ {
				lock.Acquire(env)
				v := env.Read(cell)
				env.Write(cell, v+1)
				lock.Release(env)
			}
		}
	})
	if got := readWord(t, mm, cell); got != P*iters {
		t.Fatalf("locked counter = %d, want %d", got, P*iters)
	}
}

func TestReducer(t *testing.T) {
	const P = 8
	var mm *machine.Machine
	var red *Reducer
	mm = run(t, P, proto.LimitLESS(5), func(m *machine.Machine) func(*proc.Env) {
		red = NewReducer(m.Mem, 0)
		return func(env *proc.Env) {
			red.Add(env, uint64(env.ID())+1)
		}
	})
	// sum 1..8 = 36
	if got := readWord(t, mm, red.word); got != 36 {
		t.Fatalf("reduction = %d, want 36", got)
	}
}

func TestTaskQueuePushPop(t *testing.T) {
	const P = 4
	var mm *machine.Machine
	var sum mem.Addr
	mm = run(t, P, proto.FullMap(), func(m *machine.Machine) func(*proc.Env) {
		q := NewTaskQueue(m.Mem, P, 16)
		sum = m.Mem.AllocOn(0, 1)
		return func(env *proc.Env) {
			id := env.ID()
			// Each node pushes 5 tasks locally, then drains its queue.
			for i := 0; i < 5; i++ {
				if !q.Push(env, id, uint64(i)+1) {
					t.Error("push failed on empty queue")
				}
			}
			for {
				v, ok := q.Pop(env, id)
				if !ok {
					break
				}
				env.FetchAdd(sum, v)
			}
		}
	})
	// Each node contributes 1+2+3+4+5 = 15.
	if got := readWord(t, mm, sum); got != 15*P {
		t.Fatalf("task sum = %d, want %d", got, 15*P)
	}
}

func TestTaskQueueStealing(t *testing.T) {
	const P = 4
	var mm *machine.Machine
	var sum mem.Addr
	mm = run(t, P, proto.LimitLESS(2), func(m *machine.Machine) func(*proc.Env) {
		q := NewTaskQueue(m.Mem, P, 64)
		term := NewTermination(m.Mem, 0)
		sum = m.Mem.AllocOn(1, 1)
		return func(env *proc.Env) {
			id := env.ID()
			if id == 0 {
				// Node 0 produces all the work.
				term.Register(env, 20)
				for i := 0; i < 20; i++ {
					q.Push(env, 0, uint64(i)+1)
				}
			}
			for !term.Quiesced(env) {
				v, ok := q.Pop(env, id)
				if !ok {
					v, ok = q.Steal(env, id)
				}
				if !ok {
					env.Compute(20)
					continue
				}
				env.FetchAdd(sum, v)
				term.Complete(env)
			}
		}
	})
	// sum 1..20 = 210
	if got := readWord(t, mm, sum); got != 210 {
		t.Fatalf("stolen task sum = %d, want 210", got)
	}
}

func TestTaskQueueFullRejects(t *testing.T) {
	run(t, 2, proto.FullMap(), func(m *machine.Machine) func(*proc.Env) {
		q := NewTaskQueue(m.Mem, 2, 2)
		return func(env *proc.Env) {
			if env.ID() != 0 {
				return
			}
			if !q.Push(env, 0, 1) || !q.Push(env, 0, 2) {
				t.Error("pushes below capacity failed")
			}
			if q.Push(env, 0, 3) {
				t.Error("push beyond capacity succeeded")
			}
			if _, ok := q.Pop(env, 1); ok {
				t.Error("pop from empty queue succeeded")
			}
		}
	})
}

func TestTerminationCounts(t *testing.T) {
	const P = 4
	run(t, P, proto.FullMap(), func(m *machine.Machine) func(*proc.Env) {
		term := NewTermination(m.Mem, 0)
		bar := NewBarrier(m.Mem, 0, P)
		return func(env *proc.Env) {
			term.Register(env, 1)
			bar.Wait(env)
			last := term.Complete(env)
			bar.Wait(env)
			if !term.Quiesced(env) {
				t.Error("termination not quiesced after all completions")
			}
			_ = last
		}
	})
}

func TestFIFOLockMutualExclusion(t *testing.T) {
	const P = 8
	const iters = 5
	var mm *machine.Machine
	var cell mem.Addr
	mm = run(t, P, proto.LimitLESS(2), func(m *machine.Machine) func(*proc.Env) {
		lock := NewFIFOLock(m.Mem, 0)
		cell = m.Mem.AllocOn(1, 1)
		return func(env *proc.Env) {
			for i := 0; i < iters; i++ {
				lock.Acquire(env)
				v := env.Read(cell)
				env.Compute(3)
				env.Write(cell, v+1)
				lock.Release(env)
			}
		}
	})
	if got := readWord(t, mm, cell); got != P*iters {
		t.Fatalf("FIFO-locked counter = %d, want %d", got, P*iters)
	}
}

func TestFIFOLockGrantsInTicketOrder(t *testing.T) {
	// Record the acquisition order: it must be a valid FIFO service
	// order — every node's acquisitions happen in its own ticket order,
	// and the global order is exactly 0..N-1 of the service counter.
	const P = 4
	var order []uint64
	run(t, P, proto.FullMap(), func(m *machine.Machine) func(*proc.Env) {
		lock := NewFIFOLock(m.Mem, 0)
		return func(env *proc.Env) {
			for i := 0; i < 3; i++ {
				lock.Acquire(env)
				// Inside the lock: single-threaded by mutual exclusion.
				order = append(order, env.Read(lock.owner))
				lock.Release(env)
			}
		}
	})
	if len(order) != P*3 {
		t.Fatalf("%d acquisitions, want %d", len(order), P*3)
	}
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("acquisition %d served ticket %d; FIFO order violated: %v", i, v, order)
		}
	}
}
