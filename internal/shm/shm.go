// Package shm is the application runtime library: barriers, spin locks,
// reductions, and distributed task queues built on the shared-memory
// operations the processor exposes. It is the analog of Alewife's parallel
// C library (and the runtime support Mul-T and Semi-C programs rely on),
// which the paper's applications use for barriers and reductions.
//
// Every structure is allocated in shared memory before threads start and
// manipulated only through ordinary reads, writes, and read-modify-writes,
// so all synchronization traffic flows through the coherence protocol
// under study.
package shm

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/proc"
)

// Barrier is a centralized sense-reversing barrier: one counter word and
// one generation word. Arrivals increment the counter; the last arrival
// resets it and bumps the generation, releasing the spinners.
type Barrier struct {
	count mem.Addr
	gen   mem.Addr
	p     int
}

// NewBarrier allocates a barrier for p participants on the given home node.
func NewBarrier(m *mem.Memory, home mem.NodeID, p int) *Barrier {
	base := m.AllocOn(home, 2*mem.WordsPerBlock)
	// Counter and generation live in separate blocks so release spins do
	// not collide with arrival increments.
	return &Barrier{count: base, gen: base + mem.WordsPerBlock, p: p}
}

// Wait blocks until all p participants have arrived.
func (b *Barrier) Wait(env *proc.Env) {
	gen := env.Read(b.gen)
	if env.FetchAdd(b.count, 1) == uint64(b.p-1) {
		env.Write(b.count, 0)
		env.Write(b.gen, gen+1)
		return
	}
	env.WaitChange(b.gen, gen)
}

// Lock is a test-and-set spin lock with invalidation-based backoff: a
// blocked acquirer parks on the lock word and retries when the holder's
// release invalidates its copy.
type Lock struct {
	word mem.Addr
}

// NewLock allocates a lock on the given home node.
func NewLock(m *mem.Memory, home mem.NodeID) *Lock {
	return &Lock{word: m.AllocOn(home, mem.WordsPerBlock)}
}

// Acquire takes the lock.
func (l *Lock) Acquire(env *proc.Env) {
	for {
		old := env.RMW(l.word, func(o uint64) uint64 {
			if o == 0 {
				return 1
			}
			return o
		})
		if old == 0 {
			return
		}
		env.WaitChange(l.word, old)
	}
}

// Release drops the lock. Only the holder may call it.
func (l *Lock) Release(env *proc.Env) {
	env.Write(l.word, 0)
}

// WithLock runs fn holding the lock.
func (l *Lock) WithLock(env *proc.Env, fn func()) {
	l.Acquire(env)
	fn()
	l.Release(env)
}

// Reducer accumulates a machine-wide sum with a single shared word.
type Reducer struct {
	word mem.Addr
}

// NewReducer allocates a reduction cell on the given home node.
func NewReducer(m *mem.Memory, home mem.NodeID) *Reducer {
	return &Reducer{word: m.AllocOn(home, mem.WordsPerBlock)}
}

// Add contributes delta.
func (r *Reducer) Add(env *proc.Env, delta uint64) { env.FetchAdd(r.word, delta) }

// Value reads the current sum.
func (r *Reducer) Value(env *proc.Env) uint64 { return env.Read(r.word) }

// Addr exposes the reduction cell's address (for result probes).
func (r *Reducer) Addr() mem.Addr { return r.word }

// TaskQueue is a distributed work queue: one locked circular buffer per
// node, with work stealing. It carries uint64 task descriptors. This is
// the substrate for the future-based parallelism of the Mul-T applications
// (TSP, EVOLVE) and the fork-join recursion of AQ.
type TaskQueue struct {
	p    int
	cap  int
	lock []*Lock
	head []mem.Addr // next slot to pop
	tail []mem.Addr // next slot to push
	buf  []mem.Addr // per-node buffer base
}

// NewTaskQueue allocates per-node queues of the given capacity.
func NewTaskQueue(m *mem.Memory, p, capacity int) *TaskQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("shm: task queue capacity %d", capacity))
	}
	q := &TaskQueue{
		p:    p,
		cap:  capacity,
		lock: make([]*Lock, p),
		head: make([]mem.Addr, p),
		tail: make([]mem.Addr, p),
		buf:  make([]mem.Addr, p),
	}
	for n := 0; n < p; n++ {
		home := mem.NodeID(n)
		q.lock[n] = NewLock(m, home)
		// Head and tail share a block: a thief's emptiness peek costs
		// one miss, and the owner's updates invalidate one line.
		ctl := m.AllocOn(home, mem.WordsPerBlock)
		q.head[n] = ctl
		q.tail[n] = ctl + 1
		q.buf[n] = m.AllocOn(home, capacity)
	}
	return q
}

// Push enqueues a task on node n's queue, reporting false if full.
func (q *TaskQueue) Push(env *proc.Env, n mem.NodeID, task uint64) bool {
	ok := false
	q.lock[n].WithLock(env, func() {
		head := env.Read(q.head[n])
		tail := env.Read(q.tail[n])
		if tail-head >= uint64(q.cap) {
			return
		}
		env.Write(q.buf[n]+mem.Addr(tail%uint64(q.cap)), task)
		env.Write(q.tail[n], tail+1)
		ok = true
	})
	return ok
}

// Pop dequeues from node n's queue, reporting false if empty.
// An unlocked peek filters the empty case first: thieves probing idle
// queues cost two reads instead of a lock round-trip, which matters when
// sixty-three nodes scan for work at once.
func (q *TaskQueue) Pop(env *proc.Env, n mem.NodeID) (uint64, bool) {
	if env.Read(q.head[n]) == env.Read(q.tail[n]) {
		return 0, false
	}
	var task uint64
	ok := false
	q.lock[n].WithLock(env, func() {
		head := env.Read(q.head[n])
		tail := env.Read(q.tail[n])
		if head == tail {
			return
		}
		task = env.Read(q.buf[n] + mem.Addr(head%uint64(q.cap)))
		env.Write(q.head[n], head+1)
		ok = true
	})
	return task, ok
}

// Steal tries every other node's queue once, starting after the thief.
func (q *TaskQueue) Steal(env *proc.Env, thief mem.NodeID) (uint64, bool) {
	for i := 1; i < q.p; i++ {
		victim := mem.NodeID((int(thief) + i) % q.p)
		if t, ok := q.Pop(env, victim); ok {
			return t, ok
		}
	}
	return 0, false
}

// StealBatch probes a single victim and, on success, takes up to max
// tasks (half the victim's queue at most), re-queuing all but the first on
// the thief's own queue. Batching spreads work exponentially: each
// successful steal turns the thief into a producer other thieves can rob.
func (q *TaskQueue) StealBatch(env *proc.Env, thief mem.NodeID, attempt, max int) (uint64, bool) {
	if q.p == 1 {
		return 0, false
	}
	victim := q.victim(thief, attempt)
	if env.Read(q.head[victim]) == env.Read(q.tail[victim]) {
		return 0, false
	}
	var got []uint64
	q.lock[victim].WithLock(env, func() {
		head := env.Read(q.head[victim])
		tail := env.Read(q.tail[victim])
		n := int(tail-head+1) / 2
		if n > max {
			n = max
		}
		for i := 0; i < n; i++ {
			got = append(got, env.Read(q.buf[victim]+mem.Addr((head+uint64(i))%uint64(q.cap))))
		}
		if n > 0 {
			env.Write(q.head[victim], head+uint64(n))
		}
	})
	if len(got) == 0 {
		return 0, false
	}
	for _, t := range got[1:] {
		q.Push(env, thief, t)
	}
	return got[0], true
}

// victim picks the attempt-th victim for a thief, striding coprime to the
// machine size.
func (q *TaskQueue) victim(thief mem.NodeID, attempt int) mem.NodeID {
	stride := 7
	for q.p%stride == 0 {
		stride++
	}
	v := mem.NodeID((int(thief) + 1 + attempt*stride) % q.p)
	if v == thief {
		v = mem.NodeID((int(v) + 1) % q.p)
	}
	return v
}

// StealOne probes a single victim chosen by the attempt number, walking
// the machine with a stride coprime to its size. Probing one queue per
// idle iteration (with backoff) keeps sixty-three simultaneous thieves
// from saturating the network with emptiness checks — the full Steal scan
// invalidates every queue's control line machine-wide.
func (q *TaskQueue) StealOne(env *proc.Env, thief mem.NodeID, attempt int) (uint64, bool) {
	if q.p == 1 {
		return 0, false
	}
	return q.Pop(env, q.victim(thief, attempt))
}

// Termination detects distributed quiescence for task-queue computations:
// a count of outstanding tasks. Work is registered before it is pushed and
// deregistered after it completes, so a zero count means no task is queued
// or running anywhere.
type Termination struct {
	outstanding mem.Addr
}

// NewTermination allocates the counter on the given home node.
func NewTermination(m *mem.Memory, home mem.NodeID) *Termination {
	return &Termination{outstanding: m.AllocOn(home, mem.WordsPerBlock)}
}

// Register announces n new tasks.
func (t *Termination) Register(env *proc.Env, n uint64) { env.FetchAdd(t.outstanding, n) }

// Complete retires one task, reporting whether the computation quiesced.
func (t *Termination) Complete(env *proc.Env) bool {
	return env.FetchAdd(t.outstanding, ^uint64(0)) == 1
}

// Quiesced polls for completion.
func (t *Termination) Quiesced(env *proc.Env) bool {
	return env.Read(t.outstanding) == 0
}

// WaitQuiesced blocks until the computation quiesces.
func (t *Termination) WaitQuiesced(env *proc.Env) {
	for {
		v := env.Read(t.outstanding)
		if v == 0 {
			return
		}
		if env.WaitChange(t.outstanding, v) == 0 {
			return
		}
	}
}

// TreeBarrier is a combining-tree barrier with bounded fan-in: no barrier
// word is ever shared by more than Arity+1 nodes, so barrier traffic fits
// within a small hardware directory. It is the "fast barrier
// implementation" the paper lists among the protocol-software enhancements
// (Section 7), and the WORKER benchmark uses it so that synchronization
// does not perturb the exact worker-set sizes under study.
type TreeBarrier struct {
	p     int
	arity int
	// counts[l][g] and gens[l][g] are the arrival counter and release
	// generation of group g at level l.
	counts [][]mem.Addr
	gens   [][]mem.Addr
	sizes  [][]int
}

// TreeArity is the fan-in of each combining-tree group.
const TreeArity = 4

// NewTreeBarrier allocates the tree for p participants with the default
// fan-in. Each group's words are homed on the group's first member,
// keeping arrival traffic local to the subtree.
func NewTreeBarrier(m *mem.Memory, p int) *TreeBarrier {
	return NewTreeBarrierArity(m, p, TreeArity)
}

// NewTreeBarrierArity allocates the tree with an explicit fan-in. A fan-in
// of two bounds every barrier word's worker set within a five-pointer
// hardware directory even across release/re-arrival windows; the WORKER
// benchmark uses it so that synchronization never traps.
func NewTreeBarrierArity(m *mem.Memory, p, arity int) *TreeBarrier {
	if arity < 2 {
		arity = 2
	}
	b := &TreeBarrier{p: p, arity: arity}
	for members := p; members > 1; members = (members + b.arity - 1) / b.arity {
		groups := (members + b.arity - 1) / b.arity
		counts := make([]mem.Addr, groups)
		gens := make([]mem.Addr, groups)
		sizes := make([]int, groups)
		for g := 0; g < groups; g++ {
			size := b.arity
			if g == groups-1 && members%b.arity != 0 {
				size = members % b.arity
			}
			sizes[g] = size
			// Home the group's words on its first member's node,
			// scaled back to an actual node id at level 0 spacing.
			home := mem.NodeID((g * b.arity * stride(p, members)) % p)
			base := m.AllocOn(home, 2*mem.WordsPerBlock)
			counts[g] = base
			gens[g] = base + mem.WordsPerBlock
		}
		b.counts = append(b.counts, counts)
		b.gens = append(b.gens, gens)
		b.sizes = append(b.sizes, sizes)
	}
	return b
}

// stride maps a member index at a shrunken level back to node spacing.
func stride(p, members int) int {
	if members == 0 {
		return 1
	}
	s := p / members
	if s == 0 {
		s = 1
	}
	return s
}

// Wait blocks until all participants arrive.
func (b *TreeBarrier) Wait(env *proc.Env) {
	if b.p == 1 {
		return
	}
	b.climb(env, 0, int(env.ID()))
}

func (b *TreeBarrier) climb(env *proc.Env, level, idx int) {
	g := idx / b.arity
	gen := env.Read(b.gens[level][g])
	if env.FetchAdd(b.counts[level][g], 1) == uint64(b.sizes[level][g]-1) {
		env.Write(b.counts[level][g], 0)
		if level+1 < len(b.counts) {
			b.climb(env, level+1, g)
		}
		env.Write(b.gens[level][g], gen+1)
		return
	}
	env.WaitChange(b.gens[level][g], gen)
}

// DistTermination is a distributed quiescence detector for task-queue
// computations that scales past a few dozen nodes: each node counts the
// tasks it registered and the tasks it completed in its own local words,
// so the common case is a cache-resident increment instead of a serialized
// read-modify-write on a global counter.
//
// Quiescence is detected by summing all completed counters and then all
// registered counters: both are monotone and a task is always registered
// before it completes, so if the (earlier) completed sum equals the
// (later) registered sum, no task was outstanding in between. This is the
// classic safe scan order for distributed termination detection.
type DistTermination struct {
	p     int
	regs  []mem.Addr
	comps []mem.Addr
	done  mem.Addr
}

// NewDistTermination allocates the per-node counters.
func NewDistTermination(m *mem.Memory, p int) *DistTermination {
	t := &DistTermination{p: p, regs: make([]mem.Addr, p), comps: make([]mem.Addr, p)}
	for n := 0; n < p; n++ {
		base := m.AllocOn(mem.NodeID(n), 2*mem.WordsPerBlock)
		t.regs[n] = base
		t.comps[n] = base + mem.WordsPerBlock
	}
	t.done = m.AllocOn(0, mem.WordsPerBlock)
	return t
}

// Register announces n new tasks, counted on the caller's node.
func (t *DistTermination) Register(env *proc.Env, n uint64) {
	env.FetchAdd(t.regs[env.ID()], n)
}

// Complete retires one task, counted on the caller's node.
func (t *DistTermination) Complete(env *proc.Env) {
	env.FetchAdd(t.comps[env.ID()], 1)
}

// Detect is the designated detector's poll (conventionally node 0): it
// runs the quiescence scan and, on success, raises the done flag. Having a
// single scanner matters: the scan touches two counter blocks per node, so
// sixty-four concurrent scanners would keep every counter block's worker
// set at machine size and saturate the network with re-reads. Everyone
// else just watches the (write-once, read-shared) done flag.
func (t *DistTermination) Detect(env *proc.Env) bool {
	if t.Quiesced(env) {
		env.Write(t.done, 1)
		return true
	}
	return false
}

// Done reports whether the detector has declared termination. The flag is
// cached after the first read and invalidated exactly once.
func (t *DistTermination) Done(env *proc.Env) bool {
	return env.Read(t.done) != 0
}

// Quiesced reports whether every registered task has completed. The
// completed counters are summed before the registered counters; see the
// type comment for why that order is safe.
func (t *DistTermination) Quiesced(env *proc.Env) bool {
	var completed uint64
	for n := 0; n < t.p; n++ {
		completed += env.Read(t.comps[n])
	}
	var registered uint64
	for n := 0; n < t.p; n++ {
		registered += env.Read(t.regs[n])
	}
	return completed == registered
}

// FIFOLock is a ticket lock: acquirers are granted the lock in arrival
// order. It is one of the enhancements the paper reports building with the
// protocol extension software ("a FIFO lock data type", Section 7); here
// it is built from the same shared-memory primitives as everything else.
type FIFOLock struct {
	next  mem.Addr // ticket dispenser
	owner mem.Addr // ticket currently being served
}

// NewFIFOLock allocates the lock's two words (in separate blocks, so
// ticket dispensing does not collide with release broadcasts).
func NewFIFOLock(m *mem.Memory, home mem.NodeID) *FIFOLock {
	base := m.AllocOn(home, 2*mem.WordsPerBlock)
	return &FIFOLock{next: base, owner: base + mem.WordsPerBlock}
}

// Acquire takes a ticket and waits until it is served.
func (l *FIFOLock) Acquire(env *proc.Env) {
	ticket := env.FetchAdd(l.next, 1)
	for {
		cur := env.Read(l.owner)
		if cur == ticket {
			return
		}
		env.WaitChange(l.owner, cur)
	}
}

// Release passes the lock to the next ticket holder.
func (l *FIFOLock) Release(env *proc.Env) {
	env.FetchAdd(l.owner, 1)
}
