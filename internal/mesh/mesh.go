// Package mesh models the Alewife interconnect: a two-dimensional mesh with
// dimension-ordered (X-then-Y) routing. Matching NWO's stated fidelity
// (paper Section 3.2), contention is modeled at each node's CMMU network
// transmit and receive queues but not inside the network switches: a
// message waits for its source transmit queue, flows through the mesh at a
// fixed per-hop latency, and then waits for its destination receive queue.
package mesh

import (
	"fmt"

	"swex/internal/sim"
)

// Config sets the network timing parameters.
type Config struct {
	// Width and Height give the mesh dimensions; Width*Height nodes.
	Width, Height int
	// HopCycles is the switch/wire latency per mesh hop.
	HopCycles sim.Cycle
	// FlitCycles is the per-flit serialization time at the transmit and
	// receive queues (one flit per FlitCycles once the channel is free).
	// Zero means serialization is free: messages still deliver in send
	// order, but occupy no cycles. The model checker runs the whole
	// machine at zero latency so that logically identical states are
	// reached at identical (frozen) simulated times.
	FlitCycles sim.Cycle
	// LocalCycles is the loopback latency for a node messaging itself
	// (the CMMU turns the message around without entering the mesh).
	LocalCycles sim.Cycle
}

// DefaultConfig returns the timing used throughout the experiments: a
// square mesh sized for n nodes with single-cycle flits and two-cycle hops.
func DefaultConfig(n int) Config {
	w, h := Dimensions(n)
	return Config{
		Width:       w,
		Height:      h,
		HopCycles:   2,
		FlitCycles:  1,
		LocalCycles: 2,
	}
}

// ZeroLatency returns a configuration for n nodes in which every network
// latency is zero: messages claim their queue slots (so per-destination
// delivery order still follows send order) but cost no cycles. The model
// checker (internal/mc) uses it to freeze simulated time at cycle zero,
// making machine states comparable across different interleaving
// histories.
func ZeroLatency(n int) Config {
	w, h := Dimensions(n)
	return Config{Width: w, Height: h}
}

// Dimensions chooses a near-square WxH factorization for n nodes,
// preferring powers of two (Alewife machines were 2^k meshes).
func Dimensions(n int) (w, h int) {
	if n <= 0 {
		return 1, 1
	}
	// Largest w <= sqrt(n) dividing n.
	w = 1
	for c := 1; c*c <= n; c++ {
		if n%c == 0 {
			w = c
		}
	}
	return w, n / w
}

// MsgObserver receives the complete computed timing of every message at
// send time. The five cycle points decompose the message's latency:
//
//	sent     .. txStart  transmit-queue wait
//	txStart  .. injected source-side extra (DRAM) plus serialization
//	injected .. arrival  switch-to-switch flight
//	arrival  .. rxStart  receive-queue wait
//	rxStart  .. done     receive-side serialization
//
// For a self-send arrival and rxStart equal injected and done is the
// loopback delivery cycle. The tag is the caller's SendTagged tag.
// Observers must not send messages or schedule events.
type MsgObserver interface {
	MessageTimed(src, dst, size int, extra, sent, txStart, injected, arrival, rxStart, done sim.Cycle, tag any)
}

// Network is the mesh interconnect shared by all nodes of a machine.
type Network struct {
	cfg    Config
	engine *sim.Engine
	tx     []sim.Server // per-node transmit queue
	rx     []sim.Server // per-node receive queue

	// Obs, when non-nil, observes every message's computed timing. Nil
	// (the default) costs one branch per Send.
	Obs MsgObserver

	// Messages counts all messages sent; Flits counts total flits.
	Messages uint64
	Flits    uint64
	// HopTotal accumulates hop counts for mean-distance statistics.
	HopTotal uint64
}

// New creates a network over the given engine. It panics if the
// configuration is degenerate, since a machine without a network is a
// construction error rather than a runtime condition.
func New(engine *sim.Engine, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("mesh: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	n := cfg.Width * cfg.Height
	return &Network{
		cfg:    cfg,
		engine: engine,
		tx:     make([]sim.Server, n),
		rx:     make([]sim.Server, n),
	}
}

// Nodes reports the number of nodes the network connects.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Coord maps a node id to its (x, y) mesh coordinate.
func (n *Network) Coord(id int) (x, y int) {
	return id % n.cfg.Width, id / n.cfg.Width
}

// Hops returns the dimension-ordered routing distance between two nodes.
func (n *Network) Hops(src, dst int) int {
	sx, sy := n.Coord(src)
	dx, dy := n.Coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Send injects a message of size flits from src to dst and schedules
// deliver to run at the cycle the destination CMMU has fully received it.
// The returned cycle is the delivery time. extra adds source-side latency
// before injection (e.g. the DRAM access feeding a data reply) without
// giving up the message's place in the queues.
//
// The latency model is:
//
//	inject  = wait for src transmit queue, then extra + size*FlitCycles
//	flight  = hops * HopCycles
//	receive = wait for dst receive queue, then size*FlitCycles
//
// A self-send bypasses the mesh and costs LocalCycles after the transmit
// queue drains.
//
// Ordering guarantee: because both queues are reserved at call time in
// call order, deliveries to a given destination occur in global Send-call
// order. The coherence protocol depends on this: a data reply sent before
// an invalidation of the same block must arrive first (both are sent by
// the same home node, so their delivery events also share a key-counter
// stream and keep their send order even on a cycle tie). The delivery
// event is keyed by the sender (sim.Engine.OwnedAtCall), which is what
// lets the parallel barrier merge reproduce delivery order exactly.
//
//swex:hotpath
func (n *Network) Send(src, dst, size int, extra sim.Cycle, deliver func()) sim.Cycle {
	return n.SendTagged(src, dst, size, extra, nil, deliver)
}

// SendTagged is Send with an inspection tag attached to the delivery
// event (see sim.Engine.AtTagged). The protocol fabric tags deliveries
// with the in-flight message so the model checker can enumerate what is
// on the wire.
//
//swex:hotpath
func (n *Network) SendTagged(src, dst, size int, extra sim.Cycle, tag any, deliver func()) sim.Cycle {
	done := n.reserve(src, dst, size, extra, tag)
	n.engine.OwnedAt(src, done, tag, deliver)
	return done
}

// SendCall is SendTagged with a preallocated delivery receiver instead of
// a closure (see sim.Engine.AtCall): the fabric's pooled in-flight
// message entries deliver themselves, so the per-message send path
// allocates nothing.
//
//swex:hotpath
func (n *Network) SendCall(src, dst, size int, extra sim.Cycle, tag any, deliver sim.Caller) sim.Cycle {
	done := n.reserve(src, dst, size, extra, tag)
	n.engine.OwnedAtCall(src, done, tag, deliver)
	return done
}

// Lookahead returns the minimum number of cycles any message needs from
// its send call to its delivery: the cheaper of a self-send (one flit of
// serialization plus the loopback) and a single-hop remote send (one
// flit serialized out, one hop of flight, one flit serialized in). It is
// the conservative parallel engine's window width — no event fired at
// cycle t can cause a delivery before t+Lookahead, so shards running a
// window [t, t+Lookahead) cannot miss cross-shard messages. A zero
// lookahead (the model checker's frozen-time configuration) means the
// network cannot bound cross-shard causality and the machine must run
// serially; machine.Config.Validate enforces that.
func (n *Network) Lookahead() sim.Cycle {
	local := n.cfg.FlitCycles + n.cfg.LocalCycles
	remote := 2*n.cfg.FlitCycles + n.cfg.HopCycles
	if local < remote {
		return local
	}
	return remote
}

// reserve claims the transmit and receive queue slots for one message and
// returns its delivery cycle, charging all accounting.
func (n *Network) reserve(src, dst, size int, extra sim.Cycle, tag any) sim.Cycle {
	return n.ReserveAt(n.engine.Now(), src, dst, size, extra, tag)
}

// ReserveAt is reserve with an explicit send cycle instead of the
// engine's clock, and no delivery scheduling: it claims the queue slots,
// charges all accounting, and returns the delivery cycle. The parallel
// barrier merge calls it while replaying staged sends in the canonical
// (cycle, event-key) order — at merge time the master engine's
// clock is parked at the window boundary, but each staged send must
// reserve as of the cycle its shard issued it, or queue waits would
// differ from the serial run. Serial sends go through reserve, which is
// ReserveAt at Now.
func (n *Network) ReserveAt(now sim.Cycle, src, dst, size int, extra sim.Cycle, tag any) sim.Cycle {
	if size < 1 {
		size = 1
	}
	n.Messages++
	n.Flits += uint64(size)

	ser := sim.Cycle(size) * n.cfg.FlitCycles
	txStart := n.tx[src].Reserve(now, extra+ser)
	injected := txStart + extra + ser

	if src == dst {
		at := injected + n.cfg.LocalCycles
		if n.Obs != nil {
			n.Obs.MessageTimed(src, dst, size, extra, now, txStart, injected, injected, injected, at, tag)
		}
		return at
	}

	hops := n.Hops(src, dst)
	n.HopTotal += uint64(hops)
	arrival := injected + sim.Cycle(hops)*n.cfg.HopCycles

	// The receive queue cannot start before the head flit arrives; model
	// the reservation from the arrival time. Reserving the future is
	// sound because the Server orders by reservation call order, and the
	// engine fires events deterministically.
	rxStart := n.rx[dst].Reserve(arrival, ser)
	done := rxStart + ser
	if n.Obs != nil {
		n.Obs.MessageTimed(src, dst, size, extra, now, txStart, injected, arrival, rxStart, done, tag)
	}
	return done
}

// TxUtilization returns the fraction of elapsed cycles node id's transmit
// queue was busy. Useful for hot-spot analysis.
func (n *Network) TxUtilization(id int) float64 {
	now := n.engine.Now()
	if now == 0 {
		return 0
	}
	return float64(n.tx[id].Busy) / float64(now)
}

// RxWaited returns the total cycles messages spent waiting in node id's
// receive queue.
func (n *Network) RxWaited(id int) sim.Cycle { return n.rx[id].Waited }

// MeanHops returns the average hop count over all non-local messages.
func (n *Network) MeanHops() float64 {
	if n.Messages == 0 {
		return 0
	}
	return float64(n.HopTotal) / float64(n.Messages)
}
