package mesh

import "swex/internal/sim"

// TierConfig sets the timing of a second interconnect tier: the rack-scale
// fabric (CXL switch, photonic link) that disaggregated memory sits behind.
// It is deliberately simpler than the mesh proper — one shared link per
// home node, dimensionless hops — because what the experiments need is the
// first-order effect: a fixed round-trip penalty plus queueing under a
// bandwidth cap, not a routed topology.
type TierConfig struct {
	// Hops is the one-way switch count between the node and its far
	// memory; a transfer pays the hop latency twice (request + response).
	Hops int
	// HopCycles is the per-hop switch/wire latency.
	HopCycles sim.Cycle
	// FlitCycles is the per-flit serialization time on the tier link; the
	// link is occupied for Flits*FlitCycles per transfer, which is the
	// bandwidth cap: concurrent transfers queue behind it.
	FlitCycles sim.Cycle
	// Flits is the transfer size in tier-link flits (a cache block plus
	// header).
	Flits int
	// MemCycles is the far memory device's access time.
	MemCycles sim.Cycle
}

// TierLink is one node's link onto the second interconnect tier. Like the
// mesh's transmit queues it is a FIFO server: transfers reserve the link
// in call order, so concurrent block fetches from the same home queue
// deterministically.
type TierLink struct {
	cfg TierConfig
	srv sim.Server

	// Transfers counts transfers over this link.
	Transfers uint64
	// Queued accumulates cycles transfers spent waiting for the link.
	Queued sim.Cycle
}

// NewTierLink returns a link with the given timing.
func NewTierLink(cfg TierConfig) TierLink { return TierLink{cfg: cfg} }

// Transfer reserves the link for one block transfer starting at now and
// returns the time split: queue is the wait for the link to free, transit
// is the round trip itself (serialization, twice the hop flight, and the
// far memory access). The transfer completes at now+queue+transit.
func (l *TierLink) Transfer(now sim.Cycle) (queue, transit sim.Cycle) {
	ser := sim.Cycle(l.cfg.Flits) * l.cfg.FlitCycles
	start := l.srv.Reserve(now, ser)
	queue = start - now
	transit = ser + 2*sim.Cycle(l.cfg.Hops)*l.cfg.HopCycles + l.cfg.MemCycles
	l.Transfers++
	l.Queued += queue
	return queue, transit
}

// FreeAt reports when the link next falls idle (testing and statistics).
func (l *TierLink) FreeAt() sim.Cycle { return l.srv.FreeAt() }
