package mesh

import (
	"testing"
	"testing/quick"

	"swex/internal/sim"
)

func TestDimensions(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1},
		{2, 1, 2},
		{4, 2, 2},
		{16, 4, 4},
		{64, 8, 8},
		{256, 16, 16},
		{12, 3, 4},
		{0, 1, 1},
	}
	for _, c := range cases {
		w, h := Dimensions(c.n)
		if w != c.w || h != c.h {
			t.Errorf("Dimensions(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func newNet(t *testing.T, n int) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	return e, New(e, DefaultConfig(n))
}

func TestHops(t *testing.T) {
	_, net := newNet(t, 16) // 4x4
	if got := net.Hops(0, 0); got != 0 {
		t.Fatalf("Hops(0,0) = %d, want 0", got)
	}
	if got := net.Hops(0, 3); got != 3 {
		t.Fatalf("Hops(0,3) = %d, want 3", got)
	}
	if got := net.Hops(0, 15); got != 6 {
		t.Fatalf("Hops(0,15) = %d, want 6 (corner to corner of 4x4)", got)
	}
	if got := net.Hops(5, 6); got != 1 {
		t.Fatalf("Hops(5,6) = %d, want 1", got)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	_, net := newNet(t, 16)
	for id := 0; id < 16; id++ {
		x, y := net.Coord(id)
		if y*4+x != id {
			t.Fatalf("Coord(%d) = (%d,%d), does not invert", id, x, y)
		}
	}
}

func TestSendLatencyUncontended(t *testing.T) {
	e, net := newNet(t, 16)
	// cfg: hop=2, flit=1. src=0, dst=3: 3 hops.
	// inject: 4 flits = 4 cycles; flight 6; receive 4. total 14.
	var deliveredAt sim.Cycle
	at := net.Send(0, 3, 4, 0, func() { deliveredAt = e.Now() })
	e.Run(0)
	if at != 14 {
		t.Fatalf("predicted delivery %d, want 14", at)
	}
	if deliveredAt != 14 {
		t.Fatalf("delivered at %d, want 14", deliveredAt)
	}
}

func TestSendLocalLoopback(t *testing.T) {
	e, net := newNet(t, 16)
	at := net.Send(5, 5, 2, 0, func() {})
	e.Run(0)
	// inject 2 + local 2 = 4
	if at != 4 {
		t.Fatalf("local delivery at %d, want 4", at)
	}
	if net.HopTotal != 0 {
		t.Fatal("local message should not accumulate hops")
	}
}

func TestSendMinimumSize(t *testing.T) {
	e, net := newNet(t, 4)
	at := net.Send(0, 1, 0, 0, func() {}) // size clamped to 1
	e.Run(0)
	// inject 1 + 1 hop * 2 + receive 1 = 4
	if at != 4 {
		t.Fatalf("zero-size message delivered at %d, want 4", at)
	}
}

func TestTransmitQueueContention(t *testing.T) {
	e, net := newNet(t, 16)
	// Two messages from node 0 at cycle 0: second must wait for first's
	// injection (4 cycles) before starting its own.
	a := net.Send(0, 3, 4, 0, func() {})
	b := net.Send(0, 3, 4, 0, func() {})
	e.Run(0)
	if a != 14 {
		t.Fatalf("first delivery %d, want 14", a)
	}
	// second: inject starts at 4, done 8; flight ->14; rx busy 14-18 from
	// first, so rx starts 18, done 22... wait first rx: arrival 10, rx
	// 10-14. second arrival 8+6=14, rx 14-18.
	if b != 18 {
		t.Fatalf("second delivery %d, want 18", b)
	}
}

func TestReceiveQueueContention(t *testing.T) {
	e, net := newNet(t, 16)
	// Two different sources, same destination, equidistant.
	a := net.Send(1, 0, 4, 0, func() {}) // 1 hop
	b := net.Send(4, 0, 4, 0, func() {}) // 1 hop (node 4 is (0,1))
	e.Run(0)
	// Both arrive at 4+2=6; rx serializes: first 6-10, second 10-14.
	if a != 10 {
		t.Fatalf("first delivery %d, want 10", a)
	}
	if b != 14 {
		t.Fatalf("second delivery %d, want 14 (receive queue contention)", b)
	}
}

func TestStatistics(t *testing.T) {
	e, net := newNet(t, 16)
	net.Send(0, 3, 4, 0, func() {})
	net.Send(0, 0, 2, 0, func() {})
	e.Run(0)
	if net.Messages != 2 {
		t.Fatalf("Messages = %d, want 2", net.Messages)
	}
	if net.Flits != 6 {
		t.Fatalf("Flits = %d, want 6", net.Flits)
	}
	if net.MeanHops() != 1.5 {
		t.Fatalf("MeanHops = %v, want 1.5 (3 hops over 2 msgs)", net.MeanHops())
	}
	if net.TxUtilization(0) <= 0 {
		t.Fatal("TxUtilization should be positive for the sender")
	}
	if net.RxWaited(3) != 0 {
		t.Fatal("uncontended receive should not wait")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degenerate mesh config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{Width: 0, Height: 4})
}

// Property: hop distance is a metric: symmetric, zero iff equal, and obeys
// the triangle inequality.
func TestHopsPropertyMetric(t *testing.T) {
	_, net := newNet(t, 64)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		if net.Hops(x, y) != net.Hops(y, x) {
			return false
		}
		if (net.Hops(x, y) == 0) != (x == y) {
			return false
		}
		return net.Hops(x, z) <= net.Hops(x, y)+net.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time is at least the uncontended minimum latency.
func TestSendPropertyMinLatency(t *testing.T) {
	f := func(pairs []uint16) bool {
		e := sim.NewEngine()
		cfg := DefaultConfig(16)
		net := New(e, cfg)
		ok := true
		for _, p := range pairs {
			src := int(p) % 16
			dst := int(p>>4) % 16
			size := int(p>>8)%4 + 1
			now := e.Now()
			at := net.Send(src, dst, size, 0, func() {})
			var minLat sim.Cycle
			if src == dst {
				minLat = sim.Cycle(size)*cfg.FlitCycles + cfg.LocalCycles
			} else {
				minLat = 2*sim.Cycle(size)*cfg.FlitCycles +
					sim.Cycle(net.Hops(src, dst))*cfg.HopCycles
			}
			if at < now+minLat {
				ok = false
			}
		}
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSendExtraDelay(t *testing.T) {
	e, net := newNet(t, 16)
	at := net.Send(0, 3, 4, 10, func() {})
	e.Run(0)
	// inject: extra 10 + 4 flits = 14; flight 6; receive 4 -> 24.
	if at != 24 {
		t.Fatalf("delayed delivery at %d, want 24", at)
	}
}

func TestDeliveryFollowsCallOrder(t *testing.T) {
	// A slow data reply sent first must not be overtaken by a fast
	// control message sent immediately afterwards — the coherence
	// protocol's data-before-invalidation invariant.
	e, net := newNet(t, 16)
	var order []string
	net.Send(0, 3, 6, 50, func() { order = append(order, "data") })
	net.Send(0, 3, 2, 0, func() { order = append(order, "inv") })
	e.Run(0)
	if len(order) != 2 || order[0] != "data" || order[1] != "inv" {
		t.Fatalf("delivery order %v, want [data inv]", order)
	}
}

func TestDeliveryOrderCrossSource(t *testing.T) {
	// Even across sources, deliveries to one destination follow send-call
	// order (the receive queue is reserved at call time).
	e, net := newNet(t, 16)
	var order []string
	net.Send(15, 0, 6, 40, func() { order = append(order, "far") })
	net.Send(1, 0, 2, 0, func() { order = append(order, "near") })
	e.Run(0)
	if order[0] != "far" {
		t.Fatalf("delivery order %v, want far first (call order)", order)
	}
}
