// Package determinism exercises the determinism analyzer: forbidden
// imports, concurrency syntax, and map iteration. Lines carrying a want
// marker must produce a diagnostic whose message contains the quoted
// substring; every other line must stay clean.
package determinism

import (
	"sort"
	"time" // want "import of time"
)

var clock = time.Now

func concurrency(ch chan int) {
	go clock() // want "goroutine launch"
	select {}  // want "select"
	ch <- 1    // want "channel send"
	<-ch       // want "channel receive"
	close(ch)  // want "channel close"

	ch2 := make(chan int) // want "channel construction"
	for v := range ch2 {  // want "range over channel"
		_ = v
	}
}

func unsortedMap(m map[int]int) int {
	sum := 0
	for k := range m { // want "range over map"
		sum += k
	}
	return sum
}

// sortedCollect follows the sanctioned idiom: collect, then sort. The
// analyzer must not flag the range statement.
func sortedCollect(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// suppressed demonstrates the escape hatch: the violation on the marked
// line is real, but the allow comment (with a mandatory reason) hides it.
func suppressed(m map[int]int) int {
	n := 0
	for range m { //lint:allow determinism(fixture: count is order-independent)
		n++
	}
	return n
}
