package determinism

import "fmt"

// traceExport models the trace-exporter bug the determinism analyzer must
// catch: rendering per-transaction flows by ranging over the correlation
// map directly. Iteration order would vary run to run, so the exported
// trace would not be byte-identical — the collect-and-sort idiom (see
// sortedCollect) is the sanctioned form.
func traceExport(flows map[uint64][]int) string {
	out := ""
	for txn, spans := range flows { // want "range over map"
		out += fmt.Sprintf("%d:%v\n", txn, spans)
	}
	return out
}
