package determinism

import "fmt"

// sweepMerge models the sweep-orchestrator bug the determinism analyzer
// must catch: merging a worker pool's results by ranging over the
// hash-indexed map directly. The merge order would follow map iteration
// order — different every run — so the sweep report would stop being
// byte-identical to a serial run. The real runner merges by submission
// index; a map-keyed merge must collect and sort (see sortedCollect).
func sweepMerge(byHash map[string]uint64) string {
	out := ""
	for hash, cycles := range byHash { // want "range over map"
		out += fmt.Sprintf("%s %d\n", hash, cycles)
	}
	return out
}
