// Package hotalloc exercises the call-graph-aware allocation analyzer:
// reachability from //swex:hotpath roots through interface dispatch,
// method values, and escaped closures, plus every allocation-site kind.
package hotalloc

import "fmt"

// handler has two implementations; CHA must mark both hot.
type handler interface{ handle(n int) }

type hotImpl struct{ buf []int }

type otherImpl struct{}

type point struct{ x, y int }

type wrapper struct{ tag any }

type flusher struct{ lines []string }

// pending holds escaped closures, mimicking the engine's event queue.
var pending []func()

// Root is the per-event entry point of the fixture.
//
//swex:hotpath
func Root(h handler, fn func(), tag any) {
	h.handle(1)
	fn()
	schedule(42, tag) // want "argument boxes int into any"
	_ = tagOf(3)
}

// schedule mimics sim.Engine.AtTagged's (tag any) signature.
func schedule(v any, t any) {
	_ = v
	_ = t
}

// tagOf is hot via the static call in Root; its interface result boxes.
func tagOf(n int) any {
	return n // want "return boxes int into any"
}

func (h *hotImpl) handle(n int) {
	h.buf = append(h.buf, n) // want "append (growth reallocates)"
	helper(n)
}

func (o otherImpl) handle(n int) {
	p := new(point) // want "new(point)"
	p.x = n
	cb := func() int { return n } // want "func literal capturing n"
	_ = cb()
	fixed := func() int { return 1 } // no capture: not an allocation
	_ = fixed()
}

// helper is hot transitively through both handle implementations.
func helper(n int) {
	m := make(map[int]int) // want "make(map[int]int"
	m[n] = n
	ids := []int{n} // want "slice literal []int"
	_ = ids
	ch := make(chan int, 1) // want "channel construction"
	ch <- n                 // want "channel send"
	_ = <-ch                // want "channel receive"
	label := "op"
	label = label + "x" // want "string concatenation"
	_ = fmt.Sprintf("%s %d", label, n) // want "fmt.Sprintf call"
	const a, b = "l", "r"
	_ = a + b // constant concatenation folds at compile time
	var x any
	x = point{n, n} // want "assignment boxes fixture/hotalloc.point"
	_ = x
	pp := &point{x: n} // want "composite literal &point"
	_ = pp
	w := wrapper{tag: n} // want "composite element boxes int into any"
	_ = w
	_ = allowedScratch(n)
}

// allowedScratch shows the escape hatch: the site is suppressed with a
// documented reason, so Run drops it (RunAll keeps it as Suppressed).
func allowedScratch(n int) []int {
	return make([]int, n) //lint:allow hotalloc(setup-only scratch, measured cold)
}

// flush is reachable only as a method value taken in cold code; the
// engine's indirect func() dispatch must still mark it hot.
func (f *flusher) flush() {
	f.lines = append(f.lines, "x") // want "append (growth reallocates)"
}

// holdMethod is cold; taking f.flush here must not hide flush from the
// hot set (and holdMethod's own sites must not be flagged).
func holdMethod(f *flusher) func() {
	fs := make([]func(), 0, 1)
	fs = append(fs, f.flush)
	return fs[0]
}

// register is cold, but the closure it enqueues runs as an event: the
// closure body is hot even though register itself is not.
func register(n int) {
	pending = append(pending, func() {
		scratch := make([]int, n) // want "make([]int"
		_ = scratch
	})
}

// unreachable allocates freely but no hot path reaches it: the negative
// case proving reachability, not mere package membership, drives reports.
func unreachable() {
	big := make([]byte, 1<<20)
	_ = append(big, 1)
	_ = new(point)
	_ = fmt.Sprintln("cold")
}
