// Package cyclemath exercises the cycle-math analyzer: floating point
// must not flow into cycle accounting, while reporting helpers that
// return floats may convert cycles out.
package cyclemath

import "swex/internal/sim"

// badFromFloat converts a float into the cycle type: always flagged.
func badFromFloat(f float64) sim.Cycle {
	return sim.Cycle(f) // want "cycle accounting must stay integral"
}

// badToFloat converts a cycle to float inside a non-reporting function.
func badToFloat(c sim.Cycle) uint64 {
	scaled := float64(c) * 1.5 // want "latency accounting must stay integral"
	return uint64(scaled)
}

// Utilization returns a float, so its cycle-to-float conversions are the
// legitimate reporting case.
func Utilization(busy, total sim.Cycle) float64 {
	return float64(busy) / float64(total)
}

// reportingLit shows a function literal carrying its own float-returning
// signature: clean inside, even though the enclosing function is not a
// reporting function.
func reportingLit(c sim.Cycle) uint64 {
	f := func() float64 {
		return float64(c)
	}
	return uint64(f())
}

// integralMath stays in integers: clean.
func integralMath(c sim.Cycle) sim.Cycle {
	return c*3 + sim.Cycle(uint64(c)/2)
}
