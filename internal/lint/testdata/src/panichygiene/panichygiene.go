// Package panichygiene exercises the panic-hygiene analyzer: panics must
// carry constant, package-prefixed messages, and recover is forbidden.
package panichygiene

import (
	"errors"
	"fmt"
)

var errBad = errors.New("bad")

// nonConstant panics with a bare error value: untraceable.
func nonConstant() {
	panic(errBad) // want "must be a constant string"
}

// wrongPrefix panics with a constant that does not name the package.
func wrongPrefix() {
	panic("oops") // want "must start with"
}

// wrongSprintfPrefix formats correctly but names the wrong subsystem.
func wrongSprintfPrefix(n int) {
	panic(fmt.Sprintf("other: bad value %d", n)) // want "must start with"
}

// good panics are constant and package-prefixed.
func good(n int) {
	if n < 0 {
		panic("panichygiene: negative input")
	}
	panic(fmt.Sprintf("panichygiene: invalid n %d", n))
}

// recovering swallows an invariant violation.
func recovering() {
	defer func() {
		recover() // want "recover in the simulation core"
	}()
}
