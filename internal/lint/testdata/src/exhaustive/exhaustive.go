// Package exhaustive exercises the exhaustive-enum analyzer: switches
// over a typed-const enum must cover every constant or panic in an
// explicit default clause.
package exhaustive

import "fmt"

// State is a closed enum; numStates is a sentinel and not a member.
type State int

const (
	Idle State = iota
	Busy
	Done
	numStates
)

var _ = numStates

// covered lists every constant: clean.
func covered(s State) string {
	switch s {
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	case Done:
		return "done"
	}
	return "?"
}

// missingCase omits Done and has no default.
func missingCase(s State) string {
	switch s { // want "misses Done and has no default clause"
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	}
	return "?"
}

// silentDefault has a default, but it cannot distinguish a forgotten
// constant from a corrupted value.
func silentDefault(s State) string {
	switch s { // want "default clause does not panic"
	case Idle:
		return "idle"
	default:
		return "?"
	}
}

// panickingDefault is the accepted alternative to full coverage.
func panickingDefault(s State) string {
	switch s {
	case Idle:
		return "idle"
	default:
		panic(fmt.Sprintf("exhaustive: unknown state %d", int(s)))
	}
}

// nonConstantCase cannot be verified statically and is left alone.
func nonConstantCase(s, other State) string {
	switch s {
	case other:
		return "same"
	}
	return "?"
}
