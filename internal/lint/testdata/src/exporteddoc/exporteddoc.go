package exporteddoc // want "no package doc comment"

// Documented is fine: the comment mentions Documented.
type Documented struct {
	// Field is documented.
	Field int
	// Other carries a doc comment too.
	Other string
	Bare  int // want "exported field Bare has no doc comment"
}

// Iface is an interface with a bare method.
type Iface interface {
	// Good is documented.
	Good()
	Bad() // want "exported interface method Bad has no doc comment"
}

type Undocumented int // want "exported type Undocumented has no doc comment"

// wrong name in the comment: it talks about something else entirely.
type Drifted int // want "never mentions"

func (Documented) Method() int { return 0 } // want "exported method Method has no doc comment"

// String renders the Documented value; methods with matching docs pass.
func (Documented) String() string { return "" }

func (unexported) Exported() {} // methods on unexported types are not API surface

type unexported int

// Exported is documented.
func Exported() {}

func AlsoExported() {} // want "exported function AlsoExported has no doc comment"

// Grouped constants: the group doc covers every name.
const (
	GroupedA = iota
	GroupedB
)

const Single = 1 // want "exported const Single has no doc comment"

// Named is documented on its own spec.
const Named = 2

var Loose = 3 // want "exported var Loose has no doc comment"

// Vars documents the group.
var (
	CoveredA int
	CoveredB int
)
