package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// JSONDiagnostic is the machine-readable record swexlint -json emits,
// one JSON object per line, for CI annotation tooling. Suppressed is the
// allow-state: true means a //lint:allow comment silenced the finding.
type JSONDiagnostic struct {
	// File is the source file, relative to the requested base directory.
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Col is the 1-based source column.
	Col int `json:"col"`
	// Analyzer names the rule family that reported the violation.
	Analyzer string `json:"analyzer"`
	// Message states the violation in one line.
	Message string `json:"message"`
	// Suppressed is the allow-state: true when //lint:allow silenced it.
	Suppressed bool `json:"suppressed"`
}

// WriteJSON renders diagnostics as newline-delimited JSON records.
// File names are made relative to baseDir when they fall under it, so
// output is stable across checkouts.
func WriteJSON(w io.Writer, baseDir string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		name := d.Pos.Filename
		if baseDir != "" {
			if r, err := filepath.Rel(baseDir, name); err == nil && !strings.HasPrefix(r, "..") {
				name = filepath.ToSlash(r)
			}
		}
		if err := enc.Encode(JSONDiagnostic{
			File:       name,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}); err != nil {
			return err
		}
	}
	return nil
}
