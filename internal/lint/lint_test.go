package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"swex/internal/lint"
)

// TestRepositoryIsClean runs the full analyzer suite over every non-test
// package of this module. This is the enforcement point of the
// determinism contract: a new violation anywhere in the tree fails
// `go test ./...`.
func TestRepositoryIsClean(t *testing.T) {
	root, modPath, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	// Guard against a vacuous pass: the simulation core must be among the
	// loaded packages, fully type-checked.
	byPath := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	cfg := lint.DefaultConfig()
	for _, core := range cfg.CorePaths {
		p, ok := byPath[core]
		if !ok {
			t.Fatalf("core package %s not loaded", core)
		}
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", core, terr)
		}
	}
	cfg.Baseline, err = lint.LoadBaseline(filepath.Join(root, lint.BaselineFile))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if cfg.Baseline == nil {
		t.Fatalf("%s missing at module root; the hotalloc ratchet requires it", lint.BaselineFile)
	}
	for _, d := range lint.Run(cfg, pkgs, lint.Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestBaselineRatchet is the one-way enforcement of lint-baseline.json:
// a hot-path allocation count above the committed baseline is a
// regression, and a count below it is staleness — the improvement must be
// locked in with `swexlint -write-baseline` so the totals only shrink.
func TestBaselineRatchet(t *testing.T) {
	root, modPath, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	committed, err := lint.LoadBaseline(filepath.Join(root, lint.BaselineFile))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if committed == nil {
		t.Fatalf("%s missing at module root", lint.BaselineFile)
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	current := lint.ComputeBaseline(lint.DefaultConfig(), pkgs)
	if current.Total() == 0 {
		t.Fatalf("hotalloc found no sites at all; the call graph lost its roots")
	}
	regressions, stale := committed.Diff(current)
	for _, r := range regressions {
		t.Errorf("hot-path allocation regression: %s", r)
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (run `go run ./cmd/swexlint -write-baseline` to ratchet down): %s", s)
	}
}

// fixtureConfig scopes the analyzers to the fixture packages: they are
// "core" so every rule applies, and their own types count as enums.
func fixtureConfig() *lint.Config {
	return &lint.Config{
		CorePaths:   []string{"fixture"},
		EnumModules: []string{"fixture"},
		CycleType:   "swex/internal/sim.Cycle",
		DocPaths:    []string{"fixture/exporteddoc"},
	}
}

// hotallocConfig scopes the hotalloc fixture: the fixture package is the
// whole program and its own report target, and the per-package rules are
// kept out of the way (the fixture's channels and fmt calls exist to be
// allocation sites, not determinism violations).
func hotallocConfig() *lint.Config {
	return &lint.Config{
		CycleType:      "swex/internal/sim.Cycle",
		HotReportPaths: []string{"fixture/hotalloc"},
	}
}

// loadHotallocFixture loads the hotalloc fixture package.
func loadHotallocFixture(t *testing.T) *lint.Package {
	t.Helper()
	root, modPath, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	loader := lint.NewLoader(root, modPath)
	pkg, err := loader.Load(filepath.Join("testdata", "src", "hotalloc"), "fixture/hotalloc")
	if err != nil {
		t.Fatalf("Load(hotalloc fixture): %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture type error: %v", terr)
	}
	return pkg
}

// TestFixtures checks each analyzer against its golden fixture: every
// `// want "substr"` comment must be matched by exactly one diagnostic on
// that line, and no diagnostic may appear on an unmarked line.
func TestFixtures(t *testing.T) {
	root, modPath, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	for _, name := range []string{"determinism", "exhaustive", "cyclemath", "panichygiene", "exporteddoc", "hotalloc"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			loader := lint.NewLoader(root, modPath)
			pkg, err := loader.Load(dir, "fixture/"+name)
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture type error: %v", terr)
			}
			cfg, analyzers := fixtureConfig(), lint.Analyzers()
			if name == "hotalloc" {
				cfg, analyzers = hotallocConfig(), []lint.Analyzer{lint.HotAlloc{}}
			}
			wants := parseWants(t, dir)
			diags := lint.Run(cfg, []*lint.Package{pkg}, analyzers)
			for _, d := range diags {
				if !wants.match(filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants.unmatched() {
				t.Errorf("missing diagnostic: %s:%d: want message containing %q", w.file, w.line, w.substr)
			}
		})
	}
}

// want is one expected diagnostic parsed from a fixture comment.
type want struct {
	file   string
	line   int
	substr string
	hit    bool
}

type wantSet struct{ wants []*want }

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants scans the fixture sources for `// want "substr"` markers.
func parseWants(t *testing.T, dir string) *wantSet {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	set := &wantSet{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("open fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				set.wants = append(set.wants, &want{file: e.Name(), line: line, substr: m[1]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan fixture: %v", err)
		}
		f.Close()
	}
	if len(set.wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	return set
}

// match consumes one unmatched want on the diagnostic's line whose
// substring appears in the message.
func (s *wantSet) match(file string, line int, message string) bool {
	for _, w := range s.wants {
		if !w.hit && w.file == file && w.line == line && strings.Contains(message, w.substr) {
			w.hit = true
			return true
		}
	}
	return false
}

func (s *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range s.wants {
		if !w.hit {
			out = append(out, w)
		}
	}
	return out
}

// TestAnalyzersByName pins the CLI's analyzer-selection syntax.
func TestAnalyzersByName(t *testing.T) {
	as, err := lint.AnalyzersByName("determinism, cycle-math")
	if err != nil {
		t.Fatalf("AnalyzersByName: %v", err)
	}
	if len(as) != 2 || as[0].Name() != "determinism" || as[1].Name() != "cycle-math" {
		t.Fatalf("unexpected analyzer selection: %v", as)
	}
	if _, err := lint.AnalyzersByName("nope"); err == nil {
		t.Fatalf("AnalyzersByName accepted an unknown analyzer")
	}
}
