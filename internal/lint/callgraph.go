package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathMarker is the annotation that roots the whole-program call graph:
// a function whose doc comment (or a comment on the line above) contains
// this marker is a per-event entry point of the simulation — the places
// the discrete-event engine dispatches into. Everything statically
// reachable from a marked function is "hot", and the hotalloc analyzer
// reports allocation sites only there.
const HotPathMarker = "//swex:hotpath"

// CallGraph is a class-hierarchy-analysis (CHA) style reachability
// structure over every function of the analyzed packages. It resolves
//
//   - static calls and concrete method calls to their single target;
//   - interface method calls to the same-named method of every analyzed
//     type that implements the interface;
//   - calls through func values (including method values and closures
//     passed around as values) conservatively, to every function or
//     closure whose value is taken anywhere in the analyzed packages and
//     whose signature matches the call site.
//
// Closures (func literals) are graph nodes of their own, attributed to
// their lexically enclosing declaration for naming; a closure's body is
// reachable when the closure is called where it is written, or when any
// reachable indirect call matches its signature (it was scheduled,
// stored, or passed — the engine's event queue is exactly this case).
type CallGraph struct {
	fset  *token.FileSet
	nodes map[graphKey]*graphNode
	// takenBySig groups value-taken functions for indirect-call
	// resolution; the slice order is the deterministic build order.
	taken []*graphNode
	roots []*graphNode
}

// graphKey identifies a node: a declared function by its types.Func
// object, a closure by its literal.
type graphKey struct {
	obj *types.Func
	lit *ast.FuncLit
}

// graphNode is one function (declaration or closure) in the graph.
type graphNode struct {
	key  graphKey
	pkg  *Package
	name string // canonical site name, e.g. "swex/internal/proto.(*HomeCtl).swRead"
	body *ast.BlockStmt
	// outgoing edges, resolved during the reachability walk
	static []graphKey
	iface  []ifaceCall
	indir  []*types.Signature
	taken  bool
	hot    bool
}

// ifaceCall records a dynamic dispatch through an interface method.
type ifaceCall struct {
	iface *types.Interface
	name  string
}

// BuildCallGraph constructs the whole-program graph over pkgs and marks
// the functions reachable from the //swex:hotpath roots. Packages without
// full type information still contribute their syntactic calls; an
// unresolvable callee simply grows no edge, which errs on the cold side
// and is why core packages are required to type-check cleanly (the
// self-scan test asserts they do).
func BuildCallGraph(cfg *Config, pkgs []*Package) *CallGraph {
	g := &CallGraph{fset: pkgFset(pkgs), nodes: make(map[graphKey]*graphNode)}
	for _, p := range pkgs {
		g.collectPackage(p)
	}
	g.resolveInterfaces(pkgs)
	g.propagate()
	return g
}

func pkgFset(pkgs []*Package) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset
	}
	return token.NewFileSet()
}

// collectPackage creates the nodes and raw edges for one package.
func (g *CallGraph) collectPackage(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := g.node(graphKey{obj: obj}, p, declName(p, fd, obj), fd.Body)
			if hasHotMarker(p, fd) {
				g.roots = append(g.roots, n)
			}
			g.scanBody(p, n, fd.Body)
		}
	}
}

// node returns (creating if needed) the graph node for key. A node first
// seen as a value-taken placeholder (no body: its declaration had not
// been scanned yet) is completed in place when the declaration arrives.
func (g *CallGraph) node(key graphKey, p *Package, name string, body *ast.BlockStmt) *graphNode {
	if n, ok := g.nodes[key]; ok {
		if n.body == nil && body != nil {
			n.pkg, n.name, n.body = p, name, body
		}
		return n
	}
	n := &graphNode{key: key, pkg: p, name: name, body: body}
	g.nodes[key] = n
	return n
}

// scanBody records the calls, value-taken functions, and nested closures
// of one function body. Nested closure bodies are scanned as nodes of
// their own; their statements are skipped here.
func (g *CallGraph) scanBody(p *Package, n *graphNode, body *ast.BlockStmt) {
	// Call positions: expressions appearing as the Fun of a CallExpr are
	// direct uses, not value escapes.
	callPos := make(map[ast.Expr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			callPos[call.Fun] = true
		}
		return true
	})
	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := g.node(graphKey{lit: x}, p, n.name, x.Body)
			// A literal written in call position runs exactly where it
			// stands; anywhere else its value escapes and it becomes a
			// candidate for every matching indirect call.
			if callPos[x] {
				n.static = append(n.static, child.key)
			} else {
				child.taken = true
				g.taken = append(g.taken, child)
			}
			g.scanBody(p, child, x.Body)
			return false
		case *ast.CallExpr:
			g.recordCall(p, n, x)
			return true
		case *ast.Ident:
			if !callPos[ast.Expr(x)] {
				if fn, ok := p.Info.Uses[x].(*types.Func); ok {
					g.markTaken(fn)
				}
			}
		case *ast.SelectorExpr:
			if !callPos[ast.Expr(x)] {
				if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
					if fn, ok := sel.Obj().(*types.Func); ok {
						g.markTaken(fn)
					}
				} else if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
					g.markTaken(fn)
				}
			}
			// Walk the receiver expression but not the selected name.
			ast.Inspect(x.X, walk)
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}

// markTaken flags a declared function whose value escapes. The node may
// not exist yet (the declaration lives in a package scanned later, or in
// a dependency outside the analysis set); a placeholder without a body
// still participates in signature matching soundly — it has no edges.
func (g *CallGraph) markTaken(fn *types.Func) {
	n := g.node(graphKey{obj: fn}, nil, funcName(fn), nil)
	if !n.taken {
		n.taken = true
		g.taken = append(g.taken, n)
	}
}

// recordCall classifies one call expression into an edge.
func (g *CallGraph) recordCall(p *Package, n *graphNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Type conversions and builtins grow no call edge.
	if tv, ok := p.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Func:
			n.static = append(n.static, graphKey{obj: obj})
			return
		case *types.Builtin, nil:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				recv := sel.Recv()
				if it, ok := recv.Underlying().(*types.Interface); ok {
					n.iface = append(n.iface, ifaceCall{iface: it, name: fn.Name()})
					return
				}
				n.static = append(n.static, graphKey{obj: fn})
				return
			}
		}
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			// Package-qualified function call.
			n.static = append(n.static, graphKey{obj: fn})
			return
		}
	case *ast.FuncLit:
		// Edge added by the FuncLit case of scanBody via callPos.
		return
	}
	// Anything else is an indirect call through a func value.
	if tv, ok := p.Info.Types[fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			n.indir = append(n.indir, sig)
		}
	}
}

// resolveInterfaces expands every interface call into static edges to the
// same-named method of each analyzed type implementing the interface —
// the CHA step. Only named types declared in the analyzed packages are
// considered implementations; the simulator links against nothing else.
func (g *CallGraph) resolveInterfaces(pkgs []*Package) {
	var named []*types.Named
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok {
				named = append(named, nt)
			}
		}
	}
	for _, n := range g.nodes {
		for _, ic := range n.iface {
			for _, nt := range named {
				var recv types.Type
				switch {
				case types.Implements(nt, ic.iface):
					recv = nt
				case types.Implements(types.NewPointer(nt), ic.iface):
					recv = types.NewPointer(nt)
				default:
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, nt.Obj().Pkg(), ic.name)
				if fn, ok := obj.(*types.Func); ok {
					n.static = append(n.static, graphKey{obj: fn})
				}
			}
		}
	}
}

// propagate runs the worklist from the roots: static edges first, and
// indirect calls against the signature-matched taken set.
func (g *CallGraph) propagate() {
	var work []*graphNode
	push := func(n *graphNode) {
		if n != nil && !n.hot {
			n.hot = true
			work = append(work, n)
		}
	}
	for _, r := range g.roots {
		push(r)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, k := range n.static {
			push(g.nodes[k])
		}
		for _, sig := range n.indir {
			for _, cand := range g.taken {
				if matchesSignature(cand, sig) {
					push(cand)
				}
			}
		}
	}
}

// matchesSignature reports whether a taken function could be the target
// of an indirect call with the given signature. A method taken as a
// method value loses its receiver, so receivers are ignored.
func matchesSignature(n *graphNode, sig *types.Signature) bool {
	var cand *types.Signature
	switch {
	case n.key.obj != nil:
		cand, _ = n.key.obj.Type().(*types.Signature)
	case n.key.lit != nil && n.pkg != nil:
		if tv, ok := n.pkg.Info.Types[ast.Expr(n.key.lit)]; ok {
			cand, _ = tv.Type.(*types.Signature)
		}
	}
	if cand == nil {
		return false
	}
	return types.Identical(types.NewSignatureType(nil, nil, nil, cand.Params(), cand.Results(), cand.Variadic()),
		types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic()))
}

// HotFunctions returns the canonical names of the reachable declared
// functions in sorted order (closures report under their enclosing
// declaration and are omitted here). Tests assert against it.
func (g *CallGraph) HotFunctions() []string {
	seen := make(map[string]bool)
	for _, n := range g.nodes {
		if n.hot && n.key.obj != nil {
			seen[n.name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for nm := range seen {
		names = append(names, nm)
	}
	sort.Strings(names)
	return names
}

// Roots returns the canonical names of the annotated root functions in
// sorted order.
func (g *CallGraph) Roots() []string {
	names := make([]string, 0, len(g.roots))
	for _, r := range g.roots {
		names = append(names, r.name)
	}
	sort.Strings(names)
	return names
}

// hotDeclBodies returns, per package, the hot function bodies to scan for
// allocation sites: reachable declarations and reachable closures, each
// with its canonical (enclosing-declaration) site name.
type hotBody struct {
	pkg  *Package
	name string
	body *ast.BlockStmt
}

func (g *CallGraph) hotBodies() []hotBody {
	var out []hotBody
	for _, n := range g.nodes {
		if n.hot && n.body != nil && n.pkg != nil {
			out = append(out, hotBody{pkg: n.pkg, name: n.name, body: n.body})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := g.fset.Position(out[i].body.Pos()), g.fset.Position(out[j].body.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}

// isHotLit reports whether a closure node for lit exists and is hot.
func (g *CallGraph) isHotLit(lit *ast.FuncLit) bool {
	n, ok := g.nodes[graphKey{lit: lit}]
	return ok && n.hot
}

// hasHotMarker reports whether the declaration carries the
// //swex:hotpath annotation in its doc comment or on the line above.
func hasHotMarker(p *Package, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), HotPathMarker) {
				return true
			}
		}
	}
	return false
}

// declName builds the canonical site name for a declaration:
// "pkgpath.Func" or "pkgpath.(*Recv).Method".
func declName(p *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if fd.Recv == nil {
		return p.Path + "." + fd.Name.Name
	}
	recv := receiverBase(fd.Recv)
	if recv == "" {
		return p.Path + "." + fd.Name.Name
	}
	star := ""
	if len(fd.Recv.List) == 1 {
		if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); ok {
			star = "*"
		}
	}
	return p.Path + ".(" + star + recv + ")." + fd.Name.Name
}

// funcName renders a canonical name for a types.Func without syntax at
// hand (used for taken placeholders from other packages).
func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
			star = "*"
		}
		if nt, ok := t.(*types.Named); ok {
			return pkgPath + ".(" + star + nt.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkgPath + "." + fn.Name()
}
