package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed ratchet of known hot-path allocation sites
// (lint-baseline.json at the module root). Each key is
// "<pkg>.<func>/<kind>" — position-free, so unrelated edits do not churn
// the file — and the value is how many sites of that kind the function is
// allowed to contain. The ratchet moves one way: swexlint fails when a
// key's live count exceeds its baselined count, and the staleness check
// (Diff) fails when the baseline records sites that no longer exist,
// forcing a -write-baseline that can only shrink the committed totals.
type Baseline struct {
	// Sites maps ratchet key to the allowed number of allocation sites.
	Sites map[string]int `json:"sites"`
}

// BaselineFile is the canonical name of the committed ratchet file,
// relative to the module root.
const BaselineFile = "lint-baseline.json"

// ComputeBaseline scans the module and returns the baseline that exactly
// matches the current hot-path allocation sites.
func ComputeBaseline(cfg *Config, pkgs []*Package) *Baseline {
	b := &Baseline{Sites: make(map[string]int)}
	for _, s := range HotAllocSites(cfg, pkgs) {
		b.Sites[s.Key]++
	}
	return b
}

// Total returns the number of baselined allocation sites across all keys.
func (b *Baseline) Total() int {
	n := 0
	for _, c := range b.Sites {
		n += c
	}
	return n
}

// LoadBaseline reads a baseline file. A missing file is not an error: it
// returns (nil, nil) so callers can distinguish "no ratchet configured"
// from a malformed one.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
	}
	if b.Sites == nil {
		b.Sites = make(map[string]int)
	}
	return &b, nil
}

// WriteFile writes the baseline as deterministic, human-diffable JSON:
// keys sorted, one site per line, trailing newline.
func (b *Baseline) WriteFile(path string) error {
	return os.WriteFile(path, b.MarshalIndent(), 0o644)
}

// MarshalIndent renders the baseline with sorted keys, one per line.
func (b *Baseline) MarshalIndent() []byte {
	keys := make([]string, 0, len(b.Sites))
	for k := range b.Sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := []byte("{\n  \"sites\": {\n")
	for i, k := range keys {
		sep := ","
		if i == len(keys)-1 {
			sep = ""
		}
		kb, _ := json.Marshal(k)
		out = append(out, fmt.Sprintf("    %s: %d%s\n", kb, b.Sites[k], sep)...)
	}
	out = append(out, "  }\n}\n"...)
	return out
}

// Diff compares this (committed) baseline against the current scan and
// returns human-readable regressions and staleness findings. Regressions
// are keys whose live count exceeds the allowance; stale entries are keys
// whose live count dropped below (or vanished from) the allowance and
// must be re-ratcheted down with -write-baseline so improvements lock in.
func (b *Baseline) Diff(current *Baseline) (regressions, stale []string) {
	keys := make(map[string]bool)
	for k := range b.Sites {
		keys[k] = true
	}
	for k := range current.Sites {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		was, now := b.Sites[k], current.Sites[k]
		switch {
		case now > was:
			regressions = append(regressions, fmt.Sprintf("%s: baseline %d, found %d", k, was, now))
		case now < was:
			stale = append(stale, fmt.Sprintf("%s: baseline %d, found %d", k, was, now))
		}
	}
	return regressions, stale
}
