package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveEnum checks that every switch over a typed-const enum — a
// named integer type with package-level constants, like proto.MsgKind,
// proto.AckMode, dir.State, or cache.LineState — either covers every
// declared constant or carries an explicit default clause that panics.
//
// The protocol engines are state machines over these enums; a switch that
// silently falls through on an unlisted state is exactly the kind of bug
// that corrupts a directory entry without tripping the coherence checker
// until thousands of cycles later. Forcing the choice — enumerate, or
// panic loudly — keeps every transition accounted for.
//
// Sentinel constants whose names begin with "num", "max", or "count"
// (numMsgKinds, NumActivities, ...) bound the enum rather than belong to
// it and are ignored.
type ExhaustiveEnum struct{}

// Name implements Analyzer.
func (ExhaustiveEnum) Name() string { return "exhaustive-enum" }

// Check implements Analyzer.
func (ExhaustiveEnum) Check(cfg *Config, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			enum := enumTypeOf(cfg, pkg, sw.Tag)
			if enum == nil {
				return true
			}
			members := enumMembers(enum)
			if len(members) < 2 {
				return true
			}
			covered := make(map[int64]bool)
			verifiable := true
			hasDefault := false
			defaultPanics := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					defaultPanics = containsPanic(cc.Body)
					continue
				}
				for _, e := range cc.List {
					tv, ok := pkg.Info.Types[e]
					if !ok || tv.Value == nil {
						// Non-constant case expression: the value set
						// cannot be decided statically.
						verifiable = false
						continue
					}
					if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
						covered[v] = true
					}
				}
			}
			if !verifiable {
				return true
			}
			var missing []string
			for _, m := range members {
				if !covered[m.value] {
					missing = append(missing, m.name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			if hasDefault && defaultPanics {
				return true
			}
			sort.Strings(missing)
			why := "and has no default clause"
			if hasDefault {
				why = "and its default clause does not panic"
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(sw.Pos()),
				Analyzer: "exhaustive-enum",
				Message: fmt.Sprintf("switch over %s misses %s %s; cover every constant or panic in default",
					enum.Obj().Name(), strings.Join(missing, ", "), why),
			})
			return true
		})
	}
	return diags
}

// enumTypeOf returns the named enum type of a switch tag, or nil when the
// tag is not a module-declared integer enum.
func enumTypeOf(cfg *Config, pkg *Package, tag ast.Expr) *types.Named {
	t := exprType(pkg, tag)
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !cfg.IsEnumModule(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 || basic.Info()&types.IsBoolean != 0 {
		return nil
	}
	return named
}

type enumMember struct {
	name  string
	value int64
}

// enumMembers lists the non-sentinel constants of the enum's declaring
// package, in value order.
func enumMembers(enum *types.Named) []enumMember {
	scope := enum.Obj().Pkg().Scope()
	var out []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), enum) || isSentinelName(name) {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
			out = append(out, enumMember{name: name, value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// isSentinelName matches bound markers like numMsgKinds or NumActivities.
func isSentinelName(name string) bool {
	lower := strings.ToLower(name)
	return name == "_" ||
		strings.HasPrefix(lower, "num") ||
		strings.HasPrefix(lower, "max") ||
		strings.HasPrefix(lower, "count")
}

// containsPanic reports whether the statements call panic anywhere.
func containsPanic(stmts []ast.Stmt) bool {
	found := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
					return false
				}
			}
			return !found
		})
	}
	return found
}
