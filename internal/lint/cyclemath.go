package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CycleMath keeps floating point out of cycle and latency accounting. The
// engine's reproducibility contract is stated in integer cycles; a float
// smuggled into an accumulation (a "1.5x slowdown factor", a rounded
// average fed back into a schedule) introduces platform- and
// ordering-sensitive rounding that breaks bit-for-bit reproducibility.
//
// Within the core packages it forbids:
//
//   - converting a floating-point value to the cycle type
//     (sim.Cycle(f * 1.5));
//   - converting a cycle value to float32/float64 inside a function that
//     does not itself return a float. Reporting helpers that produce
//     utilization ratios or seconds (mesh.TxUtilization, Cycle.Seconds)
//     return floats and are exempt; everything else is accounting and
//     must stay integral.
//
// The statistics and report packages are exempt wholesale: presentation
// math is their job.
type CycleMath struct{}

// Name implements Analyzer.
func (CycleMath) Name() string { return "cycle-math" }

// Check implements Analyzer.
func (CycleMath) Check(cfg *Config, pkg *Package) []Diagnostic {
	if !cfg.IsCore(pkg.Path) || cfg.IsFloatExempt(pkg.Path) {
		return nil
	}
	c := &cycleMathCheck{cfg: cfg, pkg: pkg}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.walk(fd.Body, c.declReturnsFloat(fd))
		}
	}
	return c.diags
}

type cycleMathCheck struct {
	cfg   *Config
	pkg   *Package
	diags []Diagnostic
}

// walk inspects one function body. floatOK marks reporting functions (a
// float in the result list), whose cycle-to-float conversions are
// legitimate. Nested function literals carry their own signatures.
func (c *cycleMathCheck) walk(body ast.Node, floatOK bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walk(n.Body, c.litReturnsFloat(n) || floatOK)
			return false
		case *ast.CallExpr:
			c.checkConversion(n, floatOK)
		}
		return true
	})
}

// checkConversion flags float->cycle always, and cycle->float outside
// reporting functions.
func (c *cycleMathCheck) checkConversion(call *ast.CallExpr, floatOK bool) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := c.pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	target := tv.Type
	argType := exprType(c.pkg, call.Args[0])
	if argType == nil {
		return
	}
	switch {
	case c.isCycle(target) && isFloat(argType):
		c.report(call, "floating-point value converted to %s: cycle accounting must stay integral", c.cfg.CycleType)
	case isFloat(target) && c.isCycle(argType) && !floatOK:
		c.report(call, "cycle value converted to %s inside a function that does not return a float: latency accounting must stay integral (reporting helpers that return floats are exempt)", types.ExprString(call.Fun))
	}
}

func (c *cycleMathCheck) report(n ast.Node, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos:      c.pkg.Fset.Position(n.Pos()),
		Analyzer: "cycle-math",
		Message:  fmt.Sprintf(format, args...),
	})
}

// isCycle reports whether t is the configured cycle type.
func (c *cycleMathCheck) isCycle(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path()+"."+obj.Name() == c.cfg.CycleType
}

func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// declReturnsFloat reports whether the function declaration's result list
// contains a floating-point type.
func (c *cycleMathCheck) declReturnsFloat(fd *ast.FuncDecl) bool {
	obj, ok := c.pkg.Info.Defs[fd.Name]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return signatureReturnsFloat(fn.Type().(*types.Signature))
}

func (c *cycleMathCheck) litReturnsFloat(lit *ast.FuncLit) bool {
	t := exprType(c.pkg, lit)
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return ok && signatureReturnsFloat(sig)
}

func signatureReturnsFloat(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if isFloat(t) || strings.Contains(t.String(), "float64") {
			return true
		}
	}
	return false
}
