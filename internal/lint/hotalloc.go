package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc is the whole-program allocation analyzer: it builds the
// //swex:hotpath call graph over every analyzed package and reports each
// allocation site inside a hot-reachable function of the packages listed
// in Config.HotReportPaths. Detected site kinds:
//
//   - "new":     the new builtin
//   - "make":    the make builtin (slices, maps)
//   - "chan":    channel construction, sends, and receives
//   - "lit":     slice and map composite literals, and &T{...}
//   - "append":  append (growth allocates; a hot loop must preallocate)
//   - "box":     a non-pointer concrete value converted to an interface
//     (the hidden allocation behind tag any parameters)
//   - "closure": a func literal capturing variables, or a bound method
//     value (both materialize a closure object)
//   - "str":     string concatenation
//   - "fmt":     calls into package fmt (formatting allocates freely)
//
// Sites are keyed by package, enclosing declared function, and kind —
// never by line — so unrelated edits do not churn the committed baseline
// (lint-baseline.json). With Config.Baseline set, only sites exceeding
// the baselined count for their key are reported: the ratchet that keeps
// future changes from silently re-growing hot-path garbage.
type HotAlloc struct{}

// Name implements Analyzer.
func (HotAlloc) Name() string { return "hotalloc" }

// Check implements Analyzer. HotAlloc is whole-program; the per-package
// entry point reports nothing (Run drives CheckModule instead).
func (HotAlloc) Check(cfg *Config, pkg *Package) []Diagnostic { return nil }

// CheckModule implements ModuleAnalyzer: report hot-path allocation
// sites, filtered through the baseline ratchet when one is configured.
func (HotAlloc) CheckModule(cfg *Config, pkgs []*Package) []Diagnostic {
	sites := HotAllocSites(cfg, pkgs)
	var diags []Diagnostic
	if cfg.Baseline == nil {
		for _, s := range sites {
			diags = append(diags, s.diagnostic(0, 0))
		}
		return diags
	}
	byKey := make(map[string][]AllocSite)
	for _, s := range sites {
		byKey[s.Key] = append(byKey[s.Key], s)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ss := byKey[k]
		allowed := cfg.Baseline.Sites[k]
		if len(ss) <= allowed {
			continue
		}
		// Every site of an over-budget key is reported: the analyzer
		// cannot know which of them is the new one.
		for _, s := range ss {
			diags = append(diags, s.diagnostic(allowed, len(ss)))
		}
	}
	return diags
}

// AllocSite is one allocation inside a hot-reachable function.
type AllocSite struct {
	// Pos is the source position of the allocating expression.
	Pos token.Position
	// Key is the ratchet key: "<pkg>.<func>/<kind>".
	Key string
	// Kind is the site category ("make", "box", "closure", ...).
	Kind string
	// Fn is the canonical enclosing declared function.
	Fn string
	// Detail describes the specific allocation for the diagnostic.
	Detail string
}

// diagnostic renders the site as a rule violation.
func (s AllocSite) diagnostic(allowed, found int) Diagnostic {
	msg := fmt.Sprintf("hot-path allocation: %s [key %s]", s.Detail, s.Key)
	if found > 0 {
		msg = fmt.Sprintf("hot-path allocation: %s [key %s: baseline %d, found %d]",
			s.Detail, s.Key, allowed, found)
	}
	return Diagnostic{Pos: s.Pos, Analyzer: "hotalloc", Message: msg}
}

// HotAllocSites builds the call graph and returns every allocation site
// in hot-reachable code of the HotReportPaths packages, in position
// order. It ignores the baseline; ComputeBaseline and the ratchet both
// build on it.
func HotAllocSites(cfg *Config, pkgs []*Package) []AllocSite {
	g := BuildCallGraph(cfg, pkgs)
	var sites []AllocSite
	for _, hb := range g.hotBodies() {
		if hb.pkg == nil || !matchAny(cfg.HotReportPaths, hb.pkg.Path) {
			continue
		}
		sites = append(sites, scanAllocs(g, hb)...)
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return sites
}

// scanAllocs finds the allocation sites of one hot function body. Nested
// closures are separate graph nodes with their own hotBody entries, so
// their statements are skipped here — except the *creation* of a closure,
// which is an allocation at the point the literal appears.
func scanAllocs(g *CallGraph, hb hotBody) []AllocSite {
	p := hb.pkg
	var sites []AllocSite
	add := func(n ast.Node, kind, detail string) {
		sites = append(sites, AllocSite{
			Pos:    p.Fset.Position(n.Pos()),
			Key:    hb.name + "/" + kind,
			Kind:   kind,
			Fn:     hb.name,
			Detail: detail,
		})
	}
	callPos := make(map[ast.Expr]bool)
	ast.Inspect(hb.body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			callPos[call.Fun] = true
		}
		return true
	})
	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if caps := captures(p, x); len(caps) > 0 {
				add(x, "closure", "func literal capturing "+strings.Join(caps, ", "))
			}
			return false // the body is its own hotBody
		case *ast.CallExpr:
			scanCall(p, x, add)
		case *ast.SelectorExpr:
			if !callPos[ast.Expr(x)] {
				if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
					add(x, "closure", "bound method value "+types.ExprString(x))
				}
			}
			ast.Inspect(x.X, walk)
			return false
		case *ast.UnaryExpr:
			switch x.Op {
			case token.AND:
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x, "lit", "heap-escaping composite literal &"+typeLabel(p, lit))
					// The literal's elements may still box or allocate.
					for _, e := range lit.Elts {
						ast.Inspect(e, walk)
					}
					scanBoxedElems(p, lit, add)
					return false
				}
			case token.ARROW:
				add(x, "chan", "channel receive")
			}
		case *ast.SendStmt:
			add(x, "chan", "channel send")
		case *ast.CompositeLit:
			if t := exprType(p, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(x, "lit", "slice literal "+typeLabel(p, x))
				case *types.Map:
					add(x, "lit", "map literal "+typeLabel(p, x))
				}
			}
			scanBoxedElems(p, x, add)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(p, x) && !isConstExpr(p, x) {
				add(x, "str", "string concatenation")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(p, x.Lhs[0]) {
				add(x, "str", "string concatenation (+=)")
			}
			scanAssignBoxing(p, x, add)
		case *ast.ReturnStmt:
			// Handled via scanReturnBoxing at the body level below.
		}
		return true
	}
	ast.Inspect(hb.body, walk)
	scanReturnBoxing(g, hb, add)
	return sites
}

// scanCall classifies one call: builtins that allocate, fmt formatting,
// explicit interface conversions, and implicit boxing at interface-typed
// parameters.
func scanCall(p *Package, call *ast.CallExpr, add func(ast.Node, string, string)) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		// Conversion T(x): boxing when T is an interface and x concrete.
		if isInterfaceType(tv.Type) && len(call.Args) == 1 && boxes(p, call.Args[0]) {
			add(call, "box", "interface conversion "+types.ExprString(fun)+"(...) boxes "+argTypeLabel(p, call.Args[0]))
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok && isBuiltin(p, id) {
		switch id.Name {
		case "new":
			add(call, "new", "new("+types.ExprString(call.Args[0])+")")
		case "make":
			if len(call.Args) >= 1 {
				if t := exprType(p, call.Args[0]); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						add(call, "chan", "channel construction")
						return
					}
				}
				add(call, "make", "make("+types.ExprString(call.Args[0])+", ...)")
			}
		case "append":
			add(call, "append", "append (growth reallocates)")
		}
		return
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if pkgName, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[pkgName].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				add(call, "fmt", "fmt."+sel.Sel.Name+" call")
				return // formatting subsumes the boxing of its arguments
			}
		}
	}
	// Implicit boxing at interface-typed parameters of the callee.
	sig := calleeSignature(p, fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through; no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && isInterfaceType(pt) && boxes(p, arg) {
			add(arg, "box", "argument boxes "+argTypeLabel(p, arg)+" into "+pt.String())
		}
	}
}

// scanAssignBoxing reports concrete values assigned into interface-typed
// locations.
func scanAssignBoxing(p *Package, as *ast.AssignStmt, add func(ast.Node, string, string)) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := exprType(p, as.Lhs[i])
		if lt != nil && isInterfaceType(lt) && boxes(p, as.Rhs[i]) {
			add(as.Rhs[i], "box", "assignment boxes "+argTypeLabel(p, as.Rhs[i])+" into "+lt.String())
		}
	}
}

// scanBoxedElems reports composite-literal elements boxed into
// interface-typed fields, elements, or map values.
func scanBoxedElems(p *Package, lit *ast.CompositeLit, add func(ast.Node, string, string)) {
	t := exprType(p, lit)
	if t == nil {
		return
	}
	elemTypeFor := func(e ast.Expr, idx int) (types.Type, ast.Expr) {
		switch u := t.Underlying().(type) {
		case *types.Struct:
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for f := 0; f < u.NumFields(); f++ {
						if u.Field(f).Name() == id.Name {
							return u.Field(f).Type(), kv.Value
						}
					}
				}
				return nil, kv.Value
			}
			if idx < u.NumFields() {
				return u.Field(idx).Type(), e
			}
		case *types.Slice:
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				return u.Elem(), kv.Value
			}
			return u.Elem(), e
		case *types.Array:
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				return u.Elem(), kv.Value
			}
			return u.Elem(), e
		case *types.Map:
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				return u.Elem(), kv.Value
			}
		}
		return nil, e
	}
	for i, e := range lit.Elts {
		ft, val := elemTypeFor(e, i)
		if ft != nil && isInterfaceType(ft) && boxes(p, val) {
			add(val, "box", "composite element boxes "+argTypeLabel(p, val)+" into "+ft.String())
		}
	}
}

// scanReturnBoxing reports concrete values returned through interface
// results. It needs the enclosing function's signature, so it runs per
// hot body rather than inside the generic walk.
func scanReturnBoxing(g *CallGraph, hb hotBody, add func(ast.Node, string, string)) {
	p := hb.pkg
	var results *types.Tuple
	for key, n := range g.nodes {
		if n.body != hb.body {
			continue
		}
		switch {
		case key.obj != nil:
			results = key.obj.Type().(*types.Signature).Results()
		case key.lit != nil:
			if tv, ok := p.Info.Types[ast.Expr(key.lit)]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					results = sig.Results()
				}
			}
		}
		break
	}
	if results == nil || results.Len() == 0 {
		return
	}
	ast.Inspect(hb.body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != results.Len() {
			return true
		}
		for i, r := range ret.Results {
			rt := results.At(i).Type()
			if isInterfaceType(rt) && boxes(p, r) {
				add(r, "box", "return boxes "+argTypeLabel(p, r)+" into "+rt.String())
			}
		}
		return true
	})
}

// boxes reports whether converting the expression's value to an
// interface allocates: the static type is concrete (not already an
// interface) and not pointer-shaped (pointers, channels, maps, and funcs
// fit the interface word directly). Untyped nil never boxes.
func boxes(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UntypedNil || b.Kind() == types.Invalid {
			return false
		}
	case nil:
		return false
	}
	return true
}

// calleeSignature resolves the static signature of a call target, when
// one is known.
func calleeSignature(p *Package, fun ast.Expr) *types.Signature {
	if tv, ok := p.Info.Types[fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// captures lists the variables a func literal closes over, in first-use
// order: the names that make the literal a heap-allocated closure rather
// than a static function value.
func captures(p *Package, lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured variables are declared outside the literal but inside
		// some enclosing function (package-level variables are not
		// captured; they are direct references).
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

// isInterfaceType reports whether t's underlying type is an interface.
func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isStringExpr reports whether the expression has string type.
func isStringExpr(p *Package, e ast.Expr) bool {
	t := exprType(p, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression folds to a constant (the
// compiler concatenates constant strings at compile time).
func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// typeLabel renders a composite literal's type for a diagnostic.
func typeLabel(p *Package, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type)
	}
	if t := exprType(p, lit); t != nil {
		return t.String()
	}
	return "composite"
}

// argTypeLabel renders an expression's static type for a diagnostic.
func argTypeLabel(p *Package, e ast.Expr) string {
	if t := exprType(p, e); t != nil {
		return t.String()
	}
	return "value"
}
