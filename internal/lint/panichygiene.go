package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"strings"
)

// PanicHygiene governs how the simulation core is allowed to fail. Panics
// are reserved for checker/invariant paths — a coherence violation, a
// protocol message no state expects, a construction-time configuration
// error — where the deterministic engine guarantees the panic point is
// exactly reproducible. For that guarantee to be useful, the message must
// be diagnosable from the report alone:
//
//   - the argument must be a constant string, or fmt.Sprintf with a
//     constant format (no panic(err), no panic(v): a value with no
//     context cannot be traced to its invariant);
//   - the constant text must begin with the package name and a colon
//     ("proto: ", "sim: "), so a panic deep in a 10^8-cycle run names its
//     subsystem immediately;
//   - recover is forbidden in the core outright: swallowing an invariant
//     violation converts a reproducible panic point into silent state
//     corruption.
type PanicHygiene struct{}

// Name implements Analyzer.
func (PanicHygiene) Name() string { return "panic-hygiene" }

// Check implements Analyzer.
func (PanicHygiene) Check(cfg *Config, pkg *Package) []Diagnostic {
	if !cfg.IsCore(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "panic-hygiene",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	prefix := pkg.Types.Name() + ": "
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !isBuiltin(pkg, id) {
				return true
			}
			switch id.Name {
			case "recover":
				diag(call, "recover in the simulation core: swallowing an invariant violation turns a reproducible panic point into silent corruption")
			case "panic":
				if len(call.Args) != 1 {
					return true
				}
				msg, isConst := panicMessage(pkg, call.Args[0])
				switch {
				case !isConst:
					diag(call, "panic argument must be a constant string or fmt.Sprintf with a constant format, so the invariant is diagnosable from the message")
				case !strings.HasPrefix(msg, prefix):
					diag(call, "panic message must start with %q to name the failing subsystem", prefix)
				}
			}
			return true
		})
	}
	return diags
}

// panicMessage extracts the constant text of a panic argument: the string
// itself, or the format string of a fmt.Sprintf call.
func panicMessage(pkg *Package, arg ast.Expr) (msg string, isConst bool) {
	if s, ok := constString(pkg, arg); ok {
		return s, true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || recv.Name != "fmt" || sel.Sel.Name != "Sprintf" {
		return "", false
	}
	return constString(pkg, call.Args[0])
}

// constString resolves an expression to a compile-time string value.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
