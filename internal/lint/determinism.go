package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Determinism enforces the simulation core's reproducibility contract: the
// cycle-by-cycle results in the paper (and the coherence checker's
// reproducible panic point) hold only if no code path depends on
// wall-clock time, unseeded randomness, Go map iteration order, or
// scheduler-dependent goroutine interleavings.
//
// Within the configured core packages it forbids:
//
//   - importing time or math/rand (use sim.Cycle and the explicitly
//     seeded sim.Rand instead);
//   - go statements, select statements, channel sends, receives, closes,
//     and channel construction (the lockstep coroutine handoff in
//     internal/proc is the one sanctioned exception, documented with
//     //lint:allow comments);
//   - ranging over a map, unless the loop only collects the keys into a
//     slice that is sorted by the immediately following statement (the
//     canonical deterministic-iteration idiom, as in dir.Directory.ForEach).
type Determinism struct{}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// forbiddenImports maps import paths to the reason they break determinism.
var forbiddenImports = map[string]string{
	"time":         "wall-clock time is nondeterministic across runs; simulated time is sim.Cycle",
	"math/rand":    "global random state is unseeded and shared; use sim.Rand with an explicit seed",
	"math/rand/v2": "global random state is unseeded and shared; use sim.Rand with an explicit seed",
}

// Check implements Analyzer.
func (Determinism) Check(cfg *Config, pkg *Package) []Diagnostic {
	if !cfg.IsCore(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "determinism",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	sanctioned := sortedCollectRanges(pkg)

	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if reason, bad := forbiddenImports[path]; bad {
				diag(imp, "import of %s in the simulation core: %s", path, reason)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				diag(n, "goroutine launch in the simulation core: scheduler interleavings are nondeterministic")
			case *ast.SelectStmt:
				diag(n, "select in the simulation core: ready-case choice is nondeterministic")
			case *ast.SendStmt:
				diag(n, "channel send in the simulation core")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					diag(n, "channel receive in the simulation core")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && isBuiltin(pkg, id) {
					switch {
					case id.Name == "close" && len(n.Args) == 1:
						diag(n, "channel close in the simulation core")
					case id.Name == "make" && len(n.Args) >= 1:
						if _, isChan := n.Args[0].(*ast.ChanType); isChan {
							diag(n, "channel construction in the simulation core")
						}
					}
				}
			case *ast.RangeStmt:
				t := exprType(pkg, n.X)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Map:
					if !sanctioned[n] {
						diag(n, "range over map %s: iteration order is nondeterministic (collect the keys and sort them, as dir.Directory.ForEach does)", types.ExprString(n.X))
					}
				case *types.Chan:
					diag(n, "range over channel in the simulation core")
				}
			}
			return true
		})
	}
	return diags
}

// sortedCollectRanges finds map-range statements that follow the
// deterministic-iteration idiom: the loop body only appends to one slice,
// and the statement immediately after the loop sorts that slice.
func sortedCollectRanges(pkg *Package) map[*ast.RangeStmt]bool {
	out := make(map[*ast.RangeStmt]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || i+1 >= len(list) {
					continue
				}
				if slice := collectTarget(rs.Body); slice != "" && isSortOf(list[i+1], slice) {
					out[rs] = true
				}
			}
			return true
		})
	}
	return out
}

// collectTarget returns the name of the slice a loop body appends to, if
// every statement in the body is `s = append(s, ...)` for the same s.
func collectTarget(body *ast.BlockStmt) string {
	if body == nil || len(body.List) == 0 {
		return ""
	}
	target := ""
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return ""
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return ""
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return ""
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return ""
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return ""
		}
		if target == "" {
			target = lhs.Name
		} else if target != lhs.Name {
			return ""
		}
	}
	return target
}

// sortFuncs are the sort entry points the idiom recognizer accepts.
var sortFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Ints": true, "sort.Strings": true,
	"sort.Float64s": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.SortStableFunc": true,
}

// isSortOf reports whether stmt sorts the named slice.
func isSortOf(stmt ast.Stmt, slice string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || !sortFuncs[recv.Name+"."+sel.Sel.Name] {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == slice
}

// ------------------------------------------------------------- shared bits

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	return p
}

func exprType(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isBuiltin reports whether the identifier resolves to a Go builtin (or
// type information is missing, in which case the name is trusted).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return true
	}
	_, builtin := obj.(*types.Builtin)
	return builtin
}
