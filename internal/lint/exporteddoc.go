package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// ExportedDoc enforces the documentation bar on the packages listed in
// Config.DocPaths: every exported identifier — package-level types,
// functions, constants, variables, methods on exported types, exported
// struct fields, and interface methods — must carry a doc comment, and
// the package itself must have a package overview (conventionally in a
// doc.go). The audited packages are the ones whose exported surface
// embodies a determinism contract (the model checker, the sweep
// orchestrator, the tracer): their doc comments are where the contract
// is stated, so an undocumented export is a contract hole, not a style
// nit.
//
// The comment must mention the identifier it documents (the godoc
// convention, "Foo does ..."), which keeps copy-pasted or drifted
// comments from satisfying the rule. Only doc comments — the block above
// the declaration — count; godoc's trailing same-line style is rejected,
// because a one-line margin note has no room to state a contract.
type ExportedDoc struct{}

// Name implements Analyzer.
func (ExportedDoc) Name() string { return "exporteddoc" }

// Check implements Analyzer.
func (ExportedDoc) Check(cfg *Config, pkg *Package) []Diagnostic {
	if !matchAny(cfg.DocPaths, pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "exporteddoc",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(pkg.Files) > 0 {
		diag(pkg.Files[0].Name, "package %s has no package doc comment; add a doc.go overview stating the package's determinism contract", pkg.Types.Name())
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(diag, pkg, d)
			case *ast.GenDecl:
				checkGenDoc(diag, d)
			}
		}
	}
	return diags
}

// checkFuncDoc reports an exported function or a method on an exported
// receiver type that lacks a doc comment mentioning its name.
func checkFuncDoc(diag func(ast.Node, string, ...any), pkg *Package, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
		if base := receiverBase(d.Recv); base != "" && !ast.IsExported(base) {
			return // methods on unexported types are not part of the API surface
		}
	}
	requireDoc(diag, d.Name, d.Doc, kind, d.Name.Name)
}

// checkGenDoc walks an exported type, const, or var declaration,
// including struct fields and interface methods of exported types.
func checkGenDoc(diag func(ast.Node, string, ...any), d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc // a single-spec decl's doc documents the spec
			}
			requireDoc(diag, s.Name, doc, "type", s.Name.Name)
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFieldDocs(diag, t.Fields, "field")
			case *ast.InterfaceType:
				checkFieldDocs(diag, t.Methods, "interface method")
			}
		case *ast.ValueSpec:
			// A doc comment on the grouped declaration covers every spec in
			// the group (the "const ( ... )" block idiom); otherwise each
			// exported name needs its own.
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if s.Doc != nil {
					continue
				}
				if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
					diag(name, "exported %s %s has no doc comment (neither on the name nor on its declaration group)", declKind(d), name.Name)
				}
			}
		}
	}
}

// checkFieldDocs reports exported struct fields or interface methods that
// lack a doc comment.
func checkFieldDocs(diag func(ast.Node, string, ...any), fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				diag(name, "exported %s %s has no doc comment", kind, name.Name)
			}
		}
	}
}

// requireDoc reports the identifier when doc is missing, and when the doc
// text never mentions the identifier (a drifted or copy-pasted comment).
func requireDoc(diag func(ast.Node, string, ...any), name *ast.Ident, doc *ast.CommentGroup, kind, ident string) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		diag(name, "exported %s %s has no doc comment; state what it does and its determinism contract", kind, ident)
		return
	}
	if !strings.Contains(doc.Text(), ident) {
		diag(name, "doc comment on exported %s %s never mentions %q; godoc convention is \"%s ...\"", kind, ident, ident, ident)
	}
}

// receiverBase extracts the receiver's base type name ("T" from "t *T").
func receiverBase(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// declKind names a GenDecl's token for diagnostics ("const", "var").
func declKind(d *ast.GenDecl) string { return d.Tok.String() }
