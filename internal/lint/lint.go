// Package lint is a stdlib-only static-analysis engine that enforces the
// simulator's determinism and protocol-exhaustiveness contracts. The
// paper's methodology rests on NWO's deterministic behavior: re-running a
// configuration must yield the identical cycle count, and the coherence
// checker's panic point must be exactly reproducible. Those properties are
// easy to break silently — one wall-clock read, one unseeded random draw,
// one range over a Go map in the simulation core — so this package turns
// the conventions into machine-checked rules.
//
// Six analyzers ship:
//
//   - determinism: no wall-clock time, no global math/rand, no goroutines,
//     selects, or channel operations, and no unsorted map iteration inside
//     the simulation core.
//   - exhaustive-enum: every switch over a typed-const enum covers all
//     constants or has an explicit default that panics.
//   - cycle-math: no floating-point values flowing into cycle accounting
//     outside the statistics/reporting packages.
//   - panic-hygiene: panics carry constant, package-prefixed messages
//     (diagnosable invariant reports), and recover never hides one.
//   - exporteddoc: every exported identifier in the audited packages
//     (Config.DocPaths) carries a doc comment mentioning it, and each
//     package has a package overview — the doc comments are where those
//     packages' determinism contracts are stated.
//   - hotalloc: whole-program allocation analysis. A CHA-style call graph
//     rooted at //swex:hotpath annotations computes which functions run
//     per simulated event; every allocation site inside them (new, make,
//     composite literals, append, interface boxing, closures, string
//     building, channel ops) is reported and ratcheted against the
//     committed lint-baseline.json so hot-path garbage only shrinks.
//
// A violating line can be suppressed with an escape hatch comment naming
// the analyzer and a reason:
//
//	//lint:allow determinism(lockstep handoff; scheduler cannot reorder)
//
// placed on the offending line or the line above it. An empty reason is
// rejected by the comment parser, so every suppression is documented.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	// Pos locates the violating expression or statement.
	Pos token.Position
	// Analyzer names the rule family that reported the violation.
	Analyzer string
	// Message states the violation in one line.
	Message string
	// Suppressed marks a violation silenced by a //lint:allow comment.
	// Run drops suppressed diagnostics; RunAll keeps them so machine
	// consumers (swexlint -json) can report the allow-state.
	Suppressed bool
}

// String renders the diagnostic in file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer checks one package against one rule family.
type Analyzer interface {
	// Name is the identifier used in diagnostics and allow comments.
	Name() string
	// Check returns the rule violations found in pkg.
	Check(cfg *Config, pkg *Package) []Diagnostic
}

// ModuleAnalyzer is an Analyzer that additionally needs the whole module
// at once — the hotalloc rule builds a cross-package call graph, so
// per-package Check cannot see its reachability roots. Run detects the
// interface and calls CheckModule once over the full package list
// instead of Check per package.
type ModuleAnalyzer interface {
	Analyzer
	// CheckModule returns the rule violations found across all packages.
	CheckModule(cfg *Config, pkgs []*Package) []Diagnostic
}

// Config scopes the analyzers to the packages each rule governs.
type Config struct {
	// CorePaths lists the import paths (exact, or prefixes of
	// sub-packages) forming the deterministic simulation core. The
	// determinism, cycle-math, and panic-hygiene rules apply only there.
	CorePaths []string
	// FloatExemptPaths lists packages where floating-point cycle math is
	// legitimate (statistics and report formatting).
	FloatExemptPaths []string
	// EnumModules lists import-path prefixes whose named integer types
	// are treated as closed enums by the exhaustive-enum rule.
	EnumModules []string
	// CycleType is the fully-qualified name of the cycle-valued type
	// ("swex/internal/sim.Cycle").
	CycleType string
	// DocPaths lists the packages held to the exporteddoc bar: the ones
	// whose exported surface embodies a determinism contract that lives
	// in doc comments. A subset of CorePaths.
	DocPaths []string
	// HotReportPaths lists the packages whose hot-reachable allocation
	// sites the hotalloc rule reports. Reachability is computed over every
	// analyzed package; this only scopes where diagnostics are emitted.
	HotReportPaths []string
	// Baseline, when non-nil, is the hotalloc ratchet: sites within the
	// baselined per-key counts are tolerated, anything beyond fails.
	// Nil reports every site (the -write-baseline scan mode).
	Baseline *Baseline
}

// DefaultConfig returns the production scoping for this repository.
func DefaultConfig() *Config {
	return &Config{
		CorePaths: []string{
			"swex/internal/sim",
			"swex/internal/mesh",
			"swex/internal/proc",
			"swex/internal/cache",
			"swex/internal/dir",
			"swex/internal/proto",
			"swex/internal/ext",
			"swex/internal/machine",
			"swex/internal/mc",
			"swex/internal/memtier",
			"swex/internal/trace",
			"swex/internal/sweep",
			"swex/internal/litmus",
		},
		FloatExemptPaths: []string{
			"swex/internal/stats",
			"swex/internal/report",
		},
		EnumModules: []string{"swex"},
		CycleType:   "swex/internal/sim.Cycle",
		DocPaths: []string{
			"swex/internal/lint",
			"swex/internal/litmus",
			"swex/internal/mc",
			"swex/internal/memtier",
			"swex/internal/sim",
			"swex/internal/sweep",
			"swex/internal/swexd",
			"swex/internal/trace",
		},
		HotReportPaths: []string{
			"swex/internal/sim",
			"swex/internal/mesh",
			"swex/internal/proc",
			"swex/internal/cache",
			"swex/internal/dir",
			"swex/internal/proto",
			"swex/internal/ext",
			"swex/internal/machine",
		},
	}
}

// IsCore reports whether the package path belongs to the simulation core.
func (c *Config) IsCore(path string) bool { return matchAny(c.CorePaths, path) }

// IsFloatExempt reports whether the package may do float cycle math.
func (c *Config) IsFloatExempt(path string) bool { return matchAny(c.FloatExemptPaths, path) }

// IsEnumModule reports whether types from this package are closed enums.
func (c *Config) IsEnumModule(path string) bool { return matchAny(c.EnumModules, path) }

func matchAny(prefixes []string, path string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full analyzer suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		Determinism{},
		ExhaustiveEnum{},
		CycleMath{},
		PanicHygiene{},
		ExportedDoc{},
		HotAlloc{},
	}
}

// AnalyzersByName resolves a comma-separated analyzer list ("determinism,
// cycle-math"); an empty list selects the full suite.
func AnalyzersByName(names string) ([]Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := make(map[string]Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package, drops diagnostics suppressed
// by allow comments, and returns the rest sorted by position. Analyzers
// that implement ModuleAnalyzer run once over the full package list.
func Run(cfg *Config, pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	all := RunAll(cfg, pkgs, analyzers)
	out := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunAll is Run without dropping suppressions: silenced diagnostics are
// kept with Suppressed set, so machine consumers can report allow-state.
func RunAll(cfg *Config, pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	allowFor := make(map[string]allowSet, len(pkgs))
	for _, p := range pkgs {
		for _, f := range p.Files {
			pos := p.Fset.Position(f.Package)
			allowFor[pos.Filename] = p.allows
		}
	}
	mark := func(name string, d *Diagnostic) {
		if set, ok := allowFor[d.Pos.Filename]; ok {
			d.Suppressed = set.suppressed(name, d.Pos)
		}
	}
	var out []Diagnostic
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			for _, d := range ma.CheckModule(cfg, pkgs) {
				mark(a.Name(), &d)
				out = append(out, d)
			}
			continue
		}
		for _, p := range pkgs {
			for _, d := range a.Check(cfg, p) {
				mark(a.Name(), &d)
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ---------------------------------------------------------- allow comments

// allowSet records //lint:allow suppressions by file and line.
type allowSet map[string]map[int][]string // filename -> line -> analyzer names

var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([a-z-]+)\(([^)]+)\)\s*$`)

// collectAllows scans every comment for the escape hatch syntax. The
// reason inside the parentheses is mandatory; a bare "//lint:allow
// determinism()" does not suppress anything.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
			}
		}
	}
	return set
}

// suppressed reports whether an allow comment for the analyzer sits on the
// diagnostic's line or the line directly above it.
func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
