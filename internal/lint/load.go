package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package bundles one parsed and type-checked Go package: the facts layer
// every analyzer works from. Later passes (for example a protocol
// state-space model checker) are expected to reuse this loader rather than
// growing their own.
type Package struct {
	// Path is the import path ("swex/internal/dir").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the shared file set; positions in Files and Info resolve
	// through it.
	Fset *token.FileSet
	// Files holds the parsed non-test sources in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, definitions, and uses.
	Info *types.Info
	// TypeErrors collects type-checker complaints. The loader tolerates
	// them (a package that fails to resolve a stdlib symbol can still be
	// analyzed syntactically); callers that need a fully-typed tree can
	// inspect this.
	TypeErrors []error

	allows allowSet
}

// Loader parses and type-checks packages of one module using only the
// standard library: go/parser for syntax, go/types for semantics, and the
// go/importer source importer for standard-library dependencies.
// Module-internal imports are resolved against the module root, so the
// loader never consults GOPATH, a build cache, or the network.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path prefix ("swex").
	ModulePath string

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// NewLoader returns a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns its path and the module path declared there.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths load from source
// under the module root; everything else is delegated to the stdlib source
// importer. An unresolvable import degrades to an empty placeholder package
// so analysis can proceed on partial type information.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.Load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		// Degrade gracefully: hand back an empty, complete package so the
		// type checker records invalid types for its symbols instead of
		// aborting the whole package.
		ph := types.NewPackage(path, filepath.Base(path))
		ph.MarkComplete()
		return ph, nil
	}
	return pkg, nil
}

// Load parses and type-checks the package in dir under the given import
// path, caching the result. Test files (_test.go) are excluded: the
// determinism contract governs the simulator, not its test harnesses.
func (l *Loader) Load(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)

	p := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: terrs,
	}
	p.allows = collectAllows(l.Fset, files)
	l.pkgs[path] = p
	return p, nil
}

// LoadModule loads every non-test package under the module root, skipping
// testdata, vendor, hidden directories, and directories without Go files.
// Packages are returned in import-path order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, gerr := goSources(path)
		if gerr != nil || len(names) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(l.ModuleRoot, path)
		if rerr != nil {
			return rerr
		}
		imp := l.ModulePath
		if rel != "." {
			imp = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, lerr := l.Load(path, imp)
		if lerr != nil {
			return lerr
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goSources lists the non-test Go files of dir in name order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
