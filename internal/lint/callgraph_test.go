package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"swex/internal/lint"
)

// TestCallGraphReachability pins the edge cases of the CHA builder on the
// hotalloc fixture: interface dispatch reaches every implementation,
// method values and escaped closures reach their bodies through the
// indirect-call matching, and functions nothing hot can reach stay cold.
func TestCallGraphReachability(t *testing.T) {
	pkg := loadHotallocFixture(t)
	g := lint.BuildCallGraph(hotallocConfig(), []*lint.Package{pkg})

	if roots := g.Roots(); !slices.Equal(roots, []string{"fixture/hotalloc.Root"}) {
		t.Fatalf("Roots() = %v, want exactly the annotated Root", roots)
	}

	hot := g.HotFunctions()
	wantHot := []string{
		"fixture/hotalloc.(*flusher).flush",  // method value taken in cold code
		"fixture/hotalloc.(*hotImpl).handle", // interface dispatch, impl 1
		"fixture/hotalloc.(otherImpl).handle", // interface dispatch, impl 2
		"fixture/hotalloc.Root",
		"fixture/hotalloc.helper", // static call from a hot function
		"fixture/hotalloc.tagOf",
	}
	for _, w := range wantHot {
		if !slices.Contains(hot, w) {
			t.Errorf("HotFunctions() missing %s (got %v)", w, hot)
		}
	}
	for _, cold := range []string{
		"fixture/hotalloc.unreachable", // never called from hot code
		"fixture/hotalloc.register",    // only its closure escapes, not it
		"fixture/hotalloc.holdMethod",  // takes a method value, cold itself
	} {
		if slices.Contains(hot, cold) {
			t.Errorf("HotFunctions() wrongly includes %s", cold)
		}
	}
}

// TestHotAllocSiteKeys pins the churn-resistant key scheme: closures
// report under their lexically enclosing declaration, and keys carry no
// line numbers.
func TestHotAllocSiteKeys(t *testing.T) {
	pkg := loadHotallocFixture(t)
	sites := lint.HotAllocSites(hotallocConfig(), []*lint.Package{pkg})
	byKey := make(map[string]int)
	for _, s := range sites {
		byKey[s.Key]++
	}
	// The closure enqueued by cold register() is hot; its make() must be
	// attributed to register, the enclosing declaration.
	if byKey["fixture/hotalloc.register/make"] != 1 {
		t.Errorf("closure site attribution: got keys %v", byKey)
	}
	// The suppressed site still appears in the raw scan (suppression is
	// Run's concern, the baseline counts every live site).
	if byKey["fixture/hotalloc.allowedScratch/make"] != 1 {
		t.Errorf("allowedScratch site missing from raw scan: %v", byKey)
	}
	if byKey["fixture/hotalloc.unreachable/make"] != 0 {
		t.Errorf("unreachable site leaked into the scan: %v", byKey)
	}
}

// TestBaselineRoundTrip checks the ratchet mechanics in isolation:
// serialization is stable, regressions and staleness are both detected.
func TestBaselineRoundTrip(t *testing.T) {
	pkg := loadHotallocFixture(t)
	b := lint.ComputeBaseline(hotallocConfig(), []*lint.Package{pkg})
	if b.Total() == 0 {
		t.Fatal("fixture baseline is empty")
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if reg, stale := loaded.Diff(b); len(reg) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not clean: regressions=%v stale=%v", reg, stale)
	}

	// A new site is a regression; a removed one is stale.
	worse := lint.ComputeBaseline(hotallocConfig(), []*lint.Package{pkg})
	worse.Sites["fixture/hotalloc.helper/make"]++
	if reg, _ := loaded.Diff(worse); len(reg) != 1 {
		t.Errorf("regression not detected: %v", reg)
	}
	better := lint.ComputeBaseline(hotallocConfig(), []*lint.Package{pkg})
	delete(better.Sites, "fixture/hotalloc.helper/make")
	if _, stale := loaded.Diff(better); len(stale) != 1 {
		t.Errorf("staleness not detected: %v", stale)
	}

	// Missing files are "no ratchet", not an error.
	if got, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err != nil || got != nil {
		t.Errorf("LoadBaseline(absent) = (%v, %v), want (nil, nil)", got, err)
	}
}

// TestBaselineRatchetFilter checks the analyzer-side ratchet: with the
// fixture's own baseline in place hotalloc reports nothing, and shrinking
// one allowance resurfaces every site of that key.
func TestBaselineRatchetFilter(t *testing.T) {
	pkg := loadHotallocFixture(t)
	cfg := hotallocConfig()
	cfg.Baseline = lint.ComputeBaseline(hotallocConfig(), []*lint.Package{pkg})
	diags := lint.Run(cfg, []*lint.Package{pkg}, []lint.Analyzer{lint.HotAlloc{}})
	if len(diags) != 0 {
		t.Fatalf("baselined tree not clean: %v", diags)
	}
	cfg.Baseline.Sites["fixture/hotalloc.helper/chan"]--
	diags = lint.Run(cfg, []*lint.Package{pkg}, []lint.Analyzer{lint.HotAlloc{}})
	if len(diags) != 3 {
		t.Fatalf("over-baseline key must resurface all 3 chan sites, got %v", diags)
	}
}

// TestWriteJSONGolden pins the swexlint -json record format, including
// the allow-state of the suppressed fixture site.
func TestWriteJSONGolden(t *testing.T) {
	pkg := loadHotallocFixture(t)
	diags := lint.RunAll(hotallocConfig(), []*lint.Package{pkg}, []lint.Analyzer{lint.HotAlloc{}})
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "hotalloc"))
	if err != nil {
		t.Fatalf("Abs: %v", err)
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, abs, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	goldenPath := filepath.Join("testdata", "json.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(golden, buf.Bytes()) {
		t.Errorf("-json output drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), golden)
	}
}
