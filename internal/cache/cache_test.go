package cache

import (
	"testing"
	"testing/quick"

	"swex/internal/mem"
)

func small(victim int) *Cache {
	return New(Config{Lines: 8, VictimLines: victim})
}

func line(b mem.Block, s LineState) Line {
	return Line{Block: b, State: s, Words: [mem.WordsPerBlock]uint64{uint64(b), 0, 0, 0}}
}

func TestLookupMissOnEmpty(t *testing.T) {
	c := small(0)
	if _, ok := c.Lookup(5, false); ok {
		t.Fatal("empty cache reported a hit")
	}
	if c.Stats.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", c.Stats.Misses)
	}
}

func TestInsertThenHit(t *testing.T) {
	c := small(0)
	c.Insert(line(5, Shared))
	l, ok := c.Lookup(5, false)
	if !ok {
		t.Fatal("inserted block missed")
	}
	if l.State != Shared || l.Words[0] != 5 {
		t.Fatalf("hit returned wrong line: %+v", l)
	}
	if c.Stats.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", c.Stats.Hits)
	}
}

func TestDirectMappedConflictEvicts(t *testing.T) {
	c := small(0)
	c.Insert(line(1, Shared))
	ev, was := c.Insert(line(9, Shared)) // 9 % 8 == 1: conflict
	if !was {
		t.Fatal("conflicting insert did not evict")
	}
	if ev.Block != 1 {
		t.Fatalf("evicted block %d, want 1", ev.Block)
	}
	if _, ok := c.Lookup(1, false); ok {
		t.Fatal("evicted block still resident")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestNonConflictingBlocksCoexist(t *testing.T) {
	c := small(0)
	c.Insert(line(1, Shared))
	if _, was := c.Insert(line(2, Shared)); was {
		t.Fatal("non-conflicting insert evicted")
	}
	if c.Resident() != 2 {
		t.Fatalf("Resident = %d, want 2", c.Resident())
	}
}

func TestRefillResidentBlockOverwrites(t *testing.T) {
	c := small(0)
	c.Insert(line(1, Shared))
	upgraded := line(1, Exclusive)
	upgraded.Dirty = true
	if _, was := c.Insert(upgraded); was {
		t.Fatal("in-place refill evicted")
	}
	l, _ := c.Lookup(1, false)
	if l.State != Exclusive || !l.Dirty {
		t.Fatal("refill did not overwrite state")
	}
}

func TestVictimCacheCatchesConflict(t *testing.T) {
	c := small(2)
	c.Insert(line(1, Shared))
	if _, was := c.Insert(line(9, Shared)); was {
		t.Fatal("displacement into victim cache should not leave hierarchy")
	}
	// Block 1 now lives in the victim cache; lookup should hit and swap.
	l, ok := c.Lookup(1, false)
	if !ok {
		t.Fatal("victim cache miss for displaced block")
	}
	if l.Block != 1 {
		t.Fatalf("lookup returned block %d, want 1", l.Block)
	}
	if c.Stats.VictimHits != 1 {
		t.Fatalf("VictimHits = %d, want 1", c.Stats.VictimHits)
	}
	// And block 9 must have been swapped into the victim cache.
	if _, ok := c.Peek(9); !ok {
		t.Fatal("swapped-out block 9 vanished")
	}
}

func TestVictimCacheLRUSpill(t *testing.T) {
	c := small(1)
	c.Insert(line(1, Shared))
	c.Insert(line(9, Shared))             // 1 -> victim
	ev, was := c.Insert(line(17, Shared)) // 9 -> victim, 1 spills
	if !was {
		t.Fatal("victim overflow did not evict")
	}
	if ev.Block != 1 {
		t.Fatalf("spilled block %d, want 1 (LRU)", ev.Block)
	}
	if _, ok := c.Peek(9); !ok {
		t.Fatal("block 9 should still be in victim cache")
	}
}

func TestDirtyEvictionAccounting(t *testing.T) {
	c := small(0)
	dirty := line(1, Exclusive)
	dirty.Dirty = true
	c.Insert(dirty)
	ev, was := c.Insert(line(9, Shared))
	if !was || !ev.Dirty {
		t.Fatal("dirty eviction lost dirty flag")
	}
	if c.Stats.DirtyEvict != 1 {
		t.Fatalf("DirtyEvict = %d, want 1", c.Stats.DirtyEvict)
	}
}

func TestInvalidateDirectMapped(t *testing.T) {
	c := small(0)
	d := line(3, Exclusive)
	d.Dirty = true
	d.Words[2] = 77
	c.Insert(d)
	l, ok := c.Invalidate(3)
	if !ok {
		t.Fatal("Invalidate missed resident block")
	}
	if !l.Dirty || l.Words[2] != 77 {
		t.Fatal("Invalidate returned wrong contents")
	}
	if _, ok := c.Peek(3); ok {
		t.Fatal("block still resident after Invalidate")
	}
}

func TestInvalidateVictim(t *testing.T) {
	c := small(2)
	c.Insert(line(1, Shared))
	c.Insert(line(9, Shared)) // 1 -> victim
	if _, ok := c.Invalidate(1); !ok {
		t.Fatal("Invalidate missed victim-resident block")
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("victim line survived Invalidate")
	}
}

func TestInvalidateAbsent(t *testing.T) {
	c := small(2)
	if _, ok := c.Invalidate(42); ok {
		t.Fatal("Invalidate of absent block reported success")
	}
}

func TestInstructionAccounting(t *testing.T) {
	c := small(0)
	c.Lookup(4, true)
	c.Insert(line(4, Shared))
	c.Lookup(4, true)
	if c.Stats.IMisses != 1 || c.Stats.IHits != 1 {
		t.Fatalf("I-stats = %d hits / %d misses, want 1/1", c.Stats.IHits, c.Stats.IMisses)
	}
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 {
		t.Fatal("instruction traffic leaked into data counters")
	}
}

func TestInstructionDataThrash(t *testing.T) {
	// The Figure 3 phenomenon in miniature: a hot data block and a hot
	// instruction block share a set; alternating access with no victim
	// cache misses every time, while a 1-line victim cache absorbs it.
	thrash := func(victim int) (misses uint64) {
		c := small(victim)
		data, code := mem.Block(1), mem.Block(9)
		for i := 0; i < 100; i++ {
			if _, ok := c.Lookup(data, false); !ok {
				c.Insert(line(data, Shared))
			}
			if _, ok := c.Lookup(code, true); !ok {
				c.Insert(line(code, Shared))
			}
		}
		return c.Stats.Misses + c.Stats.IMisses
	}
	without := thrash(0)
	with := thrash(1)
	if without < 190 {
		t.Fatalf("expected pervasive thrashing without victim cache, got %d misses", without)
	}
	if with > 4 {
		t.Fatalf("victim cache should absorb the conflict, got %d misses", with)
	}
}

func TestFlush(t *testing.T) {
	c := small(2)
	d := line(1, Exclusive)
	d.Dirty = true
	c.Insert(d)
	c.Insert(line(2, Shared))
	c.Insert(line(9, Shared)) // 1 -> victim (dirty, in victim)
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0].Block != 1 {
		t.Fatalf("Flush returned %v, want the one dirty line (block 1)", dirty)
	}
	if c.Resident() != 0 {
		t.Fatalf("Resident = %d after Flush, want 0", c.Resident())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero lines did not panic")
		}
	}()
	New(Config{Lines: 0})
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" {
		t.Fatal("LineState strings wrong")
	}
}

// Property: a block is never resident twice (direct-mapped slot and victim
// cache may not both hold it), under arbitrary insert/invalidate/lookup
// interleavings.
func TestPropertyNoDuplicateResidency(t *testing.T) {
	f := func(ops []uint16) bool {
		c := small(3)
		for _, op := range ops {
			b := mem.Block(op % 32)
			switch (op >> 5) % 3 {
			case 0:
				c.Insert(line(b, Shared))
			case 1:
				c.Invalidate(b)
			case 2:
				c.Lookup(b, false)
			}
			// Count residency of b across the hierarchy.
			count := 0
			for i := range c.slots {
				if c.slots[i].State != Invalid && c.slots[i].Block == b {
					count++
				}
			}
			for i := range c.victim {
				if c.victim[i].State != Invalid && c.victim[i].Block == b {
					count++
				}
			}
			if count > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserted data survives until eviction/invalidation — a lookup
// hit always returns the words most recently inserted for that block.
func TestPropertyDataIntegrity(t *testing.T) {
	f := func(blocks []uint8) bool {
		c := small(4)
		latest := map[mem.Block]uint64{}
		for i, raw := range blocks {
			b := mem.Block(raw % 16)
			l := line(b, Shared)
			l.Words[0] = uint64(i) + 1000
			c.Insert(l)
			latest[b] = l.Words[0]
			if got, ok := c.Lookup(b, false); !ok || got.Words[0] != latest[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func assoc(ways, victim int) *Cache {
	return New(Config{Lines: 8, Ways: ways, VictimLines: victim})
}

func TestSetAssociativeCoexistence(t *testing.T) {
	// 8 lines, 2 ways -> 4 sets. Blocks 1 and 5 share set 1 and coexist.
	c := assoc(2, 0)
	c.Insert(line(1, Shared))
	if _, was := c.Insert(line(5, Shared)); was {
		t.Fatal("2-way set rejected a second block")
	}
	if _, ok := c.Lookup(1, false); !ok {
		t.Fatal("first block displaced below associativity")
	}
	if _, ok := c.Lookup(5, false); !ok {
		t.Fatal("second block missing")
	}
	// A third conflicting block displaces the LRU (block 1, since 5 was
	// touched last... 1 was looked up first, then 5: LRU is 1).
	ev, was := c.Insert(line(9, Shared))
	if !was {
		t.Fatal("third conflicting block did not evict")
	}
	if ev.Block != 1 {
		t.Fatalf("evicted %d, want LRU block 1", ev.Block)
	}
}

func TestSetAssociativeLRUOrder(t *testing.T) {
	c := assoc(2, 0)
	c.Insert(line(1, Shared))
	c.Insert(line(5, Shared))
	c.Lookup(1, false) // make 5 the LRU
	ev, _ := c.Insert(line(9, Shared))
	if ev.Block != 5 {
		t.Fatalf("evicted %d, want LRU block 5 after touching 1", ev.Block)
	}
}

func TestSetAssociativeAbsorbsThrash(t *testing.T) {
	// The Figure 3 remedy pair (paper Section 8): the I/D conflict that
	// kills a direct-mapped cache is absorbed equally by a victim cache
	// or a 2-way set-associative organization.
	thrash := func(c *Cache) uint64 {
		data, code := mem.Block(1), mem.Block(9)
		for i := 0; i < 100; i++ {
			if _, ok := c.Lookup(data, false); !ok {
				c.Insert(line(data, Shared))
			}
			if _, ok := c.Lookup(code, true); !ok {
				c.Insert(line(code, Shared))
			}
		}
		return c.Stats.Misses + c.Stats.IMisses
	}
	dm := thrash(assoc(1, 0))
	twoWay := thrash(assoc(2, 0))
	victim := thrash(assoc(1, 1))
	if dm < 190 {
		t.Fatalf("direct-mapped should thrash: %d misses", dm)
	}
	if twoWay > 4 {
		t.Fatalf("2-way should absorb the conflict: %d misses", twoWay)
	}
	if victim > 4 {
		t.Fatalf("victim cache should absorb the conflict: %d misses", victim)
	}
}

func TestBadWaysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("indivisible ways accepted")
		}
	}()
	New(Config{Lines: 8, Ways: 3})
}

func TestInvalidateWithinSet(t *testing.T) {
	c := assoc(2, 0)
	c.Insert(line(1, Shared))
	c.Insert(line(5, Shared))
	if _, ok := c.Invalidate(1); !ok {
		t.Fatal("Invalidate missed a set-resident block")
	}
	if _, ok := c.Peek(5); !ok {
		t.Fatal("Invalidate removed the wrong way")
	}
	// The freed way is reused without eviction.
	if _, was := c.Insert(line(9, Shared)); was {
		t.Fatal("insert into freed way evicted")
	}
}
