// Package cache models the processor-side memory hierarchy of an Alewife
// node: a 64 Kbyte direct-mapped cache combined for instructions and data,
// optionally backed by a small fully-associative victim cache, or built
// set-associative instead.
//
// The combined direct-mapped organization is not incidental: the paper's
// TSP case study (Section 6, Figure 3) hinges on instruction/data
// thrashing, where two memory blocks shared by every node are repeatedly
// displaced by commonly-run instructions. The paper's conclusion names the
// two remedies this package implements: "adding extra associativity to the
// processor side of the memory system, by implementing victim caches or by
// building set-associative caches" (Section 8). Alewife's own remedy is
// the victim cache built from transaction-store buffers (Jouppi-style).
package cache

import (
	"fmt"

	"swex/internal/mem"
)

// LineState is the cache-side coherence state of a line (MSI).
type LineState int

const (
	// Invalid means the slot holds no valid line.
	Invalid LineState = iota
	// Shared is a read-only copy; the directory has a pointer to it.
	Shared
	// Exclusive is the sole writable copy; it may be dirty.
	Exclusive
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Line is one cache line: a block's identity, state, and contents.
type Line struct {
	Block mem.Block
	State LineState
	Dirty bool
	Words [mem.WordsPerBlock]uint64
}

// Config sets the cache geometry.
type Config struct {
	// Lines is the total number of cache lines. Alewife: 64 KB of
	// 16-byte lines = 4096.
	Lines int
	// Ways is the set associativity; 0 or 1 is direct-mapped. Lines
	// must be divisible by Ways.
	Ways int
	// VictimLines is the size of the fully-associative victim cache;
	// zero disables it.
	VictimLines int
}

// DefaultConfig is the Alewife geometry: direct-mapped, with the victim
// cache disabled (the paper's baseline; experiments enable the victim
// cache explicitly).
func DefaultConfig() Config {
	return Config{Lines: 4096, VictimLines: 0}
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64 // data hits in the set-associative array
	Misses     uint64 // data misses (after victim check)
	VictimHits uint64 // data hits satisfied by the victim cache
	IHits      uint64 // instruction hits
	IMisses    uint64 // instruction misses
	Evictions  uint64 // lines pushed out of the hierarchy entirely
	DirtyEvict uint64 // evictions that required a writeback
}

// Cache is one node's cache hierarchy. It is a passive structure: all
// timing and protocol interaction lives in the cache controller
// (internal/proto); this package answers "is it here, and what fell out".
type Cache struct {
	cfg    Config
	ways   int
	sets   int
	slots  []Line // sets*ways lines; within a set, index 0 is MRU
	victim []Line // fully associative, LRU order: index 0 = most recent
	Stats  Stats
}

// New builds a cache. It panics on degenerate geometry: cache shape is
// fixed at machine construction.
func New(cfg Config) *Cache {
	if cfg.Lines <= 0 {
		panic(fmt.Sprintf("cache: %d lines", cfg.Lines))
	}
	ways := cfg.Ways
	if ways <= 0 {
		ways = 1
	}
	if cfg.Lines%ways != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", cfg.Lines, ways))
	}
	return &Cache{
		cfg:    cfg,
		ways:   ways,
		sets:   cfg.Lines / ways,
		slots:  make([]Line, cfg.Lines),
		victim: make([]Line, 0, cfg.VictimLines),
	}
}

// Set returns the set index for a block.
func (c *Cache) Set(b mem.Block) int { return int(uint64(b) % uint64(c.sets)) }

// set returns the ways of a set as a slice (index 0 = most recently used).
func (c *Cache) set(idx int) []Line {
	return c.slots[idx*c.ways : (idx+1)*c.ways]
}

// findWay locates b within its set, returning the way index or -1.
func (c *Cache) findWay(set []Line, b mem.Block) int {
	for w := range set {
		if set[w].State != Invalid && set[w].Block == b {
			return w
		}
	}
	return -1
}

// touch moves way w of the set to the most-recently-used position.
func touch(set []Line, w int) {
	if w == 0 {
		return
	}
	l := set[w]
	copy(set[1:w+1], set[0:w])
	set[0] = l
}

// Lookup finds a block, promoting a victim-cache hit back into the
// set-associative array (swapping with the set's LRU occupant). The
// returned pointer aliases cache storage and is invalidated by the next
// mutating call. The instruction flag selects which hit/miss counters to
// charge, matching the combined cache's shared storage but split
// accounting.
//
//swex:hotpath
func (c *Cache) Lookup(b mem.Block, instruction bool) (*Line, bool) {
	set := c.set(c.Set(b))
	if w := c.findWay(set, b); w >= 0 {
		touch(set, w)
		c.countHit(instruction, false)
		return &set[0], true
	}
	// Search the victim cache.
	for i := range c.victim {
		if c.victim[i].Block == b && c.victim[i].State != Invalid {
			c.countHit(instruction, true)
			// Swap: the victim line returns to its set (evicting the
			// set's LRU way into the victim cache if the set is full).
			promoted := c.victim[i]
			lru := len(set) - 1
			if set[lru].State != Invalid {
				c.victim[i] = set[lru]
				c.touchVictim(i)
			} else {
				c.victim = append(c.victim[:i], c.victim[i+1:]...)
			}
			set[lru] = promoted
			touch(set, lru)
			return &set[0], true
		}
	}
	if instruction {
		c.Stats.IMisses++
	} else {
		c.Stats.Misses++
	}
	return nil, false
}

func (c *Cache) countHit(instruction, victim bool) {
	switch {
	case instruction:
		c.Stats.IHits++
	case victim:
		c.Stats.VictimHits++
		c.Stats.Hits++
	default:
		c.Stats.Hits++
	}
}

// touchVictim moves victim entry i to the most-recently-used position.
func (c *Cache) touchVictim(i int) {
	if i == 0 {
		return
	}
	e := c.victim[i]
	copy(c.victim[1:i+1], c.victim[0:i])
	c.victim[0] = e
}

// Insert places a line for block b, displacing whatever conflicts with it.
// The displaced occupant (the set's LRU way) moves into the victim cache
// when one is configured; the line that leaves the hierarchy entirely
// (from the victim cache's LRU slot, or the set when there is no victim
// cache) is returned so the controller can write it back if dirty.
//
//swex:hotpath
func (c *Cache) Insert(l Line) (evicted Line, wasEvicted bool) {
	set := c.set(c.Set(l.Block))
	if w := c.findWay(set, l.Block); w >= 0 {
		// Refill of a resident block (e.g. upgrade): overwrite in place.
		set[w] = l
		touch(set, w)
		return Line{}, false
	}
	// Drop any stale victim-cache copy so a block is never resident twice.
	for i := range c.victim {
		if c.victim[i].State != Invalid && c.victim[i].Block == l.Block {
			c.victim = append(c.victim[:i], c.victim[i+1:]...)
			break
		}
	}
	// Use a free way if one exists.
	for w := range set {
		if set[w].State == Invalid {
			set[w] = l
			touch(set, w)
			return Line{}, false
		}
	}
	// Displace the LRU way.
	lru := len(set) - 1
	displaced := set[lru]
	set[lru] = l
	touch(set, lru)
	if c.cfg.VictimLines == 0 {
		c.Stats.Evictions++
		if displaced.Dirty {
			c.Stats.DirtyEvict++
		}
		return displaced, true
	}
	// Push into the victim cache, spilling its LRU entry if full.
	if len(c.victim) < c.cfg.VictimLines {
		c.victim = append(c.victim, Line{})
	} else {
		evicted = c.victim[len(c.victim)-1]
		wasEvicted = evicted.State != Invalid
		if wasEvicted {
			c.Stats.Evictions++
			if evicted.Dirty {
				c.Stats.DirtyEvict++
			}
		}
	}
	copy(c.victim[1:], c.victim[0:len(c.victim)-1])
	c.victim[0] = displaced
	return evicted, wasEvicted
}

// Invalidate removes block b from the hierarchy, returning the line it
// held if present. The protocol uses the returned contents to build the
// UPDATE (dirty data) reply to an invalidation.
//
//swex:hotpath
func (c *Cache) Invalidate(b mem.Block) (Line, bool) {
	set := c.set(c.Set(b))
	if w := c.findWay(set, b); w >= 0 {
		l := set[w]
		set[w] = Line{}
		return l, true
	}
	for i := range c.victim {
		if c.victim[i].State != Invalid && c.victim[i].Block == b {
			l := c.victim[i]
			c.victim = append(c.victim[:i], c.victim[i+1:]...)
			return l, true
		}
	}
	return Line{}, false
}

// Peek returns the line for b without promoting or counting.
func (c *Cache) Peek(b mem.Block) (Line, bool) {
	set := c.set(c.Set(b))
	if w := c.findWay(set, b); w >= 0 {
		return set[w], true
	}
	for i := range c.victim {
		if c.victim[i].State != Invalid && c.victim[i].Block == b {
			return c.victim[i], true
		}
	}
	return Line{}, false
}

// Resident reports how many valid lines the hierarchy holds (testing aid).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].State != Invalid {
			n++
		}
	}
	for i := range c.victim {
		if c.victim[i].State != Invalid {
			n++
		}
	}
	return n
}

// Flush invalidates every line, returning the dirty ones so the caller can
// write them back. Used by the software-only directory protocol, which
// flushes a block from the home's local cache when the remote-access bit
// is first set, and by tests.
func (c *Cache) Flush() []Line {
	var dirty []Line
	for i := range c.slots {
		if c.slots[i].State != Invalid && c.slots[i].Dirty {
			dirty = append(dirty, c.slots[i])
		}
		c.slots[i] = Line{}
	}
	for i := range c.victim {
		if c.victim[i].State != Invalid && c.victim[i].Dirty {
			dirty = append(dirty, c.victim[i])
		}
	}
	c.victim = c.victim[:0]
	return dirty
}
