package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"swex/internal/apps"
	"swex/internal/litmus"
	"swex/internal/machine"
	"swex/internal/sim"
)

// WorkerName is the ProgramRef.App value naming the WORKER synthetic
// benchmark (paper Section 5). The six applications use their paper names.
const WorkerName = "WORKER"

// LitmusName is the ProgramRef.App value naming a litmus test; the
// program itself lives in ProgramRef.Litmus.
const LitmusName = litmus.AppName

// codeVersion salts every job key. Bump it whenever a change alters
// simulation results (cycle counts, handler accounting, protocol
// behavior), so stale cache entries from the previous semantics can never
// satisfy a new sweep. Purely additive changes (new fields captured into
// Result) also require a bump, since cached objects would lack them.
// swex-sim-v4: canonical (owner, cnt) event keys replaced issue-order
// sequencing for same-cycle events (DESIGN.md §14), shifting cycle
// counts by under a percent on every exhibit.
const codeVersion = "swex-sim-v4"

// ProgramRef names a workload canonically, so a job can be hashed,
// journaled, and re-resolved in a later process.
type ProgramRef struct {
	// App is WorkerName, LitmusName, or one of the paper names in
	// apps.Registry (TSP, AQ, SMGRID, EVOLVE, MP3D, WATER).
	App string
	// Quick selects the reduced problem size from apps.QuickRegistry.
	// Ignored for WORKER, whose size is explicit.
	Quick bool
	// SetSize is the WORKER worker-set size (App == WorkerName).
	SetSize int
	// Iters is the WORKER iteration count (App == WorkerName).
	Iters int
	// Litmus is the canonical litmus-program encoding (App ==
	// LitmusName), produced by litmus.Program.String. The encoding is
	// part of the job key, so every distinct program is a distinct
	// cacheable computation.
	Litmus string
}

// Resolve looks the reference up in the application registry.
func (p ProgramRef) Resolve() (apps.Program, error) {
	if p.App == WorkerName {
		if p.SetSize <= 0 || p.Iters <= 0 {
			return apps.Program{}, fmt.Errorf("sweep: WORKER job needs positive SetSize and Iters (got %d, %d)", p.SetSize, p.Iters)
		}
		return apps.Worker(apps.WorkerParams{SetSize: p.SetSize, Iters: p.Iters}), nil
	}
	if p.App == LitmusName {
		prog, err := litmus.Parse(p.Litmus)
		if err != nil {
			return apps.Program{}, err
		}
		return prog.AppProgram(), nil
	}
	registry := apps.Registry()
	if p.Quick {
		registry = apps.QuickRegistry()
	}
	for _, prog := range registry {
		if prog.Name == p.App {
			return prog, nil
		}
	}
	return apps.Program{}, fmt.Errorf("sweep: unknown application %q", p.App)
}

// Job is one point of an experiment matrix: a workload on a machine
// configuration, with an optional per-job simulated-cycle budget. Two jobs
// with equal keys describe the same computation and share a cache entry.
type Job struct {
	// Program names the workload.
	Program ProgramRef
	// Config is the machine configuration the workload runs on.
	Config machine.Config
	// Limit bounds the run in simulated cycles (0 = the runner default, or
	// unbounded). Exceeding it records a failure, not a hang.
	Limit sim.Cycle
}

// WorkerJob builds a WORKER job.
func WorkerJob(setSize, iters int, cfg machine.Config) Job {
	return Job{
		Program: ProgramRef{App: WorkerName, SetSize: setSize, Iters: iters},
		Config:  cfg,
	}
}

// AppJob builds a job for one of the six applications by paper name.
func AppJob(name string, quick bool, cfg machine.Config) Job {
	return Job{Program: ProgramRef{App: name, Quick: quick}, Config: cfg}
}

// LitmusJob builds a job running the litmus program on the configuration;
// the program's observation log is captured into Result.Obs for the
// sequential-consistency oracle.
func LitmusJob(p litmus.Program, cfg machine.Config) Job {
	return Job{Program: ProgramRef{App: LitmusName, Litmus: p.String()}, Config: cfg}
}

// Key renders the job as a canonical string: every field that influences
// the simulation outcome, in a fixed order, plus the code-version salt.
// Configurations that cannot be described canonically (an installed trace
// sink or custom protocol software) are rejected — their behavior is not
// captured by the key, so caching them would alias distinct computations.
func (j Job) Key(salt string) (string, error) {
	if j.Config.Trace != nil {
		return "", fmt.Errorf("sweep: job %s has a trace sink installed; traced runs are not cacheable", j.Program.App)
	}
	if j.Config.CustomSoftware != nil {
		return "", fmt.Errorf("sweep: job %s has custom protocol software installed; its identity cannot be hashed", j.Program.App)
	}
	if strings.ContainsAny(j.Program.App, "|=") {
		return "", fmt.Errorf("sweep: program name %q contains key metacharacters", j.Program.App)
	}
	if strings.ContainsAny(j.Program.Litmus, "|=") {
		return "", fmt.Errorf("sweep: litmus encoding %q contains key metacharacters", j.Program.Litmus)
	}
	c := j.Config
	s := c.Spec
	t := c.Timing
	var b strings.Builder
	put := func(field string, v any) {
		fmt.Fprintf(&b, "|%s=%v", field, v)
	}
	b.WriteString(codeVersion)
	put("salt", salt)
	put("app", j.Program.App)
	put("quick", j.Program.Quick)
	put("set", j.Program.SetSize)
	put("iters", j.Program.Iters)
	put("litmus", j.Program.Litmus)
	put("nodes", c.Nodes)
	put("loseinv", c.LoseInv)
	put("spec", s.Name)
	put("hw", s.HWPointers)
	put("fullmap", s.FullMap)
	put("localbit", s.LocalBit)
	put("ack", int(s.AckMode))
	put("bcast", s.Broadcast)
	put("swonly", s.SoftwareOnly)
	put("dls", s.Directoryless)
	put("soft", int(c.Software))
	put("victim", c.VictimLines)
	put("pifetch", c.PerfectIfetch)
	put("batch", c.BatchReads)
	put("parinv", c.ParallelInv)
	put("mig", c.MigratoryDetect)
	put("threads", c.ThreadsPerNode)
	put("clines", c.CacheLines)
	put("cways", c.CacheWays)
	put("tmem", int64(t.MemLatency))
	put("thome", int64(t.HomeProc))
	put("tfill", int64(t.CacheFill))
	put("tretry", int64(t.RetryDelay))
	put("freq", t.ReqFlits)
	put("fdata", t.DataFlits)
	put("fctl", t.CtlFlits)
	mt := c.MemTier
	put("mtkind", int(mt.Kind))
	put("mthops", mt.Far.Hops)
	put("mthopcyc", int64(mt.Far.HopCycles))
	put("mtflitcyc", int64(mt.Far.FlitCycles))
	put("mtflits", mt.Far.Flits)
	put("mtmemcyc", int64(mt.Far.MemCycles))
	put("mtdread", int64(mt.DRAMRead))
	put("mtdwrite", int64(mt.DRAMWrite))
	put("mtnread", int64(mt.NVMRead))
	put("mtnwrite", int64(mt.NVMWrite))
	put("mtdblocks", mt.DRAMBlocks)
	put("mtpromote", mt.PromoteAfter)
	put("limit", int64(j.Limit))
	return b.String(), nil
}

// HashKey returns the content address of a canonical key: the hex SHA-256.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}
