package sweep

import (
	"testing"
	"time"
)

// The pool benchmarks isolate the runner's scheduling overlap from the
// simulator's CPU appetite: each task dwells in time.Sleep, so the
// measured wall clock reflects only how well runPool overlaps waiting
// tasks. On an M-core machine the expected ratio between the 1-worker and
// W-worker variants is min(W, M-independent) — sleep does not contend for
// cores, so the overlap shows even on a single-core container, which is
// exactly what makes this the honest pool-speedup measurement there
// (CPU-bound simulations cannot overlap without real cores; see
// EXPERIMENTS.md).
func benchmarkPool(b *testing.B, workers int) {
	const tasks = 8
	const dwell = 25 * time.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runPool(workers, tasks, func(int) { time.Sleep(dwell) })
	}
}

func BenchmarkPoolOverlapSerial(b *testing.B)   { benchmarkPool(b, 1) }
func BenchmarkPoolOverlapWorkers4(b *testing.B) { benchmarkPool(b, 4) }
func BenchmarkPoolOverlapWorkers8(b *testing.B) { benchmarkPool(b, 8) }
