package sweep

import (
	"context"
	"reflect"
	"testing"

	"swex/internal/litmus"
	"swex/internal/machine"
	"swex/internal/proto"
)

// litmusMatrix returns the corpus compiled into jobs on a 4-node
// full-map machine.
func litmusMatrix() []Job {
	corpus := litmus.Corpus()
	jobs := make([]Job, len(corpus))
	for i, tc := range corpus {
		jobs[i] = LitmusJob(tc.Prog, machine.DefaultConfig(4, proto.FullMap()))
	}
	return jobs
}

func TestLitmusJobCapturesObservations(t *testing.T) {
	jobs := litmusMatrix()
	r := MustNewRunner(Config{Workers: 2})
	defer r.Close()
	results, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	corpus := litmus.Corpus()
	for i, res := range results {
		if res.Obs == nil {
			t.Fatalf("%s: result carries no observation log", corpus[i].Name)
		}
		obs, err := litmus.ThreadObs(corpus[i].Prog, res.Obs, jobs[i].Config.ThreadsPerNode)
		if err != nil {
			t.Fatalf("%s: %v", corpus[i].Name, err)
		}
		v, err := litmus.CheckSC(corpus[i].Prog, obs)
		if err != nil {
			t.Fatalf("%s: %v", corpus[i].Name, err)
		}
		if !v.OK {
			t.Fatalf("%s: full-map run not sequentially consistent: obs %v", corpus[i].Name, obs)
		}
	}
}

func TestLitmusJobObservationsRideTheCache(t *testing.T) {
	jobs := litmusMatrix()
	dir := t.TempDir()

	cold := MustNewRunner(Config{Workers: 2, CacheDir: dir})
	coldRes, err := cold.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	execs := cold.TotalExecs()
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	if execs != len(jobs) {
		t.Fatalf("cold run executed %d of %d jobs", execs, len(jobs))
	}

	warm := MustNewRunner(Config{Workers: 2, CacheDir: dir})
	defer warm.Close()
	warmRes, err := warm.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalExecs() != 0 {
		t.Fatalf("warm run executed %d simulations, want 0", warm.TotalExecs())
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatal("cached litmus results differ from the executed ones")
	}
}

func TestLitmusJobKeyDistinguishesFaultInjection(t *testing.T) {
	p, cfg := litmus.WeakenedFixture(4)
	weak := LitmusJob(p, cfg)
	cfg.LoseInv = 0
	clean := LitmusJob(p, cfg)
	kw, err := weak.Key("")
	if err != nil {
		t.Fatal(err)
	}
	kc, err := clean.Key("")
	if err != nil {
		t.Fatal(err)
	}
	if kw == kc {
		t.Fatal("lost-invalidation config shares a cache key with the clean one")
	}
}
