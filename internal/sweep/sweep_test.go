package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/trace"
)

// smallMatrix returns n distinct, fast WORKER jobs.
func smallMatrix(n int) []Job {
	specs := proto.Spectrum()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = WorkerJob(1+i%3, 1+i/3, machine.Config{
			Nodes: 4,
			Spec:  specs[i%len(specs)],
		})
	}
	return jobs
}

func TestKeyStableAndDistinct(t *testing.T) {
	jobs := smallMatrix(9)
	seen := map[string]int{}
	for i, j := range jobs {
		k1, err := j.Key("")
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		k2, err := j.Key("")
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if k1 != k2 {
			t.Fatalf("job %d: key not stable:\n%s\n%s", i, k1, k2)
		}
		if prev, dup := seen[k1]; dup {
			t.Fatalf("jobs %d and %d share key %q", prev, i, k1)
		}
		seen[k1] = i
		salted, err := j.Key("branch-x")
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if salted == k1 {
			t.Fatalf("job %d: salt did not change the key", i)
		}
	}
}

func TestKeyRejectsUnserializableConfig(t *testing.T) {
	base := machine.Config{Nodes: 4, Spec: proto.FullMap()}

	withTrace := WorkerJob(1, 1, base)
	withTrace.Config.Trace = trace.NewCollector()
	if _, err := withTrace.Key(""); err == nil {
		t.Fatal("job with a trace sink must not be hashable")
	}

	withSoftware := WorkerJob(1, 1, base)
	withSoftware.Config.CustomSoftware = struct{ proto.Software }{}
	if _, err := withSoftware.Key(""); err == nil {
		t.Fatal("job with custom software must not be hashable")
	}

	r := MustNewRunner(Config{Workers: 1})
	defer r.Close()
	out := r.Sweep(context.Background(), []Job{withTrace})
	if out[0].Err == nil || out[0].Key != "" {
		t.Fatalf("sweep must surface the key error, got %+v", out[0])
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	jobs := smallMatrix(8)
	run := func(workers int) []Outcome {
		r := MustNewRunner(Config{Workers: workers})
		defer r.Close()
		return r.Sweep(context.Background(), jobs)
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 7} {
		parallel := run(workers)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("outcomes differ between 1 and %d workers", workers)
		}
	}
}

func TestSweepDedupAndMemo(t *testing.T) {
	r := MustNewRunner(Config{Workers: 4})
	defer r.Close()
	job := smallMatrix(1)[0]

	out := r.Sweep(context.Background(), []Job{job, job, job})
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
		if !reflect.DeepEqual(o.Result, out[0].Result) {
			t.Fatalf("outcome %d diverges from fan-out", i)
		}
	}
	if got := r.ExecCount(job); got != 1 {
		t.Fatalf("duplicate jobs in one sweep executed %d times, want 1", got)
	}

	again := r.Sweep(context.Background(), []Job{job})
	if !again[0].Cached {
		t.Fatal("second sweep must be served from the memo")
	}
	if got := r.ExecCount(job); got != 1 {
		t.Fatalf("memo hit re-executed: %d executions", got)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRunner(Config{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	jobs := smallMatrix(5)
	first := r.Sweep(context.Background(), jobs)
	for i, o := range first {
		if o.Err != nil || o.CacheErr != nil {
			t.Fatalf("outcome %d: err=%v cacheErr=%v", i, o.Err, o.CacheErr)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh runner over the same directory must serve every job from
	// disk, with byte-identical results and zero executions.
	r2, err := NewRunner(Config{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	second := r2.Sweep(context.Background(), jobs)
	for i, o := range second {
		if o.Err != nil {
			t.Fatalf("warm outcome %d: %v", i, o.Err)
		}
		if !o.Cached {
			t.Fatalf("warm outcome %d not served from cache", i)
		}
		if !reflect.DeepEqual(o.Result, first[i].Result) {
			t.Fatalf("warm outcome %d differs from cold result", i)
		}
	}
	if got := r2.TotalExecs(); got != 0 {
		t.Fatalf("warm sweep executed %d simulations, want 0", got)
	}
}

func TestCacheTolerantOfTruncatedFinalLine(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRunner(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	jobs := smallMatrix(3)
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	r.Close()

	manifest := filepath.Join(dir, "manifest.jsonl")
	f, err := os.OpenFile(manifest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unterminated record.
	if _, err := f.WriteString(`{"h":"deadbeef","k":"half-wri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2, err := NewRunner(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatalf("truncated final manifest line must be tolerated: %v", err)
	}
	defer r2.Close()
	if _, err := r2.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := r2.TotalExecs(); got != 0 {
		t.Fatalf("journaled results lost after torn append: %d re-executions", got)
	}
}

func TestCacheRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRunner(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), smallMatrix(2)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	manifest := filepath.Join(dir, "manifest.jsonl")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	corrupted := "garbage not json\n" + strings.Join(lines, "")
	if err := os.WriteFile(manifest, []byte(corrupted), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err == nil {
		t.Fatal("corruption before valid records must fail the open, not drop work silently")
	}
}

func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	jobs := smallMatrix(12)

	// First attempt: cancel the sweep after a few executions, as a crash
	// would. The journal must preserve exactly the completed jobs.
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	r, err := NewRunner(Config{
		Workers:  2,
		CacheDir: dir,
		OnExecute: func(Job) {
			if executed.Add(1) == 4 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Sweep(ctx, jobs)
	cancel()
	var doneFirst, cancelled int
	for _, o := range out {
		switch {
		case o.Err == nil:
			doneFirst++
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("unexpected failure: %v", o.Err)
		}
	}
	if cancelled == 0 {
		t.Fatal("cancellation reached no job; cannot exercise resume")
	}
	firstExecs := make(map[string]int)
	for _, j := range jobs {
		key, _ := j.Key("")
		firstExecs[HashKey(key)] = r.ExecCount(j)
	}
	r.Close()

	// Resume: a fresh runner over the same cache completes the matrix,
	// never re-executing a finished job.
	r2, err := NewRunner(Config{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	resumed := r2.Sweep(context.Background(), jobs)
	for i, o := range resumed {
		if o.Err != nil {
			t.Fatalf("resumed outcome %d: %v", i, o.Err)
		}
	}
	for i, j := range jobs {
		key, _ := j.Key("")
		total := firstExecs[HashKey(key)] + r2.ExecCount(j)
		if total != 1 {
			t.Fatalf("job %d executed %d times across crash and resume, want exactly 1", i, total)
		}
	}
	if want := len(jobs); int(executed.Load())+0 != want {
		// executed counts only the first runner's OnExecute calls; add the
		// resumed runner's total for the across-process sum.
		if got := int(executed.Load()) + r2.TotalExecs(); got != want {
			t.Fatalf("matrix of %d jobs took %d executions across crash and resume", want, got)
		}
	}

	// Third run: everything warm, nothing executes.
	r3, err := NewRunner(Config{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if _, err := r3.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := r3.TotalExecs(); got != 0 {
		t.Fatalf("fully-warm run executed %d simulations, want 0", got)
	}
}

func TestPanicBecomesFailureRecord(t *testing.T) {
	dir := t.TempDir()
	poison := smallMatrix(1)[0]
	poisonKey, _ := poison.Key("")
	r, err := NewRunner(Config{
		Workers:  1,
		CacheDir: dir,
		OnExecute: func(j Job) {
			if k, _ := j.Key(""); k == poisonKey {
				panic("injected test panic")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Sweep(context.Background(), []Job{poison})
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), "injected test panic") {
		t.Fatalf("panic not converted to failure record: %v", out[0].Err)
	}
	r.Close()

	// The failure is journaled for reporting but never served as a result:
	// a resumed sweep re-executes the job (this time without the poison).
	r2, err := NewRunner(Config{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	st := r2.Cache().Status()
	if st.Failed != 1 || len(st.Failures) != 1 {
		t.Fatalf("failure not journaled: %+v", st)
	}
	if !strings.Contains(st.Failures[0].Err, "injected test panic") {
		t.Fatalf("journaled failure lost its error: %q", st.Failures[0].Err)
	}
	if _, err := r2.Run(context.Background(), []Job{poison}); err != nil {
		t.Fatalf("failed job must re-execute on resume: %v", err)
	}
	if got := r2.ExecCount(poison); got != 1 {
		t.Fatalf("resume executed the failed job %d times, want 1", got)
	}
	if st := r2.Cache().Status(); st.Failed != 0 {
		t.Fatalf("success must clear the journaled failure, still %d failed", st.Failed)
	}
}

func TestRetryPolicy(t *testing.T) {
	job := smallMatrix(1)[0]
	var calls atomic.Int64
	r := MustNewRunner(Config{
		Workers: 1,
		Retries: 2,
		OnExecute: func(Job) {
			if calls.Add(1) < 3 {
				panic("transient test failure")
			}
		},
	})
	defer r.Close()
	if _, err := r.Run(context.Background(), []Job{job}); err != nil {
		t.Fatalf("job must succeed within the retry budget: %v", err)
	}
	if got := r.ExecCount(job); got != 3 {
		t.Fatalf("retry policy ran the job %d times, want 3", got)
	}

	// Exhausted retries surface the last error, annotated with the count.
	r2 := MustNewRunner(Config{
		Workers:   1,
		Retries:   1,
		OnExecute: func(Job) { panic("permanent test failure") },
	})
	defer r2.Close()
	_, err := r2.Run(context.Background(), []Job{job})
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("exhausted retries not annotated: %v", err)
	}
}

func TestCycleBudget(t *testing.T) {
	job := smallMatrix(1)[0]
	r := MustNewRunner(Config{Workers: 1, CycleBudget: 10})
	defer r.Close()
	out := r.Sweep(context.Background(), []Job{job})
	if out[0].Err == nil {
		t.Fatal("a 10-cycle budget must fail a real WORKER run")
	}

	// An explicit per-job limit overrides the runner default.
	generous := job
	generous.Limit = 100_000_000
	out = r.Sweep(context.Background(), []Job{generous})
	if out[0].Err != nil {
		t.Fatalf("per-job limit override: %v", out[0].Err)
	}
}

func TestRunFailFastIsDeterministic(t *testing.T) {
	jobs := smallMatrix(4)
	jobs[1].Program.App = "NO-SUCH-APP"
	jobs[3].Program.App = "ALSO-MISSING"
	r := MustNewRunner(Config{Workers: 4})
	defer r.Close()
	_, err := r.Run(context.Background(), jobs)
	if err == nil || !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("fail-fast must report the first failure by submission order, got %v", err)
	}
}

func TestRunPoolCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 97} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, max(n, 1))
			runPool(workers, n, func(i int) {
				hits.Add(1)
				if seen[i].Swap(true) {
					panic("sweep_test: index visited twice")
				}
			})
			if int(hits.Load()) != n {
				t.Fatalf("workers=%d n=%d: %d calls", workers, n, hits.Load())
			}
		}
	}
}

func TestCompactRewritesJournalToLiveRecords(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A history with superseded records: k1 completes, k2 fails then
	// succeeds on retry, k3 fails twice. Journal: 5 lines, live: 3.
	res := Result{Time: 7}
	if err := c.Put("k1", res); err != nil {
		t.Fatal(err)
	}
	if err := c.PutFailure("k2", errors.New("first attempt")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k2", res); err != nil {
		t.Fatal(err)
	}
	if err := c.PutFailure("k3", errors.New("boom a")); err != nil {
		t.Fatal(err)
	}
	if err := c.PutFailure("k3", errors.New("boom b")); err != nil {
		t.Fatal(err)
	}

	records, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if records != 3 {
		t.Fatalf("Compact wrote %d records; want 3 (k1 done, k2 done, k3 failed)", records)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 3 {
		t.Fatalf("compacted manifest has %d lines; want 3:\n%s", got, data)
	}

	// The compacted cache still appends: a new completion lands in the
	// rewritten journal.
	if err := c.Put("k4", res); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open over the compacted journal sees exactly the live state.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("open after compact: %v", err)
	}
	defer c2.Close()
	for _, key := range []string{"k1", "k2", "k4"} {
		if got, ok := c2.Get(key); !ok || got.Time != res.Time {
			t.Fatalf("Get(%q) after compact = %+v, %v; want hit", key, got, ok)
		}
	}
	st := c2.Status()
	if st.Done != 3 || st.Failed != 1 {
		t.Fatalf("status after compact: %+v; want 3 done, 1 failed", st)
	}
	if st.Failures[0].Err != "boom b" {
		t.Fatalf("failure after compact: %+v; want the latest error kept", st.Failures[0])
	}
}

func TestCompactDropsTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k1", Result{Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "manifest.jsonl")
	f, err := os.OpenFile(manifest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"h":"deadbeef","k":"half-wri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The torn line is tolerated at replay and gone after compaction: the
	// rewritten journal parses strictly, every line.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if _, err := c2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m manifestLine
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("compacted manifest line %d unparseable: %q", i+1, line)
		}
	}
	c3, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got, ok := c3.Get("k1"); !ok || got.Time != 1 {
		t.Fatalf("Get(k1) after compact = %+v, %v; want hit", got, ok)
	}
}

func TestCompactClosedCacheFails(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compact(); err == nil {
		t.Fatal("Compact on a closed cache must fail")
	}
}
