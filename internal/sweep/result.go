package sweep

import (
	"swex/internal/machine"
	"swex/internal/sim"
	"swex/internal/stats"
)

// Breakdown mirrors stats.Breakdown as a plain activity-indexed array, so
// cached results round-trip through JSON (stats.Breakdown's custom
// marshaler renders the paper's table layout and is not reversible).
type Breakdown [stats.NumActivities]uint64

// Stats converts back to the statistics package's representation.
func (b Breakdown) Stats() stats.Breakdown { return stats.Breakdown(b) }

// HistBucket is one bucket of a worker-set-size histogram.
type HistBucket struct {
	// Size is the worker-set size this bucket counts.
	Size int
	// Count is how many blocks peaked at exactly Size workers.
	Count uint64
}

// Result is the serializable summary of one finished job: everything the
// paper's tables and figures consume, detached from the live machine so it
// can be cached on disk and merged across processes.
type Result struct {
	// Time is the parallel run time in simulated cycles.
	Time sim.Cycle
	// Traps counts software handler invocations (mirrors machine.Result).
	Traps uint64
	// HandlerCycles totals software handler occupancy (mirrors
	// machine.Result).
	HandlerCycles sim.Cycle
	// Messages counts protocol messages sent (mirrors machine.Result).
	Messages uint64
	// BusyRetries counts BUSY-bounced retries (mirrors machine.Result).
	BusyRetries uint64
	// ReadMean .. LocalMean are the ledger's average software-handler
	// latencies per request kind across all sharer counts (Table 1).
	ReadMean, WriteMean, AckMean, LocalMean float64
	// ReadMedian and WriteMedian are the median handler breakdowns
	// (Table 2).
	ReadMedian, WriteMedian Breakdown
	// HasReadMedian and HasWriteMedian distinguish "no records" from a
	// zero ReadMedian/WriteMedian breakdown.
	HasReadMedian, HasWriteMedian bool
	// WorkerSets is the per-block maximum worker-set histogram (Figure 6),
	// in ascending bucket order.
	WorkerSets []HistBucket
	// Obs is the run's observation log — per dense thread slot
	// (node × context), each thread's observed read values in program
	// order — captured when the workload installs one
	// (apps.Instance.Observations; litmus programs do, the paper's
	// applications do not). The sequential-consistency oracle judges
	// these values, so they ride the cache with the rest of the result.
	Obs [][]uint64 `json:",omitempty"`
}

// CaptureResult distills a live machine.Result into the cacheable form.
func CaptureResult(res machine.Result) Result {
	out := Result{
		Time:          res.Time,
		Traps:         res.Traps,
		HandlerCycles: res.HandlerCycles,
		Messages:      res.Messages,
		BusyRetries:   res.BusyRetries,
	}
	if res.Ledger != nil {
		out.ReadMean = res.Ledger.Mean(stats.ReadRequest, -1)
		out.WriteMean = res.Ledger.Mean(stats.WriteRequest, -1)
		out.AckMean = res.Ledger.Mean(stats.AckRequest, -1)
		out.LocalMean = res.Ledger.Mean(stats.LocalRequest, -1)
		if rec, ok := res.Ledger.Median(stats.ReadRequest, -1); ok {
			out.ReadMedian, out.HasReadMedian = Breakdown(rec.Breakdown), true
		}
		if rec, ok := res.Ledger.Median(stats.WriteRequest, -1); ok {
			out.WriteMedian, out.HasWriteMedian = Breakdown(rec.Breakdown), true
		}
	}
	if res.WorkerSets != nil {
		for _, size := range res.WorkerSets.Buckets() {
			out.WorkerSets = append(out.WorkerSets, HistBucket{
				Size:  size,
				Count: res.WorkerSets.Count(size),
			})
		}
	}
	return out
}

// WorkerSetHist rebuilds the histogram object from the cached buckets.
func (r Result) WorkerSetHist() *stats.Hist {
	h := stats.NewHist()
	for _, b := range r.WorkerSets {
		h.AddN(b.Size, b.Count)
	}
	return h
}
