package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Cache is the content-addressed on-disk result store. Layout:
//
//	<dir>/objects/<hh>/<hash>.json   one finished Result per job key hash
//	<dir>/manifest.jsonl             append-only journal of job completions
//
// An object is written to a temporary file and renamed into place, then a
// manifest line is appended and synced, so a crash leaves at worst one
// unjournaled (but valid) object and never a journaled, half-written one.
// On open, the manifest is replayed: "done" entries whose objects are
// readable become immediate cache hits, a truncated final line (the
// signature of a crash mid-append) is ignored, and "failed" entries are
// remembered only for reporting — failures always re-execute.
type Cache struct {
	dir string

	mu       sync.Mutex
	manifest *os.File
	done     map[string]string  // key hash -> canonical key
	failed   map[string]Failure // key hash -> last journaled failure
}

// manifestLine is one journal record.
type manifestLine struct {
	Hash   string `json:"h"`
	Key    string `json:"k"`
	Status string `json:"s"` // "done" or "failed"
	Err    string `json:"e,omitempty"`
}

// OpenCache opens (creating if needed) a cache directory and replays its
// manifest journal.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o777); err != nil {
		return nil, fmt.Errorf("sweep: create cache: %w", err)
	}
	c := &Cache{
		dir:    dir,
		done:   make(map[string]string),
		failed: make(map[string]Failure),
	}
	if err := c.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(c.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("sweep: open manifest: %w", err)
	}
	c.manifest = f
	return c, nil
}

func (c *Cache) manifestPath() string { return filepath.Join(c.dir, "manifest.jsonl") }

func (c *Cache) objectPath(hash string) string {
	return filepath.Join(c.dir, "objects", hash[:2], hash+".json")
}

// replay loads the journal. Unparseable lines are tolerated only in the
// final position (a crash mid-append); anywhere else they mean corruption
// and the open fails rather than silently dropping completed work.
func (c *Cache) replay() error {
	f, err := os.Open(c.manifestPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweep: open manifest: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var badLine int
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var m manifestLine
		if err := json.Unmarshal([]byte(text), &m); err != nil || m.Hash == "" {
			if badLine != 0 {
				return fmt.Errorf("sweep: manifest %s: unparseable line %d", c.manifestPath(), badLine)
			}
			badLine = line
			continue
		}
		if badLine != 0 {
			return fmt.Errorf("sweep: manifest %s: unparseable line %d precedes valid records", c.manifestPath(), badLine)
		}
		switch m.Status {
		case "done":
			c.done[m.Hash] = m.Key
			delete(c.failed, m.Hash)
		case "failed":
			c.failed[m.Hash] = Failure{Key: m.Key, Err: m.Err}
		}
	}
	return sc.Err()
}

// Get returns the cached result for a canonical key, if the journal marks
// it done and its object is present and consistent. A missing or
// mismatched object (a collision, or a crash before the object rename)
// degrades to a miss.
func (c *Cache) Get(key string) (Result, bool) {
	hash := HashKey(key)
	c.mu.Lock()
	journaledKey, ok := c.done[hash]
	c.mu.Unlock()
	if !ok || journaledKey != key {
		return Result{}, false
	}
	data, err := os.ReadFile(c.objectPath(hash))
	if err != nil {
		return Result{}, false
	}
	var obj struct {
		Key    string
		Result Result
	}
	if err := json.Unmarshal(data, &obj); err != nil || obj.Key != key {
		return Result{}, false
	}
	return obj.Result, true
}

// Put stores a finished result and journals the completion.
func (c *Cache) Put(key string, res Result) error {
	hash := HashKey(key)
	path := c.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	data, err := json.MarshalIndent(struct {
		Key    string
		Result Result
	}{key, res}, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := c.journal(manifestLine{Hash: hash, Key: key, Status: "done"}); err != nil {
		return err
	}
	c.mu.Lock()
	c.done[hash] = key
	delete(c.failed, hash)
	c.mu.Unlock()
	return nil
}

// PutFailure journals a job failure. Failures are never served from the
// cache — they re-execute on resume — but the journal records them so a
// sweep's post-mortem (swexsweep -status) can list what went wrong.
func (c *Cache) PutFailure(key string, jobErr error) error {
	hash := HashKey(key)
	msg := ""
	if jobErr != nil {
		msg = jobErr.Error()
	}
	if err := c.journal(manifestLine{Hash: hash, Key: key, Status: "failed", Err: msg}); err != nil {
		return err
	}
	c.mu.Lock()
	if _, isDone := c.done[hash]; !isDone {
		c.failed[hash] = Failure{Key: key, Err: msg}
	}
	c.mu.Unlock()
	return nil
}

// journal appends one line to the manifest and syncs it, so a completion
// acknowledged to the runner survives a crash.
func (c *Cache) journal(m manifestLine) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest == nil {
		return fmt.Errorf("sweep: journal: cache is closed")
	}
	if _, err := c.manifest.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	if err := c.manifest.Sync(); err != nil {
		return fmt.Errorf("sweep: journal: %w", err)
	}
	return nil
}

// Compact rewrites the manifest journal down to one record per live
// entry: every "done" key (sorted by hash, so the output is deterministic)
// followed by every still-standing "failed" key. The journal is
// append-only during normal operation — every Put and PutFailure adds a
// line, and a key that fails, succeeds on retry, or is re-journaled across
// sweeps accumulates superseded records — so a long-lived cache directory
// grows without bound until compacted. The rewrite goes through a
// temporary file that is fully written, synced, and atomically renamed
// over the manifest, so a crash mid-compaction leaves either the old
// journal or the new one, never a truncated hybrid. A torn final line in
// the input journal (a crash mid-append) was already dropped at replay
// and simply vanishes. Compact returns the number of records written.
func (c *Cache) Compact() (records int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest == nil {
		return 0, fmt.Errorf("sweep: compact: cache is closed")
	}
	var lines []manifestLine
	var hashes []string
	for h := range c.done {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		lines = append(lines, manifestLine{Hash: h, Key: c.done[h], Status: "done"})
	}
	hashes = hashes[:0]
	for h := range c.failed {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		f := c.failed[h]
		lines = append(lines, manifestLine{Hash: h, Key: f.Key, Status: "failed", Err: f.Err})
	}

	tmp, err := os.CreateTemp(c.dir, ".manifest.tmp*")
	if err != nil {
		return 0, fmt.Errorf("sweep: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for _, m := range lines {
		data, err := json.Marshal(m)
		if err != nil {
			tmp.Close()
			return 0, fmt.Errorf("sweep: compact: %w", err)
		}
		if _, err := tmp.Write(append(data, '\n')); err != nil {
			tmp.Close()
			return 0, fmt.Errorf("sweep: compact: %w", err)
		}
	}
	if err := errors.Join(tmp.Sync(), tmp.Close()); err != nil {
		return 0, fmt.Errorf("sweep: compact: %w", err)
	}
	// Swap the live append handle: close, rename, reopen. Appends cannot
	// race this (the cache mutex is held), and a rename failure leaves the
	// old journal intact, so reopening it keeps the cache serviceable.
	if err := c.manifest.Close(); err != nil {
		c.manifest = nil
		return 0, fmt.Errorf("sweep: compact: %w", err)
	}
	c.manifest = nil
	if err := os.Rename(tmp.Name(), c.manifestPath()); err != nil {
		f, reopenErr := os.OpenFile(c.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
		if reopenErr == nil {
			c.manifest = f
		}
		return 0, fmt.Errorf("sweep: compact: %w", errors.Join(err, reopenErr))
	}
	f, err := os.OpenFile(c.manifestPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return 0, fmt.Errorf("sweep: compact: reopen manifest: %w", err)
	}
	c.manifest = f
	return len(lines), nil
}

// Close releases the manifest handle. Reads and writes after Close fail.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.manifest == nil {
		return nil
	}
	err := c.manifest.Close()
	c.manifest = nil
	return err
}

// Status summarizes the journal for reporting.
type Status struct {
	// Done and Failed count distinct job keys by latest journaled state.
	Done, Failed int
	// Failures lists the failed keys with their journaled errors, sorted
	// by key for deterministic output.
	Failures []Failure
}

// Failure pairs a failed job key with its journaled error.
type Failure struct {
	// Key is the failed job's canonical key.
	Key string
	// Err is the journaled error text.
	Err string
}

// Status reports the cache's current contents.
func (c *Cache) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Done: len(c.done), Failed: len(c.failed)}
	var hashes []string
	for h := range c.failed {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		st.Failures = append(st.Failures, c.failed[h])
	}
	return st
}
