// Package sweep is the experiment orchestrator: a deterministic parallel
// job runner for simulation sweeps with a content-addressed result cache
// and a crash-safe manifest journal.
//
// The paper's evaluation is a large matrix of independent NWO runs — six
// applications plus WORKER across the whole protocol spectrum on machines
// of 16 to 256 nodes — that cost the authors machine-months of serial
// simulation. Every point in that matrix is an isolated, deterministic
// computation: a (program, machine configuration) pair that always
// produces the same result. That makes the matrix embarrassingly parallel
// and perfectly cacheable, and this package exploits both properties:
//
//   - a Job is a canonical, hashable description of one run;
//   - a Runner executes jobs on a bounded worker pool with per-job panic
//     recovery, cycle/wall budgets, a retry policy, and context
//     cancellation, merging results back in submission (matrix) order so
//     sweep output is byte-identical to a serial run at any worker count;
//   - a Cache persists each finished result under the SHA-256 of its
//     job key, journaled in an append-only JSONL manifest, so a killed
//     sweep resumes by skipping finished jobs and an unchanged matrix
//     re-runs as pure cache hits.
//
// The package is part of the lint-enforced simulation core: everything
// outside the explicitly annotated worker-pool handoff follows the
// determinism contract.
package sweep
