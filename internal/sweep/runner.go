package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	//lint:allow determinism(wall budgets bound real execution time of runaway jobs; simulated results never depend on it)
	"time"

	"swex/internal/machine"
	"swex/internal/sim"
)

// Config parameterizes a Runner.
type Config struct {
	// Workers bounds simultaneous simulations (<= 0 means GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, opens a content-addressed disk cache
	// there; completed jobs persist and sweeps resume across processes.
	CacheDir string
	// Salt is extra key material mixed into every job hash, for isolating
	// experimental branches that share a cache directory.
	Salt string
	// CycleBudget is the default per-job simulated-cycle limit applied
	// when Job.Limit is zero (0 = unbounded). A job exceeding its budget
	// becomes a failure record, not a hung sweep.
	CycleBudget sim.Cycle
	// WallBudget, when positive, marks any job whose execution took
	// longer than this wall-clock duration as failed. It cannot preempt a
	// running simulation (use CycleBudget for that); it exists to flag
	// pathological configurations in long unattended sweeps. Wall-budget
	// failures depend on machine speed and are therefore the one
	// intentionally nondeterministic feature of the runner; leave it zero
	// when byte-identical sweep reports matter.
	WallBudget time.Duration
	// Retries is how many times a failed job is re-executed before its
	// failure is recorded (panics included; the simulator is
	// deterministic, so this matters mainly for wall-budget and
	// resource-exhaustion failures).
	Retries int
	// OnExecute, when set, is called once per actual simulation execution
	// (not per cache hit), before the run starts. It is the test hook for
	// asserting execution counts; it runs on worker goroutines and must
	// be safe for concurrent use.
	OnExecute func(Job)
	// SimWorkers, when > 1, runs every executed job on the conservative
	// parallel engine with that many shard workers (machine.Config's
	// SimWorkers knob). It is a runner property, not a job property, and
	// deliberately absent from Job.Key: parallel results are byte-identical
	// to serial (DESIGN.md §14), so a cache entry produced at any worker
	// count serves every other. Jobs that set their own Config.SimWorkers
	// keep it.
	SimWorkers int
}

// Runner executes job matrices. It memoizes results in process, optionally
// persists them through a Cache, and is safe for use from one goroutine at
// a time (the worker pool is internal).
type Runner struct {
	cfg   Config
	cache *Cache

	mu    sync.Mutex
	memo  map[string]Result // key hash -> finished result
	execs map[string]int    // key hash -> simulation executions
	total int
}

// NewRunner builds a runner, opening the disk cache when configured.
func NewRunner(cfg Config) (*Runner, error) {
	r := &Runner{
		cfg:   cfg,
		memo:  make(map[string]Result),
		execs: make(map[string]int),
	}
	if cfg.CacheDir != "" {
		c, err := OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		r.cache = c
	}
	return r, nil
}

// MustNewRunner is NewRunner for configurations that cannot fail (no disk
// cache).
func MustNewRunner(cfg Config) *Runner {
	r, err := NewRunner(cfg)
	if err != nil {
		panic(fmt.Sprintf("sweep: runner construction failed: %v", err))
	}
	return r
}

// Close releases the disk cache, if any.
func (r *Runner) Close() error {
	if r.cache == nil {
		return nil
	}
	return r.cache.Close()
}

// Cache exposes the runner's disk cache (nil when memory-only).
func (r *Runner) Cache() *Cache { return r.cache }

// Workers reports the effective worker count.
func (r *Runner) Workers() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Outcome is the per-job verdict of a sweep, in submission order.
type Outcome struct {
	// Job echoes the submitted job.
	Job Job
	// Key is the job's canonical cache key; empty means the job
	// description itself was invalid.
	Key string
	// Hash is the SHA-256 of Key, the cache and journal identifier.
	Hash string
	// Result is valid when Err is nil.
	Result Result
	// Err records an invalid description, a panic, a budget violation, a
	// simulation error, or context cancellation.
	Err error
	// Cached marks results served without executing a simulation (from
	// the in-process memo or the disk cache).
	Cached bool
	// CacheErr records a failure to persist an otherwise valid result;
	// Result still holds.
	CacheErr error
}

// String names a job for error messages.
func (j Job) String() string {
	if j.Program.App == LitmusName {
		return fmt.Sprintf("%s(%s) on %d nodes under %s",
			j.Program.App, j.Program.Litmus, j.Config.Nodes, j.Config.Spec.Name)
	}
	return fmt.Sprintf("%s(set=%d,iters=%d,quick=%v) on %d nodes under %s",
		j.Program.App, j.Program.SetSize, j.Program.Iters, j.Program.Quick,
		j.Config.Nodes, j.Config.Spec.Name)
}

// Sweep executes the matrix and returns one outcome per job, index-aligned
// with the input. Identical jobs are executed once and fanned out, results
// are merged in submission order, and the output is a pure function of the
// job list — byte-identical at any worker count, with or without a warm
// cache — except where WallBudget introduces machine-speed failures.
func (r *Runner) Sweep(ctx context.Context, jobs []Job) []Outcome {
	outcomes := make([]Outcome, len(jobs))

	// Resolve canonical identities and deduplicate: one task per distinct
	// key hash, in first-occurrence order.
	type task struct {
		key     string
		hash    string
		job     Job
		indices []int
	}
	var tasks []*task
	byHash := make(map[string]*task)
	for i, job := range jobs {
		outcomes[i].Job = job
		key, err := job.Key(r.cfg.Salt)
		if err != nil {
			outcomes[i].Err = err
			continue
		}
		hash := HashKey(key)
		outcomes[i].Key, outcomes[i].Hash = key, hash
		if t, ok := byHash[hash]; ok {
			t.indices = append(t.indices, i)
			continue
		}
		t := &task{key: key, hash: hash, job: job, indices: []int{i}}
		byHash[hash] = t
		tasks = append(tasks, t)
	}

	// Serve memo and disk-cache hits without scheduling.
	var pending []*task
	for _, t := range tasks {
		if res, ok := r.lookup(t.key, t.hash); ok {
			for _, i := range t.indices {
				outcomes[i].Result, outcomes[i].Cached = res, true
			}
			continue
		}
		pending = append(pending, t)
	}

	// Execute the remainder on the pool and fan each verdict out.
	results := make([]Outcome, len(pending))
	runPool(r.Workers(), len(pending), func(ti int) {
		t := pending[ti]
		o := &results[ti]
		if err := ctx.Err(); err != nil {
			o.Err = err
			return
		}
		res, err := r.executeWithRetry(t.job, t.key)
		if err != nil {
			o.Err = err
			if r.cache != nil {
				o.CacheErr = r.cache.PutFailure(t.key, err)
			}
			return
		}
		o.Result = res
		r.mu.Lock()
		r.memo[t.hash] = res
		r.mu.Unlock()
		if r.cache != nil {
			o.CacheErr = r.cache.Put(t.key, res)
		}
	})
	for ti, t := range pending {
		for _, i := range t.indices {
			outcomes[i].Result = results[ti].Result
			outcomes[i].Err = results[ti].Err
			outcomes[i].CacheErr = results[ti].CacheErr
		}
	}
	return outcomes
}

// Run is Sweep with fail-fast semantics: it returns the results in
// submission order, or the first failure (by submission order, so the
// error is deterministic too).
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	outcomes := r.Sweep(ctx, jobs)
	results := make([]Result, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("sweep: job %d (%s): %w", i, o.Job, o.Err)
		}
		results[i] = o.Result
	}
	return results, nil
}

// lookup consults the in-process memo, then the disk cache (promoting disk
// hits into the memo).
func (r *Runner) lookup(key, hash string) (Result, bool) {
	r.mu.Lock()
	res, ok := r.memo[hash]
	r.mu.Unlock()
	if ok {
		return res, true
	}
	if r.cache == nil {
		return Result{}, false
	}
	res, ok = r.cache.Get(key)
	if ok {
		r.mu.Lock()
		r.memo[hash] = res
		r.mu.Unlock()
	}
	return res, ok
}

// executeWithRetry applies the retry policy around single executions.
func (r *Runner) executeWithRetry(job Job, key string) (Result, error) {
	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		res, err := r.executeOnce(job, key)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	if r.cfg.Retries > 0 {
		lastErr = fmt.Errorf("%w (after %d attempts)", lastErr, r.cfg.Retries+1)
	}
	return Result{}, lastErr
}

// executeOnce runs one simulation under panic recovery and the budgets.
func (r *Runner) executeOnce(job Job, key string) (res Result, err error) {
	defer func() {
		//lint:allow panic-hygiene(a panicking OnExecute hook must become a failure record, not a crashed sweep; the stack is preserved in the error)
		if rec := recover(); rec != nil {
			err = fmt.Errorf("sweep: job panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	r.mu.Lock()
	hash := HashKey(key)
	r.execs[hash]++
	r.total++
	r.mu.Unlock()
	if r.cfg.OnExecute != nil {
		r.cfg.OnExecute(job)
	}

	if r.cfg.SimWorkers > 1 && job.Config.SimWorkers == 0 {
		job.Config.SimWorkers = r.cfg.SimWorkers
	}
	var start time.Time
	if r.cfg.WallBudget > 0 {
		start = time.Now()
	}
	res, err = Execute(job, r.cfg.CycleBudget)
	if err != nil {
		return Result{}, err
	}
	if r.cfg.WallBudget > 0 {
		if elapsed := time.Since(start); elapsed > r.cfg.WallBudget {
			return Result{}, fmt.Errorf("sweep: job exceeded wall budget (%v > %v)", elapsed, r.cfg.WallBudget)
		}
	}
	return res, nil
}

// Execute runs one job's simulation to completion and captures its
// cacheable result. It is the single-execution primitive shared by the
// in-process Runner and the distributed swexd worker: the lease holder
// calls Execute, and because the simulator is deterministic, the Result is
// a pure function of the job — two Execute calls for equal job keys, in
// any process on any machine, return interchangeable results. A panicking
// simulation becomes an error carrying the stack (a failure record, never
// a crashed worker). defaultLimit bounds the run in simulated cycles when
// Job.Limit is zero (0 = unbounded).
func Execute(job Job, defaultLimit sim.Cycle) (res Result, err error) {
	defer func() {
		//lint:allow panic-hygiene(a panicking simulation must become a failure record, not a crashed worker; the stack is preserved in the error)
		if rec := recover(); rec != nil {
			err = fmt.Errorf("sweep: job panicked: %v\n%s", rec, debug.Stack())
		}
	}()
	prog, err := job.Program.Resolve()
	if err != nil {
		return Result{}, err
	}
	m, err := machine.New(job.Config)
	if err != nil {
		return Result{}, err
	}
	limit := job.Limit
	if limit == 0 {
		limit = defaultLimit
	}
	mres, inst, err := prog.Run(m, limit)
	if err != nil {
		return Result{}, err
	}
	res = CaptureResult(mres)
	if inst.Observations != nil {
		res.Obs = inst.Observations.Values()
	}
	return res, nil
}

// ExecCount reports how many times the job's simulation actually ran under
// this runner (cache hits do not count). Invalid jobs report zero.
func (r *Runner) ExecCount(job Job) int {
	key, err := job.Key(r.cfg.Salt)
	if err != nil {
		return 0
	}
	hash := HashKey(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.execs[hash]
}

// TotalExecs reports the runner-wide simulation execution count.
func (r *Runner) TotalExecs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// runPool distributes task indices 0..n-1 over a fixed worker pool. Work
// is handed out through an atomic counter, so no channels are involved and
// the only scheduler freedom is which worker runs which task — invisible
// in the output, which is merged by task index.
func runPool(workers, n int, run func(int)) {
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow determinism(worker-pool handoff: results are merged by task index, so scheduling cannot reach the output)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}
