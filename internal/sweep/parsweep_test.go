package sweep

import (
	"context"
	"reflect"
	"testing"

	"swex/internal/machine"
	"swex/internal/proto"
)

// TestSimWorkersOutsideCacheKey pins the design decision that the
// parallel-engine worker count is a runner property, invisible to the
// cache: a job's canonical key must not change when Config.SimWorkers
// does, because serial and parallel runs produce byte-identical results
// and must share cache entries.
func TestSimWorkersOutsideCacheKey(t *testing.T) {
	serial := WorkerJob(2, 3, machine.Config{Nodes: 8, Spec: proto.LimitLESS(2)})
	par := serial
	par.Config.SimWorkers = 4
	ks, err := serial.Key("")
	if err != nil {
		t.Fatal(err)
	}
	kp, err := par.Key("")
	if err != nil {
		t.Fatal(err)
	}
	if ks != kp {
		t.Fatalf("SimWorkers leaked into the cache key:\nserial: %s\nparallel: %s", ks, kp)
	}
}

// TestRunnerSimWorkersMatchesSerial runs the same matrix on a serial
// runner and a SimWorkers=4 runner and requires identical results — the
// sweep-level face of the engine's byte-identity guarantee.
func TestRunnerSimWorkersMatchesSerial(t *testing.T) {
	jobs := smallMatrix(6)
	serial := MustNewRunner(Config{Workers: 2})
	parallel := MustNewRunner(Config{Workers: 2, SimWorkers: 4})
	want, err := serial.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("SimWorkers=4 runner diverged from serial:\nserial:   %+v\nparallel: %+v", want, got)
	}
}
