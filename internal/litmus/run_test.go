package litmus

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/sim"
)

// execute runs p on a fresh machine and returns the per-thread
// observations.
func execute(t *testing.T, p Program, cfg machine.Config) [][]uint64 {
	t.Helper()
	m := machine.MustNew(cfg)
	inst := p.setup(m)
	if _, err := m.Run(inst.Thread, 50_000_000); err != nil {
		t.Fatalf("running %s: %v", p, err)
	}
	obs, err := ThreadObs(p, inst.Observations.Values(), cfg.ThreadsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestCorpusSequentiallyConsistentAcrossSpectrum(t *testing.T) {
	for _, alias := range []string{"full", "h1ack", "dir1sw"} {
		spec, err := SpecByAlias(alias)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range Corpus() {
			t.Run(alias+"/"+tc.Name, func(t *testing.T) {
				obs := execute(t, tc.Prog, machine.DefaultConfig(4, spec))
				v, err := CheckSC(tc.Prog, obs)
				if err != nil {
					t.Fatal(err)
				}
				if !v.OK {
					t.Fatalf("%s under %s is not sequentially consistent: obs %v, witness %q",
						tc.Name, alias, obs, v.Witness)
				}
			})
		}
	}
}

func TestPerVariableSpecOverride(t *testing.T) {
	// The same MP shape with each variable pinned to a different
	// spectrum point must still be sequentially consistent. The base
	// machine must carry protocol software for the overrides to have
	// handlers to run on, so it is h1ack rather than full-map.
	p := MustParse("v2;c0:dir1sw;c1:h2;t0:W0:1,W1:2;t1:R1,R0")
	obs := execute(t, p, machine.DefaultConfig(4, mustSpec(t, "h1ack")))
	v, err := CheckSC(p, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("mixed-protocol MP violated SC: obs %v, witness %q", obs, v.Witness)
	}
}

func TestWeakenedFixtureFlagged(t *testing.T) {
	// The negative control: a machine that drops the first invalidation
	// must produce the forbidden message-passing outcome, and the oracle
	// must flag it with a constraint-cycle witness.
	p, cfg := WeakenedFixture(4)
	obs := execute(t, p, cfg)
	want := [][]uint64{nil, {0, 2, 0}}
	if !reflect.DeepEqual(obs, want) {
		t.Fatalf("weakened machine observed %v, fixture expects %v (stale data after new flag)", obs, want)
	}
	v, err := CheckConstraints(p, obs)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("oracle passed the lost-invalidation outcome")
	}
	if !strings.Contains(v.Witness, "cycle") {
		t.Fatalf("violation witness is not a constraint cycle: %q", v.Witness)
	}
}

func TestWeakenedFixtureCleanWithoutFault(t *testing.T) {
	// The same program on an unweakened machine is the positive control.
	p, cfg := WeakenedFixture(4)
	cfg.LoseInv = 0
	obs := execute(t, p, cfg)
	v, err := CheckSC(p, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("unweakened machine violated SC: obs %v, witness %q", obs, v.Witness)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, tc := range Corpus() {
		enc := tc.Prog.String()
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if !reflect.DeepEqual(back, tc.Prog) {
			t.Fatalf("%s: round trip changed the program: %q -> %q", tc.Name, enc, back.String())
		}
	}
	r := sim.NewRand(7)
	for i := 0; i < 50; i++ {
		p := Generate(r, GenConfig{Threads: 3, Vars: 3, Ops: 5, SpecAliases: []string{"full", "dir1sw"}})
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("generated program %q does not parse: %v", p.String(), err)
		}
		if back.String() != p.String() {
			t.Fatalf("round trip changed encoding: %q -> %q", p.String(), back.String())
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, enc := range []string{
		"",
		"x2;t0:R0",
		"v0;t0:R0",
		"v2;t1:R0",
		"v2;t0:R0;t0:R1",
		"v2;t0:Q0",
		"v2;t0:W0:0",
		"v2;t0:W0:5,W1:5",
		"v2;t0:R5",
		"v2;c5:full;t0:R0",
		"v2;c0:bogus;t0:R0",
		"v2;t0:R0;c0:full",
		"v2;t0:C0",
	} {
		if _, err := Parse(enc); err == nil {
			t.Errorf("Parse(%q) accepted a malformed encoding", enc)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(sim.NewRand(99), GenConfig{Threads: 4, Vars: 3, Ops: 6, SpecAliases: SpecAliases()})
	b := Generate(sim.NewRand(99), GenConfig{Threads: 4, Vars: 3, Ops: 6, SpecAliases: SpecAliases()})
	if a.String() != b.String() {
		t.Fatalf("equal seeds generated different programs:\n%s\n%s", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadObsRejectsStray(t *testing.T) {
	p := MustParse("v1;t0:R0;t1:W0:1")
	if _, err := ThreadObs(p, [][]uint64{{0}, {}, {3}, {}}, 1); err == nil {
		t.Error("observations on a node beyond the program accepted")
	}
	if _, err := ThreadObs(p, [][]uint64{{0}}, 1); err == nil {
		t.Error("dump smaller than the thread count accepted")
	}
	got, err := ThreadObs(p, [][]uint64{{0}, {}, {}, {}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]uint64{{0}, {}}) {
		t.Fatalf("ThreadObs = %v", got)
	}
}

func TestCompatibleBase(t *testing.T) {
	cases := []struct {
		prog string
		base string
		ok   bool
	}{
		{"v1;t0:R0", "full", true},
		{"v1;t0:R0", "h0", true},
		{"v1;c0:full;t0:R0", "full", true},
		{"v1;c0:full;t0:R0", "h0", true},
		{"v1;c0:h2;t0:R0", "full", false},
		{"v1;c0:h2;t0:R0", "h1ack", true},
		{"v1;c0:h2;t0:R0", "h0", false},
		{"v1;c0:h0;t0:R0", "h0", true},
		{"v1;c0:h0;t0:R0", "h2", false},
		{"v2;c0:h0;c1:h2;t0:R0", "h0", false},
		{"v2;c0:h0;c1:h2;t0:R0", "h2", false},
		{"v1;c0:dir1sw;t0:R0", "h1lack", true},
	}
	for _, tc := range cases {
		got := CompatibleBase(MustParse(tc.prog), mustSpec(t, tc.base))
		if got != tc.ok {
			t.Errorf("CompatibleBase(%q, %s) = %v, want %v", tc.prog, tc.base, got, tc.ok)
		}
	}
	// The rule must agree with the machine: every compatible pairing
	// configures, every incompatible one is rejected.
	p := MustParse("v2;c0:h2;c1:dir1sw;t0:W0:1,W1:2;t1:R1,R0")
	for _, alias := range SpecAliases() {
		base := mustSpec(t, alias)
		m := machine.MustNew(machine.DefaultConfig(4, base))
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("%v", r)
				}
			}()
			p.setup(m)
			return nil
		}()
		if CompatibleBase(p, base) != (err == nil) {
			t.Errorf("CompatibleBase(%s) = %v but setup err = %v", alias, CompatibleBase(p, base), err)
		}
	}
}

func TestSpecAliasesResolve(t *testing.T) {
	for _, alias := range SpecAliases() {
		if _, err := SpecByAlias(alias); err != nil {
			t.Errorf("alias %q does not resolve: %v", alias, err)
		}
	}
	if _, err := SpecByAlias("bogus"); err == nil {
		t.Error("unknown alias resolved")
	}
}

func mustSpec(t *testing.T, alias string) proto.Spec {
	t.Helper()
	spec, err := SpecByAlias(alias)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
