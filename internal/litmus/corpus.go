package litmus

// Test is a named hand-written litmus test.
type Test struct {
	// Name is the test's classical litmus name.
	Name string
	// Prog is the program.
	Prog Program
	// About describes the shape and the outcome sequential consistency
	// forbids.
	About string
}

// Corpus returns the classical hand-written litmus tests, the fixed
// complement to Generate's random programs: the shapes memory-model
// folklore says find weak-ordering bugs fastest. Every test's forbidden
// outcome is an outcome the oracle must reject; the fuzz driver runs the
// corpus alongside generated programs at every spectrum point.
func Corpus() []Test {
	return []Test{
		{
			Name:  "SB",
			Prog:  MustParse("v2;t0:W0:1,R1;t1:W1:2,R0"),
			About: "store buffering: both threads observing the initial values (0,0) is forbidden",
		},
		{
			Name:  "MP",
			Prog:  MustParse("v2;t0:W0:1,W1:2;t1:R1,R0"),
			About: "message passing: observing the flag (2) but stale data (0) is forbidden",
		},
		{
			Name:  "IRIW",
			Prog:  MustParse("v2;t0:W0:1;t1:W1:2;t2:R0,R1;t3:R1,R0"),
			About: "independent reads of independent writes: the two readers disagreeing on the write order is forbidden",
		},
		{
			Name:  "CoRR",
			Prog:  MustParse("v1;t0:W0:1;t1:R0,R0"),
			About: "coherence of read-read: one thread observing the new then the old value of a single location is forbidden",
		},
		{
			Name:  "WRC",
			Prog:  MustParse("v2;t0:W0:1;t1:R0,W1:2;t2:R1,R0"),
			About: "write-to-read causality: the final reader observing the dependent write (2) but not its cause (1) is forbidden",
		},
		{
			Name:  "RMW",
			Prog:  MustParse("v1;t0:X0:1;t1:X0:2"),
			About: "atomic exchange: both exchanges observing the initial value is forbidden",
		},
	}
}
