package litmus

import (
	"testing"

	"swex/internal/machine"
	"swex/internal/memtier"
)

// TestCorpusSequentiallyConsistentAcrossMemTiers runs the litmus corpus on
// the memory-system families the machine-spectrum study sweeps and checks
// the sequential-consistency oracle on every outcome. The tier models
// stretch and queue the directory's memory accesses (and, under the
// directoryless machine, every access), which shifts the interleavings the
// programs observe — the oracle must still find a sequential order for all
// of them. Programs whose per-variable overrides the base machine cannot
// host are skipped (CompatibleBase), as in the fuzzing pipeline.
func TestCorpusSequentiallyConsistentAcrossMemTiers(t *testing.T) {
	cases := []struct {
		name string
		base string
		tier memtier.Config
	}{
		{"full-disaggregated", "full", memtier.DefaultDisaggregated()},
		{"full-nvm", "full", memtier.DefaultTiered()},
		{"h1ack-disaggregated", "h1ack", memtier.DefaultDisaggregated()},
		{"dls-flat", "dls", memtier.Config{}},
		{"dls-disaggregated", "dls", memtier.DefaultDisaggregated()},
		{"dls-nvm", "dls", memtier.DefaultTiered()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec := mustSpec(t, tc.base)
			ran := 0
			for _, entry := range Corpus() {
				if !CompatibleBase(entry.Prog, spec) {
					continue
				}
				ran++
				cfg := machine.DefaultConfig(4, spec)
				cfg.MemTier = tc.tier
				obs := execute(t, entry.Prog, cfg)
				v, err := CheckSC(entry.Prog, obs)
				if err != nil {
					t.Fatalf("%s: %v", entry.Name, err)
				}
				if !v.OK {
					t.Fatalf("%s is not sequentially consistent on %s: obs %v, witness %q",
						entry.Name, tc.name, obs, v.Witness)
				}
			}
			if ran == 0 {
				t.Fatal("no corpus program is compatible with the base machine")
			}
		})
	}
}

// TestWeakenedFixtureStillCaughtUnderDisaggregation is the negative
// control on the memory-tier axis: the machine weakened to drop an
// invalidation must still produce a non-SC outcome when its home memory
// sits across a far tier — the added latency must not mask the lost
// invalidation from the oracle.
func TestWeakenedFixtureStillCaughtUnderDisaggregation(t *testing.T) {
	p, cfg := WeakenedFixture(4)
	cfg.MemTier = memtier.DefaultDisaggregated()
	obs := execute(t, p, cfg)
	v, err := CheckSC(p, obs)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatalf("weakened machine produced a sequentially consistent outcome under disaggregation: obs %v", obs)
	}
}
