package litmus

import (
	"strings"
	"testing"

	"swex/internal/sim"
)

// both runs the two decision procedures and fails unless they agree.
func both(t *testing.T, p Program, obs [][]uint64) Verdict {
	t.Helper()
	ve, err := CheckExhaustive(p, obs)
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	vc, err := CheckConstraints(p, obs)
	if err != nil {
		t.Fatalf("constraints: %v", err)
	}
	if ve.OK != vc.OK {
		t.Fatalf("paths disagree on %s obs %v: exhaustive %v, constraints %v (witness %q)",
			p, obs, ve.OK, vc.OK, vc.Witness)
	}
	return vc
}

func TestLitmusVerdicts(t *testing.T) {
	cases := []struct {
		name string
		prog string
		obs  [][]uint64
		ok   bool
	}{
		{"SB both zero", "v2;t0:W0:1,R1;t1:W1:2,R0", [][]uint64{{0}, {0}}, false},
		{"SB both new", "v2;t0:W0:1,R1;t1:W1:2,R0", [][]uint64{{2}, {1}}, true},
		{"SB one zero", "v2;t0:W0:1,R1;t1:W1:2,R0", [][]uint64{{0}, {1}}, true},
		{"MP flag without data", "v2;t0:W0:1,W1:2;t1:R1,R0", [][]uint64{{}, {2, 0}}, false},
		{"MP flag and data", "v2;t0:W0:1,W1:2;t1:R1,R0", [][]uint64{{}, {2, 1}}, true},
		{"MP neither", "v2;t0:W0:1,W1:2;t1:R1,R0", [][]uint64{{}, {0, 0}}, true},
		{"MP data early", "v2;t0:W0:1,W1:2;t1:R1,R0", [][]uint64{{}, {0, 1}}, true},
		{"IRIW disagree on order", "v2;t0:W0:1;t1:W1:2;t2:R0,R1;t3:R1,R0", [][]uint64{{}, {}, {1, 0}, {2, 0}}, false},
		{"IRIW agree on order", "v2;t0:W0:1;t1:W1:2;t2:R0,R1;t3:R1,R0", [][]uint64{{}, {}, {1, 0}, {2, 1}}, true},
		{"CoRR new then old", "v1;t0:W0:1;t1:R0,R0", [][]uint64{{}, {1, 0}}, false},
		{"CoRR old then new", "v1;t0:W0:1;t1:R0,R0", [][]uint64{{}, {0, 1}}, true},
		{"CoRR stable", "v1;t0:W0:1;t1:R0,R0", [][]uint64{{}, {1, 1}}, true},
		{"WRC causality dropped", "v2;t0:W0:1;t1:R0,W1:2;t2:R1,R0", [][]uint64{{}, {1}, {2, 0}}, false},
		{"WRC causality kept", "v2;t0:W0:1;t1:R0,W1:2;t2:R1,R0", [][]uint64{{}, {1}, {2, 1}}, true},
		{"RMW both observe zero", "v1;t0:X0:1;t1:X0:2", [][]uint64{{0}, {0}}, false},
		{"RMW mutual observation", "v1;t0:X0:1;t1:X0:2", [][]uint64{{2}, {1}}, false},
		{"RMW serialized", "v1;t0:X0:1;t1:X0:2", [][]uint64{{0}, {1}}, true},
		{"RMW serialized other way", "v1;t0:X0:1;t1:X0:2", [][]uint64{{2}, {0}}, true},
		{"thin air", "v2;t0:W0:1,W1:2;t1:R1,R0", [][]uint64{{}, {5, 0}}, false},
		{"cross-variable value", "v2;t0:W0:1,W1:2;t1:R1,R0", [][]uint64{{}, {1, 0}}, false},
		{"fence and compute ignored", "v2;t0:W0:1,F0,C100,W1:2;t1:R1,C50,R0", [][]uint64{{}, {2, 1}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := MustParse(tc.prog)
			v := both(t, p, tc.obs)
			if v.OK != tc.ok {
				t.Fatalf("verdict %v, want %v (witness %q)", v.OK, tc.ok, v.Witness)
			}
			if !v.OK && v.Witness == "" {
				t.Fatal("violation verdict carries no witness")
			}
		})
	}
}

func TestWeakenedOutcomeWitnessCycle(t *testing.T) {
	// The weakened fixture's forbidden outcome must produce a printable
	// constraint cycle naming the flag read and the stale data read.
	p, _ := WeakenedFixture(4)
	obs := [][]uint64{{}, {0, 2, 0}}
	v, err := CheckConstraints(p, obs)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("lost-invalidation outcome judged sequentially consistent")
	}
	if !strings.Contains(v.Witness, "cycle") {
		t.Fatalf("witness does not show the constraint cycle: %q", v.Witness)
	}
	for _, frag := range []string{"R(v1)=2", "R(v0)=0", "W(v0)=1"} {
		if !strings.Contains(v.Witness, frag) {
			t.Fatalf("witness %q does not mention %s", v.Witness, frag)
		}
	}
}

func TestCheckSCPicksBothPaths(t *testing.T) {
	// Small program: exhaustive path. Large program (> exhaustiveLimit
	// semantic ops): constraint path. Both must judge correctly.
	small := MustParse("v2;t0:W0:1,R1;t1:W1:2,R0")
	if v, err := CheckSC(small, [][]uint64{{0}, {0}}); err != nil || v.OK {
		t.Fatalf("small forbidden: verdict %+v err %v", v, err)
	}
	large := MustParse("v2;t0:W0:1,W1:2,W0:3,W1:4,W0:5,W1:6;t1:R1,R0,R1,R0,R1,R0")
	if v, err := CheckSC(large, [][]uint64{{}, {2, 1, 4, 3, 6, 5}}); err != nil || !v.OK {
		t.Fatalf("large allowed: verdict %+v err %v", v, err)
	}
	if v, err := CheckSC(large, [][]uint64{{}, {2, 1, 4, 3, 6, 3}}); err != nil || v.OK {
		t.Fatalf("large stale reread: verdict %+v err %v", v, err)
	}
}

func TestObservationShapeErrors(t *testing.T) {
	p := MustParse("v2;t0:W0:1;t1:R0,R1")
	if _, err := CheckSC(p, [][]uint64{{}}); err == nil {
		t.Error("missing thread list accepted")
	}
	if _, err := CheckSC(p, [][]uint64{{}, {0}}); err == nil {
		t.Error("short observation list accepted")
	}
	if _, err := CheckSC(p, [][]uint64{{}, {0, 0, 0}}); err == nil {
		t.Error("long observation list accepted")
	}
	if _, err := CheckSC(p, [][]uint64{{7}, {0, 0}}); err == nil {
		t.Error("observations on a non-observing thread accepted")
	}
}

// plausibleObs draws random observations for p: each observing operation
// sees either zero or one of the program's written values. Most draws are
// not SC — the point is that both decision procedures agree either way.
func plausibleObs(r *sim.Rand, p Program) [][]uint64 {
	var vals []uint64
	for _, ops := range p.Threads {
		for _, op := range ops {
			if op.Kind == OpWrite || op.Kind == OpRMW {
				vals = append(vals, op.Arg)
			}
		}
	}
	obs := make([][]uint64, len(p.Threads))
	for t := range p.Threads {
		obs[t] = make([]uint64, 0, p.ObsCount(t))
		for i := 0; i < p.ObsCount(t); i++ {
			if len(vals) == 0 || r.Intn(3) == 0 {
				obs[t] = append(obs[t], 0)
			} else {
				obs[t] = append(obs[t], vals[r.Intn(len(vals))])
			}
		}
	}
	return obs
}

func TestCrossValidatePaths(t *testing.T) {
	// The two decision procedures are both exact, so on any program and
	// any observation set they must agree. Drive them with hundreds of
	// random programs and random (mostly non-SC) observations.
	r := sim.NewRand(20260808)
	agree, violations := 0, 0
	for i := 0; i < 400; i++ {
		p := Generate(r, GenConfig{Threads: 1 + r.Intn(3), Vars: 1 + r.Intn(2), Ops: 1 + r.Intn(4)})
		obs := plausibleObs(r, p)
		v := both(t, p, obs)
		agree++
		if !v.OK {
			violations++
		}
	}
	if violations == 0 {
		t.Error("random observations never violated SC; the cross-validation is vacuous")
	}
	t.Logf("%d programs cross-validated, %d non-SC observation sets", agree, violations)
}

func FuzzCheckAgreement(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(20261994))
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := sim.NewRand(seed)
		p := Generate(r, GenConfig{Threads: 1 + r.Intn(3), Vars: 1 + r.Intn(2), Ops: 1 + r.Intn(4)})
		obs := plausibleObs(r, p)
		ve, errE := CheckExhaustive(p, obs)
		vc, errC := CheckConstraints(p, obs)
		if (errE == nil) != (errC == nil) {
			t.Fatalf("error disagreement: exhaustive %v, constraints %v", errE, errC)
		}
		if errE == nil && ve.OK != vc.OK {
			t.Fatalf("verdict disagreement on %s obs %v: exhaustive %v, constraints %v",
				p, obs, ve.OK, vc.OK)
		}
	})
}
