package litmus

import "swex/internal/sim"

// GenConfig shapes generated programs.
type GenConfig struct {
	// Threads is the thread count (default 2).
	Threads int
	// Vars is the shared-variable count (default 2).
	Vars int
	// Ops is the per-thread operation count (default 4).
	Ops int
	// SpecAliases, when non-empty, is the pool of per-variable protocol
	// overrides: each variable independently draws one with probability
	// one half, exercising mixed-protocol machines.
	SpecAliases []string
}

// Generate draws one random litmus program from r. Generation is a pure
// function of the rand state — equal seeds yield equal program sequences —
// and every generated program passes Validate: written values are the
// consecutive integers 1, 2, ..., so they are unique and nonzero and the
// oracle can derive reads-from relations from observations alone.
func Generate(r *sim.Rand, cfg GenConfig) Program {
	threads, vars, opsPer := cfg.Threads, cfg.Vars, cfg.Ops
	if threads < 1 {
		threads = 2
	}
	if vars < 1 {
		vars = 2
	}
	if opsPer < 1 {
		opsPer = 4
	}
	if threads > maxThreads {
		threads = maxThreads
	}
	if vars > maxVars {
		vars = maxVars
	}
	if opsPer > maxOpsPerThread {
		opsPer = maxOpsPerThread
	}
	p := Program{Vars: vars, Threads: make([][]Op, threads)}
	next := uint64(1)
	for t := range p.Threads {
		ops := make([]Op, 0, opsPer)
		for len(ops) < opsPer {
			v := r.Intn(vars)
			switch k := r.Intn(100); {
			case k < 40:
				ops = append(ops, Op{Kind: OpRead, Var: v})
			case k < 70:
				ops = append(ops, Op{Kind: OpWrite, Var: v, Arg: next})
				next++
			case k < 80:
				ops = append(ops, Op{Kind: OpRMW, Var: v, Arg: next})
				next++
			case k < 92:
				ops = append(ops, Op{Kind: OpCompute, Arg: uint64(50 * (1 + r.Intn(8)))})
			default:
				ops = append(ops, Op{Kind: OpFence, Var: v})
			}
		}
		p.Threads[t] = ops
	}
	for v := 0; v < vars && len(cfg.SpecAliases) > 0; v++ {
		if r.Intn(2) == 0 {
			continue
		}
		if p.Specs == nil {
			p.Specs = make(map[int]string)
		}
		p.Specs[v] = cfg.SpecAliases[r.Intn(len(cfg.SpecAliases))]
	}
	return p
}
