package litmus

import (
	"fmt"
	"sort"

	"swex/internal/apps"
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/shm"
	"swex/internal/sim"
)

// AppName is the apps.Program name litmus programs run under; the sweep
// layer uses it as the ProgramRef.App marker for litmus jobs.
const AppName = "LITMUS"

// SpecByAlias resolves a protocol-spectrum alias — the flag vocabulary of
// the command-line tools: h0, h1ack, h1lack, h1, h2, h3, h4, h5, full,
// dir1sw, dls.
func SpecByAlias(alias string) (proto.Spec, error) {
	switch alias {
	case "h0":
		return proto.SoftwareOnly(), nil
	case "h1ack":
		return proto.OnePointer(proto.AckSW), nil
	case "h1lack":
		return proto.OnePointer(proto.AckLACK), nil
	case "h1":
		return proto.OnePointer(proto.AckHW), nil
	case "h2":
		return proto.LimitLESS(2), nil
	case "h3":
		return proto.LimitLESS(3), nil
	case "h4":
		return proto.LimitLESS(4), nil
	case "h5":
		return proto.LimitLESS(5), nil
	case "full":
		return proto.FullMap(), nil
	case "dir1sw":
		return proto.Dir1SW(), nil
	case "dls":
		return proto.Directoryless(), nil
	}
	return proto.Spec{}, fmt.Errorf("litmus: unknown protocol alias %q", alias)
}

// SpecAliases returns every spectrum alias SpecByAlias resolves, ordered
// from most hardware (full map) to least (software-only, the one-pointer
// Dir_1 SW variant, and finally the directoryless machine, which has no
// directory at all).
func SpecAliases() []string {
	return []string{"full", "h5", "h4", "h3", "h2", "h1", "h1lack", "h1ack", "h0", "dir1sw", "dls"}
}

// CompatibleBase reports whether a machine built on the base spec can
// host every per-variable protocol override of p. This mirrors
// proto.HomeCtl.Configure's expressibility rule: a hardware-only
// override (full map) is expressible anywhere, while a software
// override needs the base machine to carry protocol software of the
// same family — the software-only Dir_nH_0 handlers and the
// limited-pointer extension handlers are different programs, and a
// full-map machine installs none at all. Unknown override aliases also
// report false.
func CompatibleBase(p Program, base proto.Spec) bool {
	for v := 0; v < p.Vars; v++ {
		alias, ok := p.Specs[v]
		if !ok {
			continue
		}
		spec, err := SpecByAlias(alias)
		if err != nil {
			return false
		}
		// Directoryless is a machine-wide mode, not a per-block policy: a
		// block cannot opt in or out of having a directory.
		if spec.Directoryless != base.Directoryless {
			return false
		}
		if !spec.UsesSoftware() {
			continue
		}
		if !base.UsesSoftware() || spec.SoftwareOnly != base.SoftwareOnly {
			return false
		}
	}
	return true
}

// AppProgram compiles the litmus program into an apps.Program: setup
// allocates each variable its own cache block (staggered so no two
// variables share a direct-mapped cache set), applies per-variable
// protocol overrides, and returns an instance whose threads execute the
// program's operations and log observations into Instance.Observations.
func (p Program) AppProgram() apps.Program {
	return apps.Program{Name: AppName, Setup: p.setup}
}

// setup builds the program's shared state on m.
func (p Program) setup(m *machine.Machine) apps.Instance {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("litmus: %v", err))
	}
	nodes := m.Mem.Nodes()
	if len(p.Threads) > nodes {
		panic(fmt.Sprintf("litmus: %d threads on a %d-node machine", len(p.Threads), nodes))
	}
	tpn := m.Cfg.ThreadsPerNode
	if tpn < 1 {
		tpn = 1
	}
	// One block per variable, homes striped across nodes. The pad before
	// each allocation staggers the block index within the segment, so no
	// two variables ever map to the same direct-mapped cache set — a
	// conflict eviction would silently refresh a stale copy and hide the
	// very reorderings the tests exist to hunt.
	addrs := make([]mem.Addr, p.Vars)
	probes := make(map[string]mem.Addr, p.Vars)
	blocks := make([]mem.Addr, p.Vars)
	for i := range addrs {
		home := mem.NodeID(i % nodes)
		if i > 0 {
			m.Mem.AllocOn(home, i*mem.WordsPerBlock)
		}
		addrs[i] = m.Mem.AllocOn(home, mem.WordsPerBlock)
		probes[fmt.Sprintf("v%d", i)] = addrs[i]
		blocks[i] = mem.BlockOf(addrs[i]).Base()
	}
	if len(p.Specs) > 0 {
		vs := make([]int, 0, len(p.Specs))
		for v := range p.Specs {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		for _, v := range vs {
			spec, err := SpecByAlias(p.Specs[v])
			if err != nil {
				panic(fmt.Sprintf("litmus: %v", err))
			}
			if err := m.ConfigureBlock(mem.BlockOf(addrs[v]), spec); err != nil {
				panic(fmt.Sprintf("litmus: configuring v%d: %v", v, err))
			}
		}
	}
	log := shm.NewObsLog(nodes, tpn)
	threads := p.Threads
	return apps.Instance{
		Thread: func(env *proc.Env) {
			t := int(env.ID())
			if t >= len(threads) || env.Thread() != 0 {
				return
			}
			for _, op := range threads[t] {
				switch op.Kind {
				case OpRead:
					log.Observe(env, addrs[op.Var])
				case OpWrite:
					env.Write(addrs[op.Var], op.Arg)
				case OpRMW:
					v := op.Arg
					old := env.RMW(addrs[op.Var], func(uint64) uint64 { return v })
					log.Record(env, old)
				case OpFence:
					env.CheckIn(addrs[op.Var])
				case OpCompute:
					env.Compute(sim.Cycle(op.Arg))
				}
			}
		},
		Probes:       probes,
		Regions:      map[string][]mem.Addr{"vars": blocks},
		Observations: log,
	}
}

// ThreadObs extracts the program threads' observation lists from a
// machine-shaped observation dump (nodes × threadsPerNode dense slots, as
// captured into sweep results): thread t of the program ran as context 0
// of node t. Observations in any other slot — a context the program never
// uses — are an error.
func ThreadObs(p Program, dump [][]uint64, threadsPerNode int) ([][]uint64, error) {
	if threadsPerNode < 1 {
		threadsPerNode = 1
	}
	out := make([][]uint64, len(p.Threads))
	for t := range p.Threads {
		slot := t * threadsPerNode
		if slot >= len(dump) {
			return nil, fmt.Errorf("litmus: dump has %d slots, thread %d needs slot %d", len(dump), t, slot)
		}
		out[t] = dump[slot]
	}
	for i, vals := range dump {
		if len(vals) == 0 {
			continue
		}
		if i%threadsPerNode != 0 || i/threadsPerNode >= len(p.Threads) {
			return nil, fmt.Errorf("litmus: slot %d logged %d values but no program thread ran there", i, len(vals))
		}
	}
	return out, nil
}

// WeakenedFixture returns the oracle's negative control: a
// message-passing-shaped program and a machine configuration weakened to
// silently drop the run's first invalidation (machine.Config.LoseInv = 1;
// the protocol checker is off by default). The writer publishes data then
// a flag; the dropped invalidation leaves the reader's cached copy of the
// data stale, so the reader observes the flag's new value and then the
// data's old one — an outcome no sequentially consistent order explains,
// which the oracle must flag with a constraint-cycle witness. A fuzzing
// pipeline that fails to flag this run is broken.
func WeakenedFixture(nodes int) (Program, machine.Config) {
	if nodes < 2 {
		panic(fmt.Sprintf("litmus: weakened fixture needs at least 2 nodes, got %d", nodes))
	}
	// t1 caches v0 early; t0 writes v0 (the invalidation is dropped),
	// then the flag v1. t1's delay outlasts both writes, so it reads the
	// new flag and the stale data from its unmolested cached block.
	p := MustParse("v2;t0:C200,W0:1,W1:2;t1:R0,C600,R1,R0")
	cfg := machine.DefaultConfig(nodes, proto.FullMap())
	cfg.LoseInv = 1
	return p, cfg
}
