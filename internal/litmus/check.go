package litmus

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Verdict is the oracle's judgment of one run's observations.
type Verdict struct {
	// OK reports that some sequentially consistent total order explains
	// every observation.
	OK bool
	// Witness explains a failed verdict: the unsatisfiable constraint
	// cycle (constraint path) or a note that the interleaving search
	// was exhausted (exhaustive path). Empty when OK.
	Witness string
}

// exhaustiveLimit is the semantic-operation count up to which CheckSC
// prefers the exhaustive interleaving search; larger programs use the
// constraint checker, whose cost grows with events rather than
// interleavings.
const exhaustiveLimit = 10

// maxEvents bounds the constraint checker's event count (initial writes
// plus semantic operations): reachability rows are single 64-bit masks.
const maxEvents = 64

// CheckSC decides whether the observations are sequentially consistent,
// picking the cheaper complete decision procedure for the program's size.
// Both procedures are exact — they accept exactly the SC-explainable
// observation sets — so the choice never changes the verdict, a property
// the package's fuzz test cross-validates.
func CheckSC(p Program, obs [][]uint64) (Verdict, error) {
	total := 0
	for _, ops := range p.Threads {
		for _, op := range ops {
			if op.Kind == OpRead || op.Kind == OpWrite || op.Kind == OpRMW {
				total++
			}
		}
	}
	if total <= exhaustiveLimit {
		return CheckExhaustive(p, obs)
	}
	return CheckConstraints(p, obs)
}

// semOp is one memory-semantics operation (fences and compute delays
// affect timing, never SC-explainability, and are dropped).
type semOp struct {
	kind OpKind
	v    int
	arg  uint64
	obs  uint64
}

// semantics validates the program and observation shapes and returns each
// thread's semantic operations with the values its reads and exchanges
// are claimed to have observed.
func semantics(p Program, obs [][]uint64) ([][]semOp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(obs) != len(p.Threads) {
		return nil, fmt.Errorf("litmus: %d observation lists for %d threads", len(obs), len(p.Threads))
	}
	out := make([][]semOp, len(p.Threads))
	for t, ops := range p.Threads {
		k := 0
		for _, op := range ops {
			switch op.Kind {
			case OpRead, OpRMW:
				if k >= len(obs[t]) {
					return nil, fmt.Errorf("litmus: thread %d logged %d values but the program observes %d times", t, len(obs[t]), p.ObsCount(t))
				}
				out[t] = append(out[t], semOp{kind: op.Kind, v: op.Var, arg: op.Arg, obs: obs[t][k]})
				k++
			case OpWrite:
				out[t] = append(out[t], semOp{kind: OpWrite, v: op.Var, arg: op.Arg})
			case OpFence, OpCompute:
				// No memory semantics: fences are vacuous under SC and
				// compute delays only shift timing.
			default:
				panic("litmus: unknown operation kind")
			}
		}
		if k != len(obs[t]) {
			return nil, fmt.Errorf("litmus: thread %d logged %d values but the program observes %d times", t, len(obs[t]), k)
		}
	}
	return out, nil
}

// CheckExhaustive decides SC-explainability by depth-first search over
// thread interleavings, memoizing dead states (per-thread progress plus
// memory contents), so each reachable state is expanded once. Exact for
// any program, practical for small ones.
func CheckExhaustive(p Program, obs [][]uint64) (Verdict, error) {
	sem, err := semantics(p, obs)
	if err != nil {
		return Verdict{}, err
	}
	T := len(sem)
	pcs := make([]int, T)
	memv := make([]uint64, p.Vars)
	dead := make(map[string]bool)
	keyBuf := make([]byte, 0, 64)
	key := func() string {
		keyBuf = keyBuf[:0]
		for _, pc := range pcs {
			keyBuf = append(keyBuf, byte(pc))
		}
		for _, m := range memv {
			keyBuf = strconv.AppendUint(keyBuf, m, 10)
			keyBuf = append(keyBuf, ',')
		}
		return string(keyBuf)
	}
	var dfs func() bool
	dfs = func() bool {
		done := true
		for t := 0; t < T; t++ {
			if pcs[t] < len(sem[t]) {
				done = false
				break
			}
		}
		if done {
			return true
		}
		k := key()
		if dead[k] {
			return false
		}
		for t := 0; t < T; t++ {
			if pcs[t] >= len(sem[t]) {
				continue
			}
			op := sem[t][pcs[t]]
			old := memv[op.v]
			switch op.kind {
			case OpRead:
				if old != op.obs {
					continue
				}
			case OpRMW:
				if old != op.obs {
					continue
				}
				memv[op.v] = op.arg
			case OpWrite:
				memv[op.v] = op.arg
			case OpFence, OpCompute:
				panic("litmus: non-semantic op in interleaving search")
			default:
				panic("litmus: unknown operation kind")
			}
			pcs[t]++
			if dfs() {
				return true
			}
			pcs[t]--
			memv[op.v] = old
		}
		dead[k] = true
		return false
	}
	if dfs() {
		return Verdict{OK: true}, nil
	}
	return Verdict{Witness: "exhaustive interleaving search: no sequentially consistent total order explains the observations"}, nil
}

// cev is one event of the constraint checker: a read, write, or exchange
// (which is both), or a variable's virtual initial write (t == -1).
type cev struct {
	t, i int
	kind OpKind
	v    int
	val  uint64
	obs  uint64
	rf   int
}

// CheckConstraints decides SC-explainability by constraint propagation
// over a happens-before graph. Reads-from edges are derived from the
// program's unique write values; program order, reads-from, per-location
// coherence order, and from-read edges are then saturated to a fixpoint
// (a cycle is a violation with a printable witness), and any same-location
// write pairs the constraints leave unordered are completed by
// backtracking — so the procedure is exact: observations pass if and only
// if po ∪ rf ∪ ws ∪ fr is acyclic for some per-location write order,
// the classical characterization of sequential consistency.
func CheckConstraints(p Program, obs [][]uint64) (Verdict, error) {
	sem, err := semantics(p, obs)
	if err != nil {
		return Verdict{}, err
	}
	n := p.Vars
	for _, ops := range sem {
		n += len(ops)
	}
	if n > maxEvents {
		return Verdict{}, fmt.Errorf("litmus: %d events exceed the constraint checker's %d-event bound", n, maxEvents)
	}

	// Events 0..Vars-1 are the initial writes; thread events follow,
	// contiguous per thread.
	evs := make([]cev, 0, n)
	for v := 0; v < p.Vars; v++ {
		evs = append(evs, cev{t: -1, i: -1, kind: OpWrite, v: v, rf: -1})
	}
	writerOf := make(map[uint64]int)
	firstOf := make([]int, len(sem))
	for t, ops := range sem {
		firstOf[t] = -1
		for i, op := range ops {
			id := len(evs)
			if i == 0 {
				firstOf[t] = id
			}
			evs = append(evs, cev{t: t, i: i, kind: op.kind, v: op.v, val: op.arg, obs: op.obs, rf: -1})
			if op.kind != OpRead {
				writerOf[op.arg] = id
			}
		}
	}

	// Resolve reads-from: zero is the initial value (no program write is
	// zero), any other value names its unique writer.
	for id := range evs {
		e := &evs[id]
		if e.t < 0 || e.kind == OpWrite {
			continue
		}
		if e.obs == 0 {
			e.rf = e.v
			continue
		}
		w, ok := writerOf[e.obs]
		if !ok || evs[w].v != e.v {
			return Verdict{Witness: fmt.Sprintf("%s observed value %d, which no write to v%d produced (out-of-thin-air or cross-variable value)", evName(evs[id]), e.obs, e.v)}, nil
		}
		if w == id {
			return Verdict{Witness: fmt.Sprintf("%s observed the value it wrote itself", evName(evs[id]))}, nil
		}
		e.rf = w
	}

	adj := make([]uint64, len(evs))
	kind := make(map[[2]int]string)
	addEdge := func(adj []uint64, a, b int, k string) bool {
		if adj[a]&(1<<uint(b)) != 0 {
			return false
		}
		adj[a] |= 1 << uint(b)
		if _, ok := kind[[2]int{a, b}]; !ok {
			kind[[2]int{a, b}] = k
		}
		return true
	}
	for id, e := range evs {
		if e.t >= 0 && e.i > 0 {
			addEdge(adj, id-1, id, "po")
		}
		if e.rf >= 0 {
			addEdge(adj, e.rf, id, "rf")
		}
	}
	for v := 0; v < p.Vars; v++ {
		for _, f := range firstOf {
			if f >= 0 && f != v {
				addEdge(adj, v, f, "init")
			}
		}
	}

	closure := func(adj []uint64) []uint64 {
		r := make([]uint64, len(adj))
		copy(r, adj)
		for changed := true; changed; {
			changed = false
			for i := range r {
				row := r[i]
				for m := row; m != 0; {
					j := bits.TrailingZeros64(m)
					m &^= 1 << uint(j)
					if nr := row | r[j]; nr != row {
						row = nr
						changed = true
					}
				}
				r[i] = row
			}
		}
		return r
	}

	// saturate derives coherence (ws) and from-read (fr) edges to a
	// fixpoint: a write that happens-before a read must be
	// coherence-before the write the read observed, and a read
	// happens-before every same-location write that is coherence-after
	// its source. Exchanges, being reads and writes at once, get their
	// atomicity (no write between source and exchange) from the same two
	// rules. Returns the reachability closure and whether it is cyclic.
	saturate := func(adj []uint64) ([]uint64, bool) {
		for {
			reach := closure(adj)
			for i := range reach {
				if reach[i]&(1<<uint(i)) != 0 {
					return reach, true
				}
			}
			changed := false
			for id, e := range evs {
				if e.rf < 0 {
					continue
				}
				w := e.rf
				for w2, e2 := range evs {
					if e2.v != e.v || e2.kind == OpRead || w2 == w || w2 == id {
						continue
					}
					if reach[w2]&(1<<uint(id)) != 0 && reach[w2]&(1<<uint(w)) == 0 {
						if addEdge(adj, w2, w, "ws") {
							changed = true
						}
					}
					if reach[w]&(1<<uint(w2)) != 0 && reach[id]&(1<<uint(w2)) == 0 {
						if addEdge(adj, id, w2, "fr") {
							changed = true
						}
					}
				}
			}
			if !changed {
				return reach, false
			}
		}
	}

	reach, cyclic := saturate(adj)
	if cyclic {
		return Verdict{Witness: cycleWitness(evs, adj, reach, kind)}, nil
	}

	// Completion: order same-location write pairs the constraints left
	// free, backtracking on induced cycles. Only pairs with at least one
	// observed member matter — a write no read observed (never an rf
	// source, not an exchange) generates no from-read edges, so once
	// every observed pair is ordered acyclically, any topological order
	// of the rest completes the coherence order without perturbing a
	// read: an intervening write between a read's source and the read
	// would itself form an observed pair, already ordered to one side.
	// Restricting the branching this way keeps the search polynomial on
	// the common fuzzing case of many unobserved writes.
	observed := make([]bool, len(evs))
	for _, e := range evs {
		if e.rf >= 0 {
			observed[e.rf] = true
		}
	}
	for id, e := range evs {
		if e.kind == OpRMW {
			observed[id] = true
		}
	}
	var solve func(adj []uint64) bool
	solve = func(adj []uint64) bool {
		reach, cyclic := saturate(adj)
		if cyclic {
			return false
		}
		for a := 0; a < len(evs); a++ {
			if evs[a].kind == OpRead {
				continue
			}
			for b := a + 1; b < len(evs); b++ {
				if evs[b].kind == OpRead || evs[b].v != evs[a].v {
					continue
				}
				if !observed[a] && !observed[b] {
					continue
				}
				if reach[a]&(1<<uint(b)) != 0 || reach[b]&(1<<uint(a)) != 0 {
					continue
				}
				adj1 := append([]uint64(nil), adj...)
				addEdge(adj1, a, b, "ws")
				if solve(adj1) {
					return true
				}
				adj2 := append([]uint64(nil), adj...)
				addEdge(adj2, b, a, "ws")
				return solve(adj2)
			}
		}
		return true
	}
	if !solve(append([]uint64(nil), adj...)) {
		return Verdict{Witness: "constraint completion: every per-location write order creates a happens-before cycle"}, nil
	}
	return Verdict{OK: true}, nil
}

// cycleWitness renders one cycle of the saturated constraint graph as a
// chain of events and edge kinds: a breadth-first search from a cyclic
// event back to itself, preferring real thread events over the virtual
// initial writes so the witness shows the program-order and reads-from
// chain rather than a degenerate two-edge detour through an init event.
func cycleWitness(evs []cev, adj, reach []uint64, kind map[[2]int]string) string {
	start := -1
	for i := range reach {
		if reach[i]&(1<<uint(i)) != 0 && evs[i].t >= 0 {
			start = i
			break
		}
	}
	if start < 0 {
		for i := range reach {
			if reach[i]&(1<<uint(i)) != 0 {
				start = i
				break
			}
		}
	}
	if start < 0 {
		return ""
	}
	// Two BFS passes: first through thread events only, then through
	// everything. BFS visits each event once, so it always terminates,
	// and the first closed walk found is a shortest cycle through start.
	for pass := 0; pass < 2; pass++ {
		prev := make([]int, len(evs))
		for i := range prev {
			prev[i] = -2
		}
		prev[start] = -1
		queue := []int{start}
		closer := -1
		for len(queue) > 0 && closer < 0 {
			cur := queue[0]
			queue = queue[1:]
			for j := 0; j < len(evs) && closer < 0; j++ {
				if adj[cur]&(1<<uint(j)) == 0 {
					continue
				}
				if j == start {
					closer = cur
					break
				}
				if pass == 0 && evs[j].t < 0 {
					continue
				}
				if prev[j] == -2 {
					prev[j] = cur
					queue = append(queue, j)
				}
			}
		}
		if closer < 0 {
			continue
		}
		var path []int
		for cur := closer; cur != -1; cur = prev[cur] {
			path = append(path, cur)
		}
		var b strings.Builder
		b.WriteString("unsatisfiable constraint cycle: ")
		for i := len(path) - 1; i >= 0; i-- {
			next := start
			if i > 0 {
				next = path[i-1]
			}
			b.WriteString(evName(evs[path[i]]))
			fmt.Fprintf(&b, " -%s-> ", kind[[2]int{path[i], next}])
		}
		b.WriteString(evName(evs[start]))
		return b.String()
	}
	return "unsatisfiable happens-before constraints (cycle rendering failed)"
}

// evName renders one constraint event for witnesses.
func evName(e cev) string {
	if e.t < 0 {
		return fmt.Sprintf("init(v%d=0)", e.v)
	}
	switch e.kind {
	case OpRead:
		return fmt.Sprintf("t%d#%d:R(v%d)=%d", e.t, e.i, e.v, e.obs)
	case OpRMW:
		return fmt.Sprintf("t%d#%d:X(v%d,%d)=%d", e.t, e.i, e.v, e.val, e.obs)
	case OpWrite:
		return fmt.Sprintf("t%d#%d:W(v%d)=%d", e.t, e.i, e.v, e.val)
	case OpFence, OpCompute:
		panic("litmus: non-semantic op in constraint event")
	default:
		panic("litmus: unknown operation kind")
	}
}
