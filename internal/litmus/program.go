// Package litmus implements memory-model fuzzing for the simulator: small
// concurrent programs (litmus tests), a generator that draws them at
// random, a hand-written corpus of the classical shapes, a compiler onto
// the simulated machine, and a sequential-consistency oracle that judges
// the observations each run produced.
//
// The protocol spectrum of the paper — Dir_H full-map hardware through
// Dir_1 SW software-extended directories — must be invisible to programs:
// every point implements the same memory model. The model checker
// (internal/mc) verifies that exhaustively for small protocol
// configurations; litmus complements it statistically. Thousands of
// generated programs run on the full cycle-level simulator across the
// spectrum, and every run's observed read values must be explainable by
// some total order of the program's operations consistent with each
// thread's program order (Lamport's sequential consistency). A protocol
// bug that lives in the layers the model checker abstracts away — cache
// replacement, network timing, handler occupancy — surfaces here as an
// unexplainable observation with a concrete constraint-cycle witness.
package litmus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OpKind enumerates the operations a litmus thread can perform.
type OpKind int

const (
	// OpRead loads a shared variable; the observed value is logged.
	OpRead OpKind = iota
	// OpWrite stores Op.Arg to a shared variable.
	OpWrite
	// OpRMW atomically exchanges a shared variable's value with Op.Arg;
	// the old value is logged.
	OpRMW
	// OpFence checks the variable's block back in to its home node (a
	// CICO release), forcing the thread's next access to refetch it.
	OpFence
	// OpCompute spins Op.Arg cycles of local work, perturbing the
	// timing of the surrounding memory operations.
	OpCompute
)

// Op is one operation of a litmus thread.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Var is the shared-variable index (ignored by OpCompute).
	Var int
	// Arg is the value written (OpWrite, OpRMW) or the cycle count
	// (OpCompute); unused otherwise.
	Arg uint64
}

// Program is a litmus test: per-thread operation sequences over a small
// set of shared variables, all initially zero. Every value written
// anywhere in the program is distinct and nonzero, so an observed value
// identifies the write that produced it — the property the
// sequential-consistency checker's reads-from derivation relies on.
type Program struct {
	// Vars is the shared-variable count; variables are indexed
	// 0..Vars-1.
	Vars int
	// Threads holds each thread's operations in program order. Thread t
	// runs on node t of the machine.
	Threads [][]Op
	// Specs optionally overrides the coherence protocol of individual
	// variables' blocks, keyed by variable index, with values from the
	// spectrum-alias vocabulary of SpecByAlias. Absent variables use
	// the machine's configured protocol.
	Specs map[int]string
}

// Program size caps: they keep every valid program within reach of both
// oracle decision procedures (the constraint checker's event bound is
// maxEvents) and bound the key length a program contributes to sweep-job
// hashing.
const (
	maxVars          = 16
	maxThreads       = 16
	maxOpsPerThread  = 64
	maxComputeCycles = 1_000_000
)

// String renders the canonical encoding, parseable by Parse:
//
//	v<vars>[;c<var>:<alias>]...[;t<thread>:<op>,<op>,...]...
//
// Spec overrides appear in ascending variable order, threads in index
// order, so equal programs encode identically. The encoding contains no
// '|' or '=' characters and therefore embeds verbatim in sweep job keys.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", p.Vars)
	if len(p.Specs) > 0 {
		vs := make([]int, 0, len(p.Specs))
		for v := range p.Specs {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		for _, v := range vs {
			fmt.Fprintf(&b, ";c%d:%s", v, p.Specs[v])
		}
	}
	for t, ops := range p.Threads {
		fmt.Fprintf(&b, ";t%d:", t)
		for j, op := range ops {
			if j > 0 {
				b.WriteByte(',')
			}
			switch op.Kind {
			case OpRead:
				fmt.Fprintf(&b, "R%d", op.Var)
			case OpWrite:
				fmt.Fprintf(&b, "W%d:%d", op.Var, op.Arg)
			case OpRMW:
				fmt.Fprintf(&b, "X%d:%d", op.Var, op.Arg)
			case OpFence:
				fmt.Fprintf(&b, "F%d", op.Var)
			case OpCompute:
				fmt.Fprintf(&b, "C%d", op.Arg)
			}
		}
	}
	return b.String()
}

// Parse decodes the canonical encoding produced by Program.String and
// validates the result. Threads must appear in index order starting at
// zero; spec overrides must precede the first thread.
func Parse(s string) (Program, error) {
	parts := strings.Split(s, ";")
	if len(parts[0]) < 2 || parts[0][0] != 'v' {
		return Program{}, fmt.Errorf("litmus: encoding must start with v<vars> (got %q)", parts[0])
	}
	vars, err := strconv.Atoi(parts[0][1:])
	if err != nil {
		return Program{}, fmt.Errorf("litmus: variable count in %q: %v", parts[0], err)
	}
	p := Program{Vars: vars}
	i := 1
	for ; i < len(parts) && strings.HasPrefix(parts[i], "c"); i++ {
		vstr, alias, ok := strings.Cut(parts[i][1:], ":")
		if !ok {
			return Program{}, fmt.Errorf("litmus: spec override %q is not c<var>:<alias>", parts[i])
		}
		v, err := strconv.Atoi(vstr)
		if err != nil {
			return Program{}, fmt.Errorf("litmus: spec override variable in %q: %v", parts[i], err)
		}
		if p.Specs == nil {
			p.Specs = make(map[int]string)
		}
		if _, dup := p.Specs[v]; dup {
			return Program{}, fmt.Errorf("litmus: duplicate spec override for v%d", v)
		}
		p.Specs[v] = alias
	}
	for ; i < len(parts); i++ {
		want := fmt.Sprintf("t%d:", len(p.Threads))
		if !strings.HasPrefix(parts[i], want) {
			return Program{}, fmt.Errorf("litmus: expected section %q, got %q (threads must be in order, overrides before threads)", want, parts[i])
		}
		var ops []Op
		for _, tok := range strings.Split(parts[i][len(want):], ",") {
			op, err := parseOp(tok)
			if err != nil {
				return Program{}, err
			}
			ops = append(ops, op)
		}
		p.Threads = append(p.Threads, ops)
	}
	if err := p.Validate(); err != nil {
		return Program{}, err
	}
	return p, nil
}

// MustParse is Parse for known-good encodings (the corpus, fixtures).
func MustParse(s string) Program {
	p, err := Parse(s)
	if err != nil {
		panic(fmt.Sprintf("litmus: %v", err))
	}
	return p
}

// parseOp decodes one operation token.
func parseOp(tok string) (Op, error) {
	if len(tok) < 2 {
		return Op{}, fmt.Errorf("litmus: malformed operation %q", tok)
	}
	rest := tok[1:]
	switch tok[0] {
	case 'R', 'F':
		v, err := strconv.Atoi(rest)
		if err != nil {
			return Op{}, fmt.Errorf("litmus: variable in %q: %v", tok, err)
		}
		kind := OpRead
		if tok[0] == 'F' {
			kind = OpFence
		}
		return Op{Kind: kind, Var: v}, nil
	case 'W', 'X':
		vstr, valstr, ok := strings.Cut(rest, ":")
		if !ok {
			return Op{}, fmt.Errorf("litmus: %q is not %c<var>:<val>", tok, tok[0])
		}
		v, err := strconv.Atoi(vstr)
		if err != nil {
			return Op{}, fmt.Errorf("litmus: variable in %q: %v", tok, err)
		}
		val, err := strconv.ParseUint(valstr, 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("litmus: value in %q: %v", tok, err)
		}
		kind := OpWrite
		if tok[0] == 'X' {
			kind = OpRMW
		}
		return Op{Kind: kind, Var: v, Arg: val}, nil
	case 'C':
		c, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("litmus: cycles in %q: %v", tok, err)
		}
		return Op{Kind: OpCompute, Arg: c}, nil
	}
	return Op{}, fmt.Errorf("litmus: unknown operation %q", tok)
}

// Validate checks the program's well-formedness: size caps, variable
// indices in range, write values unique and nonzero across the whole
// program, compute delays positive and bounded, and spec overrides that
// name real variables and resolvable spectrum aliases.
func (p Program) Validate() error {
	if p.Vars < 1 || p.Vars > maxVars {
		return fmt.Errorf("litmus: %d variables (want 1..%d)", p.Vars, maxVars)
	}
	if len(p.Threads) < 1 || len(p.Threads) > maxThreads {
		return fmt.Errorf("litmus: %d threads (want 1..%d)", len(p.Threads), maxThreads)
	}
	seen := make(map[uint64]bool)
	for t, ops := range p.Threads {
		if len(ops) > maxOpsPerThread {
			return fmt.Errorf("litmus: thread %d has %d operations (max %d)", t, len(ops), maxOpsPerThread)
		}
		for j, op := range ops {
			switch op.Kind {
			case OpRead, OpWrite, OpRMW, OpFence:
				if op.Var < 0 || op.Var >= p.Vars {
					return fmt.Errorf("litmus: thread %d op %d references v%d of %d variables", t, j, op.Var, p.Vars)
				}
			case OpCompute:
				if op.Arg < 1 || op.Arg > maxComputeCycles {
					return fmt.Errorf("litmus: thread %d op %d computes %d cycles (want 1..%d)", t, j, op.Arg, maxComputeCycles)
				}
			default:
				return fmt.Errorf("litmus: thread %d op %d has unknown kind %d", t, j, op.Kind)
			}
			if op.Kind == OpWrite || op.Kind == OpRMW {
				if op.Arg == 0 {
					return fmt.Errorf("litmus: thread %d op %d writes zero (reserved for the initial value)", t, j)
				}
				if seen[op.Arg] {
					return fmt.Errorf("litmus: value %d written twice (written values must be unique)", op.Arg)
				}
				seen[op.Arg] = true
			}
		}
	}
	if len(p.Specs) > 0 {
		vs := make([]int, 0, len(p.Specs))
		for v := range p.Specs {
			vs = append(vs, v)
		}
		sort.Ints(vs)
		for _, v := range vs {
			if v < 0 || v >= p.Vars {
				return fmt.Errorf("litmus: spec override for v%d of %d variables", v, p.Vars)
			}
			if _, err := SpecByAlias(p.Specs[v]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ObsCount reports how many values thread t logs when the program runs:
// one per read and one per exchange.
func (p Program) ObsCount(t int) int {
	n := 0
	for _, op := range p.Threads[t] {
		if op.Kind == OpRead || op.Kind == OpRMW {
			n++
		}
	}
	return n
}
