// Package ext implements the protocol extension software: the directory
// structures, memory management, and handler logic that run on a node's
// processor when the hardware directory traps.
//
// Two implementations mirror the paper's Section 4. The flexible coherence
// interface (the C version) pays for generality: protocol-specific
// dispatch, saved state for function calls, hash-table administration, and
// support for non-Alewife protocols all cost cycles. The hand-tuned
// assembly version specializes directory allocation and lookup, roughly
// halving handler latency, but supports only Dir_nH_5S_NB.
//
// The data structures here are real — a hash table of extended directory
// entries and a free-list allocator — and the cost model charges cycles
// for the activities the handlers actually perform, so the Table 1 and
// Table 2 measurements emerge from executed code rather than from fixed
// constants.
package ext

import "swex/internal/mem"

// entry is one software-extended directory entry. Small worker sets live
// in the inline array (the paper's memory-usage optimization, Section 5:
// "attempts to reduce the size of the software-extended directory when
// handling small worker sets"); larger sets spill to a bitset.
type entry struct {
	block  mem.Block
	inline [inlineSharers]mem.NodeID
	n      int
	spill  []uint64 // bitset, allocated on demand
	next   *entry   // hash chain / free list link
}

// inlineSharers is the inline capacity before an entry spills; worker sets
// of four or fewer avoid the spill allocation, which is why the
// H1,LACK/H1,ACK/H0 protocols run faster on worker sets of at most four.
const inlineSharers = 4

// add records a sharer, reporting whether it was new.
func (e *entry) add(id mem.NodeID, maxNodes int) bool {
	if e.has(id) {
		return false
	}
	if e.spill == nil && e.n < inlineSharers {
		e.inline[e.n] = id
		e.n++
		return true
	}
	if e.spill == nil {
		e.spill = make([]uint64, (maxNodes+63)/64)
		for i := 0; i < e.n; i++ {
			s := e.inline[i]
			e.spill[s/64] |= 1 << (uint(s) % 64)
		}
	}
	e.spill[id/64] |= 1 << (uint(id) % 64)
	e.n++
	return true
}

func (e *entry) has(id mem.NodeID) bool {
	if e.spill != nil {
		return e.spill[id/64]&(1<<(uint(id)%64)) != 0
	}
	for i := 0; i < e.n; i++ {
		if e.inline[i] == id {
			return true
		}
	}
	return false
}

// sharers lists the recorded nodes in ascending order.
func (e *entry) sharers() []mem.NodeID {
	out := make([]mem.NodeID, 0, e.n)
	if e.spill == nil {
		out = append(out, e.inline[:e.n]...)
		// Inline entries are in insertion order; sort the short list.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	for w, bits := range e.spill {
		for bits != 0 {
			low := bits & (-bits)
			idx := 0
			for low>>uint(idx) != 1 {
				idx++
			}
			out = append(out, mem.NodeID(w*64+idx))
			bits &^= low
		}
	}
	return out
}

// spilled reports whether the entry outgrew its inline storage.
func (e *entry) spilled() bool { return e.spill != nil }

// reset clears an entry for reuse by the free list.
func (e *entry) reset() {
	e.block = 0
	e.n = 0
	e.spill = nil
	e.next = nil
}

// freeList recycles extended directory entries, mirroring the flexible
// interface's "free-listing memory manager" and the assembly version's
// boot-time pre-initialized free list.
type freeList struct {
	head *entry
	// Allocs and Reuses count fresh allocations versus recycled entries;
	// the cost model charges them differently.
	Allocs, Reuses uint64
}

// get returns a clean entry, recycling if possible.
func (f *freeList) get() *entry {
	if f.head != nil {
		e := f.head
		f.head = e.next
		e.next = nil
		f.Reuses++
		return e
	}
	f.Allocs++
	return &entry{}
}

// put recycles an entry.
func (f *freeList) put(e *entry) {
	e.reset()
	e.next = f.head
	f.head = e
}
