package ext

import "swex/internal/mem"

// hashTable maps blocks to extended directory entries with chaining. The
// flexible coherence interface administers a table like this one for every
// protocol; the hand-tuned assembly version sidesteps it by exploiting the
// format of Alewife's hardware directory for direct lookup, which is where
// much of its factor-of-two advantage comes from (Table 2: 80 and 74
// cycles of hash-table administration against N/A).
type hashTable struct {
	buckets []*entry
	n       int
	// Probes counts chain links traversed, a proxy for lookup cost.
	Probes uint64
}

func newHashTable(buckets int) *hashTable {
	if buckets <= 0 {
		buckets = 64
	}
	return &hashTable{buckets: make([]*entry, buckets)}
}

func (h *hashTable) bucket(b mem.Block) int {
	// Multiplicative hash; blocks are sequential in each node's segment,
	// so a plain modulus would cluster.
	x := uint64(b) * 0x9E3779B97F4A7C15
	return int(x % uint64(len(h.buckets)))
}

// lookup finds the entry for b, reporting the chain length probed.
func (h *hashTable) lookup(b mem.Block) (*entry, int) {
	probes := 0
	for e := h.buckets[h.bucket(b)]; e != nil; e = e.next {
		probes++
		h.Probes++
		if e.block == b {
			return e, probes
		}
	}
	return nil, probes
}

// insert links a (fresh) entry for b into the table.
func (h *hashTable) insert(e *entry, b mem.Block) {
	e.block = b
	i := h.bucket(b)
	e.next = h.buckets[i]
	h.buckets[i] = e
	h.n++
}

// remove unlinks and returns the entry for b, if present.
func (h *hashTable) remove(b mem.Block) *entry {
	i := h.bucket(b)
	var prev *entry
	for e := h.buckets[i]; e != nil; e = e.next {
		if e.block == b {
			if prev == nil {
				h.buckets[i] = e.next
			} else {
				prev.next = e.next
			}
			e.next = nil
			h.n--
			return e
		}
		prev = e
	}
	return nil
}

// Len reports the number of extended entries resident.
func (h *hashTable) Len() int { return h.n }
