package ext

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/proto"
	"swex/internal/sim"
	"swex/internal/stats"
)

// Handlers is the machine-wide protocol extension software: one software
// directory per node (extended entries live on the home node whose
// hardware overflowed) plus a shared cost model and measurement ledger.
// It implements proto.Software.
type Handlers struct {
	cost     CostModel
	spec     proto.Spec
	maxNodes int
	nodes    []nodeSW
	parInv   bool
	// Ledger records every handler invocation for Tables 1 and 2.
	Ledger stats.Ledger

	// last is the most recent handler's activity breakdown, kept for the
	// tracing subsystem (proto.BreakdownReporter); lastOK marks it valid.
	last   stats.Breakdown
	lastOK bool

	// key and stage are the conservative-parallel plumbing (DESIGN.md
	// §14). In parallel mode handlers on different homes run
	// concurrently, so ledger records are staged per home — stamped with
	// the issuing event's (cycle, key) via the key hook — and merged into
	// the shared Ledger once, at the end of the run, in the canonical
	// event order (DrainStaged). last/lastOK updates are skipped: they
	// feed tracing, which parallel runs exclude. Nil in serial mode.
	key   func(mem.NodeID) (sim.Cycle, int32, uint64)
	stage []recStage
}

// stagedRec is one deferred ledger record stamped with the (cycle, event
// key) of the handler event that recorded it.
type stagedRec struct {
	at     sim.Cycle
	kOwner int32
	kCnt   uint64
	rec    stats.HandlerRecord
}

// recStage is one home's staged ledger records: guarded indexed stores
// into a buffer whose headroom PrepareShard maintains, plus the drain
// cursor DrainStaged uses.
type recStage struct {
	buf []stagedRec
	n   int
	cur int
}

// nodeSW is one node's software directory state.
type nodeSW struct {
	table *hashTable
	fl    freeList
}

var (
	_ proto.Software          = (*Handlers)(nil)
	_ proto.BreakdownReporter = (*Handlers)(nil)
)

// LastBreakdown implements proto.BreakdownReporter: the per-activity
// breakdown of the most recent handler, when one was recorded (batched
// read segments charge a flat incremental cost with no breakdown).
func (h *Handlers) LastBreakdown() (stats.Breakdown, bool) {
	return h.last, h.lastOK
}

// record notes one handler invocation in the ledger and remembers its
// breakdown for LastBreakdown. In parallel mode the record is staged on
// the handler's home instead (see Handlers.stage).
//
//swex:hotpath
func (h *Handlers) record(home mem.NodeID, rec stats.HandlerRecord) {
	if h.stage != nil {
		st := &h.stage[home]
		if st.n >= len(st.buf) {
			panic("ext: ledger stage overflow: PrepareShard headroom too small for one event")
		}
		at, kO, kC := h.key(home)
		st.buf[st.n] = stagedRec{at: at, kOwner: kO, kCnt: kC, rec: rec}
		st.n++
		return
	}
	h.Ledger.Record(rec)
	h.last = rec.Breakdown
	h.lastOK = true
}

// EnableParallel switches the software into parallel mode: ledger records
// are staged per home, stamped by key (the owning shard's clock and
// current event key), and merged by DrainStaged. Must be called before
// any simulated work.
func (h *Handlers) EnableParallel(key func(mem.NodeID) (sim.Cycle, int32, uint64)) {
	h.key = key
	h.stage = make([]recStage, h.maxNodes)
}

// recHeadroom is the staged-record capacity PrepareShard guarantees per
// event: a single event runs at most one handler (plus the batched-read
// fallback's full-price retry), each recording once.
const recHeadroom = 4

// PrepareShard re-ensures the stage headroom of every home in [lo, hi)
// for the next events events, so the hot record path never allocates.
// One event records into at most one home, so after a call with events=k
// the caller may skip its next k-1 per-event prepare hooks entirely —
// the amortization that keeps this sweep over the shard's homes off the
// per-event cost (machine.runParallel calls it on a countdown).
func (h *Handlers) PrepareShard(lo, hi, events int) {
	for i := lo; i < hi; i++ {
		st := &h.stage[i]
		if need := st.n + events*recHeadroom; need > len(st.buf) {
			grown := make([]stagedRec, need+need/2+16)
			copy(grown, st.buf[:st.n])
			st.buf = grown
		}
	}
}

// StageLen reports how many records home has staged. Barrier-only.
func (h *Handlers) StageLen(home mem.NodeID) int { return h.stage[home].n }

// DrainStaged merges the staged records at or before cut into the shared
// Ledger in the canonical event order — the exact order the serial engine
// appended them in — and resets the stages. The order matters beyond the
// ledger's totals: stats.Ledger.Median stable-sorts by cycle count, so
// the record returned for a median query — its Breakdown in particular —
// depends on insertion order among equal-cycle records; canonical-order
// insertion reproduces the serial engine's exactly. Records after the cut
// are the finish overrun and are discarded (DESIGN.md §14).
func (h *Handlers) DrainStaged(cut sim.Cut) {
	for i := range h.stage {
		h.stage[i].cur = 0
	}
	for {
		best := -1
		var bestAt sim.Cycle
		var bestO int32
		var bestC uint64
		for i := range h.stage {
			st := &h.stage[i]
			if st.cur >= st.n {
				continue
			}
			r := &st.buf[st.cur]
			if best < 0 || sim.KeyLess(r.at, r.kOwner, r.kCnt, bestAt, bestO, bestC) {
				best, bestAt, bestO, bestC = i, r.at, r.kOwner, r.kCnt
			}
		}
		if best < 0 {
			break
		}
		st := &h.stage[best]
		r := &st.buf[st.cur]
		st.cur++
		if !cut.Includes(r.at, r.kOwner, r.kCnt) {
			continue
		}
		h.Ledger.Record(r.rec)
	}
	for i := range h.stage {
		h.stage[i].n = 0
	}
}

// New builds the extension software for an n-node machine running spec
// under the given cost model.
func New(n int, spec proto.Spec, cost CostModel) (*Handlers, error) {
	if cost.Name == "Assembly" && spec.Name != "DirnH5SNB" {
		return nil, fmt.Errorf("ext: the hand-tuned assembly handlers implement only DirnH5SNB, not %s", spec.Name)
	}
	h := &Handlers{
		cost:     cost,
		spec:     spec,
		maxNodes: n,
		nodes:    make([]nodeSW, n),
	}
	for i := range h.nodes {
		h.nodes[i].table = newHashTable(256)
	}
	return h, nil
}

// Cost exposes the active cost model.
func (h *Handlers) Cost() CostModel { return h.cost }

// SetParallelInv enables the parallel-invalidation enhancement: the write
// handler overlaps invalidation transmission with the CMMU instead of
// transmitting sequentially (paper Section 7's dynamic-detection research;
// modeled here as a static configuration).
func (h *Handlers) SetParallelInv(on bool) { h.parInv = on }

func (h *Handlers) home(b mem.Block) *nodeSW {
	return &h.nodes[mem.HomeOfBlock(b)]
}

// smallOpt reports whether the memory-usage optimization applies: the
// entry's worker set still fits inline and the protocol implements the
// optimization (the paper's Section 5: Dir_nH_1S_NB,LACK,
// Dir_nH_1S_NB,ACK and Dir_nH_0S_NB,ACK, for worker sets of 4 or less).
func (h *Handlers) smallOpt(e *entry) bool {
	if e.spilled() {
		return false
	}
	return h.spec.SoftwareOnly ||
		(h.spec.HWPointers == 1 && !h.spec.Broadcast &&
			(h.spec.AckMode == proto.AckLACK || h.spec.AckMode == proto.AckSW))
}

// ReadOverflow implements proto.Software: extend the directory with the
// drained hardware pointers plus the requester.
//
//swex:hotpath
func (h *Handlers) ReadOverflow(b mem.Block, drained []mem.NodeID, requester mem.NodeID) sim.Cycle {
	ns := h.home(b)
	e, probes := ns.table.lookup(b)
	kind := allocTouch
	if e == nil {
		if ns.fl.head != nil {
			kind = allocReuse
		} else {
			kind = allocFresh
		}
		e = ns.fl.get()
		ns.table.insert(e, b)
	}
	stored := 0
	for _, d := range drained {
		if e.add(d, h.maxNodes) {
			stored++
		}
	}
	if e.add(requester, h.maxNodes) {
		stored++
	}
	// The software-only directory transmits the data itself; LimitLESS
	// reads have their data sent by hardware before the trap.
	sendsData := h.spec.SoftwareOnly
	cost, breakdown := h.cost.readCost(kind, stored, probes, sendsData, h.smallOpt(e))
	rk := stats.ReadRequest
	if h.spec.SoftwareOnly && requester == mem.HomeOfBlock(b) {
		rk = stats.LocalRequest
	}
	h.record(mem.HomeOfBlock(b), stats.HandlerRecord{
		Kind: rk, Cycles: uint64(cost), Sharers: e.n, Breakdown: breakdown,
	})
	return cost
}

// ReadBatched implements proto.Software: record one more reader from
// inside the running handler's message-drain loop.
//
//swex:hotpath
func (h *Handlers) ReadBatched(b mem.Block, requester mem.NodeID) sim.Cycle {
	ns := h.home(b)
	e, _ := ns.table.lookup(b)
	if e == nil {
		// The running handler inserted the entry at its start; a missing
		// entry means the drain raced a write fault — pay full price.
		return h.ReadOverflow(b, nil, requester)
	}
	e.add(requester, h.maxNodes)
	// Batched segments charge a flat incremental cost with no activity
	// breakdown; invalidate the last one so tracing does not reuse it.
	// Parallel mode skips the invalidation like record skips the update:
	// last/lastOK feed tracing, which parallel runs exclude, and a shared
	// write here would race between shards.
	if h.stage == nil {
		h.lastOK = false
	}
	return h.cost.batchedReadCost(h.spec.SoftwareOnly)
}

// SharersOf implements proto.Software.
//
//swex:hotpath
func (h *Handlers) SharersOf(b mem.Block) []mem.NodeID {
	e, _ := h.home(b).table.lookup(b)
	if e == nil {
		return nil
	}
	return e.sharers()
}

// WriteFault implements proto.Software: release the extended entry and
// charge for walking the sharer set and transmitting the invalidations.
//
//swex:hotpath
func (h *Handlers) WriteFault(b mem.Block, requester mem.NodeID, invs int) sim.Cycle {
	ns := h.home(b)
	_, probes := ns.table.lookup(b)
	e := ns.table.remove(b)
	sharers := 0
	freed := false
	if e != nil {
		sharers = e.n
		freed = true
		ns.fl.put(e)
	}
	cost, breakdown := h.cost.writeCost(sharers, invs, probes, freed, h.parInv)
	h.record(mem.HomeOfBlock(b), stats.HandlerRecord{
		Kind: stats.WriteRequest, Cycles: uint64(cost), Sharers: invs, Breakdown: breakdown,
	})
	return cost
}

// AckTrap implements proto.Software for the S_NB,ACK protocols.
//
//swex:hotpath
func (h *Handlers) AckTrap(b mem.Block, last bool) sim.Cycle {
	cost, breakdown := h.cost.ackCost(last)
	h.record(mem.HomeOfBlock(b), stats.HandlerRecord{
		Kind: stats.AckRequest, Cycles: uint64(cost), Breakdown: breakdown,
	})
	return cost
}

// LastAckTrap implements proto.Software for the S_NB,LACK protocols.
//
//swex:hotpath
func (h *Handlers) LastAckTrap(b mem.Block) sim.Cycle {
	cost, breakdown := h.cost.ackCost(true)
	h.record(mem.HomeOfBlock(b), stats.HandlerRecord{
		Kind: stats.AckRequest, Cycles: uint64(cost), Breakdown: breakdown,
	})
	return cost
}

// Resident reports how many extended entries node holds (testing aid).
func (h *Handlers) Resident(node mem.NodeID) int { return h.nodes[node].table.Len() }
