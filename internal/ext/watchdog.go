package ext

import (
	"swex/internal/mem"
	"swex/internal/proto"
	"swex/internal/sim"
)

// WatchdogTraps is the trap scheduler of the flexible coherence interface:
// it arbitrates each node's processor between protocol handlers and user
// computation, and implements the framework's livelock watchdog (paper
// Section 4.1).
//
// Handlers are traps: they preempt user code, so they run back to back on
// their own timeline and never wait for user computation. User compute is
// the preempted party: it is pushed past any handler occupancy that
// overlaps it. When software-extension requests arrive so frequently that
// user code cannot make forward progress — a handler backlog beyond
// Threshold — the watchdog "temporarily shuts off asynchronous events and
// allows the user code to run unmolested": the next handler start is
// deferred by Grace cycles, and user computation is free to fill that
// window. In practice this engages only for the protocols that field
// acknowledgments in software (Dir_nH_0S_NB,ACK and Dir_nH_1S_NB,ACK),
// exactly as the paper reports.
type WatchdogTraps struct {
	engine *sim.Engine
	nodes  []procState
	// Threshold is the handler backlog (in cycles) that triggers the
	// watchdog; Grace is the user-time window it grants.
	Threshold sim.Cycle
	Grace     sim.Cycle
	// Activations counts watchdog interventions per node.
	Activations []uint64

	// clock and deferBusy are the conservative-parallel hooks (DESIGN.md
	// §14), wired by the machine. clock supplies the node's shard cycle
	// in place of the master engine's; deferBusy journals handlerBusy
	// additions so the finish cut can discard overrun charges —
	// handlerBusy is the one Result-visible accumulator here (the rest
	// of procState is scheduling state whose overrun mutations the run's
	// end makes unobservable). Nil in serial mode.
	clock     func(mem.NodeID) sim.Cycle
	deferBusy func(node mem.NodeID, p *sim.Cycle, cost sim.Cycle)
}

type interval struct{ start, end sim.Cycle }

type procState struct {
	handlerFree sim.Cycle // end of the handler chain
	userFree    sim.Cycle // end of the last user reservation
	hold        sim.Cycle // floor for the next handler start
	intervals   []interval
	handlerBusy sim.Cycle
	userBusy    sim.Cycle
}

var _ proto.TrapScheduler = (*WatchdogTraps)(nil)

// NewWatchdogTraps builds the scheduler for n nodes.
func NewWatchdogTraps(engine *sim.Engine, n int) *WatchdogTraps {
	return &WatchdogTraps{
		engine:      engine,
		nodes:       make([]procState, n),
		Threshold:   2000,
		Grace:       500,
		Activations: make([]uint64, n),
	}
}

// EnableParallel installs the parallel-mode hooks (see the field docs).
// Must be called before any simulated work.
func (w *WatchdogTraps) EnableParallel(clock func(mem.NodeID) sim.Cycle,
	deferBusy func(node mem.NodeID, p *sim.Cycle, cost sim.Cycle)) {
	w.clock = clock
	w.deferBusy = deferBusy
}

// now returns the cycle node's processor observes: the master engine's
// clock in serial mode, the owning shard's in parallel mode.
//
//swex:hotpath
func (w *WatchdogTraps) now(node mem.NodeID) sim.Cycle {
	if w.clock == nil {
		return w.engine.Now()
	}
	return w.clock(node)
}

// Schedule implements proto.TrapScheduler for handlers.
func (w *WatchdogTraps) Schedule(node mem.NodeID, cost sim.Cycle) sim.Cycle {
	now := w.now(node)
	p := &w.nodes[node]
	if backlog := p.handlerFree; backlog > now && backlog-now > w.Threshold && p.hold <= backlog {
		// Livelock suspected: no handler may start until Grace cycles
		// after the current backlog drains; user code owns the window.
		w.Activations[node]++
		p.hold = backlog + w.Grace
	}
	start := now
	if p.handlerFree > start {
		start = p.handlerFree
	}
	if p.hold > start {
		start = p.hold
	}
	p.handlerFree = start + cost
	if w.deferBusy != nil {
		w.deferBusy(node, &p.handlerBusy, cost)
	} else {
		p.handlerBusy += cost
	}
	p.pushInterval(interval{start, start + cost}, now)
	return start + cost
}

// pushInterval records a handler occupancy window, pruning history the
// user timeline has already passed.
func (p *procState) pushInterval(iv interval, now sim.Cycle) {
	live := p.intervals[:0]
	for _, old := range p.intervals {
		if old.end > now && old.end > p.userFree {
			live = append(live, old)
		}
	}
	p.intervals = append(live, iv)
}

// Reserve implements proto.TrapScheduler for user computation: it starts
// as early as possible but is pushed past every handler window it would
// overlap (traps preempt user code).
func (w *WatchdogTraps) Reserve(node mem.NodeID, cost sim.Cycle) sim.Cycle {
	now := w.now(node)
	p := &w.nodes[node]
	start := now
	if p.userFree > start {
		start = p.userFree
	}
	for moved := true; moved; {
		moved = false
		for _, iv := range p.intervals {
			if start < iv.end && start+cost > iv.start {
				start = iv.end
				moved = true
			}
		}
	}
	p.userFree = start + cost
	p.userBusy += cost
	return start + cost
}

// FreeAt implements proto.TrapScheduler: the end of the handler backlog.
func (w *WatchdogTraps) FreeAt(node mem.NodeID) sim.Cycle {
	return w.nodes[node].handlerFree
}

// HandlerBusy reports cycles node's processor spent in protocol handlers.
func (w *WatchdogTraps) HandlerBusy(node mem.NodeID) sim.Cycle {
	return w.nodes[node].handlerBusy
}

// UserBusy reports cycles node's processor spent in user computation.
func (w *WatchdogTraps) UserBusy(node mem.NodeID) sim.Cycle {
	return w.nodes[node].userBusy
}

// TotalActivations sums watchdog interventions across the machine.
func (w *WatchdogTraps) TotalActivations() uint64 {
	var t uint64
	for _, a := range w.Activations {
		t += a
	}
	return t
}

// TotalHandlerBusy sums handler cycles across the machine.
func (w *WatchdogTraps) TotalHandlerBusy() sim.Cycle {
	var t sim.Cycle
	for i := range w.nodes {
		t += w.nodes[i].handlerBusy
	}
	return t
}
