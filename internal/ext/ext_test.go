package ext

import (
	"testing"
	"testing/quick"

	"swex/internal/mem"
	"swex/internal/proto"
	"swex/internal/sim"
	"swex/internal/stats"
)

func TestEntryInlineThenSpill(t *testing.T) {
	e := &entry{}
	for i := mem.NodeID(0); i < inlineSharers; i++ {
		if !e.add(i, 64) {
			t.Fatalf("add(%d) reported duplicate", i)
		}
	}
	if e.spilled() {
		t.Fatal("entry spilled below inline capacity")
	}
	e.add(inlineSharers, 64)
	if !e.spilled() {
		t.Fatal("entry did not spill past inline capacity")
	}
	if e.n != inlineSharers+1 {
		t.Fatalf("n = %d, want %d", e.n, inlineSharers+1)
	}
	// All members survive the spill.
	for i := mem.NodeID(0); i <= inlineSharers; i++ {
		if !e.has(i) {
			t.Fatalf("member %d lost in spill", i)
		}
	}
}

func TestEntryDuplicateAdd(t *testing.T) {
	e := &entry{}
	e.add(3, 64)
	if e.add(3, 64) {
		t.Fatal("duplicate add reported new")
	}
	if e.n != 1 {
		t.Fatalf("n = %d after duplicate, want 1", e.n)
	}
}

func TestEntrySharersSorted(t *testing.T) {
	e := &entry{}
	for _, id := range []mem.NodeID{9, 1, 63, 5, 30, 2} { // spills
		e.add(id, 64)
	}
	got := e.sharers()
	want := []mem.NodeID{1, 2, 5, 9, 30, 63}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharers = %v, want %v", got, want)
		}
	}
}

func TestEntrySharersInlineSorted(t *testing.T) {
	e := &entry{}
	for _, id := range []mem.NodeID{7, 2, 5} {
		e.add(id, 64)
	}
	got := e.sharers()
	want := []mem.NodeID{2, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inline sharers = %v, want %v", got, want)
		}
	}
}

// Property: entry membership matches a reference set under arbitrary adds.
func TestEntryPropertyMembership(t *testing.T) {
	f := func(ids []uint8) bool {
		e := &entry{}
		ref := map[mem.NodeID]bool{}
		for _, raw := range ids {
			id := mem.NodeID(raw)
			isNew := e.add(id, 256)
			if isNew == ref[id] {
				return false // add result disagreed with reference
			}
			ref[id] = true
		}
		if e.n != len(ref) {
			return false
		}
		for _, s := range e.sharers() {
			if !ref[s] {
				return false
			}
		}
		return len(e.sharers()) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListRecycles(t *testing.T) {
	var fl freeList
	a := fl.get()
	if fl.Allocs != 1 {
		t.Fatalf("Allocs = %d, want 1", fl.Allocs)
	}
	a.add(5, 64)
	fl.put(a)
	b := fl.get()
	if fl.Reuses != 1 {
		t.Fatalf("Reuses = %d, want 1", fl.Reuses)
	}
	if b != a {
		t.Fatal("free list did not recycle the entry")
	}
	if b.n != 0 || b.has(5) {
		t.Fatal("recycled entry not reset")
	}
}

func TestHashTableInsertLookupRemove(t *testing.T) {
	h := newHashTable(8)
	var fl freeList
	for b := mem.Block(0); b < 50; b++ {
		e := fl.get()
		e.add(mem.NodeID(b%16), 64)
		h.insert(e, b)
	}
	if h.Len() != 50 {
		t.Fatalf("Len = %d, want 50", h.Len())
	}
	for b := mem.Block(0); b < 50; b++ {
		e, _ := h.lookup(b)
		if e == nil || e.block != b {
			t.Fatalf("lookup(%d) failed", b)
		}
	}
	if e, _ := h.lookup(999); e != nil {
		t.Fatal("lookup of absent block succeeded")
	}
	for b := mem.Block(0); b < 50; b += 2 {
		if h.remove(b) == nil {
			t.Fatalf("remove(%d) failed", b)
		}
	}
	if h.Len() != 25 {
		t.Fatalf("Len = %d after removals, want 25", h.Len())
	}
	for b := mem.Block(0); b < 50; b++ {
		e, _ := h.lookup(b)
		if (b%2 == 0) != (e == nil) {
			t.Fatalf("post-removal lookup(%d) inconsistent", b)
		}
	}
	if h.remove(999) != nil {
		t.Fatal("remove of absent block succeeded")
	}
}

func TestTable2FlexibleCTotals(t *testing.T) {
	// The paper's Table 2, C columns: a median read request that stores
	// six pointers into a freshly allocated entry totals 480 cycles; a
	// median write request that walks eight sharers and transmits eight
	// invalidations totals 737.
	c := FlexibleC()
	readCost, rb := c.readCost(allocFresh, 6, 1, false, false)
	if readCost != 480 {
		t.Fatalf("C read total = %d, want 480\n%s", readCost,
			stats.FormatBreakdown(&rb, &rb))
	}
	writeCost, wb := c.writeCost(8, 8, 1, true, false)
	if writeCost != 737 {
		t.Fatalf("C write total = %d, want 737\n%s", writeCost,
			stats.FormatBreakdown(&wb, &wb))
	}
	// Spot-check signature rows against the paper.
	if rb[stats.ActStorePointers] != 235 {
		t.Fatalf("C read store-pointers = %d, want 235", rb[stats.ActStorePointers])
	}
	if wb[stats.ActInvalidate] != 419 {
		t.Fatalf("C write invalidate = %d, want 419", wb[stats.ActInvalidate])
	}
	if wb[stats.ActHashAdmin] != 74 {
		t.Fatalf("C write hash admin = %d, want 74", wb[stats.ActHashAdmin])
	}
}

func TestTable2AssemblyTotals(t *testing.T) {
	// Table 2, assembly columns: read 193, write 384; the hand-tuned
	// version has no protocol dispatch, saved state, hash table, or
	// non-Alewife support.
	a := TunedASM()
	readCost, rb := a.readCost(allocFresh, 6, 1, false, false)
	if readCost != 193 {
		t.Fatalf("asm read total = %d, want 193\n%s", readCost,
			stats.FormatBreakdown(&rb, &rb))
	}
	writeCost, wb := a.writeCost(8, 8, 1, true, false)
	if writeCost != 384 {
		t.Fatalf("asm write total = %d, want 384\n%s", writeCost,
			stats.FormatBreakdown(&wb, &wb))
	}
	for _, act := range []stats.Activity{stats.ActProtoDispatch, stats.ActSaveState,
		stats.ActHashAdmin, stats.ActNonAlewife} {
		if rb[act] != 0 || wb[act] != 0 {
			t.Fatalf("assembly version charged %s", act)
		}
	}
}

func TestTunedHalvesFlexible(t *testing.T) {
	// "In most cases, the hand-tuned version of the software reduces the
	// latency of protocol request handlers by about a factor of two."
	c, a := FlexibleC(), TunedASM()
	cr, _ := c.readCost(allocReuse, 6, 1, false, false)
	ar, _ := a.readCost(allocReuse, 6, 1, false, false)
	ratio := float64(cr) / float64(ar)
	if ratio < 1.6 || ratio > 3.0 {
		t.Fatalf("read C/asm ratio = %.2f, want roughly 2", ratio)
	}
	cw, _ := c.writeCost(8, 8, 1, true, false)
	aw, _ := a.writeCost(8, 8, 1, true, false)
	ratio = float64(cw) / float64(aw)
	if ratio < 1.6 || ratio > 3.0 {
		t.Fatalf("write C/asm ratio = %.2f, want roughly 2", ratio)
	}
}

func TestReadCostDecreasesOnReuse(t *testing.T) {
	c := FlexibleC()
	fresh, _ := c.readCost(allocFresh, 6, 1, false, false)
	reuse, _ := c.readCost(allocReuse, 6, 1, false, false)
	touch, _ := c.readCost(allocTouch, 6, 1, false, false)
	if !(fresh > reuse && reuse > touch) {
		t.Fatalf("want fresh(%d) > reuse(%d) > touch(%d)", fresh, reuse, touch)
	}
}

func TestHandlersReadOverflowRecords(t *testing.T) {
	h, err := New(16, proto.LimitLESS(5), FlexibleC())
	if err != nil {
		t.Fatal(err)
	}
	b := mem.Block(3)
	drained := []mem.NodeID{1, 2, 3, 4, 5}
	cost := h.ReadOverflow(b, drained, 6)
	if cost != 480 {
		t.Fatalf("first overflow cost = %d, want 480 (fresh alloc)", cost)
	}
	sharers := h.SharersOf(b)
	if len(sharers) != 6 {
		t.Fatalf("sharers = %v, want 6 members", sharers)
	}
	if h.Ledger.N() != 1 {
		t.Fatal("ledger did not record the handler")
	}
	rec, _ := h.Ledger.Median(stats.ReadRequest, -1)
	if rec.Cycles != 480 || rec.Sharers != 6 {
		t.Fatalf("ledger record = %+v", rec)
	}
	// A second overflow touches the existing entry: cheaper.
	cost2 := h.ReadOverflow(b, []mem.NodeID{7, 8}, 9)
	if cost2 >= cost {
		t.Fatalf("touch overflow cost %d not below fresh %d", cost2, cost)
	}
	if len(h.SharersOf(b)) != 9 {
		t.Fatalf("sharers after second overflow = %d, want 9", len(h.SharersOf(b)))
	}
}

func TestHandlersWriteFaultFreesEntry(t *testing.T) {
	h, err := New(16, proto.LimitLESS(5), FlexibleC())
	if err != nil {
		t.Fatal(err)
	}
	b := mem.Block(3)
	h.ReadOverflow(b, []mem.NodeID{1, 2, 3, 4, 5}, 6)
	if h.Resident(0) != 1 {
		t.Fatal("entry not resident after overflow")
	}
	h.WriteFault(b, 7, 8)
	if h.Resident(0) != 0 {
		t.Fatal("entry not freed by write fault")
	}
	if len(h.SharersOf(b)) != 0 {
		t.Fatal("sharers survive write fault")
	}
	// The next overflow reuses the freed entry.
	h.ReadOverflow(b, nil, 1)
	rec, _ := h.Ledger.Median(stats.ReadRequest, 1)
	if rec.Breakdown[stats.ActMemMgmt] != uint64(FlexibleC().MemReuse) {
		t.Fatalf("expected free-list reuse cost, got %d", rec.Breakdown[stats.ActMemMgmt])
	}
}

func TestHandlersPerNodeIsolation(t *testing.T) {
	h, err := New(4, proto.LimitLESS(2), FlexibleC())
	if err != nil {
		t.Fatal(err)
	}
	// Blocks homed on different nodes use different software directories.
	b0 := mem.BlockOf(mem.SegBase(0))
	b1 := mem.BlockOf(mem.SegBase(1))
	h.ReadOverflow(b0, nil, 2)
	h.ReadOverflow(b1, nil, 3)
	if h.Resident(0) != 1 || h.Resident(1) != 1 {
		t.Fatal("entries not isolated per home node")
	}
}

func TestHandlersAckCosts(t *testing.T) {
	h, err := New(4, proto.OnePointer(proto.AckSW), FlexibleC())
	if err != nil {
		t.Fatal(err)
	}
	plain := h.AckTrap(1, false)
	last := h.AckTrap(1, true)
	if plain <= 0 {
		t.Fatal("plain ack costs nothing")
	}
	if last <= plain {
		t.Fatal("last ack (which transmits data) should cost more")
	}
	lack := h.LastAckTrap(1)
	if lack != last {
		t.Fatalf("LACK trap cost %d, want %d (same as final ACK)", lack, last)
	}
	if h.Ledger.Count(stats.AckRequest) != 3 {
		t.Fatal("ack traps not recorded")
	}
}

func TestAssemblyOnlySupportsH5(t *testing.T) {
	if _, err := New(16, proto.LimitLESS(2), TunedASM()); err == nil {
		t.Fatal("assembly handlers accepted a protocol other than DirnH5SNB")
	}
	if _, err := New(16, proto.LimitLESS(5), TunedASM()); err != nil {
		t.Fatalf("assembly handlers rejected DirnH5SNB: %v", err)
	}
}

func TestSoftwareOnlyReadTransmitsData(t *testing.T) {
	// Compare at a spilled worker set so the H0 small-set optimization
	// does not apply: the software-only read must cost more because its
	// handler also transmits the data reply.
	h0, _ := New(16, proto.SoftwareOnly(), FlexibleC())
	h5, _ := New(16, proto.LimitLESS(5), FlexibleC())
	drained := []mem.NodeID{1, 2, 3, 4, 5}
	c0 := h0.ReadOverflow(1, drained, 6)
	c5 := h5.ReadOverflow(1, drained, 6)
	if c0 <= c5 {
		t.Fatalf("software-only read (%d) should cost more than LimitLESS (%d): it transmits the data", c0, c5)
	}
	if c0-c5 != FlexibleC().TransmitData {
		t.Fatalf("cost delta = %d, want the data-transmit cost %d", c0-c5, FlexibleC().TransmitData)
	}
}

func TestSmallSetOptimizationCheapensHandlers(t *testing.T) {
	// Paper Section 5: the memory-usage optimization improves the
	// H1,LACK / H1,ACK / H0 protocols for worker sets of 4 or less.
	lack, _ := New(16, proto.OnePointer(proto.AckLACK), FlexibleC())
	hw, _ := New(16, proto.OnePointer(proto.AckHW), FlexibleC())
	cLack := lack.ReadOverflow(1, []mem.NodeID{1}, 2) // 2 sharers: inline
	cHW := hw.ReadOverflow(1, []mem.NodeID{1}, 2)
	if cLack >= cHW {
		t.Fatalf("LACK small-set read (%d) not cheaper than hardware-ack variant (%d)", cLack, cHW)
	}
	// Beyond four sharers the entry spills and the optimization is off.
	lack2, _ := New(16, proto.OnePointer(proto.AckLACK), FlexibleC())
	hw2, _ := New(16, proto.OnePointer(proto.AckHW), FlexibleC())
	big := []mem.NodeID{1, 2, 3, 4, 5}
	cLack2 := lack2.ReadOverflow(1, big, 6)
	cHW2 := hw2.ReadOverflow(1, big, 6)
	if cLack2 != cHW2 {
		t.Fatalf("spilled-set costs differ: LACK %d vs HW %d", cLack2, cHW2)
	}
}

func TestSoftwareOnlyLocalRequestKind(t *testing.T) {
	h0, _ := New(4, proto.SoftwareOnly(), FlexibleC())
	home := mem.HomeOfBlock(1)
	h0.ReadOverflow(1, nil, home)
	if h0.Ledger.Count(stats.LocalRequest) != 1 {
		t.Fatal("intra-node software read not recorded as local")
	}
}

func TestWatchdogDefersUnderStorm(t *testing.T) {
	engine := sim.NewEngine()
	w := NewWatchdogTraps(engine, 1)
	w.Threshold = 100
	w.Grace = 50
	// Build a backlog beyond the threshold.
	var last sim.Cycle
	for i := 0; i < 10; i++ {
		last = w.Schedule(0, 40)
	}
	if w.TotalActivations() == 0 {
		t.Fatal("watchdog never engaged under a 400-cycle backlog")
	}
	// The backlog must include at least one grace window.
	if last < 400+w.Grace {
		t.Fatalf("handler completion %d shows no grace insertion", last)
	}
}

func TestWatchdogIdleNoDeferral(t *testing.T) {
	engine := sim.NewEngine()
	w := NewWatchdogTraps(engine, 1)
	done := w.Schedule(0, 40)
	if done != 40 {
		t.Fatalf("idle handler completes at %d, want 40", done)
	}
	if w.TotalActivations() != 0 {
		t.Fatal("watchdog engaged with no backlog")
	}
}

func TestWatchdogUserReservationIgnoresHold(t *testing.T) {
	engine := sim.NewEngine()
	w := NewWatchdogTraps(engine, 1)
	w.Threshold = 10
	w.Grace = 1000
	w.Schedule(0, 40)
	w.Schedule(0, 40) // backlog 40 > 10: hold set, second handler deferred
	// User compute gets the grace window: it runs as soon as the first
	// handler finishes, while the deferred handler waits out the hold.
	doneUser := w.Reserve(0, 10)
	if doneUser != 50 {
		t.Fatalf("user compute completes at %d, want 50 (inside grace window)", doneUser)
	}
	// The deferred handler waited out the hold (40 + Grace = 1040).
	doneH := w.Schedule(0, 40)
	if doneH < 1080 {
		t.Fatalf("handler after watchdog completes at %d, want >= 1080", doneH)
	}
}

func TestReadBatchedIncremental(t *testing.T) {
	h, _ := New(16, proto.LimitLESS(5), FlexibleC())
	full := h.ReadOverflow(7, []mem.NodeID{1, 2, 3, 4, 5}, 6)
	batched := h.ReadBatched(7, 8)
	if batched >= full {
		t.Fatalf("batched read (%d) not cheaper than a full trap (%d)", batched, full)
	}
	if len(h.SharersOf(7)) != 7 {
		t.Fatalf("batched reader not recorded: %d sharers", len(h.SharersOf(7)))
	}
	// Batched read with no entry (racing a write fault) pays full price.
	h2, _ := New(16, proto.LimitLESS(5), FlexibleC())
	if got := h2.ReadBatched(9, 1); got < full/2 {
		t.Fatalf("entry-less batched read cost %d, want a full handler", got)
	}
}

func TestParallelInvReducesWriteCost(t *testing.T) {
	seqH, _ := New(16, proto.LimitLESS(5), FlexibleC())
	parH, _ := New(16, proto.LimitLESS(5), FlexibleC())
	parH.SetParallelInv(true)
	drained := []mem.NodeID{1, 2, 3, 4, 5}
	seqH.ReadOverflow(3, drained, 6)
	parH.ReadOverflow(3, drained, 6)
	seqCost := seqH.WriteFault(3, 7, 8)
	parCost := parH.WriteFault(3, 7, 8)
	if parCost >= seqCost {
		t.Fatalf("parallel invalidation (%d) not cheaper than sequential (%d)", parCost, seqCost)
	}
	if seqCost-parCost < 200 {
		t.Fatalf("8-invalidation saving only %d cycles", seqCost-parCost)
	}
	if seqH.Cost().Name != "C" {
		t.Fatal("Cost accessor broken")
	}
}

func TestWatchdogAccessors(t *testing.T) {
	engine := sim.NewEngine()
	w := NewWatchdogTraps(engine, 2)
	w.Schedule(0, 100)
	w.Reserve(0, 50)
	if w.FreeAt(0) != 100 {
		t.Fatalf("FreeAt = %d, want 100 (handler chain end)", w.FreeAt(0))
	}
	if w.HandlerBusy(0) != 100 {
		t.Fatalf("HandlerBusy = %d, want 100", w.HandlerBusy(0))
	}
	if w.UserBusy(0) != 50 {
		t.Fatalf("UserBusy = %d, want 50", w.UserBusy(0))
	}
	if w.TotalHandlerBusy() != 100 {
		t.Fatalf("TotalHandlerBusy = %d, want 100", w.TotalHandlerBusy())
	}
}
