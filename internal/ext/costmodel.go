package ext

import (
	"swex/internal/sim"
	"swex/internal/stats"
)

// CostModel gives the cycle cost of each activity a protocol handler
// performs. The two presets reproduce the paper's Table 2: the flexible C
// interface and the hand-tuned assembly handlers. Costs that depend on how
// much work the handler did (pointers stored, invalidations sent) are
// split into base + per-item terms calibrated so the Table 2 column totals
// emerge at the paper's measurement point (8 readers, 1 writer).
type CostModel struct {
	Name string

	TrapDispatchRead  sim.Cycle
	TrapDispatchWrite sim.Cycle
	MsgDispatch       sim.Cycle
	ProtoDispatch     sim.Cycle // flexible interface only
	DecodeRead        sim.Cycle
	DecodeWrite       sim.Cycle
	SaveState         sim.Cycle // flexible interface only
	SaveStateWrite    sim.Cycle

	// Memory management: allocating a fresh extended entry, recycling
	// one from the free list, touching an existing entry, and freeing
	// one on a write fault.
	MemAlloc sim.Cycle
	MemReuse sim.Cycle
	MemTouch sim.Cycle
	MemFree  sim.Cycle
	// MemSmall replaces MemAlloc/MemReuse under the memory-usage
	// optimization (paper Section 5): worker sets of four or fewer are
	// kept inline in the entry, skipping the full structure allocation.
	// The optimization is implemented by the Dir_nH_1S_NB,LACK,
	// Dir_nH_1S_NB,ACK and Dir_nH_0S_NB,ACK handlers.
	MemSmall sim.Cycle

	// Hash table administration: inserting a new entry versus looking up
	// an existing one, plus a per-probe chain cost. Zero for the
	// assembly version, which exploits the hardware directory format for
	// direct lookup.
	HashInsert sim.Cycle
	HashLookup sim.Cycle
	HashProbe  sim.Cycle

	// Storing pointers into the extended directory (reads) and reading
	// them back out for invalidation (writes).
	StoreBase     sim.Cycle
	StorePerPtr   sim.Cycle
	StoreWrBase   sim.Cycle
	StoreWrPerPtr sim.Cycle

	// Invalidation lookup and transmit: sequential transmission charges
	// InvPerMsg per message; the parallel-invalidation enhancement
	// (paper Section 7, "dynamically selecting sequential or parallel
	// invalidation procedures") overlaps transmission with the CMMU and
	// charges InvPerMsgPar.
	InvBase      sim.Cycle
	InvPerMsg    sim.Cycle
	InvPerMsgPar sim.Cycle

	// TransmitData is charged when the software itself sends a data
	// reply (software-only directory reads, and the last-acknowledgment
	// handlers of the LACK/ACK variants).
	TransmitData sim.Cycle

	NonAlewifeRead  sim.Cycle // flexible interface only
	NonAlewifeWrite sim.Cycle
	TrapReturnRead  sim.Cycle
	TrapReturnWrite sim.Cycle

	// AckDecode is the per-acknowledgment handler body of the ACK
	// variants (on top of dispatch and return).
	AckDecode sim.Cycle
}

// FlexibleC is the flexible coherence interface written in C
// (paper Section 4.1). Table 2 column totals: read 480, write 737.
func FlexibleC() CostModel {
	return CostModel{
		Name:              "C",
		TrapDispatchRead:  11,
		TrapDispatchWrite: 9,
		MsgDispatch:       14,
		ProtoDispatch:     10,
		DecodeRead:        22,
		DecodeWrite:       52,
		SaveState:         24,
		SaveStateWrite:    17,
		MemAlloc:          60,
		MemReuse:          30,
		MemTouch:          10,
		MemFree:           28,
		MemSmall:          14,
		HashInsert:        80,
		HashLookup:        50,
		HashProbe:         4,
		StoreBase:         7,
		StorePerPtr:       38,
		StoreWrBase:       3,
		StoreWrPerPtr:     12,
		InvBase:           3,
		InvPerMsg:         52,
		InvPerMsgPar:      14,
		TransmitData:      30,
		NonAlewifeRead:    10,
		NonAlewifeWrite:   6,
		TrapReturnRead:    14,
		TrapReturnWrite:   9,
		AckDecode:         18,
	}
}

// TunedASM is the hand-tuned assembly implementation (paper Section 4.1):
// no protocol-specific dispatch, no saved state, no hash table (the
// directory format admits direct lookup), boot-time free lists. Table 2
// column totals: read 193, write 384. It implements only Dir_nH_5S_NB.
func TunedASM() CostModel {
	return CostModel{
		Name:              "Assembly",
		TrapDispatchRead:  11,
		TrapDispatchWrite: 11,
		MsgDispatch:       15,
		DecodeRead:        17,
		DecodeWrite:       40,
		MemAlloc:          65,
		MemReuse:          65, // pre-initialized free list: constant time
		MemTouch:          10,
		MemFree:           11,
		MemSmall:          20,
		StoreBase:         2,
		StorePerPtr:       12,
		StoreWrBase:       5,
		StoreWrPerPtr:     5,
		InvBase:           3,
		InvPerMsg:         31,
		InvPerMsgPar:      8,
		TransmitData:      15,
		TrapReturnRead:    11,
		TrapReturnWrite:   11,
		AckDecode:         10,
	}
}

// readAllocKind tells readCost how the extended entry was obtained.
type readAllocKind int

const (
	allocFresh readAllocKind = iota // new entry, fresh allocation
	allocReuse                      // new entry, recycled from the free list
	allocTouch                      // entry already existed
)

// readCost prices a read-overflow handler that stored `stored` pointers
// into an entry obtained per kind, traversing `probes` hash chain links.
// sendsData marks protocols whose software transmits the data reply.
func (c *CostModel) readCost(kind readAllocKind, stored, probes int, sendsData, smallOpt bool) (sim.Cycle, stats.Breakdown) {
	var b stats.Breakdown
	b[stats.ActTrapDispatch] = uint64(c.TrapDispatchRead)
	b[stats.ActMsgDispatch] = uint64(c.MsgDispatch)
	b[stats.ActProtoDispatch] = uint64(c.ProtoDispatch)
	b[stats.ActDecodeModify] = uint64(c.DecodeRead)
	b[stats.ActSaveState] = uint64(c.SaveState)
	switch kind {
	case allocFresh:
		b[stats.ActMemMgmt] = uint64(c.MemAlloc)
		b[stats.ActHashAdmin] = uint64(c.HashInsert)
	case allocReuse:
		b[stats.ActMemMgmt] = uint64(c.MemReuse)
		b[stats.ActHashAdmin] = uint64(c.HashInsert)
	case allocTouch:
		b[stats.ActMemMgmt] = uint64(c.MemTouch)
		b[stats.ActHashAdmin] = uint64(c.HashLookup)
	}
	if smallOpt && kind != allocTouch {
		// Inline small-set representation: no full structure allocation.
		b[stats.ActMemMgmt] = uint64(c.MemSmall)
	}
	if b[stats.ActHashAdmin] > 0 && probes > 1 {
		b[stats.ActHashAdmin] += uint64(sim.Cycle(probes-1) * c.HashProbe)
	}
	b[stats.ActStorePointers] = uint64(c.StoreBase + sim.Cycle(stored)*c.StorePerPtr)
	if sendsData {
		b[stats.ActInvalidate] = uint64(c.TransmitData)
	}
	b[stats.ActNonAlewife] = uint64(c.NonAlewifeRead)
	b[stats.ActTrapReturn] = uint64(c.TrapReturnRead)
	return sim.Cycle(b.Total()), b
}

// writeCost prices a write-fault handler that walked `sharers` extended
// pointers and transmitted `invs` invalidations.
func (c *CostModel) writeCost(sharers, invs, probes int, freed, parallelInv bool) (sim.Cycle, stats.Breakdown) {
	var b stats.Breakdown
	b[stats.ActTrapDispatch] = uint64(c.TrapDispatchWrite)
	b[stats.ActMsgDispatch] = uint64(c.MsgDispatch)
	b[stats.ActProtoDispatch] = uint64(c.ProtoDispatch)
	b[stats.ActDecodeModify] = uint64(c.DecodeWrite)
	b[stats.ActSaveState] = uint64(c.SaveStateWrite)
	if freed {
		b[stats.ActMemMgmt] = uint64(c.MemFree)
		b[stats.ActHashAdmin] = uint64(c.HashLookup)
		if probes > 1 {
			b[stats.ActHashAdmin] += uint64(sim.Cycle(probes-1) * c.HashProbe)
		}
	} else {
		b[stats.ActMemMgmt] = uint64(c.MemTouch)
	}
	// The C column of Table 2 reports hash administration of 74 for the
	// write request; the lookup-plus-free path above approximates it.
	if c.HashLookup > 0 && freed {
		b[stats.ActHashAdmin] += uint64(c.HashProbe) * 6 // unlink bookkeeping
	}
	b[stats.ActStorePointers] = uint64(c.StoreWrBase + sim.Cycle(sharers)*c.StoreWrPerPtr)
	per := c.InvPerMsg
	if parallelInv {
		per = c.InvPerMsgPar
	}
	b[stats.ActInvalidate] = uint64(c.InvBase + sim.Cycle(invs)*per)
	b[stats.ActNonAlewife] = uint64(c.NonAlewifeWrite)
	b[stats.ActTrapReturn] = uint64(c.TrapReturnWrite)
	return sim.Cycle(b.Total()), b
}

// batchedReadCost prices recording one additional reader inside an
// already-running read handler: the handler loops over the CMMU's queued
// messages, so a piggybacked request pays message decode and pointer-store
// work but no fresh trap, dispatch, or allocation.
func (c *CostModel) batchedReadCost(sendsData bool) sim.Cycle {
	cost := c.MsgDispatch + c.DecodeRead + c.StoreBase + c.StorePerPtr
	if sendsData {
		cost += c.TransmitData
	}
	return cost
}

// ackCost prices one software-handled acknowledgment.
func (c *CostModel) ackCost(last bool) (sim.Cycle, stats.Breakdown) {
	var b stats.Breakdown
	b[stats.ActTrapDispatch] = uint64(c.TrapDispatchWrite)
	b[stats.ActMsgDispatch] = uint64(c.MsgDispatch)
	b[stats.ActProtoDispatch] = uint64(c.ProtoDispatch)
	b[stats.ActDecodeModify] = uint64(c.AckDecode)
	if last {
		b[stats.ActInvalidate] = uint64(c.TransmitData)
	}
	b[stats.ActTrapReturn] = uint64(c.TrapReturnWrite)
	return sim.Cycle(b.Total()), b
}
