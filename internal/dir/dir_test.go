package dir

import (
	"testing"
	"testing/quick"

	"swex/internal/mem"
)

func TestPointerSetAddUntilOverflow(t *testing.T) {
	p := NewPointerSet(5)
	for i := mem.NodeID(0); i < 5; i++ {
		if !p.Add(i) {
			t.Fatalf("Add(%d) overflowed below capacity", i)
		}
	}
	if p.Count() != 5 {
		t.Fatalf("Count = %d, want 5", p.Count())
	}
	if p.Add(5) {
		t.Fatal("sixth pointer did not overflow a 5-pointer set")
	}
	if p.Add(3) != true {
		t.Fatal("re-adding a present pointer should succeed even when full")
	}
}

func TestPointerSetRemove(t *testing.T) {
	p := NewPointerSet(2)
	p.Add(7)
	if !p.Remove(7) {
		t.Fatal("Remove of present pointer failed")
	}
	if p.Remove(7) {
		t.Fatal("Remove of absent pointer succeeded")
	}
	if p.Count() != 0 {
		t.Fatalf("Count = %d after remove, want 0", p.Count())
	}
}

func TestPointerSetDrainOrdered(t *testing.T) {
	p := NewPointerSet(5)
	for _, id := range []mem.NodeID{130, 2, 65, 0, 99} {
		p.Add(id)
	}
	got := p.Drain()
	want := []mem.NodeID{0, 2, 65, 99, 130}
	if len(got) != len(want) {
		t.Fatalf("Drain returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain returned %v, want ascending %v", got, want)
		}
	}
	if p.Count() != 0 {
		t.Fatal("Drain did not empty the set")
	}
}

func TestPointerSetListNonDestructive(t *testing.T) {
	p := NewPointerSet(3)
	p.Add(1)
	p.Add(2)
	if got := p.List(); len(got) != 2 {
		t.Fatalf("List = %v, want 2 entries", got)
	}
	if p.Count() != 2 {
		t.Fatal("List modified the set")
	}
}

func TestPointerSetZeroCapacity(t *testing.T) {
	p := NewPointerSet(0)
	if p.Add(0) {
		t.Fatal("zero-capacity set accepted a pointer (Dir_nH_0 has none)")
	}
}

func TestPointerSetBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity beyond MaxNodes did not panic")
		}
	}()
	NewPointerSet(MaxNodes + 1)
}

// Property: Add/Remove maintain Count == |set| and Has agrees with
// membership, with capacity never exceeded.
func TestPointerSetPropertyConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPointerSet(5)
		ref := map[mem.NodeID]bool{}
		for _, op := range ops {
			id := mem.NodeID(op % MaxNodes)
			if op&0x8000 == 0 {
				if p.Add(id) {
					ref[id] = true
				} else if len(ref) < 5 && !ref[id] {
					return false // refused below capacity
				}
			} else {
				if p.Remove(id) != ref[id] {
					return false
				}
				delete(ref, id)
			}
			if p.Count() != len(ref) || p.Count() > 5 {
				return false
			}
			if p.Has(id) != ref[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntrySharers(t *testing.T) {
	e := &Entry{Ptrs: NewPointerSet(5)}
	if e.Sharers() != 0 {
		t.Fatalf("fresh entry Sharers = %d, want 0", e.Sharers())
	}
	e.Ptrs.Add(1)
	e.Ptrs.Add(2)
	e.LocalBit = true
	e.SwCount = 3
	if e.Sharers() != 6 {
		t.Fatalf("Sharers = %d, want 6 (2 ptrs + local + 3 sw)", e.Sharers())
	}
	e.State = Exclusive
	if e.Sharers() != 7 {
		t.Fatalf("Sharers = %d with owner, want 7", e.Sharers())
	}
}

func TestEntryNoteSharersTracksMax(t *testing.T) {
	e := &Entry{Ptrs: NewPointerSet(5)}
	e.Ptrs.Add(1)
	e.NoteSharers()
	e.Ptrs.Add(2)
	e.NoteSharers()
	e.Ptrs.Clear()
	e.NoteSharers()
	if e.MaxSharers != 2 {
		t.Fatalf("MaxSharers = %d, want 2", e.MaxSharers)
	}
}

func TestDirectoryEntryCreation(t *testing.T) {
	d := New(5)
	e := d.Entry(10)
	if e.State != Uncached {
		t.Fatal("fresh entry not Uncached")
	}
	if e.Ptrs.Cap() != 5 {
		t.Fatalf("entry capacity %d, want 5", e.Ptrs.Cap())
	}
	if d.Entry(10) != e {
		t.Fatal("Entry is not idempotent")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDirectoryPeek(t *testing.T) {
	d := New(2)
	if _, ok := d.Peek(3); ok {
		t.Fatal("Peek invented an entry")
	}
	d.Entry(3)
	if _, ok := d.Peek(3); !ok {
		t.Fatal("Peek missed an existing entry")
	}
}

func TestDirectoryForEachOrdered(t *testing.T) {
	d := New(1)
	for _, b := range []mem.Block{9, 1, 5, 3} {
		d.Entry(b)
	}
	var seen []mem.Block
	d.ForEach(func(b mem.Block, _ *Entry) { seen = append(seen, b) })
	want := []mem.Block{1, 3, 5, 9}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", seen, want)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Uncached: "Uncached", Shared: "Shared", Exclusive: "Exclusive",
		AckWait: "AckWait", Recall: "Recall", SWait: "SWait",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
