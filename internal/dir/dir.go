// Package dir implements the hardware coherence directory of a node's
// CMMU: a small set of explicit pointers per memory block, the one-bit
// local pointer, the acknowledgment counter, and the per-block state the
// hardware protocol engine drives.
//
// The pointer array is the costly resource the whole paper is about.
// Alewife implements between zero and five pointers per block in hardware
// and extends the directory in software when they are exhausted
// (Dir_nH_X S_NB); the full-map protocol is the same structure with
// capacity equal to the machine size.
package dir

import (
	"fmt"
	"sort"

	"swex/internal/mem"
)

// MaxNodes bounds the pointer bitset. 1024 covers the largest machine
// any exhibit simulates: the paper stops at TSP on 256 nodes (Figure 5)
// and the extrapolation study continues to 1024. machine.Config.Validate
// rejects larger machines rather than letting node IDs index past the
// bitset.
const MaxNodes = 1024

// PointerSet is a capacity-limited set of node pointers. The limited
// directory stores it as explicit pointer registers; we represent it as a
// bitset plus a count, which models the same information content.
type PointerSet struct {
	bits [MaxNodes / 64]uint64
	n    int
	cap  int
}

// NewPointerSet returns an empty set holding at most capacity pointers.
func NewPointerSet(capacity int) PointerSet {
	if capacity < 0 || capacity > MaxNodes {
		panic(fmt.Sprintf("dir: pointer capacity %d out of range", capacity))
	}
	return PointerSet{cap: capacity}
}

// Cap reports the pointer capacity.
func (p *PointerSet) Cap() int { return p.cap }

// Count reports how many pointers are in use.
func (p *PointerSet) Count() int { return p.n }

// Has reports whether node id has a pointer.
func (p *PointerSet) Has(id mem.NodeID) bool {
	return p.bits[id/64]&(1<<(uint(id)%64)) != 0
}

// Add records a pointer to node id. It returns false — an overflow — when
// the set is full and id is not already present. Adding a present id is a
// no-op that succeeds.
func (p *PointerSet) Add(id mem.NodeID) bool {
	if p.Has(id) {
		return true
	}
	if p.n >= p.cap {
		return false
	}
	p.bits[id/64] |= 1 << (uint(id) % 64)
	p.n++
	return true
}

// Remove drops the pointer to node id, reporting whether it was present.
func (p *PointerSet) Remove(id mem.NodeID) bool {
	if !p.Has(id) {
		return false
	}
	p.bits[id/64] &^= 1 << (uint(id) % 64)
	p.n--
	return true
}

// Clear empties the set, keeping its capacity.
func (p *PointerSet) Clear() {
	p.bits = [MaxNodes / 64]uint64{}
	p.n = 0
}

// ForEach calls fn for every pointer in ascending node order. The
// deterministic order matters: invalidation transmission order is part of
// the simulation's reproducibility contract.
func (p *PointerSet) ForEach(fn func(mem.NodeID)) {
	for w, bits := range p.bits {
		for bits != 0 {
			b := bits & (-bits)
			idx := 0
			for b>>uint(idx) != 1 {
				idx++
			}
			fn(mem.NodeID(w*64 + idx))
			bits &^= b
		}
	}
}

// Drain empties the set and returns the pointers it held, in ascending
// order. This is the hardware half of the read-overflow handler: the
// software "empt[ies] all of the hardware pointers into the software
// structure" (paper Section 2.2).
func (p *PointerSet) Drain() []mem.NodeID {
	out := make([]mem.NodeID, 0, p.n)
	p.ForEach(func(id mem.NodeID) { out = append(out, id) })
	p.Clear()
	return out
}

// List returns the pointers in ascending order without modifying the set.
func (p *PointerSet) List() []mem.NodeID {
	out := make([]mem.NodeID, 0, p.n)
	p.ForEach(func(id mem.NodeID) { out = append(out, id) })
	return out
}

// State is the hardware directory state of a block at its home node.
type State int

const (
	// Uncached: no remote copies tracked (the local bit may still be set).
	Uncached State = iota
	// Shared: read-only copies at the nodes in the pointer set.
	Shared
	// Exclusive: one dirty owner holds the block.
	Exclusive
	// AckWait: invalidations are outstanding and the hardware is counting
	// acknowledgments; requests receive busy messages until the count
	// drains (the window during which the paper's hardware "transmit[s]
	// busy messages to requesting nodes, eliminating the livelock
	// problem").
	AckWait
	// Recall: the home has asked an exclusive owner to give up the block
	// (servicing a read or write to dirty data) and awaits the UPDATE.
	Recall
	// SWait: the transaction is under software control — the extension
	// software owns the block until it releases it (used while handlers
	// collect acknowledgments in software, and by the software-only
	// directory while it manipulates a block).
	SWait
)

func (s State) String() string {
	switch s {
	case Uncached:
		return "Uncached"
	case Shared:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	case AckWait:
		return "AckWait"
	case Recall:
		return "Recall"
	case SWait:
		return "SWait"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Entry is the per-block hardware directory entry.
type Entry struct {
	State State
	Ptrs  PointerSet
	// LocalBit is Alewife's special one-bit pointer for the home node:
	// it lets the home cache the block without consuming (or
	// overflowing) a hardware pointer (paper Section 3.1).
	LocalBit bool
	// Owner is the dirty owner while State is Exclusive or Recall.
	Owner mem.NodeID
	// AckCount is the hardware acknowledgment counter used in AckWait.
	AckCount int
	// Req and ReqWrite record the request being serviced during
	// AckWait/Recall, so the hardware can reply when the transaction
	// completes.
	Req      mem.NodeID
	ReqWrite bool
	// Epoch tags the current invalidation transaction. Invalidations
	// carry it and acknowledgments echo it, letting the home discard
	// acknowledgments that belong to a transaction a crossing writeback
	// already completed.
	Epoch uint32
	// SwExt marks that the software holds an extended sharer list for
	// this block (the directory has overflowed at least once and not yet
	// been reclaimed).
	SwExt bool
	// SwCount mirrors the software sharer-list size for statistics; the
	// hardware never reads it.
	SwCount int
	// RemoteBit is the software-only directory's one extra bit per
	// block: set once any remote node has accessed the block, after
	// which every access traps (paper Section 2.3).
	RemoteBit bool
	// BroadcastBit marks "more copies than pointers exist" for the
	// Dir_1H_1S_B broadcast protocol.
	BroadcastBit bool
	// MaxSharers tracks the largest simultaneous worker set this block
	// ever had, for the Figure 6 histogram.
	MaxSharers int
}

// Sharers reports the current simultaneous worker-set size recorded for
// the block: hardware pointers, software-extended pointers, the local bit,
// and a dirty owner.
func (e *Entry) Sharers() int {
	n := e.Ptrs.Count() + e.SwCount
	if e.LocalBit {
		n++
	}
	if e.State == Exclusive || e.State == Recall {
		n++
	}
	return n
}

// NoteSharers refreshes MaxSharers from the current state.
func (e *Entry) NoteSharers() {
	if s := e.Sharers(); s > e.MaxSharers {
		e.MaxSharers = s
	}
}

// Directory is one node's collection of hardware entries for the blocks it
// is home to. Entries are created on first reference.
type Directory struct {
	caps    int
	entries map[mem.Block]*Entry
}

// New creates a directory whose entries hold caps hardware pointers.
func New(caps int) *Directory {
	return &Directory{caps: caps, entries: make(map[mem.Block]*Entry)}
}

// PointerCap reports the per-entry hardware pointer capacity.
func (d *Directory) PointerCap() int { return d.caps }

// Entry returns the entry for block b, creating it Uncached if absent.
//
//swex:hotpath
func (d *Directory) Entry(b mem.Block) *Entry {
	return d.EntryWithCap(b, d.caps)
}

// EntryWithCap returns the entry for block b, creating it with the given
// pointer capacity if absent (per-block protocol reconfiguration).
func (d *Directory) EntryWithCap(b mem.Block, caps int) *Entry {
	e, ok := d.entries[b]
	if !ok {
		e = &Entry{Ptrs: NewPointerSet(caps)}
		d.entries[b] = e
	}
	return e
}

// Peek returns the entry for b only if it exists.
func (d *Directory) Peek(b mem.Block) (*Entry, bool) {
	e, ok := d.entries[b]
	return e, ok
}

// Len reports how many blocks have entries.
func (d *Directory) Len() int { return len(d.entries) }

// ForEach visits all entries in ascending block order (deterministic).
func (d *Directory) ForEach(fn func(mem.Block, *Entry)) {
	blocks := make([]mem.Block, 0, len(d.entries))
	for b := range d.entries {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		fn(b, d.entries[b])
	}
}
