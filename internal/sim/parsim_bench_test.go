package sim

import (
	"testing"
	"time"
)

// The cluster benchmarks isolate the window scheduler's overlap from the
// simulator's CPU appetite, exactly like the sweep pool's overlap
// benchmarks (internal/sweep/bench_test.go): a fixed total of eight
// events, each dwelling in time.Sleep, is split across the shards, so the
// measured wall clock reflects only how well RunWindow overlaps shard
// execution. Sleep does not contend for cores, so the overlap shows even
// on a single-core container — the honest parallel-engine speedup
// measurement there, since CPU-bound shards cannot overlap without real
// cores (see EXPERIMENTS.md). Expected ratio of the serial and S-shard
// variants: S, minus the per-window handoff cost.
func benchmarkClusterOverlap(b *testing.B, shards int) {
	const totalEvents = 8
	const dwell = 10 * time.Millisecond
	perShard := totalEvents / shards
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engines := make([]*Engine, shards)
		for s := range engines {
			e := NewEngine()
			for k := 0; k < perShard; k++ {
				e.At(Cycle(k+1), func() { time.Sleep(dwell) })
			}
			engines[s] = e
		}
		c := NewCluster(engines, nil)
		c.RunWindow(totalEvents + 1)
		c.Stop()
	}
}

func BenchmarkParsimOverlapSerial(b *testing.B)  { benchmarkClusterOverlap(b, 1) }
func BenchmarkParsimOverlapShards2(b *testing.B) { benchmarkClusterOverlap(b, 2) }
func BenchmarkParsimOverlapShards4(b *testing.B) { benchmarkClusterOverlap(b, 4) }
func BenchmarkParsimOverlapShards8(b *testing.B) { benchmarkClusterOverlap(b, 8) }
