package sim

import (
	"sync"
	"testing"
)

// ------------------------------------------------------------ Cut, KeyLess

func TestCutIncludes(t *testing.T) {
	cut := Cut{At: 10, Owner: 3, Cnt: 7}
	cases := []struct {
		at    Cycle
		owner int32
		cnt   uint64
		want  bool
	}{
		{9, 100, 100, true}, // earlier cycle: always in
		{11, 0, 0, false},   // later cycle: always out
		{10, 2, 100, true},  // same cycle, smaller owner
		{10, 4, 0, false},   // same cycle, larger owner
		{10, 3, 6, true},    // same key owner, smaller cnt
		{10, 3, 7, true},    // the cut event itself is included
		{10, 3, 8, false},   // same key owner, larger cnt
	}
	for _, c := range cases {
		if got := cut.Includes(c.at, c.owner, c.cnt); got != c.want {
			t.Errorf("Includes(%d, %d, %d) = %v, want %v", c.at, c.owner, c.cnt, got, c.want)
		}
	}
}

func TestMaxCutIncludesEverything(t *testing.T) {
	if !MaxCut.Includes(^Cycle(0), unkeyedOwner, ^uint64(0)) {
		t.Error("MaxCut excludes the largest possible stamp")
	}
	if !MaxCut.Includes(0, 0, 0) {
		t.Error("MaxCut excludes the smallest possible stamp")
	}
}

func TestKeyLessOrder(t *testing.T) {
	// Strictly ascending stamps in the canonical order.
	stamps := []struct {
		at    Cycle
		owner int32
		cnt   uint64
	}{
		{1, 5, 9}, {2, 0, 0}, {2, 0, 1}, {2, 1, 0}, {3, 0, 5},
	}
	for i := 1; i < len(stamps); i++ {
		a, b := stamps[i-1], stamps[i]
		if !KeyLess(a.at, a.owner, a.cnt, b.at, b.owner, b.cnt) {
			t.Errorf("KeyLess(%v, %v) = false, want true", a, b)
		}
		if KeyLess(b.at, b.owner, b.cnt, a.at, a.owner, a.cnt) {
			t.Errorf("KeyLess(%v, %v) = true, want false", b, a)
		}
	}
	if KeyLess(2, 1, 3, 2, 1, 3) {
		t.Error("KeyLess is not irreflexive")
	}
}

// ---------------------------------------------------------------- Journal

func TestJournalApply(t *testing.T) {
	var j Journal
	var u uint64
	var cy Cycle
	var hw int
	counts := map[string]uint64{}

	j.Ensure(8)
	j.AddU64(1, 0, 0, &u, 3)
	j.AddCycle(1, 0, 1, &cy, 5)
	j.MaxInt(2, 0, 0, &hw, 9)
	j.MaxInt(2, 0, 1, &hw, 4) // smaller candidate must not lower the mark
	j.Count(2, 1, 0, "invals", 2)
	if j.Len() != 5 {
		t.Fatalf("Len = %d, want 5", j.Len())
	}
	j.Apply(MaxCut, func(name string, delta uint64) { counts[name] += delta })
	if u != 3 || cy != 5 || hw != 9 || counts["invals"] != 2 {
		t.Errorf("after Apply: u=%d cy=%d hw=%d invals=%d", u, cy, hw, counts["invals"])
	}
	if j.Len() != 0 {
		t.Errorf("Apply did not reset the journal: Len = %d", j.Len())
	}
}

func TestJournalApplyRespectsCut(t *testing.T) {
	var j Journal
	var kept, dropped uint64
	j.Ensure(4)
	j.AddU64(5, 0, 0, &kept, 1)
	j.AddU64(5, 0, 1, &dropped, 1) // after the cut: finish overrun
	j.AddU64(6, 0, 0, &dropped, 1)
	j.Apply(Cut{At: 5, Owner: 0, Cnt: 0}, nil)
	if kept != 1 {
		t.Errorf("entry at the cut not applied: kept = %d", kept)
	}
	if dropped != 0 {
		t.Errorf("overrun entries applied: dropped = %d", dropped)
	}
}

func TestJournalEnsureGrows(t *testing.T) {
	var j Journal
	var u uint64
	for i := 0; i < 1000; i++ {
		j.Ensure(1)
		j.AddU64(Cycle(i), 0, uint64(i), &u, 1)
	}
	j.Apply(MaxCut, nil)
	if u != 1000 {
		t.Errorf("u = %d, want 1000", u)
	}
}

func TestJournalOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("write past Ensure headroom did not panic")
		}
	}()
	var j Journal
	var u uint64
	j.AddU64(0, 0, 0, &u, 1) // no Ensure: zero capacity
}

// ------------------------------------------------------------ owned keying

// TestOwnedKeysMatchAcrossEngines is the keying half of the determinism
// argument: with a shared stream slice installed, the key an event gets
// depends only on its owner and how many events that owner has scheduled —
// not on which engine schedules it. A serial engine and a sharded pair
// consuming the same streams assign identical keys.
func TestOwnedKeysMatchAcrossEngines(t *testing.T) {
	record := func(schedule func(e *Engine, owner int, fired *[]int32)) []int32 {
		var fired []int32
		streams := make([]uint64, 2)
		e := NewEngine()
		e.SetStreams(streams)
		schedule(e, 0, &fired)
		schedule(e, 1, &fired)
		e.Run(0)
		return fired
	}
	sched := func(e *Engine, owner int, fired *[]int32) {
		for i := 0; i < 3; i++ {
			e.OwnedAt(owner, Cycle(10+i), nil, func() {
				o, _ := e.CurKey()
				*fired = append(*fired, o)
			})
		}
	}
	serial := record(sched)
	want := []int32{0, 1, 0, 1, 0, 1} // per cycle: owner 0's event before owner 1's
	if len(serial) != len(want) {
		t.Fatalf("fired %d events, want %d", len(serial), len(want))
	}
	for i := range want {
		if serial[i] != want[i] {
			t.Fatalf("serial firing owners = %v, want %v", serial, want)
		}
	}
}

// TestTakeCntPreconsumesStream pins the staging contract: TakeCnt at
// staging time consumes the same stream OwnedAt would, so a deferred
// KeyedAtCall lands exactly where the serial engine's immediate OwnedAt
// would have.
func TestTakeCntPreconsumesStream(t *testing.T) {
	streams := make([]uint64, 1)
	e := NewEngine()
	e.SetStreams(streams)
	if c := e.TakeCnt(0); c != 0 {
		t.Fatalf("first TakeCnt = %d, want 0", c)
	}
	// The next owned schedule must see the consumed position.
	var sawCnt uint64
	e.OwnedAt(0, 1, nil, func() { _, sawCnt = e.CurKey() })
	e.Run(0)
	if sawCnt != 1 {
		t.Errorf("OwnedAt after TakeCnt fired with cnt %d, want 1", sawCnt)
	}
}

// TestKeyedAtCallFiresInKeyOrder checks that explicitly keyed events
// interleave with owned events by key, not by scheduling call order.
func TestKeyedAtCallFiresInKeyOrder(t *testing.T) {
	streams := make([]uint64, 2)
	e := NewEngine()
	e.SetStreams(streams)
	var order []int32
	rec := func(tag int32) Caller { return callerFunc(func() { order = append(order, tag) }) }
	// Schedule owner 1 first, then an explicitly keyed owner-0 event at the
	// same cycle: the owner-0 key must fire first.
	cnt1 := e.TakeCnt(1)
	cnt0 := e.TakeCnt(0)
	e.KeyedAtCall(1, cnt1, 5, nil, rec(1))
	e.KeyedAtCall(0, cnt0, 5, nil, rec(0))
	e.Run(0)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("firing order = %v, want [0 1]", order)
	}
}

// callerFunc adapts a closure to the Caller interface for tests.
type callerFunc func()

func (f callerFunc) Fire() { f() }

// ---------------------------------------------------------------- Cluster

// TestClusterRunsAllShardsToWindow drives two engines through windows and
// checks every event below each boundary fires before RunWindow returns,
// and none beyond it.
func TestClusterRunsAllShardsToWindow(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var mu sync.Mutex
	fired := map[string]bool{}
	mark := func(name string) func() {
		return func() { mu.Lock(); fired[name] = true; mu.Unlock() }
	}
	a.At(1, mark("a1"))
	a.At(12, mark("a12"))
	b.At(3, mark("b3"))
	b.At(11, mark("b11"))

	c := NewCluster([]*Engine{a, b}, nil)
	defer c.Stop()

	c.RunWindow(10)
	if !fired["a1"] || !fired["b3"] {
		t.Error("events inside the window did not fire")
	}
	if fired["a12"] || fired["b11"] {
		t.Error("events beyond the window fired early")
	}
	if at, ok := c.NextAt(); !ok || at != 11 {
		t.Errorf("NextAt = %d,%v, want 11,true", at, ok)
	}
	if n := c.Pending(); n != 2 {
		t.Errorf("Pending = %d, want 2", n)
	}
	c.RunWindow(20)
	if !fired["a12"] || !fired["b11"] {
		t.Error("events in the second window did not fire")
	}
	if _, ok := c.NextAt(); ok {
		t.Error("NextAt reports pending work on drained shards")
	}
}

// TestClusterPrepareHookRuns checks the per-shard prepare hook runs before
// events on that shard's engine — the cold headroom contract the staging
// buffers rely on.
func TestClusterPrepareHookRuns(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	var prepA, prepB, firedA int
	a.At(1, func() {
		if prepA == 0 {
			t.Error("shard A event fired before its prepare hook")
		}
		firedA++
	})
	a.At(2, func() { firedA++ })
	b.At(1, func() {})
	c := NewCluster([]*Engine{a, b}, []func(){
		func() { prepA++ },
		func() { prepB++ },
	})
	defer c.Stop()
	c.RunWindow(10)
	if prepA != 2 || firedA != 2 {
		t.Errorf("shard A: prepare ran %d times for %d events, want 2/2", prepA, firedA)
	}
	if prepB != 1 {
		t.Errorf("shard B: prepare ran %d times, want 1", prepB)
	}
}

// TestClusterSingleActiveShardInline checks the one-active-shard window
// runs on the calling goroutine (no handoff), which the low-activity
// phases depend on for latency. Observable effect: the events still fire.
func TestClusterSingleActiveShardInline(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	n := 0
	a.At(1, func() { n++ })
	a.At(2, func() { n++ })
	c := NewCluster([]*Engine{a, b}, nil)
	defer c.Stop()
	c.RunWindow(5)
	if n != 2 {
		t.Errorf("fired %d events, want 2", n)
	}
	// An empty window on drained shards is a no-op.
	c.RunWindow(100)
}

func TestClusterStopIdempotent(t *testing.T) {
	c := NewCluster([]*Engine{NewEngine()}, nil)
	c.Stop()
	c.Stop()
}
