// Parallel extension of the discrete-event engine: a Cluster runs one
// engine per shard on persistent worker goroutines, synchronized by
// conservative time windows, and a Journal defers result-visible side
// effects so they can be applied in a deterministic order at window
// barriers. DESIGN.md §14 states the full protocol and its determinism
// argument; the short form:
//
//   - Shards only interact through the mesh, and every mesh message takes
//     at least the lookahead L to deliver. Windows of width L are
//     therefore safe: no event fired inside a window can schedule work
//     for another shard inside the same window.
//   - During a window, shards touch only shard-local state. Cross-shard
//     effects (mesh sends) and globally-visible statistics are staged
//     into per-shard buffers stamped with the issuing event's (cycle,
//     key) position in the canonical event order.
//   - At each barrier a single goroutine merges the staged work in that
//     canonical order — which the owned keying discipline (sim.go) makes
//     identical to the serial engine's firing order — so the merged
//     machine state, and every byte of output derived from it, matches a
//     serial run.
//
// Within a window each shard is an ordinary single-threaded Engine, and
// the barrier merge runs on one goroutine, so no execution order depends
// on the Go scheduler: the worker pool changes wall-clock time, never
// simulated behavior.
package sim

import "sync"

// ---------------------------------------------------------------- Journal

// Cut identifies a point in the canonical event order: a cycle plus the
// key of an event at that cycle. Everything the shards stage is stamped
// with the issuing event's (cycle, key); a Cut then selects exactly the
// staged work the serial engine would have performed by the time that
// event finished. MaxCut selects everything.
type Cut struct {
	// At is the cut event's firing cycle.
	At Cycle
	// Owner is the cut event's key owner.
	Owner int32
	// Cnt is the cut event's key counter.
	Cnt uint64
}

// MaxCut is the cut that includes every staged entry; non-final barriers
// use it because every surviving thread finishes at or after the next
// window, so nothing staged so far can be overrun.
var MaxCut = Cut{At: ^Cycle(0), Owner: unkeyedOwner, Cnt: ^uint64(0)}

// Includes reports whether an entry stamped (at, owner, cnt) is at or
// before the cut in the canonical event order.
func (c Cut) Includes(at Cycle, owner int32, cnt uint64) bool {
	if at != c.At {
		return at < c.At
	}
	if owner != c.Owner {
		return owner < c.Owner
	}
	return cnt <= c.Cnt
}

// KeyLess reports whether event-order position (atA, ownerA, cntA) comes
// strictly before (atB, ownerB, cntB) in the canonical order the engines
// fire events in: cycle, then key owner, then key counter. Barrier merges
// use it to interleave staged work from different shards exactly as the
// serial engine would have performed it.
func KeyLess(atA Cycle, ownerA int32, cntA uint64, atB Cycle, ownerB int32, cntB uint64) bool {
	if atA != atB {
		return atA < atB
	}
	if ownerA != ownerB {
		return ownerA < ownerB
	}
	return cntA < cntB
}

// journalEntry is one deferred side effect: an add to a uint64 or Cycle
// accumulator, a max into an int high-water mark, or a named-counter
// delta, stamped with the cycle and event key at which the serial engine
// would have applied it.
type journalEntry struct {
	at    Cycle
	owner int32  // issuing event's key owner
	cnt   uint64 // issuing event's key counter
	u64   *uint64
	cyc   *Cycle
	maxi  *int
	name  string // named-counter key ("" if unused)
	delta uint64 // amount to add, or the max candidate
}

// Journal records result-visible side effects during a parallel window so
// they can be applied at the barrier instead of during execution. Two
// problems force the deferral. First, finish overrun: the serial engine
// stops dead at the finishing event, while a parallel window runs every
// shard to the window's end, so effects from the overrun must be
// discardable — the barrier applies only entries at or before the finish
// cut. Second, shared accumulators: machine-wide counters (the stats
// table, directory high-water marks) would be data races if shards wrote
// them mid-window. Deferred adds are safe to replay in any order because
// addition commutes, and maxes because max is associative and
// commutative, so the barrier's replay reproduces the serial totals
// exactly regardless of how the entries interleaved across shards.
//
// The recording methods are hot: they store into preallocated buffers
// with guarded indexed writes and never allocate. Ensure is the cold
// companion, called from the cluster's per-event prepare hook to keep
// headroom ahead of the writes.
type Journal struct {
	buf []journalEntry
	n   int
}

// Len reports how many entries are currently recorded.
func (j *Journal) Len() int { return j.n }

// Ensure grows the journal's buffer so at least headroom more entries fit
// without allocation. Cold path: called between events, never during one.
func (j *Journal) Ensure(headroom int) {
	if need := j.n + headroom; need > len(j.buf) {
		grown := make([]journalEntry, need+need/2+64)
		copy(grown, j.buf[:j.n])
		j.buf = grown
	}
}

// slot returns the next entry index, panicking if Ensure's headroom
// contract was violated.
func (j *Journal) slot() int {
	if j.n >= len(j.buf) {
		panic("sim: journal overflow: Ensure headroom too small for one event")
	}
	i := j.n
	j.n++
	return i
}

// AddU64 records a deferred add of delta to *p by the event at (at, owner,
// cnt).
func (j *Journal) AddU64(at Cycle, owner int32, cnt uint64, p *uint64, delta uint64) {
	i := j.slot()
	j.buf[i] = journalEntry{at: at, owner: owner, cnt: cnt, u64: p, delta: delta}
}

// AddCycle records a deferred add of delta to *p (see AddU64).
func (j *Journal) AddCycle(at Cycle, owner int32, cnt uint64, p *Cycle, delta Cycle) {
	i := j.slot()
	j.buf[i] = journalEntry{at: at, owner: owner, cnt: cnt, cyc: p, delta: uint64(delta)}
}

// MaxInt records a deferred max of candidate into *p (see AddU64).
func (j *Journal) MaxInt(at Cycle, owner int32, cnt uint64, p *int, candidate int) {
	i := j.slot()
	j.buf[i] = journalEntry{at: at, owner: owner, cnt: cnt, maxi: p, delta: uint64(candidate)}
}

// Count records a deferred named-counter add (see AddU64). The barrier
// resolves the name through the counter function passed to Apply, so the
// hot path never touches the counters map.
func (j *Journal) Count(at Cycle, owner int32, cnt uint64, name string, delta uint64) {
	i := j.slot()
	j.buf[i] = journalEntry{at: at, owner: owner, cnt: cnt, name: name, delta: delta}
}

// Apply replays every entry at or before cut in the canonical event
// order, then resets the journal. count receives named-counter deltas;
// the pointer entries are applied directly. A normal barrier passes
// MaxCut (everything); the finishing barrier passes the finish cut so
// effects the serial engine never applied are discarded with the rest of
// the overrun.
func (j *Journal) Apply(cut Cut, count func(name string, delta uint64)) {
	for i := 0; i < j.n; i++ {
		e := &j.buf[i]
		if !cut.Includes(e.at, e.owner, e.cnt) {
			continue
		}
		switch {
		case e.u64 != nil:
			*e.u64 += e.delta
		case e.cyc != nil:
			*e.cyc += Cycle(e.delta)
		case e.maxi != nil:
			if c := int(e.delta); c > *e.maxi {
				*e.maxi = c
			}
		default:
			count(e.name, e.delta)
		}
	}
	j.n = 0
}

// ---------------------------------------------------------------- Cluster

// Cluster drives one Engine per shard through lockstep time windows on a
// pool of persistent worker goroutines. The caller alternates
// RunWindow(end) with its own barrier work (merging staged cross-shard
// messages, applying journals); the cluster guarantees that when
// RunWindow returns, every shard has fired all its events below end and
// no worker is touching shard state.
//
// Memory model: the per-worker channel send in RunWindow publishes the
// caller's barrier-time writes to the worker, and the WaitGroup
// completion publishes the worker's window-time writes back to the
// caller, so the race detector sees a clean happens-before chain and —
// more importantly — the merged state each barrier reads is exactly the
// state the shards wrote.
type Cluster struct {
	engines []*Engine
	prepare []func() // per-shard cold headroom hook (may be nil)
	work    []chan Cycle
	wg      sync.WaitGroup
	stopped bool
}

// NewCluster starts one persistent worker goroutine per engine. prepare,
// when non-nil, holds one per-shard hook passed to Engine.RunWindow (see
// Journal.Ensure); it may be nil, or contain nils, for shards with no
// staging buffers. Stop must be called to join the workers.
func NewCluster(engines []*Engine, prepare []func()) *Cluster {
	c := &Cluster{
		engines: engines,
		prepare: prepare,
		work:    make([]chan Cycle, len(engines)),
	}
	for i := range engines {
		//lint:allow determinism(window handoff channel: shards are synchronized by barriers, and within a window each engine is single-threaded, so scheduling order cannot affect simulated behavior)
		c.work[i] = make(chan Cycle, 1)
		//lint:allow determinism(persistent window worker: runs one shard's engine strictly between barriers; the barrier merge serializes all cross-shard interaction in a canonical order)
		go c.worker(i)
	}
	return c
}

// worker is the persistent per-shard loop: receive a window end, run the
// shard's engine to it, signal the barrier.
func (c *Cluster) worker(i int) {
	var prep func()
	if c.prepare != nil {
		prep = c.prepare[i]
	}
	//lint:allow determinism(window handoff receive: see NewCluster)
	for end := range c.work[i] {
		c.engines[i].RunWindow(end, prep)
		c.wg.Done()
	}
}

// RunWindow runs every shard's engine through the window ending at end
// (exclusive) and returns once all shards are quiescent. Shards with no
// events inside the window are not dispatched, and the last active shard
// always runs inline on the calling goroutine — with one active shard
// (the common case in low-activity phases) no handoff happens at all,
// and with several the barrier goroutine does a shard's worth of work
// instead of parking while it waits.
func (c *Cluster) RunWindow(end Cycle) {
	active, last := 0, -1
	for i, e := range c.engines {
		if at, ok := e.NextAt(); ok && at < end {
			active++
			last = i
		}
	}
	if active == 0 {
		return
	}
	if active > 1 {
		c.wg.Add(active - 1)
		for i, e := range c.engines {
			if i == last {
				continue
			}
			if at, ok := e.NextAt(); ok && at < end {
				//lint:allow determinism(window handoff send: see NewCluster)
				c.work[i] <- end
			}
		}
	}
	var prep func()
	if c.prepare != nil {
		prep = c.prepare[last]
	}
	c.engines[last].RunWindow(end, prep)
	if active > 1 {
		c.wg.Wait()
	}
}

// NextAt reports the earliest pending event cycle across all shards and
// whether any shard has pending work. Callable only at a barrier.
func (c *Cluster) NextAt() (Cycle, bool) {
	var min Cycle
	found := false
	for _, e := range c.engines {
		if at, ok := e.NextAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// Pending reports the total pending events across all shards. Callable
// only at a barrier.
func (c *Cluster) Pending() int {
	total := 0
	for _, e := range c.engines {
		total += e.Pending()
	}
	return total
}

// Stop joins the worker goroutines. The cluster is unusable afterwards.
// Stop is idempotent.
func (c *Cluster) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, ch := range c.work {
		//lint:allow determinism(worker shutdown: close ends the per-shard worker loop after the final barrier; no simulated work remains)
		close(ch)
	}
}
