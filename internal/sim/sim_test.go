package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine at cycle %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events, want 0", e.Pending())
	}
}

func TestEngineFiresInCycleOrder(t *testing.T) {
	e := NewEngine()
	var order []Cycle
	for _, c := range []Cycle{30, 10, 20} {
		c := c
		e.At(c, func() { order = append(order, c) })
	}
	e.Run(0)
	want := []Cycle{10, 20, 30}
	for i, c := range want {
		if order[i] != c {
			t.Fatalf("event %d fired for cycle %d, want %d", i, order[i], c)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("engine at cycle %d after run, want 30", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of scheduling order: pos %d got %d", i, v)
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(100, func() {
		e.After(7, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 107 {
		t.Fatalf("After(7) from cycle 100 fired at %d, want 107", at)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel of pending event returned false")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, e.At(Cycle(i+1), func() { fired = append(fired, i) }))
	}
	e.Cancel(ids[5])
	e.Cancel(ids[0])
	e.Cancel(ids[9])
	e.Run(0)
	want := []int{1, 2, 3, 4, 6, 7, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Cycle(i*10), func() { count++ })
	}
	now, drained := e.Run(55)
	if drained {
		t.Fatal("Run reported drained with events pending")
	}
	if now != 55 {
		t.Fatalf("Run stopped at cycle %d, want 55", now)
	}
	if count != 5 {
		t.Fatalf("fired %d events before limit, want 5", count)
	}
	now, drained = e.Run(0)
	if !drained || now != 100 {
		t.Fatalf("final Run got (%d,%v), want (100,true)", now, drained)
	}
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Cycle(i), func() { count++ })
	}
	ok := e.RunUntil(func() bool { return count == 3 }, 0)
	if !ok {
		t.Fatal("RunUntil did not report condition satisfied")
	}
	if count != 3 {
		t.Fatalf("RunUntil fired %d events, want 3", count)
	}
	if e.Now() != 3 {
		t.Fatalf("engine at %d, want 3", e.Now())
	}
	ok = e.RunUntil(func() bool { return count == 100 }, 0)
	if ok {
		t.Fatal("RunUntil reported success for unreachable condition")
	}
	if count != 10 {
		t.Fatalf("queue should have drained; fired %d", count)
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Cycle(i), func() {})
	}
	e.Run(0)
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 50 {
			e.After(1, grow)
		}
	}
	e.At(0, grow)
	e.Run(0)
	if depth != 50 {
		t.Fatalf("chained scheduling reached depth %d, want 50", depth)
	}
	if e.Now() != 49 {
		t.Fatalf("engine at %d, want 49", e.Now())
	}
}

func TestServerNoContention(t *testing.T) {
	var s Server
	start := s.Reserve(100, 10)
	if start != 100 {
		t.Fatalf("idle server started job at %d, want 100", start)
	}
	if s.FreeAt() != 110 {
		t.Fatalf("server free at %d, want 110", s.FreeAt())
	}
}

func TestServerSerializes(t *testing.T) {
	var s Server
	s.Reserve(100, 10)
	start := s.Reserve(100, 5)
	if start != 110 {
		t.Fatalf("second job started at %d, want 110 (after first)", start)
	}
	if s.Waited != 10 {
		t.Fatalf("waited %d, want 10", s.Waited)
	}
	start = s.Reserve(200, 5)
	if start != 200 {
		t.Fatalf("late job started at %d, want 200", start)
	}
}

func TestServerStats(t *testing.T) {
	var s Server
	s.Reserve(0, 10)
	s.Reserve(0, 10)
	s.Reserve(0, 10)
	if s.Jobs != 3 {
		t.Fatalf("Jobs = %d, want 3", s.Jobs)
	}
	if s.Busy != 30 {
		t.Fatalf("Busy = %d, want 30", s.Busy)
	}
	if s.Waited != 10+20 {
		t.Fatalf("Waited = %d, want 30", s.Waited)
	}
	s.Reset()
	if s.Jobs != 0 || s.Busy != 0 || s.FreeAt() != 0 {
		t.Fatal("Reset did not clear server")
	}
}

// Property: service start times are monotone in reservation order and never
// precede arrival; busy time equals the sum of durations.
func TestServerPropertyMonotone(t *testing.T) {
	f := func(arrivals []uint16, durs []uint8) bool {
		var s Server
		var prevStart Cycle
		var sum Cycle
		now := Cycle(0)
		for i, a := range arrivals {
			now += Cycle(a % 100)
			d := Cycle(1)
			if i < len(durs) {
				d = Cycle(durs[i]%20) + 1
			}
			start := s.Reserve(now, d)
			if start < now || start < prevStart {
				return false
			}
			prevStart = start
			sum += d
		}
		return s.Busy == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine fires events in nondecreasing cycle order regardless
// of scheduling order.
func TestEnginePropertyOrdered(t *testing.T) {
	f := func(cycles []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		for _, c := range cycles {
			c := Cycle(c)
			e.At(c, func() { fired = append(fired, c) })
		}
		e.Run(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(cycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) over 10k draws hit %d distinct values, want 10", len(seen))
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPerm(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) = %v is not a permutation", p)
		}
		seen[v] = true
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestCycleSeconds(t *testing.T) {
	if got := Cycle(33_000_000).Seconds(); got != 1.0 {
		t.Fatalf("33M cycles = %v seconds, want 1.0", got)
	}
}
