// The allocs-per-op ratchet: steady-state event scheduling must stay
// allocation-free. The hotalloc analyzer proves the *sites* are gone
// statically; this test proves the *runtime* behavior, so a regression
// that sneaks past the call graph (say, an interface box the analyzer
// mismodels) still fails go test. Excluded under the race detector, whose
// instrumentation allocates on its own account.
//
//go:build !race

package sim

import "testing"

// allocCeiling is the committed ratchet: average heap allocations per
// scheduled-and-fired event in steady state. The event pool and the
// Caller scheduling path make this exactly zero; raising it requires
// editing this constant in a reviewed change.
const allocCeiling = 0

type nopCaller struct{ fired int }

func (c *nopCaller) Fire() { c.fired++ }

func nop() {}

// TestSteadyStateSchedulingAllocs drives a small fixed workload — two
// pooled-Caller events, one plain func event, and a schedule/cancel pair
// — through the engine after a warm-up pass, and requires the average
// allocation count per workload to stay at the committed ceiling.
func TestSteadyStateSchedulingAllocs(t *testing.T) {
	e := NewEngine()
	c := &nopCaller{}
	workload := func() {
		e.AtCall(e.Now(), nil, c)
		e.AfterCall(1, nil, c)
		e.At(e.Now(), nop)
		id := e.After(2, nop)
		if !e.Cancel(id) {
			t.Fatal("cancel of a pending event failed")
		}
		if _, drained := e.Run(0); !drained {
			t.Fatal("queue did not drain")
		}
	}
	// Warm-up: populate the event free list and the heap's backing array
	// so the measured runs exercise steady state, not first-touch growth.
	workload()
	if avg := testing.AllocsPerRun(200, workload); avg > allocCeiling {
		t.Errorf("steady-state scheduling allocates %.2f per workload, ceiling %d", avg, allocCeiling)
	}
	if c.fired == 0 {
		t.Fatal("caller never fired")
	}
}
