// Package sim provides the deterministic discrete-event simulation engine
// that underlies the machine model. It is the analog of the NWO simulator's
// core scheduler: a cycle-accurate event queue with a total ordering that
// makes every simulation run bit-for-bit reproducible.
//
// Determinism is the load-bearing property. The paper's methodology
// (Section 3) depends on NWO's "deterministic behavior and non-intrusive
// observation functions"; all controlled experiments in this repository
// assume that re-running a configuration yields the identical cycle count.
// The engine guarantees this by ordering events first by cycle, then by a
// monotonically increasing sequence number assigned at scheduling time.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
// Alewife's clock runs at 33 MHz, so 33e6 cycles correspond to one second
// of simulated execution.
type Cycle uint64

// CyclesPerSecond is the Alewife node clock rate (33 MHz Sparcle).
const CyclesPerSecond = 33_000_000

// Seconds converts a cycle count to simulated seconds at the Alewife clock.
func (c Cycle) Seconds() float64 { return float64(c) / CyclesPerSecond }

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// Caller is the allocation-free alternative to Event: a preallocated
// receiver whose Fire method runs when the event's cycle arrives. A hot
// caller keeps one Caller per logical operation (or a free list of them)
// and schedules it with AtCall; a pointer stores into the event without
// the closure allocation an Event capture costs, and without the boxing
// an interface conversion of a non-pointer would cost.
type Caller interface{ Fire() }

type scheduledEvent struct {
	at    Cycle
	seq   uint64
	fire  Event  // closure form; nil when call is set
	call  Caller // receiver form; nil when fire is set
	tag   any    // optional inspection tag (see AtTagged)
	index int    // heap index; -1 once popped or cancelled
	gen   uint64 // bumped on every release, invalidating stale EventIDs
}

// EventID identifies a scheduled event so it can be cancelled. Events are
// pooled: the generation captured at scheduling time keeps a stale ID
// (held across the event's firing) from cancelling the slot's next tenant.
type EventID struct {
	ev  *scheduledEvent
	gen uint64
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler with deterministic tie-breaking.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	fired  uint64
	free   []*scheduledEvent // released events awaiting reuse

	// Observer, when non-nil, is invoked after every dispatched event
	// with the clock and the number of events still pending. It feeds
	// the tracing subsystem's engine counters; it must not schedule or
	// cancel events. Nil (the default) costs one branch per Step.
	Observer func(now Cycle, pending int)
}

// NewEngine returns an empty engine positioned at cycle zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed since construction.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// panics: it indicates a protocol bug, and silently reordering time would
// destroy the determinism guarantee.
func (e *Engine) At(at Cycle, fn Event) EventID {
	return e.AtTagged(at, nil, fn)
}

// AtTagged schedules fn like At and attaches an inspection tag to the
// pending event. Tags never affect execution; they exist so external
// observers (the model checker's state-fingerprint layer) can enumerate
// what is queued without being able to look inside the closures.
func (e *Engine) AtTagged(at Cycle, tag any, fn Event) EventID {
	ev := e.schedule(at, tag)
	ev.fire = fn
	return EventID{ev, ev.gen}
}

// AtCall schedules a preallocated Caller to fire at the absolute cycle
// at, with an inspection tag. It is the allocation-free scheduling path:
// the event slot comes from the engine's free list and the receiver is
// caller-owned, so steady-state scheduling allocates nothing.
func (e *Engine) AtCall(at Cycle, tag any, c Caller) EventID {
	ev := e.schedule(at, tag)
	ev.call = c
	return EventID{ev, ev.gen}
}

// AfterCall schedules a Caller to fire delay cycles from now (see AtCall).
func (e *Engine) AfterCall(delay Cycle, tag any, c Caller) EventID {
	return e.AtCall(e.now+delay, tag, c)
}

// schedule acquires an event slot (reusing a released one when possible)
// and enqueues it. Scheduling in the past panics: it indicates a protocol
// bug, and silently reordering time would destroy determinism.
func (e *Engine) schedule(at Cycle, tag any) *scheduledEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now %d", at, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(scheduledEvent)
	}
	ev.at, ev.seq, ev.tag = at, e.seq, tag
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// release returns a fired event slot to the free list, invalidating any
// EventID still holding it.
func (e *Engine) release(ev *scheduledEvent) {
	ev.gen++
	ev.fire, ev.call, ev.tag = nil, nil, nil
	e.free = append(e.free, ev)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) EventID {
	return e.At(e.now+delay, fn)
}

// AfterTagged schedules fn to run delay cycles from now with a tag.
func (e *Engine) AfterTagged(delay Cycle, tag any, fn Event) EventID {
	return e.AtTagged(e.now+delay, tag, fn)
}

// TaggedEvent describes one pending event for inspection: its firing cycle
// and the tag it was scheduled with (nil for untagged events).
type TaggedEvent struct {
	At  Cycle
	Tag any
}

// PendingTagged returns the pending events in firing order (cycle, then
// scheduling sequence). The slice is a snapshot: mutating it does not
// affect the queue. The order is exactly the order Step would fire them if
// nothing else were scheduled, which is what makes it usable as part of a
// canonical machine-state fingerprint.
func (e *Engine) PendingTagged() []TaggedEvent {
	evs := make([]*scheduledEvent, len(e.events))
	copy(evs, e.events)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	out := make([]TaggedEvent, len(evs))
	for i, ev := range evs {
		out[i] = TaggedEvent{At: ev.at, Tag: ev.tag}
	}
	return out
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// (or was already cancelled) is a no-op and returns false; the generation
// check makes this safe even after the pooled slot has been reused.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.events, id.ev.index)
	id.ev.index = -1
	e.release(id.ev)
	return true
}

// Step fires the next event, advancing the clock to its cycle. It returns
// false if the queue is empty.
//
//swex:hotpath
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*scheduledEvent)
	e.now = ev.at
	e.fired++
	fire, call := ev.fire, ev.call
	e.release(ev)
	if call != nil {
		call.Fire()
	} else {
		fire()
	}
	if e.Observer != nil {
		e.Observer(e.now, len(e.events))
	}
	return true
}

// Run fires events until the queue drains or the clock passes limit.
// A limit of zero means no limit. It returns the cycle at which the engine
// stopped and whether the queue drained (as opposed to hitting the limit).
//
//swex:hotpath
func (e *Engine) Run(limit Cycle) (Cycle, bool) {
	for len(e.events) > 0 {
		if limit != 0 && e.events[0].at > limit {
			e.now = limit
			return e.now, false
		}
		e.Step()
	}
	return e.now, true
}

// RunUntil fires events while cond returns false, stopping as soon as cond
// is true (checked after each event) or the queue drains or the hard cycle
// limit is exceeded. It returns true if cond was satisfied.
func (e *Engine) RunUntil(cond func() bool, limit Cycle) bool {
	if cond() {
		return true
	}
	for len(e.events) > 0 {
		if limit != 0 && e.events[0].at > limit {
			e.now = limit
			return false
		}
		e.Step()
		if cond() {
			return true
		}
	}
	return false
}
