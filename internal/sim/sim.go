// Package sim provides the deterministic discrete-event simulation engine
// that underlies the machine model. It is the analog of the NWO simulator's
// core scheduler: a cycle-accurate event queue with a total ordering that
// makes every simulation run bit-for-bit reproducible.
//
// Determinism is the load-bearing property. The paper's methodology
// (Section 3) depends on NWO's "deterministic behavior and non-intrusive
// observation functions"; all controlled experiments in this repository
// assume that re-running a configuration yields the identical cycle count.
// The engine guarantees this by a total event order: first by cycle, then
// by an event key.
//
// Two keying disciplines exist, and they decide whether a simulation can
// run on the conservative parallel engine (parsim.go, DESIGN.md §14):
//
//   - Unkeyed (At, After, AtCall, ...): the key is a per-engine sequence
//     number assigned at scheduling time. Deterministic on one engine, but
//     the tie order between same-cycle events depends on the global
//     interleaving of scheduling calls — a property a sharded run cannot
//     reproduce. Standalone engine users (the litmus harness, the model
//     checker) use this form.
//   - Owned (OwnedAt, OwnedAtCall, ... after SetStreams): the key is
//     (owner, cnt) where owner is the model entity — here, the node — on
//     whose behalf the event is scheduled and cnt is drawn from the
//     owner's private counter stream. An owner's stream is consumed only
//     by that owner's own deterministic execution, so every event's key is
//     independent of how scheduling calls from different owners interleave.
//     That interleaving-independence is what lets a parallel run reproduce
//     the serial event order exactly; the machine uses owned scheduling for
//     every event, serial or parallel.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
// Alewife's clock runs at 33 MHz, so 33e6 cycles correspond to one second
// of simulated execution.
type Cycle uint64

// CyclesPerSecond is the Alewife node clock rate (33 MHz Sparcle).
const CyclesPerSecond = 33_000_000

// Seconds converts a cycle count to simulated seconds at the Alewife clock.
func (c Cycle) Seconds() float64 { return float64(c) / CyclesPerSecond }

// Event is a callback scheduled to run at a particular cycle.
type Event func()

// Caller is the allocation-free alternative to Event: a preallocated
// receiver whose Fire method runs when the event's cycle arrives. A hot
// caller keeps one Caller per logical operation (or a free list of them)
// and schedules it with AtCall; a pointer stores into the event without
// the closure allocation an Event capture costs, and without the boxing
// an interface conversion of a non-pointer would cost.
type Caller interface {
	// Fire runs the event's work when its cycle arrives.
	Fire()
}

// unkeyedOwner is the owner value for unkeyed events. It is the maximum
// int32, so unkeyed events sort after every owned event at the same cycle;
// among themselves they keep scheduling order via the engine sequence.
const unkeyedOwner = int32(^uint32(0) >> 1)

type scheduledEvent struct {
	at    Cycle
	owner int32  // key owner (node), or unkeyedOwner
	cnt   uint64 // owner-stream position, or engine sequence when unkeyed
	fire  Event  // closure form; nil when call is set
	call  Caller // receiver form; nil when fire is set
	tag   any    // optional inspection tag (see AtTagged)
	index int    // heap index; -1 once popped or cancelled
	gen   uint64 // bumped on every release, invalidating stale EventIDs
}

// EventID identifies a scheduled event so it can be cancelled. Events are
// pooled: the generation captured at scheduling time keeps a stale ID
// (held across the event's firing) from cancelling the slot's next tenant.
type EventID struct {
	ev  *scheduledEvent
	gen uint64
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].owner != h[j].owner {
		return h[i].owner < h[j].owner
	}
	return h[i].cnt < h[j].cnt
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler with deterministic tie-breaking.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	fired  uint64
	free   []*scheduledEvent // released events awaiting reuse

	// streams holds the per-owner key counters for owned scheduling (see
	// the package comment). Nil until SetStreams; owned calls then fall
	// back to unkeyed scheduling. In a parallel machine every shard engine
	// shares one slice — each shard consumes only the counters of nodes
	// whose code runs on it, so the sharing is race-free.
	streams []uint64

	// curOwner and curCnt are the key of the event currently firing,
	// readable through CurKey while inside an event. Between events they
	// hold the last fired event's key.
	curOwner int32
	curCnt   uint64

	// Observer, when non-nil, is invoked after every dispatched event
	// with the clock and the number of events still pending. It feeds
	// the tracing subsystem's engine counters; it must not schedule or
	// cancel events. Nil (the default) costs one branch per Step.
	Observer func(now Cycle, pending int)
}

// NewEngine returns an empty engine positioned at cycle zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have executed since construction.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// panics: it indicates a protocol bug, and silently reordering time would
// destroy the determinism guarantee.
func (e *Engine) At(at Cycle, fn Event) EventID {
	return e.AtTagged(at, nil, fn)
}

// AtTagged schedules fn like At and attaches an inspection tag to the
// pending event. Tags never affect execution; they exist so external
// observers (the model checker's state-fingerprint layer) can enumerate
// what is queued without being able to look inside the closures.
func (e *Engine) AtTagged(at Cycle, tag any, fn Event) EventID {
	ev := e.scheduleUnkeyed(at, tag)
	ev.fire = fn
	return EventID{ev, ev.gen}
}

// AtCall schedules a preallocated Caller to fire at the absolute cycle
// at, with an inspection tag. It is the allocation-free scheduling path:
// the event slot comes from the engine's free list and the receiver is
// caller-owned, so steady-state scheduling allocates nothing.
func (e *Engine) AtCall(at Cycle, tag any, c Caller) EventID {
	ev := e.scheduleUnkeyed(at, tag)
	ev.call = c
	return EventID{ev, ev.gen}
}

// AfterCall schedules a Caller to fire delay cycles from now (see AtCall).
func (e *Engine) AfterCall(delay Cycle, tag any, c Caller) EventID {
	return e.AtCall(e.now+delay, tag, c)
}

// scheduleUnkeyed acquires an event slot keyed by the engine-global
// sequence: the fallback discipline for engine users that never install
// key streams (see the package comment).
func (e *Engine) scheduleUnkeyed(at Cycle, tag any) *scheduledEvent {
	return e.schedule(at, unkeyedOwner, e.seq, tag)
}

// schedule acquires an event slot (reusing a released one when possible)
// and enqueues it under the given canonical key. Scheduling in the past
// panics: it indicates a protocol bug, and silently reordering time would
// destroy determinism.
func (e *Engine) schedule(at Cycle, owner int32, cnt uint64, tag any) *scheduledEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, now %d", at, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(scheduledEvent)
	}
	ev.at, ev.owner, ev.cnt, ev.tag = at, owner, cnt, tag
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// SetStreams installs the per-owner key counter streams, switching the
// Owned scheduling calls from the unkeyed fallback to canonical
// (owner, cnt) keys. The machine installs one slice, indexed by node, on
// every engine of a run — one engine serially, all shard engines in
// parallel — so both modes assign identical keys.
func (e *Engine) SetStreams(streams []uint64) { e.streams = streams }

// TakeCnt consumes and returns the next position of owner's key counter
// stream, for callers that stage an event during one window and schedule
// it later with KeyedAtCall. Consuming at staging time (rather than at the
// deferred scheduling call) keeps the stream position identical to a
// serial run, where the event is scheduled on the spot. Falls back to the
// engine sequence when no streams are installed.
//
//swex:hotpath
func (e *Engine) TakeCnt(owner int) uint64 {
	if e.streams == nil {
		c := e.seq
		e.seq++
		return c
	}
	c := e.streams[owner]
	e.streams[owner]++
	return c
}

// CurKey returns the key of the event currently firing (or the last fired
// event, between events). Staging paths stamp deferred work with it so a
// barrier merge can reproduce the exact serial order of the issuing
// events.
//
//swex:hotpath
func (e *Engine) CurKey() (owner int32, cnt uint64) { return e.curOwner, e.curCnt }

// ownedKey resolves the key for an owned scheduling call: the owner's
// next stream position, or the unkeyed fallback when no streams are
// installed (standalone engine users never install streams, and their
// owned calls then behave exactly like the unkeyed forms).
//
//swex:hotpath
func (e *Engine) ownedKey(owner int) (int32, uint64) {
	if e.streams == nil {
		return unkeyedOwner, e.seq
	}
	c := e.streams[owner]
	e.streams[owner]++
	return int32(owner), c
}

// OwnedAt schedules fn at the absolute cycle at with a canonical
// (owner, cnt) key drawn from owner's stream (see the package comment).
//
//swex:hotpath
func (e *Engine) OwnedAt(owner int, at Cycle, tag any, fn Event) EventID {
	o, c := e.ownedKey(owner)
	ev := e.schedule(at, o, c, tag)
	ev.fire = fn
	return EventID{ev, ev.gen}
}

// OwnedAfter schedules fn delay cycles from now with a canonical key (see
// OwnedAt).
//
//swex:hotpath
func (e *Engine) OwnedAfter(owner int, delay Cycle, tag any, fn Event) EventID {
	return e.OwnedAt(owner, e.now+delay, tag, fn)
}

// OwnedAtCall schedules a preallocated Caller at the absolute cycle at
// with a canonical key (see OwnedAt and AtCall).
//
//swex:hotpath
func (e *Engine) OwnedAtCall(owner int, at Cycle, tag any, c Caller) EventID {
	o, cnt := e.ownedKey(owner)
	ev := e.schedule(at, o, cnt, tag)
	ev.call = c
	return EventID{ev, ev.gen}
}

// KeyedAtCall schedules a Caller with an explicit pre-assigned key, taken
// earlier with TakeCnt. The parallel barrier merge uses it to schedule
// staged deliveries with the key the serial engine would have assigned at
// send time.
func (e *Engine) KeyedAtCall(owner int32, cnt uint64, at Cycle, tag any, c Caller) EventID {
	ev := e.schedule(at, owner, cnt, tag)
	ev.call = c
	return EventID{ev, ev.gen}
}

// release returns a fired event slot to the free list, invalidating any
// EventID still holding it.
func (e *Engine) release(ev *scheduledEvent) {
	ev.gen++
	ev.fire, ev.call, ev.tag = nil, nil, nil
	e.free = append(e.free, ev)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) EventID {
	return e.At(e.now+delay, fn)
}

// AfterTagged schedules fn to run delay cycles from now with a tag.
func (e *Engine) AfterTagged(delay Cycle, tag any, fn Event) EventID {
	return e.AtTagged(e.now+delay, tag, fn)
}

// TaggedEvent describes one pending event for inspection: its firing cycle
// and the tag it was scheduled with (nil for untagged events).
type TaggedEvent struct {
	// At is the cycle the event will fire.
	At Cycle
	// Tag is the caller-supplied inspection tag, nil if untagged.
	Tag any
}

// PendingTagged returns the pending events in firing order (cycle, then
// event key). The slice is a snapshot: mutating it does not
// affect the queue. The order is exactly the order Step would fire them if
// nothing else were scheduled, which is what makes it usable as part of a
// canonical machine-state fingerprint.
func (e *Engine) PendingTagged() []TaggedEvent {
	evs := make([]*scheduledEvent, len(e.events))
	copy(evs, e.events)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		if evs[i].owner != evs[j].owner {
			return evs[i].owner < evs[j].owner
		}
		return evs[i].cnt < evs[j].cnt
	})
	out := make([]TaggedEvent, len(evs))
	for i, ev := range evs {
		out[i] = TaggedEvent{At: ev.at, Tag: ev.tag}
	}
	return out
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// (or was already cancelled) is a no-op and returns false; the generation
// check makes this safe even after the pooled slot has been reused.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.events, id.ev.index)
	id.ev.index = -1
	e.release(id.ev)
	return true
}

// Step fires the next event, advancing the clock to its cycle. It returns
// false if the queue is empty.
//
//swex:hotpath
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*scheduledEvent)
	e.now = ev.at
	e.curOwner, e.curCnt = ev.owner, ev.cnt
	e.fired++
	fire, call := ev.fire, ev.call
	e.release(ev)
	if call != nil {
		call.Fire()
	} else {
		fire()
	}
	if e.Observer != nil {
		e.Observer(e.now, len(e.events))
	}
	return true
}

// Run fires events until the queue drains or the clock passes limit.
// A limit of zero means no limit. It returns the cycle at which the engine
// stopped and whether the queue drained (as opposed to hitting the limit).
//
//swex:hotpath
func (e *Engine) Run(limit Cycle) (Cycle, bool) {
	for len(e.events) > 0 {
		if limit != 0 && e.events[0].at > limit {
			e.now = limit
			return e.now, false
		}
		e.Step()
	}
	return e.now, true
}

// NextAt reports the firing cycle of the earliest pending event and
// whether one exists. The parallel window scheduler uses it to skip empty
// windows: when every shard's next event lies beyond the current window,
// time jumps straight to the minimum NextAt instead of crawling one
// lookahead at a time.
func (e *Engine) NextAt() (Cycle, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// RunWindow fires every pending event whose cycle is strictly below end,
// in the canonical (cycle, key) order, leaving the clock at the last
// fired event.
// Events fired inside the window may schedule more events; those inside
// [now, end) fire in the same call. prepare, when non-nil, runs before
// every event — it is the parallel engine's cold headroom hook, where a
// shard re-ensures staging-buffer capacity so the hot event path itself
// can use guarded indexed stores and never allocate. RunWindow is not a
// hot path: it is the per-window driver, called once per shard per
// window from the cluster's worker loop.
func (e *Engine) RunWindow(end Cycle, prepare func()) {
	for len(e.events) > 0 && e.events[0].at < end {
		if prepare != nil {
			prepare()
		}
		e.Step()
	}
}

// RunUntil fires events while cond returns false, stopping as soon as cond
// is true (checked after each event) or the queue drains or the hard cycle
// limit is exceeded. It returns true if cond was satisfied.
func (e *Engine) RunUntil(cond func() bool, limit Cycle) bool {
	if cond() {
		return true
	}
	for len(e.events) > 0 {
		if limit != 0 && e.events[0].at > limit {
			e.now = limit
			return false
		}
		e.Step()
		if cond() {
			return true
		}
	}
	return false
}
