package sim

// Server models a resource that serializes work items: a CMMU transmit or
// receive queue, a memory bank, or the processor executing trap handlers.
// NWO models communication contention at the CMMU network queues (but not
// inside the network switches); Server is the primitive that implements
// that queueing discipline.
//
// A Server hands out start times: Reserve(now, dur) returns the cycle at
// which a request arriving at cycle now may begin service, reserving the
// resource for dur cycles from that point. Requests are served in
// reservation order (FIFO), which is deterministic because the engine
// fires events deterministically.
type Server struct {
	freeAt Cycle // first cycle at which the resource is idle

	// Busy accumulates total occupied cycles, for utilization statistics.
	Busy Cycle
	// Jobs counts reservations.
	Jobs uint64
	// Waited accumulates cycles spent queued (start - arrival).
	Waited Cycle
}

// Reserve books the server for dur cycles for a request arriving at now,
// and returns the cycle at which service starts.
func (s *Server) Reserve(now Cycle, dur Cycle) (start Cycle) {
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	s.Waited += start - now
	s.freeAt = start + dur
	s.Busy += dur
	s.Jobs++
	return start
}

// FreeAt reports the cycle at which the server next becomes idle.
func (s *Server) FreeAt() Cycle { return s.freeAt }

// IdleAt reports whether the server is idle at the given cycle.
func (s *Server) IdleAt(now Cycle) bool { return s.freeAt <= now }

// Reset clears the server's schedule and statistics.
func (s *Server) Reset() { *s = Server{} }
