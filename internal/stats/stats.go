// Package stats provides the non-intrusive observation functions of the
// simulator: counters, latency samples, and histograms. These correspond to
// the measurement machinery NWO provided for the paper's experiments —
// software-handler latency tables (Tables 1 and 2), run-time ratios
// (Figure 2), speedups (Figures 3–5), and the worker-set histogram
// (Figure 6). Collection never perturbs simulated time.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Sample accumulates scalar observations and reports summary statistics.
type Sample struct {
	values []float64
	sum    float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Sum reports the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Median reports the median observation, or 0 for an empty sample.
// The paper uses the median request to build Table 2's cycle breakdown
// ("we choose a median request of each type").
func (s *Sample) Median() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Min reports the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Reset discards all observations.
func (s *Sample) Reset() { s.values = s.values[:0]; s.sum = 0 }

// Hist is an integer-bucket histogram, used for worker-set-size
// distributions (Figure 6).
type Hist struct {
	counts map[int]uint64
	total  uint64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make(map[int]uint64)}
}

// Add increments the bucket for value by one.
func (h *Hist) Add(value int) { h.AddN(value, 1) }

// AddN increments the bucket for value by n.
func (h *Hist) AddN(value int, n uint64) {
	h.counts[value] += n
	h.total += n
}

// Count returns the number of observations in the bucket for value.
func (h *Hist) Count(value int) uint64 { return h.counts[value] }

// Total returns the number of observations across all buckets.
func (h *Hist) Total() uint64 { return h.total }

// Buckets returns the occupied bucket values in ascending order.
func (h *Hist) Buckets() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// MaxBucket returns the largest occupied bucket value, or 0 if empty.
func (h *Hist) MaxBucket() int {
	m := 0
	for k := range h.counts {
		if k > m {
			m = k
		}
	}
	return m
}

// String renders the histogram one bucket per line.
func (h *Hist) String() string {
	var b strings.Builder
	for _, k := range h.Buckets() {
		fmt.Fprintf(&b, "%6d: %d\n", k, h.counts[k])
	}
	return b.String()
}

// Counters is a named set of monotonically increasing event counters.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.m[name]++ }

// Addc adds n to the named counter.
func (c *Counters) Addc(name string, n uint64) { c.m[name] += n }

// Get returns the value of the named counter (0 if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns all touched counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the counters one per line in sorted order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, k := range c.Names() {
		fmt.Fprintf(&b, "%-40s %d\n", k, c.m[k])
	}
	return b.String()
}

// MarshalJSON renders the histogram as a {"size": count} object with
// string keys in ascending numeric order.
func (h *Hist) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range h.Buckets() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", fmt.Sprintf("%d", k), h.counts[k])
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}
