package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Activity identifies one of the cycle-consuming activities inside a
// software protocol handler. These are exactly the rows of the paper's
// Table 2, which accounts for every cycle spent in a median read and write
// request for both the flexible (C) and hand-tuned (assembly) handlers.
type Activity int

const (
	ActTrapDispatch  Activity = iota // hardware exception entry sequence
	ActMsgDispatch                   // system message dispatch
	ActProtoDispatch                 // protocol-specific dispatch (C only)
	ActDecodeModify                  // decode and modify hardware directory
	ActSaveState                     // save state for function calls (C only)
	ActMemMgmt                       // memory management (free lists)
	ActHashAdmin                     // hash table administration (C only)
	ActStorePointers                 // store pointers into extended directory
	ActInvalidate                    // invalidation lookup and transmit
	ActNonAlewife                    // support for non-Alewife protocols (C only)
	ActTrapReturn                    // return from trap
	NumActivities
)

var activityNames = [NumActivities]string{
	"trap dispatch",
	"system message dispatch",
	"protocol-specific dispatch",
	"decode and modify hardware directory",
	"save state for function calls",
	"memory management",
	"hash table administration",
	"store pointers into extended directory",
	"invalidation lookup and transmit",
	"support for non-Alewife protocols",
	"trap return",
}

// String returns the paper's row label for the activity.
func (a Activity) String() string {
	if a < 0 || a >= NumActivities {
		return fmt.Sprintf("activity(%d)", int(a))
	}
	return activityNames[a]
}

// Breakdown is a per-activity cycle account for a single handler
// invocation: one column cell group of Table 2.
type Breakdown [NumActivities]uint64

// Total sums the activity cycles.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// RequestKind distinguishes the software-handled request classes the paper
// measures separately: read requests (directory overflow on a read) and
// write requests (invalidation of an overflowed worker set).
type RequestKind int

const (
	ReadRequest RequestKind = iota
	WriteRequest
	AckRequest   // acknowledgment handled in software (ACK / LACK variants)
	LocalRequest // intra-node access trapped by the software-only directory
	NumRequestKinds
)

func (k RequestKind) String() string {
	switch k {
	case ReadRequest:
		return "read"
	case WriteRequest:
		return "write"
	case AckRequest:
		return "ack"
	case LocalRequest:
		return "local"
	}
	return fmt.Sprintf("request(%d)", int(k))
}

// HandlerRecord captures one software handler invocation: its kind, its
// total latency, and its per-activity breakdown. The sharers count records
// how many readers the affected block had, so Table 1 can be sliced by
// readers-per-block.
type HandlerRecord struct {
	Kind      RequestKind
	Cycles    uint64
	Sharers   int
	Breakdown Breakdown
}

// Ledger collects handler records for latency tables. It is the
// measurement instrument behind Tables 1 and 2.
type Ledger struct {
	records []HandlerRecord
}

// Record appends one handler invocation.
func (l *Ledger) Record(r HandlerRecord) { l.records = append(l.records, r) }

// N reports the number of recorded invocations.
func (l *Ledger) N() int { return len(l.records) }

// Records returns a copy of all records.
func (l *Ledger) Records() []HandlerRecord {
	return append([]HandlerRecord(nil), l.records...)
}

// Mean returns the average latency in cycles of records matching kind,
// restricted to those with the given sharers count when sharers >= 0.
func (l *Ledger) Mean(kind RequestKind, sharers int) float64 {
	var sum uint64
	var n int
	for _, r := range l.records {
		if r.Kind != kind {
			continue
		}
		if sharers >= 0 && r.Sharers != sharers {
			continue
		}
		sum += r.Cycles
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Median returns the record whose total latency is the median among records
// matching kind (and sharers, when sharers >= 0), mirroring the paper's
// method for Table 2 ("we choose a median request of each type"). The
// boolean result is false when no records match.
func (l *Ledger) Median(kind RequestKind, sharers int) (HandlerRecord, bool) {
	var matching []HandlerRecord
	for _, r := range l.records {
		if r.Kind != kind {
			continue
		}
		if sharers >= 0 && r.Sharers != sharers {
			continue
		}
		matching = append(matching, r)
	}
	if len(matching) == 0 {
		return HandlerRecord{}, false
	}
	sort.SliceStable(matching, func(i, j int) bool {
		return matching[i].Cycles < matching[j].Cycles
	})
	return matching[len(matching)/2], true
}

// Count reports how many records match kind.
func (l *Ledger) Count(kind RequestKind) int {
	n := 0
	for _, r := range l.records {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// Reset discards all records.
func (l *Ledger) Reset() { l.records = l.records[:0] }

// FormatBreakdown renders read and write breakdowns side by side in the
// layout of Table 2.
func FormatBreakdown(read, write *Breakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %10s %10s\n", "activity", "read", "write")
	for a := Activity(0); a < NumActivities; a++ {
		r, w := read[a], write[a]
		rs, ws := "N/A", "N/A"
		if r > 0 {
			rs = fmt.Sprintf("%d", r)
		}
		if w > 0 {
			ws = fmt.Sprintf("%d", w)
		}
		fmt.Fprintf(&b, "%-42s %10s %10s\n", a.String(), rs, ws)
	}
	fmt.Fprintf(&b, "%-42s %10d %10d\n", "total (median latency)", read.Total(), write.Total())
	return b.String()
}

// MarshalJSON renders a breakdown as an {"activity": cycles} object,
// omitting zero rows (the table's N/A cells).
func (b Breakdown) MarshalJSON() ([]byte, error) {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for a := Activity(0); a < NumActivities; a++ {
		if b[a] == 0 {
			continue
		}
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%q:%d", a.String(), b[a])
	}
	if !first {
		sb.WriteByte(',')
	}
	fmt.Fprintf(&sb, "%q:%d", "total", b.Total())
	sb.WriteByte('}')
	return []byte(sb.String()), nil
}
