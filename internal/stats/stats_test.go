package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v, want 3", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %v, want 15", s.Sum())
	}
}

func TestSampleMedianEven(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Median() != 2.5 {
		t.Fatalf("Median of 1..4 = %v, want 2.5", s.Median())
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Reset()
	if s.N() != 0 || s.Sum() != 0 {
		t.Fatal("Reset did not clear sample")
	}
}

func TestSampleValuesIsCopy(t *testing.T) {
	var s Sample
	s.Add(1)
	v := s.Values()
	v[0] = 99
	if s.Values()[0] != 1 {
		t.Fatal("Values returned a view into internal storage")
	}
}

// Property: Min <= Median <= Max and Mean lies within [Min, Max].
func TestSamplePropertyBounds(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			s.Add(float64(v))
		}
		return s.Min() <= s.Median() && s.Median() <= s.Max() &&
			s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHist(t *testing.T) {
	h := NewHist()
	h.Add(1)
	h.Add(1)
	h.AddN(64, 5)
	if h.Count(1) != 2 {
		t.Fatalf("Count(1) = %d, want 2", h.Count(1))
	}
	if h.Count(64) != 5 {
		t.Fatalf("Count(64) = %d, want 5", h.Count(64))
	}
	if h.Count(3) != 0 {
		t.Fatalf("Count(3) = %d, want 0", h.Count(3))
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if h.MaxBucket() != 64 {
		t.Fatalf("MaxBucket = %d, want 64", h.MaxBucket())
	}
	b := h.Buckets()
	if len(b) != 2 || b[0] != 1 || b[1] != 64 {
		t.Fatalf("Buckets = %v, want [1 64]", b)
	}
	if !strings.Contains(h.String(), "64: 5") {
		t.Fatalf("String() missing bucket line:\n%s", h.String())
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("traps")
	c.Inc("traps")
	c.Addc("messages", 10)
	if c.Get("traps") != 2 {
		t.Fatalf("traps = %d, want 2", c.Get("traps"))
	}
	if c.Get("messages") != 10 {
		t.Fatalf("messages = %d, want 10", c.Get("messages"))
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter should read 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "messages" || names[1] != "traps" {
		t.Fatalf("Names = %v, want sorted [messages traps]", names)
	}
	if !strings.Contains(c.String(), "traps") {
		t.Fatal("String() missing counter")
	}
}

func TestActivityNames(t *testing.T) {
	if ActTrapDispatch.String() != "trap dispatch" {
		t.Fatalf("ActTrapDispatch = %q", ActTrapDispatch.String())
	}
	if ActInvalidate.String() != "invalidation lookup and transmit" {
		t.Fatalf("ActInvalidate = %q", ActInvalidate.String())
	}
	if Activity(99).String() != "activity(99)" {
		t.Fatalf("out-of-range activity = %q", Activity(99).String())
	}
	for a := Activity(0); a < NumActivities; a++ {
		if a.String() == "" {
			t.Fatalf("activity %d has empty name", a)
		}
	}
}

func TestBreakdownTotalAndAdd(t *testing.T) {
	var b Breakdown
	b[ActTrapDispatch] = 11
	b[ActTrapReturn] = 14
	if b.Total() != 25 {
		t.Fatalf("Total = %d, want 25", b.Total())
	}
	var c Breakdown
	c[ActTrapDispatch] = 1
	b.Add(&c)
	if b[ActTrapDispatch] != 12 {
		t.Fatalf("Add: got %d, want 12", b[ActTrapDispatch])
	}
}

func TestLedgerMeanBySharers(t *testing.T) {
	var l Ledger
	l.Record(HandlerRecord{Kind: ReadRequest, Cycles: 400, Sharers: 8})
	l.Record(HandlerRecord{Kind: ReadRequest, Cycles: 440, Sharers: 8})
	l.Record(HandlerRecord{Kind: ReadRequest, Cycles: 300, Sharers: 12})
	l.Record(HandlerRecord{Kind: WriteRequest, Cycles: 700, Sharers: 8})
	if got := l.Mean(ReadRequest, 8); got != 420 {
		t.Fatalf("Mean(read,8) = %v, want 420", got)
	}
	if got := l.Mean(ReadRequest, -1); got != 380 {
		t.Fatalf("Mean(read,any) = %v, want 380", got)
	}
	if got := l.Mean(WriteRequest, 8); got != 700 {
		t.Fatalf("Mean(write,8) = %v, want 700", got)
	}
	if got := l.Mean(AckRequest, -1); got != 0 {
		t.Fatalf("Mean(ack) = %v, want 0", got)
	}
}

func TestLedgerMedian(t *testing.T) {
	var l Ledger
	for _, c := range []uint64{100, 500, 300} {
		l.Record(HandlerRecord{Kind: WriteRequest, Cycles: c, Sharers: 8})
	}
	r, ok := l.Median(WriteRequest, 8)
	if !ok {
		t.Fatal("Median found no records")
	}
	if r.Cycles != 300 {
		t.Fatalf("median cycles = %d, want 300", r.Cycles)
	}
	if _, ok := l.Median(ReadRequest, -1); ok {
		t.Fatal("Median reported success with no matching records")
	}
}

func TestLedgerCountAndReset(t *testing.T) {
	var l Ledger
	l.Record(HandlerRecord{Kind: ReadRequest})
	l.Record(HandlerRecord{Kind: ReadRequest})
	l.Record(HandlerRecord{Kind: AckRequest})
	if l.Count(ReadRequest) != 2 || l.Count(AckRequest) != 1 || l.N() != 3 {
		t.Fatal("Count/N mismatch")
	}
	l.Reset()
	if l.N() != 0 {
		t.Fatal("Reset did not clear ledger")
	}
}

func TestRequestKindString(t *testing.T) {
	cases := map[RequestKind]string{
		ReadRequest:  "read",
		WriteRequest: "write",
		AckRequest:   "ack",
		LocalRequest: "local",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFormatBreakdown(t *testing.T) {
	var read, write Breakdown
	read[ActTrapDispatch] = 11
	write[ActInvalidate] = 419
	out := FormatBreakdown(&read, &write)
	if !strings.Contains(out, "trap dispatch") {
		t.Fatal("missing trap dispatch row")
	}
	if !strings.Contains(out, "N/A") {
		t.Fatal("zero cells should render N/A, matching the paper's table")
	}
	if !strings.Contains(out, "total (median latency)") {
		t.Fatal("missing total row")
	}
}

func TestHistMarshalJSON(t *testing.T) {
	h := NewHist()
	h.Add(1)
	h.AddN(64, 5)
	out, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"1":1,"64":5}` {
		t.Fatalf("JSON = %s", out)
	}
}
