package machine

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/sim"
)

// This file drives the conservative parallel mode (Config.SimWorkers > 1):
// nodes are sharded across per-shard engines, windows of the mesh
// lookahead run on a sim.Cluster worker pool, and every barrier merges the
// shards' staged cross-shard work in the canonical event order that keeps
// the run byte-identical to serial (DESIGN.md §14).

// forcedLookahead, when positive, overrides the mesh lookahead. It exists
// only for the negative test fixture: an oversized lookahead lets shards
// run past cycles at which cross-shard messages should have arrived, and
// the byte-identity suite must catch the resulting divergence.
var forcedLookahead sim.Cycle

// ForceLookaheadForTest overrides the parallel window width, returning a
// restore function. Test-only: a lookahead wider than the mesh's minimum
// message latency is unsound by construction (see mesh.Lookahead) and
// deliberately breaks serial equivalence.
func ForceLookaheadForTest(l sim.Cycle) (restore func()) {
	prev := forcedLookahead
	forcedLookahead = l
	return func() { forcedLookahead = prev }
}

// parRun is the machine's parallel-mode state.
type parRun struct {
	m         *Machine
	engines   []*sim.Engine
	shardOf   []int32
	lo, hi    []int // shard s owns nodes [lo[s], hi[s])
	lookahead sim.Cycle

	// Finish bookkeeping, written by the owning shard's worker (the
	// fabric's ThreadDone hook fires on-shard) and read by the master at
	// barriers; the cluster's barrier happens-before publishes it. When a
	// shard's last thread retires, done records the position of the
	// retiring event in the canonical event order. The globally last
	// retirement — the maximum done across shards — is exactly where the
	// serial engine would have stopped, and serves as the finish cut.
	remaining []int
	done      []sim.Cut
}

// enableParallel builds the shard decomposition and wires the parallel
// hooks into every layer. Called from New; the machine must not have
// simulated anything yet.
func (m *Machine) enableParallel(workers int) error {
	s := workers
	if s > m.Cfg.Nodes {
		s = m.Cfg.Nodes
	}
	l := m.Net.Lookahead()
	if forcedLookahead > 0 {
		l = forcedLookahead
	}
	if l < 1 {
		return fmt.Errorf("machine: network lookahead is zero; conservative windows cannot make progress")
	}
	p := &parRun{
		m:         m,
		engines:   make([]*sim.Engine, s),
		shardOf:   make([]int32, m.Cfg.Nodes),
		lo:        make([]int, s),
		hi:        make([]int, s),
		lookahead: l,
		remaining: make([]int, s),
		done:      make([]sim.Cut, s),
	}
	// Contiguous, near-equal node ranges. The decomposition affects only
	// which worker runs which node: every event is keyed by its owning
	// node (sim.Engine.OwnedAt and friends), so the merged event order is
	// the same at every worker count.
	base, rem := m.Cfg.Nodes/s, m.Cfg.Nodes%s
	node := 0
	for i := 0; i < s; i++ {
		p.lo[i] = node
		node += base
		if i < rem {
			node++
		}
		p.hi[i] = node
		for n := p.lo[i]; n < p.hi[i]; n++ {
			p.shardOf[n] = int32(i)
		}
		p.engines[i] = sim.NewEngine()
	}
	// All shard engines share one key-counter slice, exactly as the
	// single serial engine would: each shard consumes only the streams of
	// nodes whose code runs on it.
	streams := make([]uint64, m.Cfg.Nodes)
	for _, e := range p.engines {
		e.SetStreams(streams)
	}
	key := func(n mem.NodeID) (sim.Cycle, int32, uint64) {
		e := p.engines[p.shardOf[n]]
		o, c := e.CurKey()
		return e.Now(), o, c
	}
	m.Fabric.EnableParallel(p.engines, p.shardOf, p.onThreadDone)
	m.Traps.EnableParallel(
		func(n mem.NodeID) sim.Cycle { return p.engines[p.shardOf[n]].Now() },
		m.Fabric.StatAddCycle,
	)
	if m.Soft != nil {
		m.Soft.EnableParallel(key)
	}
	if m.Fabric.Tier != nil {
		m.Fabric.Tier.EnableParallel(func(n mem.NodeID) sim.Cycle {
			return p.engines[p.shardOf[n]].Now()
		})
	}
	m.par = p
	return nil
}

// onThreadDone is the fabric's thread-retirement hook: it runs on the
// retiring node's shard, inside the retiring event.
func (p *parRun) onThreadDone(n mem.NodeID) {
	s := p.shardOf[n]
	p.remaining[s]--
	if p.remaining[s] == 0 {
		e := p.engines[s]
		o, c := e.CurKey()
		p.done[s] = sim.Cut{At: e.Now(), Owner: o, Cnt: c}
	}
}

// runParallel is Run's window loop. Windows start at the globally
// earliest pending event — a global property, so window boundaries (and
// with them every barrier decision) are identical at every worker count —
// and span one lookahead.
func (m *Machine) runParallel(program func(*proc.Env), limit sim.Cycle) (Result, error) {
	p := m.par
	threads := m.Cfg.ThreadsPerNode
	if threads < 1 {
		threads = 1
	}
	for _, n := range m.Nodes {
		n.StartThreads(threads, program)
	}
	for s := range p.remaining {
		p.remaining[s] = (p.hi[s] - p.lo[s]) * threads
	}
	// The software stage's prepare sweeps every home of the shard, so it
	// runs on a countdown: one call buys softPrepareBatch events of
	// headroom (one event records into at most one home), keeping the
	// sweep off the per-event cost. The fabric's prepare is O(1) and runs
	// every event.
	const softPrepareBatch = 64
	countdown := make([]int, len(p.engines))
	prepare := make([]func(), len(p.engines))
	for s := range prepare {
		s := s
		lo, hi := p.lo[s], p.hi[s]
		prepare[s] = func() {
			m.Fabric.PrepareShard(s)
			if m.Soft != nil {
				if countdown[s] > 0 {
					countdown[s]--
					return
				}
				m.Soft.PrepareShard(lo, hi, softPrepareBatch)
				countdown[s] = softPrepareBatch - 1
			}
		}
	}
	cluster := sim.NewCluster(p.engines, prepare)
	defer cluster.Stop()

	allDone := func() bool {
		for _, r := range p.remaining {
			if r != 0 {
				return false
			}
		}
		return true
	}
	for {
		at, ok := cluster.NextAt()
		if !ok || (limit != 0 && at > limit) {
			return Result{}, m.parStuck(cluster, limit, ok)
		}
		cluster.RunWindow(at + p.lookahead)
		// Barrier: all shards quiescent, their staged work published.
		if allDone() {
			m.finishMerge()
			return m.result(), nil
		}
		// Every thread still alive retires at or after the next window,
		// so nothing staged so far is overrun: apply and flush in full.
		for s := range p.engines {
			m.Fabric.ApplyJournal(s, sim.MaxCut)
		}
		m.Fabric.FlushStagedSends(sim.MaxCut)
	}
}

// parStuck builds the deadlock/limit error, mirroring the serial path's.
func (m *Machine) parStuck(cluster *sim.Cluster, limit sim.Cycle, pendingWork bool) error {
	var stuck []mem.NodeID
	for _, n := range m.Nodes {
		if !n.Done() {
			stuck = append(stuck, n.ID)
		}
	}
	now := limit
	if !pendingWork {
		now = 0
		for _, e := range m.par.engines {
			if e.Now() > now {
				now = e.Now()
			}
		}
	}
	return fmt.Errorf("machine: run did not complete at cycle %d (stuck nodes: %v, pending events: %d)",
		now, stuck, cluster.Pending())
}

// finishMerge is the final barrier. The serial engine stops dead at the
// event in which the last thread retires; the shards instead ran their
// final window to its end, firing overrun events the serial engine never
// would have. Every staged effect is stamped with its issuing event's
// position in the canonical order, so the cut at the globally last
// retirement — the maximum of the per-shard retirement positions — applies
// exactly the staged work the serial engine performed and discards the
// rest (DESIGN.md §14).
func (m *Machine) finishMerge() {
	p := m.par
	cut := p.done[0]
	for _, d := range p.done[1:] {
		if sim.KeyLess(cut.At, cut.Owner, cut.Cnt, d.At, d.Owner, d.Cnt) {
			cut = d
		}
	}
	for s := range p.engines {
		m.Fabric.ApplyJournal(s, cut)
	}
	m.Fabric.FlushStagedSends(cut)
	if m.Soft != nil {
		m.Soft.DrainStaged(cut)
	}
}
