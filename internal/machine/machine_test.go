package machine

import (
	"testing"

	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/sim"
)

func TestTrivialProgramCompletes(t *testing.T) {
	m := MustNew(DefaultConfig(4, proto.FullMap()))
	res, err := m.Run(func(env *proc.Env) {
		env.Compute(10)
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time == 0 {
		t.Fatal("run took zero time")
	}
	for i, f := range res.Finish {
		if f == 0 {
			t.Fatalf("node %d has no finish time", i)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	program := func(env *proc.Env) {
		base := mem.SegBase(0)
		for i := 0; i < 20; i++ {
			env.FetchAdd(base, 1)
			env.Read(base + mem.Addr(8*(int(env.ID())%4)))
			env.Compute(5)
		}
	}
	times := make([]sim.Cycle, 3)
	for trial := range times {
		m := MustNew(DefaultConfig(8, proto.LimitLESS(2)))
		m.Mem.AllocOn(0, 64)
		res, err := m.Run(program, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		times[trial] = res.Time
	}
	if times[0] != times[1] || times[1] != times[2] {
		t.Fatalf("nondeterministic run times: %v", times)
	}
}

func TestSharedCounterAcrossProtocols(t *testing.T) {
	for _, spec := range proto.Spectrum() {
		t.Run(spec.Name, func(t *testing.T) {
			m := MustNew(DefaultConfig(8, spec))
			a := m.Mem.AllocOn(0, 1)
			res, err := m.Run(func(env *proc.Env) {
				for i := 0; i < 5; i++ {
					env.FetchAdd(a, 1)
				}
			}, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Mem.Read(a); got != 0 {
				// The final value lives in some cache; flush by
				// reading through a fresh machine is impossible, so
				// check via the directory-owned value after the run:
				// simplest is to verify through a follow-up read.
				_ = got
			}
			// Verify with one more read from node 0.
			val := readWord(t, m, a)
			if val != 40 {
				t.Fatalf("counter = %d, want 40", val)
			}
			_ = res
		})
	}
}

// readWord drives one read on a finished machine.
func readWord(t *testing.T, m *Machine, a mem.Addr) uint64 {
	t.Helper()
	var got uint64
	done := false
	m.Fabric.Cache(0).Access(a, proto.Op{Done: func(v uint64) { got = v; done = true }})
	if !m.Engine.RunUntil(func() bool { return done }, 10_000_000) {
		t.Fatal("verification read did not complete")
	}
	return got
}

func TestSoftwareProtocolSlowerThanFullMap(t *testing.T) {
	// A widely shared, repeatedly written block must run slower on the
	// software-only directory than on full-map hardware.
	run := func(spec proto.Spec) sim.Cycle {
		m := MustNew(DefaultConfig(8, spec))
		a := m.Mem.AllocOn(0, 1)
		res, err := m.Run(func(env *proc.Env) {
			for i := 0; i < 10; i++ {
				env.Read(a)
				env.FetchAdd(a, 1)
			}
		}, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	full := run(proto.FullMap())
	h0 := run(proto.SoftwareOnly())
	if h0 <= full {
		t.Fatalf("software-only (%d cycles) not slower than full-map (%d)", h0, full)
	}
}

func TestTrapsCountedForLimitLESS(t *testing.T) {
	m := MustNew(DefaultConfig(8, proto.LimitLESS(2)))
	a := m.Mem.AllocOn(0, 1)
	res, err := m.Run(func(env *proc.Env) {
		env.Read(a) // 8 readers overflow 2 pointers
	}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps == 0 {
		t.Fatal("8 readers through 2 pointers should trap")
	}
	if res.Ledger == nil || res.Ledger.N() == 0 {
		t.Fatal("ledger empty after traps")
	}
	if res.HandlerCycles == 0 {
		t.Fatal("no handler cycles recorded")
	}
}

func TestFullMapNoTrapsNoLedger(t *testing.T) {
	m := MustNew(DefaultConfig(8, proto.FullMap()))
	a := m.Mem.AllocOn(0, 1)
	res, err := m.Run(func(env *proc.Env) { env.Read(a) }, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps != 0 {
		t.Fatalf("full-map trapped %d times", res.Traps)
	}
	if res.Ledger != nil {
		t.Fatal("full-map machine has a software ledger")
	}
}

func TestWorkerSetHistogram(t *testing.T) {
	m := MustNew(DefaultConfig(8, proto.FullMap()))
	a := m.Mem.AllocOn(0, 1)
	res, err := m.Run(func(env *proc.Env) { env.Read(a) }, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkerSets.Count(8) != 1 {
		t.Fatalf("worker-set histogram = %v, want one 8-node set", res.WorkerSets)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := MustNew(DefaultConfig(2, proto.FullMap()))
	a := m.Mem.AllocOn(0, 1)
	_, err := m.Run(func(env *proc.Env) {
		env.WaitChange(a, 0) // nobody ever writes: deadlock
	}, 100_000)
	if err == nil {
		t.Fatal("deadlocked run reported success")
	}
}

func TestRunLimitEnforced(t *testing.T) {
	m := MustNew(DefaultConfig(2, proto.FullMap()))
	_, err := m.Run(func(env *proc.Env) {
		for i := 0; i < 1000; i++ {
			env.Compute(1000)
		}
	}, 10_000)
	if err == nil {
		t.Fatal("limit exceeded but no error")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Spec: proto.FullMap()}); err == nil {
		t.Fatal("zero-node machine accepted")
	}
	if _, err := New(Config{Nodes: 4, Spec: proto.LimitLESS(2), Software: TunedASM}); err == nil {
		t.Fatal("assembly software accepted for non-H5 protocol")
	}
}

func TestVictimCacheConfigApplied(t *testing.T) {
	m := MustNew(Config{Nodes: 2, Spec: proto.FullMap(), VictimLines: 4, CacheLines: 8})
	// Conflict two blocks in the 8-line cache; the victim cache absorbs.
	a1 := m.Mem.AllocOn(0, 1)
	a2 := a1 + 8*mem.WordsPerBlock
	res, err := m.Run(func(env *proc.Env) {
		if env.ID() != 1 {
			return
		}
		for i := 0; i < 10; i++ {
			env.Read(a1)
			env.Read(a2)
		}
	}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Fabric.Cache(1).Cache().Stats
	if st.VictimHits == 0 {
		t.Fatal("victim cache never hit")
	}
	_ = res
}

func TestPerfectIfetchConfig(t *testing.T) {
	m := MustNew(Config{Nodes: 2, Spec: proto.FullMap(), PerfectIfetch: true})
	res, err := m.Run(func(env *proc.Env) {
		env.SetCode(proc.CodeSpace, 16)
		env.Compute(5)
		env.Compute(5)
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fabric.Cache(0).Cache().Stats.IMisses != 0 {
		t.Fatal("perfect ifetch recorded instruction misses")
	}
	_ = res
}

func TestIfetchModeledWhenEnabled(t *testing.T) {
	m := MustNew(Config{Nodes: 2, Spec: proto.FullMap()})
	_, err := m.Run(func(env *proc.Env) {
		env.SetCode(proc.CodeSpace, 4)
		for i := 0; i < 10; i++ {
			env.Compute(1)
		}
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Fabric.Cache(0).Cache().Stats
	if st.IMisses == 0 || st.IHits == 0 {
		t.Fatalf("ifetch not modeled: %d hits, %d misses", st.IHits, st.IMisses)
	}
}

func TestRunProfiledTimeline(t *testing.T) {
	m := MustNew(DefaultConfig(8, proto.LimitLESS(2)))
	a := m.Mem.AllocOn(0, 1)
	res, tl, err := m.RunProfiled(func(env *proc.Env) {
		for i := 0; i < 10; i++ {
			env.Read(a)
			env.FetchAdd(a, 1)
			env.Compute(500)
		}
	}, 0, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time == 0 {
		t.Fatal("no result")
	}
	if len(tl.Messages) < 2 {
		t.Fatalf("timeline has %d samples, want several", len(tl.Messages))
	}
	var total uint64
	for _, v := range tl.Messages {
		total += v
	}
	if total != res.Messages {
		t.Fatalf("timeline messages sum %d != result %d", total, res.Messages)
	}
	var traps uint64
	for _, v := range tl.Traps {
		traps += v
	}
	if traps != res.Traps {
		t.Fatalf("timeline traps sum %d != result %d", traps, res.Traps)
	}
}

func TestRunProfiledDetectsStuck(t *testing.T) {
	m := MustNew(DefaultConfig(2, proto.FullMap()))
	a := m.Mem.AllocOn(0, 1)
	_, _, err := m.RunProfiled(func(env *proc.Env) {
		env.WaitChange(a, 0)
	}, 50_000, 10_000)
	if err == nil {
		t.Fatal("stuck profiled run reported success")
	}
}

func TestConfigureBlockThroughMachine(t *testing.T) {
	m := MustNew(DefaultConfig(8, proto.LimitLESS(2)))
	a := m.Mem.AllocOn(0, 1)
	if err := m.ConfigureBlock(mem.BlockOf(a), proto.FullMap()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(func(env *proc.Env) { env.Read(a) }, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps != 0 {
		t.Fatalf("full-map-configured block trapped %d times with 8 readers", res.Traps)
	}
}
