package machine

import (
	"fmt"
	"strings"
	"testing"

	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/sim"
)

// fingerprint renders every Result field the exhibits can observe into one
// deterministic string, so serial/parallel comparisons fail loudly with a
// diffable dump instead of a bare mismatch.
func fingerprint(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "time=%d\n", res.Time)
	fmt.Fprintf(&b, "finish=%v\n", res.Finish)
	fmt.Fprintf(&b, "traps=%d handler=%d msgs=%d retries=%d\n",
		res.Traps, res.HandlerCycles, res.Messages, res.BusyRetries)
	fmt.Fprintf(&b, "counters:\n%s", res.Counters.String())
	fmt.Fprintf(&b, "workersets:\n%s", res.WorkerSets.String())
	if res.Ledger != nil {
		fmt.Fprintf(&b, "ledger n=%d\n", res.Ledger.N())
		for i, r := range res.Ledger.Records() {
			fmt.Fprintf(&b, "  %d: %v %d cycles sharers=%d %v\n",
				i, r.Kind, r.Cycles, r.Sharers, r.Breakdown)
		}
	}
	return b.String()
}

// runFingerprint builds a machine from cfg (with the given worker count),
// applies setup, runs program, and returns the result fingerprint.
func runFingerprint(t *testing.T, cfg Config, workers int, program func(*proc.Env)) string {
	t.Helper()
	cfg.SimWorkers = workers
	m := MustNew(cfg)
	m.Mem.AllocOn(0, 64)
	res, err := m.Run(program, 50_000_000)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return fingerprint(res)
}

// contendedProgram mixes the behaviors that exercise every merge path:
// fetch-and-add contention (BUSY retries, invalidations), wide read
// sharing (directory overflow traps on limited protocols), per-node
// private work, and uneven thread lengths.
func contendedProgram(env *proc.Env) {
	base := mem.SegBase(0)
	for i := 0; i < 12; i++ {
		env.FetchAdd(base, 1)
		env.Read(base + mem.Addr(8*(int(env.ID())%4)))
		env.Read(base + 8*mem.WordsPerBlock)
		env.Compute(sim.Cycle(computeLen(int(env.ID()))))
	}
	if int(env.ID())%3 == 0 {
		for i := 0; i < 20; i++ {
			env.FetchAdd(base+16*mem.WordsPerBlock, 2)
		}
	}
}

// computeLen gives deterministic, node-dependent compute lengths so
// threads finish at staggered cycles and the finish cut is actually
// exercised.
func computeLen(id int) int { return 3 + (id*7)%11 }

func TestParallelMatchesSerial(t *testing.T) {
	specs := []proto.Spec{proto.FullMap(), proto.LimitLESS(2), proto.SoftwareOnly()}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			cfg := DefaultConfig(16, spec)
			want := runFingerprint(t, cfg, 0, contendedProgram)
			for _, w := range []int{2, 3, 4, 8, 16} {
				got := runFingerprint(t, cfg, w, contendedProgram)
				if got != want {
					t.Errorf("workers=%d diverges from serial:\nserial:\n%s\nparallel:\n%s",
						w, want, got)
				}
			}
		})
	}
}

func TestParallelMoreWorkersThanNodes(t *testing.T) {
	cfg := DefaultConfig(4, proto.LimitLESS(2))
	want := runFingerprint(t, cfg, 0, contendedProgram)
	got := runFingerprint(t, cfg, 9, contendedProgram)
	if got != want {
		t.Errorf("workers>nodes diverges from serial:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestParallelMultipleThreadsPerNode(t *testing.T) {
	cfg := DefaultConfig(8, proto.LimitLESS(2))
	cfg.ThreadsPerNode = 2
	want := runFingerprint(t, cfg, 0, contendedProgram)
	for _, w := range []int{2, 4} {
		got := runFingerprint(t, cfg, w, contendedProgram)
		if got != want {
			t.Errorf("workers=%d with 2 threads/node diverges from serial", w)
		}
	}
}

// TestBrokenLookaheadDiverges is the negative control for the whole
// byte-identity suite: widening the window beyond the mesh's minimum
// message latency lets shards run past cycles at which cross-shard
// messages should have arrived, and the runs must stop matching — either
// as a differing fingerprint or, more commonly, as the engine's
// scheduling-in-the-past panic when a barrier merge tries to deliver a
// message into a shard's overrun past. If this test ever observes clean,
// identical runs with an unsound window, the equivalence tests have lost
// their teeth (e.g. the parallel path silently fell back to serial).
func TestBrokenLookaheadDiverges(t *testing.T) {
	cfg := DefaultConfig(16, proto.LimitLESS(2))
	want := runFingerprint(t, cfg, 0, contendedProgram)
	restore := ForceLookaheadForTest(10_000)
	defer restore()
	diverged := false
	for _, w := range []int{2, 4, 8} {
		got, panicked := runBroken(t, cfg, w)
		if panicked || got != want {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("oversized lookahead still byte-identical at every worker count; the equivalence suite cannot detect unsound windows")
	}
}

// runBroken is runFingerprint for the negative control: a run that dies
// on the engine's soundness panic reports panicked instead of failing the
// test.
func runBroken(t *testing.T, cfg Config, workers int) (fp string, panicked bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	cfg.SimWorkers = workers
	m := MustNew(cfg)
	m.Mem.AllocOn(0, 64)
	res, err := m.Run(contendedProgram, 50_000_000)
	if err != nil {
		return "", true
	}
	return fingerprint(res), false
}

func TestParallelDeadlockDetected(t *testing.T) {
	cfg := DefaultConfig(4, proto.FullMap())
	cfg.SimWorkers = 2
	m := MustNew(cfg)
	a := m.Mem.AllocOn(0, 1)
	_, err := m.Run(func(env *proc.Env) {
		env.WaitChange(a, 0) // nobody ever writes: deadlock
	}, 100_000)
	if err == nil {
		t.Fatal("deadlocked parallel run reported success")
	}
}

func TestParallelLimitEnforced(t *testing.T) {
	cfg := DefaultConfig(2, proto.FullMap())
	cfg.SimWorkers = 2
	m := MustNew(cfg)
	_, err := m.Run(func(env *proc.Env) {
		for i := 0; i < 1000; i++ {
			env.Compute(1000)
		}
	}, 10_000)
	if err == nil {
		t.Fatal("limit exceeded but no error")
	}
}

func TestParallelConfigValidation(t *testing.T) {
	base := DefaultConfig(4, proto.FullMap())
	neg := base
	neg.SimWorkers = -1
	if _, err := New(neg); err == nil {
		t.Fatal("negative SimWorkers accepted")
	}
	faulty := DefaultConfig(4, proto.LimitLESS(2))
	faulty.SimWorkers = 2
	faulty.LoseInv = 1
	if _, err := New(faulty); err == nil {
		t.Fatal("SimWorkers=2 with LoseInv accepted")
	}
}

func TestParallelRunProfiledRejected(t *testing.T) {
	cfg := DefaultConfig(4, proto.FullMap())
	cfg.SimWorkers = 2
	m := MustNew(cfg)
	if _, _, err := m.RunProfiled(func(env *proc.Env) { env.Compute(1) }, 0, 100); err == nil {
		t.Fatal("RunProfiled on a parallel machine reported success")
	}
}
