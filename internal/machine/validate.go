package machine

import (
	"errors"
	"fmt"

	"swex/internal/dir"
)

// Named validation errors. Validate wraps these with the offending value,
// so callers can match the cause with errors.Is while logs still say what
// was wrong. Spec and memory-tier errors pass through from their own
// packages (proto.Spec.Validate, memtier.Config.Validate).
var (
	// ErrNodes flags a machine size outside 1..dir.MaxNodes. The upper
	// bound is the hardware pointer bitset's capacity; a node ID past it
	// would index out of the directory's fixed-size pointer words.
	ErrNodes = errors.New("machine: node count must be in 1..dir.MaxNodes")
	// ErrLoseInv flags a negative lost-invalidation index. Zero disables
	// the fault fixture; positive selects the N-th invalidation; negative
	// selects nothing and almost certainly means a sign bug at the call
	// site.
	ErrLoseInv = errors.New("machine: LoseInv must be non-negative")
	// ErrSimWorkers flags a negative worker count. Zero and one both mean
	// the serial engine.
	ErrSimWorkers = errors.New("machine: SimWorkers must be non-negative")
	// ErrParallelUnsupported flags a feature the conservative parallel
	// engine excludes (DESIGN.md §14): tracing and custom software read
	// or write machine-wide state mid-run, and fault injection counts
	// messages machine-wide at send time — all of which parallel mode
	// defers to barriers. Run those configurations serially.
	ErrParallelUnsupported = errors.New("machine: feature requires the serial engine (SimWorkers <= 1)")
)

// Validate reports configuration errors before any machine state is
// built. machine.New runs it; experiment drivers can run it early to
// fail fast on a bad sweep matrix.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes > dir.MaxNodes {
		return fmt.Errorf("%w: got %d", ErrNodes, c.Nodes)
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.LoseInv < 0 {
		return fmt.Errorf("%w: got %d", ErrLoseInv, c.LoseInv)
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("%w: got %d", ErrSimWorkers, c.SimWorkers)
	}
	if c.SimWorkers > 1 {
		switch {
		case c.Trace != nil:
			return fmt.Errorf("%w: Trace", ErrParallelUnsupported)
		case c.CustomSoftware != nil:
			return fmt.Errorf("%w: CustomSoftware", ErrParallelUnsupported)
		case c.LoseInv > 0:
			return fmt.Errorf("%w: LoseInv", ErrParallelUnsupported)
		}
	}
	return c.MemTier.Validate()
}
