package machine

import (
	"errors"
	"fmt"
)

// Named validation errors. Validate wraps these with the offending value,
// so callers can match the cause with errors.Is while logs still say what
// was wrong. Spec and memory-tier errors pass through from their own
// packages (proto.Spec.Validate, memtier.Config.Validate).
var (
	// ErrNodes flags a non-positive machine size.
	ErrNodes = errors.New("machine: node count must be positive")
	// ErrLoseInv flags a negative lost-invalidation index. Zero disables
	// the fault fixture; positive selects the N-th invalidation; negative
	// selects nothing and almost certainly means a sign bug at the call
	// site.
	ErrLoseInv = errors.New("machine: LoseInv must be non-negative")
)

// Validate reports configuration errors before any machine state is
// built. machine.New runs it; experiment drivers can run it early to
// fail fast on a bad sweep matrix.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("%w: got %d", ErrNodes, c.Nodes)
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.LoseInv < 0 {
		return fmt.Errorf("%w: got %d", ErrLoseInv, c.LoseInv)
	}
	return c.MemTier.Validate()
}
