package machine

import (
	"errors"
	"testing"

	"swex/internal/memtier"
	"swex/internal/proto"
)

func TestConfigValidate(t *testing.T) {
	base := func(mut func(*Config)) Config {
		cfg := DefaultConfig(4, proto.FullMap())
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		want error // nil = valid; matched with errors.Is
	}{
		{"default", base(func(*Config) {}), nil},
		{"directoryless", base(func(c *Config) { c.Spec = proto.Directoryless() }), nil},
		{"disaggregated", base(func(c *Config) { c.MemTier = memtier.DefaultDisaggregated() }), nil},
		{"tiered", base(func(c *Config) { c.MemTier = memtier.DefaultTiered() }), nil},
		{"zero-nodes", base(func(c *Config) { c.Nodes = 0 }), ErrNodes},
		{"negative-nodes", base(func(c *Config) { c.Nodes = -4 }), ErrNodes},
		{"negative-loseinv", base(func(c *Config) { c.LoseInv = -1 }), ErrLoseInv},
		{"bad-tier-kind", base(func(c *Config) { c.MemTier.Kind = memtier.Kind(99) }), memtier.ErrKind},
		{"zero-tier-latency", base(func(c *Config) {
			c.MemTier = memtier.DefaultDisaggregated()
			c.MemTier.Far.MemCycles = 0
		}), memtier.ErrTierLatency},
		{"zero-dram-capacity", base(func(c *Config) {
			c.MemTier = memtier.DefaultTiered()
			c.MemTier.DRAMBlocks = 0
		}), memtier.ErrTierSize},
		{"zero-promotion", base(func(c *Config) {
			c.MemTier = memtier.DefaultTiered()
			c.MemTier.PromoteAfter = 0
		}), memtier.ErrPromotion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsBadSpec(t *testing.T) {
	cfg := DefaultConfig(4, proto.Spec{Name: "bad", Directoryless: true, HWPointers: 3})
	if err := cfg.Validate(); err == nil {
		t.Fatal("directoryless spec with pointers validated")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(4, proto.FullMap())
	cfg.MemTier = memtier.DefaultDisaggregated()
	cfg.MemTier.Far.HopCycles = 0
	if _, err := New(cfg); !errors.Is(err, memtier.ErrTierLatency) {
		t.Fatalf("New() = %v, want errors.Is(ErrTierLatency)", err)
	}
}
