// Package machine assembles complete simulated Alewife machines: engine,
// mesh, memory, protocol fabric, extension software, and one processor per
// node. It is the NWO analog's top level — the thing an experiment
// configures and runs.
package machine

import (
	"fmt"

	"swex/internal/cache"
	"swex/internal/ext"
	"swex/internal/mem"
	"swex/internal/memtier"
	"swex/internal/mesh"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/sim"
	"swex/internal/stats"
	"swex/internal/trace"
)

// SoftwareKind selects the protocol extension implementation.
type SoftwareKind int

const (
	// FlexibleC is the flexible coherence interface (default).
	FlexibleC SoftwareKind = iota
	// TunedASM is the hand-tuned assembly version (Dir_nH_5S_NB only).
	TunedASM
)

func (k SoftwareKind) String() string {
	if k == TunedASM {
		return "assembly"
	}
	return "C"
}

// Config describes one machine configuration — one point in the paper's
// experimental space.
type Config struct {
	// Nodes is the machine size (16, 64, and 256 in the paper).
	Nodes int
	// Spec selects the coherence protocol.
	Spec proto.Spec
	// Software selects the extension software implementation.
	Software SoftwareKind
	// VictimLines enables a victim cache of that many lines (0 = off).
	VictimLines int
	// PerfectIfetch enables the simulator's one-cycle instruction
	// fetch, eliminating instruction/data cache interference.
	PerfectIfetch bool
	// BatchReads enables the read-burst batching protocol enhancement
	// (see proto.Fabric.BatchReads).
	BatchReads bool
	// ParallelInv enables the parallel-invalidation software enhancement
	// (handler cost per transmitted invalidation drops; see ext).
	ParallelInv bool
	// MigratoryDetect enables migratory-data adaptation (see proto).
	MigratoryDetect bool
	// ThreadsPerNode runs several hardware contexts per node (Sparcle's
	// block multithreading for latency tolerance). 0 or 1 matches the
	// paper's single-threaded experiments.
	ThreadsPerNode int
	// CacheLines overrides the 4096-line cache (0 = default). The
	// application studies shrink this so scaled-down working sets still
	// exercise the cache the way full-size problems exercised Alewife's.
	CacheLines int
	// CacheWays sets the cache associativity (0 or 1 = direct-mapped,
	// as in Alewife; the paper's conclusion names set-associative caches
	// as the alternative to victim caching).
	CacheWays int
	// Timing overrides hardware latencies (zero value = defaults).
	Timing proto.Timing
	// MemTier selects the memory system behind the home directories
	// (internal/memtier): flat per-node DRAM (the zero value, the
	// paper's machine), rack-scale disaggregated memory over a second
	// interconnect tier, or hybrid DRAM/NVM with hot-block promotion.
	// Orthogonal to Spec: any protocol runs over any memory system.
	MemTier memtier.Config
	// LoseInv, when positive, deliberately weakens the protocol: the
	// N-th invalidation message the machine sends (counted machine-wide,
	// 1-based) is silently dropped, and its acknowledgment is spoofed so
	// the issuing transaction still completes. The victim keeps a stale
	// copy the directory no longer tracks — the classic lost-invalidation
	// bug. This is a verification fixture, not a machine feature: the
	// litmus-fuzzing subsystem (internal/litmus, cmd/swexfuzz) runs it to
	// prove the sequential-consistency oracle catches real coherence
	// violations. Zero (the default) models the correct protocol.
	LoseInv int
	// CustomSoftware installs a user-written protocol extension instead
	// of the built-in handlers — the paper's Section 7 "write an
	// application-specific protocol under the flexible coherence
	// interface". When set, Software is ignored and Result.Ledger is nil.
	CustomSoftware proto.Software
	// Trace, when set, receives structured span events from every layer
	// of the machine (see internal/trace). Nil disables tracing entirely:
	// no observers are installed and the hot paths pay one nil branch.
	Trace trace.Sink
	// SimWorkers runs the simulation itself on that many worker
	// goroutines using conservative time-window parallelism (DESIGN.md
	// §14). Results are byte-identical to a serial run at any worker
	// count — only wall-clock time changes — so SimWorkers is
	// deliberately excluded from the sweep cache key. 0 or 1 is the
	// serial engine. Parallel runs exclude the observation hooks
	// (Trace), fault injection (LoseInv), and CustomSoftware; Validate
	// rejects those combinations.
	SimWorkers int
}

// DefaultConfig returns the paper's default machine: the given protocol
// and size with the flexible C software, no victim cache, real ifetch.
func DefaultConfig(nodes int, spec proto.Spec) Config {
	return Config{Nodes: nodes, Spec: spec}
}

// Machine is a fully assembled simulated multiprocessor.
type Machine struct {
	Cfg    Config
	Engine *sim.Engine
	Net    *mesh.Network
	Mem    *mem.Memory
	Fabric *proto.Fabric
	Soft   *ext.Handlers // nil for full-map
	Traps  *ext.WatchdogTraps
	Nodes  []*proc.Node

	// par is the conservative-parallel state (nil when SimWorkers <= 1).
	par *parRun
}

// New builds a machine from a configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	// Canonical event keys (one counter stream per node) give serial and
	// parallel runs the identical event order; the parallel shard engines
	// install their own shared slice in enableParallel.
	engine.SetStreams(make([]uint64, cfg.Nodes))
	net := mesh.New(engine, mesh.DefaultConfig(cfg.Nodes))
	memory := mem.New(cfg.Nodes)
	traps := ext.NewWatchdogTraps(engine, cfg.Nodes)

	var soft *ext.Handlers
	if cfg.Spec.UsesSoftware() && cfg.CustomSoftware == nil {
		model := ext.FlexibleC()
		if cfg.Software == TunedASM {
			model = ext.TunedASM()
		}
		var err error
		soft, err = ext.New(cfg.Nodes, cfg.Spec, model)
		if err != nil {
			return nil, err
		}
		soft.SetParallelInv(cfg.ParallelInv)
	}

	timing := cfg.Timing
	if timing == (proto.Timing{}) {
		timing = proto.DefaultTiming()
	}
	ccfg := cache.DefaultConfig()
	if cfg.CacheLines > 0 {
		ccfg.Lines = cfg.CacheLines
	}
	ccfg.Ways = cfg.CacheWays
	ccfg.VictimLines = cfg.VictimLines
	softIface := cfg.CustomSoftware
	if soft != nil {
		softIface = soft
	}
	fabric, err := proto.NewFabric(engine, net, memory, cfg.Spec, timing, traps,
		softIface, proto.CacheConfig{Cache: ccfg, PerfectIfetch: cfg.PerfectIfetch})
	if err != nil {
		return nil, err
	}
	fabric.BatchReads = cfg.BatchReads
	fabric.MigratoryDetect = cfg.MigratoryDetect
	fabric.Tier = memtier.New(engine, cfg.Nodes, cfg.MemTier)
	if cfg.LoseInv > 0 {
		remaining := cfg.LoseInv
		fabric.Fault = func(m proto.Msg) bool {
			if m.Kind != proto.MsgINV {
				return false
			}
			remaining--
			if remaining != 0 {
				return false
			}
			// Spoof the acknowledgment so the home's transaction
			// completes while the victim's stale copy survives.
			fabric.Send(proto.Msg{Kind: proto.MsgACK, Src: m.Dst, Dst: m.Src, Block: m.Block, Epoch: m.Epoch})
			return true
		}
	}
	if cfg.Trace != nil {
		fabric.Sink = cfg.Trace
		net.Obs = fabric
		engine.Observer = pendingSampler(cfg.Trace)
	}

	m := &Machine{
		Cfg:    cfg,
		Engine: engine,
		Net:    net,
		Mem:    memory,
		Fabric: fabric,
		Soft:   soft,
		Traps:  traps,
		Nodes:  make([]*proc.Node, cfg.Nodes),
	}
	for i := range m.Nodes {
		m.Nodes[i] = proc.NewNode(fabric, mem.NodeID(i))
	}
	if cfg.SimWorkers > 1 {
		if err := m.enableParallel(cfg.SimWorkers); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// pendingSamplePeriod spaces the engine's pending-event counter samples:
// dense enough to show load phases, sparse enough not to swamp the trace.
const pendingSamplePeriod sim.Cycle = 256

// pendingSampler builds the engine observer that emits the pending-event
// counter track: one sample per pendingSamplePeriod cycles of simulated
// time, attributed to the engine pseudo-node (-1).
func pendingSampler(sink trace.Sink) func(now sim.Cycle, pending int) {
	var next sim.Cycle
	return func(now sim.Cycle, pending int) {
		if now < next {
			return
		}
		next = now + pendingSamplePeriod
		sink.Emit(trace.Event{
			Start: now, End: now, Arg: int64(pending), Node: -1, Peer: -1,
			Cat: trace.CatEngine, Op: trace.OpPending, Name: "pending",
		})
	}
}

// MustNew is New for configurations known statically valid.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("machine: invalid config: %v", err))
	}
	return m
}

// ConfigureBlock reconfigures the coherence protocol of a single memory
// block before its first use — Alewife's block-by-block protocol selection
// (paper Section 3.1), the mechanism behind the "data specific" coherence
// types of Section 7. Typical use: promote a known hot, widely-shared
// block to the full-map protocol while the rest of memory runs a cheap
// limited directory.
func (m *Machine) ConfigureBlock(b mem.Block, spec proto.Spec) error {
	return m.Fabric.Home(mem.HomeOfBlock(b)).Configure(b, spec)
}

// Result summarizes one run.
type Result struct {
	// Time is the parallel run time: the cycle the last thread finished.
	Time sim.Cycle
	// Finish holds each node's completion cycle.
	Finish []sim.Cycle
	// Traps is the machine-wide software handler count.
	Traps uint64
	// HandlerCycles is processor time spent in protocol handlers.
	HandlerCycles sim.Cycle
	// Messages is the network message count.
	Messages uint64
	// BusyRetries counts BUSY-induced retransmissions.
	BusyRetries uint64
	// Counters is the fabric's full counter set.
	Counters *stats.Counters
	// Ledger is the handler-latency ledger (nil for full-map).
	Ledger *stats.Ledger
	// WorkerSets is the per-block maximum worker-set histogram.
	WorkerSets *stats.Hist
}

// Run executes program (one thread per node) to completion and returns the
// run summary. The limit bounds simulated cycles (0 = none); exceeding it
// or deadlocking returns an error identifying the stuck nodes.
func (m *Machine) Run(program func(*proc.Env), limit sim.Cycle) (Result, error) {
	if m.par != nil {
		return m.runParallel(program, limit)
	}
	threads := m.Cfg.ThreadsPerNode
	if threads < 1 {
		threads = 1
	}
	for _, n := range m.Nodes {
		n.StartThreads(threads, program)
	}
	finished := func() bool {
		for _, n := range m.Nodes {
			if !n.Done() {
				return false
			}
		}
		return true
	}
	ok := m.Engine.RunUntil(finished, limit)
	if !ok {
		var stuck []mem.NodeID
		for _, n := range m.Nodes {
			if !n.Done() {
				stuck = append(stuck, n.ID)
			}
		}
		return Result{}, fmt.Errorf("machine: run did not complete at cycle %d (stuck nodes: %v, pending events: %d)",
			m.Engine.Now(), stuck, m.Engine.Pending())
	}
	return m.result(), nil
}

func (m *Machine) result() Result {
	r := Result{
		Counters:   m.Fabric.Counters,
		WorkerSets: m.Fabric.WorkerSetHist(),
		Finish:     make([]sim.Cycle, len(m.Nodes)),
	}
	for i, n := range m.Nodes {
		r.Finish[i] = n.FinishedAt()
		if r.Finish[i] > r.Time {
			r.Time = r.Finish[i]
		}
	}
	for i := 0; i < m.Cfg.Nodes; i++ {
		r.Traps += m.Fabric.Home(mem.NodeID(i)).Traps
		r.HandlerCycles += m.Traps.HandlerBusy(mem.NodeID(i))
		r.BusyRetries += m.Fabric.Cache(mem.NodeID(i)).Retries
	}
	r.Messages = m.Net.Messages
	if m.Soft != nil {
		r.Ledger = &m.Soft.Ledger
	}
	return r
}

// Timeline is a coarse profile of a run: protocol activity sampled at
// fixed simulated-time intervals, for seeing the phases of an application
// (ramp-up, steady state, termination) at a glance.
type Timeline struct {
	// Interval is the sample spacing in cycles.
	Interval sim.Cycle
	// Messages and Traps hold the per-interval deltas.
	Messages []uint64
	Traps    []uint64
}

// RunProfiled is Run with periodic sampling every interval cycles.
func (m *Machine) RunProfiled(program func(*proc.Env), limit sim.Cycle, interval sim.Cycle) (Result, *Timeline, error) {
	if m.par != nil {
		// Interval sampling reads machine-wide counters mid-run, which
		// parallel mode defers to barriers; the combination is not
		// supported rather than silently approximate.
		return Result{}, nil, fmt.Errorf("machine: RunProfiled requires the serial engine (SimWorkers <= 1)")
	}
	if interval == 0 {
		interval = 10_000
	}
	threads := m.Cfg.ThreadsPerNode
	if threads < 1 {
		threads = 1
	}
	for _, n := range m.Nodes {
		n.StartThreads(threads, program)
	}
	finished := func() bool {
		for _, n := range m.Nodes {
			if !n.Done() {
				return false
			}
		}
		return true
	}
	tl := &Timeline{Interval: interval}
	var lastMsgs, lastTraps uint64
	sample := func() {
		msgs := m.Net.Messages
		var traps uint64
		for i := 0; i < m.Cfg.Nodes; i++ {
			traps += m.Fabric.Home(mem.NodeID(i)).Traps
		}
		tl.Messages = append(tl.Messages, msgs-lastMsgs)
		tl.Traps = append(tl.Traps, traps-lastTraps)
		lastMsgs, lastTraps = msgs, traps
	}
	for !finished() {
		segEnd := m.Engine.Now() + interval
		if limit != 0 && segEnd > limit {
			segEnd = limit
		}
		m.Engine.RunUntil(finished, segEnd)
		sample()
		// A drained event queue with unfinished threads is a deadlock:
		// simulated time can no longer advance toward the limit.
		deadlocked := m.Engine.Pending() == 0 && !finished()
		if deadlocked || (limit != 0 && m.Engine.Now() >= limit && !finished()) {
			var stuck []mem.NodeID
			for _, n := range m.Nodes {
				if !n.Done() {
					stuck = append(stuck, n.ID)
				}
			}
			return Result{}, tl, fmt.Errorf("machine: profiled run did not complete at cycle %d (stuck nodes: %v)",
				m.Engine.Now(), stuck)
		}
	}
	return m.result(), tl, nil
}
