package proc

import (
	"testing"

	"swex/internal/cache"
	"swex/internal/mem"
	"swex/internal/mesh"
	"swex/internal/proto"
	"swex/internal/sim"
)

// rig builds a fabric with nodes attached, for processor-level tests.
func rig(t *testing.T, nodes int, perfectIfetch bool) (*sim.Engine, *proto.Fabric, []*Node) {
	t.Helper()
	engine := sim.NewEngine()
	net := mesh.New(engine, mesh.DefaultConfig(nodes))
	memory := mem.New(nodes)
	f, err := proto.NewFabric(engine, net, memory, proto.FullMap(), proto.DefaultTiming(),
		proto.NewImmediateTraps(engine, nodes), nil,
		proto.CacheConfig{Cache: cache.Config{Lines: 256}, PerfectIfetch: perfectIfetch})
	if err != nil {
		t.Fatal(err)
	}
	ns := make([]*Node, nodes)
	for i := range ns {
		ns[i] = NewNode(f, mem.NodeID(i))
	}
	return engine, f, ns
}

// runAll drives the engine until every node's thread completes.
func runAll(t *testing.T, engine *sim.Engine, ns []*Node) {
	t.Helper()
	done := func() bool {
		for _, n := range ns {
			if !n.Done() {
				return false
			}
		}
		return true
	}
	if !engine.RunUntil(done, 100_000_000) {
		t.Fatal("threads did not complete")
	}
}

func TestThreadLifecycle(t *testing.T) {
	engine, _, ns := rig(t, 1, true)
	ran := false
	ns[0].Start(func(env *Env) {
		ran = true
		env.Compute(10)
	})
	runAll(t, engine, ns)
	if !ran {
		t.Fatal("thread body never ran")
	}
	if ns[0].FinishedAt() == 0 {
		t.Fatal("no finish time recorded")
	}
	if ns[0].Ops != 1 {
		t.Fatalf("Ops = %d, want 1", ns[0].Ops)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	_, _, ns := rig(t, 1, true)
	ns[0].Start(func(env *Env) {})
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	ns[0].Start(func(env *Env) {})
}

func TestReadWriteRoundTrip(t *testing.T) {
	engine, f, ns := rig(t, 2, true)
	a := f.Mem.AllocOn(0, 1)
	var got uint64
	ns[0].Start(func(env *Env) {
		env.Write(a, 77)
		got = env.Read(a)
	})
	ns[1].Start(func(env *Env) {})
	runAll(t, engine, ns)
	if got != 77 {
		t.Fatalf("read back %d, want 77", got)
	}
	if ns[0].MemOps != 2 {
		t.Fatalf("MemOps = %d, want 2", ns[0].MemOps)
	}
}

func TestFetchAddSemantics(t *testing.T) {
	engine, f, ns := rig(t, 1, true)
	a := f.Mem.AllocOn(0, 1)
	var olds []uint64
	ns[0].Start(func(env *Env) {
		for i := 0; i < 5; i++ {
			olds = append(olds, env.FetchAdd(a, 10))
		}
	})
	runAll(t, engine, ns)
	for i, o := range olds {
		if o != uint64(i*10) {
			t.Fatalf("FetchAdd old[%d] = %d, want %d", i, o, i*10)
		}
	}
}

func TestRMWAppliesFunction(t *testing.T) {
	engine, f, ns := rig(t, 1, true)
	a := f.Mem.AllocOn(0, 1)
	var old, final uint64
	ns[0].Start(func(env *Env) {
		env.Write(a, 6)
		old = env.RMW(a, func(v uint64) uint64 { return v * 7 })
		final = env.Read(a)
	})
	runAll(t, engine, ns)
	if old != 6 || final != 42 {
		t.Fatalf("RMW old=%d final=%d, want 6 and 42", old, final)
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	engine, _, ns := rig(t, 1, true)
	var before, after sim.Cycle
	ns[0].Start(func(env *Env) {
		env.Compute(1) // sync point so engine time is sampled in-run
		before = engine.Now()
		env.Compute(500)
		after = engine.Now()
	})
	runAll(t, engine, ns)
	if after-before < 500 {
		t.Fatalf("Compute(500) advanced %d cycles", after-before)
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	engine, _, ns := rig(t, 1, true)
	ns[0].Start(func(env *Env) {
		env.Compute(0)
	})
	runAll(t, engine, ns)
	if ns[0].Ops != 0 {
		t.Fatalf("Compute(0) issued an operation")
	}
}

func TestWaitChangeBlocksUntilWrite(t *testing.T) {
	engine, f, ns := rig(t, 2, true)
	a := f.Mem.AllocOn(0, 1)
	var seen uint64
	var wakeAt, writeAt sim.Cycle
	ns[0].Start(func(env *Env) {
		seen = env.WaitChange(a, 0)
		wakeAt = engine.Now()
	})
	ns[1].Start(func(env *Env) {
		env.Compute(2000)
		writeAt = engine.Now()
		env.Write(a, 5)
	})
	runAll(t, engine, ns)
	if seen != 5 {
		t.Fatalf("WaitChange returned %d, want 5", seen)
	}
	if wakeAt < writeAt {
		t.Fatalf("woke at %d before the write at %d", wakeAt, writeAt)
	}
}

func TestEnvIDAndP(t *testing.T) {
	engine, _, ns := rig(t, 4, true)
	var ids []mem.NodeID
	var ps []int
	for i := range ns {
		ns[i].Start(func(env *Env) {
			ids = append(ids, env.ID())
			ps = append(ps, env.P)
		})
	}
	runAll(t, engine, ns)
	seen := map[mem.NodeID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("ids = %v, want 4 distinct", ids)
	}
	for _, p := range ps {
		if p != 4 {
			t.Fatalf("P = %d, want 4", p)
		}
	}
}

func TestIfetchChargesCache(t *testing.T) {
	engine, f, ns := rig(t, 1, false)
	ns[0].Start(func(env *Env) {
		env.SetCode(CodeSpace, 4)
		for i := 0; i < 10; i++ {
			env.Compute(1)
		}
	})
	runAll(t, engine, ns)
	st := f.Cache(0).Cache().Stats
	if st.IMisses != 4 {
		t.Fatalf("IMisses = %d, want 4 (one per code block)", st.IMisses)
	}
	if st.IHits != 6 {
		t.Fatalf("IHits = %d, want 6", st.IHits)
	}
}

func TestSetCodeZeroDisablesIfetch(t *testing.T) {
	engine, f, ns := rig(t, 1, false)
	ns[0].Start(func(env *Env) {
		env.SetCode(CodeSpace, 4)
		env.Compute(1)
		env.SetCode(0, 0)
		for i := 0; i < 5; i++ {
			env.Compute(1)
		}
	})
	runAll(t, engine, ns)
	st := f.Cache(0).Cache().Stats
	if st.IMisses != 1 {
		t.Fatalf("IMisses = %d, want exactly the one before SetCode(0,0)", st.IMisses)
	}
}

func TestEveryOpCostsAtLeastOneCycle(t *testing.T) {
	// A thread doing only cache hits must still advance simulated time,
	// or the event loop would spin at one cycle forever.
	engine, f, ns := rig(t, 1, true)
	a := f.Mem.AllocOn(0, 1)
	const ops = 100
	ns[0].Start(func(env *Env) {
		env.Read(a) // fill
		for i := 0; i < ops; i++ {
			env.Read(a) // pure hits
		}
	})
	runAll(t, engine, ns)
	if engine.Now() < ops {
		t.Fatalf("%d hit reads advanced only %d cycles", ops, engine.Now())
	}
}

func TestLockstepDeterminism(t *testing.T) {
	// Two racing incrementers: the interleaving must be identical across
	// runs (goroutine scheduling must not leak into simulated time).
	run := func() (sim.Cycle, uint64) {
		engine, f, ns := rig(t, 2, true)
		a := f.Mem.AllocOn(0, 1)
		for i := range ns {
			ns[i].Start(func(env *Env) {
				for j := 0; j < 50; j++ {
					env.FetchAdd(a, 1)
				}
			})
		}
		runAll(t, engine, ns)
		return engine.Now(), f.Mem.Read(a)
	}
	t1, _ := run()
	t2, _ := run()
	if t1 != t2 {
		t.Fatalf("racing runs finished at %d and %d; lockstep broken", t1, t2)
	}
}

func TestEnvCheckOutCheckIn(t *testing.T) {
	engine, f, ns := rig(t, 2, true)
	a := f.Mem.AllocOn(0, 1)
	ns[0].Start(func(env *Env) {
		env.CheckOut(a)
		v := env.Read(a)
		env.Write(a, v+5)
		env.CheckIn(a)
	})
	ns[1].Start(func(env *Env) {})
	runAll(t, engine, ns)
	engine.Run(0) // drain the in-flight writeback
	if got := f.Mem.Read(a); got != 5 {
		t.Fatalf("memory after check-in = %d, want 5", got)
	}
	if _, cached := f.Cache(0).HasBlock(mem.BlockOf(a)); cached {
		t.Fatal("copy survived check-in")
	}
}

func TestMultithreadedNodeRunsAllContexts(t *testing.T) {
	engine, f, ns := rig(t, 2, true)
	a := f.Mem.AllocOn(0, 4)
	var seen []int
	ns[0].StartThreads(4, func(env *Env) {
		seen = append(seen, env.Thread())
		env.FetchAdd(a+mem.Addr(env.Thread()), 1)
	})
	ns[1].Start(func(env *Env) {})
	runAll(t, engine, ns)
	if ns[0].Threads() != 4 {
		t.Fatalf("Threads = %d, want 4", ns[0].Threads())
	}
	if len(seen) != 4 {
		t.Fatalf("%d contexts ran, want 4", len(seen))
	}
	distinct := map[int]bool{}
	for _, s := range seen {
		distinct[s] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("context indices %v, want 4 distinct", seen)
	}
}

func TestMultithreadingToleratesLatency(t *testing.T) {
	// The latency-tolerance experiment: node 1's threads stream reads of
	// remote blocks. With several contexts the misses overlap, so the
	// run finishes materially sooner despite context-switch costs.
	runWith := func(threads int) sim.Cycle {
		engine, f, ns := rig(t, 2, true)
		base := f.Mem.AllocOn(0, 4*64)
		ns[0].Start(func(env *Env) {})
		ns[1].StartThreads(threads, func(env *Env) {
			// Each context reads a disjoint stripe of remote blocks.
			for i := 0; i < 16; i++ {
				env.Read(base + mem.Addr((env.Thread()*16+i)*4))
			}
		})
		runAll(t, engine, ns)
		return ns[1].FinishedAt()
	}
	// Equalize total work: 1 thread doing 4 stripes' worth vs 4 threads
	// doing one each is awkward; instead compare per-miss throughput:
	// 4 threads x 16 misses vs 1 thread x 16 misses scaled.
	one := runWith(1)  // 16 misses, serial
	four := runWith(4) // 64 misses, overlapped
	perMissOne := float64(one) / 16
	perMissFour := float64(four) / 64
	if perMissFour > 0.7*perMissOne {
		t.Fatalf("multithreading did not overlap misses: %.1f vs %.1f cycles/miss",
			perMissFour, perMissOne)
	}
}

func TestMultithreadedDeterminism(t *testing.T) {
	run := func() sim.Cycle {
		engine, f, ns := rig(t, 2, true)
		a := f.Mem.AllocOn(0, 1)
		for i := range ns {
			ns[i].StartThreads(3, func(env *Env) {
				for j := 0; j < 10; j++ {
					env.FetchAdd(a, 1)
				}
			})
		}
		runAll(t, engine, ns)
		return engine.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("multithreaded runs differ: %d vs %d", a, b)
	}
}

func TestMultithreadedAtomicity(t *testing.T) {
	engine, f, ns := rig(t, 4, true)
	a := f.Mem.AllocOn(0, 1)
	for i := range ns {
		ns[i].StartThreads(4, func(env *Env) {
			for j := 0; j < 10; j++ {
				env.FetchAdd(a, 1)
			}
		})
	}
	runAll(t, engine, ns)
	engine.Run(0)
	// 4 nodes x 4 threads x 10 increments.
	var got uint64
	done := false
	f.Cache(0).Access(a, proto.Op{Done: func(v uint64) { got = v; done = true }})
	engine.RunUntil(func() bool { return done }, 10_000_000)
	if got != 160 {
		t.Fatalf("counter = %d, want 160 (lost updates across contexts)", got)
	}
}
