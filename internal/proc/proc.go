// Package proc models the Sparcle processor of each node: an in-order
// processor executing application threads, issuing memory operations
// through the cache controller, fetching instructions through the combined
// cache, and sharing its cycles with the protocol extension handlers that
// trap onto it.
//
// Application threads are ordinary Go functions run as coroutines in
// lockstep with the simulation: a thread blocks after issuing each
// operation and resumes only when the simulator delivers its result, so
// goroutine scheduling can never perturb simulated time. The simulator and
// the threads alternate strictly; runs are deterministic.
//
// A node normally runs one thread, as in all of the paper's experiments.
// Sparcle also provides multiple hardware contexts for latency tolerance
// (block multithreading: switch contexts on a remote miss); StartThreads
// models that by running several lockstep threads per node, each paying a
// context-switch cost when its memory operation completes.
package proc

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/proto"
	"swex/internal/sim"
	"swex/internal/trace"
)

// opKind enumerates the operations a thread can issue.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opRMW
	opCompute
	opWatch
	opCheckIn
	opCheckOut
)

type request struct {
	kind   opKind
	addr   mem.Addr
	value  uint64
	cycles sim.Cycle
	rmw    func(uint64) uint64
	old    uint64
}

// ContextSwitchCycles is the cost of switching hardware contexts when a
// multithreaded node's thread misses (Sparcle's fast context switch takes
// about 14 cycles).
const ContextSwitchCycles = 14

// thread is one hardware context's execution state.
type thread struct {
	node *Node
	idx  int
	req  chan request
	resp chan uint64
	done bool
	fin  sim.Cycle

	// Instruction fetch state: the current code region the thread
	// executes from, advanced one block per operation.
	codeBase   mem.Addr
	codeBlocks int
	codePos    int

	// Preallocated continuation funcs for the per-operation path. The
	// lockstep alternation guarantees at most one outstanding operation
	// per thread, so one set of continuations (and the pending request
	// and result they read) can be reused for every operation instead of
	// closing over each one.
	pending     request      // the operation currently executing
	pendingVal  uint64       // result awaiting the context-switch resume
	executeFn   func()       // runs execute(pending)
	ifetchFn    func()       // issue delay after the instruction fetch
	memDoneFn   func(uint64) // memDone as a func value
	replyFn     func(uint64) // reply as a func value
	replyZeroFn func()       // reply(0)
	resumeFn    func()       // reply(pendingVal) after a context switch
}

// Node is one processor: the execution engine for its application threads
// plus its connection to the memory system.
type Node struct {
	ID      mem.NodeID
	f       *proto.Fabric
	threads []*thread

	// Ops counts operations executed; MemOps counts reads/writes/RMWs.
	Ops    uint64
	MemOps uint64
}

// NewNode builds the processor for node id on the given fabric.
func NewNode(f *proto.Fabric, id mem.NodeID) *Node {
	return &Node{ID: id, f: f}
}

// Start launches fn as this node's (single) thread. The simulation must be
// driven by the fabric's engine after all nodes have started.
func (n *Node) Start(fn func(*Env)) { n.StartThreads(1, fn) }

// StartThreads launches count hardware contexts, each running fn. With
// more than one context the node tolerates memory latency by overlapping
// threads' misses, at a context-switch cost per memory operation.
func (n *Node) StartThreads(count int, fn func(*Env)) {
	if len(n.threads) > 0 {
		panic(fmt.Sprintf("proc: node %d started twice", n.ID))
	}
	if count < 1 {
		count = 1
	}
	// The thread coroutines below are the simulator's one sanctioned use
	// of goroutines and channels: the unbuffered req/resp pair enforces a
	// strict alternation (the simulation goroutine blocks until the
	// thread issues an operation, the thread blocks until the simulator
	// replies), so the Go scheduler never has two runnable goroutines to
	// choose between and cannot perturb simulated time.
	for i := 0; i < count; i++ {
		t := &thread{
			node: n,
			idx:  i,
			req:  make(chan request), //lint:allow determinism(unbuffered lockstep handoff; see comment above)
			resp: make(chan uint64),  //lint:allow determinism(unbuffered lockstep handoff; see comment above)
		}
		t.executeFn = func() { t.execute(t.pending) }
		t.ifetchFn = func() { t.node.f.Eng(t.node.ID).OwnedAfter(int(t.node.ID), 1, nil, t.executeFn) }
		t.memDoneFn = t.memDone
		t.replyFn = t.reply
		t.replyZeroFn = func() { t.reply(0) }
		t.resumeFn = func() { t.reply(t.pendingVal) }
		n.threads = append(n.threads, t)
		env := &Env{thread: t, P: n.f.Nodes()}
		go func() { //lint:allow determinism(coroutine runs in strict alternation with the engine)
			fn(env)
			close(t.req) //lint:allow determinism(end-of-thread signal on the lockstep channel)
		}()
		eng := n.f.Eng(n.ID)
		eng.OwnedAt(int(n.ID), eng.Now(), nil, t.next)
	}
}

// Threads reports how many contexts the node runs.
func (n *Node) Threads() int { return len(n.threads) }

// Done reports whether every thread has finished.
func (n *Node) Done() bool {
	for _, t := range n.threads {
		if !t.done {
			return false
		}
	}
	return len(n.threads) > 0
}

// FinishedAt reports the cycle the last thread completed (valid once Done).
func (n *Node) FinishedAt() sim.Cycle {
	var fin sim.Cycle
	for _, t := range n.threads {
		if t.fin > fin {
			fin = t.fin
		}
	}
	return fin
}

// next receives the thread's next operation. It blocks the simulation
// goroutine until the thread either issues an operation or returns; this
// handoff is the lockstep that keeps runs deterministic.
func (t *thread) next() {
	r, ok := <-t.req //lint:allow determinism(lockstep handoff: the engine blocks here until the thread issues)
	if !ok {
		t.done = true
		t.fin = t.node.f.Eng(t.node.ID).Now()
		t.node.f.ThreadDone(t.node.ID)
		return
	}
	t.node.Ops++
	t.pending = r
	// Every operation begins with an instruction fetch from the current
	// code region (one block per operation, round-robin), then costs at
	// least one issue cycle. Perfect-ifetch configurations make the
	// fetch free.
	if t.codeBlocks > 0 {
		pc := t.codeBase + mem.Addr(t.codePos)*mem.WordsPerBlock
		t.codePos = (t.codePos + 1) % t.codeBlocks
		t.node.f.Cache(t.node.ID).Ifetch(pc, t.ifetchFn)
		return
	}
	t.node.f.Eng(t.node.ID).OwnedAfter(int(t.node.ID), 1, nil, t.executeFn)
}

// execute performs one operation and schedules the reply.
func (t *thread) execute(r request) {
	n := t.node
	switch r.kind {
	case opRead:
		n.MemOps++
		n.f.Cache(n.ID).Access(r.addr, proto.Op{Done: t.memDoneFn})
	case opWrite:
		n.MemOps++
		n.f.Cache(n.ID).Access(r.addr, proto.Op{Write: true, Value: r.value, Done: t.memDoneFn})
	case opRMW:
		n.MemOps++
		n.f.Cache(n.ID).Access(r.addr, proto.Op{Write: true, RMW: r.rmw, Done: t.memDoneFn})
	case opCompute:
		done := n.f.Traps.Reserve(n.ID, r.cycles)
		if n.f.Sink != nil {
			n.f.Sink.Emit(trace.Event{
				Start: done - r.cycles, End: done,
				Arg: int64(r.cycles), Node: int32(n.ID), Peer: -1,
				Cat: trace.CatProc, Op: trace.OpCompute, Name: "compute",
			})
		}
		n.f.Eng(n.ID).OwnedAt(int(n.ID), done, nil, t.replyZeroFn)
	case opWatch:
		n.f.Cache(n.ID).Watch(r.addr, r.old, t.replyFn)
	case opCheckIn:
		n.f.Cache(n.ID).CheckIn(r.addr, t.replyZeroFn)
	case opCheckOut:
		n.f.Cache(n.ID).CheckOut(r.addr, t.replyZeroFn)
	default:
		panic(fmt.Sprintf("proc: unknown op kind %d", r.kind))
	}
}

// memDone completes a memory operation. A multithreaded node pays the
// context-switch cost to resume the issuing thread (block multithreading
// switches away on every miss); a single-context node resumes directly.
func (t *thread) memDone(v uint64) {
	if len(t.node.threads) > 1 {
		t.pendingVal = v
		t.node.f.Eng(t.node.ID).OwnedAfter(int(t.node.ID), ContextSwitchCycles, nil, t.resumeFn)
		return
	}
	t.reply(v)
}

// reply resumes the thread with a result and fetches its next operation.
func (t *thread) reply(v uint64) {
	t.resp <- v //lint:allow determinism(lockstep handoff: resumes the one thread blocked in do)
	t.next()
}

// Env is the shared-memory programming interface a thread sees: the
// analog of compiled Sparcle code making loads, stores, and run-time calls.
type Env struct {
	thread *thread
	// P is the machine size.
	P int
}

// do issues one operation through the lockstep handoff and blocks the
// thread until the simulator replies. Every Env operation funnels through
// here; it is the thread-side half of the alternation described in
// StartThreads.
func (e *Env) do(r request) uint64 {
	e.thread.req <- r      //lint:allow determinism(lockstep handoff: wakes the engine blocked in next)
	return <-e.thread.resp //lint:allow determinism(lockstep handoff: blocks until the engine replies)
}

// ID returns the node this thread runs on.
func (e *Env) ID() mem.NodeID { return e.thread.node.ID }

// Thread returns the hardware context index within the node (0 for the
// paper's single-threaded configurations).
func (e *Env) Thread() int { return e.thread.idx }

// NodeThreads returns how many hardware contexts this thread's node runs.
// Observation capture uses it to give every context in the machine a
// distinct dense index (node*NodeThreads+Thread) without threading the
// machine configuration through to application code.
func (e *Env) NodeThreads() int { return len(e.thread.node.threads) }

// Read loads the word at a.
func (e *Env) Read(a mem.Addr) uint64 {
	return e.do(request{kind: opRead, addr: a})
}

// Write stores v at a.
func (e *Env) Write(a mem.Addr, v uint64) {
	e.do(request{kind: opWrite, addr: a, value: v})
}

// RMW atomically applies fn to the word at a, returning the old value.
func (e *Env) RMW(a mem.Addr, fn func(uint64) uint64) uint64 {
	return e.do(request{kind: opRMW, addr: a, rmw: fn})
}

// FetchAdd atomically adds delta and returns the previous value.
func (e *Env) FetchAdd(a mem.Addr, delta uint64) uint64 {
	return e.RMW(a, func(old uint64) uint64 { return old + delta })
}

// Compute consumes cycles of processor time (the thread's local work
// between memory references).
func (e *Env) Compute(cycles sim.Cycle) {
	if cycles == 0 {
		return
	}
	e.do(request{kind: opCompute, cycles: cycles})
}

// WaitChange blocks until the word at a differs from old, returning the
// new value. It models a spin-wait loop: each invalidation of the block
// re-fetches and re-checks, generating the same coherence traffic as
// spinning, without simulating every iteration.
func (e *Env) WaitChange(a mem.Addr, old uint64) uint64 {
	return e.do(request{kind: opWatch, addr: a, old: old})
}

// CheckIn relinquishes this node's cached copy of the block containing a
// — the CICO "check-in" annotation (paper Sections 1 and 7): a programmer
// hint that the data will not be reused here, letting the directory retire
// the pointer before the next writer has to invalidate it.
func (e *Env) CheckIn(a mem.Addr) {
	e.do(request{kind: opCheckIn, addr: a})
}

// CheckOut acquires exclusive ownership of the block containing a before
// use — the CICO "check-out" annotation: a read-modify-write sequence on a
// checked-out block costs one ownership transfer instead of a read recall
// plus an upgrade.
func (e *Env) CheckOut(a mem.Addr) {
	e.do(request{kind: opCheckOut, addr: a})
}

// SetCode selects the instruction region the thread is executing from:
// blocks cache lines starting at base. Each subsequent operation fetches
// one instruction block from the region in round-robin order through the
// combined I/D cache. A blocks count of zero disables instruction
// modeling. Takes effect on the next operation.
func (e *Env) SetCode(base mem.Addr, blocks int) {
	e.thread.codeBase = base
	e.thread.codeBlocks = blocks
	e.thread.codePos = 0
}

// CodeSpace is the base of the instruction address region: disjoint from
// every node's data segment (the highest data address is
// nodes*SegWords), so instruction blocks never alias shared data, while
// still mapping onto the same cache sets.
const CodeSpace mem.Addr = 1 << 40
