package apps

import (
	"fmt"
	"math"
	"testing"

	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proto"
	"swex/internal/sim"
)

// readWord reads a word on a finished machine for verification.
func readWord(t *testing.T, m *machine.Machine, a mem.Addr) uint64 {
	t.Helper()
	var got uint64
	done := false
	m.Fabric.Cache(0).Access(a, proto.Op{Done: func(v uint64) { got = v; done = true }})
	if !m.Engine.RunUntil(func() bool { return done }, 100_000_000) {
		t.Fatal("verification read did not complete")
	}
	return got
}

func runApp(t *testing.T, prog Program, nodes int, spec proto.Spec) (*machine.Machine, machine.Result, Instance) {
	t.Helper()
	m := machine.MustNew(machine.Config{
		Nodes: nodes, Spec: spec, VictimLines: 8,
	})
	res, inst, err := prog.Run(m, 0)
	if err != nil {
		t.Fatalf("%s on %s: %v", prog.Name, spec.Name, err)
	}
	return m, res, inst
}

func TestFixedPoint(t *testing.T) {
	if got := fromFix(toFix(2.5)); got != 2.5 {
		t.Fatalf("round trip = %v", got)
	}
	if got := fromFix(mulFix(toFix(1.5), toFix(2.0))); math.Abs(got-3.0) > 1e-6 {
		t.Fatalf("mulFix(1.5, 2) = %v", got)
	}
	if got := fromFix(mulFix(toFix(-1.5), toFix(2.0))); math.Abs(got+3.0) > 1e-6 {
		t.Fatalf("mulFix(-1.5, 2) = %v", got)
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"TSP", "AQ", "SMGRID", "EVOLVE", "MP3D", "WATER"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d apps, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].Name, name)
		}
	}
	if _, err := ByName("TSP"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown app")
	}
}

func TestTSPOptimalSolver(t *testing.T) {
	// Triangle with known optimal tour.
	d := [][]uint64{
		{0, 1, 4},
		{1, 0, 2},
		{4, 2, 0},
	}
	if got := tspOptimal(d); got != 7 {
		t.Fatalf("optimal = %d, want 7 (0-1-2-0)", got)
	}
}

func TestTSPTaskPacking(t *testing.T) {
	v, c, dep, cost := tspUnpack(tspPack(0b1010, 7, 3, 12345))
	if v != 0b1010 || c != 7 || dep != 3 || cost != 12345 {
		t.Fatalf("pack/unpack mismatch: %v %v %v %v", v, c, dep, cost)
	}
}

func TestTSPSearchIsExhaustive(t *testing.T) {
	// A small tour on 4 nodes must visit every complete tour that the
	// bound admits; with the bound seeded optimal and uniform pruning,
	// the tour counter must be deterministic and positive, and the bound
	// must still equal the optimum afterwards.
	p := TSPParams{Cities: 7, SpawnDepth: 2, Seed: 42, ExpandCycles: 10}
	d := tspDistances(p)
	opt := tspOptimal(d)

	m, _, inst := runApp(t, TSP(p), 4, proto.FullMap())
	bound := readWord(t, m, inst.Probes["bound"])
	if bound != opt {
		t.Fatalf("bound after run = %d, want optimal %d", bound, opt)
	}
	if uint64(inst.Probes["optimal"]) != opt {
		t.Fatalf("optimal probe = %d, want %d", inst.Probes["optimal"], opt)
	}
	tours := readWord(t, m, inst.Probes["tours"])
	if tours == 0 {
		t.Fatal("no complete tours evaluated")
	}
}

func TestTSPDeterministicAcrossRuns(t *testing.T) {
	p := TSPParams{Cities: 7, SpawnDepth: 2, Seed: 42, ExpandCycles: 10}
	_, r1, _ := runApp(t, TSP(p), 4, proto.LimitLESS(2))
	_, r2, _ := runApp(t, TSP(p), 4, proto.LimitLESS(2))
	if r1.Time != r2.Time {
		t.Fatalf("TSP runs differ: %d vs %d", r1.Time, r2.Time)
	}
}

func TestAQResultAccuracy(t *testing.T) {
	p := AQParams{Tolerance: 0.001, MaxLevel: 7, SpawnLevel: 3, EvalCycles: 10}
	m, _, inst := runApp(t, AQ(p), 4, proto.FullMap())
	sum := readWord(t, m, inst.Probes["integral"])
	got := fromFix(sum)
	if math.Abs(got-AQExact()) > 0.12*AQExact() {
		t.Fatalf("integral = %v, want within 12%% of %v", got, AQExact())
	}
}

func TestAQWorkScalesWithTolerance(t *testing.T) {
	loose := AQParams{Tolerance: 0.01, MaxLevel: 6, SpawnLevel: 3, EvalCycles: 10}
	tight := AQParams{Tolerance: 0.0001, MaxLevel: 8, SpawnLevel: 3, EvalCycles: 10}
	_, rl, _ := runApp(t, AQ(loose), 2, proto.FullMap())
	_, rt, _ := runApp(t, AQ(tight), 2, proto.FullMap())
	if rt.Time <= rl.Time {
		t.Fatalf("tighter tolerance (%d cycles) not more work than loose (%d)", rt.Time, rl.Time)
	}
}

func TestSMGridConverges(t *testing.T) {
	p := SMGridParams{Size: 17, Levels: 2, VCycles: 1, Sweeps: 2, PointCycles: 5}
	m, _, _ := runApp(t, SMGrid(p), 4, proto.FullMap())
	// After relaxation with unit boundary, interior points move toward
	// the boundary value: strictly positive, below 1.
	// Row 8 is owned by node 8%4=0; its buffer addresses are internal,
	// so verify via memory contents directly: scan node segments for
	// fixed-point values in (0, 1].
	count := 0
	for n := mem.NodeID(0); n < 4; n++ {
		for off := mem.Addr(0); off < 4096; off++ {
			v := m.Mem.Read(mem.SegBase(n) + off)
			f := fromFix(v)
			if f > 0.001 && f <= 1.0 {
				count++
			}
		}
	}
	if count < 17 {
		t.Fatalf("relaxation left no interior values; found %d plausible points", count)
	}
}

func TestSMGridBarrierHeavy(t *testing.T) {
	p := SMGridParams{Size: 17, Levels: 2, VCycles: 1, Sweeps: 1, PointCycles: 5}
	_, res, _ := runApp(t, SMGrid(p), 4, proto.FullMap())
	// Multigrid is barrier-synchronized: there must be significant
	// invalidation traffic from the ping-pong updates.
	if res.Counters.Get("msg.INV") == 0 {
		t.Fatal("no invalidations in a Jacobi ping-pong")
	}
}

func TestEvolveFindsMaxima(t *testing.T) {
	p := EvolveParams{Dimensions: 8, TotalWalks: 12, StepCycles: 4, Seed: 7}
	m, _, inst := runApp(t, Evolve(p), 4, proto.FullMap())
	maxima := readWord(t, m, inst.Probes["maxima"])
	if maxima != 12 {
		t.Fatalf("maxima = %d, want 12 (every walk ends at a local maximum)", maxima)
	}
}

func TestEvolveWorkerSetSpread(t *testing.T) {
	p := EvolveParams{Dimensions: 8, TotalWalks: 32, StepCycles: 4, Seed: 7}
	_, res, _ := runApp(t, Evolve(p), 8, proto.FullMap())
	h := res.WorkerSets
	if h.Count(1) == 0 {
		t.Fatal("no single-node worker sets; EVOLVE should have many")
	}
	if h.Count(1) < h.Count(4) {
		t.Fatal("worker-set histogram should decay with size")
	}
	if h.MaxBucket() < 4 {
		t.Fatalf("max worker set = %d; the global counters should be widely shared", h.MaxBucket())
	}
}

func TestMP3DParticleConservation(t *testing.T) {
	p := MP3DParams{Particles: 64, CellsPerSide: 4, Steps: 2, MoveCycles: 5, Seed: 3}
	m, _, inst := runApp(t, MP3D(p), 4, proto.FullMap())
	// Sum of all cell counts = particles * steps. Cell c is one block
	// after the previous cell on the same home (round-robin layout);
	// reconstruct from the cell0 probe.
	cells := 4 * 4 * 4
	idx := make([]mem.Addr, 4)
	for n := 0; n < 4; n++ {
		idx[n] = inst.Probes[fmt.Sprintf("cell%d", n)]
	}
	var total uint64
	for c := 0; c < cells; c++ {
		n := c % 4
		total += readWord(t, m, idx[n])
		idx[n] += mem.WordsPerBlock
	}
	if total != 64*2 {
		t.Fatalf("cell count sum = %d, want %d", total, 64*2)
	}
}

func TestWaterRunsAllProtocols(t *testing.T) {
	p := WaterParams{Molecules: 16, Steps: 1, PairCycles: 10, Seed: 5}
	for _, spec := range []proto.Spec{proto.FullMap(), proto.LimitLESS(5), proto.SoftwareOnly()} {
		_, res, _ := runApp(t, Water(p), 4, spec)
		if res.Messages == 0 {
			t.Fatalf("WATER on %s produced no traffic", spec.Name)
		}
	}
}

func TestWaterWideReadSharing(t *testing.T) {
	p := WaterParams{Molecules: 16, Steps: 2, PairCycles: 10, Seed: 5}
	_, res, _ := runApp(t, Water(p), 8, proto.FullMap())
	// Every molecule is read by all 8 nodes each step: molecule blocks
	// reach worker sets near the machine size.
	if res.WorkerSets.MaxBucket() < 7 {
		t.Fatalf("max worker set = %d, want near 8 (all nodes read all molecules)",
			res.WorkerSets.MaxBucket())
	}
}

func TestAllAppsCompleteOnSpectrum(t *testing.T) {
	if testing.Short() {
		t.Skip("full spectrum sweep")
	}
	// Small instances of every application across the protocol extremes.
	progs := []Program{
		TSP(TSPParams{Cities: 6, SpawnDepth: 2, Seed: 42, ExpandCycles: 5}),
		AQ(AQParams{Tolerance: 0.01, MaxLevel: 5, SpawnLevel: 2, EvalCycles: 5}),
		SMGrid(SMGridParams{Size: 9, Levels: 2, VCycles: 1, Sweeps: 1, PointCycles: 3}),
		Evolve(EvolveParams{Dimensions: 6, TotalWalks: 8, StepCycles: 2, Seed: 7}),
		MP3D(MP3DParams{Particles: 32, CellsPerSide: 4, Steps: 1, MoveCycles: 5, Seed: 3}),
		Water(WaterParams{Molecules: 8, Steps: 1, PairCycles: 5, Seed: 5}),
	}
	specs := []proto.Spec{
		proto.FullMap(), proto.LimitLESS(5), proto.LimitLESS(2),
		proto.OnePointer(proto.AckHW), proto.OnePointer(proto.AckLACK),
		proto.OnePointer(proto.AckSW), proto.SoftwareOnly(), proto.Dir1SW(),
	}
	for _, prog := range progs {
		for _, spec := range specs {
			t.Run(prog.Name+"/"+spec.Name, func(t *testing.T) {
				_, res, _ := runApp(t, prog, 4, spec)
				if res.Time == 0 {
					t.Fatal("zero run time")
				}
			})
		}
	}
}

func TestSequentialRunsWork(t *testing.T) {
	// Every app must run on a single node (the Table 3 sequential
	// baseline).
	progs := []Program{
		TSP(TSPParams{Cities: 6, SpawnDepth: 2, Seed: 42, ExpandCycles: 5}),
		AQ(AQParams{Tolerance: 0.01, MaxLevel: 5, SpawnLevel: 2, EvalCycles: 5}),
		SMGrid(SMGridParams{Size: 9, Levels: 2, VCycles: 1, Sweeps: 1, PointCycles: 3}),
		Evolve(EvolveParams{Dimensions: 6, TotalWalks: 8, StepCycles: 2, Seed: 7}),
		MP3D(MP3DParams{Particles: 32, CellsPerSide: 4, Steps: 1, MoveCycles: 5, Seed: 3}),
		Water(WaterParams{Molecules: 8, Steps: 1, PairCycles: 5, Seed: 5}),
	}
	for _, prog := range progs {
		t.Run(prog.Name, func(t *testing.T) {
			_, res, _ := runApp(t, prog, 1, proto.FullMap())
			if res.Time == 0 {
				t.Fatal("zero sequential time")
			}
		})
	}
}

func TestAppSpeedupSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup comparison")
	}
	// A modest WATER instance must speed up from 1 to 8 nodes under
	// full-map.
	p := WaterParams{Molecules: 32, Steps: 2, PairCycles: 40, Seed: 5}
	_, seq, _ := runApp(t, Water(p), 1, proto.FullMap())
	_, par, _ := runApp(t, Water(p), 8, proto.FullMap())
	speedup := float64(seq.Time) / float64(par.Time)
	if speedup < 3 {
		t.Fatalf("WATER 8-node speedup = %.2f, want >= 3", speedup)
	}
}

var _ = sim.Cycle(0)

// Golden results: the applications' computed answers (not just their
// timing) are deterministic functions of their parameters; pin them so a
// protocol change that corrupts data is caught even if timing still looks
// plausible.
func TestGoldenTSPOptimal(t *testing.T) {
	p := DefaultTSP()
	d := tspDistances(p)
	opt := tspOptimal(d)
	if opt == 0 || opt > 11*100 {
		t.Fatalf("default TSP optimal = %d, implausible", opt)
	}
	// The same seed must always build the same instance.
	if again := tspOptimal(tspDistances(p)); again != opt {
		t.Fatalf("optimal not reproducible: %d vs %d", opt, again)
	}
}

func TestGoldenAQIntegralAcrossProtocols(t *testing.T) {
	// The integral must be identical (not just close) for every protocol:
	// the memory system must never corrupt data, only change timing.
	p := AQParams{Tolerance: 0.001, MaxLevel: 6, SpawnLevel: 3, EvalCycles: 5}
	var results []uint64
	for _, spec := range []proto.Spec{proto.FullMap(), proto.LimitLESS(2), proto.SoftwareOnly()} {
		m, _, inst := runApp(t, AQ(p), 4, spec)
		results = append(results, readWord(t, m, inst.Probes["integral"]))
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("integral differs across protocols: %v", results)
	}
	if got := fromFix(results[0]); math.Abs(got-AQExact()) > 0.15*AQExact() {
		t.Fatalf("integral %v too far from %v", got, AQExact())
	}
}

func TestGoldenEvolveMaximaAcrossProtocols(t *testing.T) {
	p := EvolveParams{Dimensions: 8, TotalWalks: 16, StepCycles: 4, Seed: 7}
	var results []uint64
	for _, spec := range []proto.Spec{proto.FullMap(), proto.OnePointer(proto.AckLACK)} {
		m, _, inst := runApp(t, Evolve(p), 4, spec)
		results = append(results, readWord(t, m, inst.Probes["maxima"]))
	}
	if results[0] != results[1] {
		t.Fatalf("maxima differ across protocols: %v", results)
	}
	if results[0] != 16 {
		t.Fatalf("maxima = %d, want one per walk (16)", results[0])
	}
}
