package apps

import (
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// TSPParams configures the traveling-salesman study (paper Section 6).
type TSPParams struct {
	// Cities is the tour size (the paper runs a 10-city tour).
	Cities int
	// SpawnDepth is the tree depth below which expansion is sequential;
	// tasks are spawned for prefixes shorter than this.
	SpawnDepth int
	// Seed selects the distance matrix.
	Seed uint64
	// ExpandCycles models the instruction work per tour extension.
	ExpandCycles sim.Cycle
}

// DefaultTSP matches the paper's setup at full size: a 10-city tour whose
// best-path bound is seeded with the optimal value so the amount of work
// is deterministic.
func DefaultTSP() TSPParams {
	return TSPParams{Cities: 11, SpawnDepth: 4, Seed: 20261994, ExpandCycles: 260}
}

// tspDistances builds the deterministic distance matrix.
func tspDistances(p TSPParams) [][]uint64 {
	rnd := sim.NewRand(p.Seed)
	d := make([][]uint64, p.Cities)
	for i := range d {
		d[i] = make([]uint64, p.Cities)
	}
	for i := 0; i < p.Cities; i++ {
		for j := i + 1; j < p.Cities; j++ {
			v := uint64(rnd.Intn(90) + 10)
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// tspOptimal solves the instance exactly (Held-Karp) so the shared bound
// can be seeded with the optimal tour length, as the paper does "to ensure
// that the amount of work performed by the application is deterministic".
func tspOptimal(d [][]uint64) uint64 {
	n := len(d)
	const inf = ^uint64(0) / 2
	size := 1 << uint(n-1) // city 0 is fixed as the start
	dp := make([][]uint64, size)
	for s := range dp {
		dp[s] = make([]uint64, n-1)
		for i := range dp[s] {
			dp[s][i] = inf
		}
	}
	for i := 0; i < n-1; i++ {
		dp[1<<uint(i)][i] = d[0][i+1]
	}
	for s := 1; s < size; s++ {
		for last := 0; last < n-1; last++ {
			if dp[s][last] >= inf || s&(1<<uint(last)) == 0 {
				continue
			}
			for next := 0; next < n-1; next++ {
				if s&(1<<uint(next)) != 0 {
					continue
				}
				ns := s | 1<<uint(next)
				cost := dp[s][last] + d[last+1][next+1]
				if cost < dp[ns][next] {
					dp[ns][next] = cost
				}
			}
		}
	}
	best := inf
	for last := 0; last < n-1; last++ {
		if c := dp[size-1][last] + d[last+1][0]; c < best {
			best = c
		}
	}
	return best
}

// tspTask packs a partial tour into one word: a visited-city bitmask, the
// current city, the path cost, and the depth. Tour records additionally
// live in shared memory so consumers read producer-written blocks, which
// is the "small sets of nodes that concurrently access partial tours" the
// paper describes.
func tspPack(visited uint64, current, depth int, cost uint64) uint64 {
	return visited | uint64(current)<<16 | uint64(depth)<<24 | cost<<32
}

func tspUnpack(t uint64) (visited uint64, current, depth int, cost uint64) {
	return t & 0xFFFF, int(t >> 16 & 0xFF), int(t >> 24 & 0xFF), t >> 32
}

// TSP builds the branch-and-bound traveling salesman application. The
// shared best-path bound and the termination counter are the application's
// two globally-shared hot blocks; they are allocated in the cache sets the
// main loop's code region also maps to, reproducing the instruction/data
// thrashing of Figure 3 on direct-mapped combined caches.
func TSP(p TSPParams) Program {
	return Program{
		Name: "TSP",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			d := tspDistances(p)
			optimal := tspOptimal(d)

			// The two hot blocks: allocated first on node 0, they land
			// in cache sets 0 and 1, directly under the main loop's
			// code region (which starts at a set-0 boundary).
			bound := m.Mem.AllocOn(0, 1)   // block 0: best path bound
			visited := m.Mem.AllocOn(0, 1) // block 1: total-tours cell
			// Per-node tour counters, merged into the total at the end:
			// a production branch-and-bound does not serialize its leaf
			// rate through one global word.
			tours := make([]mem.Addr, P)
			for n := 0; n < P; n++ {
				tours[n] = m.Mem.AllocOn(mem.NodeID(n), 1)
			}

			// Read-only distance matrix in shared memory on node 0.
			distBase := m.Mem.AllocOn(0, p.Cities*p.Cities)

			// Pad every node's allocation cursor past the code region's
			// cache sets so only the two intended blocks thrash.
			for n := 0; n < P; n++ {
				m.Mem.AllocOn(mem.NodeID(n), 10*mem.WordsPerBlock)
			}
			queue := shm.NewTaskQueue(m.Mem, P, 4096)
			term := shm.NewDistTermination(m.Mem, P)
			bar := shm.NewTreeBarrier(m.Mem, P)

			// minEdge underpins the pruning lower bound.
			minEdge := ^uint64(0)
			for i := 0; i < p.Cities; i++ {
				for j := 0; j < p.Cities; j++ {
					if i != j && d[i][j] < minEdge {
						minEdge = d[i][j]
					}
				}
			}

			thread := func(env *proc.Env) {
				id := env.ID()
				// Initialization code region: harmless sets.
				env.SetCode(proc.CodeSpace+3200*mem.WordsPerBlock, 12)
				if id == 0 {
					env.Write(bound, optimal)
					for i := 0; i < p.Cities; i++ {
						for j := 0; j < p.Cities; j++ {
							env.Write(distBase+mem.Addr(i*p.Cities+j), d[i][j])
						}
					}
					// Root task: at city 0, nothing else visited.
					term.Register(env, 1)
					queue.Push(env, 0, tspPack(0, 0, 0, 0))
				}
				bar.Wait(env)

				// Main search loop: its code region covers cache sets
				// 0..7, colliding with the bound and counter blocks
				// (sets 0 and 1) — and with nothing else: the other
				// shared structures are padded past set 8.
				env.SetCode(proc.CodeSpace, 8)

				dist := func(i, j int) uint64 {
					return env.Read(distBase + mem.Addr(i*p.Cities+j))
				}

				// expand processes a partial tour; prefixes shallower
				// than SpawnDepth fork children into the task queue,
				// deeper ones recurse sequentially.
				var localTours uint64
				var expand func(visitedSet uint64, current, depth int, cost uint64)
				expand = func(visitedSet uint64, current, depth int, cost uint64) {
					b := env.Read(bound)
					if depth == p.Cities-1 {
						total := cost + dist(current, 0)
						localTours++
						if total < b {
							env.RMW(bound, func(old uint64) uint64 {
								if total < old {
									return total
								}
								return old
							})
						}
						return
					}
					remaining := uint64(p.Cities - 1 - depth)
					for next := 1; next < p.Cities; next++ {
						bit := uint64(1) << uint(next)
						if visitedSet&bit != 0 {
							continue
						}
						env.Compute(p.ExpandCycles)
						c := cost + dist(current, next)
						if c+remaining*minEdge > b {
							continue // prune: cannot beat the bound
						}
						if depth+1 < p.SpawnDepth {
							term.Register(env, 1)
							task := tspPack(visitedSet|bit, next, depth+1, c)
							if !queue.Push(env, id, task) {
								// Queue full: execute inline instead.
								term.Complete(env)
								expand(visitedSet|bit, next, depth+1, c)
							}
						} else {
							expand(visitedSet|bit, next, depth+1, c)
						}
					}
				}

				backoff := sim.Cycle(50)
				maxBackoff := sim.Cycle(50 * P)
				if maxBackoff < 3200 {
					maxBackoff = 3200
				}
				attempt := int(id)
				for {
					task, ok := queue.Pop(env, id)
					if !ok {
						task, ok = queue.StealBatch(env, id, attempt, 8)
						attempt++
					}
					if !ok {
						// Node 0 is the termination detector; everyone
						// else watches the done flag (a cached read).
						if id == 0 {
							if backoff >= maxBackoff && term.Detect(env) {
								break
							}
						} else if term.Done(env) {
							break
						}
						// Exponential backoff keeps idle thieves from
						// saturating the queues and the network.
						env.Compute(backoff)
						if backoff < maxBackoff {
							backoff *= 2
						}
						continue
					}
					backoff = 50
					v, cur, depth, cost := tspUnpack(task)
					expand(v, cur, depth, cost)
					term.Complete(env)
				}
				env.Write(tours[id], localTours)
				bar.Wait(env)
				if id == 0 {
					var sum uint64
					for n := 0; n < P; n++ {
						sum += env.Read(tours[n])
					}
					env.Write(visited, sum)
				}
				bar.Wait(env)
			}
			return Instance{Thread: thread, Probes: map[string]mem.Addr{
				"bound":   bound,
				"tours":   visited,
				"optimal": mem.Addr(optimal), // not an address: the known optimum, for checks
			}}
		},
	}
}
