package apps

import (
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// WaterParams configures the molecular-dynamics application from the
// SPLASH suite (paper Section 6): N-body simulation of water molecules
// with O(N^2) pairwise force evaluation. The paper runs 64 molecules and
// uses Alewife's parallel C library for barriers and reductions.
type WaterParams struct {
	// Molecules is the molecule count (paper: 64).
	Molecules int
	// Steps is the number of time steps.
	Steps int
	// PairCycles models the force arithmetic per molecule pair.
	PairCycles sim.Cycle
	// Seed drives the initial configuration.
	Seed uint64
}

// DefaultWater keeps the paper's 64 molecules.
func DefaultWater() WaterParams {
	return WaterParams{Molecules: 64, Steps: 3, PairCycles: 600, Seed: 2718}
}

// Water builds the molecular dynamics application. Each molecule's state
// block is homed on its owner and read by every node during the force
// phase (wide read sharing), then rewritten by its owner (invalidating all
// readers) — the pattern that lets even the software-only directory reach
// about 70% of full-map performance, since reads dominate writes by a
// factor of N.
func Water(p WaterParams) Program {
	return Program{
		Name: "WATER",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			bar := shm.NewTreeBarrier(m.Mem, P)
			energy := shm.NewReducer(m.Mem, mem.NodeID(1%P))

			// One block per molecule: packed position word (+ a
			// velocity word), homed round-robin.
			mol := make([]mem.Addr, p.Molecules)
			for i := range mol {
				mol[i] = m.Mem.AllocOn(mem.NodeID(i%P), mem.WordsPerBlock)
			}

			const space = 1 << 20
			pack := func(x, y, z uint64) uint64 {
				return x | y<<21 | z<<42
			}
			unpack := func(v uint64) (x, y, z uint64) {
				const mask = (1 << 21) - 1
				return v & mask, v >> 21 & mask, v >> 42 & mask
			}

			thread := func(env *proc.Env) {
				id := int(env.ID())
				env.SetCode(proc.CodeSpace+3600*mem.WordsPerBlock, 16)
				rnd := sim.NewRand(p.Seed + uint64(id)*7919)

				// Initialize owned molecules.
				for i := id; i < p.Molecules; i += P {
					env.Write(mol[i], pack(uint64(rnd.Intn(space)),
						uint64(rnd.Intn(space)), uint64(rnd.Intn(space))))
				}
				bar.Wait(env)

				for step := 0; step < p.Steps; step++ {
					var localEnergy uint64
					// Force phase: for each owned molecule, accumulate
					// interactions with every other molecule.
					for i := id; i < p.Molecules; i += P {
						pos := env.Read(mol[i])
						xi, yi, zi := unpack(pos)
						var fx, fy, fz uint64
						for k := 1; k < p.Molecules; k++ {
							// Stagger the interaction order by owner so
							// the machine does not stampede molecule 0's
							// home in lockstep.
							j := (i + k) % p.Molecules
							pj := env.Read(mol[j])
							xj, yj, zj := unpack(pj)
							env.Compute(p.PairCycles)
							// A softened inverse-square-ish kick; the
							// arithmetic is a stand-in for the O(N^2)
							// work, not a faithful potential.
							fx += (xj - xi) >> 12 & 0xFF
							fy += (yj - yi) >> 12 & 0xFF
							fz += (zj - zi) >> 12 & 0xFF
							localEnergy += (fx + fy + fz) & 0xFFF
						}
						// Integrate: move the molecule (deferred to the
						// update phase via a local stash would need
						// another array; writing here after the barrier
						// below keeps reads and writes in distinct
						// phases).
						newPos := pack((xi+fx)%space, (yi+fy)%space, (zi+fz)%space)
						env.Write(mol[i], newPos)
					}
					energy.Add(env, localEnergy&0xFFFF)
					bar.Wait(env)
				}
			}
			return Instance{Thread: thread, Probes: map[string]mem.Addr{
				"energy": energy.Addr(),
				"mol0":   mol[0],
			}}
		},
	}
}
