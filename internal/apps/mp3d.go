package apps

import (
	"fmt"

	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// MP3DParams configures the rarefied-fluid-flow application from the
// SPLASH suite (paper Section 6): particles streaming through a
// discretized wind tunnel, with per-cell state updated by whichever node's
// particles occupy the cell. The paper runs 10,000 particles with locking
// off; MP3D is "notorious for exhibiting low speedups" because the cell
// state is written by many nodes with little locality.
type MP3DParams struct {
	// Particles is the particle count (paper: 10,000; scaled here).
	Particles int
	// CellsPerSide gives a CellsPerSide^3 wind-tunnel discretization.
	CellsPerSide int
	// Steps is the number of simulated time steps.
	Steps int
	// MoveCycles models the per-particle arithmetic each step.
	MoveCycles sim.Cycle
	// Seed drives initial particle placement.
	Seed uint64
}

// DefaultMP3D scales the paper's run down to 2048 particles in an 8x8x8
// tunnel.
func DefaultMP3D() MP3DParams {
	return MP3DParams{Particles: 4096, CellsPerSide: 8, Steps: 3, MoveCycles: 70, Seed: 3141}
}

// MP3D builds the particle-in-cell application. Particle records are homed
// on their owning node; cell records are distributed round-robin. Each
// step every node moves its particles and updates the occupied cells'
// counters and momenta — writes scattered across the whole cell array,
// the access pattern that makes the software-only directory collapse to
// ~11% of full-map in the paper.
func MP3D(p MP3DParams) Program {
	return Program{
		Name: "MP3D",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			cells := p.CellsPerSide * p.CellsPerSide * p.CellsPerSide
			bar := shm.NewTreeBarrier(m.Mem, P)

			// Cell records: one block each (count word + momentum word),
			// distributed round-robin.
			cellAddr := make([]mem.Addr, cells)
			for c := 0; c < cells; c++ {
				cellAddr[c] = m.Mem.AllocOn(mem.NodeID(c%P), mem.WordsPerBlock)
			}

			// Particle records: position and velocity packed into two
			// words, homed on the owner.
			perNode := (p.Particles + P - 1) / P
			partBase := make([]mem.Addr, P)
			for n := 0; n < P; n++ {
				partBase[n] = m.Mem.AllocOn(mem.NodeID(n), perNode*2)
			}

			side := uint64(p.CellsPerSide)
			space := side * 1024 // fixed-point coordinate space per axis

			thread := func(env *proc.Env) {
				id := int(env.ID())
				env.SetCode(proc.CodeSpace+3500*mem.WordsPerBlock, 12)
				mine := perNode
				if id == P-1 {
					mine = p.Particles - perNode*(P-1)
					if mine < 0 {
						mine = 0
					}
				}

				rnd := sim.NewRand(p.Seed ^ uint64(id)*0x9E3779B97F4A7C15)
				pack := func(x, y, z uint64) uint64 {
					return x | y<<21 | z<<42
				}
				unpack := func(v uint64) (x, y, z uint64) {
					const mask = (1 << 21) - 1
					return v & mask, v >> 21 & mask, v >> 42 & mask
				}

				// Initialize owned particles: random position, rightward
				// bias in velocity (the wind).
				for i := 0; i < mine; i++ {
					pos := pack(uint64(rnd.Intn(int(space))),
						uint64(rnd.Intn(int(space))), uint64(rnd.Intn(int(space))))
					vel := pack(uint64(200+rnd.Intn(100)),
						uint64(rnd.Intn(100)), uint64(rnd.Intn(100)))
					env.Write(partBase[id]+mem.Addr(2*i), pos)
					env.Write(partBase[id]+mem.Addr(2*i+1), vel)
				}
				bar.Wait(env)

				cellOf := func(x, y, z uint64) int {
					cx, cy, cz := x/1024, y/1024, z/1024
					return int(cx + cy*side + cz*side*side)
				}

				for step := 0; step < p.Steps; step++ {
					for i := 0; i < mine; i++ {
						pa := partBase[id] + mem.Addr(2*i)
						pos := env.Read(pa)
						vel := env.Read(pa + 1)
						x, y, z := unpack(pos)
						vx, vy, vz := unpack(vel)
						env.Compute(p.MoveCycles)
						x = (x + vx) % space
						y = (y + vy) % space
						z = (z + vz) % space
						env.Write(pa, pack(x, y, z))
						// Update the occupied cell: count and momentum.
						c := cellOf(x, y, z)
						env.FetchAdd(cellAddr[c], 1)
						env.FetchAdd(cellAddr[c]+1, vx)
						// Collision model: the cell's population bends
						// the particle's transverse velocity.
						count := env.Read(cellAddr[c])
						if count%7 == 3 {
							env.Write(pa+1, pack(vx, vz, vy))
						}
					}
					bar.Wait(env)
				}
			}
			probes := map[string]mem.Addr{"cell0": cellAddr[0]}
			for i, a := range cellAddr {
				if i < 8 {
					probes[fmt.Sprintf("cell%d", i)] = a
				}
			}
			return Instance{Thread: thread, Probes: probes}
		},
	}
}
