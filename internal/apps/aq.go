package apps

import (
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// AQParams configures the adaptive-quadrature application (paper Section
// 6): numerical integration of x^4*y^4 over the square ((0,0),(2,2)).
type AQParams struct {
	// Tolerance is the relative error bound that stops refinement.
	Tolerance float64
	// MaxLevel caps recursion depth (refinement stops regardless).
	MaxLevel int
	// SpawnLevel is the depth above which refinement forks queue tasks;
	// deeper regions are integrated inline, setting the task grain.
	SpawnLevel int
	// EvalCycles models the instruction work per function evaluation.
	EvalCycles sim.Cycle
}

// DefaultAQ scales the paper's run (tolerance 0.005) to a depth that keeps
// a 64-node cycle-level simulation tractable while producing thousands of
// producer-consumer tasks.
func DefaultAQ() AQParams {
	return AQParams{Tolerance: 0.0000005, MaxLevel: 9, SpawnLevel: 5, EvalCycles: 60}
}

// aqF is the integrand x^4 * y^4.
func aqF(x, y float64) float64 {
	x2, y2 := x*x, y*y
	return x2 * x2 * y2 * y2
}

// aqTask packs a region: x and y cell indices at the task's level, plus
// the level. The region is the square of side 2/2^level at
// (x*side, y*side).
func aqPack(xi, yi, level int) uint64 {
	return uint64(xi) | uint64(yi)<<20 | uint64(level)<<40
}

func aqUnpack(t uint64) (xi, yi, level int) {
	return int(t & 0xFFFFF), int(t >> 20 & 0xFFFFF), int(t >> 40)
}

// AQ builds the adaptive quadrature application. All communication is
// producer-consumer through the distributed task queue — the paper notes
// this access pattern lets every protocol with at least one hardware
// pointer perform equally well, and lets even the software-only directory
// perform respectably.
func AQ(p AQParams) Program {
	return Program{
		Name: "AQ",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			queue := shm.NewTaskQueue(m.Mem, P, 8192)
			term := shm.NewDistTermination(m.Mem, P)
			bar := shm.NewTreeBarrier(m.Mem, P)
			result := shm.NewReducer(m.Mem, mem.NodeID(2%P))

			thread := func(env *proc.Env) {
				id := env.ID()
				env.SetCode(proc.CodeSpace+3100*mem.WordsPerBlock, 10)
				if id == 0 {
					// Root: the whole square as four level-1 cells so
					// work spreads immediately.
					term.Register(env, 4)
					for xi := 0; xi < 2; xi++ {
						for yi := 0; yi < 2; yi++ {
							queue.Push(env, 0, aqPack(xi, yi, 1))
						}
					}
				}
				bar.Wait(env)

				var local uint64 // per-node partial sum, Q32.32

				// estimate returns the midpoint and four-subcell
				// integrals of a region and whether it needs refining;
				// five integrand evaluations.
				estimate := func(xi, yi, level int) (fine float64, refine bool) {
					side := 2.0 / float64(uint64(1)<<uint(level))
					x0, y0 := float64(xi)*side, float64(yi)*side
					env.Compute(5 * p.EvalCycles)
					area := side * side
					coarse := aqF(x0+side/2, y0+side/2) * area
					for dx := 0; dx < 2; dx++ {
						for dy := 0; dy < 2; dy++ {
							fine += aqF(x0+side/4+float64(dx)*side/2,
								y0+side/4+float64(dy)*side/2) * area / 4
						}
					}
					err := fine - coarse
					if err < 0 {
						err = -err
					}
					return fine, err > p.Tolerance && level < p.MaxLevel
				}

				// integrate refines a region to convergence without
				// touching shared memory: the sequential grain below the
				// spawn level.
				var integrate func(xi, yi, level int) float64
				integrate = func(xi, yi, level int) float64 {
					fine, refine := estimate(xi, yi, level)
					if !refine {
						return fine
					}
					sum := 0.0
					for dx := 0; dx < 2; dx++ {
						for dy := 0; dy < 2; dy++ {
							sum += integrate(xi*2+dx, yi*2+dy, level+1)
						}
					}
					return sum
				}

				var process func(task uint64)
				process = func(task uint64) {
					xi, yi, level := aqUnpack(task)
					if level >= p.SpawnLevel {
						local += toFix(integrate(xi, yi, level))
						return
					}
					fine, refine := estimate(xi, yi, level)
					if !refine {
						local += toFix(fine)
						return
					}
					// Refine in parallel: fork the four subregions.
					term.Register(env, 4)
					for dx := 0; dx < 2; dx++ {
						for dy := 0; dy < 2; dy++ {
							t := aqPack(xi*2+dx, yi*2+dy, level+1)
							if !queue.Push(env, id, t) {
								// Queue full: evaluate inline.
								process(t)
								term.Complete(env)
							}
						}
					}
				}

				backoff := sim.Cycle(50)
				maxBackoff := sim.Cycle(50 * P)
				if maxBackoff < 3200 {
					maxBackoff = 3200
				}
				attempt := int(id)
				for {
					task, ok := queue.Pop(env, id)
					if !ok {
						task, ok = queue.StealBatch(env, id, attempt, 8)
						attempt++
					}
					if !ok {
						// Node 0 is the termination detector; everyone
						// else watches the done flag (a cached read).
						if id == 0 {
							if backoff >= maxBackoff && term.Detect(env) {
								break
							}
						} else if term.Done(env) {
							break
						}
						env.Compute(backoff)
						if backoff < maxBackoff {
							backoff *= 2
						}
						continue
					}
					backoff = 50
					process(task)
					term.Complete(env)
				}
				result.Add(env, local)
				bar.Wait(env)
			}
			return Instance{Thread: thread, Probes: map[string]mem.Addr{
				"integral": result.Addr(),
			}}
		},
	}
}

// AQExact returns the analytic integral of x^4 y^4 over ((0,0),(2,2)):
// (2^5/5)^2 = 40.96, for validating runs.
func AQExact() float64 { return (32.0 / 5.0) * (32.0 / 5.0) }
