package apps

import (
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// SMGridParams configures the static multigrid solver (paper Section 6):
// Jacobi-style relaxation on a pyramid of grids solving an elliptical PDE.
type SMGridParams struct {
	// Size is the finest grid dimension (paper: 129x129; scaled here).
	Size int
	// Levels is the pyramid depth.
	Levels int
	// VCycles is the number of V-cycles performed.
	VCycles int
	// Sweeps is the number of relaxation sweeps at each level visit.
	Sweeps int
	// PointCycles models the arithmetic per grid-point update.
	PointCycles sim.Cycle
}

// DefaultSMGrid scales the paper's 129x129 run down to 33x33 with a
// three-level pyramid.
func DefaultSMGrid() SMGridParams {
	return SMGridParams{Size: 65, Levels: 3, VCycles: 2, Sweeps: 3, PointCycles: 28}
}

// smLevel holds the shared-memory layout of one grid level: two buffers
// (Jacobi ping-pong), distributed by rows across the nodes.
type smLevel struct {
	n    int           // grid dimension
	rows [][2]mem.Addr // per-row base address of each buffer
}

// SMGrid builds the multigrid application. Speedup is limited because only
// a subset of nodes has rows at the coarser levels of the pyramid, and
// data is shared more widely than in TSP or AQ: every relaxation reads
// neighboring rows owned by other nodes, and restriction/interpolation
// read across levels.
func SMGrid(p SMGridParams) Program {
	return Program{
		Name: "SMGRID",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			bar := shm.NewTreeBarrier(m.Mem, P)

			levels := make([]*smLevel, p.Levels)
			n := p.Size
			for l := range levels {
				lv := &smLevel{n: n, rows: make([][2]mem.Addr, n)}
				for r := 0; r < n; r++ {
					// Contiguous strips: only strip-boundary rows are
					// shared between neighboring owners.
					owner := mem.NodeID(r * P / n)
					lv.rows[r][0] = m.Mem.AllocOn(owner, n)
					lv.rows[r][1] = m.Mem.AllocOn(owner, n)
				}
				levels[l] = lv
				n = n/2 + 1
			}

			at := func(lv *smLevel, buf, r, c int) mem.Addr {
				return lv.rows[r][buf] + mem.Addr(c)
			}

			thread := func(env *proc.Env) {
				id := int(env.ID())
				env.SetCode(proc.CodeSpace+3300*mem.WordsPerBlock, 14)

				// ownedRows yields this node's strip on a level.
				ownedRows := func(n int) (lo, hi int) {
					lo = (id*n + P - 1) / P
					hi = ((id+1)*n + P - 1) / P
					if hi > n {
						hi = n
					}
					return lo, hi
				}

				// Initialize owned rows of the finest grid: boundary
				// condition u = 1 on the edges, 0 inside, both buffers.
				fin := levels[0]
				lo0, hi0 := ownedRows(fin.n)
				for r := lo0; r < hi0; r++ {
					for c := 0; c < fin.n; c++ {
						v := uint64(0)
						if r == 0 || c == 0 || r == fin.n-1 || c == fin.n-1 {
							v = toFix(1.0)
						}
						env.Write(at(fin, 0, r, c), v)
						env.Write(at(fin, 1, r, c), v)
					}
				}
				bar.Wait(env)

				// relax performs Jacobi sweeps on a level, ping-ponging
				// buffers; every node sweeps its own rows and reads the
				// neighboring rows in place.
				relax := func(lv *smLevel, buf int) int {
					for s := 0; s < p.Sweeps; s++ {
						src, dst := buf, 1-buf
						lo, hi := ownedRows(lv.n)
						for r := lo; r < hi; r++ {
							if r == 0 || r == lv.n-1 {
								continue
							}
							for c := 1; c < lv.n-1; c++ {
								up := env.Read(at(lv, src, r-1, c))
								down := env.Read(at(lv, src, r+1, c))
								left := env.Read(at(lv, src, r, c-1))
								right := env.Read(at(lv, src, r, c+1))
								env.Compute(p.PointCycles)
								env.Write(at(lv, dst, r, c), (up+down+left+right)/4)
							}
						}
						bar.Wait(env)
						buf = dst
					}
					return buf
				}

				// restrict injects fine-grid values into the coarse grid.
				restrict := func(fine *smLevel, fbuf int, coarse *smLevel) {
					lo, hi := ownedRows(coarse.n)
					for r := lo; r < hi; r++ {
						for c := 0; c < coarse.n; c++ {
							fr, fc := r*2, c*2
							if fr >= fine.n {
								fr = fine.n - 1
							}
							if fc >= fine.n {
								fc = fine.n - 1
							}
							v := env.Read(at(fine, fbuf, fr, fc))
							env.Write(at(coarse, 0, r, c), v)
							env.Write(at(coarse, 1, r, c), v)
						}
					}
					bar.Wait(env)
				}

				// interpolate pushes coarse corrections back to the fine
				// grid (injection at coincident points).
				interpolate := func(coarse *smLevel, cbuf int, fine *smLevel, fbuf int) {
					lo, hi := ownedRows(coarse.n)
					for r := lo; r < hi; r++ {
						fr := r * 2
						if fr == 0 || fr >= fine.n-1 {
							continue
						}
						for c := 1; c < coarse.n-1; c++ {
							fc := c * 2
							if fc >= fine.n-1 {
								continue
							}
							v := env.Read(at(coarse, cbuf, r, c))
							env.Write(at(fine, fbuf, fr, fc), v)
						}
					}
					bar.Wait(env)
				}

				bufs := make([]int, p.Levels)
				for cyc := 0; cyc < p.VCycles; cyc++ {
					// Downstroke: relax then restrict at each level.
					for l := 0; l < p.Levels-1; l++ {
						bufs[l] = relax(levels[l], bufs[l])
						restrict(levels[l], bufs[l], levels[l+1])
						bufs[l+1] = 0
					}
					// Bottom: relax the coarsest grid.
					last := p.Levels - 1
					bufs[last] = relax(levels[last], bufs[last])
					// Upstroke: interpolate then relax.
					for l := p.Levels - 2; l >= 0; l-- {
						interpolate(levels[l+1], bufs[l+1], levels[l], bufs[l])
						bufs[l] = relax(levels[l], bufs[l])
					}
				}
			}
			return Instance{Thread: thread, Probes: map[string]mem.Addr{
				"center0": levels[0].rows[p.Size/2][0] + mem.Addr(p.Size/2),
				"center1": levels[0].rows[p.Size/2][1] + mem.Addr(p.Size/2),
			}}
		},
	}
}
