// Package apps contains the paper's workloads: the WORKER synthetic
// benchmark (Section 5) and scaled-down analogs of the six applications of
// Section 6 (TSP, AQ, SMGRID, EVOLVE, MP3D, WATER).
//
// Every application is a function from a machine to a per-thread program.
// Problem sizes are reduced so that cycle-level simulation of 64- and
// 256-node machines stays tractable; the reproduction targets are the
// paper's qualitative results — the ordering and rough ratios of the
// protocol spectrum — not the absolute speedups of the original problem
// sizes. Each thread also declares its instruction footprint through
// Env.SetCode, so instruction fetches contend with shared data in the
// combined direct-mapped cache exactly as they did on Alewife (the effect
// behind the TSP case study).
package apps

import (
	"fmt"

	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// Instance is an application set up on a particular machine.
type Instance struct {
	// Thread is the per-node program.
	Thread func(*proc.Env)
	// Probes names shared-memory locations holding results, so
	// experiments and tests can verify a run without knowing the
	// application's allocation layout.
	Probes map[string]mem.Addr
	// Regions names larger shared structures (every block base), so
	// experiments can reconfigure their coherence type block by block.
	Regions map[string][]mem.Addr
	// Observations, when non-nil, is the run's per-thread observation
	// log: programs whose verdict depends on the values individual reads
	// returned (the litmus tests of internal/litmus) record them here,
	// and the sweep runner captures the log into the cacheable result.
	// The paper's six applications and WORKER leave it nil.
	Observations *shm.ObsLog
}

// Program is an application: Setup allocates shared state on a machine and
// returns the instance every node runs.
type Program struct {
	// Name is the application's paper name.
	Name string
	// Setup builds shared state and returns the instance.
	Setup func(m *machine.Machine) Instance
}

// Run sets the program up on the machine and executes it.
func (p Program) Run(m *machine.Machine, limit sim.Cycle) (machine.Result, Instance, error) {
	inst := p.Setup(m)
	res, err := m.Run(inst.Thread, limit)
	return res, inst, err
}

// Fixed-point arithmetic: applications that the paper ran in floating
// point (AQ, SMGRID, MP3D, WATER) use Q32.32 fixed point here so that all
// shared-memory values are uint64 words. The memory system cannot tell the
// difference and the arithmetic is deterministic across platforms.
const fracBits = 32

// toFix converts a float to Q32.32.
func toFix(f float64) uint64 { return uint64(int64(f * (1 << fracBits))) }

// fromFix converts Q32.32 to float.
func fromFix(v uint64) float64 { return float64(int64(v)) / (1 << fracBits) }

// mulFix multiplies two Q32.32 numbers.
func mulFix(a, b uint64) uint64 {
	ia, ib := int64(a), int64(b)
	// Split to avoid overflow: (ahi + alo/2^32) * b.
	hi := (ia >> fracBits) * ib
	lo := (ia & ((1 << fracBits) - 1)) * (ib >> fracBits)
	lo2 := ((ia & ((1 << fracBits) - 1)) * (ib & ((1 << fracBits) - 1))) >> fracBits
	return uint64(hi + lo + lo2)
}

// Registry returns the paper's six applications at their default scaled
// sizes, in the order of Figure 4.
func Registry() []Program {
	return []Program{
		TSP(DefaultTSP()),
		AQ(DefaultAQ()),
		SMGrid(DefaultSMGrid()),
		Evolve(DefaultEvolve()),
		MP3D(DefaultMP3D()),
		Water(DefaultWater()),
	}
}

// ByName finds a registered application.
func ByName(name string) (Program, error) {
	for _, p := range Registry() {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("apps: unknown application %q", name)
}

// QuickRegistry returns reduced-size instances of the six applications for
// smoke tests and short benchmark runs. The sharing structure of each
// application is preserved; only the work shrinks.
func QuickRegistry() []Program {
	return []Program{
		TSP(TSPParams{Cities: 8, SpawnDepth: 3, Seed: 20261994, ExpandCycles: 120}),
		AQ(AQParams{Tolerance: 0.00005, MaxLevel: 7, SpawnLevel: 4, EvalCycles: 40}),
		SMGrid(SMGridParams{Size: 33, Levels: 2, VCycles: 1, Sweeps: 2, PointCycles: 20}),
		Evolve(EvolveParams{Dimensions: 10, TotalWalks: 256, StepCycles: 30, Seed: 90125}),
		MP3D(MP3DParams{Particles: 1024, CellsPerSide: 8, Steps: 2, MoveCycles: 60, Seed: 3141}),
		Water(WaterParams{Molecules: 32, Steps: 2, PairCycles: 400, Seed: 2718}),
	}
}
