package apps

import (
	"testing"

	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/sim"
)

// runWorker executes WORKER on a fresh machine and returns the run time.
func runWorker(t *testing.T, nodes, setSize, iters int, spec proto.Spec) (sim.Cycle, machine.Result) {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig(nodes, spec))
	prog := Worker(WorkerParams{SetSize: setSize, Iters: iters})
	res, _, err := prog.Run(m, 2_000_000_000)
	if err != nil {
		t.Fatalf("%s worker(%d): %v", spec.Name, setSize, err)
	}
	return res.Time, res
}

func TestWorkerCompletesAllProtocols(t *testing.T) {
	for _, spec := range proto.Spectrum() {
		t.Run(spec.Name, func(t *testing.T) {
			_, res := runWorker(t, 8, 4, 3, spec)
			if res.Messages == 0 {
				t.Fatal("no network traffic")
			}
		})
	}
}

func TestWorkerExactWorkerSets(t *testing.T) {
	// With set size k, every block's maximum simultaneous worker set is
	// exactly its k readers (the writer's exclusive copy never coexists
	// with the readers' copies).
	_, res := runWorker(t, 16, 8, 4, proto.FullMap())
	if got := res.WorkerSets.Count(8); got != 16*8 {
		t.Fatalf("worker-set histogram: bucket 8 = %d, want 128 (one per slot block)\n%s",
			got, res.WorkerSets)
	}
}

func TestWorkerInvalidationsPerWrite(t *testing.T) {
	// "Every write request causes a directory protocol to send exactly
	// one invalidation message to each reader." Full-map, 16 nodes,
	// k=4, 4 iterations: each of the 16 writers invalidates 4 readers
	// per iteration after the first read phase.
	_, res := runWorker(t, 16, 4, 4, proto.FullMap())
	invs := res.Counters.Get("home.hw_invalidations")
	// Write-phase invalidations: 16 blocks * 4 readers * 4 iters, plus
	// recall invalidations when readers pull the block from the writer
	// (one per block per iteration) and barrier traffic.
	min := uint64(16 * 4 * 4)
	if invs < min {
		t.Fatalf("hw invalidations = %d, want >= %d", invs, min)
	}
}

func TestWorkerProtocolOrdering(t *testing.T) {
	// The Figure 2 ordering at a worker-set size beyond all hardware
	// pointer counts: full-map fastest; more pointers no slower than
	// fewer; the software-only directory slowest by a wide margin.
	if testing.Short() {
		t.Skip("multi-protocol sweep")
	}
	times := map[string]sim.Cycle{}
	for _, spec := range []proto.Spec{
		proto.FullMap(), proto.LimitLESS(5), proto.LimitLESS(2),
		proto.OnePointer(proto.AckHW), proto.OnePointer(proto.AckSW),
		proto.SoftwareOnly(),
	} {
		tm, _ := runWorker(t, 16, 8, 6, spec)
		times[spec.Name] = tm
	}
	full := times["DirnHNBS-"]
	if times["DirnH5SNB"] < full {
		t.Fatalf("H5 (%d) beat full-map (%d)", times["DirnH5SNB"], full)
	}
	if times["DirnH2SNB"] < times["DirnH5SNB"] {
		t.Fatalf("H2 (%d) beat H5 (%d)", times["DirnH2SNB"], times["DirnH5SNB"])
	}
	if times["DirnH1SNB,ACK"] < times["DirnH1SNB"] {
		t.Fatalf("ACK variant (%d) beat hardware-ack variant (%d)",
			times["DirnH1SNB,ACK"], times["DirnH1SNB"])
	}
	h0 := times["DirnH0SNB,ACK"]
	if h0 <= times["DirnH5SNB"] {
		t.Fatalf("software-only (%d) not slower than H5 (%d)", h0, times["DirnH5SNB"])
	}
	if float64(h0)/float64(full) < 1.5 {
		t.Fatalf("software-only only %.2fx full-map; expected a wide margin",
			float64(h0)/float64(full))
	}
}

func TestWorkerSmallSetsNeverTrapOnH5(t *testing.T) {
	// Worker sets of 4 fit entirely within five hardware pointers (plus
	// the local bit), so Dir_nH_5S_NB must match full-map exactly: zero
	// traps.
	_, res := runWorker(t, 16, 4, 4, proto.LimitLESS(5))
	if res.Traps != 0 {
		t.Fatalf("H5 trapped %d times on size-4 worker sets", res.Traps)
	}
}

func TestWorkerDeterministic(t *testing.T) {
	a, _ := runWorker(t, 8, 4, 3, proto.LimitLESS(2))
	b, _ := runWorker(t, 8, 4, 3, proto.LimitLESS(2))
	if a != b {
		t.Fatalf("WORKER run times differ: %d vs %d", a, b)
	}
}
