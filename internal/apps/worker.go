package apps

import (
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
)

// WorkerParams configures the WORKER synthetic benchmark (paper Section
// 5): a shared-memory stress test whose data structure creates memory
// blocks with an exact worker-set size.
type WorkerParams struct {
	// SetSize is the worker-set size: the number of nodes that read each
	// block every iteration. It is capped at P-1 so the writer is always
	// distinct from the readers and every write invalidates exactly
	// SetSize copies.
	SetSize int
	// Iters is the number of read/barrier/write/barrier iterations.
	Iters int
	// SlotsPerNode is how many worker-set blocks each node owns (and
	// writes); more slots amortize the per-iteration barriers so the
	// measured behavior is the worker-set traffic itself. Zero selects
	// the default of 8.
	SlotsPerNode int
	// CICO adds check-in annotations: every reader relinquishes its
	// copy after the read phase, so the writer finds no pointers to
	// invalidate — the Check-In/Check-Out programming style of the
	// cooperative shared memory work the paper compares against.
	CICO bool
}

// Worker builds the benchmark. Block i is homed on and written by node i;
// its readers are the SetSize nodes following i in ring order. Every read
// misses (the previous write invalidated it) and every write sends one
// invalidation per reader, giving the completely deterministic access
// pattern the paper uses as a controlled experiment.
func Worker(p WorkerParams) Program {
	return Program{
		Name: "WORKER",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			k := p.SetSize
			if k > P-1 {
				k = P - 1
			}
			if k < 0 {
				k = 0
			}
			S := p.SlotsPerNode
			if S <= 0 {
				S = 8
			}
			// Stagger each node's slots within its segment so they do
			// not all alias the same direct-mapped cache set.
			slots := make([][]mem.Addr, P)
			for n := 0; n < P; n++ {
				m.Mem.AllocOn(mem.NodeID(n), (1+n%61)*mem.WordsPerBlock)
				slots[n] = make([]mem.Addr, S)
				for s := 0; s < S; s++ {
					slots[n][s] = m.Mem.AllocOn(mem.NodeID(n), mem.WordsPerBlock)
				}
			}
			// A fan-in-2 tree barrier keeps every synchronization word's
			// worker set within the hardware pointers, so the measured
			// worker sets are exactly the benchmark's.
			bar := shm.NewTreeBarrierArity(m.Mem, P, 2)
			thread := func(env *proc.Env) {
				id := int(env.ID())
				env.SetCode(proc.CodeSpace+3000*mem.WordsPerBlock, 8)
				// Initialization phase: each node writes its blocks.
				for s := 0; s < S; s++ {
					env.Write(slots[id][s], uint64(id))
				}
				bar.Wait(env)
				for it := 0; it < p.Iters; it++ {
					// Read phase: node j reads the slots whose reader
					// sets it belongs to (writers j-1..j-k).
					for s := 0; s < S; s++ {
						for d := 1; d <= k; d++ {
							w := ((id-d)%P + P) % P
							env.Read(slots[w][s])
							if p.CICO {
								env.CheckIn(slots[w][s])
							}
						}
					}
					bar.Wait(env)
					// Write phase: each node writes its own blocks,
					// invalidating their k readers.
					for s := 0; s < S; s++ {
						env.Write(slots[id][s], uint64(it))
					}
					bar.Wait(env)
				}
			}
			return Instance{Thread: thread, Probes: map[string]mem.Addr{"slot0": slots[0][0]}}
		},
	}
}
