package apps

import (
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/shm"
	"swex/internal/sim"
)

// EvolveParams configures the genome-evolution application (paper Section
// 6): hill-climbing traversal of a hypercube fitness landscape, searching
// for paths from initial conditions to local fitness maxima.
type EvolveParams struct {
	// Dimensions is the hypercube dimension (paper: 12 -> 4096 genomes).
	Dimensions int
	// TotalWalks is the machine-wide number of hill-climbs, divided
	// among the nodes (the problem size is independent of P).
	TotalWalks int
	// StepCycles models the fitness comparison work per neighbor.
	StepCycles sim.Cycle
	// Seed drives the deterministic fitness landscape and start points.
	Seed uint64
}

// DefaultEvolve keeps the paper's 12 dimensions.
func DefaultEvolve() EvolveParams {
	return EvolveParams{Dimensions: 12, TotalWalks: 2048, StepCycles: 40, Seed: 90125}
}

// evolveFitness is the deterministic fitness of a genome: a hash of its
// bits, giving a rugged landscape with many local maxima.
func evolveFitness(genome uint64, seed uint64) uint64 {
	x := genome*0x9E3779B97F4A7C15 + seed
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x & 0xFFFFFF
}

// Evolve builds the hypercube-traversal application. The fitness table is
// distributed block-by-block across the machine; most genomes are visited
// by one or two walks (small worker sets) while popular ridges and the
// global accumulators are shared by every node — producing the worker-set
// histogram of Figure 6, whose large sets "seriously challenge a
// software-extended system".
func Evolve(p EvolveParams) Program {
	return Program{
		Name: "EVOLVE",
		Setup: func(m *machine.Machine) Instance {
			P := m.Cfg.Nodes
			genomes := 1 << uint(p.Dimensions)
			bar := shm.NewTreeBarrier(m.Mem, P)
			// Global accumulators: maxima found and steps taken —
			// globally shared, frequently written.
			maxima := m.Mem.AllocOn(0, 1)
			steps := m.Mem.AllocOn(0, 1)

			// The fitness table, distributed round-robin by block.
			table := make([]mem.Addr, genomes)
			words := mem.WordsPerBlock
			for b := 0; b < genomes/words; b++ {
				base := m.Mem.AllocOn(mem.NodeID(b%P), words)
				for w := 0; w < words; w++ {
					table[b*words+w] = base + mem.Addr(w)
				}
			}
			// Per-genome visit counters, likewise distributed.
			visits := make([]mem.Addr, genomes)
			for b := 0; b < genomes/words; b++ {
				base := m.Mem.AllocOn(mem.NodeID((b+P/2)%P), words)
				for w := 0; w < words; w++ {
					visits[b*words+w] = base + mem.Addr(w)
				}
			}

			thread := func(env *proc.Env) {
				id := int(env.ID())
				env.SetCode(proc.CodeSpace+3400*mem.WordsPerBlock, 10)

				// Initialization: each node fills its share of the
				// fitness table.
				for g := id; g < genomes; g += P {
					env.Write(table[g], evolveFitness(uint64(g), p.Seed))
				}
				bar.Wait(env)

				rnd := sim.NewRand(p.Seed ^ uint64(id)*0x5851F42D4C957F2D)
				var localSteps, localMaxima uint64
				walks := p.TotalWalks / P
				if id < p.TotalWalks%P {
					walks++
				}
				for walk := 0; walk < walks; walk++ {
					g := uint64(rnd.Intn(genomes))
					fit := env.Read(table[g])
					for {
						env.FetchAdd(visits[g], 1)
						// Examine all neighbors; move to the best
						// strictly-better one.
						best, bestFit := g, fit
						for d := 0; d < p.Dimensions; d++ {
							ng := g ^ (1 << uint(d))
							nf := env.Read(table[ng])
							env.Compute(p.StepCycles)
							if nf > bestFit {
								best, bestFit = ng, nf
							}
						}
						localSteps++
						if best == g {
							localMaxima++ // local maximum
							break
						}
						g, fit = best, bestFit
					}
				}
				env.FetchAdd(steps, localSteps)
				env.FetchAdd(maxima, localMaxima)
				bar.Wait(env)
			}
			tableBlocks := make([]mem.Addr, 0, genomes/words)
			for g := 0; g < genomes; g += words {
				tableBlocks = append(tableBlocks, table[g])
			}
			return Instance{
				Thread: thread,
				Probes: map[string]mem.Addr{
					"maxima": maxima,
					"steps":  steps,
				},
				// The fitness table, for experiments that reconfigure
				// its coherence type block by block.
				Regions: map[string][]mem.Addr{"fitness-table": tableBlocks},
			}
		},
	}
}
