// Package mem defines the shared address space of the machine: word
// addresses, cache blocks, the home-node mapping that implements
// location-independent addressing, and the per-node backing DRAM.
//
// Alewife distributes 4 Mbytes of globally shared memory to each node; an
// address names an object independent of residence, and hardware
// translates it to a home node (paper Section 1, "location-independent
// addressing"). Here each node owns a fixed-size segment of the word
// address space and the home of an address is its segment number.
package mem

import "fmt"

// NodeID identifies a processing node. Nodes are numbered 0..P-1.
type NodeID int

// Addr is a word address in the globally shared space. The simulated word
// is 64 bits wide: one Addr names one uint64.
type Addr uint64

// WordsPerBlock is the number of words in a memory/cache block. Alewife
// uses 16-byte cache lines; with 4-byte Sparcle words that is four words
// per block, which we keep.
const WordsPerBlock = 4

// Block identifies an aligned memory block (Addr / WordsPerBlock).
type Block uint64

// BlockOf returns the block containing addr.
func BlockOf(a Addr) Block { return Block(a / WordsPerBlock) }

// Base returns the first word address of the block.
func (b Block) Base() Addr { return Addr(b) * WordsPerBlock }

// SegWords is the number of words in each node's memory segment:
// 4 Mbytes of 4-byte words in Alewife; we keep the 1 M-word segment.
const SegWords = 1 << 20

// HomeOf returns the node whose memory holds addr.
func HomeOf(a Addr) NodeID { return NodeID(a / SegWords) }

// HomeOfBlock returns the home node of a block.
func HomeOfBlock(b Block) NodeID { return HomeOf(b.Base()) }

// SegBase returns the first address of a node's segment.
func SegBase(n NodeID) Addr { return Addr(n) * SegWords }

// Memory is the machine's globally shared backing store plus a bump
// allocator per node segment. It holds word values only; all timing lives
// in the cache and protocol models.
//
// The store is sharded by home segment — one map per node, indexed by
// HomeOf — so the parallel engine's shards never share a map: at run
// time a block's words are touched only by its home node's protocol
// handlers (the directory serializes all access to a block through its
// home), and the home runs on exactly one shard. The sharding is free
// for the serial engine: HomeOf is a divide by a constant.
type Memory struct {
	nodes int
	data  []map[Addr]uint64 // per-home-segment word store
	brk   []Addr            // per-node allocation cursor, relative to segment base
}

// New creates the backing store for an n-node machine.
func New(n int) *Memory {
	if n <= 0 {
		panic(fmt.Sprintf("mem: machine with %d nodes", n))
	}
	data := make([]map[Addr]uint64, n)
	for i := range data {
		data[i] = make(map[Addr]uint64)
	}
	return &Memory{
		nodes: n,
		data:  data,
		brk:   make([]Addr, n),
	}
}

// Nodes reports the number of node segments.
func (m *Memory) Nodes() int { return m.nodes }

// Read returns the word at addr (zero if never written).
func (m *Memory) Read(a Addr) uint64 { return m.data[HomeOf(a)][a] }

// Write stores v at addr.
func (m *Memory) Write(a Addr, v uint64) { m.data[HomeOf(a)][a] = v }

// ReadBlock copies the block's words into a fresh slice.
func (m *Memory) ReadBlock(b Block) [WordsPerBlock]uint64 {
	var w [WordsPerBlock]uint64
	base := b.Base()
	seg := m.data[HomeOf(base)]
	for i := range w {
		w[i] = seg[base+Addr(i)]
	}
	return w
}

// WriteBlock stores a block's words.
func (m *Memory) WriteBlock(b Block, w [WordsPerBlock]uint64) {
	base := b.Base()
	seg := m.data[HomeOf(base)]
	for i, v := range w {
		seg[base+Addr(i)] = v
	}
}

// AllocOn reserves words contiguous words in node n's segment, aligned to
// a block boundary, and returns the base address. Block alignment keeps
// distinct allocations from false-sharing a block unless the caller asks
// for it, which the worker-set experiments rely on.
func (m *Memory) AllocOn(n NodeID, words int) Addr {
	if int(n) >= m.nodes || n < 0 {
		panic(fmt.Sprintf("mem: AllocOn(%d) on %d-node machine", n, m.nodes))
	}
	if words <= 0 {
		words = 1
	}
	// Round the cursor up to a block boundary.
	cur := m.brk[n]
	if r := cur % WordsPerBlock; r != 0 {
		cur += WordsPerBlock - r
	}
	if cur+Addr(words) > SegWords {
		panic(fmt.Sprintf("mem: node %d segment exhausted (%d words requested)", n, words))
	}
	m.brk[n] = cur + Addr(words)
	return SegBase(n) + cur
}

// AllocStriped reserves one block-aligned run of words on every node and
// returns the per-node base addresses. It is the layout primitive for data
// structures the applications distribute round-robin across homes.
func (m *Memory) AllocStriped(words int) []Addr {
	out := make([]Addr, m.nodes)
	for n := range out {
		out[n] = m.AllocOn(NodeID(n), words)
	}
	return out
}

// InUse reports how many words node n has allocated.
func (m *Memory) InUse(n NodeID) Addr { return m.brk[n] }
