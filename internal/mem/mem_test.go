package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockMapping(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(3) != 0 {
		t.Fatal("addresses 0..3 should share block 0")
	}
	if BlockOf(4) != 1 {
		t.Fatalf("BlockOf(4) = %d, want 1", BlockOf(4))
	}
	if Block(5).Base() != 20 {
		t.Fatalf("Block(5).Base() = %d, want 20", Block(5).Base())
	}
}

func TestHomeMapping(t *testing.T) {
	if HomeOf(0) != 0 {
		t.Fatal("address 0 should live on node 0")
	}
	if HomeOf(SegWords) != 1 {
		t.Fatalf("HomeOf(SegWords) = %d, want 1", HomeOf(SegWords))
	}
	if HomeOf(SegWords-1) != 0 {
		t.Fatal("last word of segment 0 should live on node 0")
	}
	if HomeOfBlock(BlockOf(SegBase(3))) != 3 {
		t.Fatal("block home disagrees with address home")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(4)
	a := m.AllocOn(2, 8)
	if m.Read(a) != 0 {
		t.Fatal("fresh memory should read zero")
	}
	m.Write(a, 42)
	if m.Read(a) != 42 {
		t.Fatalf("Read = %d, want 42", m.Read(a))
	}
}

func TestBlockReadWrite(t *testing.T) {
	m := New(1)
	a := m.AllocOn(0, WordsPerBlock)
	b := BlockOf(a)
	m.WriteBlock(b, [WordsPerBlock]uint64{1, 2, 3, 4})
	got := m.ReadBlock(b)
	for i, v := range []uint64{1, 2, 3, 4} {
		if got[i] != v {
			t.Fatalf("ReadBlock[%d] = %d, want %d", i, got[i], v)
		}
	}
	if m.Read(a+1) != 2 {
		t.Fatal("block write not visible through word read")
	}
}

func TestAllocOnPlacement(t *testing.T) {
	m := New(4)
	for n := NodeID(0); n < 4; n++ {
		a := m.AllocOn(n, 10)
		if HomeOf(a) != n {
			t.Fatalf("AllocOn(%d) returned address homed on %d", n, HomeOf(a))
		}
	}
}

func TestAllocBlockAligned(t *testing.T) {
	m := New(1)
	m.AllocOn(0, 1) // leaves cursor mid-block
	a := m.AllocOn(0, 4)
	if a%WordsPerBlock != 0 {
		t.Fatalf("allocation base %d not block aligned", a)
	}
}

func TestAllocDistinctBlocks(t *testing.T) {
	m := New(1)
	a := m.AllocOn(0, 1)
	b := m.AllocOn(0, 1)
	if BlockOf(a) == BlockOf(b) {
		t.Fatal("separate allocations share a block")
	}
}

func TestAllocStriped(t *testing.T) {
	m := New(8)
	addrs := m.AllocStriped(16)
	if len(addrs) != 8 {
		t.Fatalf("AllocStriped returned %d bases, want 8", len(addrs))
	}
	for n, a := range addrs {
		if HomeOf(a) != NodeID(n) {
			t.Fatalf("stripe %d homed on %d", n, HomeOf(a))
		}
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New(1)
	defer func() {
		if recover() == nil {
			t.Error("segment exhaustion did not panic")
		}
	}()
	m.AllocOn(0, SegWords+1)
}

func TestAllocBadNodePanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("AllocOn out-of-range node did not panic")
		}
	}()
	m.AllocOn(5, 1)
}

func TestNewZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestInUse(t *testing.T) {
	m := New(2)
	m.AllocOn(1, 7)
	if m.InUse(1) != 7 {
		t.Fatalf("InUse = %d, want 7", m.InUse(1))
	}
	if m.InUse(0) != 0 {
		t.Fatal("untouched node shows usage")
	}
}

// Property: allocations on the same node never overlap.
func TestAllocPropertyNoOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New(1)
		type span struct{ lo, hi Addr }
		var spans []span
		for _, s := range sizes {
			w := int(s%64) + 1
			a := m.AllocOn(0, w)
			spans = append(spans, span{a, a + Addr(w)})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every address maps to exactly one home and block bases are
// consistent with BlockOf.
func TestMappingPropertyConsistent(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		b := BlockOf(a)
		if b.Base() > a || a-b.Base() >= WordsPerBlock {
			return false
		}
		return HomeOf(a) == HomeOfBlock(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
