package swexd

import (
	"encoding/json"
	"io"
)

// StatusRecord is the machine-readable record `swexd status -json` emits,
// one JSON object per line (the NDJSON convention swexlint -json
// established): each line is one job of a sweep, carrying the sweep
// identifier so records from several sweeps concatenate without framing.
type StatusRecord struct {
	// Sweep is the sweep the job belongs to.
	Sweep string `json:"sweep"`
	// Index is the job's position in the submitted matrix.
	Index int `json:"index"`
	// Hash is the job's content hash (empty for admission rejects).
	Hash string `json:"hash,omitempty"`
	// Desc is the human-readable job description.
	Desc string `json:"desc"`
	// State is the job's current state.
	State JobState `json:"state"`
	// Worker identifies the worker holding or last holding the job.
	Worker string `json:"worker,omitempty"`
	// Retries counts how many times the job has been re-issued.
	Retries int `json:"retries,omitempty"`
	// Err carries the failure text for failed jobs.
	Err string `json:"err,omitempty"`
}

// WriteStatusJSON renders one sweep's status as newline-delimited
// StatusRecord objects in job-submission order.
func WriteStatusJSON(w io.Writer, st SweepStatus) error {
	enc := json.NewEncoder(w)
	for _, j := range st.Jobs {
		rec := StatusRecord{
			Sweep:   st.ID,
			Index:   j.Index,
			Hash:    j.Hash,
			Desc:    j.Desc,
			State:   j.State,
			Worker:  j.Worker,
			Retries: j.Retries,
			Err:     j.Err,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweepListJSON renders the sweep listing as newline-delimited
// SweepSummary objects, one sweep per line, in listing order.
func WriteSweepListJSON(w io.Writer, sweeps []SweepSummary) error {
	enc := json.NewEncoder(w)
	for _, s := range sweeps {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
