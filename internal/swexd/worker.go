package swexd

import (
	"context"
	"fmt"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"swex/internal/sweep"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's host:port address.
	Coordinator string
	// Name is the worker's self-reported name for the /workers listing.
	Name string
	// Slots is how many jobs the worker executes concurrently (<= 0
	// means 1).
	Slots int
	// Poll overrides the coordinator-suggested wait between empty lease
	// replies (0 = accept the suggestion).
	Poll time.Duration

	// onLease is the test hook called before executing each lease;
	// returning false abandons the lease and stops the slot — a
	// simulated mid-lease crash. onExecute is called once per actual
	// execution.
	onLease   func(sweep.Job) bool
	onExecute func(sweep.Job)
}

// Worker pulls job leases from a coordinator, executes them with
// sweep.Execute, heartbeats while running, and reports results.
type Worker struct {
	cfg WorkerConfig

	executions atomic.Int64
	completes  atomic.Int64
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	return &Worker{cfg: cfg}
}

// Executions reports how many simulations the worker has started.
func (w *Worker) Executions() int64 { return w.executions.Load() }

// Completes reports how many completions the coordinator accepted from
// this worker.
func (w *Worker) Completes() int64 { return w.completes.Load() }

// Run registers with the coordinator and serves leases until the context
// is cancelled or every slot stops. It returns nil on a clean
// cancellation.
func (w *Worker) Run(ctx context.Context) error {
	client, err := rpc.DialHTTPPath("tcp", w.cfg.Coordinator, RPCPath)
	if err != nil {
		return fmt.Errorf("swexd: dial coordinator %s: %w", w.cfg.Coordinator, err)
	}
	defer client.Close()
	// Closing the client unblocks any in-flight call with ErrShutdown, so
	// cancellation cannot hang behind a slow RPC.
	dialDone := make(chan struct{})
	defer close(dialDone)
	go func() {
		select {
		case <-ctx.Done():
			client.Close()
		case <-dialDone:
		}
	}()

	var reg RegisterReply
	if err := client.Call(rpcService+".Register", RegisterArgs{Name: w.cfg.Name}, &reg); err != nil {
		return fmt.Errorf("swexd: register: %w", err)
	}
	heartbeat := time.Duration(reg.HeartbeatMs) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	poll := w.cfg.Poll
	if poll <= 0 {
		poll = time.Duration(reg.PollMs) * time.Millisecond
	}
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}

	var wg sync.WaitGroup
	errs := make([]error, w.cfg.Slots)
	for s := 0; s < w.cfg.Slots; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.slotLoop(ctx, client, reg.WorkerID, heartbeat, poll)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && ctx.Err() == nil {
			return err
		}
	}
	return nil
}

// slotLoop is one lease-execute-complete loop.
func (w *Worker) slotLoop(ctx context.Context, client *rpc.Client, workerID string, heartbeat, poll time.Duration) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		var lease LeaseReply
		if err := client.Call(rpcService+".Lease", LeaseArgs{WorkerID: workerID}, &lease); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("swexd: lease: %w", err)
		}
		if !lease.Granted {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		if w.cfg.onLease != nil && !w.cfg.onLease(lease.Job) {
			return nil // simulated crash: abandon the lease, stop the slot
		}
		w.execute(ctx, client, workerID, lease, heartbeat)
	}
}

// execute runs one leased job under a heartbeat and reports the verdict.
func (w *Worker) execute(ctx context.Context, client *rpc.Client, workerID string, lease LeaseReply, heartbeat time.Duration) {
	// Heartbeat until the job finishes. The first renewal (sent
	// immediately) carries Running, confirming execution started.
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		running := true
		for {
			var rep RenewReply
			err := client.Call(rpcService+".Renew", RenewArgs{
				WorkerID: workerID, Hash: lease.Hash, Nonce: lease.Nonce, Running: running,
			}, &rep)
			running = false
			if err != nil || !rep.OK {
				return // lease lost; the completion will be rejected as stale
			}
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()

	w.executions.Add(1)
	if w.cfg.onExecute != nil {
		w.cfg.onExecute(lease.Job)
	}
	res, err := sweep.Execute(lease.Job, lease.DefaultLimit)
	close(stop)
	hb.Wait()

	args := CompleteArgs{WorkerID: workerID, Hash: lease.Hash, Nonce: lease.Nonce, Result: res}
	if err != nil {
		args.Result = sweep.Result{}
		args.Err = err.Error()
	}
	var rep CompleteReply
	if cerr := client.Call(rpcService+".Complete", args, &rep); cerr == nil && rep.Accepted {
		w.completes.Add(1)
	}
}
