package swexd

import (
	"errors"
	"fmt"
	"net/http"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"swex/internal/sim"
	"swex/internal/sweep"
)

// JobState names one job's position in the coordinator's state machine.
// States are strings so they serialize readably in the JSON front end.
type JobState string

// The job lifecycle. A job enters at StateQueued (or directly at
// StateCached when the store already holds its result, or StateFailed
// when its description cannot be canonicalized), is handed to a worker at
// StateLeased, confirmed executing at StateRunning by the first
// heartbeat, and terminates at StateDone or StateFailed. A lost lease or
// a failed attempt within the retry budget moves the job back to
// StateQueued with its retry count incremented.
const (
	// StateQueued marks a job waiting for a worker lease.
	StateQueued JobState = "queued"
	// StateLeased marks a job handed to a worker, not yet confirmed
	// running by a heartbeat.
	StateLeased JobState = "leased"
	// StateRunning marks a job a worker has confirmed executing.
	StateRunning JobState = "running"
	// StateCached marks a job whose result was served from the shared
	// store at admission, without any execution.
	StateCached JobState = "cached"
	// StateDone marks a job whose result a worker computed and the
	// coordinator recorded.
	StateDone JobState = "done"
	// StateFailed marks a job that exhausted its retry budget or could
	// not be canonicalized at admission.
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final: no further transitions.
func (s JobState) Terminal() bool {
	return s == StateCached || s == StateDone || s == StateFailed
}

// Config parameterizes a Coordinator.
type Config struct {
	// CacheDir, when non-empty, opens the shared content-addressed
	// sweep.Cache there: results persist across coordinator restarts, and
	// a matrix already simulated — by anyone — is served without
	// re-execution. Empty keeps results in memory only.
	CacheDir string
	// LeaseTerm is how long a worker holds a job before it must have
	// renewed by heartbeat; an expired lease is re-issued to the next
	// worker that asks (default 10s).
	LeaseTerm time.Duration
	// CycleBudget is the default per-job simulated-cycle limit workers
	// apply when Job.Limit is zero (0 = unbounded).
	CycleBudget sim.Cycle
	// JobRetries is how many worker-reported failures a job tolerates
	// before it is marked failed (lease expiries do not count: a lost
	// worker is not the job's fault and re-leases are unbounded).
	JobRetries int

	// now is the test clock hook (nil = time.Now).
	now func() time.Time
}

// Event is one per-job state transition in a sweep's history, streamed as
// a line of NDJSON by GET /sweeps/{id}/events.
type Event struct {
	// Seq numbers the event within its sweep, from 1, densely.
	Seq int64 `json:"seq"`
	// Index is the job's position in the submitted matrix.
	Index int `json:"index"`
	// Hash is the job's content hash (empty for jobs rejected at
	// admission, whose descriptions could not be canonicalized).
	Hash string `json:"hash,omitempty"`
	// State is the job's new state.
	State JobState `json:"state"`
	// Worker identifies the worker involved, when one is.
	Worker string `json:"worker,omitempty"`
	// Retries counts how many times the job has been re-issued.
	Retries int `json:"retries,omitempty"`
	// Err carries the failure text on failed (or requeued-after-failure)
	// transitions.
	Err string `json:"err,omitempty"`
}

// JobStatus is one job's current state in a SweepStatus snapshot.
type JobStatus struct {
	// Index is the job's position in the submitted matrix.
	Index int `json:"index"`
	// Hash is the job's content hash (empty for admission rejects).
	Hash string `json:"hash,omitempty"`
	// Desc is the human-readable job description.
	Desc string `json:"desc"`
	// State is the job's current state.
	State JobState `json:"state"`
	// Worker identifies the worker holding or last holding the job.
	Worker string `json:"worker,omitempty"`
	// Retries counts how many times the job has been re-issued.
	Retries int `json:"retries,omitempty"`
	// Err carries the failure text for failed jobs.
	Err string `json:"err,omitempty"`
}

// SweepSummary is the per-sweep line of the GET /sweeps listing.
type SweepSummary struct {
	// ID is the sweep's identifier.
	ID string `json:"id"`
	// Total is the number of submitted jobs.
	Total int `json:"total"`
	// Done reports whether every job has reached a terminal state.
	Done bool `json:"done"`
	// Counts tallies jobs by state name.
	Counts map[string]int `json:"counts"`
}

// SweepStatus is the full GET /sweeps/{id} snapshot.
type SweepStatus struct {
	// ID is the sweep's identifier.
	ID string `json:"id"`
	// Total is the number of submitted jobs.
	Total int `json:"total"`
	// Done reports whether every job has reached a terminal state.
	Done bool `json:"done"`
	// Counts tallies jobs by state name.
	Counts map[string]int `json:"counts"`
	// Jobs lists every job in submission order.
	Jobs []JobStatus `json:"jobs"`
}

// JobResult is one job's slot in a SweepResults vector.
type JobResult struct {
	// Index is the job's position in the submitted matrix.
	Index int `json:"index"`
	// Desc is the human-readable job description.
	Desc string `json:"desc"`
	// State is the job's state at snapshot time.
	State JobState `json:"state"`
	// Result holds the finished result for done and cached jobs.
	Result *sweep.Result `json:"result,omitempty"`
	// Err carries the failure text for failed jobs.
	Err string `json:"err,omitempty"`
}

// SweepResults is the GET /sweeps/{id}/results payload: the sweep's
// result vector, index-aligned with the submitted matrix — the merge rule
// that makes distributed output byte-identical to a serial run.
type SweepResults struct {
	// ID is the sweep's identifier.
	ID string `json:"id"`
	// Done reports whether every job has reached a terminal state; only
	// then is the result vector complete.
	Done bool `json:"done"`
	// Results holds one slot per submitted job, in submission order.
	Results []JobResult `json:"results"`
}

// WorkerInfo is one worker's line in the GET /workers listing.
type WorkerInfo struct {
	// ID is the coordinator-assigned worker identifier.
	ID string `json:"id"`
	// Name is the worker's self-reported name.
	Name string `json:"name"`
	// Active lists the content hashes of jobs the worker currently
	// leases, sorted.
	Active []string `json:"active,omitempty"`
	// Completed counts accepted job completions.
	Completed int64 `json:"completed"`
	// Failed counts worker-reported job failures.
	Failed int64 `json:"failed"`
	// LastSeen is the wall-clock time of the worker's last RPC, RFC 3339.
	LastSeen string `json:"lastSeen"`
}

// taskRef points one live task at a (sweep, job index) that awaits it.
type taskRef struct {
	sw    *sweepState
	index int
}

// task is one distinct job hash being executed: the unit of leasing.
// Several sweeps' jobs can reference one task; its completion fans out to
// all of them.
type task struct {
	hash     string
	key      string
	job      sweep.Job
	state    JobState // queued, leased, or running while live
	worker   string
	nonce    uint64 // current lease nonce; 0 = no valid lease
	deadline time.Time
	retries  int // total re-issues: expiries + retried failures
	failures int // worker-reported failures only
	refs     []taskRef
}

// jobRecord is one submitted job's state within a sweep.
type jobRecord struct {
	desc    string
	hash    string
	state   JobState
	worker  string
	retries int
	err     string
}

// sweepState is one submitted matrix and its event history.
type sweepState struct {
	id     string
	salt   string
	jobs   []jobRecord
	open   int // jobs not yet in a terminal state
	events []Event
	notify chan struct{} // closed and replaced on every event append
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        string
	name      string
	active    map[string]bool // leased job hashes
	completed int64
	failed    int64
	lastSeen  time.Time
}

// Coordinator is the distributed sweep service: it admits experiment
// matrices, leases their jobs to workers by content hash, collects
// results into the shared cache, and serves per-job state over HTTP. All
// methods are safe for concurrent use.
type Coordinator struct {
	cfg   Config
	cache *sweep.Cache
	mux   *http.ServeMux

	mu         sync.Mutex
	tasks      map[string]*task // live tasks by hash
	queue      []*task          // FIFO of queued tasks
	memo       map[string]sweep.Result
	sweeps     map[string]*sweepState
	order      []string // sweep IDs in submission order
	workers    map[string]*workerState
	counters   map[string]int64
	nextSweep  int
	nextWorker int
	nonces     uint64

	stop     chan struct{}
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator, opening the shared disk cache when
// Config.CacheDir is set, and starts its lease-expiry scanner.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTerm <= 0 {
		cfg.LeaseTerm = 10 * time.Second
	}
	c := &Coordinator{
		cfg:      cfg,
		tasks:    make(map[string]*task),
		memo:     make(map[string]sweep.Result),
		sweeps:   make(map[string]*sweepState),
		workers:  make(map[string]*workerState),
		counters: make(map[string]int64),
		stop:     make(chan struct{}),
	}
	if cfg.CacheDir != "" {
		cache, err := sweep.OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		c.cache = cache
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(rpcService, &RPC{c: c}); err != nil {
		if c.cache != nil {
			c.cache.Close()
		}
		return nil, fmt.Errorf("swexd: register rpc service: %w", err)
	}
	c.mux = newMux(c, srv)
	go c.scanLoop()
	return c, nil
}

// Close stops the lease-expiry scanner and releases the disk cache.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache == nil {
		return nil
	}
	err := c.cache.Close()
	c.cache = nil
	return err
}

// Handler returns the coordinator's HTTP handler: the JSON front end plus
// the workers' RPC endpoint at RPCPath. Serve it on any listener.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// now returns the coordinator's clock reading.
func (c *Coordinator) now() time.Time {
	if c.cfg.now != nil {
		return c.cfg.now()
	}
	return time.Now()
}

// scanLoop expires lost leases in the background until Close.
func (c *Coordinator) scanLoop() {
	every := c.cfg.LeaseTerm / 4
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(c.now())
			c.mu.Unlock()
		}
	}
}

// Submit admits one experiment matrix: every job is canonicalized with
// the salt, deduplicated against the store (cached), against live tasks
// (joined), or enqueued, and the sweep's identifier is returned. An
// uncanonicalizable job is marked failed at admission; the rest of the
// matrix proceeds.
func (c *Coordinator) Submit(jobs []sweep.Job, salt string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSweep++
	sw := &sweepState{
		id:     fmt.Sprintf("s%d", c.nextSweep),
		salt:   salt,
		notify: make(chan struct{}),
	}
	c.sweeps[sw.id] = sw
	c.order = append(c.order, sw.id)
	c.counters["sweeps_submitted"]++
	c.counters["jobs_submitted"] += int64(len(jobs))

	sw.jobs = make([]jobRecord, len(jobs))
	sw.open = len(jobs)
	for i, job := range jobs {
		sw.jobs[i].desc = job.String()
		key, err := job.Key(salt)
		if err != nil {
			c.setStateLocked(sw, i, StateFailed, "", 0, err.Error())
			continue
		}
		hash := sweep.HashKey(key)
		sw.jobs[i].hash = hash
		if _, ok := c.lookupLocked(key, hash); ok {
			c.counters["jobs_cached"]++
			c.setStateLocked(sw, i, StateCached, "", 0, "")
			continue
		}
		if t, ok := c.tasks[hash]; ok {
			t.refs = append(t.refs, taskRef{sw, i})
			c.setStateLocked(sw, i, t.state, t.worker, t.retries, "")
			continue
		}
		t := &task{hash: hash, key: key, job: job, state: StateQueued, refs: []taskRef{{sw, i}}}
		c.tasks[hash] = t
		c.queue = append(c.queue, t)
		c.setStateLocked(sw, i, StateQueued, "", 0, "")
	}
	return sw.id, nil
}

// lookupLocked serves a result from the memo or the disk cache (promoting
// disk hits into the memo so the results endpoint can serve them).
func (c *Coordinator) lookupLocked(key, hash string) (sweep.Result, bool) {
	if res, ok := c.memo[hash]; ok {
		return res, true
	}
	if c.cache == nil {
		return sweep.Result{}, false
	}
	res, ok := c.cache.Get(key)
	if ok {
		c.memo[hash] = res
	}
	return res, ok
}

// setStateLocked records a job's state transition in its sweep, appends
// the event, and wakes event streamers.
func (c *Coordinator) setStateLocked(sw *sweepState, index int, state JobState, worker string, retries int, errText string) {
	rec := &sw.jobs[index]
	wasTerminal := rec.state.Terminal()
	rec.state, rec.worker, rec.retries, rec.err = state, worker, retries, errText
	if state.Terminal() && !wasTerminal {
		sw.open--
	}
	sw.events = append(sw.events, Event{
		Seq:     int64(len(sw.events) + 1),
		Index:   index,
		Hash:    rec.hash,
		State:   state,
		Worker:  worker,
		Retries: retries,
		Err:     errText,
	})
	close(sw.notify)
	sw.notify = make(chan struct{})
}

// expireLocked re-queues every leased or running task whose deadline has
// passed: the lease nonce is invalidated (a straggler's late completion
// is discarded as stale), the retry count increments, and the task goes
// back on the queue for the next worker.
func (c *Coordinator) expireLocked(now time.Time) {
	var expired []*task
	for _, t := range c.tasks {
		if (t.state == StateLeased || t.state == StateRunning) && t.deadline.Before(now) {
			expired = append(expired, t)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].hash < expired[j].hash })
	for _, t := range expired {
		if w := c.workers[t.worker]; w != nil {
			delete(w.active, t.hash)
		}
		c.counters["leases_expired"]++
		t.state, t.worker, t.nonce = StateQueued, "", 0
		t.retries++
		c.queue = append(c.queue, t)
		for _, ref := range t.refs {
			c.setStateLocked(ref.sw, ref.index, StateQueued, "", t.retries, "")
		}
	}
}

// register admits a worker and assigns its identifier.
func (c *Coordinator) register(name string) *RegisterReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	id := fmt.Sprintf("w%d", c.nextWorker)
	c.workers[id] = &workerState{
		id:       id,
		name:     name,
		active:   make(map[string]bool),
		lastSeen: c.now(),
	}
	c.counters["workers_registered"]++
	heartbeat := c.cfg.LeaseTerm / 3
	if heartbeat < time.Millisecond {
		heartbeat = time.Millisecond
	}
	poll := c.cfg.LeaseTerm / 4
	if poll > 200*time.Millisecond {
		poll = 200 * time.Millisecond
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	return &RegisterReply{
		WorkerID:    id,
		HeartbeatMs: heartbeat.Milliseconds(),
		PollMs:      poll.Milliseconds(),
	}
}

// lease grants the oldest queued task to the worker, or reports none
// available.
func (c *Coordinator) lease(workerID string) (*LeaseReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return nil, fmt.Errorf("swexd: unknown worker %q (register first)", workerID)
	}
	now := c.now()
	w.lastSeen = now
	c.expireLocked(now)
	for len(c.queue) > 0 {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.state != StateQueued || c.tasks[t.hash] != t {
			continue // superseded queue entry
		}
		c.nonces++
		t.state, t.worker, t.nonce = StateLeased, workerID, c.nonces
		t.deadline = now.Add(c.cfg.LeaseTerm)
		w.active[t.hash] = true
		c.counters["leases_granted"]++
		for _, ref := range t.refs {
			c.setStateLocked(ref.sw, ref.index, StateLeased, workerID, t.retries, "")
		}
		return &LeaseReply{
			Granted:      true,
			Hash:         t.hash,
			Nonce:        t.nonce,
			Job:          t.job,
			DefaultLimit: c.cfg.CycleBudget,
		}, nil
	}
	return &LeaseReply{}, nil
}

// renew extends a live lease's deadline; the first renewal with Running
// set confirms the job executing. A renewal against a lost lease reports
// OK false, telling the worker its result will be discarded.
func (c *Coordinator) renew(workerID, hash string, nonce uint64, running bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if w := c.workers[workerID]; w != nil {
		w.lastSeen = now
	}
	t := c.tasks[hash]
	if t == nil || nonce == 0 || t.nonce != nonce || t.worker != workerID {
		return false
	}
	t.deadline = now.Add(c.cfg.LeaseTerm)
	c.counters["leases_renewed"]++
	if running && t.state == StateLeased {
		t.state = StateRunning
		for _, ref := range t.refs {
			c.setStateLocked(ref.sw, ref.index, StateRunning, workerID, t.retries, "")
		}
	}
	return true
}

// complete records a worker's verdict for a leased job. A completion
// whose lease nonce is no longer current is discarded as stale — the
// acceptance rule that makes results exactly-once in effect. A success is
// persisted to the shared store and fanned out to every referencing
// sweep; a failure consumes one of the job's retries and either re-queues
// or fails it.
func (c *Coordinator) complete(workerID, hash string, nonce uint64, res sweep.Result, errText string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w != nil {
		w.lastSeen = c.now()
	}
	t := c.tasks[hash]
	if t == nil || nonce == 0 || t.nonce != nonce || t.worker != workerID {
		c.counters["completes_stale"]++
		return false
	}
	if w != nil {
		delete(w.active, hash)
	}
	if errText == "" {
		c.memo[hash] = res
		if c.cache != nil {
			if err := c.cache.Put(t.key, res); err != nil {
				c.counters["cache_put_errors"]++
			}
		}
		c.counters["executions"]++
		if w != nil {
			w.completed++
		}
		delete(c.tasks, hash)
		for _, ref := range t.refs {
			c.setStateLocked(ref.sw, ref.index, StateDone, workerID, t.retries, "")
		}
		return true
	}
	if w != nil {
		w.failed++
	}
	c.counters["job_failures"]++
	t.failures++
	if t.failures > c.cfg.JobRetries {
		if c.cache != nil {
			if err := c.cache.PutFailure(t.key, errors.New(errText)); err != nil {
				c.counters["cache_put_errors"]++
			}
		}
		delete(c.tasks, hash)
		for _, ref := range t.refs {
			c.setStateLocked(ref.sw, ref.index, StateFailed, workerID, t.retries, errText)
		}
		return true
	}
	t.state, t.worker, t.nonce = StateQueued, "", 0
	t.retries++
	c.queue = append(c.queue, t)
	for _, ref := range t.refs {
		c.setStateLocked(ref.sw, ref.index, StateQueued, "", t.retries, errText)
	}
	return true
}

// summaryLocked snapshots one sweep's per-state tallies.
func summaryLocked(sw *sweepState) SweepSummary {
	s := SweepSummary{
		ID:     sw.id,
		Total:  len(sw.jobs),
		Done:   sw.open == 0,
		Counts: make(map[string]int),
	}
	for i := range sw.jobs {
		s.Counts[string(sw.jobs[i].state)]++
	}
	return s
}

// SweepList snapshots every sweep in submission order.
func (c *Coordinator) SweepList() []SweepSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SweepSummary, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, summaryLocked(c.sweeps[id]))
	}
	return out
}

// SweepStatus snapshots one sweep's full per-job state.
func (c *Coordinator) SweepStatus(id string) (SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	sum := summaryLocked(sw)
	st := SweepStatus{ID: sum.ID, Total: sum.Total, Done: sum.Done, Counts: sum.Counts}
	st.Jobs = make([]JobStatus, len(sw.jobs))
	for i := range sw.jobs {
		rec := &sw.jobs[i]
		st.Jobs[i] = JobStatus{
			Index:   i,
			Hash:    rec.hash,
			Desc:    rec.desc,
			State:   rec.state,
			Worker:  rec.worker,
			Retries: rec.retries,
			Err:     rec.err,
		}
	}
	return st, true
}

// SweepResults snapshots one sweep's result vector, index-aligned with
// the submitted matrix. The vector is complete only when Done.
func (c *Coordinator) SweepResults(id string) (SweepResults, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepResults{}, false
	}
	out := SweepResults{ID: sw.id, Done: sw.open == 0}
	out.Results = make([]JobResult, len(sw.jobs))
	for i := range sw.jobs {
		rec := &sw.jobs[i]
		jr := JobResult{Index: i, Desc: rec.desc, State: rec.state, Err: rec.err}
		if rec.state == StateDone || rec.state == StateCached {
			if res, ok := c.memo[rec.hash]; ok {
				r := res
				jr.Result = &r
			}
		}
		out.Results[i] = jr
	}
	return out, true
}

// EventsSince returns one sweep's events with Seq > seq, whether the
// sweep is done, and a channel that closes when new events arrive — the
// primitives the NDJSON streaming endpoint is built from.
func (c *Coordinator) EventsSince(id string, seq int64) (events []Event, done bool, notify <-chan struct{}, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, found := c.sweeps[id]
	if !found {
		return nil, false, nil, false
	}
	if n := int64(len(sw.events)); seq < n {
		events = append(events, sw.events[seq:]...)
	}
	return events, sw.open == 0, sw.notify, true
}

// Workers snapshots every registered worker, in registration order.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []string
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return len(ids[i]) < len(ids[j]) || (len(ids[i]) == len(ids[j]) && ids[i] < ids[j])
	})
	out := make([]WorkerInfo, 0, len(ids))
	for _, id := range ids {
		w := c.workers[id]
		info := WorkerInfo{
			ID:        w.id,
			Name:      w.name,
			Completed: w.completed,
			Failed:    w.failed,
			LastSeen:  w.lastSeen.Format(time.RFC3339Nano),
		}
		for h := range w.active {
			info.Active = append(info.Active, h)
		}
		sort.Strings(info.Active)
		out = append(out, info)
	}
	return out
}

// Vars snapshots the coordinator's expvar-style counters: leases granted,
// renewed, and expired, executions, cache admissions, stale completions,
// and their kin. Keys marshal sorted, so the JSON is deterministic for a
// given state.
func (c *Coordinator) Vars() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}
