// Package swexd is the distributed sweep service: it promotes the
// single-process experiment orchestrator of internal/sweep to a
// coordinator/worker architecture so one shared content-addressed result
// cache serves many clients, many worker machines, and arbitrarily large
// experiment matrices.
//
// # Architecture
//
// A Coordinator accepts experiment matrices over an HTTP/JSON front end
// (POST /sweeps), deduplicates their jobs by content hash against the
// sweep.Cache it owns, and hands the remainder out to workers over Go
// net/rpc as leases: a worker holds a job for a bounded lease term and
// must renew by heartbeat; a lease that expires (worker crash, network
// partition, stall) is re-issued to the next worker that asks. Workers
// execute jobs with sweep.Execute — the same single-execution primitive
// the in-process Runner uses — and return results over RPC; the
// coordinator persists them through the journaled cache and fans them out
// to every sweep (from any client) that references the same job hash.
// A warm cache hit therefore never re-simulates, across all clients.
//
// Per-job state is observable end to end: each job moves through
// queued -> leased -> running -> done (or cached at admission when the
// store already holds its result, or failed after the retry budget), with
// worker identity and retry counts, via GET /sweeps/{id}, a streaming
// NDJSON event feed at GET /sweeps/{id}/events, GET /workers, and
// expvar-style counters at GET /vars.
//
// # Determinism contract
//
// Distributed output is byte-identical to a serial run. The argument has
// three steps, mirroring internal/sweep's: (1) the simulator is
// deterministic, so a job's Result is a pure function of its canonical
// key, making results computed by any worker — or recalled from any
// cache — interchangeable; (2) the coordinator merges results by
// submission index, so which worker ran which job, in which order, with
// how many lease expiries in between, is invisible in a sweep's result
// vector; (3) re-execution after a lost lease is safe because acceptance
// is keyed by lease nonce (a stale completion is discarded, never
// double-recorded) and cache writes are idempotent by content hash.
// Together: exactly-once in effect, at-least-once in execution.
//
// The one intentional nondeterminism is wall-clock lease bookkeeping
// (terms, heartbeats, expiry scans); it can only change *where* a job
// runs, never what its result is.
package swexd
