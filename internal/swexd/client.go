package swexd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"swex/internal/sweep"
)

// Client drives a remote coordinator from an experiment program. It
// implements the swex.JobRunner contract: Run submits a matrix, waits for
// every job to reach a terminal state, and returns the results in
// submission order — so code written against the in-process Runner (the
// exhibit assemblers in particular) renders byte-identical output when
// pointed at a coordinator instead.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://host:7009".
	Base string
	// Salt is extra key material mixed into every job hash, matching the
	// in-process runner's Config.Salt.
	Salt string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Poll is the status poll interval used when the event stream is
	// unavailable (0 = 200ms).
	Poll time.Duration
}

// httpClient returns the effective transport.
func (cl *Client) httpClient() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// poll returns the effective poll interval.
func (cl *Client) poll() time.Duration {
	if cl.Poll > 0 {
		return cl.Poll
	}
	return 200 * time.Millisecond
}

// getJSON decodes one GET endpoint into out.
func (cl *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+path, nil)
	if err != nil {
		return fmt.Errorf("swexd: client: %w", err)
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("swexd: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("swexd: client: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("swexd: client: GET %s: %w", path, err)
	}
	return nil
}

// Submit posts one experiment matrix and returns its sweep ID.
func (cl *Client) Submit(ctx context.Context, jobs []sweep.Job) (string, error) {
	body, err := json.Marshal(SubmitRequest{Jobs: jobs, Salt: cl.Salt})
	if err != nil {
		return "", fmt.Errorf("swexd: client: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.Base+"/sweeps", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("swexd: client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("swexd: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("swexd: client: submit: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var rep SubmitReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return "", fmt.Errorf("swexd: client: submit: %w", err)
	}
	return rep.ID, nil
}

// Status fetches one sweep's full per-job snapshot.
func (cl *Client) Status(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := cl.getJSON(ctx, "/sweeps/"+id, &st)
	return st, err
}

// Results fetches one sweep's result vector.
func (cl *Client) Results(ctx context.Context, id string) (SweepResults, error) {
	var res SweepResults
	err := cl.getJSON(ctx, "/sweeps/"+id+"/results", &res)
	return res, err
}

// Workers fetches the coordinator's worker listing.
func (cl *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var ws []WorkerInfo
	err := cl.getJSON(ctx, "/workers", &ws)
	return ws, err
}

// Vars fetches the coordinator's counters.
func (cl *Client) Vars(ctx context.Context) (map[string]int64, error) {
	var vars map[string]int64
	err := cl.getJSON(ctx, "/vars", &vars)
	return vars, err
}

// SweepList fetches the coordinator's sweep listing.
func (cl *Client) SweepList(ctx context.Context) ([]SweepSummary, error) {
	var sweeps []SweepSummary
	err := cl.getJSON(ctx, "/sweeps", &sweeps)
	return sweeps, err
}

// Wait blocks until every job of the sweep is terminal. It follows the
// NDJSON event stream when it can (ending exactly when the last job
// lands) and degrades to status polling when the stream drops.
func (cl *Client) Wait(ctx context.Context, id string) error {
	cl.stream(ctx, id)
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			return err
		}
		if st.Done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cl.poll()):
		}
	}
}

// stream follows the event feed to EOF (the server closes it when the
// sweep completes). Any error just means Wait falls back to polling.
func (cl *Client) stream(ctx context.Context, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.Base+"/sweeps/"+id+"/events", nil)
	if err != nil {
		return
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
	}
}

// Run implements the swex.JobRunner contract: submit, wait, collect, and
// fail fast on the first failed job by submission order — the same
// deterministic error rule as the in-process Runner.
func (cl *Client) Run(ctx context.Context, jobs []sweep.Job) ([]sweep.Result, error) {
	id, err := cl.Submit(ctx, jobs)
	if err != nil {
		return nil, err
	}
	if err := cl.Wait(ctx, id); err != nil {
		return nil, err
	}
	res, err := cl.Results(ctx, id)
	if err != nil {
		return nil, err
	}
	if len(res.Results) != len(jobs) {
		return nil, fmt.Errorf("swexd: client: sweep %s returned %d results for %d jobs", id, len(res.Results), len(jobs))
	}
	out := make([]sweep.Result, len(jobs))
	for i, jr := range res.Results {
		if jr.State == StateFailed {
			return nil, fmt.Errorf("sweep: job %d (%s): %s", i, jr.Desc, jr.Err)
		}
		if jr.Result == nil {
			return nil, fmt.Errorf("swexd: client: sweep %s job %d (%s) terminal without result (state %s)", id, i, jr.Desc, jr.State)
		}
		out[i] = *jr.Result
	}
	return out, nil
}
