package swexd

import (
	"bytes"
	"testing"
)

func TestWriteStatusJSONGolden(t *testing.T) {
	st := SweepStatus{
		ID:    "sw-1",
		Total: 3,
		Done:  false,
		Jobs: []JobStatus{
			{Index: 0, Hash: "aaaa", Desc: "LITMUS(v1;t0:W0:1) on 4 nodes under FullMap", State: StateDone},
			{Index: 1, Hash: "bbbb", Desc: "matmul 64 on 16 nodes under Dir1H1SB", State: StateRunning, Worker: "w-2"},
			{Index: 2, Desc: "bad job", State: StateFailed, Worker: "w-1", Retries: 2, Err: "machine: deadlock"},
		},
	}
	var buf bytes.Buffer
	if err := WriteStatusJSON(&buf, st); err != nil {
		t.Fatal(err)
	}
	want := `{"sweep":"sw-1","index":0,"hash":"aaaa","desc":"LITMUS(v1;t0:W0:1) on 4 nodes under FullMap","state":"done"}
{"sweep":"sw-1","index":1,"hash":"bbbb","desc":"matmul 64 on 16 nodes under Dir1H1SB","state":"running","worker":"w-2"}
{"sweep":"sw-1","index":2,"desc":"bad job","state":"failed","worker":"w-1","retries":2,"err":"machine: deadlock"}
`
	if got := buf.String(); got != want {
		t.Errorf("status NDJSON mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteSweepListJSONGolden(t *testing.T) {
	sweeps := []SweepSummary{
		{ID: "sw-1", Total: 2, Done: true, Counts: map[string]int{"done": 2}},
		{ID: "sw-2", Total: 1, Done: false, Counts: map[string]int{"queued": 1}},
	}
	var buf bytes.Buffer
	if err := WriteSweepListJSON(&buf, sweeps); err != nil {
		t.Fatal(err)
	}
	want := `{"id":"sw-1","total":2,"done":true,"counts":{"done":2}}
{"id":"sw-2","total":1,"done":false,"counts":{"queued":1}}
`
	if got := buf.String(); got != want {
		t.Errorf("sweep list NDJSON mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteSweepListJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepListJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty listing produced output %q", buf.String())
	}
}
