package swexd

import (
	"swex/internal/sim"
	"swex/internal/sweep"
)

// RPCPath is the mux path the coordinator's net/rpc endpoint is mounted
// on; workers dial it with rpc.DialHTTPPath.
const RPCPath = "/rpc"

// rpcService is the registered net/rpc service name.
const rpcService = "Swexd"

// RPC is the coordinator's worker-facing net/rpc service. Workers call
// Register once, then loop Lease / Renew / Complete. All methods follow
// net/rpc's (args, reply) convention.
type RPC struct {
	c *Coordinator
}

// RegisterArgs carries a worker's registration.
type RegisterArgs struct {
	// Name is the worker's self-reported name (host, pid — anything
	// useful for the /workers listing).
	Name string
}

// RegisterReply carries the coordinator's registration answer.
type RegisterReply struct {
	// WorkerID is the coordinator-assigned identity the worker presents
	// on every subsequent call.
	WorkerID string
	// HeartbeatMs is how often (milliseconds) the worker must Renew a
	// held lease to keep it.
	HeartbeatMs int64
	// PollMs is how long (milliseconds) the worker should wait before
	// re-asking after an empty Lease reply.
	PollMs int64
}

// Register admits a worker and hands it its identity and timing
// parameters.
func (r *RPC) Register(args RegisterArgs, reply *RegisterReply) error {
	*reply = *r.c.register(args.Name)
	return nil
}

// LeaseArgs asks for one job lease.
type LeaseArgs struct {
	// WorkerID is the caller's registered identity.
	WorkerID string
}

// LeaseReply carries one granted lease, or Granted false when the queue
// is empty.
type LeaseReply struct {
	// Granted reports whether a job was leased.
	Granted bool
	// Hash is the leased job's content hash, echoed on Renew and
	// Complete.
	Hash string
	// Nonce is the lease's acceptance token: a Complete carrying a stale
	// Nonce (the lease expired and was re-issued) is discarded.
	Nonce uint64
	// Job is the leased job itself.
	Job sweep.Job
	// DefaultLimit is the coordinator's per-job simulated-cycle budget,
	// applied when Job.Limit is zero.
	DefaultLimit sim.Cycle
}

// Lease hands the oldest queued job to the calling worker.
func (r *RPC) Lease(args LeaseArgs, reply *LeaseReply) error {
	rep, err := r.c.lease(args.WorkerID)
	if err != nil {
		return err
	}
	*reply = *rep
	return nil
}

// RenewArgs is a lease heartbeat.
type RenewArgs struct {
	// WorkerID is the caller's registered identity.
	WorkerID string
	// Hash is the held job's content hash.
	Hash string
	// Nonce is the held lease's token.
	Nonce uint64
	// Running marks the job as actually executing (the first renewal a
	// worker sends, immediately after starting the simulation).
	Running bool
}

// RenewReply answers a heartbeat.
type RenewReply struct {
	// OK is false when the lease is no longer held (expired and
	// re-issued); the worker should abandon the job — its completion
	// would be discarded as stale anyway.
	OK bool
}

// Renew extends a held lease's deadline.
func (r *RPC) Renew(args RenewArgs, reply *RenewReply) error {
	reply.OK = r.c.renew(args.WorkerID, args.Hash, args.Nonce, args.Running)
	return nil
}

// CompleteArgs reports one finished execution.
type CompleteArgs struct {
	// WorkerID is the caller's registered identity.
	WorkerID string
	// Hash is the completed job's content hash.
	Hash string
	// Nonce is the lease token the job was executed under.
	Nonce uint64
	// Result is the simulation result, valid when Err is empty.
	Result sweep.Result
	// Err is the failure text when the execution failed (panics arrive
	// here with their stacks).
	Err string
}

// CompleteReply answers a completion report.
type CompleteReply struct {
	// Accepted is false when the completion was discarded as stale.
	Accepted bool
}

// Complete records a worker's execution verdict.
func (r *RPC) Complete(args CompleteArgs, reply *CompleteReply) error {
	reply.Accepted = r.c.complete(args.WorkerID, args.Hash, args.Nonce, args.Result, args.Err)
	return nil
}
