package swexd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/rpc"

	"swex/internal/sweep"
)

// maxSubmitBytes bounds a POST /sweeps body; the full exhibit matrix
// serializes to well under a megabyte.
const maxSubmitBytes = 32 << 20

// SubmitRequest is the POST /sweeps body: one experiment matrix.
type SubmitRequest struct {
	// Jobs is the matrix, in the order results should be merged.
	Jobs []sweep.Job `json:"jobs"`
	// Salt is extra key material mixed into every job hash, for isolating
	// experimental branches that share the coordinator's cache.
	Salt string `json:"salt,omitempty"`
}

// SubmitReply is the POST /sweeps answer.
type SubmitReply struct {
	// ID identifies the admitted sweep in every other endpoint.
	ID string `json:"id"`
	// Jobs echoes the number of admitted jobs.
	Jobs int `json:"jobs"`
}

// newMux builds the coordinator's HTTP front end and mounts the workers'
// RPC endpoint.
func newMux(c *Coordinator, srv *rpc.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle(RPCPath, srv)
	mux.HandleFunc("POST /sweeps", c.handleSubmit)
	mux.HandleFunc("GET /sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.SweepList())
	})
	mux.HandleFunc("GET /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.SweepStatus(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such sweep", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /sweeps/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		res, ok := c.SweepResults(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such sweep", http.StatusNotFound)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("GET /sweeps/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Workers())
	})
	mux.HandleFunc("GET /vars", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Vars())
	})
	return mux
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

// handleSubmit admits one experiment matrix.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad submit body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "empty job matrix", http.StatusBadRequest)
		return
	}
	id, err := c.Submit(req.Jobs, req.Salt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, SubmitReply{ID: id, Jobs: len(req.Jobs)})
}

// handleEvents streams a sweep's per-job state transitions as NDJSON: the
// full history replays first, then new events flush as they happen, and
// the stream ends when every job is terminal (or the client goes away).
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var seq int64
	for {
		events, done, notify, ok := c.EventsSince(id, seq)
		if !ok {
			if seq == 0 {
				http.Error(w, "no such sweep", http.StatusNotFound)
			}
			return
		}
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
			seq = ev.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-c.stop:
			return
		}
	}
}
