package swexd

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/sweep"
	"swex/internal/trace"
)

// testMatrix returns n distinct, fast WORKER jobs.
func testMatrix(n int) []sweep.Job {
	specs := proto.Spectrum()
	jobs := make([]sweep.Job, n)
	for i := range jobs {
		jobs[i] = sweep.WorkerJob(1+i%3, 1+i/3, machine.Config{
			Nodes: 4,
			Spec:  specs[i%len(specs)],
		})
	}
	return jobs
}

// hashOf computes a job's content hash the way the coordinator does.
func hashOf(t *testing.T, job sweep.Job, salt string) string {
	t.Helper()
	key, err := job.Key(salt)
	if err != nil {
		t.Fatalf("job key: %v", err)
	}
	return sweep.HashKey(key)
}

// fakeClock is a mutex-protected manual clock for Config.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// mustCoordinator builds a coordinator that the test closes.
func mustCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestLeaseExpiryAndStaleCompletion drives the lease state machine with
// an injected clock: an unrenewed lease expires and is re-issued to
// another worker, and the original worker's late completion is discarded
// as stale rather than double-recorded.
func TestLeaseExpiryAndStaleCompletion(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := mustCoordinator(t, Config{LeaseTerm: time.Minute, now: clock.Now})

	jobs := testMatrix(2)
	id, err := c.Submit(jobs, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	w1 := c.register("one").WorkerID
	w2 := c.register("two").WorkerID

	l1, err := c.lease(w1)
	if err != nil || !l1.Granted {
		t.Fatalf("lease(w1) = %+v, %v; want a grant", l1, err)
	}
	if !c.renew(w1, l1.Hash, l1.Nonce, true) {
		t.Fatal("renew of a live lease must succeed")
	}

	// Past the renewed deadline the lease is forfeit; draining the queue
	// from w2 must re-issue w1's job under a fresh nonce.
	clock.Advance(2 * time.Minute)
	var leases []*LeaseReply
	var reissued *LeaseReply
	for {
		l, err := c.lease(w2)
		if err != nil {
			t.Fatalf("lease(w2): %v", err)
		}
		if !l.Granted {
			break
		}
		leases = append(leases, l)
		if l.Hash == l1.Hash {
			reissued = l
		}
	}
	if reissued == nil {
		t.Fatal("expired lease was not re-issued")
	}
	if reissued.Nonce == l1.Nonce {
		t.Fatal("re-issued lease must carry a fresh nonce")
	}

	// w1 comes back from the dead: its completion is stale.
	if c.complete(w1, l1.Hash, l1.Nonce, sweep.Result{}, "") {
		t.Fatal("stale completion must be rejected")
	}
	if c.renew(w1, l1.Hash, l1.Nonce, false) {
		t.Fatal("stale renewal must be rejected")
	}
	vars := c.Vars()
	if vars["leases_expired"] == 0 || vars["completes_stale"] != 1 {
		t.Fatalf("counters: %v; want leases_expired > 0, completes_stale = 1", vars)
	}

	// w2 finishes everything; the job w1 lost lands exactly once.
	for _, l := range leases {
		if !c.complete(w2, l.Hash, l.Nonce, sweep.Result{}, "") {
			t.Fatalf("current completion of %s must be accepted", l.Hash[:16])
		}
	}
	st, ok := c.SweepStatus(id)
	if !ok || !st.Done {
		t.Fatalf("sweep not done after all completions: %+v", st)
	}
	for _, j := range st.Jobs {
		if j.State != StateDone {
			t.Fatalf("job %d state = %s; want done", j.Index, j.State)
		}
	}
	if got := c.Vars()["executions"]; got != 2 {
		t.Fatalf("executions = %d; want 2 (one per distinct job, stale discarded)", got)
	}
}

// TestSubmitAdmission covers the three admission paths: an
// uncanonicalizable job fails immediately, duplicate jobs in one matrix
// share a task, and a completed hash is served as cached to later sweeps.
func TestSubmitAdmission(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := mustCoordinator(t, Config{LeaseTerm: time.Minute, now: clock.Now})

	bad := sweep.WorkerJob(1, 1, machine.Config{Nodes: 4, Spec: proto.FullMap()})
	bad.Config.Trace = trace.NewCollector()
	good := testMatrix(1)[0]
	id, err := c.Submit([]sweep.Job{bad, good, good}, "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, _ := c.SweepStatus(id)
	if st.Jobs[0].State != StateFailed || st.Jobs[0].Err == "" {
		t.Fatalf("invalid job: %+v; want failed with error", st.Jobs[0])
	}
	if st.Jobs[1].State != StateQueued || st.Jobs[2].State != StateQueued {
		t.Fatalf("duplicate jobs: %+v; want both queued", st.Jobs[1:])
	}

	w := c.register("w").WorkerID
	l, err := c.lease(w)
	if err != nil || !l.Granted {
		t.Fatalf("lease: %+v, %v", l, err)
	}
	if l2, _ := c.lease(w); l2.Granted {
		t.Fatalf("duplicate jobs produced two leases (second: %s)", l2.Hash)
	}
	c.complete(w, l.Hash, l.Nonce, sweep.Result{Time: 42}, "")
	st, _ = c.SweepStatus(id)
	if !st.Done || st.Jobs[1].State != StateDone || st.Jobs[2].State != StateDone {
		t.Fatalf("one completion must finish both duplicates: %+v", st)
	}

	// Resubmission is served from the memo without queueing.
	id2, _ := c.Submit([]sweep.Job{good}, "")
	st2, _ := c.SweepStatus(id2)
	if !st2.Done || st2.Jobs[0].State != StateCached {
		t.Fatalf("warm resubmit: %+v; want cached and done", st2)
	}
	res, _ := c.SweepResults(id2)
	if res.Results[0].Result == nil || res.Results[0].Result.Time != 42 {
		t.Fatalf("cached result not served: %+v", res.Results[0])
	}
}

// TestRetryBudget exhausts a job's failure budget: the first failure
// re-queues it with the error visible, the second marks it failed, and
// the failure is journaled in the shared cache for post-mortems.
func TestRetryBudget(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := mustCoordinator(t, Config{LeaseTerm: time.Minute, JobRetries: 1, CacheDir: dir, now: clock.Now})

	jobs := testMatrix(1)
	id, _ := c.Submit(jobs, "")
	w := c.register("w").WorkerID

	l, _ := c.lease(w)
	if !c.complete(w, l.Hash, l.Nonce, sweep.Result{}, "boom one") {
		t.Fatal("failure report must be accepted")
	}
	st, _ := c.SweepStatus(id)
	if st.Jobs[0].State != StateQueued || st.Jobs[0].Retries != 1 || st.Jobs[0].Err != "boom one" {
		t.Fatalf("after first failure: %+v; want requeued with retries=1", st.Jobs[0])
	}

	l, _ = c.lease(w)
	c.complete(w, l.Hash, l.Nonce, sweep.Result{}, "boom two")
	st, _ = c.SweepStatus(id)
	if !st.Done || st.Jobs[0].State != StateFailed || st.Jobs[0].Err != "boom two" {
		t.Fatalf("after budget exhaustion: %+v; want failed", st.Jobs[0])
	}
	if got := c.Vars()["job_failures"]; got != 2 {
		t.Fatalf("job_failures = %d; want 2", got)
	}

	// The failure reached the shared journal.
	c.Close()
	cache, err := sweep.OpenCache(dir)
	if err != nil {
		t.Fatalf("reopen cache: %v", err)
	}
	defer cache.Close()
	cst := cache.Status()
	if cst.Failed != 1 || !strings.Contains(cst.Failures[0].Err, "boom two") {
		t.Fatalf("journaled failures: %+v; want the final error", cst)
	}
}

// workerHarness runs one Worker against an address and reports when its
// Run returns.
func workerHarness(ctx context.Context, w *Worker) chan error {
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return done
}

// TestWorkerLossMidLease is the crash-recovery regression: a worker is
// lost while holding a lease, the coordinator re-issues the job after the
// term, the sweep completes, and every job executed exactly once — the
// victim's completed work is not redone and its abandoned job is not
// lost.
func TestWorkerLossMidLease(t *testing.T) {
	c := mustCoordinator(t, Config{LeaseTerm: 300 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	addr := srv.Listener.Addr().String()

	jobs := testMatrix(6)
	client := &Client{Base: srv.URL, Poll: 20 * time.Millisecond}
	id, err := client.Submit(context.Background(), jobs)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var mu sync.Mutex
	execs := map[string]int{}
	record := func(j sweep.Job) {
		h := hashOf(t, j, "")
		mu.Lock()
		execs[h]++
		mu.Unlock()
	}

	// The victim executes its first lease, then dies holding its second.
	var leases atomic.Int64
	victim := NewWorker(WorkerConfig{
		Coordinator: addr,
		Name:        "victim",
		Poll:        10 * time.Millisecond,
		onLease:     func(sweep.Job) bool { return leases.Add(1) == 1 },
		onExecute:   record,
	})
	if err := <-workerHarness(context.Background(), victim); err != nil {
		t.Fatalf("victim run: %v", err)
	}
	if victim.Executions() != 1 {
		t.Fatalf("victim executed %d jobs; want exactly 1 before dying", victim.Executions())
	}

	// A healthy worker finishes the sweep, including the abandoned job.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rescue := NewWorker(WorkerConfig{
		Coordinator: addr,
		Name:        "rescue",
		Poll:        10 * time.Millisecond,
		onExecute:   record,
	})
	rescueDone := workerHarness(ctx, rescue)

	waitCtx, waitCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer waitCancel()
	if err := client.Wait(waitCtx, id); err != nil {
		t.Fatalf("wait: %v", err)
	}
	cancel()
	if err := <-rescueDone; err != nil {
		t.Fatalf("rescue run: %v", err)
	}

	st, _ := c.SweepStatus(id)
	for _, j := range st.Jobs {
		if j.State != StateDone {
			t.Fatalf("job %d state = %s; want done", j.Index, j.State)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(execs) != len(jobs) {
		t.Fatalf("executed %d distinct jobs; want %d", len(execs), len(jobs))
	}
	for h, n := range execs {
		if n != 1 {
			t.Fatalf("job %s executed %d times; want exactly once", h[:16], n)
		}
	}
	vars := c.Vars()
	if vars["leases_expired"] == 0 {
		t.Fatalf("counters: %v; want at least one expired lease", vars)
	}
	if vars["executions"] != int64(len(jobs)) {
		t.Fatalf("executions = %d; want %d", vars["executions"], len(jobs))
	}
}

// TestHTTPEndpoints exercises the JSON front end end to end: submit,
// status, the NDJSON event stream (replay to terminal states), the worker
// listing, counters, and the error paths.
func TestHTTPEndpoints(t *testing.T) {
	c := mustCoordinator(t, Config{LeaseTerm: 2 * time.Second})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Error paths first: bad body, empty matrix, unknown sweep.
	resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader("not json"))
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %v %v; want 400", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(`{"jobs":[]}`))
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty matrix: %v %v; want 400", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/sweeps/nope")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: %v %v; want 404", resp.Status, err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{
		Coordinator: srv.Listener.Addr().String(),
		Name:        "http-test",
		Poll:        10 * time.Millisecond,
	})
	done := workerHarness(ctx, w)

	jobs := testMatrix(3)
	jobs = append(jobs, jobs[0]) // a duplicate, to see dedup in the counts
	client := &Client{Base: srv.URL, Poll: 20 * time.Millisecond}
	id, err := client.Submit(context.Background(), jobs)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := client.Wait(context.Background(), id); err != nil {
		t.Fatalf("wait: %v", err)
	}

	// The event stream replays the full history and terminates.
	resp, err = http.Get(srv.URL + "/sweeps/" + id + "/events")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %v %v", resp.Status, err)
	}
	defer resp.Body.Close()
	last := map[int]JobState{}
	var seq int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Seq != seq+1 {
			t.Fatalf("event seq %d after %d; want dense ordering", ev.Seq, seq)
		}
		seq = ev.Seq
		last[ev.Index] = ev.State
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("event stream: %v", err)
	}
	if len(last) != len(jobs) {
		t.Fatalf("events covered %d jobs; want %d", len(last), len(jobs))
	}
	for i, s := range last {
		if !s.Terminal() {
			t.Fatalf("job %d last event state %s; want terminal", i, s)
		}
	}

	sweeps, err := client.SweepList(context.Background())
	if err != nil || len(sweeps) != 1 || !sweeps[0].Done {
		t.Fatalf("sweep list: %+v, %v; want one done sweep", sweeps, err)
	}
	if sweeps[0].Counts[string(StateDone)] != len(jobs) {
		t.Fatalf("counts: %v; want %d done", sweeps[0].Counts, len(jobs))
	}
	workers, err := client.Workers(context.Background())
	if err != nil || len(workers) != 1 || workers[0].Name != "http-test" {
		t.Fatalf("workers: %+v, %v", workers, err)
	}
	if workers[0].Completed != 3 {
		t.Fatalf("worker completed %d; want 3 (the duplicate dedups)", workers[0].Completed)
	}
	vars, err := client.Vars(context.Background())
	if err != nil || vars["executions"] != 3 {
		t.Fatalf("vars: %v, %v; want executions = 3", vars, err)
	}

	cancel()
	<-done
}

// TestClientRunMatchesLocalRunner is the determinism contract at the API
// boundary: Client.Run through a coordinator returns exactly what the
// in-process Runner returns for the same matrix, and a warm re-run
// executes nothing.
func TestClientRunMatchesLocalRunner(t *testing.T) {
	jobs := testMatrix(5)
	jobs = append(jobs, jobs[2]) // duplicates must fan out identically

	local := sweep.MustNewRunner(sweep.Config{Workers: 2})
	defer local.Close()
	want, err := local.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	c := mustCoordinator(t, Config{LeaseTerm: 2 * time.Second})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewWorker(WorkerConfig{
		Coordinator: srv.Listener.Addr().String(),
		Slots:       2,
		Poll:        10 * time.Millisecond,
	})
	done := workerHarness(ctx, w)

	client := &Client{Base: srv.URL, Poll: 20 * time.Millisecond}
	got, err := client.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed results differ from local:\n got %+v\nwant %+v", got, want)
	}

	// Warm re-run: zero additional executions, identical results.
	before := c.Vars()["executions"]
	again, err := client.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("warm results differ")
	}
	if after := c.Vars()["executions"]; after != before {
		t.Fatalf("warm run executed %d simulations; want 0", after-before)
	}

	cancel()
	<-done
}

// TestWarmCrossProcessResubmit restarts the coordinator over the same
// cache directory: the new instance, with no workers at all, serves the
// whole matrix from the journaled store.
func TestWarmCrossProcessResubmit(t *testing.T) {
	dir := t.TempDir()
	jobs := testMatrix(4)

	c1, err := NewCoordinator(Config{LeaseTerm: 2 * time.Second, CacheDir: dir})
	if err != nil {
		t.Fatalf("coordinator 1: %v", err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorker(WorkerConfig{
		Coordinator: srv1.Listener.Addr().String(),
		Poll:        10 * time.Millisecond,
	})
	done := workerHarness(ctx, w)
	client1 := &Client{Base: srv1.URL, Poll: 20 * time.Millisecond}
	want, err := client1.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cancel()
	<-done
	srv1.Close()
	if err := c1.Close(); err != nil {
		t.Fatalf("close coordinator 1: %v", err)
	}

	c2 := mustCoordinator(t, Config{LeaseTerm: 2 * time.Second, CacheDir: dir})
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	client2 := &Client{Base: srv2.URL, Poll: 20 * time.Millisecond}
	got, err := client2.Run(context.Background(), jobs) // no workers attached
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cross-process warm results differ")
	}
	st, _ := c2.SweepStatus("s1")
	for _, j := range st.Jobs {
		if j.State != StateCached {
			t.Fatalf("job %d state = %s; want cached (no worker ran)", j.Index, j.State)
		}
	}
	if got := c2.Vars()["executions"]; got != 0 {
		t.Fatalf("executions = %d; want 0", got)
	}
}
