package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: "value" column starts at the same offset in all rows.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRowsPad(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if tb.Rows() != 1 {
		t.Fatal("row not added")
	}
	if tb.Cell(0, 2) != "" {
		t.Fatal("missing cells should be empty")
	}
	tb.AddRow("1", "2", "3", "4") // extra dropped
	if tb.Cell(1, 2) != "3" {
		t.Fatal("extra cells should be dropped, not shifted")
	}
}

func TestFigureSeries(t *testing.T) {
	f := NewFigure("Fig", "x", "ratio")
	a := f.Line("A")
	a.Add(1, 1.0)
	a.Add(2, 1.5)
	b := f.Line("B")
	b.Add(1, 2.0)
	if f.Line("A") != a {
		t.Fatal("Line should return the existing series")
	}
	out := f.String()
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "2.000") {
		t.Fatalf("missing data points:\n%s", out)
	}
	if !strings.Contains(out, "ratio") {
		t.Fatal("missing y label")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" {
		t.Fatalf("trimFloat(4) = %q", trimFloat(4))
	}
	if trimFloat(2.5) != "2.5" {
		t.Fatalf("trimFloat(2.5) = %q", trimFloat(2.5))
	}
}
