// Package report renders experiment results as aligned text tables and
// labeled series, in the spirit of the paper's tables and figure data.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Series is one labeled curve of (x, y) points — a figure line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Line adds (or retrieves) a named series.
func (f *Figure) Line(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as one table: x in the first column, one
// column per series.
func (f *Figure) String() string {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s (%s)", f.Title, f.YLabel), headers...)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.3f", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
