package mc

import (
	"bytes"
	"fmt"

	"swex/internal/sim"
)

// collectingTracer accumulates protocol trace lines during counterexample
// replay. At zero latency every event fires at cycle zero, so the cycle is
// omitted from the rendering.
type collectingTracer struct {
	events []string
}

func (t *collectingTracer) Event(cycle sim.Cycle, kind, detail string) {
	t.events = append(t.events, fmt.Sprintf("%s %s", kind, detail))
}

// Explain replays a violation's trace on a fresh world with a tracer
// attached and renders a numbered narrative: each choice — scheduling
// steps annotated with the event they fired — interleaved with the
// protocol messages and traps it provoked. The replay is deterministic, so
// the narrative describes exactly the execution the checker found.
func Explain(cfg Config, v *Violation) (string, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return "", err
	}
	tr := &collectingTracer{}
	w.fabric.Trace = tr
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "counterexample (%s): %s violated\n", cfg.Spec.Name, v.Invariant)
	for i, c := range v.Trace {
		desc := c.String()
		if c.Step {
			if p := w.fabric.PendingDescriptions(); len(p) > 0 {
				desc = "step: " + p[0]
			}
		}
		tr.events = tr.events[:0]
		w.apply(c)
		fmt.Fprintf(&buf, "%3d. %s\n", i+1, desc)
		for _, e := range tr.events {
			fmt.Fprintf(&buf, "       %s\n", e)
		}
	}
	fmt.Fprintf(&buf, "  => %s\n", v.Detail)
	return buf.String(), nil
}
