package mc

import (
	"fmt"

	"swex/internal/cache"
	"swex/internal/mem"
	"swex/internal/memtier"
	"swex/internal/mesh"
	"swex/internal/proto"
	"swex/internal/sim"
)

// world is one concrete machine under exploration: the real simulator
// stack (engine, mesh, memory, fabric) plus the checker's operation
// bookkeeping. Worlds are built constantly (one per explored transition,
// by replay) and must therefore construct deterministically and cheaply.
type world struct {
	cfg    Config
	engine *sim.Engine
	fabric *proto.Fabric
	// acts is the resolved action alphabet (Config.alphabet()).
	acts []Action
	// blocks are the tracked blocks, block i homed on node i mod Nodes.
	blocks []mem.Block
	// addrs[i] is the base word address of blocks[i].
	addrs []mem.Addr
	// blockIdx maps a tracked block back to its index (POR event scoping).
	blockIdx map[mem.Block]int
	// injected counts operations presented so far; completed counts the
	// ones whose Done callback fired. Both are part of the logical state
	// (they bound the remaining alphabet and feed the quiescence
	// invariant), so fingerprint folds them in.
	injected  int
	completed int
}

// newWorld assembles a fresh machine for the configuration. Zero-latency
// mesh timing plus an all-zero proto.Timing keep simulated time frozen at
// cycle zero, so state fingerprints are independent of history.
func newWorld(cfg Config) (*world, error) {
	engine := sim.NewEngine()
	net := mesh.New(engine, mesh.ZeroLatency(cfg.Nodes))
	memory := mem.New(cfg.Nodes)
	var soft proto.Software
	if cfg.Spec.UsesSoftware() {
		soft = proto.NewNopSoftware()
	}
	cacheCfg := proto.CacheConfig{
		Cache:         cache.Config{Lines: 64},
		PerfectIfetch: true,
	}
	f, err := proto.NewFabric(engine, net, memory, cfg.Spec, proto.Timing{},
		proto.NewImmediateTraps(engine, cfg.Nodes), soft, cacheCfg)
	if err != nil {
		return nil, err
	}
	f.MigratoryDetect = cfg.MigratoryDetect
	f.BatchReads = cfg.BatchReads
	f.Tier = memtier.New(engine, cfg.Nodes, cfg.MemTier)
	if cfg.Fault != nil {
		f.Fault = cfg.Fault()
	}
	w := &world{cfg: cfg, engine: engine, fabric: f,
		acts: cfg.alphabet(), blockIdx: make(map[mem.Block]int)}
	for i := 0; i < cfg.Blocks; i++ {
		home := mem.NodeID(i % cfg.Nodes)
		// Pad the segment so tracked block i lands in cache set i. Every
		// segment base is ≡ 0 mod the set count, so without padding every
		// node's first allocation — and therefore all tracked blocks of a
		// Blocks ≤ Nodes run — would collide in set 0 of the direct-mapped
		// cache and displace each other. Distinct sets make cross-block
		// displacement impossible, which the POR independence relation
		// (two ops on different blocks commute) depends on: the only
		// evictions are the alphabet's explicit ones.
		for int(memory.InUse(home)) < i*mem.WordsPerBlock {
			memory.AllocOn(home, mem.WordsPerBlock)
		}
		a := memory.AllocOn(home, mem.WordsPerBlock)
		w.addrs = append(w.addrs, a)
		w.blocks = append(w.blocks, mem.BlockOf(a))
		w.blockIdx[mem.BlockOf(a)] = i
	}
	for i, ov := range cfg.Overrides {
		if ov.Name == "" {
			continue
		}
		if err := f.Home(mem.HomeOfBlock(w.blocks[i])).Configure(w.blocks[i], ov); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// choices enumerates the outgoing edges of the current state in a fixed
// canonical order: the engine step first (when anything is pending), then
// enabled injections by (node, block, action).
func (w *world) choices() []Choice {
	var out []Choice
	if w.engine.Pending() > 0 {
		out = append(out, Choice{Step: true})
	}
	if w.injected >= w.cfg.MaxOps {
		return out
	}
	for n := 0; n < w.cfg.Nodes; n++ {
		id := mem.NodeID(n)
		for bi := range w.blocks {
			for _, a := range w.acts {
				if w.enabled(id, bi, a) {
					out = append(out, Choice{Op: Op{Node: id, Block: bi, Act: a}})
				}
			}
		}
	}
	return out
}

// enabled reports whether injecting the action now is meaningful. Actions
// that would be pure no-ops (reading a resident block, evicting an absent
// one) are pruned: they cannot change the state, so exploring them only
// duplicates edges the visited set would fold anyway.
func (w *world) enabled(id mem.NodeID, bi int, a Action) bool {
	cc := w.fabric.Cache(id)
	b := w.blocks[bi]
	line, ok := cc.HasBlock(b)
	resident := ok && line.State != cache.Invalid
	switch a {
	case ActRead:
		return !resident
	case ActWrite:
		return true
	case ActEvict:
		return resident
	case ActCheckIn:
		return resident && !cc.HasTxn(b)
	case ActCheckOut:
		return !resident || line.State != cache.Exclusive
	case ActWatch:
		// One parked watcher per (node, block) bounds the watcher state;
		// a resident copy whose watched word has already changed would
		// complete synchronously without touching protocol state, so it
		// is pruned like a read hit.
		if len(cc.ParkedWatchers(b)) > 0 {
			return false
		}
		return !resident || line.Words[0] == 0
	default:
		panic(fmt.Sprintf("mc: unknown action %d", int(a)))
	}
}

// apply executes one choice. Injections present the operation to the cache
// controller exactly as a processor would; the controller may complete it
// synchronously (a hit) or leave events pending (a miss).
func (w *world) apply(c Choice) {
	if c.Step {
		if !w.engine.Step() {
			panic("mc: step applied with empty event queue")
		}
		return
	}
	w.injected++
	cc := w.fabric.Cache(c.Op.Node)
	a := w.addrs[c.Op.Block]
	switch c.Op.Act {
	case ActRead:
		cc.Access(a, proto.Op{Done: func(uint64) { w.completed++ }})
	case ActWrite:
		// Distinctive per-node value keeps the data domain finite while
		// still distinguishing which writer's store landed.
		cc.Access(a, proto.Op{Write: true, Value: uint64(c.Op.Node) + 1,
			Done: func(uint64) { w.completed++ }})
	case ActEvict:
		cc.Evict(w.blocks[c.Op.Block])
		w.completed++
	case ActCheckIn:
		cc.CheckIn(a, func() { w.completed++ })
	case ActCheckOut:
		cc.CheckOut(a, func() { w.completed++ })
	case ActWatch:
		// The consumer side of the producer–consumer pair: wait for the
		// block's first word to change from its initial zero. Completes
		// (counting toward the quiescence ledger) only when a producer's
		// distinctive value becomes visible; until then the watcher is
		// parked and accounted by parkedWatchers.
		cc.Watch(a, 0, func(uint64) { w.completed++ })
	default:
		panic(fmt.Sprintf("mc: unknown action %d", int(c.Op.Act)))
	}
}

// parkedWatchers counts watchers currently parked anywhere in the
// machine. A parked watcher is an injected-but-incomplete operation that
// is legitimately allowed to outlive quiescence (its wakeup depends on a
// future producer), so the quiescence ledger nets it out.
func (w *world) parkedWatchers() int {
	total := 0
	for n := 0; n < w.cfg.Nodes; n++ {
		cc := w.fabric.Cache(mem.NodeID(n))
		for _, b := range w.blocks {
			total += len(cc.ParkedWatchers(b))
		}
	}
	return total
}

// fingerprint is the canonical state key: the fabric snapshot plus the
// operation counters (which bound the remaining alphabet, so machines that
// look identical but have different budgets left must not merge).
func (w *world) fingerprint() []byte {
	snap := w.fabric.Snapshot(w.blocks)
	return append(snap, fmt.Sprintf("|ops=%d-%d", w.injected, w.completed)...)
}

// invariantViolation evaluates every invariant against the current state,
// returning the failed invariant's name and a description, or "", "".
func (w *world) invariantViolation() (string, string) {
	for bi, b := range w.blocks {
		if d := w.copiesViolation(b); d != "" {
			return "single-writer", d
		}
		if d := w.readersViolation(b); d != "" {
			return "identical-readers", d
		}
		if d := w.fabric.AgreementViolation(b); d != "" {
			// Name any consumer the inconsistency strands: a counterexample
			// that loses an invalidation under the watch alphabet should
			// say which node's watcher never hears about it.
			return "agreement", d + w.watcherNote(bi)
		}
	}
	if w.engine.Pending() == 0 {
		parked := w.parkedWatchers()
		if w.completed+parked != w.injected {
			return "quiescence", fmt.Sprintf("event queue drained with %d of %d operations incomplete (%d watchers parked)",
				w.injected-w.completed, w.injected, parked)
		}
		if d := w.fabric.QuiescenceViolation(w.blocks); d != "" {
			return "quiescence", d
		}
		if inv, d := w.lostWakeupViolation(); d != "" {
			return inv, d
		}
	}
	return "", ""
}

// lostWakeupViolation checks, at quiescence, that every parked watcher is
// parked for a reason: the block's coherent value must still equal the
// value the watcher is waiting to see change. A watcher parked on a stale
// value means some producer's store committed without the park/re-arm
// machinery re-reading it — the consumer would spin forever on a real
// machine.
func (w *world) lostWakeupViolation() (string, string) {
	for n := 0; n < w.cfg.Nodes; n++ {
		id := mem.NodeID(n)
		cc := w.fabric.Cache(id)
		for bi, b := range w.blocks {
			for _, wi := range cc.ParkedWatchers(b) {
				if cur := w.coherentWord(bi, wi.Addr); cur != wi.Old {
					return "lost-wakeup", fmt.Sprintf(
						"node %d's watcher on block %d (old=%d) is still parked but the coherent value is %d — its wakeup was lost",
						id, b, wi.Old, cur)
				}
			}
		}
	}
	return "", ""
}

// watcherNote describes the watchers parked on tracked block bi, for
// attachment to another invariant's detail ("" when none are parked).
func (w *world) watcherNote(bi int) string {
	b := w.blocks[bi]
	note := ""
	for n := 0; n < w.cfg.Nodes; n++ {
		id := mem.NodeID(n)
		for _, wi := range w.fabric.Cache(id).ParkedWatchers(b) {
			note += fmt.Sprintf("; node %d's watcher on block %d (old=%d) is still parked",
				id, b, wi.Old)
		}
	}
	return note
}

// coherentWord resolves the current coherent value of the word at addr in
// tracked block bi: an Exclusive copy's word if one exists (it is the
// only writable copy), home memory otherwise. Shared copies never diverge
// from memory outside a transient the identical-readers invariant already
// guards.
func (w *world) coherentWord(bi int, addr mem.Addr) uint64 {
	b := w.blocks[bi]
	off := int(addr - b.Base())
	for n := 0; n < w.cfg.Nodes; n++ {
		l, ok := w.fabric.Cache(mem.NodeID(n)).HasBlock(b)
		if ok && l.State == cache.Exclusive {
			return l.Words[off]
		}
	}
	return w.fabric.Mem.ReadBlock(b)[off]
}

// copiesViolation checks single-writer for one block: an Exclusive copy
// must be the only copy anywhere.
func (w *world) copiesViolation(b mem.Block) string {
	var exclusiveAt, copies []mem.NodeID
	for n := 0; n < w.cfg.Nodes; n++ {
		id := mem.NodeID(n)
		l, ok := w.fabric.Cache(id).HasBlock(b)
		if !ok || l.State == cache.Invalid {
			continue
		}
		copies = append(copies, id)
		if l.State == cache.Exclusive {
			exclusiveAt = append(exclusiveAt, id)
		}
	}
	if len(exclusiveAt) > 1 {
		return fmt.Sprintf("block %d exclusive at nodes %v", b, exclusiveAt)
	}
	if len(exclusiveAt) == 1 && len(copies) > 1 {
		return fmt.Sprintf("block %d exclusive at node %d but cached at %v",
			b, exclusiveAt[0], copies)
	}
	return ""
}

// readersViolation checks identical-readers for one block: all Shared
// copies must hold the same words.
func (w *world) readersViolation(b mem.Block) string {
	var first *cache.Line
	var firstAt mem.NodeID
	for n := 0; n < w.cfg.Nodes; n++ {
		id := mem.NodeID(n)
		l, ok := w.fabric.Cache(id).HasBlock(b)
		if !ok || l.State != cache.Shared {
			continue
		}
		if first == nil {
			l := l
			first, firstAt = &l, id
			continue
		}
		if l.Words != first.Words {
			return fmt.Sprintf("block %d shared copies diverge: node %d has %v, node %d has %v",
				b, firstAt, first.Words, id, l.Words)
		}
	}
	return ""
}
