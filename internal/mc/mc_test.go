package mc

import (
	"strings"
	"testing"

	"swex/internal/proto"
)

// smoke is the bounded configuration wired into `make check`: 2 nodes, 1
// block, 3 operations. Small enough to exhaust in milliseconds per
// protocol, deep enough to cover fills, upgrades, invalidation rounds,
// write-backs, busy retries, and software trap chains.
func smoke(spec proto.Spec) Config {
	return Config{Spec: spec, Nodes: 2, Blocks: 1, MaxOps: 3}
}

// TestSpectrumSmoke exhausts the smoke configuration for every protocol in
// the paper's spectrum and checks the reachable-state counts against
// goldens. The goldens pin the exploration itself: a protocol change that
// adds or removes reachable states shows up here even when no invariant
// breaks, and nondeterminism anywhere in the stack would make the counts
// flap. With two nodes no directory overflows (local bit plus one pointer
// suffice), so every hardware-extended protocol collapses to the same
// transition system and only the software-only directory — where every
// read traps — differs.
func TestSpectrumSmoke(t *testing.T) {
	golden := map[string]Result{
		"DirnH0SNB,ACK":  {States: 4639, Transitions: 7501, MaxDepth: 21, Quiescent: 97},
		"DirnH1SNB,ACK":  {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnH1SNB,LACK": {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnH1SNB":      {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnH2SNB":      {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnH3SNB":      {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnH4SNB":      {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnH5SNB":      {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
		"DirnHNBS-":      {States: 3353, Transitions: 5615, MaxDepth: 18, Quiescent: 69},
	}
	for _, spec := range proto.Spectrum() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Check(smoke(spec))
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(smoke(spec), res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatalf("state space not exhausted at %d states", res.States)
			}
			want, ok := golden[spec.Name]
			if !ok {
				t.Fatalf("no golden for %s (got %d states, %d transitions, depth %d, %d quiescent)",
					spec.Name, res.States, res.Transitions, res.MaxDepth, res.Quiescent)
			}
			if res.States != want.States || res.Transitions != want.Transitions ||
				res.MaxDepth != want.MaxDepth || res.Quiescent != want.Quiescent {
				t.Fatalf("reachable-state counts moved: got %d states, %d transitions, depth %d, %d quiescent; want %d, %d, %d, %d",
					res.States, res.Transitions, res.MaxDepth, res.Quiescent,
					want.States, want.Transitions, want.MaxDepth, want.Quiescent)
			}
		})
	}
}

// TestDir1SWSmoke covers the cooperative-shared-memory variant, which is
// not part of Spectrum().
func TestDir1SWSmoke(t *testing.T) {
	res, err := Check(smoke(proto.Dir1SW()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("invariant violated: %s", res.Violation)
	}
	if res.States != 3353 {
		t.Fatalf("got %d states, want 3353", res.States)
	}
}

// TestEnhancementsSmoke re-exhausts the smoke configuration with the
// Section 7 enhancements switched on: the adaptive paths (migratory
// Exclusive grants, batched read drains) must uphold the same invariants.
func TestEnhancementsSmoke(t *testing.T) {
	for _, spec := range []proto.Spec{proto.SoftwareOnly(), proto.LimitLESS(2), proto.FullMap()} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := smoke(spec)
			cfg.MigratoryDetect = true
			cfg.BatchReads = true
			res, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(cfg, res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatalf("state space not exhausted at %d states", res.States)
			}
		})
	}
}

// TestBFSAndDFSAgree checks exploration-order independence: breadth-first
// and depth-first must visit exactly the same reachable set. A difference
// means the state fingerprint is leaking history (see soundness_test.go
// for the finer-grained probe).
func TestBFSAndDFSAgree(t *testing.T) {
	bfs, err := Check(smoke(proto.SoftwareOnly()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smoke(proto.SoftwareOnly())
	cfg.DFS = true
	dfs, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.States != dfs.States || bfs.Transitions != dfs.Transitions {
		t.Fatalf("BFS found %d states / %d transitions, DFS %d / %d",
			bfs.States, bfs.Transitions, dfs.States, dfs.Transitions)
	}
}

// TestSeededDroppedInvCaught seeds the classic lost-invalidation bug — the
// first INV message is silently dropped — and checks that the checker
// finds it, that BFS delivers the shortest counterexample, and that the
// replay renders the drop.
func TestSeededDroppedInvCaught(t *testing.T) {
	cfg := smoke(proto.FullMap())
	cfg.Fault = func() func(proto.Msg) bool {
		dropped := false
		return func(m proto.Msg) bool {
			if m.Kind == proto.MsgINV && !dropped {
				dropped = true
				return true
			}
			return false
		}
	}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("dropped invalidation not caught")
	}
	if res.Violation.Invariant != "agreement" {
		t.Fatalf("caught as %q, want agreement", res.Violation.Invariant)
	}
	// Shortest possible: fill a reader (read + 3 steps), inject the
	// conflicting write, deliver it, fire the handler that drops the INV.
	if got := len(res.Violation.Trace); got != 7 {
		t.Fatalf("counterexample has %d choices, want the 7-step shortest", got)
	}
	text, err := Explain(cfg, res.Violation)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "drop INV") {
		t.Fatalf("replay does not show the dropped invalidation:\n%s", text)
	}
}

// TestSeededDroppedAckCaught drops the first acknowledgment instead: the
// home then waits forever for an ack count that cannot reach zero, which
// the quiescence invariant reports once the event queue drains.
func TestSeededDroppedAckCaught(t *testing.T) {
	cfg := smoke(proto.FullMap())
	cfg.Fault = func() func(proto.Msg) bool {
		dropped := false
		return func(m proto.Msg) bool {
			if m.Kind == proto.MsgACK && !dropped {
				dropped = true
				return true
			}
			return false
		}
	}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("dropped acknowledgment not caught")
	}
	if res.Violation.Invariant != "quiescence" {
		t.Fatalf("caught as %q, want quiescence", res.Violation.Invariant)
	}
}

// TestConfigValidation exercises Check's configuration rejection.
func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Spec: proto.FullMap(), Nodes: 1, Blocks: 1, MaxOps: 1},
		{Spec: proto.FullMap(), Nodes: 9, Blocks: 1, MaxOps: 1},
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 0, MaxOps: 1},
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 5, MaxOps: 1},
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 0},
		{Spec: proto.Spec{Name: "bad", FullMap: true, SoftwareOnly: true}, Nodes: 2, Blocks: 1, MaxOps: 1},
	}
	for _, cfg := range cases {
		if _, err := Check(cfg); err == nil {
			t.Errorf("Check(%+v) accepted an invalid configuration", cfg)
		}
	}
}

// TestMaxStatesBounds checks the frontier bound: a tiny cap must stop
// exploration and be reported.
func TestMaxStatesBounds(t *testing.T) {
	cfg := smoke(proto.FullMap())
	cfg.MaxStates = 10
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bounded {
		t.Fatal("bound not reported")
	}
	if res.States > 10 {
		t.Fatalf("visited %d states past the bound of 10", res.States)
	}
}

// TestTwoBlocks exercises a two-block alphabet (blocks homed on different
// nodes) at a shallower depth, covering cross-block interleavings and
// per-block home controllers.
func TestTwoBlocks(t *testing.T) {
	cfg := Config{Spec: proto.LimitLESS(2), Nodes: 2, Blocks: 2, MaxOps: 2}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		text, _ := Explain(cfg, res.Violation)
		t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
	}
	if res.Bounded {
		t.Fatal("state space not exhausted")
	}
}
