package mc

import (
	"sort"
)

// This file implements sleep-set partial-order reduction over the
// replay-based fork engine.
//
// The full enumeration explores every interleaving of enabled choices,
// but many interleavings are equivalent: two injections that touch
// different blocks — and cannot serialize against each other through a
// software trap on a shared home node — commute, so exploring "a then b"
// and "b then a" reaches the same states twice. Sleep sets prune the
// second order: when a state's choices are expanded in canonical order,
// each successor inherits a *sleep set* containing the injections whose
// alternate orderings an earlier sibling already covers, filtered down to
// the ones that commute with the choice just taken. A slept injection is
// not expanded again from that successor.
//
// # Independence
//
// Injections a and b are independent when
//
//	block(a) != block(b)  AND
//	(home(block(a)) != home(block(b))  OR  neither block's spec uses software)
//
// Different blocks never share cache or directory state (worlds allocate
// tracked blocks into distinct cache sets, so cross-block displacement is
// impossible), and at zero latency the only cross-block coupling left is
// the software trap scheduler: handlers for two blocks homed on the same
// node share that node's trap servicing, and a directory-overflow trap
// for one block can reorder against the other's. Hardware-only specs
// never trap, so same-home hardware blocks stay independent.
//
// Firing an engine event is treated like an operation on the block its
// inspection tag names (proto.Fabric.NextEventBlock); an event whose tag
// identifies no block conservatively clears the sleep set.
//
// # Soundness
//
// The per-block invariants (single-writer, identical-readers, agreement)
// are insensitive to the orderings sleep sets prune: a pruned
// interleaving permutes independent transitions of an explored one, and
// every intermediate state it visits projects, block by block, onto a
// state the explored interleaving visits. Quiescent states are preserved
// exactly — once the event queue drains, the transient event orderings
// that distinguish the permuted paths are gone — so the reduced run
// reaches the identical set of quiescent fingerprints and the identical
// verdict. TestPOREquivalence checks both properties against the full
// enumeration on every configuration small enough to run both.
//
// # Bookkeeping
//
// The visited set maps fingerprint → the sleep set the state was last
// expanded with. Reaching a visited state with a sleep set that is not a
// superset of the stored one means some ordering the earlier expansion
// slept is no longer covered; the state is re-expanded with the
// intersection (standard for sleep sets combined with state matching —
// monotone, so exploration terminates). Re-expansions revisit edges but
// never re-count the state.

// pnode is one POR frontier entry: a frontier node plus its sleep set.
type pnode struct {
	trace   []Choice
	choices []Choice
	sleep   []Op // sorted by (Node, Block, Act)
}

// porCtx carries the run-wide reduction context.
type porCtx struct {
	cfg Config
	// softBlock[i] reports whether tracked block i's governing spec can
	// trap into software (Config.blockSpec — overrides included).
	softBlock []bool
}

func newPorCtx(cfg Config) *porCtx {
	ctx := &porCtx{cfg: cfg, softBlock: make([]bool, cfg.Blocks)}
	for i := 0; i < cfg.Blocks; i++ {
		ctx.softBlock[i] = cfg.blockSpec(i).UsesSoftware()
	}
	return ctx
}

// independentBlocks is the independence relation over tracked-block
// indices (see the file comment for the argument).
func (ctx *porCtx) independentBlocks(a, b int) bool {
	if ctx.cfg.independence != nil {
		return ctx.cfg.independence(a, b)
	}
	if a == b {
		return false
	}
	if a%ctx.cfg.Nodes != b%ctx.cfg.Nodes { // block i is homed on node i mod Nodes
		return true
	}
	return !ctx.softBlock[a] && !ctx.softBlock[b]
}

// succSleep builds the successor's sleep set after taking choice c from a
// state with sleep set sleep, where prior lists the injections already
// expanded at this state (their orderings are covered by the siblings).
// scopeBlock is the tracked-block index c operates on, or -1 when c is an
// event whose scope is unknown (conservative: sleeps nothing).
func (ctx *porCtx) succSleep(sleep []Op, prior []Op, scopeBlock int) []Op {
	if scopeBlock < 0 {
		return nil
	}
	var out []Op
	for _, o := range sleep {
		if ctx.independentBlocks(scopeBlock, o.Block) {
			out = append(out, o)
		}
	}
	for _, o := range prior {
		if ctx.independentBlocks(scopeBlock, o.Block) {
			out = append(out, o)
		}
	}
	sortOps(out)
	return dedupOps(out)
}

// scopeOf resolves the tracked-block index a choice operates on in world
// w (before the choice is applied), or -1 when it cannot be identified.
func (w *world) scopeOf(c Choice) int {
	if !c.Step {
		return c.Op.Block
	}
	b, ok := w.fabric.NextEventBlock()
	if !ok {
		return -1
	}
	bi, tracked := w.blockIdx[b]
	if !tracked {
		return -1
	}
	return bi
}

func sortOps(ops []Op) {
	sort.Slice(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Act < b.Act
	})
}

func dedupOps(ops []Op) []Op {
	out := ops[:0]
	for i, o := range ops {
		if i == 0 || o != ops[i-1] {
			out = append(out, o)
		}
	}
	return out
}

// subsetOps reports a ⊆ b for sorted op slices.
func subsetOps(a, b []Op) bool {
	j := 0
	for _, o := range a {
		for j < len(b) && lessOp(b[j], o) {
			j++
		}
		if j >= len(b) || b[j] != o {
			return false
		}
	}
	return true
}

// intersectOps returns a ∩ b for sorted op slices, sorted.
func intersectOps(a, b []Op) []Op {
	var out []Op
	j := 0
	for _, o := range a {
		for j < len(b) && lessOp(b[j], o) {
			j++
		}
		if j < len(b) && b[j] == o {
			out = append(out, o)
		}
	}
	return out
}

func lessOp(a, b Op) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	return a.Act < b.Act
}

// checkPOR is the sleep-set exploration: BFS over the same transition
// system as checkFull, pruning injections their sleep sets cover.
func checkPOR(cfg Config, maxStates int, res *Result) error {
	ctx := newPorCtx(cfg)
	w, err := newWorld(cfg)
	if err != nil {
		return err
	}
	if inv, detail := w.invariantViolation(); inv != "" {
		res.Violation = &Violation{Invariant: inv, Detail: detail}
		return nil
	}
	// visited: fingerprint → sleep set the state was last expanded with.
	visited := make(map[string][]Op)
	visited[string(w.fingerprint())] = nil
	res.States = 1
	res.noteQuiescent(w, string(w.fingerprint()))
	frontier := []pnode{{trace: nil, choices: w.choices(), sleep: nil}}

	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		asleep := make(map[Op]bool, len(cur.sleep))
		for _, o := range cur.sleep {
			asleep[o] = true
		}
		var prior []Op // injections expanded at this state so far
		for _, c := range cur.choices {
			if !c.Step && asleep[c.Op] {
				res.SleptTransitions++
				continue
			}
			cw, err := replay(cfg, cur.trace)
			if err != nil {
				return err
			}
			scope := cw.scopeOf(c)
			cw.apply(c)
			res.Transitions++
			trace := append(append([]Choice{}, cur.trace...), c)
			if len(trace) > res.MaxDepth {
				res.MaxDepth = len(trace)
			}
			if inv, detail := cw.invariantViolation(); inv != "" {
				res.Violation = &Violation{Invariant: inv, Detail: detail, Trace: trace}
				return nil
			}
			sleep := ctx.succSleep(cur.sleep, prior, scope)
			if !c.Step {
				prior = append(prior, c.Op)
			}
			key := string(cw.fingerprint())
			if old, seen := visited[key]; seen {
				if subsetOps(old, sleep) {
					continue // earlier expansion explored at least as much
				}
				// The earlier expansion slept orderings this path needs:
				// re-expand with the intersection (never larger than
				// either set, so repeated merges reach a fixpoint).
				merged := intersectOps(old, sleep)
				visited[key] = merged
				frontier = append(frontier, pnode{trace: trace, choices: cw.choices(), sleep: merged})
				continue
			}
			if res.States >= uint64(maxStates) {
				res.Bounded = true
				continue
			}
			visited[key] = sleep
			res.States++
			res.noteQuiescent(cw, key)
			frontier = append(frontier, pnode{trace: trace, choices: cw.choices(), sleep: sleep})
		}
	}
	return nil
}
