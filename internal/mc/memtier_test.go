package mc

import (
	"strings"
	"testing"

	"swex/internal/memtier"
	"swex/internal/proto"
)

// Zero-latency tier configurations for exploration: memtier.New builds
// them without validation, and at zero latency the tier is behaviorally
// invisible (time stays frozen), so every exploration with a tier
// installed must reproduce the flat machine's counts exactly. That is the
// property these tests pin: the tier hooks sit on the directory's memory
// paths without perturbing the protocol's transition system.
func zeroDisaggregated() memtier.Config {
	return memtier.Config{Kind: memtier.KindDisaggregated}
}

func zeroTiered() memtier.Config {
	return memtier.Config{Kind: memtier.KindTiered, DRAMBlocks: 1, PromoteAfter: 1}
}

// families enumerates the memory-system families under test, flat first.
func families() []struct {
	name string
	tier memtier.Config
} {
	return []struct {
		name string
		tier memtier.Config
	}{
		{"flat", memtier.Config{}},
		{"disaggregated", zeroDisaggregated()},
		{"tiered", zeroTiered()},
	}
}

// TestMemTierFrozenTimeEquivalence exhausts a 2-node, 2-block full-map
// machine under every memory-system family and requires identical
// exploration counts: a zero-latency tier must not add, remove, or reorder
// reachable states even though every directory-side access now routes
// through memtier.Model.Access.
func TestMemTierFrozenTimeEquivalence(t *testing.T) {
	var base *Result
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			cfg := Config{Spec: proto.FullMap(), Nodes: 2, Blocks: 2, MaxOps: 3,
				MemTier: fam.tier}
			res, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(cfg, res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatalf("state space not exhausted at %d states", res.States)
			}
			if base == nil {
				base = res
				t.Logf("baseline: %d states, %d transitions, depth %d, %d quiescent",
					res.States, res.Transitions, res.MaxDepth, res.Quiescent)
				return
			}
			if res.States != base.States || res.Transitions != base.Transitions ||
				res.MaxDepth != base.MaxDepth || res.Quiescent != base.Quiescent {
				t.Fatalf("family %s diverged from flat: got %d states, %d transitions, depth %d, %d quiescent; want %d, %d, %d, %d",
					fam.name, res.States, res.Transitions, res.MaxDepth, res.Quiescent,
					base.States, base.Transitions, base.MaxDepth, base.Quiescent)
			}
		})
	}
}

// TestMemTierSoftwareSmoke runs the software-heavy end of the spectrum
// (every read traps) over the tier families: the software trap chains
// stack extra events on the same directory memory paths the tier hooks
// occupy, so this is the deepest interleaving the hooks see under
// exploration.
func TestMemTierSoftwareSmoke(t *testing.T) {
	var base *Result
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			cfg := Config{Spec: proto.Spectrum()[0], Nodes: 2, Blocks: 2, MaxOps: 2,
				MemTier: fam.tier}
			res, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(cfg, res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatalf("state space not exhausted at %d states", res.States)
			}
			if base == nil {
				base = res
				return
			}
			if res.States != base.States || res.Transitions != base.Transitions {
				t.Fatalf("family %s diverged from flat: got %d states, %d transitions; want %d, %d",
					fam.name, res.States, res.Transitions, base.States, base.Transitions)
			}
		})
	}
}

// TestDirectorylessSmoke exhausts the directoryless machine at 2 nodes and
// 2 blocks under every memory-system family. The alphabet collapses to
// direct reads and writes (nothing is ever cached), so the interesting
// state is the per-(node, home) response FIFOs and home memory — exactly
// what the appended snapshot encodings capture. The golden pins the
// exploration; the cross-family equality pins the zero-latency-invisible
// property on the direct-access path, whose reply is delayed by the tier.
func TestDirectorylessSmoke(t *testing.T) {
	golden := Result{States: 17280, Transitions: 23072, MaxDepth: 12, Quiescent: 24}
	for _, fam := range families() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			cfg := Config{Spec: proto.Directoryless(), Nodes: 2, Blocks: 2, MaxOps: 3,
				MemTier: fam.tier}
			res, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(cfg, res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatalf("state space not exhausted at %d states", res.States)
			}
			if res.States != golden.States || res.Transitions != golden.Transitions ||
				res.MaxDepth != golden.MaxDepth || res.Quiescent != golden.Quiescent {
				t.Fatalf("got %d states, %d transitions, depth %d, %d quiescent; want %d, %d, %d, %d",
					res.States, res.Transitions, res.MaxDepth, res.Quiescent,
					golden.States, golden.Transitions, golden.MaxDepth, golden.Quiescent)
			}
		})
	}
}

// TestDirectorylessAlphabet checks that the resolved alphabet for a
// directoryless machine is exactly {read, write}.
func TestDirectorylessAlphabet(t *testing.T) {
	cfg := Config{Spec: proto.Directoryless(), Nodes: 2, Blocks: 1, MaxOps: 1}
	acts := cfg.alphabet()
	if len(acts) != 2 || acts[0] != ActRead || acts[1] != ActWrite {
		t.Fatalf("directoryless alphabet = %v, want [read write]", acts)
	}
}

// TestDirectorylessRejections checks that configurations the directoryless
// machine cannot soundly explore are rejected up front: cached-copy
// actions named explicitly, the watch alphabet (an unbounded poll loop in
// frozen time), and POR (same-home direct accesses share a response FIFO
// and do not commute).
func TestDirectorylessRejections(t *testing.T) {
	base := Config{Spec: proto.Directoryless(), Nodes: 2, Blocks: 1, MaxOps: 1}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"explicit-evict", func(c *Config) { c.Actions = []Action{ActRead, ActEvict} }, "meaningless"},
		{"watch", func(c *Config) { c.Watch = true }, "polls forever"},
		{"por", func(c *Config) { c.POR = true }, "unsound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := Check(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Check() error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
