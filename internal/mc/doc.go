// Package mc is an exhaustive explicit-state model checker for the
// protocol spectrum. It drives the real proto/dir/cache/sim machinery —
// no re-modeling — through every interleaving of a small action alphabet
// (per-node read, write, evict, CICO check-in/check-out, and optionally
// the Watch producer–consumer primitive, against a handful of blocks)
// and asserts the coherence invariants on every reachable state.
//
// The simulated trace checker (proto.Checker) only ever witnesses the
// states a benchmark happens to visit; directory protocols break in the
// adversarial interleavings — an invalidation racing a data reply, an
// eviction crossing a recall — that benchmarks rarely produce. The model
// checker enumerates them all, for configurations small enough to
// exhaust.
//
// # Forking by replay
//
// A machine state includes scheduled closures (pending message deliveries,
// handler completions), which cannot be copied. Instead of snapshotting
// the machine, the checker identifies a state with the *choice trace*
// that produced it: the engine is deterministic, so replaying a trace on
// a fresh machine reconstructs the state exactly. Forking at a scheduling
// choice point is then "replay the parent's trace, apply one more
// choice". The visited set is keyed by the canonical state fingerprint
// (proto.Fabric.Snapshot), so two traces that converge on the same
// logical state are explored once.
//
// At every state the available choices are:
//
//   - step: fire the next pending engine event (message delivery, handler
//     completion, busy retry, watch re-arm) — exactly one successor,
//     because the engine orders events deterministically;
//   - inject op: present one enabled processor operation to a cache
//     controller, for every (node, block, action) whose action is enabled.
//
// The interleavings of injections against event firings are exactly the
// schedules a real machine could exhibit at some combination of latencies.
// All worlds run at zero latency (mesh.ZeroLatency, zero proto.Timing) so
// simulated time stays effectively frozen and logically identical states
// fingerprint identically regardless of history. (Watch re-arms are the
// one deliberate exception: they fire a cycle out, and the snapshot layer
// encodes each pending event's relative firing delay so the fingerprint
// stays sound — see proto.Fabric.Snapshot.)
//
// # Mixed-spec machines
//
// Config.Overrides applies Alewife's block-by-block protocol selection
// (proto.HomeCtl.Configure) before exploration starts, so a machine whose
// blocks run different protocols — one full-map, one LimitLESS — is
// checked against the same invariants as a uniform one.
//
// # Invariants
//
// After every transition the checker asserts, for every tracked block:
// single writer (an Exclusive copy is the only copy), identical readers
// (all Shared copies hold the same words), and directory–cache agreement
// (proto.Fabric.AgreementViolation). Whenever the event queue is empty it
// additionally asserts quiescence — no in-flight messages, no outstanding
// miss transactions, no incomplete operations beyond parked watchers, and
// every directory entry in a stable state — and lost-wakeup: a watcher
// still parked at quiescence must be parked on the block's current
// coherent value, or a wakeup was dropped and the consumer sleeps
// forever.
//
// # Partial-order reduction
//
// Config.POR enables a sleep-set partial-order reduction layer (por.go)
// over the same replay engine: injections that commute — they touch
// different blocks, and no software trap can serialize them on a shared
// home node — are explored in one order instead of all orders. The
// reduction preserves every invariant verdict and the exact set of
// quiescent states; TestPOREquivalence proves that against full
// enumeration on every configuration small enough to run both.
//
// Determinism contract: Check is a pure function of its Config — every
// run of the same configuration explores states in the same order,
// returns the same counts, and finds the same (shortest, under BFS)
// counterexample. See MODELCHECK.md for the full design story.
package mc
