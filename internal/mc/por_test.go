package mc

import (
	"testing"

	"swex/internal/proto"
)

// porEquivCases lists every configuration small enough to run both the
// full enumeration and the reduced one within the test budget. The table
// deliberately spans the axes the independence relation reasons about:
// single block (nothing independent — the reduction must degrade to the
// full run), hardware blocks on distinct homes (maximal independence),
// software blocks sharing a home (trap coupling forbids sleeping),
// mixed per-block overrides, and the watch alphabet.
func porEquivCases() []Config {
	return []Config{
		// Degenerate: one block, nothing commutes. POR must not prune a
		// single reachable state.
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 3},
		// Hardware blocks on distinct homes: the largest sound reduction.
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 2, MaxOps: 3},
		{Spec: proto.FullMap(), Nodes: 3, Blocks: 2, MaxOps: 2},
		{Spec: proto.FullMap(), Nodes: 3, Blocks: 3, MaxOps: 2},
		// LimitLESS: blocks trap on pointer overflow, so same-home blocks
		// must stay dependent.
		{Spec: proto.LimitLESS(2), Nodes: 2, Blocks: 2, MaxOps: 2},
		{Spec: proto.LimitLESS(1), Nodes: 2, Blocks: 3, MaxOps: 2},
		// Software-only: every miss traps; blocks 0 and 2 share home 0.
		{Spec: proto.SoftwareOnly(), Nodes: 2, Blocks: 3, MaxOps: 2},
		// Producer–consumer alphabet: watch re-arms schedule delayed
		// events, the one place simulated time advances.
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 2, MaxOps: 2, Watch: true},
		// Mixed-spec machine: per-block Configure overrides feed
		// blockSpec, which feeds the softBlock table POR prunes by.
		{Spec: proto.LimitLESS(5), Nodes: 2, Blocks: 2, MaxOps: 2,
			Overrides: []proto.Spec{proto.FullMap(), proto.LimitLESS(1)}},
	}
}

// TestPOREquivalence is the soundness proof the reduction ships with:
// on every configuration small enough to run both, the sleep-set run
// must reach the identical verdict and the identical set of quiescent
// fingerprints as the full enumeration, while visiting no more states.
// (Transient states legitimately differ — pruning event orderings is
// the whole point — but once the event queue drains, the orderings that
// distinguished the pruned paths are gone, so the quiescent sets must
// match exactly.)
func TestPOREquivalence(t *testing.T) {
	for _, cfg := range porEquivCases() {
		cfg := cfg
		name := cfg.Spec.Name
		if len(cfg.Overrides) > 0 {
			name += "+overrides"
		}
		if cfg.Watch {
			name += "+watch"
		}
		t.Run(name, func(t *testing.T) {
			cfg.CollectQuiescent = true
			full, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reduced := cfg
			reduced.POR = true
			por, err := Check(reduced)
			if err != nil {
				t.Fatal(err)
			}
			if full.Bounded || por.Bounded {
				t.Fatalf("equivalence needs exhausted runs (full bounded=%v, por bounded=%v)", full.Bounded, por.Bounded)
			}
			if (full.Violation == nil) != (por.Violation == nil) {
				t.Fatalf("verdicts differ: full %v, por %v", full.Violation, por.Violation)
			}
			if por.States > full.States {
				t.Fatalf("reduction grew the state space: %d > %d", por.States, full.States)
			}
			if por.Quiescent != full.Quiescent {
				t.Fatalf("quiescent counts differ: full %d, por %d", full.Quiescent, por.Quiescent)
			}
			if len(por.QuiescentSet) != len(full.QuiescentSet) {
				t.Fatalf("quiescent sets differ in size: full %d, por %d", len(full.QuiescentSet), len(por.QuiescentSet))
			}
			for k := range full.QuiescentSet {
				if _, ok := por.QuiescentSet[k]; !ok {
					t.Fatalf("quiescent fingerprint reached by full enumeration but not by POR:\n%s", k)
				}
			}
			t.Logf("full %d states / %d transitions; por %d states / %d transitions, %d slept (%.2fx states)",
				full.States, full.Transitions, por.States, por.Transitions, por.SleptTransitions,
				float64(full.States)/float64(por.States))
		})
	}
}

// TestPOREquivalenceUnderFault checks the verdict half of the
// equivalence on a run that actually violates: a seeded
// invalidation-drop must be caught by the reduced run too, as the same
// invariant.
func TestPOREquivalenceUnderFault(t *testing.T) {
	base := Config{Spec: proto.FullMap(), Nodes: 2, Blocks: 2, MaxOps: 2}
	base.Fault = func() func(proto.Msg) bool {
		dropped := false
		return func(m proto.Msg) bool {
			if m.Kind == proto.MsgINV && !dropped {
				dropped = true
				return true
			}
			return false
		}
	}
	full, err := Check(base)
	if err != nil {
		t.Fatal(err)
	}
	reduced := base
	reduced.POR = true
	por, err := Check(reduced)
	if err != nil {
		t.Fatal(err)
	}
	if full.Violation == nil || por.Violation == nil {
		t.Fatalf("seeded fault not caught: full %v, por %v", full.Violation, por.Violation)
	}
	if full.Violation.Invariant != por.Violation.Invariant {
		t.Fatalf("verdicts name different invariants: full %q, por %q",
			full.Violation.Invariant, por.Violation.Invariant)
	}
}

// TestPORNegativeFixture proves the equivalence test has teeth by
// breaking the reduction on purpose. The fixture installs a
// plausible-sounding but unsound independence relation — ops whose
// blocks share a home node are declared independent, on the bogus
// theory that the home serializes them anyway — and checks that the
// reduced run under-explores: same-home includes same-block, so the
// sleep sets prune reorderings of operations on one block, which do not
// commute, and quiescent states reachable only through the pruned
// orders go missing. If this fixture ever stops failing the
// equivalence criteria, the criteria have gone soft.
func TestPORNegativeFixture(t *testing.T) {
	cfg := Config{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 3, CollectQuiescent: true}
	full, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unsound := cfg
	unsound.POR = true
	unsound.independence = func(a, b int) bool {
		return a%unsound.Nodes == b%unsound.Nodes // same home ⇒ "independent": wrong
	}
	por, err := Check(unsound)
	if err != nil {
		t.Fatal(err)
	}
	if por.SleptTransitions == 0 {
		t.Fatal("unsound relation slept nothing; fixture is inert")
	}
	var missing int
	for k := range full.QuiescentSet {
		if _, ok := por.QuiescentSet[k]; !ok {
			missing++
		}
	}
	if missing == 0 && por.States == full.States {
		t.Fatalf("unsound independence relation was not detected: por explored %d states and every quiescent fingerprint", por.States)
	}
	t.Logf("unsound reduction under-explored as required: %d states (full %d), %d quiescent fingerprints missed",
		por.States, full.States, missing)
}

// TestPORSmoke pins the reduced-run counts on two fast configurations —
// the goldens behind `make mc-por-smoke`. SleptTransitions is pinned
// too: it is the reduction's observable output, and a silent change in
// what gets slept is exactly the kind of drift the smoke gate exists to
// catch.
func TestPORSmoke(t *testing.T) {
	cases := []struct {
		cfg    Config
		states uint64
		trans  uint64
		slept  uint64
		quiet  uint64
	}{
		{Config{Spec: proto.LimitLESS(2), Nodes: 2, Blocks: 2, MaxOps: 2, POR: true},
			1235, 1700, 144, 91},
		{Config{Spec: proto.FullMap(), Nodes: 3, Blocks: 2, MaxOps: 2, POR: true},
			2986, 4041, 324, 184},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.cfg.Spec.Name, func(t *testing.T) {
			res, err := Check(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(tc.cfg, res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatal("state space not exhausted")
			}
			if res.States != tc.states || res.Transitions != tc.trans ||
				res.SleptTransitions != tc.slept || res.Quiescent != tc.quiet {
				t.Fatalf("reduced-run counts moved: got %d states, %d transitions, %d slept, %d quiescent; want %d, %d, %d, %d",
					res.States, res.Transitions, res.SleptTransitions, res.Quiescent,
					tc.states, tc.trans, tc.slept, tc.quiet)
			}
		})
	}
}
