package mc

import (
	"bytes"
	"testing"

	"swex/internal/proto"
)

// TestFingerprintSoundness checks the property the whole checker rests on:
// two traces that reach the same fingerprint must reach behaviorally
// equivalent states. It runs a BFS keeping fingerprint -> first trace;
// whenever a second trace rediscovers a fingerprint, both traces are
// replayed and their choice lists and every per-choice successor
// fingerprint are compared. A mismatch means the fingerprint abstraction
// is dropping behavior-relevant state, which would make exploration
// order-dependent and state merging unsound.
// The sweep runs every spec with the watch alphabet both off and on:
// watch states carry the extensions the fingerprint grew for them
// (parked-watcher details, waiter watch flags, relative firing deltas
// from the one-cycle re-arm), and each extension claims to distinguish
// exactly the states it must — this test is what holds it to that.
func TestFingerprintSoundness(t *testing.T) {
	for _, spec := range []proto.Spec{proto.SoftwareOnly(), proto.OnePointer(proto.AckLACK), proto.FullMap()} {
		for _, watch := range []bool{false, true} {
			name := spec.Name
			if watch {
				name += "+watch"
			}
			t.Run(name, func(t *testing.T) {
				cfg := Config{Spec: spec, Nodes: 2, Blocks: 1, MaxOps: 3, Watch: watch}
				first := make(map[string][]Choice)
				w, err := newWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				first[string(w.fingerprint())] = nil
				frontier := []node{{trace: nil, choices: w.choices()}}
				for len(frontier) > 0 {
					cur := frontier[0]
					frontier = frontier[1:]
					for _, c := range cur.choices {
						cw, err := replay(cfg, cur.trace)
						if err != nil {
							t.Fatal(err)
						}
						cw.apply(c)
						trace := append(append([]Choice{}, cur.trace...), c)
						key := string(cw.fingerprint())
						if prev, seen := first[key]; seen {
							compareBehavior(t, cfg, prev, trace)
							continue
						}
						first[key] = trace
						frontier = append(frontier, node{trace: trace, choices: cw.choices()})
					}
				}
			})
		}
	}
}

// compareBehavior replays two traces that fingerprinted identically and
// fails if the resulting worlds differ in enabled choices or in any
// successor fingerprint.
func compareBehavior(t *testing.T, cfg Config, a, b []Choice) {
	t.Helper()
	wa, err := replay(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := replay(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := wa.choices(), wb.choices()
	if len(ca) != len(cb) {
		t.Fatalf("fingerprint collision: traces\n  %v\n  %v\nhave %d vs %d choices", a, b, len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("fingerprint collision: traces\n  %v\n  %v\nchoice %d differs: %v vs %v", a, b, i, ca[i], cb[i])
		}
		sa, err := replay(cfg, append(append([]Choice{}, a...), ca[i]))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := replay(cfg, append(append([]Choice{}, b...), cb[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa.fingerprint(), sb.fingerprint()) {
			t.Fatalf("fingerprint collision: traces\n  %v\n  %v\ndiverge after %v:\n  %s\nvs\n  %s",
				a, b, ca[i], sa.fingerprint(), sb.fingerprint())
		}
	}
}
