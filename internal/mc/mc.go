package mc

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/memtier"
	"swex/internal/proto"
)

// Action is one member of the model checker's action alphabet.
type Action int

const (
	// ActRead presents a load; enabled when the node holds no copy.
	ActRead Action = iota
	// ActWrite presents a store of a per-node distinctive value; always
	// enabled (a hit commits locally, a miss or upgrade transacts).
	ActWrite
	// ActEvict silently drops the node's copy, writing back if dirty;
	// enabled when a copy is resident.
	ActEvict
	// ActCheckIn runs the CICO check-in directive (relinquish or write
	// back); enabled when a copy is resident and no transaction is
	// outstanding.
	ActCheckIn
	// ActCheckOut runs the CICO check-out directive (acquire exclusive
	// ownership before use); enabled unless the copy is already held
	// exclusive. Issued over a pending read transaction it upgrades the
	// transaction in flight — the raciest path in the directive's
	// implementation, and the reason it belongs in the alphabet.
	ActCheckOut
	// ActWatch parks a consumer on the block's first word until it
	// changes from its initial zero — the producer–consumer half of the
	// alphabet (every ActWrite is a producer: it stores a non-zero
	// distinctive value). Enabled when the node has no watcher already
	// parked on the block and the watched word is not already known
	// changed. Exercises the park/re-arm machinery against every
	// invalidation, eviction, and local-store ordering, which no other
	// action reaches.
	ActWatch
	numActions
)

// String names the Action as it appears in traces and counterexamples.
func (a Action) String() string {
	switch a {
	case ActRead:
		return "read"
	case ActWrite:
		return "write"
	case ActEvict:
		return "evict"
	case ActCheckIn:
		return "checkin"
	case ActCheckOut:
		return "checkout"
	case ActWatch:
		return "watch"
	default:
		panic(fmt.Sprintf("mc: unknown action %d", int(a)))
	}
}

// Op is one injectable operation: an action by a node on a tracked block.
type Op struct {
	// Node is the acting node.
	Node mem.NodeID
	// Block is the index into the world's tracked blocks.
	Block int
	// Act is the action performed.
	Act Action
}

// Choice is one edge of the transition system: either fire the next
// pending engine event (Step) or inject an operation.
type Choice struct {
	// Step selects firing the next pending engine event; Op is ignored.
	Step bool
	// Op is the operation to inject when Step is false.
	Op Op
}

// String renders the Choice as it appears in traces and counterexamples.
func (c Choice) String() string {
	if c.Step {
		return "step"
	}
	return fmt.Sprintf("node%d %s b%d", c.Op.Node, c.Op.Act, c.Op.Block)
}

// Config describes one model-checking run.
type Config struct {
	// Spec is the protocol to check.
	Spec proto.Spec
	// Nodes is the machine size (2 or 3 for exhaustive runs).
	Nodes int
	// Blocks is how many blocks the alphabet touches (1 or 2); block i is
	// homed on node i mod Nodes.
	Blocks int
	// MaxOps bounds the number of injected operations per trace — the
	// exploration depth. Event steps are not counted: once injected, work
	// always runs to completion.
	MaxOps int
	// MaxStates bounds the visited set (frontier bound); 0 means the
	// package default. Hitting the bound sets Result.Bounded.
	MaxStates int
	// DFS explores depth-first instead of breadth-first. BFS (the
	// default) guarantees a shortest counterexample.
	DFS bool
	// MigratoryDetect toggles the Section 7 migratory-data adaptation on
	// the checked machine.
	MigratoryDetect bool
	// BatchReads toggles the Section 7 read-burst batching enhancement on
	// the checked machine.
	BatchReads bool
	// Watch adds ActWatch to the default alphabet, enabling the
	// producer–consumer (watch/store) operation pairs. Ignored when
	// Actions is set explicitly.
	Watch bool
	// Actions, when non-nil, replaces the default alphabet entirely.
	// Restricting the alphabet steers BFS's shortest counterexample:
	// with ActRead excluded, for example, the only way to a shared copy
	// is through a watch, so a seeded invalidation-drop surfaces on the
	// watch path. Duplicates are rejected; order does not matter (the
	// alphabet is enumerated in canonical Action order).
	Actions []Action
	// Overrides configures per-block protocol overrides: block i runs
	// Overrides[i] (applied via proto.HomeCtl.Configure before the first
	// reference) when its Name is non-empty, the machine Spec otherwise.
	// May be shorter than Blocks. An override the machine's software
	// cannot express is rejected, exactly as on the real machine.
	Overrides []proto.Spec
	// POR enables sleep-set partial-order reduction (see por.go). It
	// requires BFS and preserves every invariant verdict and the exact
	// set of quiescent states, but visits fewer of the transient
	// orderings in between, so States/Transitions shrink.
	POR bool
	// CollectQuiescent records the fingerprint of every quiescent state
	// in Result.QuiescentSet. The POR equivalence test compares these
	// sets between reduced and full runs; they are memory-heavy, so
	// collection is opt-in.
	CollectQuiescent bool
	// Fault, when set, builds a fresh message-drop filter for each world
	// (worlds are rebuilt constantly, so the filter must be per-world
	// state). Used to seed protocol bugs the checker should catch.
	Fault func() func(proto.Msg) bool
	// MemTier installs a memory-hierarchy model (internal/memtier) behind
	// the home directories of every explored world. Use zero-latency tier
	// configurations (memtier.New builds them without validation): the
	// checker's state fingerprints deliberately exclude simulated time, so
	// a tier that advances the clock would fold timing-distinct states.
	// What this checks is the protocol logic on the tier's access paths —
	// the write-occupancy hooks and the directoryless direct-access path —
	// not the tier's timing, which the deterministic simulator covers.
	MemTier memtier.Config

	// independence, when non-nil, replaces the POR independence relation
	// over tracked-block indices (por.go, (*porCtx).independentBlocks).
	// Test hook only: the negative fixture installs a deliberately
	// unsound relation to prove the equivalence test has teeth.
	independence func(a, b int) bool
}

// DefaultMaxStates bounds the visited set when Config.MaxStates is zero.
const DefaultMaxStates = 1 << 20

// Violation describes an invariant failure, with the shortest trace that
// reaches it (shortest under BFS; some trace under DFS).
type Violation struct {
	// Invariant names the failed predicate.
	Invariant string
	// Detail describes the failing state.
	Detail string
	// Trace is the choice sequence from the initial state.
	Trace []Choice
}

// String renders the Violation as a one-line verdict.
func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s (trace length %d)", v.Invariant, v.Detail, len(v.Trace))
}

// Result summarizes one run.
type Result struct {
	// Spec echoes the checked protocol.
	Spec proto.Spec
	// States counts distinct reachable states (visited-set size).
	States uint64
	// Transitions counts explored edges.
	Transitions uint64
	// MaxDepth is the longest trace explored.
	MaxDepth int
	// Quiescent counts states with an empty event queue (all of which
	// passed the quiescence invariant).
	Quiescent uint64
	// Bounded reports that exploration stopped at MaxStates and the
	// state space was NOT exhausted.
	Bounded bool
	// SleptTransitions counts the edges partial-order reduction pruned:
	// enabled injections skipped because a sleep set proved an explored
	// sibling ordering equivalent. Zero when Config.POR is off.
	SleptTransitions uint64
	// QuiescentSet holds the fingerprint of every quiescent state
	// reached, when Config.CollectQuiescent is set (nil otherwise).
	QuiescentSet map[string]struct{}
	// Violation is non-nil if an invariant failed; exploration stops at
	// the first violation.
	Violation *Violation
}

// node is one frontier entry: the trace that reaches a state plus the
// choices available there (computed when the state was first built, so
// expansion needs no extra replay).
type node struct {
	trace   []Choice
	choices []Choice
}

// Check explores the reachable state space of the configured machine and
// returns counts plus the first invariant violation found, if any. It is
// deterministic: the same Config always yields the same Result.
func Check(cfg Config) (*Result, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	res := &Result{Spec: cfg.Spec}
	if cfg.CollectQuiescent {
		res.QuiescentSet = make(map[string]struct{})
	}
	if cfg.POR {
		return res, checkPOR(cfg, maxStates, res)
	}
	return res, checkFull(cfg, maxStates, res)
}

// checkFull is the unreduced exploration: every enabled choice at every
// state.
func checkFull(cfg Config, maxStates int, res *Result) error {
	w, err := newWorld(cfg)
	if err != nil {
		return err
	}
	if inv, detail := w.invariantViolation(); inv != "" {
		res.Violation = &Violation{Invariant: inv, Detail: detail}
		return nil
	}
	visited := make(map[string]struct{})
	visited[string(w.fingerprint())] = struct{}{}
	res.States = 1
	res.noteQuiescent(w, string(w.fingerprint()))
	frontier := []node{{trace: nil, choices: w.choices()}}

	for len(frontier) > 0 {
		var cur node
		if cfg.DFS {
			cur = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			cur = frontier[0]
			frontier = frontier[1:]
		}
		for _, c := range cur.choices {
			cw, err := replay(cfg, cur.trace)
			if err != nil {
				return err
			}
			cw.apply(c)
			res.Transitions++
			trace := append(append([]Choice{}, cur.trace...), c)
			if len(trace) > res.MaxDepth {
				res.MaxDepth = len(trace)
			}
			if inv, detail := cw.invariantViolation(); inv != "" {
				res.Violation = &Violation{Invariant: inv, Detail: detail, Trace: trace}
				return nil
			}
			key := string(cw.fingerprint())
			if _, seen := visited[key]; seen {
				continue
			}
			if res.States >= uint64(maxStates) {
				res.Bounded = true
				continue
			}
			visited[key] = struct{}{}
			res.States++
			res.noteQuiescent(cw, key)
			frontier = append(frontier, node{trace: trace, choices: cw.choices()})
		}
	}
	return nil
}

// noteQuiescent updates the quiescent-state accounting for a newly
// visited state.
func (r *Result) noteQuiescent(w *world, key string) {
	if w.engine.Pending() != 0 {
		return
	}
	r.Quiescent++
	if r.QuiescentSet != nil {
		r.QuiescentSet[key] = struct{}{}
	}
}

// validate rejects configurations the checker cannot exhaust.
func validate(cfg Config) error {
	if err := cfg.Spec.Validate(); err != nil {
		return err
	}
	if cfg.Nodes < 2 || cfg.Nodes > 8 {
		return fmt.Errorf("mc: %d nodes; exhaustive checking needs 2..8", cfg.Nodes)
	}
	if cfg.Blocks < 1 || cfg.Blocks > 4 {
		return fmt.Errorf("mc: %d blocks; exhaustive checking needs 1..4", cfg.Blocks)
	}
	if cfg.MaxOps < 1 {
		return fmt.Errorf("mc: operation budget %d; need at least 1", cfg.MaxOps)
	}
	seen := make(map[Action]bool)
	for _, a := range cfg.Actions {
		if a < 0 || a >= numActions {
			return fmt.Errorf("mc: unknown action %d in alphabet", int(a))
		}
		if seen[a] {
			return fmt.Errorf("mc: duplicate action %s in alphabet", a)
		}
		seen[a] = true
		if cfg.Spec.Directoryless && a != ActRead && a != ActWrite {
			return fmt.Errorf("mc: action %s is meaningless under a directoryless spec (no cached copies to evict, direct, or watch)", a)
		}
	}
	if cfg.Spec.Directoryless {
		// Directoryless accesses from one node to same-home blocks share a
		// per-(node, home) response FIFO, so same-home injections do not
		// commute and the POR independence relation would be unsound.
		if cfg.POR {
			return fmt.Errorf("mc: POR is unsound under a directoryless spec (same-home direct accesses share a response FIFO and do not commute)")
		}
		if cfg.Watch {
			return fmt.Errorf("mc: ActWatch under a directoryless spec polls forever in frozen time; use the direct read/write alphabet")
		}
	}
	if cfg.Actions != nil && len(cfg.Actions) == 0 {
		return fmt.Errorf("mc: empty action alphabet")
	}
	if len(cfg.Overrides) > cfg.Blocks {
		return fmt.Errorf("mc: %d overrides for %d blocks", len(cfg.Overrides), cfg.Blocks)
	}
	if cfg.POR && cfg.DFS {
		return fmt.Errorf("mc: POR requires BFS (sleep sets assume breadth-first expansion order)")
	}
	return nil
}

// alphabet resolves the run's action alphabet in canonical Action order.
func (cfg Config) alphabet() []Action {
	var acts []Action
	if cfg.Actions != nil {
		enabled := make(map[Action]bool, len(cfg.Actions))
		for _, a := range cfg.Actions {
			enabled[a] = true
		}
		for a := ActRead; a < numActions; a++ {
			if enabled[a] {
				acts = append(acts, a)
			}
		}
		return acts
	}
	for a := ActRead; a < numActions; a++ {
		if a == ActWatch && !cfg.Watch {
			continue
		}
		// A directoryless machine caches nothing, so only the direct
		// read/write actions can change state (validate rejects the rest
		// when named explicitly).
		if cfg.Spec.Directoryless && a != ActRead && a != ActWrite {
			continue
		}
		acts = append(acts, a)
	}
	return acts
}

// blockSpec returns the protocol governing tracked block i: its override
// when one is configured, the machine Spec otherwise.
func (cfg Config) blockSpec(i int) proto.Spec {
	if i < len(cfg.Overrides) && cfg.Overrides[i].Name != "" {
		return cfg.Overrides[i]
	}
	return cfg.Spec
}

// replay reconstructs the state reached by a trace on a fresh machine.
func replay(cfg Config, trace []Choice) (*world, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range trace {
		w.apply(c)
	}
	return w, nil
}
