// Package mc is an exhaustive explicit-state model checker for the
// protocol spectrum. It drives the real proto/dir/cache/sim machinery —
// no re-modeling — through every interleaving of a small action alphabet
// (per-node read, write, evict, check-in, and check-out against a handful
// of blocks)
// and asserts the coherence invariants on every reachable state.
//
// The simulated trace checker (proto.Checker) only ever witnesses the
// states a benchmark happens to visit; directory protocols break in the
// adversarial interleavings — an invalidation racing a data reply, an
// eviction crossing a recall — that benchmarks rarely produce. The model
// checker enumerates them all, for configurations small enough to
// exhaust.
//
// # Forking by replay
//
// A machine state includes scheduled closures (pending message deliveries,
// handler completions), which cannot be copied. Instead of snapshotting
// the machine, the checker identifies a state with the *choice trace*
// that produced it: the engine is deterministic, so replaying a trace on
// a fresh machine reconstructs the state exactly. Forking at a scheduling
// choice point is then "replay the parent's trace, apply one more
// choice". The visited set is keyed by the canonical state fingerprint
// (proto.Fabric.Snapshot), so two traces that converge on the same
// logical state are explored once.
//
// At every state the available choices are:
//
//   - step: fire the next pending engine event (message delivery, handler
//     completion, busy retry) — exactly one successor, because the engine
//     orders events deterministically;
//   - inject op: present one enabled processor operation to a cache
//     controller, for every (node, block, action) whose action is enabled.
//
// The interleavings of injections against event firings are exactly the
// schedules a real machine could exhibit at some combination of latencies.
// All worlds run at zero latency (mesh.ZeroLatency, zero proto.Timing) so
// simulated time stays frozen at cycle zero and logically identical
// states fingerprint identically regardless of history.
//
// # Invariants
//
// After every transition the checker asserts, for every tracked block:
// single writer (an Exclusive copy is the only copy), identical readers
// (all Shared copies hold the same words), and directory–cache agreement
// (proto.Fabric.AgreementViolation). Whenever the event queue is empty it
// additionally asserts quiescence: no in-flight messages, no outstanding
// miss transactions, no incomplete operations, and every directory entry
// in a stable state — a machine that has gone quiet with work undone has
// livelocked or dropped a message.
package mc

import (
	"fmt"

	"swex/internal/mem"
	"swex/internal/proto"
)

// Action is one member of the model checker's action alphabet.
type Action int

const (
	// ActRead presents a load; enabled when the node holds no copy.
	ActRead Action = iota
	// ActWrite presents a store of a per-node distinctive value; always
	// enabled (a hit commits locally, a miss or upgrade transacts).
	ActWrite
	// ActEvict silently drops the node's copy, writing back if dirty;
	// enabled when a copy is resident.
	ActEvict
	// ActCheckIn runs the CICO check-in directive (relinquish or write
	// back); enabled when a copy is resident and no transaction is
	// outstanding.
	ActCheckIn
	// ActCheckOut runs the CICO check-out directive (acquire exclusive
	// ownership before use); enabled unless the copy is already held
	// exclusive. Issued over a pending read transaction it upgrades the
	// transaction in flight — the raciest path in the directive's
	// implementation, and the reason it belongs in the alphabet.
	ActCheckOut
	numActions
)

func (a Action) String() string {
	switch a {
	case ActRead:
		return "read"
	case ActWrite:
		return "write"
	case ActEvict:
		return "evict"
	case ActCheckIn:
		return "checkin"
	case ActCheckOut:
		return "checkout"
	default:
		panic(fmt.Sprintf("mc: unknown action %d", int(a)))
	}
}

// Op is one injectable operation: an action by a node on a tracked block.
type Op struct {
	Node  mem.NodeID
	Block int // index into the world's tracked blocks
	Act   Action
}

// Choice is one edge of the transition system: either fire the next
// pending engine event (Step) or inject an operation.
type Choice struct {
	Step bool
	Op   Op
}

func (c Choice) String() string {
	if c.Step {
		return "step"
	}
	return fmt.Sprintf("node%d %s b%d", c.Op.Node, c.Op.Act, c.Op.Block)
}

// Config describes one model-checking run.
type Config struct {
	// Spec is the protocol to check.
	Spec proto.Spec
	// Nodes is the machine size (2 or 3 for exhaustive runs).
	Nodes int
	// Blocks is how many blocks the alphabet touches (1 or 2); block i is
	// homed on node i mod Nodes.
	Blocks int
	// MaxOps bounds the number of injected operations per trace — the
	// exploration depth. Event steps are not counted: once injected, work
	// always runs to completion.
	MaxOps int
	// MaxStates bounds the visited set (frontier bound); 0 means the
	// package default. Hitting the bound sets Result.Bounded.
	MaxStates int
	// DFS explores depth-first instead of breadth-first. BFS (the
	// default) guarantees a shortest counterexample.
	DFS bool
	// MigratoryDetect and BatchReads toggle the Section 7 enhancements on
	// the checked machine.
	MigratoryDetect bool
	BatchReads      bool
	// Fault, when set, builds a fresh message-drop filter for each world
	// (worlds are rebuilt constantly, so the filter must be per-world
	// state). Used to seed protocol bugs the checker should catch.
	Fault func() func(proto.Msg) bool
}

// DefaultMaxStates bounds the visited set when Config.MaxStates is zero.
const DefaultMaxStates = 1 << 20

// Violation describes an invariant failure, with the shortest trace that
// reaches it (shortest under BFS; some trace under DFS).
type Violation struct {
	// Invariant names the failed predicate.
	Invariant string
	// Detail describes the failing state.
	Detail string
	// Trace is the choice sequence from the initial state.
	Trace []Choice
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s (trace length %d)", v.Invariant, v.Detail, len(v.Trace))
}

// Result summarizes one run.
type Result struct {
	// Spec echoes the checked protocol.
	Spec proto.Spec
	// States counts distinct reachable states (visited-set size).
	States uint64
	// Transitions counts explored edges.
	Transitions uint64
	// MaxDepth is the longest trace explored.
	MaxDepth int
	// Quiescent counts states with an empty event queue (all of which
	// passed the quiescence invariant).
	Quiescent uint64
	// Bounded reports that exploration stopped at MaxStates and the
	// state space was NOT exhausted.
	Bounded bool
	// Violation is non-nil if an invariant failed; exploration stops at
	// the first violation.
	Violation *Violation
}

// node is one frontier entry: the trace that reaches a state plus the
// choices available there (computed when the state was first built, so
// expansion needs no extra replay).
type node struct {
	trace   []Choice
	choices []Choice
}

// Check explores the reachable state space of the configured machine and
// returns counts plus the first invariant violation found, if any.
func Check(cfg Config) (*Result, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	res := &Result{Spec: cfg.Spec}

	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	if inv, detail := w.invariantViolation(); inv != "" {
		res.Violation = &Violation{Invariant: inv, Detail: detail}
		return res, nil
	}
	visited := make(map[string]struct{})
	visited[string(w.fingerprint())] = struct{}{}
	res.States = 1
	if w.engine.Pending() == 0 {
		res.Quiescent++
	}
	frontier := []node{{trace: nil, choices: w.choices()}}

	for len(frontier) > 0 {
		var cur node
		if cfg.DFS {
			cur = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			cur = frontier[0]
			frontier = frontier[1:]
		}
		for _, c := range cur.choices {
			cw, err := replay(cfg, cur.trace)
			if err != nil {
				return nil, err
			}
			cw.apply(c)
			res.Transitions++
			trace := append(append([]Choice{}, cur.trace...), c)
			if len(trace) > res.MaxDepth {
				res.MaxDepth = len(trace)
			}
			if inv, detail := cw.invariantViolation(); inv != "" {
				res.Violation = &Violation{Invariant: inv, Detail: detail, Trace: trace}
				return res, nil
			}
			key := string(cw.fingerprint())
			if _, seen := visited[key]; seen {
				continue
			}
			if res.States >= uint64(maxStates) {
				res.Bounded = true
				continue
			}
			visited[key] = struct{}{}
			res.States++
			if cw.engine.Pending() == 0 {
				res.Quiescent++
			}
			frontier = append(frontier, node{trace: trace, choices: cw.choices()})
		}
	}
	return res, nil
}

// validate rejects configurations the checker cannot exhaust.
func validate(cfg Config) error {
	if err := cfg.Spec.Validate(); err != nil {
		return err
	}
	if cfg.Nodes < 2 || cfg.Nodes > 8 {
		return fmt.Errorf("mc: %d nodes; exhaustive checking needs 2..8", cfg.Nodes)
	}
	if cfg.Blocks < 1 || cfg.Blocks > 4 {
		return fmt.Errorf("mc: %d blocks; exhaustive checking needs 1..4", cfg.Blocks)
	}
	if cfg.MaxOps < 1 {
		return fmt.Errorf("mc: operation budget %d; need at least 1", cfg.MaxOps)
	}
	return nil
}

// replay reconstructs the state reached by a trace on a fresh machine.
func replay(cfg Config, trace []Choice) (*world, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range trace {
		w.apply(c)
	}
	return w, nil
}
