package mc

import (
	"strings"
	"testing"

	"swex/internal/proto"
)

// TestWatchSpectrumSmoke exhausts the smoke configuration with the Watch
// producer–consumer alphabet enabled, for every protocol in the spectrum,
// pinning the reachable-state counts. Watch is the only action that can
// leave an incomplete operation at quiescence (a parked consumer waiting
// on a producer that never came), so these runs also exercise the
// watcher-aware quiescence ledger and the lost-wakeup invariant on every
// quiescent state.
func TestWatchSpectrumSmoke(t *testing.T) {
	golden := map[string]Result{
		"DirnH0SNB,ACK":  {States: 11228, Transitions: 18149, MaxDepth: 27, Quiescent: 158},
		"DirnH1SNB,ACK":  {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnH1SNB,LACK": {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnH1SNB":      {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnH2SNB":      {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnH3SNB":      {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnH4SNB":      {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnH5SNB":      {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"DirnHNBS-":      {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
		"Dir1H1SB,LACK":  {States: 7544, Transitions: 12790, MaxDepth: 19, Quiescent: 105},
	}
	for _, spec := range append(proto.Spectrum(), proto.Dir1SW()) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := smoke(spec)
			cfg.Watch = true
			res, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				text, _ := Explain(cfg, res.Violation)
				t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
			}
			if res.Bounded {
				t.Fatalf("state space not exhausted at %d states", res.States)
			}
			want, ok := golden[spec.Name]
			if !ok {
				t.Fatalf("no golden for %s (got %d states, %d transitions, depth %d, %d quiescent)",
					spec.Name, res.States, res.Transitions, res.MaxDepth, res.Quiescent)
			}
			if res.States != want.States || res.Transitions != want.Transitions ||
				res.MaxDepth != want.MaxDepth || res.Quiescent != want.Quiescent {
				t.Fatalf("reachable-state counts moved: got %d states, %d transitions, depth %d, %d quiescent; want %d, %d, %d, %d",
					res.States, res.Transitions, res.MaxDepth, res.Quiescent,
					want.States, want.Transitions, want.MaxDepth, want.Quiescent)
			}
		})
	}
}

// TestWatchSameNodeProducer pins the local-wakeup path directly at the
// proto layer's contract: a consumer parked on a block wakes when a
// producer *on the same node* commits a store to it. The store is an
// exclusive-hit commit — no invalidation is generated — so the wakeup has
// to come from the cache controller's local-commit hook; losing it would
// surface as a lost-wakeup violation here.
func TestWatchSameNodeProducer(t *testing.T) {
	cfg := Config{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 3, Watch: true}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		text, _ := Explain(cfg, res.Violation)
		t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
	}
}

// TestWatchDropInvCounterexample seeds the lost-invalidation bug under a
// producer–consumer alphabet: with reads excluded, the only way a block
// becomes shared is a consumer's watch, so the BFS-shortest
// counterexample necessarily runs through the watch path, and the
// violation detail must name the watched block and the waiting node.
func TestWatchDropInvCounterexample(t *testing.T) {
	cfg := Config{
		Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 3,
		Actions: []Action{ActWrite, ActWatch},
	}
	// Drop the first invalidation that precedes any write grant. An
	// unscoped drop is also caught, but its BFS-shortest counterexample
	// is a recall INV lost after a completed write — a quiescence
	// violation with no watcher involved. An INV sent while no WDATA has
	// ever been granted can only be invalidating a consumer's
	// watch-established Shared copy, so this scoping forces the
	// counterexample through the producer–consumer race proper.
	cfg.Fault = func() func(proto.Msg) bool {
		dropped, granted := false, false
		return func(m proto.Msg) bool {
			if m.Kind == proto.MsgWDATA {
				granted = true
			}
			if m.Kind == proto.MsgINV && !granted && !dropped {
				dropped = true
				return true
			}
			return false
		}
	}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("dropped invalidation not caught under the watch alphabet")
	}
	if res.Violation.Invariant != "agreement" {
		t.Fatalf("caught as %q, want agreement", res.Violation.Invariant)
	}
	var sawWatch bool
	for _, c := range res.Violation.Trace {
		if !c.Step && c.Op.Act == ActWatch {
			sawWatch = true
		}
	}
	if !sawWatch {
		t.Fatalf("shortest counterexample does not go through a watch: %v", res.Violation.Trace)
	}
	if !strings.Contains(res.Violation.Detail, "watcher on block") {
		t.Fatalf("violation detail does not name the stranded watcher: %s", res.Violation.Detail)
	}
	text, err := Explain(cfg, res.Violation)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"watch", "drop INV", "watcher on block"} {
		if !strings.Contains(text, want) {
			t.Fatalf("counterexample transcript missing %q:\n%s", want, text)
		}
	}
	t.Logf("trace length %d\n%s", len(res.Violation.Trace), text)
}

// TestMixedSpecMachine checks per-block Configure enumeration: a machine
// whose boot-time spec is five-pointer LimitLESS runs one block under a
// full-map override and one under one-pointer LimitLESS — three protocol
// engines on one directory fabric — against the same invariants.
func TestMixedSpecMachine(t *testing.T) {
	cfg := Config{
		Spec:      proto.LimitLESS(5),
		Nodes:     2,
		Blocks:    2,
		MaxOps:    2,
		Overrides: []proto.Spec{proto.FullMap(), proto.LimitLESS(1)},
	}
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		text, _ := Explain(cfg, res.Violation)
		t.Fatalf("invariant violated: %s\n%s", res.Violation, text)
	}
	if res.Bounded {
		t.Fatal("state space not exhausted")
	}
}

// TestOverrideValidation checks that inexpressible overrides are rejected
// exactly as on the real machine: a software-only override needs the
// machine's software to be the software-only handler set, and a machine
// without software at all cannot host any software-backed override.
func TestOverrideValidation(t *testing.T) {
	cases := []Config{
		// Software-only override on a LimitLESS machine: incompatible handler sets.
		{Spec: proto.LimitLESS(5), Nodes: 2, Blocks: 1, MaxOps: 1,
			Overrides: []proto.Spec{proto.SoftwareOnly()}},
		// LimitLESS override on a full-map machine: no software installed.
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 1,
			Overrides: []proto.Spec{proto.LimitLESS(2)}},
		// More overrides than blocks.
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 1,
			Overrides: []proto.Spec{{}, proto.FullMap()}},
	}
	for _, cfg := range cases {
		if _, err := Check(cfg); err == nil {
			t.Errorf("Check(%+v) accepted an inexpressible override", cfg)
		}
	}
}

// TestAlphabetValidation exercises Config.Actions rejection.
func TestAlphabetValidation(t *testing.T) {
	cases := []Config{
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 1, Actions: []Action{}},
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 1, Actions: []Action{Action(99)}},
		{Spec: proto.FullMap(), Nodes: 2, Blocks: 1, MaxOps: 1, Actions: []Action{ActRead, ActRead}},
	}
	for _, cfg := range cases {
		if _, err := Check(cfg); err == nil {
			t.Errorf("Check(%+v) accepted an invalid alphabet", cfg)
		}
	}
}
