package trace

import "swex/internal/sim"

// Category classifies a span by the machine resource it occupies. The
// attribution pass maps categories to latency components.
type Category uint8

// Span categories.
const (
	// CatProc is processor time: user compute and instruction fetch.
	CatProc Category = iota
	// CatMemOp is a whole memory-transaction window on the requesting
	// node, from request issue to cache fill. It is the flow root and is
	// not itself a latency component.
	CatMemOp
	// CatCache is cache-controller time: BUSY retry backoff.
	CatCache
	// CatNetQueue is time spent waiting in a mesh transmit or receive
	// queue — the paper's contention point.
	CatNetQueue
	// CatNetTransit is serialization and switch-to-switch flight time.
	CatNetTransit
	// CatHWDir is hardware directory time: the home CMMU's processing
	// pipeline and the DRAM access feeding a data reply.
	CatHWDir
	// CatSWHandler is protocol extension software occupancy on the home
	// node's processor.
	CatSWHandler
	// CatActivity is one per-activity segment nested inside a handler
	// span (stats.Activity resolution, as in the paper's Table 2).
	CatActivity
	// CatEngine is simulator-internal instrumentation (counter samples
	// from the event dispatch loop).
	CatEngine
	// CatMemTier is memory-hierarchy time behind the directory: far-tier
	// transit and queueing for disaggregated memory, DRAM/NVM device and
	// channel time for tiered memory (internal/memtier). Appended after
	// CatEngine so existing numeric exports keep their values.
	CatMemTier

	// NumCategories bounds the enum.
	NumCategories
)

// String names the category for exports.
func (c Category) String() string {
	switch c {
	case CatProc:
		return "proc"
	case CatMemOp:
		return "mem-op"
	case CatCache:
		return "cache"
	case CatNetQueue:
		return "net-queue"
	case CatNetTransit:
		return "net-transit"
	case CatHWDir:
		return "hw-dir"
	case CatSWHandler:
		return "sw-handler"
	case CatActivity:
		return "activity"
	case CatEngine:
		return "engine"
	case CatMemTier:
		return "mem-tier"
	case NumCategories:
		panic("trace: NumCategories is not a category")
	default:
		panic("trace: unknown category")
	}
}

// Op identifies what a span represents within its category.
type Op uint8

// Span operations.
const (
	// OpCompute is a user-compute reservation on a node's processor.
	OpCompute Op = iota
	// OpIfetch is an instruction-fetch stall.
	OpIfetch
	// OpMemRead is a completed read-transaction window (CatMemOp).
	OpMemRead
	// OpMemWrite is a completed write-transaction window (CatMemOp).
	OpMemWrite
	// OpRetryWait is the backoff window after a BUSY reply.
	OpRetryWait
	// OpTxQueue is time queued behind the source node's injection port.
	OpTxQueue
	// OpRxQueue is time queued at the destination's receive port.
	OpRxQueue
	// OpDRAM is the memory access and cache-fill occupancy charged before
	// a data reply is injected.
	OpDRAM
	// OpWire is serialization plus switch-to-switch flight.
	OpWire
	// OpRecv is receive-side serialization.
	OpRecv
	// OpHomeProc is the home CMMU's hardware processing of one message.
	OpHomeProc
	// OpHandler is one software-handler execution.
	OpHandler
	// OpActivity is one activity segment inside a handler.
	OpActivity
	// OpPending is an engine counter sample (Arg = pending events).
	OpPending
	// OpTierAccess is one directory-side memory access served by the
	// memory-hierarchy model (CatMemTier). Arg is the block; the span
	// covers queueing plus device/transit time.
	OpTierAccess

	// NumOps bounds the enum.
	NumOps
)

// String names the operation for exports.
func (o Op) String() string {
	switch o {
	case OpCompute:
		return "compute"
	case OpIfetch:
		return "ifetch"
	case OpMemRead:
		return "read"
	case OpMemWrite:
		return "write"
	case OpRetryWait:
		return "retry-wait"
	case OpTxQueue:
		return "tx-queue"
	case OpRxQueue:
		return "rx-queue"
	case OpDRAM:
		return "dram"
	case OpWire:
		return "wire"
	case OpRecv:
		return "recv"
	case OpHomeProc:
		return "home-proc"
	case OpHandler:
		return "handler"
	case OpActivity:
		return "activity"
	case OpPending:
		return "pending"
	case OpTierAccess:
		return "tier-access"
	case NumOps:
		panic("trace: NumOps is not an op")
	default:
		panic("trace: unknown op")
	}
}

// Event is one span on a node's timeline. Instant events (counter
// samples) have End == Start.
type Event struct {
	// Start and End bound the span in simulated cycles.
	Start, End sim.Cycle
	// Txn is the memory-transaction flow id (0 = unaffiliated).
	Txn uint64
	// Seq is the network-message sequence number grouping the component
	// spans of one message (0 = not a message component).
	Seq uint64
	// Arg is the op-specific detail: block number for memory and message
	// spans, reserved cycles for compute, pending count for counters.
	Arg int64
	// Node owns the timeline the span renders on (-1 = the engine).
	Node int32
	// Peer is the other endpoint of a message span (-1 otherwise).
	Peer int32
	// Cat classifies the occupied resource.
	Cat Category
	// Op identifies the span within its category.
	Op Op
	// Name is a short constant label ("RREQ", "write-fault", an
	// activity name). Emitters must pass constant or interned strings so
	// enabling tracing does not allocate per event.
	Name string
}

// Sink receives every emitted event. Implementations must be cheap: the
// hooks sit on simulator hot paths. A nil Sink disables tracing with no
// behavioral or allocation cost.
type Sink interface {
	// Emit records one event. Events arrive in deterministic emission
	// order but are not sorted by Start: spans are emitted when their
	// timing is known, which may be before the span ends.
	Emit(e Event)
}

// Collector is the default Sink: an append-only buffer, optionally
// bounded to a ring of the most recent events.
type Collector struct {
	events []Event
	limit  int // 0 = unbounded
	head   int // ring start when len(events) == limit
	total  uint64
}

// NewCollector returns an unbounded collector.
func NewCollector() *Collector { return &Collector{} }

// NewRing returns a collector retaining only the most recent limit
// events. Limit must be positive.
func NewRing(limit int) *Collector {
	if limit <= 0 {
		panic("trace: ring limit must be positive")
	}
	return &Collector{limit: limit}
}

// Emit implements Sink.
func (c *Collector) Emit(e Event) {
	c.total++
	if c.limit > 0 && len(c.events) == c.limit {
		c.events[c.head] = e
		c.head++
		if c.head == c.limit {
			c.head = 0
		}
		return
	}
	c.events = append(c.events, e)
}

// Events returns the retained events in emission order.
func (c *Collector) Events() []Event {
	out := make([]Event, 0, len(c.events))
	out = append(out, c.events[c.head:]...)
	out = append(out, c.events[:c.head]...)
	return out
}

// Total reports how many events were emitted, including any dropped by a
// bounded ring.
func (c *Collector) Total() uint64 { return c.total }
