// Package trace is the simulator's structured observability subsystem: a
// near-zero-cost-when-disabled span collector threaded through the whole
// stack (engine dispatch, mesh queues, processor intervals, protocol
// message lifecycles, and software-handler activities), plus a
// critical-path attribution pass and exporters (Chrome/Perfetto trace
// JSON and a plain-text aggregate profile).
//
// Every event is a span [Start, End] in simulated cycles on one node's
// timeline, tagged with a category (the machine resource occupied), an
// operation code, and a small fixed argument set. Two correlation ids tie
// events together:
//
//   - Txn groups every span caused by one memory transaction (the cache
//     miss window, the request/data/INV/ACK messages, the home directory
//     occupancy, and the software handlers it trapped), so a whole miss
//     is one flow in the exported trace.
//   - Seq groups the component spans of one network message (transmit
//     queueing, DRAM occupancy, wire time, receive queueing).
//
// The package is part of the deterministic simulation core: identical
// runs emit identical event sequences, and the exporters are written so
// identical event sequences produce byte-identical output.
package trace
