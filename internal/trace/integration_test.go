package trace_test

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"swex/internal/apps"
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/stats"
	"swex/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace fixtures")

// runWorker runs the WORKER benchmark on a traced (or untraced) machine.
func runWorker(t testing.TB, sink trace.Sink, nodes, set, iters int, spec proto.Spec) machine.Result {
	t.Helper()
	m, err := machine.New(machine.Config{Nodes: nodes, Spec: spec, Trace: sink})
	if err != nil {
		t.Fatal(err)
	}
	inst := apps.Worker(apps.WorkerParams{SetSize: set, Iters: iters}).Setup(m)
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTraceDeterminism is the subsystem's core contract: two identical
// runs must export byte-identical Perfetto JSON.
func TestTraceDeterminism(t *testing.T) {
	var exports [2]bytes.Buffer
	for i := range exports {
		sink := trace.NewCollector()
		runWorker(t, sink, 8, 4, 3, proto.LimitLESS(2))
		if err := trace.WritePerfetto(&exports[i], sink.Events(), 8); err != nil {
			t.Fatal(err)
		}
	}
	if exports[0].Len() == 0 {
		t.Fatal("empty export")
	}
	if !bytes.Equal(exports[0].Bytes(), exports[1].Bytes()) {
		t.Fatal("identical runs exported different traces")
	}
}

// TestDisabledTracingChangesNothing checks the zero-cost-when-disabled
// contract on the simulation itself: installing a sink must not move a
// single cycle or message count.
func TestDisabledTracingChangesNothing(t *testing.T) {
	off := runWorker(t, nil, 8, 4, 3, proto.LimitLESS(2))
	on := runWorker(t, trace.NewCollector(), 8, 4, 3, proto.LimitLESS(2))
	if off.Time != on.Time {
		t.Fatalf("tracing moved the run time: %d vs %d cycles", off.Time, on.Time)
	}
	if off.Messages != on.Messages || off.Traps != on.Traps || off.BusyRetries != on.BusyRetries {
		t.Fatalf("tracing moved the counters: msgs %d/%d traps %d/%d retries %d/%d",
			off.Messages, on.Messages, off.Traps, on.Traps, off.BusyRetries, on.BusyRetries)
	}
}

// golden2Node runs a fixed two-node scenario under the software-only
// directory (every remote request traps, so the tiny trace exercises every
// span category) and returns its Perfetto export.
func golden2Node(t *testing.T) []byte {
	t.Helper()
	sink := trace.NewCollector()
	m, err := machine.New(machine.Config{Nodes: 2, Spec: proto.SoftwareOnly(), Trace: sink})
	if err != nil {
		t.Fatal(err)
	}
	shared := m.Mem.AllocOn(0, mem.WordsPerBlock)
	prog := func(e *proc.Env) {
		if e.ID() == 0 {
			e.Write(shared, 7)
			e.Compute(20)
			e.Read(shared)
		} else {
			e.Read(shared)
			e.Write(shared, 9)
		}
	}
	if _, err := m.Run(prog, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WritePerfetto(&buf, sink.Events(), 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenPerfetto2Node pins the exporter's exact output for a tiny
// two-node run. Regenerate with -update after intentional format changes.
func TestGoldenPerfetto2Node(t *testing.T) {
	got := golden2Node(t)
	path := filepath.Join("testdata", "golden_2node.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("export drifted from golden %s (%d vs %d bytes); run with -update if intentional",
			path, len(got), len(want))
	}
}

// TestProfileMatchesTable2 ties the trace-derived profile to the paper's
// Table 2 and to the run's own handler ledger, on the Table 2 measurement
// configuration (WORKER, 16 nodes, Dir_nH_5S_NB, flexible C software).
func TestProfileMatchesTable2(t *testing.T) {
	sink := trace.NewCollector()
	res := runWorker(t, sink, 16, 8, 10, proto.LimitLESS(5))
	prof := trace.Summarize(trace.Attribute(sink.Events()))

	within := func(what string, got, want, tol float64) {
		t.Helper()
		if want == 0 || math.Abs(got-want)/want > tol {
			t.Errorf("%s = %.1f, want within %.0f%% of %.1f", what, got, 100*tol, want)
		}
	}

	// The write handler runs inside the requester's miss window, so both
	// the critical-path and the work views must land on the paper's 737-
	// cycle Table 2 write total (the run's median write walks the full
	// 8-reader worker set, the Table 2 shape).
	wr := prof.Row("write (sw)")
	if wr == nil {
		t.Fatal("no software-write transactions in the Table 2 run")
	}
	within("write (sw) critical-path sw-handler", wr.MeanPath(trace.CompSWHandler), 737, 0.05)
	within("write (sw) work sw-handler", wr.MeanWork(trace.CompSWHandler), 737, 0.05)

	// LimitLESS read handlers outlive the miss window (hardware sends the
	// data before the trap finishes recording sharers), so the full
	// handler cost appears in the work view; it must agree with the
	// run's own ledger, and sit between the paper's 193-cycle assembly
	// and 480-cycle C read totals near the C figure.
	rd := prof.Row("read (sw)")
	if rd == nil {
		t.Fatal("no software-read transactions in the Table 2 run")
	}
	within("read (sw) work sw-handler vs ledger",
		rd.MeanWork(trace.CompSWHandler), res.Ledger.Mean(stats.ReadRequest, -1), 0.05)
	within("read (sw) work sw-handler vs Table 2 C read", rd.MeanWork(trace.CompSWHandler), 480, 0.10)

	// Ledger cross-check for writes too: attribution must reproduce what
	// the handlers actually charged, not merely something plausible.
	within("write (sw) work sw-handler vs ledger",
		wr.MeanWork(trace.CompSWHandler), res.Ledger.Mean(stats.WriteRequest, -1), 0.05)
}

// Benchmarks for the tracing overhead claim: the disabled configuration is
// the seed hot path (one nil branch per hook); the enabled one shows the
// collector's cost. Compare with:
//
//	go test -run '^$' -bench 'Tracing' -benchmem ./internal/trace/
func benchWorker(b *testing.B, sink trace.Sink) {
	for i := 0; i < b.N; i++ {
		m, err := machine.New(machine.Config{Nodes: 4, Spec: proto.LimitLESS(2), Trace: sink})
		if err != nil {
			b.Fatal(err)
		}
		inst := apps.Worker(apps.WorkerParams{SetSize: 3, Iters: 2}).Setup(m)
		if _, err := m.Run(inst.Thread, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracingDisabled(b *testing.B) {
	b.ReportAllocs()
	benchWorker(b, nil)
}

func BenchmarkTracingEnabled(b *testing.B) {
	b.ReportAllocs()
	benchWorker(b, trace.NewCollector())
}
