package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCollectorKeepsEmissionOrder(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.Emit(Event{Arg: int64(i)})
	}
	evs := c.Events()
	if len(evs) != 5 || c.Total() != 5 {
		t.Fatalf("got %d events, total %d; want 5, 5", len(evs), c.Total())
	}
	for i, e := range evs {
		if e.Arg != int64(i) {
			t.Fatalf("event %d has arg %d", i, e.Arg)
		}
	}
}

func TestRingRetainsMostRecent(t *testing.T) {
	c := NewRing(3)
	for i := 0; i < 7; i++ {
		c.Emit(Event{Arg: int64(i)})
	}
	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Arg != int64(4+i) {
			t.Fatalf("ring slot %d has arg %d, want %d", i, e.Arg, 4+i)
		}
	}
	if c.Total() != 7 {
		t.Fatalf("total = %d, want 7", c.Total())
	}
}

func TestNewRingRejectsNonPositiveLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestEnumStringsAreTotal(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("category %d has empty or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	seen = map[string]bool{}
	for o := Op(0); o < NumOps; o++ {
		s := o.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has empty or duplicate name %q", o, s)
		}
		seen[s] = true
	}
	seen = map[string]bool{}
	for c := Component(0); c < NumComponents; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("component %d has empty or duplicate name %q", c, s)
		}
		seen[s] = true
		c.priority() // must not panic
	}
}

// synthetic window: txn 1, read of block 9 on node 0, cycles 100..200.
//
//	net-transit 100..150, net-queue 110..120 (overlaps transit, higher
//	priority), sw-handler 150..190, nothing 190..200.
func syntheticEvents() []Event {
	return []Event{
		{Start: 100, End: 200, Txn: 1, Arg: 9, Node: 0, Peer: -1, Cat: CatMemOp, Op: OpMemRead, Name: "read"},
		{Start: 100, End: 150, Txn: 1, Seq: 1, Arg: 9, Node: 0, Peer: 1, Cat: CatNetTransit, Op: OpWire, Name: "RREQ"},
		{Start: 110, End: 120, Txn: 1, Seq: 1, Arg: 9, Node: 0, Peer: 1, Cat: CatNetQueue, Op: OpRxQueue, Name: "RREQ"},
		{Start: 150, End: 190, Txn: 1, Arg: 9, Node: 1, Peer: -1, Cat: CatSWHandler, Op: OpHandler, Name: "read-overflow"},
	}
}

func TestAttributeSplitsWindow(t *testing.T) {
	recs := Attribute(syntheticEvents())
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Txn != 1 || r.Write || r.Block != 9 || r.Latency() != 100 {
		t.Fatalf("record mis-built: %+v", r)
	}
	wantPath := map[Component]int{
		CompNetTransit: 40, // 100..110 and 120..150
		CompNetQueue:   10, // 110..120 outranks the transit span under it
		CompSWHandler:  40, // 150..190
		CompOther:      10, // 190..200 uncovered
	}
	var sum int
	for c := Component(0); c < NumComponents; c++ {
		if got := int(r.Path[c]); got != wantPath[c] {
			t.Errorf("Path[%s] = %d, want %d", c, got, wantPath[c])
		}
		sum += int(r.Path[c])
	}
	if sum != int(r.Latency()) {
		t.Fatalf("path components sum to %d, want the %d-cycle latency", sum, r.Latency())
	}
	if r.Work[CompNetTransit] != 50 || r.Work[CompNetQueue] != 10 || r.Work[CompSWHandler] != 40 {
		t.Fatalf("work sums wrong: %v", r.Work)
	}
}

func TestAttributeUnclippedWork(t *testing.T) {
	// A handler outliving the window (the LimitLESS read shape): the
	// critical path only sees the covered part, the work sum sees it all.
	evs := []Event{
		{Start: 100, End: 200, Txn: 1, Arg: 9, Node: 0, Peer: -1, Cat: CatMemOp, Op: OpMemRead, Name: "read"},
		{Start: 150, End: 400, Txn: 1, Arg: 9, Node: 1, Peer: -1, Cat: CatSWHandler, Op: OpHandler, Name: "read-overflow"},
	}
	r := Attribute(evs)[0]
	if r.Path[CompSWHandler] != 50 {
		t.Fatalf("clipped path handler = %d, want 50", r.Path[CompSWHandler])
	}
	if r.Work[CompSWHandler] != 250 {
		t.Fatalf("unclipped work handler = %d, want 250", r.Work[CompSWHandler])
	}
}

func TestAttributeOrdersByWindowStart(t *testing.T) {
	evs := []Event{
		{Start: 500, End: 600, Txn: 2, Node: 1, Peer: -1, Cat: CatMemOp, Op: OpMemWrite, Name: "write"},
		{Start: 100, End: 200, Txn: 7, Node: 0, Peer: -1, Cat: CatMemOp, Op: OpMemRead, Name: "read"},
	}
	recs := Attribute(evs)
	if len(recs) != 2 || recs[0].Txn != 7 || recs[1].Txn != 2 {
		t.Fatalf("records out of order: %+v", recs)
	}
	if !recs[1].Write {
		t.Fatal("write window not classed as write")
	}
}

func TestSummarizeClasses(t *testing.T) {
	recs := Attribute(syntheticEvents())
	p := Summarize(recs)
	if len(p.Rows) != 1 || p.Rows[0].Label != "read (sw)" {
		t.Fatalf("got rows %+v, want one read (sw) row", p.Rows)
	}
	row := p.Row("read (sw)")
	if row == nil || row.N != 1 || row.MeanLatency() != 100 {
		t.Fatalf("row mis-aggregated: %+v", row)
	}
	if row.MeanPath(CompSWHandler) != 40 || row.MeanWork(CompSWHandler) != 40 {
		t.Fatalf("handler means wrong: path %v work %v",
			row.MeanPath(CompSWHandler), row.MeanWork(CompSWHandler))
	}
	if p.Row("write (hw)") != nil {
		t.Fatal("empty class not dropped")
	}
	if p.PathTable().Rows() != 1 || p.WorkTable().Rows() != 1 {
		t.Fatal("tables do not render one row per class")
	}
}

func TestPerfettoExportIsValidJSONAndDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, syntheticEvents(), 2); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, syntheticEvents(), 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same events differ")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] == 0 || phases["X"] == 0 {
		t.Fatalf("missing metadata or slices: %v", phases)
	}
	if phases["b"] == 0 || phases["b"] != phases["e"] {
		t.Fatalf("unbalanced async message spans: %v", phases)
	}
	if phases["s"] == 0 || phases["f"] == 0 {
		t.Fatalf("transaction flow events missing: %v", phases)
	}
}
