package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"swex/internal/sim"
)

// WritePerfetto renders the events as Chrome trace-event JSON, loadable
// in ui.perfetto.dev (or chrome://tracing). The layout:
//
//   - one process per node, with one thread per resource: proc (compute,
//     ifetch), mem (transaction windows, retry backoff), cmmu (hardware
//     directory processing), handlers (software handlers with nested
//     activity segments), and net (per-message async spans grouped from
//     the message's queue/DRAM/wire component events);
//   - one extra "engine" process carrying the pending-event counter;
//   - flow events with id = transaction id connecting each transaction's
//     window, home-directory, and handler slices, so a whole miss reads
//     as one flow.
//
// Timestamps and durations are raw simulated cycles printed as integers
// (the JSON declares no time unit), so identical event sequences produce
// byte-identical output.
func WritePerfetto(w io.Writer, events []Event, nodes int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"traceEvents\":[")
	first := true
	item := func(format string, args ...any) {
		if first {
			fmt.Fprintf(bw, "\n")
			first = false
		} else {
			fmt.Fprintf(bw, ",\n")
		}
		fmt.Fprintf(bw, format, args...)
	}

	writeMetadata(item, nodes)

	// Deterministic render order: by span start, emission order breaking
	// ties.
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return events[order[i]].Start < events[order[j]].Start
	})

	writeSlices(item, events, order)
	writeMessages(item, events, order)
	writeCounters(item, events, order, nodes)

	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// Thread ids within a node's process.
const (
	tidProc     = 0
	tidMem      = 1
	tidCMMU     = 2
	tidHandlers = 3
	tidNet      = 4
)

// tidOf places a slice event on its node's thread. Message components
// and counters are rendered separately and never reach here.
func tidOf(e *Event) int {
	switch e.Cat {
	case CatProc:
		return tidProc
	case CatMemOp, CatCache:
		return tidMem
	case CatHWDir, CatMemTier:
		return tidCMMU
	case CatSWHandler, CatActivity:
		return tidHandlers
	case CatNetQueue, CatNetTransit, CatEngine:
		panic("trace: category has no slice thread")
	case NumCategories:
		panic("trace: NumCategories is not a category")
	default:
		panic("trace: unknown category")
	}
}

func writeMetadata(item func(string, ...any), nodes int) {
	threads := [...]string{tidProc: "proc", tidMem: "mem", tidCMMU: "cmmu", tidHandlers: "handlers", tidNet: "net"}
	for pid := 0; pid < nodes; pid++ {
		item(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"node%d"}}`, pid, pid)
		item(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`, pid, pid)
		for tid, name := range threads {
			item(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`, pid, tid, name)
			item(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, pid, tid, tid)
		}
	}
	item(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"engine"}}`, nodes)
	item(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`, nodes, nodes)
}

// isSlice reports whether the event renders as a synchronous "X" slice
// on a node thread (as opposed to a message component or a counter).
func isSlice(e *Event) bool {
	if e.Seq != 0 || e.Op == OpPending {
		return false
	}
	switch e.Cat {
	case CatProc, CatMemOp, CatCache, CatHWDir, CatSWHandler, CatActivity, CatMemTier:
		return true
	case CatNetQueue, CatNetTransit, CatEngine:
		return false
	case NumCategories:
		panic("trace: NumCategories is not a category")
	default:
		panic("trace: unknown category")
	}
}

// flowStep marks whether a transaction's flow starts, steps, or
// finishes at a given slice.
type flowStep uint8

const (
	flowNone flowStep = iota
	flowStart
	flowMid
	flowEnd
)

// flowSteps assigns flow roles to the transaction-correlated anchor
// slices (the window, home-directory, and handler spans) of every
// transaction that has at least two of them, in render order.
func flowSteps(events []Event, order []int) map[int]flowStep {
	anchors := make(map[uint64][]int)
	for _, idx := range order {
		e := &events[idx]
		if e.Txn == 0 || !isSlice(e) {
			continue
		}
		if e.Op == OpMemRead || e.Op == OpMemWrite || e.Op == OpHomeProc || e.Op == OpHandler {
			anchors[e.Txn] = append(anchors[e.Txn], idx)
		}
	}
	steps := make(map[int]flowStep)
	txns := make([]uint64, 0, len(anchors))
	for id := range anchors {
		txns = append(txns, id)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	for _, id := range txns {
		idxs := anchors[id]
		if len(idxs) < 2 {
			continue
		}
		for i, idx := range idxs {
			switch {
			case i == 0:
				steps[idx] = flowStart
			case i == len(idxs)-1:
				steps[idx] = flowEnd
			default:
				steps[idx] = flowMid
			}
		}
	}
	return steps
}

func writeSlices(item func(string, ...any), events []Event, order []int) {
	steps := flowSteps(events, order)
	for _, idx := range order {
		e := &events[idx]
		if !isSlice(e) {
			continue
		}
		tid := tidOf(e)
		argName := "block"
		switch e.Op {
		case OpCompute, OpIfetch:
			argName = "cycles"
		case OpMemRead, OpMemWrite, OpRetryWait, OpHomeProc, OpHandler, OpActivity, OpTierAccess:
			// block
		case OpTxQueue, OpRxQueue, OpDRAM, OpWire, OpRecv, OpPending:
			panic("trace: op does not render as a slice")
		case NumOps:
			panic("trace: NumOps is not an op")
		default:
			panic("trace: unknown op")
		}
		item(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"cat":"%s","name":"%s","args":{"txn":%d,"%s":%d}}`,
			e.Node, tid, uint64(e.Start), uint64(e.End-e.Start), e.Cat, jsonEscape(e.Name), e.Txn, argName, e.Arg)
		switch steps[idx] {
		case flowNone:
		case flowStart:
			item(`{"ph":"s","pid":%d,"tid":%d,"ts":%d,"cat":"txn","name":"txn","id":%d}`, e.Node, tid, uint64(e.Start), e.Txn)
		case flowMid:
			item(`{"ph":"t","pid":%d,"tid":%d,"ts":%d,"cat":"txn","name":"txn","id":%d}`, e.Node, tid, uint64(e.Start), e.Txn)
		case flowEnd:
			item(`{"ph":"f","bp":"e","pid":%d,"tid":%d,"ts":%d,"cat":"txn","name":"txn","id":%d}`, e.Node, tid, uint64(e.Start), e.Txn)
		}
	}
}

// msgAgg folds one message's component events back into a single
// lifecycle with a per-component breakdown.
type msgAgg struct {
	seq                        uint64
	start, end                 sim.Cycle
	txn                        uint64
	block                      int64
	src, dst                   int32
	name                       string
	txq, rxq, dram, wire, recv sim.Cycle
}

func writeMessages(item func(string, ...any), events []Event, order []int) {
	bysSeq := make(map[uint64]*msgAgg)
	var seqs []uint64 // first-seen order == deterministic render order
	for _, idx := range order {
		e := &events[idx]
		if e.Seq == 0 {
			continue
		}
		a := bysSeq[e.Seq]
		if a == nil {
			a = &msgAgg{seq: e.Seq, start: e.Start, end: e.End, txn: e.Txn,
				block: e.Arg, src: e.Node, dst: e.Peer, name: e.Name}
			bysSeq[e.Seq] = a
			seqs = append(seqs, e.Seq)
		}
		if e.Start < a.start {
			a.start = e.Start
		}
		if e.End > a.end {
			a.end = e.End
		}
		d := e.End - e.Start
		switch e.Op {
		case OpTxQueue:
			a.txq += d
		case OpRxQueue:
			a.rxq += d
		case OpDRAM:
			a.dram += d
		case OpWire:
			a.wire += d
		case OpRecv:
			a.recv += d
		case OpCompute, OpIfetch, OpMemRead, OpMemWrite, OpRetryWait,
			OpHomeProc, OpHandler, OpActivity, OpPending, OpTierAccess:
			panic("trace: op is not a message component")
		case NumOps:
			panic("trace: NumOps is not an op")
		default:
			panic("trace: unknown op")
		}
	}
	for _, seq := range seqs {
		a := bysSeq[seq]
		item(`{"ph":"b","pid":%d,"tid":%d,"ts":%d,"cat":"net","id":%d,"name":"%s","args":{"txn":%d,"block":%d,"src":%d,"dst":%d,"txq":%d,"dram":%d,"wire":%d,"rxq":%d,"recv":%d}}`,
			a.src, tidNet, uint64(a.start), a.seq, jsonEscape(a.name),
			a.txn, a.block, a.src, a.dst,
			uint64(a.txq), uint64(a.dram), uint64(a.wire), uint64(a.rxq), uint64(a.recv))
		item(`{"ph":"e","pid":%d,"tid":%d,"ts":%d,"cat":"net","id":%d,"name":"%s"}`,
			a.src, tidNet, uint64(a.end), a.seq, jsonEscape(a.name))
	}
}

func writeCounters(item func(string, ...any), events []Event, order []int, nodes int) {
	for _, idx := range order {
		e := &events[idx]
		if e.Op != OpPending {
			continue
		}
		item(`{"ph":"C","pid":%d,"tid":0,"ts":%d,"name":"%s","args":{"pending":%d}}`,
			nodes, uint64(e.Start), jsonEscape(e.Name), e.Arg)
	}
}

// jsonEscape guards the few dynamic strings (event names) against
// JSON-breaking characters; the fast path returns the input unchanged.
func jsonEscape(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			out = append(out, '\\', c)
		case c < 0x20:
			out = append(out, fmt.Sprintf("\\u%04x", c)...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
