package trace

import (
	"fmt"

	"swex/internal/report"
)

// ProfileRow aggregates one class of transactions: reads or writes,
// split by whether protocol extension software ran on the flow.
type ProfileRow struct {
	// Label names the class ("read (hw)", "write (sw)", ...).
	Label string
	// N counts the transactions aggregated.
	N int
	// Latency is the total observed latency in cycles.
	Latency uint64
	// Path totals the critical-path split (sums to Latency).
	Path [NumComponents]uint64
	// Work totals the per-flow component work (unclipped).
	Work [NumComponents]uint64
}

// MeanLatency reports the class's mean observed latency.
func (r *ProfileRow) MeanLatency() float64 { return mean(r.Latency, r.N) }

// MeanPath reports the mean critical-path cycles of one component.
func (r *ProfileRow) MeanPath(c Component) float64 { return mean(r.Path[c], r.N) }

// MeanWork reports the mean per-flow work cycles of one component.
func (r *ProfileRow) MeanWork(c Component) float64 { return mean(r.Work[c], r.N) }

func mean(total uint64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Profile is the aggregate of an attribution pass.
type Profile struct {
	// Rows holds the non-empty transaction classes in fixed order.
	Rows []ProfileRow
}

// Summarize groups attribution records into profile rows. Transactions
// are classed read/write and hw/sw (sw = any software-handler work on
// the flow), mirroring the paper's hardware-vs-software split.
func Summarize(recs []TxnRecord) Profile {
	classes := [4]ProfileRow{
		{Label: "read (hw)"},
		{Label: "read (sw)"},
		{Label: "write (hw)"},
		{Label: "write (sw)"},
	}
	for i := range recs {
		rec := &recs[i]
		cls := 0
		if rec.Write {
			cls = 2
		}
		if rec.Work[CompSWHandler] > 0 {
			cls++
		}
		row := &classes[cls]
		row.N++
		row.Latency += uint64(rec.Latency())
		for c := Component(0); c < NumComponents; c++ {
			row.Path[c] += uint64(rec.Path[c])
			row.Work[c] += uint64(rec.Work[c])
		}
	}
	var p Profile
	for _, row := range classes {
		if row.N > 0 {
			p.Rows = append(p.Rows, row)
		}
	}
	return p
}

// Row finds a class by label (nil if absent or empty).
func (p *Profile) Row(label string) *ProfileRow {
	for i := range p.Rows {
		if p.Rows[i].Label == label {
			return &p.Rows[i]
		}
	}
	return nil
}

// PathTable renders the mean critical-path split per transaction class:
// where the cycles of an observed miss latency go. Components sum to the
// mean latency by construction.
func (p *Profile) PathTable() *report.Table {
	return p.table("Critical-path split of observed latency (mean cycles per transaction)",
		(*ProfileRow).MeanPath)
}

// WorkTable renders the mean per-flow component work per transaction
// class: total cycles expended on behalf of the transaction, including
// work off the critical path (overlapped invalidations, handlers that
// outlive the window). The sw-handler column of the "(sw)" rows is the
// machine-level analogue of the paper's Table 2 handler totals.
func (p *Profile) WorkTable() *report.Table {
	return p.table("Per-flow component work (mean cycles per transaction)",
		(*ProfileRow).MeanWork)
}

func (p *Profile) table(title string, cell func(*ProfileRow, Component) float64) *report.Table {
	headers := []string{"class", "n", "latency"}
	for c := Component(0); c < NumComponents; c++ {
		headers = append(headers, c.String())
	}
	t := report.NewTable(title, headers...)
	for i := range p.Rows {
		row := &p.Rows[i]
		cells := []string{row.Label, fmt.Sprintf("%d", row.N), fmt.Sprintf("%.1f", row.MeanLatency())}
		for c := Component(0); c < NumComponents; c++ {
			cells = append(cells, fmt.Sprintf("%.1f", cell(row, c)))
		}
		t.AddRow(cells...)
	}
	return t
}
