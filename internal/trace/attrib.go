package trace

import (
	"sort"

	"swex/internal/sim"
)

// Component is one destination of the critical-path attribution pass: a
// machine-wide generalization of the paper's Table 2, splitting each
// observed transaction latency by the resource responsible for it.
type Component uint8

// Latency components.
const (
	// CompProcessor is requesting-processor time (issue, fetch).
	CompProcessor Component = iota
	// CompCache is cache-controller time (BUSY retry backoff).
	CompCache
	// CompNetQueue is mesh transmit/receive queueing.
	CompNetQueue
	// CompNetTransit is serialization and flight time.
	CompNetTransit
	// CompHWDir is home hardware-directory processing and DRAM.
	CompHWDir
	// CompSWHandler is protocol extension software execution.
	CompSWHandler
	// CompMemTier is memory-hierarchy time behind the directory: far-tier
	// transit and queueing or DRAM/NVM device time (internal/memtier).
	CompMemTier
	// CompOther is window time no traced span accounts for (handler
	// dispatch latency, same-cycle hand-offs).
	CompOther

	// NumComponents bounds the enum.
	NumComponents
)

// String names the component for reports.
func (c Component) String() string {
	switch c {
	case CompProcessor:
		return "processor"
	case CompCache:
		return "cache"
	case CompNetQueue:
		return "net-queue"
	case CompNetTransit:
		return "net-transit"
	case CompHWDir:
		return "hw-dir"
	case CompSWHandler:
		return "sw-handler"
	case CompMemTier:
		return "mem-tier"
	case CompOther:
		return "other"
	case NumComponents:
		panic("trace: NumComponents is not a component")
	default:
		panic("trace: unknown component")
	}
}

// priority orders components for the critical-path sweep: when spans
// overlap inside a transaction window, the cycle is charged to the most
// specific resource. Software handlers outrank the hardware directory,
// which outranks queueing, transit, cache, and processor time.
func (c Component) priority() int {
	switch c {
	case CompSWHandler:
		return 7
	case CompMemTier:
		return 6
	case CompHWDir:
		return 5
	case CompNetQueue:
		return 4
	case CompNetTransit:
		return 3
	case CompCache:
		return 2
	case CompProcessor:
		return 1
	case CompOther:
		return 0
	case NumComponents:
		panic("trace: NumComponents is not a component")
	default:
		panic("trace: unknown component")
	}
}

// componentOf maps a span category to the latency component it occupies.
// The second result is false for categories that are not components
// (transaction windows, nested activity segments, engine counters).
func componentOf(c Category) (Component, bool) {
	switch c {
	case CatProc:
		return CompProcessor, true
	case CatCache:
		return CompCache, true
	case CatNetQueue:
		return CompNetQueue, true
	case CatNetTransit:
		return CompNetTransit, true
	case CatHWDir:
		return CompHWDir, true
	case CatSWHandler:
		return CompSWHandler, true
	case CatMemTier:
		return CompMemTier, true
	case CatMemOp, CatActivity, CatEngine:
		return CompOther, false
	case NumCategories:
		panic("trace: NumCategories is not a category")
	default:
		panic("trace: unknown category")
	}
}

// TxnRecord is one completed memory transaction with its latency split.
type TxnRecord struct {
	// Txn is the transaction flow id.
	Txn uint64
	// Node is the requesting node.
	Node int32
	// Block is the accessed memory block.
	Block int64
	// Write marks write (and check-out) transactions.
	Write bool
	// Start and End bound the observed transaction window.
	Start, End sim.Cycle
	// Path is the critical-path split of the observed latency: the
	// window is swept cycle by cycle and each cycle is charged to the
	// highest-priority component active at that instant, so the entries
	// sum exactly to End - Start.
	Path [NumComponents]sim.Cycle
	// Work is the total work performed on behalf of the flow per
	// component, unclipped and without overlap resolution: concurrent
	// INV transmissions count each of their wire times, and a software
	// handler that outlives the window (a LimitLESS read, whose data is
	// sent by hardware before the handler finishes recording sharers)
	// still contributes its full cost.
	Work [NumComponents]sim.Cycle
}

// Latency reports the observed window length.
func (r *TxnRecord) Latency() sim.Cycle { return r.End - r.Start }

// interval is one component-tagged span clipped for the sweep.
type interval struct {
	start, end sim.Cycle
	comp       Component
}

// Attribute runs the critical-path attribution pass: it finds every
// completed memory-transaction window in events, gathers the spans
// correlated to each transaction, and splits the observed latency into
// components. Records are returned ordered by window start, then id.
func Attribute(events []Event) []TxnRecord {
	windows := make(map[uint64]*TxnRecord)
	for i := range events {
		e := &events[i]
		if e.Cat != CatMemOp || e.Txn == 0 {
			continue
		}
		windows[e.Txn] = &TxnRecord{
			Txn:   e.Txn,
			Node:  e.Node,
			Block: e.Arg,
			Write: e.Op == OpMemWrite,
			Start: e.Start,
			End:   e.End,
		}
	}
	spans := make(map[uint64][]interval)
	for i := range events {
		e := &events[i]
		if e.Txn == 0 || e.End <= e.Start {
			continue
		}
		comp, ok := componentOf(e.Cat)
		if !ok {
			continue
		}
		if _, open := windows[e.Txn]; !open {
			continue
		}
		spans[e.Txn] = append(spans[e.Txn], interval{start: e.Start, end: e.End, comp: comp})
	}

	ids := make([]uint64, 0, len(windows))
	for id := range windows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]TxnRecord, 0, len(ids))
	for _, id := range ids {
		rec := windows[id]
		attributeWindow(rec, spans[id])
		out = append(out, *rec)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Txn < out[j].Txn
	})
	return out
}

// attributeWindow fills rec.Work (plain per-component sums) and rec.Path
// (priority sweep over the clipped spans; remainder goes to CompOther).
func attributeWindow(rec *TxnRecord, spans []interval) {
	clipped := make([]interval, 0, len(spans))
	cuts := make([]sim.Cycle, 0, 2*len(spans)+2)
	cuts = append(cuts, rec.Start, rec.End)
	for _, s := range spans {
		rec.Work[s.comp] += s.end - s.start
		cs, ce := s.start, s.end
		if cs < rec.Start {
			cs = rec.Start
		}
		if ce > rec.End {
			ce = rec.End
		}
		if ce > cs {
			clipped = append(clipped, interval{start: cs, end: ce, comp: s.comp})
			cuts = append(cuts, cs, ce)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi <= lo {
			continue
		}
		best := CompOther
		for _, s := range clipped {
			if s.start <= lo && s.end >= hi && s.comp.priority() > best.priority() {
				best = s.comp
			}
		}
		rec.Path[best] += hi - lo
	}
}
