// Package swex is a software-extended coherent shared memory system: a
// from-scratch reproduction of Chaiken & Agarwal, "Software-Extended
// Coherent Shared Memory: Performance and Cost" (ISCA 1994) — the MIT
// Alewife LimitLESS directory work.
//
// The package simulates, cycle by cycle, a mesh multiprocessor whose
// cache-coherence directory is implemented partly in hardware (a small set
// of pointers per memory block) and partly in protocol extension software
// that the hardware traps into when the pointers are exhausted. The full
// spectrum of the paper's protocols is available, from the software-only
// directory Dir_nH_0S_NB,ACK through the LimitLESS family Dir_nH_XS_NB to
// a DASH-style full-map directory, plus the Dir_1H_1S_B,LACK broadcast
// protocol of the cooperative shared memory work.
//
// The top-level entry points are:
//
//   - NewMachine / (*Machine).Run: build a simulated machine and run a
//     program (one thread per node) against the shared-memory API.
//   - Benchmarks: the WORKER synthetic stress test and the six
//     applications of the paper's Section 6 (TSP, AQ, SMGRID, EVOLVE,
//     MP3D, WATER).
//   - Experiments: one function per table and figure of the paper
//     (Table1 .. Figure6) that regenerates its data on the simulator,
//     plus the ablations discussed in the text.
//
// All simulation is deterministic: a configuration runs to the identical
// cycle count every time.
package swex

import (
	"swex/internal/apps"
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/memtier"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/sim"
	"swex/internal/stats"
	"swex/internal/sweep"
	"swex/internal/trace"
)

// Protocol identifies one coherence protocol of the spectrum, in the
// paper's Dir_iH_XS_Y,A notation.
type Protocol = proto.Spec

// AckMode selects acknowledgment handling for the one-pointer protocols.
type AckMode = proto.AckMode

// Acknowledgment modes (paper Section 2.4).
const (
	AckHW   = proto.AckHW
	AckLACK = proto.AckLACK
	AckSW   = proto.AckSW
)

// FullMap returns Dir_nH_NB S_-: the full-map directory.
func FullMap() Protocol { return proto.FullMap() }

// LimitLESS returns Dir_nH_kS_NB for k >= 2.
func LimitLESS(k int) Protocol { return proto.LimitLESS(k) }

// OnePointer returns the Dir_nH_1S_NB variant with the given ack mode.
func OnePointer(mode AckMode) Protocol { return proto.OnePointer(mode) }

// SoftwareOnly returns Dir_nH_0S_NB,ACK: the software-only directory.
func SoftwareOnly() Protocol { return proto.SoftwareOnly() }

// Dir1SW returns Dir_1H_1S_B,LACK: the broadcast protocol.
func Dir1SW() Protocol { return proto.Dir1SW() }

// Directoryless returns DLS: the directoryless shared-LLC machine, where
// nothing is cached and every access is served directly by the home node.
// It trades all coherence hardware and software for a network round trip
// per access — the far end of the memory-system axis the machine-spectrum
// study (Tiers) sweeps.
func Directoryless() Protocol { return proto.Directoryless() }

// Spectrum returns the paper's protocols in increasing hardware cost.
func Spectrum() []Protocol { return proto.Spectrum() }

// MemTier selects the memory-system family behind the home directories
// (flat DRAM, disaggregated far memory, or hybrid DRAM/NVM); set it
// through MachineConfig.MemTier. The zero value is the paper's flat
// machine. See internal/memtier.
type MemTier = memtier.Config

// DisaggregatedMemory returns the disaggregated-memory scenario used by
// the machine-spectrum exhibits: home memory across a second interconnect
// tier with hop latency, a bandwidth cap, and queueing.
func DisaggregatedMemory() MemTier { return memtier.DefaultDisaggregated() }

// TieredMemory returns the hybrid DRAM/NVM scenario used by the
// machine-spectrum exhibits: asymmetric NVM read/write latencies with
// deterministic hot-block promotion into a bounded per-home DRAM set.
func TieredMemory() MemTier { return memtier.DefaultTiered() }

// Machine is a fully assembled simulated multiprocessor.
type Machine = machine.Machine

// MachineConfig selects machine size, protocol, software implementation,
// and cache options.
type MachineConfig = machine.Config

// Software implementation selectors.
const (
	FlexibleC = machine.FlexibleC
	TunedASM  = machine.TunedASM
)

// Result summarizes a run.
type Result = machine.Result

// Env is the shared-memory programming interface application threads use.
type Env = proc.Env

// NodeID identifies a node; Addr a shared-memory word; Cycle a time point.
type (
	NodeID = mem.NodeID
	Addr   = mem.Addr
	Cycle  = sim.Cycle
)

// CyclesPerSecond is the simulated clock rate (33 MHz, as in Alewife).
const CyclesPerSecond = sim.CyclesPerSecond

// NewMachine builds a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// App is a workload: the WORKER benchmark or one of the six applications.
type App = apps.Program

// AppInstance is an App set up on a specific machine.
type AppInstance = apps.Instance

// Apps returns the six applications of the paper's Section 6 at their
// default (scaled) problem sizes, in Figure 4 order.
func Apps() []App { return apps.Registry() }

// AppByName retrieves one application by its paper name.
func AppByName(name string) (App, error) { return apps.ByName(name) }

// Worker returns the WORKER synthetic benchmark with the given worker-set
// size and iteration count (paper Section 5).
func Worker(setSize, iters int) App {
	return apps.Worker(apps.WorkerParams{SetSize: setSize, Iters: iters})
}

// Block identifies an aligned shared-memory block.
type Block = mem.Block

// ProtocolSoftware is the flexible coherence interface: the contract a
// protocol extension implementation satisfies. Install a custom
// implementation through MachineConfig.CustomSoftware to experiment with
// application-specific protocols, as the paper's Section 7 suggests.
type ProtocolSoftware = proto.Software

// WordsPerBlock is the block size in 64-bit words.
const WordsPerBlock = mem.WordsPerBlock

// Handler request kinds for slicing Result.Ledger measurements.
const (
	ReadHandler  = stats.ReadRequest
	WriteHandler = stats.WriteRequest
	AckHandler   = stats.AckRequest
	LocalHandler = stats.LocalRequest
)

// TraceSink receives structured span events from a traced run; install one
// through MachineConfig.Trace. See internal/trace for the event model,
// critical-path attribution, and the Perfetto exporter behind cmd/swextrace.
type TraceSink = trace.Sink

// TraceEvent is one span in a trace.
type TraceEvent = trace.Event

// TraceCollector accumulates trace events in memory.
type TraceCollector = trace.Collector

// NewTraceCollector returns an unbounded in-memory trace sink.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// NewTraceRing returns a bounded trace sink keeping the last limit events.
func NewTraceRing(limit int) *TraceCollector { return trace.NewRing(limit) }

// Sweeper is the parallel experiment orchestrator: it executes matrices of
// simulation jobs on a worker pool, deduplicates identical points, and —
// when configured with a cache directory — persists every finished result
// in a content-addressed store with a crash-safe manifest journal, so
// killed sweeps resume and unchanged matrices re-run as pure cache hits.
// Results merge in submission order, so sweep output is byte-identical to
// a serial run at any worker count. See internal/sweep.
type Sweeper = sweep.Runner

// SweeperConfig selects worker count, cache directory, budgets, and the
// retry policy of a Sweeper.
type SweeperConfig = sweep.Config

// SweepJob is one point of an experiment matrix: a canonical, hashable
// description of a single simulation run.
type SweepJob = sweep.Job

// SweepResult is the cacheable summary of one finished job.
type SweepResult = sweep.Result

// SweepOutcome is the per-job verdict of a Sweeper.Sweep call.
type SweepOutcome = sweep.Outcome

// NewSweeper builds a sweep runner (opening the disk cache when
// SweeperConfig.CacheDir is set). Pass it through Options.Sweep to share
// one result cache across experiments, or call its Run/Sweep methods with
// jobs built by SweepWorkerJob / SweepAppJob or the XxxJobs experiment
// matrix builders.
func NewSweeper(cfg SweeperConfig) (*Sweeper, error) { return sweep.NewRunner(cfg) }

// SweepWorkerJob builds a WORKER job for a sweep matrix.
func SweepWorkerJob(setSize, iters int, cfg MachineConfig) SweepJob {
	return sweep.WorkerJob(setSize, iters, cfg)
}

// SweepAppJob builds an application job (by paper name) for a sweep matrix.
func SweepAppJob(name string, quick bool, cfg MachineConfig) SweepJob {
	return sweep.AppJob(name, quick, cfg)
}
