package swex

// Parallel-engine regression tests at the exhibit level: the conservative
// parallel engine must be invisible in experiment output. Every exhibit
// rendered on SimWorkers-enabled runners must be byte-identical to the
// serial in-process run — the end-to-end face of the determinism argument
// in DESIGN.md §14 (the per-machine face lives in
// internal/machine/parrun_test.go, the per-sweep face in
// internal/sweep/parsweep_test.go).

import "testing"

// TestParallelExhibitsByteIdentical renders the full quick exhibit matrix
// serially and then on parallel-engine runners at several worker counts,
// requiring byte-identical reports. Each runner is fresh, with its own
// in-memory cache, so every parallel rendering really re-executes its
// simulations on the parallel engine rather than reading the serial run's
// cache entries.
func TestParallelExhibitsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick matrix at several worker counts; skipped in -short")
	}
	serial := renderAllSim(t, 0)
	for _, w := range []int{2, 4, 8} {
		got := renderAllSim(t, w)
		if got != serial {
			t.Errorf("simworkers=%d exhibits differ from serial:\n--- serial ---\n%s\n--- simworkers=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

// renderAllSim renders every registry exhibit in quick mode with the
// parallel engine at the given worker count, via Options.SimWorkers and a
// nil runner (exercising the private-runner plumbing cmd/swex relies on).
func renderAllSim(t *testing.T, simWorkers int) string {
	t.Helper()
	var out string
	for _, m := range Matrices() {
		text, err := m.Render(Options{Quick: true, SimWorkers: simWorkers})
		if err != nil {
			t.Fatalf("%s (simworkers=%d): %v", m.Name, simWorkers, err)
		}
		out += "== " + m.Name + "\n" + text + "\n"
	}
	return out
}
