package swex_test

// Runnable documentation: each example builds and runs real machines, and
// its printed output is checked by go test (deterministic simulation makes
// that possible).

import (
	"fmt"
	"log"

	"swex"
)

// ExampleNewMachine builds the smallest interesting machine and runs one
// WORKER iteration on it.
func ExampleNewMachine() {
	m, err := swex.NewMachine(swex.MachineConfig{
		Nodes: 4,
		Spec:  swex.LimitLESS(2), // Dir_nH_2S_NB
	})
	if err != nil {
		log.Fatal(err)
	}
	app := swex.Worker(2, 1)
	inst := app.Setup(m)
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol:", m.Cfg.Spec.Name)
	fmt.Println("completed:", res.Time > 0)
	// Output:
	// protocol: DirnH2SNB
	// completed: true
}

// ExampleSpectrum lists the paper's protocol spectrum in hardware-cost
// order.
func ExampleSpectrum() {
	for _, p := range swex.Spectrum() {
		fmt.Println(p.Name)
	}
	// Output:
	// DirnH0SNB,ACK
	// DirnH1SNB,ACK
	// DirnH1SNB,LACK
	// DirnH1SNB
	// DirnH2SNB
	// DirnH3SNB
	// DirnH4SNB
	// DirnH5SNB
	// DirnHNBS-
}

// ExampleMachine_ConfigureBlock promotes one hot block to the full-map
// protocol on an otherwise two-pointer machine — the paper's "data
// specific" coherence-type selection.
func ExampleMachine_ConfigureBlock() {
	m, _ := swex.NewMachine(swex.MachineConfig{Nodes: 8, Spec: swex.LimitLESS(2)})
	hot := m.Mem.AllocOn(0, 1)
	if err := m.ConfigureBlock(swex.Block(hot/swex.WordsPerBlock), swex.FullMap()); err != nil {
		log.Fatal(err)
	}
	res, _ := m.Run(func(env *swex.Env) {
		env.Read(hot) // eight readers overflow two pointers — but not full-map
	}, 0)
	fmt.Println("software traps:", res.Traps)
	// Output:
	// software traps: 0
}

// Example_protocolComparison runs the same widely-shared workload under a
// limited directory and under full-map, showing where the software
// extension spends its time.
func Example_protocolComparison() {
	run := func(p swex.Protocol) swex.Result {
		m, _ := swex.NewMachine(swex.MachineConfig{Nodes: 16, Spec: p})
		a := m.Mem.AllocOn(0, 1)
		res, _ := m.Run(func(env *swex.Env) {
			env.Read(a) // sixteen readers of one block
		}, 0)
		return res
	}
	limited := run(swex.LimitLESS(2))
	full := run(swex.FullMap())
	fmt.Println("limited directory traps:", limited.Traps > 0)
	fmt.Println("full-map traps:", full.Traps)
	fmt.Println("limited slower:", limited.Time > full.Time)
	// Output:
	// limited directory traps: true
	// full-map traps: 0
	// limited slower: true
}

// Example_cico shows Check-In/Check-Out annotations at work: eight nodes
// take turns reading a block that node 0 then rewrites, on a five-pointer
// directory. Without annotations the reader set accumulates to eight and
// overflows into software; with each reader checking its copy back in,
// the hardware directory never holds more than one pointer and the
// software is never invoked for the block.
func Example_cico() {
	run := func(cico bool) uint64 {
		m, _ := swex.NewMachine(swex.MachineConfig{Nodes: 8, Spec: swex.LimitLESS(5)})
		data := m.Mem.AllocOn(0, swex.WordsPerBlock)
		turn := m.Mem.AllocOn(1, swex.WordsPerBlock)
		// The turn word is a synchronization object shared by every
		// node: give it the full-map coherence type (Section 7's
		// advice) so the measurement isolates the data block.
		if err := m.ConfigureBlock(swex.Block(turn/swex.WordsPerBlock), swex.FullMap()); err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(func(env *swex.Env) {
			id := uint64(env.ID())
			for it := 0; it < 3; it++ {
				round := uint64(it) * uint64(env.P)
				for {
					cur := env.Read(turn)
					if cur == round+id {
						break
					}
					env.WaitChange(turn, cur)
				}
				env.Read(data)
				if cico {
					env.CheckIn(data)
				}
				if id == uint64(env.P-1) {
					// Last reader of the round: rewrite the block.
					env.Write(data, round)
				}
				env.Write(turn, round+id+1)
			}
		}, 0)
		if err != nil {
			log.Fatal(err)
		}
		return res.Traps
	}
	plain, annotated := run(false), run(true)
	fmt.Println("software traps without annotations:", plain > 0)
	fmt.Println("software traps with annotations:", annotated)
	// Output:
	// software traps without annotations: true
	// software traps with annotations: 0
}
