package swex

// Distributed-sweep regression tests: the swexd coordinator/worker
// service must be invisible in experiment output. Every exhibit rendered
// through a coordinator and three workers must be byte-identical to the
// serial in-process run, and resubmitting against the coordinator's warm
// cache must execute zero simulations.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"swex/internal/sweep"
	"swex/internal/swexd"
)

// renderAll renders every registry exhibit in quick mode through the
// given job runner and returns the concatenated reports.
func renderAll(t *testing.T, runner JobRunner) string {
	t.Helper()
	var out string
	for _, m := range Matrices() {
		text, err := m.Render(Options{Quick: true, Sweep: runner})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		out += "== " + m.Name + "\n" + text + "\n"
	}
	return out
}

// TestDistributedExhibitsByteIdentical is the swexd acceptance check: a
// coordinator with three workers renders the full exhibit matrix
// byte-identically to a serial in-process run, and a warm resubmission
// completes entirely from the coordinator's cache with zero additional
// simulations.
func TestDistributedExhibitsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick matrix; skipped in -short")
	}
	serialRunner := sweep.MustNewRunner(sweep.Config{Workers: 1})
	defer serialRunner.Close()
	serial := renderAll(t, serialRunner)

	coord, err := swexd.NewCoordinator(swexd.Config{LeaseTerm: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := make([]chan error, 3)
	for i := range workers {
		w := swexd.NewWorker(swexd.WorkerConfig{
			Coordinator: srv.Listener.Addr().String(),
			Slots:       2,
			Poll:        10 * time.Millisecond,
		})
		done := make(chan error, 1)
		go func() { done <- w.Run(ctx) }()
		workers[i] = done
	}

	client := &swexd.Client{Base: srv.URL, Poll: 20 * time.Millisecond}
	distributed := renderAll(t, client)
	if distributed != serial {
		t.Errorf("distributed exhibits differ from serial:\n--- serial ---\n%s\n--- distributed ---\n%s",
			serial, distributed)
	}

	// Warm resubmission: every job is already in the coordinator's store,
	// so re-rendering the whole matrix executes nothing anywhere.
	vars, err := client.Vars(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	before := vars["executions"]
	warm := renderAll(t, client)
	if warm != serial {
		t.Error("warm distributed exhibits differ from serial")
	}
	vars, err = client.Vars(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vars["executions"] != before {
		t.Errorf("warm resubmission executed %d simulations; want 0", vars["executions"]-before)
	}

	cancel()
	for _, done := range workers {
		if err := <-done; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
}
