// Command swexrun runs a single workload on a single machine configuration
// and reports everything the simulator observed: run time, per-node finish
// spread, traps, handler occupancy, message mix, cache behavior, and the
// worker-set histogram. It is the interactive counterpart of cmd/swex's
// batch experiments — the tool for exploring one configuration in depth.
//
// Examples:
//
//	swexrun -app WATER -nodes 64 -protocol h5 -victim 8
//	swexrun -worker 8 -iters 10 -nodes 16 -protocol h1ack
//	swexrun -app TSP -nodes 64 -protocol h0 -trace 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"swex"
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proto"
)

var protocolsByFlag = map[string]func() proto.Spec{
	"h0":     proto.SoftwareOnly,
	"h1ack":  func() proto.Spec { return proto.OnePointer(proto.AckSW) },
	"h1lack": func() proto.Spec { return proto.OnePointer(proto.AckLACK) },
	"h1":     func() proto.Spec { return proto.OnePointer(proto.AckHW) },
	"h2":     func() proto.Spec { return proto.LimitLESS(2) },
	"h3":     func() proto.Spec { return proto.LimitLESS(3) },
	"h4":     func() proto.Spec { return proto.LimitLESS(4) },
	"h5":     func() proto.Spec { return proto.LimitLESS(5) },
	"full":   proto.FullMap,
	"dir1sw": proto.Dir1SW,
}

func main() {
	var (
		appName   = flag.String("app", "", "application: TSP AQ SMGRID EVOLVE MP3D WATER")
		workerK   = flag.Int("worker", 0, "run WORKER with this worker-set size instead of -app")
		iters     = flag.Int("iters", 10, "WORKER iterations")
		nodes     = flag.Int("nodes", 16, "machine size")
		protoStr  = flag.String("protocol", "h5", "h0 h1ack h1lack h1 h2..h5 full dir1sw")
		victim    = flag.Int("victim", 0, "victim cache lines (0 = off)")
		ways      = flag.Int("ways", 0, "cache associativity (0/1 = direct-mapped)")
		threads   = flag.Int("threads", 1, "hardware contexts per node")
		pifetch   = flag.Bool("pifetch", false, "perfect instruction fetch")
		software  = flag.String("software", "c", "protocol software: c or asm")
		batch     = flag.Bool("batch", false, "read-burst batching enhancement")
		parinv    = flag.Bool("parinv", false, "parallel invalidation enhancement")
		migratory = flag.Bool("migratory", false, "migratory-data adaptation")
		traceN    = flag.Int("trace", 0, "dump the last N protocol events")
		profile   = flag.Int("profile", 0, "sample a timeline every N cycles")
		verify    = flag.Bool("verify", false, "run with the coherence invariant checker")
	)
	flag.Parse()

	mk, ok := protocolsByFlag[strings.ToLower(*protoStr)]
	if !ok {
		log.Fatalf("unknown protocol %q", *protoStr)
	}
	cfg := machine.Config{
		Nodes:           *nodes,
		Spec:            mk(),
		VictimLines:     *victim,
		CacheWays:       *ways,
		PerfectIfetch:   *pifetch,
		BatchReads:      *batch,
		ParallelInv:     *parinv,
		MigratoryDetect: *migratory,
		ThreadsPerNode:  *threads,
	}
	if strings.ToLower(*software) == "asm" {
		cfg.Software = machine.TunedASM
	}

	var app swex.App
	switch {
	case *workerK > 0:
		app = swex.Worker(*workerK, *iters)
	case *appName != "":
		var err error
		app, err = swex.AppByName(strings.ToUpper(*appName))
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "swexrun: need -app or -worker")
		flag.Usage()
		os.Exit(2)
	}

	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var tracer *proto.RingTracer
	if *traceN > 0 {
		tracer = proto.NewRingTracer(*traceN)
		m.Fabric.Trace = tracer
	}
	if *verify {
		m.Fabric.EnableChecker()
	}

	inst := app.Setup(m)
	var res machine.Result
	var timeline *machine.Timeline
	if *profile > 0 {
		var err2 error
		res, timeline, err2 = m.RunProfiled(inst.Thread, 0, swex.Cycle(*profile))
		if err2 != nil {
			log.Fatal(err2)
		}
	} else {
		var err2 error
		res, err2 = m.Run(inst.Thread, 0)
		if err2 != nil {
			log.Fatal(err2)
		}
	}

	fmt.Printf("%s on %d nodes, %s (%s software)\n", app.Name, cfg.Nodes, cfg.Spec.Name, cfg.Software)
	fmt.Printf("  run time          %d cycles (%.3f ms at 33 MHz)\n", res.Time, 1000*res.Time.Seconds())
	min, max := res.Finish[0], res.Finish[0]
	for _, f := range res.Finish {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	fmt.Printf("  finish spread     %d .. %d cycles\n", min, max)
	fmt.Printf("  messages          %d (mean hops %.2f)\n", res.Messages, m.Net.MeanHops())
	fmt.Printf("  software traps    %d\n", res.Traps)
	fmt.Printf("  handler cycles    %d\n", res.HandlerCycles)
	fmt.Printf("  busy retries      %d\n", res.BusyRetries)
	fmt.Printf("  watchdog fires    %d\n", m.Traps.TotalActivations())

	// Cache behavior, machine-wide.
	var hits, misses, ihits, imisses, victims uint64
	for n := 0; n < cfg.Nodes; n++ {
		st := m.Fabric.Cache(mem.NodeID(n)).Cache().Stats
		hits += st.Hits
		misses += st.Misses
		ihits += st.IHits
		imisses += st.IMisses
		victims += st.VictimHits
	}
	if hits+misses > 0 {
		fmt.Printf("  data cache        %.2f%% hit (%d hits, %d misses, %d victim hits)\n",
			100*float64(hits)/float64(hits+misses), hits, misses, victims)
	}
	if ihits+imisses > 0 {
		fmt.Printf("  instruction cache %.2f%% hit\n", 100*float64(ihits)/float64(ihits+imisses))
	}

	// Message mix.
	fmt.Printf("  message mix      ")
	var kinds []string
	for _, name := range res.Counters.Names() {
		if strings.HasPrefix(name, "msg.") {
			kinds = append(kinds, name)
		}
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf(" %s=%d", strings.TrimPrefix(k, "msg."), res.Counters.Get(k))
	}
	fmt.Println()

	// Handler latency summary when software ran.
	if res.Ledger != nil && res.Ledger.N() > 0 {
		fmt.Printf("  handler latency   read mean %.0f, write mean %.0f (n=%d)\n",
			res.Ledger.Mean(swex.ReadHandler, -1), res.Ledger.Mean(swex.WriteHandler, -1),
			res.Ledger.N())
	}

	// Worker-set histogram, compacted.
	fmt.Printf("  worker sets      ")
	for _, b := range res.WorkerSets.Buckets() {
		fmt.Printf(" %d:%d", b, res.WorkerSets.Count(b))
	}
	fmt.Println()

	if timeline != nil {
		fmt.Printf("\ntimeline (every %d cycles): messages | traps\n", timeline.Interval)
		var peak uint64 = 1
		for _, v := range timeline.Messages {
			if v > peak {
				peak = v
			}
		}
		for i := range timeline.Messages {
			bar := int(timeline.Messages[i] * 40 / peak)
			fmt.Printf("%10d  %-40s %6d | %d\n", swex.Cycle(i+1)*timeline.Interval,
				strings.Repeat("#", bar), timeline.Messages[i], timeline.Traps[i])
		}
	}

	if tracer != nil {
		fmt.Printf("\nlast %d protocol events:\n%s", tracer.Len(), tracer.Dump())
	}
}
